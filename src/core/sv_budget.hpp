// Support-vector budgeting (paper Section III, "Reducing the number of
// support vectors").
//
// Counters the "curse of kernelization" by bounding the SV set: iteratively
// remove the least significant support vector -- the one minimising the norm
// of paper Eq. 5, ||SV_i|| = ||alpha_i||^2 * k(x_i, x_i) -- *from the
// training set*, and retrain. We batch removals between retrainings (the
// removal of one low-norm SV almost never changes which other SVs have low
// norms), which keeps sweep costs tractable without changing the fixed point
// of the procedure.
#pragma once

#include <span>
#include <vector>

#include "svm/model.hpp"
#include "svm/trainer.hpp"

namespace svt::svm {
struct TrainParams;
}

namespace svt::core {

struct BudgetParams {
  std::size_t budget = 68;       ///< Target maximum SV count.
  double batch_fraction = 0.05;  ///< Fraction of the SV overshoot removed per round.
  std::size_t max_rounds = 400;  ///< Safety bound on retraining rounds.
};

struct BudgetReport {
  std::size_t rounds = 0;
  std::size_t removed_samples = 0;
  std::size_t final_support_vectors = 0;
};

/// Budget a trained model. `samples`/`labels` must be the (scaled) training
/// set the model was trained on; the function removes low-norm SVs from that
/// set and retrains until the SV count is within budget (or max_rounds is
/// hit, returning the best-effort model). Throws std::invalid_argument on
/// empty inputs or a zero budget.
/// If `surviving_x`/`surviving_y` are non-null they receive the reduced
/// training set after budgeting, so progressively tighter budgets (the
/// Figure-5 sweep) can continue from where the previous budget stopped.
svt::svm::SvmModel budget_support_vectors(const svt::svm::SvmModel& model,
                                          std::span<const std::vector<double>> samples,
                                          std::span<const int> labels,
                                          const svt::svm::TrainParams& train_params,
                                          const BudgetParams& budget_params,
                                          BudgetReport* report = nullptr,
                                          std::vector<std::vector<double>>* surviving_x = nullptr,
                                          std::vector<int>* surviving_y = nullptr);

/// Ablation baseline: truncate the SV set to the `budget` highest-norm SVs
/// *without retraining* (keeps kernel/bias). Used to show that retraining
/// after removal is what preserves classification performance.
svt::svm::SvmModel truncate_support_vectors(const svt::svm::SvmModel& model, std::size_t budget);

}  // namespace svt::core
