#include "core/sv_budget.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/assert.hpp"

namespace svt::core {

using svt::svm::SvmModel;

SvmModel budget_support_vectors(const SvmModel& model,
                                std::span<const std::vector<double>> samples,
                                std::span<const int> labels,
                                const svt::svm::TrainParams& train_params,
                                const BudgetParams& budget_params, BudgetReport* report,
                                std::vector<std::vector<double>>* surviving_x,
                                std::vector<int>* surviving_y) {
  if (budget_params.budget == 0)
    throw std::invalid_argument("budget_support_vectors: zero budget");
  if (samples.empty() || samples.size() != labels.size())
    throw std::invalid_argument("budget_support_vectors: bad training set");

  // Work on an index view of the training set so removals are cheap.
  std::vector<std::vector<double>> train_x(samples.begin(), samples.end());
  std::vector<int> train_y(labels.begin(), labels.end());

  SvmModel current = model;
  std::size_t rounds = 0;
  std::size_t removed_total = 0;

  while (current.num_support_vectors() > budget_params.budget &&
         rounds < budget_params.max_rounds) {
    ++rounds;
    const auto norms = current.sv_norms();

    // Rank this model's SVs by the Eq. 5 norm, ascending, *within each
    // class*. Class-weighted C-SVC makes alpha magnitudes incomparable
    // across classes (the positive box bound is Nneg/Npos times larger), so
    // a single global ranking would amputate one side of the margin; the
    // paper's unweighted setting does not have this failure mode. Removal is
    // then split across classes in proportion to their SV counts.
    std::vector<std::size_t> pos_rank, neg_rank;
    for (std::size_t i = 0; i < norms.size(); ++i)
      (current.alpha_y[i] > 0.0 ? pos_rank : neg_rank).push_back(i);
    const auto by_norm = [&](std::size_t a, std::size_t b) { return norms[a] < norms[b]; };
    std::sort(pos_rank.begin(), pos_rank.end(), by_norm);
    std::sort(neg_rank.begin(), neg_rank.end(), by_norm);

    const std::size_t nsv = current.num_support_vectors();
    const std::size_t overshoot = nsv - budget_params.budget;
    const auto batch = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(static_cast<double>(overshoot) *
                                              budget_params.batch_fraction)));
    const std::size_t to_remove = std::min(batch, overshoot);
    std::size_t remove_pos = static_cast<std::size_t>(
        std::round(static_cast<double>(to_remove) * static_cast<double>(pos_rank.size()) /
                   static_cast<double>(nsv)));
    remove_pos = std::min(remove_pos, pos_rank.size() > 1 ? pos_rank.size() - 1 : 0);
    std::size_t remove_neg = std::min(to_remove - remove_pos,
                                      neg_rank.size() > 1 ? neg_rank.size() - 1 : 0);

    std::vector<std::size_t> victims;
    victims.insert(victims.end(), pos_rank.begin(),
                   pos_rank.begin() + static_cast<std::ptrdiff_t>(remove_pos));
    victims.insert(victims.end(), neg_rank.begin(),
                   neg_rank.begin() + static_cast<std::ptrdiff_t>(remove_neg));

    // Remove those SVs from the training set (matched by exact feature
    // values; SVs are copies of training rows, so equality is exact).
    std::size_t removed_now = 0;
    for (std::size_t v : victims) {
      const auto& victim = current.support_vectors[v];
      for (std::size_t i = 0; i < train_x.size(); ++i) {
        if (train_x[i] == victim) {
          train_x.erase(train_x.begin() + static_cast<std::ptrdiff_t>(i));
          train_y.erase(train_y.begin() + static_cast<std::ptrdiff_t>(i));
          ++removed_now;
          break;
        }
      }
    }
    removed_total += removed_now;
    if (removed_now == 0) break;  // Nothing matched: cannot make progress.

    const bool has_pos = std::find(train_y.begin(), train_y.end(), +1) != train_y.end();
    const bool has_neg = std::find(train_y.begin(), train_y.end(), -1) != train_y.end();
    if (!has_pos || !has_neg) break;  // Budget unreachable without killing a class.

    current = svt::svm::train_svm(train_x, train_y, model.kernel, train_params);
  }

  if (report != nullptr) {
    report->rounds = rounds;
    report->removed_samples = removed_total;
    report->final_support_vectors = current.num_support_vectors();
  }
  if (surviving_x != nullptr) *surviving_x = std::move(train_x);
  if (surviving_y != nullptr) *surviving_y = std::move(train_y);
  return current;
}

SvmModel truncate_support_vectors(const SvmModel& model, std::size_t budget) {
  if (budget == 0) throw std::invalid_argument("truncate_support_vectors: zero budget");
  if (model.num_support_vectors() <= budget) return model;
  const auto norms = model.sv_norms();
  std::vector<std::size_t> rank(norms.size());
  std::iota(rank.begin(), rank.end(), 0);
  std::sort(rank.begin(), rank.end(),
            [&](std::size_t a, std::size_t b) { return norms[a] > norms[b]; });
  SvmModel out;
  out.kernel = model.kernel;
  out.bias = model.bias;
  out.support_vectors.reserve(budget);
  out.alpha_y.reserve(budget);
  for (std::size_t r = 0; r < budget; ++r) {
    out.support_vectors.push_back(model.support_vectors[rank[r]]);
    out.alpha_y.push_back(model.alpha_y[rank[r]]);
  }
  return out;
}

}  // namespace svt::core
