#include "core/quantize.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "common/assert.hpp"
#include "fixed/fixed_point.hpp"
#include "fixed/range_selection.hpp"
#include "hw/arith_model.hpp"
#include "rt/packed_kernel.hpp"

namespace svt::core {

QuantizedModel QuantizedModel::build(const svt::svm::SvmModel& model, const QuantConfig& config) {
  using svt::svm::KernelType;
  if (model.kernel.type != KernelType::kPolynomial || model.kernel.degree != 2)
    throw std::invalid_argument("QuantizedModel: kernel must be quadratic polynomial");
  if (model.num_support_vectors() == 0)
    throw std::invalid_argument("QuantizedModel: model has no support vectors");
  if (config.feature_bits < 2 || config.feature_bits > 20)
    throw std::invalid_argument("QuantizedModel: feature_bits outside [2,20]");
  if (config.alpha_bits < 2 || config.alpha_bits > 32)
    throw std::invalid_argument("QuantizedModel: alpha_bits outside [2,32]");
  if (config.dot_truncate_bits < 0 || config.square_truncate_bits < 0)
    throw std::invalid_argument("QuantizedModel: negative truncation");

  QuantizedModel qm;
  qm.config_ = config;

  const std::size_t nfeat = model.num_features();
  const std::size_t nsv = model.num_support_vectors();

  // --- Eq. 6 per-feature ranges over the SV set ------------------------------
  const auto sv_columns = fixed::to_columns(model.support_vectors);
  qm.ranges_ = fixed::select_feature_ranges(sv_columns);
  qm.max_range_log2_ = *std::max_element(qm.ranges_.begin(), qm.ranges_.end());
  if (config.homogeneous) {
    std::fill(qm.ranges_.begin(), qm.ranges_.end(), qm.max_range_log2_);
  }
  // --- Quantise SVs (packed row-major, shared by both decision engines) --------
  qm.q_sv_packed_.resize(nsv * nfeat);
  for (std::size_t i = 0; i < nsv; ++i) {
    for (std::size_t j = 0; j < nfeat; ++j) {
      const fixed::QuantFormat fmt{config.feature_bits, qm.ranges_[j]};
      qm.q_sv_packed_[i * nfeat + j] = fmt.quantize(model.support_vectors[i][j]);
    }
  }

  // --- Quantise alpha_y with one global power-of-two range ---------------------
  double alpha_max = 0.0;
  for (double a : model.alpha_y) alpha_max = std::max(alpha_max, std::abs(a));
  int ra = 0;
  if (alpha_max > 0.0) ra = static_cast<int>(std::ceil(std::log2(alpha_max)));
  // Keep ra so that alpha_max < 2^ra (strictly); equality needs one more bit.
  while (std::ldexp(1.0, ra) <= alpha_max) ++ra;
  qm.alpha_range_log2_ = ra;
  const fixed::QuantFormat alpha_fmt{config.alpha_bits, ra};
  qm.q_alpha_y_.resize(nsv);
  for (std::size_t i = 0; i < nsv; ++i) qm.q_alpha_y_[i] = alpha_fmt.quantize(model.alpha_y[i]);

  // --- Stage widths and scale anchors (shared with load()) ---------------------
  qm.compute_derived(nsv);

  // lsb of the widest feature format; dot products are aligned to lsb_max^2.
  const double lsb_max = std::ldexp(1.0, qm.max_range_log2_ - config.feature_bits + 1);
  const double dot_scale = lsb_max * lsb_max;
  qm.q_one_ = fixed::saturate(
      static_cast<std::int64_t>(std::llround(model.kernel.coef0 / dot_scale)),
      qm.pipeline_.mac1_accumulator_bits());

  const long double bias_q = static_cast<long double>(model.bias) / qm.acc2_scale_;
  qm.q_bias_ = fixed::saturate128(static_cast<__int128>(llroundl(bias_q)),
                           std::min(126, qm.pipeline_.mac2_accumulator_bits()));
  return qm;
}

void QuantizedModel::compute_derived(std::size_t nsv) {
  const std::size_t nfeat = ranges_.size();
  max_range_log2_ = *std::max_element(ranges_.begin(), ranges_.end());
  product_shifts_.resize(nfeat);
  for (std::size_t j = 0; j < nfeat; ++j) {
    // The scale-back shift is applied to int64 products: a spread wider
    // than 31 octaves would need a >= 64-bit shift (UB), so reject it the
    // same way the width checks below reject unrepresentable configs.
    if (max_range_log2_ - ranges_[j] > 31)
      throw std::invalid_argument(
          "QuantizedModel: feature range spread exceeds 31 octaves (shift > 62)");
    product_shifts_[j] = 2 * (max_range_log2_ - ranges_[j]);
  }

  // --- Hardware design point / stage widths -----------------------------------
  pipeline_.num_features = nfeat;
  pipeline_.num_support_vectors = nsv;
  pipeline_.feature_bits = config_.feature_bits;
  pipeline_.alpha_bits = config_.alpha_bits;
  pipeline_.dot_truncate_bits = config_.dot_truncate_bits;
  pipeline_.square_truncate_bits = config_.square_truncate_bits;
  // Width-driven truncation: discard however many extra LSBs are needed for
  // the squarer input to fit 31 bits (kin * kin must be exact in int64). A
  // real accelerator would make the same choice to bound the squarer array.
  {
    const int mac1_bits = 2 * config_.feature_bits +
                          hw::clog2(std::max<std::size_t>(nfeat, 1)) + 1;
    const int needed = mac1_bits - 31;
    if (needed > config_.dot_truncate_bits) pipeline_.dot_truncate_bits = needed;
  }
  config_.dot_truncate_bits = pipeline_.dot_truncate_bits;
  pipeline_.validate();
  SVT_ASSERT(pipeline_.kernel_input_bits() <= 31);

  // The real value of one MAC2 LSB, anchored at the widest feature format.
  const double lsb_max = std::ldexp(1.0, max_range_log2_ - config_.feature_bits + 1);
  const double dot_scale = lsb_max * lsb_max;
  const fixed::QuantFormat alpha_fmt{config_.alpha_bits, alpha_range_log2_};
  const double kernel_in_scale = dot_scale * std::ldexp(1.0, config_.dot_truncate_bits);
  const double kernel_out_scale =
      kernel_in_scale * kernel_in_scale * std::ldexp(1.0, config_.square_truncate_bits);
  acc2_scale_ = kernel_out_scale * alpha_fmt.lsb();
}

std::vector<std::int64_t> QuantizedModel::quantize_input(std::span<const double> x) const {
  if (x.size() != num_features())
    throw std::invalid_argument("QuantizedModel: feature-count mismatch");
  std::vector<std::int64_t> qx(x.size());
  for (std::size_t j = 0; j < x.size(); ++j) {
    const fixed::QuantFormat fmt{config_.feature_bits, ranges_[j]};
    qx[j] = fmt.quantize(x[j]);
  }
  return qx;
}

__int128 QuantizedModel::decision_accumulator(std::span<const std::int64_t> qx) const {
  const int mac1_bits = pipeline_.mac1_accumulator_bits();
  const int kin_bits = pipeline_.kernel_input_bits();
  const int kout_bits = pipeline_.kernel_output_bits();
  const int mac2_bits = std::min(126, pipeline_.mac2_accumulator_bits());

  const std::size_t nfeat = num_features();
  __int128 acc2 = q_bias_;
  for (std::size_t i = 0; i < num_support_vectors(); ++i) {
    const std::int64_t* qsv = q_sv_packed_.data() + i * nfeat;
    // MAC1: dot product with per-feature scale-back shifts, saturating.
    std::int64_t acc1 = 0;
    for (std::size_t j = 0; j < nfeat; ++j) {
      const std::int64_t product = qx[j] * qsv[j];  // <= 2^(2*Dbits-2): fits easily.
      acc1 = fixed::saturate(acc1 + (product >> product_shifts_[j]), mac1_bits);
    }
    acc1 = fixed::saturate(acc1 + q_one_, mac1_bits);

    // Truncate, square, truncate.
    const std::int64_t kin =
        fixed::saturate(acc1 >> config_.dot_truncate_bits, kin_bits);
    const std::int64_t square = kin * kin;  // kin <= 31 bits: exact in int64.
    const std::int64_t kout =
        fixed::saturate(square >> config_.square_truncate_bits, kout_bits);

    // MAC2: alpha_y-weighted accumulation (int128: product can exceed 63 bits).
    const __int128 term = static_cast<__int128>(q_alpha_y_[i]) * kout;
    acc2 = fixed::saturate128(acc2 + term, mac2_bits);
  }
  return acc2;
}

std::vector<__int128> QuantizedModel::batch_accumulators(
    std::span<const std::vector<double>> xs) const {
  rt::KernelScratch scratch;
  batch_accumulators(xs, scratch);
  return std::move(scratch.accs);
}

void QuantizedModel::batch_accumulators(std::span<const std::vector<double>> xs,
                                        rt::KernelScratch& scratch) const {
  const std::size_t nwin = xs.size();
  const std::size_t nfeat = num_features();
  auto& accs = scratch.accs;
  accs.assign(nwin, 0);
  if (nwin == 0) return;

  // Quantise every window directly into the feature-major layout the blocked
  // kernel consumes: qxt[f * nwin + w].
  auto& qxt = scratch.qxt;
  qxt.resize(nwin * nfeat);
  for (std::size_t w = 0; w < nwin; ++w) {
    if (xs[w].size() != nfeat)
      throw std::invalid_argument("QuantizedModel: feature-count mismatch");
    for (std::size_t j = 0; j < nfeat; ++j) {
      const fixed::QuantFormat fmt{config_.feature_bits, ranges_[j]};
      qxt[j * nwin + w] = fmt.quantize(xs[w][j]);
    }
  }

  rt::PackedQuantKernel kernel;
  kernel.nfeat = nfeat;
  kernel.nsv = num_support_vectors();
  kernel.q_svs = q_sv_packed_.data();
  kernel.q_alpha_y = q_alpha_y_.data();
  kernel.product_shifts = product_shifts_.data();
  kernel.q_one = q_one_;
  kernel.q_bias = q_bias_;
  kernel.mac1_bits = pipeline_.mac1_accumulator_bits();
  kernel.kin_bits = pipeline_.kernel_input_bits();
  kernel.kout_bits = pipeline_.kernel_output_bits();
  kernel.mac2_bits = std::min(126, pipeline_.mac2_accumulator_bits());
  kernel.dot_truncate_bits = config_.dot_truncate_bits;
  kernel.square_truncate_bits = config_.square_truncate_bits;
  rt::batch_quantized_accumulators(kernel, qxt.data(), nwin, accs.data());
}

int QuantizedModel::classify(std::span<const double> x) const {
  const auto qx = quantize_input(x);
  return decision_accumulator(qx) >= 0 ? +1 : -1;
}

std::vector<int> QuantizedModel::classify_batch(std::span<const std::vector<double>> xs) const {
  const auto accs = batch_accumulators(xs);
  std::vector<int> labels(accs.size());
  for (std::size_t w = 0; w < accs.size(); ++w) labels[w] = accs[w] >= 0 ? +1 : -1;
  return labels;
}

double QuantizedModel::dequantized_decision(std::span<const double> x) const {
  const auto qx = quantize_input(x);
  return static_cast<double>(decision_accumulator(qx)) * acc2_scale_;
}

void QuantizedModel::save(std::ostream& os) const {
  os << "svmtailor-qmodel v1\n";
  os << "bits " << config_.feature_bits << ' ' << config_.alpha_bits << ' '
     << config_.dot_truncate_bits << ' ' << config_.square_truncate_bits << ' '
     << (config_.homogeneous ? 1 : 0) << '\n';
  os << "nsv " << num_support_vectors() << '\n';
  os << "nfeat " << num_features() << '\n';
  os << "ranges";
  for (int r : ranges_) os << ' ' << r;
  os << '\n';
  os << "alpha_range " << alpha_range_log2_ << '\n';
  os << "qone " << q_one_ << '\n';
  os << "qbias " << fixed::to_string_int128(q_bias_) << '\n';
  // One line per SV: its quantised weight, then its quantised features --
  // the same row shape as SvmModel::save, but in integers.
  const std::size_t nfeat = num_features();
  for (std::size_t i = 0; i < num_support_vectors(); ++i) {
    os << q_alpha_y_[i];
    for (std::size_t j = 0; j < nfeat; ++j) os << ' ' << q_sv_packed_[i * nfeat + j];
    os << '\n';
  }
}

QuantizedModel QuantizedModel::load(std::istream& is) {
  using svt::svm::io::expect_header;
  using svt::svm::io::expect_tag;
  using svt::svm::io::require_good;
  expect_header(is, "svmtailor-qmodel", "v1", "QuantizedModel::load");
  QuantizedModel qm;
  int homogeneous = 0;
  expect_tag(is, "bits", "QuantizedModel::load");
  is >> qm.config_.feature_bits >> qm.config_.alpha_bits >> qm.config_.dot_truncate_bits >>
      qm.config_.square_truncate_bits >> homogeneous;
  qm.config_.homogeneous = homogeneous != 0;
  std::size_t nsv = 0, nfeat = 0;
  expect_tag(is, "nsv", "QuantizedModel::load");
  is >> nsv;
  expect_tag(is, "nfeat", "QuantizedModel::load");
  is >> nfeat;
  require_good(is, "QuantizedModel::load");
  if (nsv == 0 || nfeat == 0)
    throw std::invalid_argument("QuantizedModel::load: empty SV table");
  if (qm.config_.feature_bits < 2 || qm.config_.feature_bits > 20 ||
      qm.config_.alpha_bits < 2 || qm.config_.alpha_bits > 32 ||
      qm.config_.dot_truncate_bits < 0 || qm.config_.square_truncate_bits < 0)
    throw std::invalid_argument("QuantizedModel::load: config out of range");
  qm.ranges_.resize(nfeat);
  expect_tag(is, "ranges", "QuantizedModel::load");
  for (int& r : qm.ranges_) {
    is >> r;
    // Keep every ldexp/QuantFormat scale finite and the shift table (checked
    // again in compute_derived) representable.
    if (is && (r < -62 || r > 62))
      throw std::invalid_argument("QuantizedModel::load: feature range outside [-62,62]");
  }
  expect_tag(is, "alpha_range", "QuantizedModel::load");
  is >> qm.alpha_range_log2_;
  if (is && (qm.alpha_range_log2_ < -62 || qm.alpha_range_log2_ > 62))
    throw std::invalid_argument("QuantizedModel::load: alpha range outside [-62,62]");
  expect_tag(is, "qone", "QuantizedModel::load");
  is >> qm.q_one_;
  expect_tag(is, "qbias", "QuantizedModel::load");
  std::string bias_text;
  is >> bias_text;
  require_good(is, "QuantizedModel::load");
  qm.q_bias_ = fixed::parse_int128(bias_text);
  qm.q_alpha_y_.resize(nsv);
  qm.q_sv_packed_.resize(nsv * nfeat);
  for (std::size_t i = 0; i < nsv; ++i) {
    is >> qm.q_alpha_y_[i];
    for (std::size_t j = 0; j < nfeat; ++j) is >> qm.q_sv_packed_[i * nfeat + j];
  }
  require_good(is, "QuantizedModel::load");
  // Derived fields (shift table, pipeline widths, MAC2 scale) are functions
  // of the primaries just read; recomputing them keeps the file format
  // minimal and the loaded engine bit-identical to the built one.
  qm.compute_derived(nsv);
  return qm;
}

std::vector<double> QuantizedModel::dequantized_decisions(
    std::span<const std::vector<double>> xs) const {
  rt::KernelScratch scratch;
  std::vector<double> values;
  dequantized_decisions(xs, scratch, values);
  return values;
}

void QuantizedModel::dequantized_decisions(std::span<const std::vector<double>> xs,
                                           rt::KernelScratch& scratch,
                                           std::vector<double>& out) const {
  batch_accumulators(xs, scratch);
  out.resize(scratch.accs.size());
  for (std::size_t w = 0; w < scratch.accs.size(); ++w)
    out[w] = static_cast<double>(scratch.accs[w]) * acc2_scale_;
}

}  // namespace svt::core
