#include "core/feature_selection.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>
#include <stdexcept>

#include "common/assert.hpp"
#include "dsp/statistics.hpp"
#include "fixed/range_selection.hpp"

namespace svt::core {

std::vector<std::vector<double>> correlation_matrix(
    std::span<const std::vector<double>> samples) {
  if (samples.empty()) throw std::invalid_argument("correlation_matrix: empty input");
  const auto columns = fixed::to_columns(samples);
  const std::size_t n = columns.size();
  std::vector<std::vector<double>> rho(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    rho[i][i] = 1.0;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double r = dsp::pearson(columns[i], columns[j]);
      rho[i][j] = r;
      rho[j][i] = r;
    }
  }
  return rho;
}

std::vector<std::size_t> SelectionOrder::keep_set(std::size_t k) const {
  const std::size_t total = removal_order.size();
  if (k == 0 || k > total) throw std::invalid_argument("keep_set: k outside [1, num_features]");
  // The last k entries of the removal order survive; report them sorted.
  std::vector<std::size_t> kept(removal_order.end() - static_cast<std::ptrdiff_t>(k),
                                removal_order.end());
  std::sort(kept.begin(), kept.end());
  return kept;
}

SelectionOrder rank_features_by_redundancy(std::span<const std::vector<double>> samples) {
  const auto full_rho = correlation_matrix(samples);
  const std::size_t n = full_rho.size();

  std::vector<std::size_t> alive(n);
  std::iota(alive.begin(), alive.end(), 0);

  SelectionOrder order;
  order.removal_order.reserve(n);

  // Iterate: aggregate |rho| over the surviving set, drop the max. The
  // pairwise coefficients do not change as features are removed (Pearson is
  // pairwise), so restricting the *aggregation* to survivors is equivalent
  // to recomputing the matrix each round, at a fraction of the cost.
  while (alive.size() > 1) {
    double worst_score = -1.0;
    std::size_t worst_pos = 0;
    for (std::size_t p = 0; p < alive.size(); ++p) {
      double agg = 0.0;
      for (std::size_t q = 0; q < alive.size(); ++q) {
        if (p != q) agg += std::abs(full_rho[alive[p]][alive[q]]);
      }
      if (agg > worst_score) {
        worst_score = agg;
        worst_pos = p;
      }
    }
    order.removal_order.push_back(alive[worst_pos]);
    alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(worst_pos));
  }
  order.removal_order.push_back(alive.front());
  SVT_ASSERT(order.removal_order.size() == n);
  return order;
}

SelectionOrder random_removal_order(std::size_t num_features, std::uint64_t seed) {
  SelectionOrder order;
  order.removal_order.resize(num_features);
  std::iota(order.removal_order.begin(), order.removal_order.end(), 0);
  std::mt19937_64 rng(seed);
  std::shuffle(order.removal_order.begin(), order.removal_order.end(), rng);
  return order;
}

}  // namespace svt::core
