#include "core/experiment.hpp"

#include <algorithm>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <string>

#include "common/assert.hpp"

namespace svt::core {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (end == raw) return fallback;
  return static_cast<std::uint64_t>(v);
}

double env_double(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(raw, &end);
  if (end == raw) return fallback;
  return v;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  return (raw == nullptr || *raw == '\0') ? fallback : std::string(raw);
}

ExperimentConfig ExperimentConfig::from_env() {
  ExperimentConfig config;
  config.dataset.windows_per_session =
      static_cast<int>(env_u64("SVT_WPS", static_cast<std::uint64_t>(
                                              config.dataset.windows_per_session)));
  config.dataset.seed = env_u64("SVT_SEED", config.dataset.seed);
  config.max_folds = env_u64("SVT_FOLDS", 0);
  config.csv_dir = env_string("SVT_CSV_DIR", ".");
  config.train.c = env_double("SVT_C", config.train.c);
  return config;
}

std::vector<int> PreparedData::groups() const { return matrix.session_index; }

PreparedData prepare_data(const ExperimentConfig& config) {
  PreparedData data;
  data.dataset = ecg::generate_dataset(config.dataset);
  data.matrix = features::extract_feature_matrix(data.dataset);
  return data;
}

namespace {

/// `keep` if non-empty, else the identity index list of length n.
std::vector<std::size_t> all_indices_or(const std::vector<std::size_t>& keep, std::size_t n) {
  if (!keep.empty()) return keep;
  std::vector<std::size_t> idx(n);
  for (std::size_t j = 0; j < n; ++j) idx[j] = j;
  return idx;
}

/// Group vector with sessions beyond `max_folds` marked training-only.
std::vector<int> capped_groups(const PreparedData& data, std::size_t max_folds) {
  std::vector<int> groups = data.matrix.session_index;
  if (max_folds == 0) return groups;
  for (int& g : groups) {
    if (g >= static_cast<int>(max_folds)) g = -1;
  }
  return groups;
}

}  // namespace

DesignPointResult evaluate_design_point(const PreparedData& data,
                                        const ExperimentConfig& config,
                                        const std::vector<std::size_t>& keep,
                                        std::size_t sv_budget,
                                        const std::optional<QuantConfig>& quant,
                                        std::size_t max_folds_override) {
  const features::FeatureMatrix matrix =
      keep.empty() ? data.matrix : data.matrix.select_features(keep);

  TailoringConfig tailoring;
  tailoring.num_features = 0;  // Selection already applied above.
  tailoring.sv_budget = sv_budget;
  tailoring.quant = quant;
  tailoring.train = config.train;
  tailoring.post_gains = features::category_gains(all_indices_or(keep, matrix.num_features()));
  const auto options = make_cv_options(tailoring);

  const std::size_t max_folds =
      max_folds_override > 0 ? max_folds_override : config.max_folds;
  const auto groups = capped_groups(data, max_folds);
  const auto cv =
      svt::svm::cross_validate(matrix.samples, matrix.labels, groups, options);

  DesignPointResult result;
  result.sensitivity = cv.averages.sensitivity;
  result.specificity = cv.averages.specificity;
  result.geometric_mean = cv.averages.geometric_mean;
  result.mean_support_vectors = cv.mean_support_vectors();

  hw::PipelineConfig pipeline;
  pipeline.num_features = matrix.num_features();
  pipeline.num_support_vectors = std::max<std::size_t>(
      1, static_cast<std::size_t>(result.mean_support_vectors + 0.5));
  if (quant) {
    pipeline.feature_bits = quant->feature_bits;
    pipeline.alpha_bits = quant->alpha_bits;
    pipeline.dot_truncate_bits = quant->dot_truncate_bits;
    pipeline.square_truncate_bits = quant->square_truncate_bits;
  } else {
    pipeline.feature_bits = 64;
    pipeline.alpha_bits = 64;
  }
  result.cost = hw::estimate_cost(pipeline);
  return result;
}

namespace {

/// One fold's train/test split after feature selection and centring.
struct FoldData {
  std::vector<std::vector<double>> train_x, test_x;
  std::vector<int> train_y, test_y;
  bool usable = false;
};

std::vector<FoldData> build_folds(const features::FeatureMatrix& matrix,
                                  const std::vector<int>& groups,
                                  const std::vector<double>& gains) {
  std::set<int> ids;
  for (int g : groups) {
    if (g >= 0) ids.insert(g);
  }
  std::vector<FoldData> folds;
  folds.reserve(ids.size());
  for (int g : ids) {
    FoldData fold;
    for (std::size_t i = 0; i < matrix.size(); ++i) {
      if (groups[i] == g) {
        fold.test_x.push_back(matrix.samples[i]);
        fold.test_y.push_back(matrix.labels[i]);
      } else {
        fold.train_x.push_back(matrix.samples[i]);
        fold.train_y.push_back(matrix.labels[i]);
      }
    }
    const bool has_pos =
        std::find(fold.train_y.begin(), fold.train_y.end(), +1) != fold.train_y.end();
    const bool has_neg =
        std::find(fold.train_y.begin(), fold.train_y.end(), -1) != fold.train_y.end();
    fold.usable = !fold.test_x.empty() && has_pos && has_neg;
    if (fold.usable) {
      svt::svm::StandardScaler scaler(svt::svm::ScalerMode::kZScore);
      scaler.set_post_gains(gains);
      scaler.fit(fold.train_x);
      fold.train_x = scaler.transform_all(fold.train_x);
      fold.test_x = scaler.transform_all(fold.test_x);
    }
    folds.push_back(std::move(fold));
  }
  return folds;
}

hw::CostReport cost_at(std::size_t nfeat, double mean_nsv,
                       const std::optional<QuantConfig>& quant) {
  hw::PipelineConfig pipeline;
  pipeline.num_features = nfeat;
  pipeline.num_support_vectors =
      std::max<std::size_t>(1, static_cast<std::size_t>(mean_nsv + 0.5));
  if (quant) {
    pipeline.feature_bits = quant->feature_bits;
    pipeline.alpha_bits = quant->alpha_bits;
    pipeline.dot_truncate_bits = quant->dot_truncate_bits;
    pipeline.square_truncate_bits = quant->square_truncate_bits;
  } else {
    pipeline.feature_bits = 64;
    pipeline.alpha_bits = 64;
  }
  return hw::estimate_cost(pipeline);
}

}  // namespace

std::vector<DesignPointResult> sweep_sv_budgets(const PreparedData& data,
                                                const ExperimentConfig& config,
                                                const std::vector<std::size_t>& keep,
                                                const std::vector<std::size_t>& budgets,
                                                const std::optional<QuantConfig>& quant) {
  for (std::size_t b = 1; b < budgets.size(); ++b) {
    if (budgets[b] >= budgets[b - 1])
      throw std::invalid_argument("sweep_sv_budgets: budgets must be strictly decreasing");
  }
  const features::FeatureMatrix matrix =
      keep.empty() ? data.matrix : data.matrix.select_features(keep);
  const auto groups = capped_groups(data, config.max_folds);
  const auto gains = features::category_gains(all_indices_or(keep, matrix.num_features()));
  auto folds = build_folds(matrix, groups, gains);

  std::vector<std::vector<svt::svm::ConfusionMatrix>> confusions(budgets.size());
  std::vector<std::vector<double>> sv_counts(budgets.size());

  for (auto& fold : folds) {
    if (!fold.usable) continue;
    auto model = svt::svm::train_svm(fold.train_x, fold.train_y,
                                     svt::svm::quadratic_kernel(), config.train);
    std::vector<std::vector<double>> live_x = fold.train_x;
    std::vector<int> live_y = fold.train_y;
    for (std::size_t b = 0; b < budgets.size(); ++b) {
      if (model.num_support_vectors() > budgets[b]) {
        BudgetParams bp;
        bp.budget = budgets[b];
        model = budget_support_vectors(model, live_x, live_y, config.train, bp,
                                       /*report=*/nullptr, &live_x, &live_y);
      }
      std::vector<int> predicted(fold.test_x.size());
      if (quant) {
        const auto engine = QuantizedModel::build(model, *quant);
        for (std::size_t i = 0; i < fold.test_x.size(); ++i)
          predicted[i] = engine.classify(fold.test_x[i]);
      } else {
        for (std::size_t i = 0; i < fold.test_x.size(); ++i)
          predicted[i] = model.predict(fold.test_x[i]);
      }
      confusions[b].push_back(svt::svm::tally(fold.test_y, predicted));
      sv_counts[b].push_back(static_cast<double>(model.num_support_vectors()));
    }
  }

  std::vector<DesignPointResult> results(budgets.size());
  for (std::size_t b = 0; b < budgets.size(); ++b) {
    const auto avg = svt::svm::average_over_folds(confusions[b]);
    results[b].sensitivity = avg.sensitivity;
    results[b].specificity = avg.specificity;
    results[b].geometric_mean = avg.geometric_mean;
    double acc = 0.0;
    for (double v : sv_counts[b]) acc += v;
    results[b].mean_support_vectors =
        sv_counts[b].empty() ? 0.0 : acc / static_cast<double>(sv_counts[b].size());
    results[b].cost = cost_at(matrix.num_features(), results[b].mean_support_vectors, quant);
  }
  return results;
}

std::vector<DesignPointResult> sweep_quant_configs(const PreparedData& data,
                                                   const ExperimentConfig& config,
                                                   const std::vector<std::size_t>& keep,
                                                   std::size_t sv_budget,
                                                   const std::vector<QuantConfig>& configs) {
  const features::FeatureMatrix matrix =
      keep.empty() ? data.matrix : data.matrix.select_features(keep);
  const auto groups = capped_groups(data, config.max_folds);
  const auto gains = features::category_gains(all_indices_or(keep, matrix.num_features()));
  auto folds = build_folds(matrix, groups, gains);

  std::vector<std::vector<svt::svm::ConfusionMatrix>> confusions(configs.size());
  std::vector<double> sv_counts;

  for (auto& fold : folds) {
    if (!fold.usable) continue;
    auto model = svt::svm::train_svm(fold.train_x, fold.train_y,
                                     svt::svm::quadratic_kernel(), config.train);
    if (sv_budget > 0 && model.num_support_vectors() > sv_budget) {
      BudgetParams bp;
      bp.budget = sv_budget;
      model = budget_support_vectors(model, fold.train_x, fold.train_y, config.train, bp);
    }
    sv_counts.push_back(static_cast<double>(model.num_support_vectors()));
    for (std::size_t c = 0; c < configs.size(); ++c) {
      const auto engine = QuantizedModel::build(model, configs[c]);
      std::vector<int> predicted(fold.test_x.size());
      for (std::size_t i = 0; i < fold.test_x.size(); ++i)
        predicted[i] = engine.classify(fold.test_x[i]);
      confusions[c].push_back(svt::svm::tally(fold.test_y, predicted));
    }
  }

  double mean_nsv = 0.0;
  for (double v : sv_counts) mean_nsv += v;
  if (!sv_counts.empty()) mean_nsv /= static_cast<double>(sv_counts.size());

  std::vector<DesignPointResult> results(configs.size());
  for (std::size_t c = 0; c < configs.size(); ++c) {
    const auto avg = svt::svm::average_over_folds(confusions[c]);
    results[c].sensitivity = avg.sensitivity;
    results[c].specificity = avg.specificity;
    results[c].geometric_mean = avg.geometric_mean;
    results[c].mean_support_vectors = mean_nsv;
    results[c].cost = cost_at(matrix.num_features(), mean_nsv, configs[c]);
  }
  return results;
}

}  // namespace svt::core
