#include "core/tailoring.hpp"

#include <memory>
#include <stdexcept>

#include "common/assert.hpp"

namespace svt::core {

using svt::svm::CvOptions;
using svt::svm::StandardScaler;
using svt::svm::SvmModel;

std::vector<double> TailoredDetector::prepare_row(std::span<const double> raw_features) const {
  std::vector<double> x;
  x.reserve(selected_.size());
  for (std::size_t j : selected_) {
    if (j >= raw_features.size())
      throw std::invalid_argument("TailoredDetector::prepare_row: feature vector too short");
    x.push_back(raw_features[j]);
  }
  scaler_.transform_inplace(x);
  return x;
}

int TailoredDetector::classify(std::span<const double> raw_features) const {
  const auto x = prepare_row(raw_features);
  if (quantized_) return quantized_->classify(x);
  return model_.predict(x);
}

double TailoredDetector::decision_value(std::span<const double> raw_features) const {
  return model_.decision_value(prepare_row(raw_features));
}

hw::CostReport TailoredDetector::hardware_cost(const hw::TechModel& tech) const {
  hw::PipelineConfig config;
  config.num_features = model_.num_features();
  config.num_support_vectors = model_.num_support_vectors();
  if (quant_config_) {
    config.feature_bits = quant_config_->feature_bits;
    config.alpha_bits = quant_config_->alpha_bits;
    config.dot_truncate_bits = quant_config_->dot_truncate_bits;
    config.square_truncate_bits = quant_config_->square_truncate_bits;
  } else {
    config.feature_bits = 64;  // Float reference costed as the 64-bit design.
    config.alpha_bits = 64;
  }
  return hw::estimate_cost(config, tech);
}

TailoredDetector tailor_detector(std::span<const std::vector<double>> samples,
                                 std::span<const int> labels, const TailoringConfig& config) {
  if (samples.empty() || samples.size() != labels.size())
    throw std::invalid_argument("tailor_detector: bad training set");
  const std::size_t total_features = samples.front().size();
  if (config.num_features > total_features)
    throw std::invalid_argument("tailor_detector: num_features exceeds available features");

  TailoredDetector detector;

  // 1. Feature selection on the raw training matrix.
  if (!config.explicit_features.empty()) {
    for (std::size_t j : config.explicit_features) {
      if (j >= total_features)
        throw std::invalid_argument("tailor_detector: explicit feature index out of range");
    }
    detector.selected_ = config.explicit_features;
  } else if (config.num_features == 0 || config.num_features == total_features) {
    detector.selected_.resize(total_features);
    for (std::size_t j = 0; j < total_features; ++j) detector.selected_[j] = j;
  } else {
    const auto order = rank_features_by_redundancy(samples);
    detector.selected_ = order.keep_set(config.num_features);
  }

  std::vector<std::vector<double>> reduced;
  reduced.reserve(samples.size());
  for (const auto& row : samples) {
    std::vector<double> r;
    r.reserve(detector.selected_.size());
    for (std::size_t j : detector.selected_) r.push_back(row[j]);
    reduced.push_back(std::move(r));
  }

  // 2. Normalise and train.
  detector.scaler_ = StandardScaler(config.scaler_mode);
  if (!config.post_gains.empty()) {
    if (config.post_gains.size() != detector.selected_.size())
      throw std::invalid_argument("tailor_detector: post_gains size mismatch");
    detector.scaler_.set_post_gains(config.post_gains);
  }
  detector.scaler_.fit(reduced);
  const auto scaled = detector.scaler_.transform_all(reduced);
  std::vector<int> y(labels.begin(), labels.end());
  detector.model_ = svt::svm::train_svm(scaled, y, config.kernel, config.train);

  // 3. SV budgeting.
  if (config.sv_budget > 0 && detector.model_.num_support_vectors() > config.sv_budget) {
    BudgetParams bp;
    bp.budget = config.sv_budget;
    detector.model_ =
        budget_support_vectors(detector.model_, scaled, y, config.train, bp);
  }

  // 4. Fixed-point quantisation.
  detector.quant_config_ = config.quant;
  if (config.quant) detector.quantized_ = QuantizedModel::build(detector.model_, *config.quant);
  return detector;
}

CvOptions make_cv_options(const TailoringConfig& config) {
  CvOptions options;
  options.kernel = config.kernel;
  options.train = config.train;
  options.standardize = true;
  options.scaler_mode = config.scaler_mode;
  options.post_gains = config.post_gains;
  if (config.sv_budget > 0) {
    const auto budget = config.sv_budget;
    const auto train_params = config.train;
    options.transform = [budget, train_params](const SvmModel& model,
                                               std::span<const std::vector<double>> x,
                                               std::span<const int> y) {
      if (model.num_support_vectors() <= budget) return model;
      BudgetParams bp;
      bp.budget = budget;
      return budget_support_vectors(model, x, y, train_params, bp);
    };
  }
  if (config.quant) {
    const QuantConfig quant = *config.quant;
    options.classifier = [quant](const SvmModel& model, std::span<const std::vector<double>>,
                                 std::span<const int>) -> svt::svm::ClassifierFn {
      auto engine = std::make_shared<QuantizedModel>(QuantizedModel::build(model, quant));
      return [engine](std::span<const double> x) { return engine->classify(x); };
    };
  }
  return options;
}

}  // namespace svt::core
