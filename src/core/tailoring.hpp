// The combined tailoring flow (paper Section III, "Combining approximation
// techniques") and the user-facing tailored detector.
//
// tailor_detector() runs the full production flow on a training set:
//   1. rank features by aggregated Pearson redundancy and keep the best k,
//   2. train the quadratic SVM (class-weighted SMO),
//   3. budget the support-vector set by low-norm removal + retraining,
//   4. quantise the model for the Figure-2 fixed-point accelerator.
// The result classifies raw (unscaled, full-length) feature vectors and
// reports the hardware cost of its own design point.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/feature_selection.hpp"
#include "core/quantize.hpp"
#include "core/sv_budget.hpp"
#include "hw/accelerator_model.hpp"
#include "svm/cross_validation.hpp"
#include "svm/model.hpp"
#include "svm/scaler.hpp"
#include "svm/trainer.hpp"

namespace svt::core {

struct TailoringConfig {
  std::size_t num_features = 30;  ///< 0 = keep the full feature set.
  /// When non-empty, use exactly these feature indices instead of the
  /// correlation-driven selection (num_features is then ignored). Useful to
  /// restrict a deployment to front-end-robust feature groups.
  std::vector<std::size_t> explicit_features;
  std::size_t sv_budget = 68;     ///< 0 = no SV budget.
  std::optional<QuantConfig> quant = QuantConfig{};  ///< nullopt = float inference.
  svt::svm::Kernel kernel = svt::svm::quadratic_kernel();
  svt::svm::TrainParams train;
  svt::svm::ScalerMode scaler_mode = svt::svm::ScalerMode::kZScore;
  /// Per-feature post-normalisation gains (aligned with the *selected*
  /// features; empty = none). See features::category_gains.
  std::vector<double> post_gains;
};

/// A fully tailored seizure detector: feature selection + scaler + (budgeted)
/// SVM + optional fixed-point engine, bundled for deployment.
class TailoredDetector {
 public:
  /// Classify a raw full-length feature vector (all original features; the
  /// detector applies its own selection and centring). Throws on mismatch.
  int classify(std::span<const double> raw_features) const;

  /// Float decision value on the same inputs (diagnostics).
  double decision_value(std::span<const double> raw_features) const;

  /// The shared front half of classification: select this detector's
  /// features from a raw full-length vector and scale them. The returned
  /// row is what the decision engines (float or fixed-point) consume; the
  /// streaming runtime uses this to queue rows for batched classification.
  /// Throws std::invalid_argument if the raw vector is too short.
  std::vector<double> prepare_row(std::span<const double> raw_features) const;

  const std::vector<std::size_t>& selected_features() const { return selected_; }
  const svt::svm::SvmModel& model() const { return model_; }
  const std::optional<QuantizedModel>& quantized() const { return quantized_; }
  const svt::svm::StandardScaler& scaler() const { return scaler_; }

  /// Hardware cost of this detector's design point.
  hw::CostReport hardware_cost(const hw::TechModel& tech = hw::default_tech_model()) const;

  friend TailoredDetector tailor_detector(std::span<const std::vector<double>>,
                                          std::span<const int>, const TailoringConfig&);

 private:
  std::vector<std::size_t> selected_;
  svt::svm::StandardScaler scaler_;
  svt::svm::SvmModel model_;
  std::optional<QuantizedModel> quantized_;
  std::optional<QuantConfig> quant_config_;
};

/// Run the full flow on a (raw) training set. Throws std::invalid_argument
/// on empty/ragged inputs, single-class labels, or num_features exceeding
/// the available features.
TailoredDetector tailor_detector(std::span<const std::vector<double>> samples,
                                 std::span<const int> labels, const TailoringConfig& config);

/// Build the CV hooks corresponding to a tailoring config, so experiments can
/// evaluate the *generalisation* of a design point with leave-one-session-out
/// cross-validation (svm::cross_validate).
svt::svm::CvOptions make_cv_options(const TailoringConfig& config);

}  // namespace svt::core
