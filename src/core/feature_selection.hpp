// Correlation-driven feature selection (paper Section III, "Reducing the
// features set").
//
// The paper reduces the 53-feature set by (1) computing the pairwise Pearson
// correlation matrix (Eq. 4 / Figure 3), (2) summing the coefficients
// column-wise and removing the feature with the highest aggregated Pearson
// coefficient, and iterating the two phases. We implement exactly that loop
// and expose the full removal order so sweeps can evaluate every subset size
// without recomputation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace svt::core {

/// Symmetric Pearson correlation matrix of the feature columns of a
/// row-major sample matrix. Throws std::invalid_argument on empty or
/// ragged input.
std::vector<std::vector<double>> correlation_matrix(
    std::span<const std::vector<double>> samples);

/// Result of the iterative redundancy elimination.
struct SelectionOrder {
  /// Feature indices in removal order: removal_order[0] was removed first
  /// (the most redundant feature).
  std::vector<std::size_t> removal_order;

  /// The k features that *survive* when the set is reduced to size k,
  /// in ascending index order. Throws std::invalid_argument if k == 0 or
  /// k > total features.
  std::vector<std::size_t> keep_set(std::size_t k) const;

  std::size_t num_features() const { return removal_order.size(); }
};

/// Run the paper's iterative procedure: at each step, recompute the
/// correlation matrix restricted to the surviving features, aggregate
/// |Pearson| column-wise, and remove the feature with the highest aggregate.
/// Absolute values are used in the aggregation so strong negative
/// correlations also count as redundancy.
SelectionOrder rank_features_by_redundancy(std::span<const std::vector<double>> samples);

/// Ablation baseline: a deterministic pseudo-random removal order (seeded),
/// used to show the correlation-driven order is doing real work.
SelectionOrder random_removal_order(std::size_t num_features, std::uint64_t seed);

}  // namespace svt::core
