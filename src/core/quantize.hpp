// Fixed-point quantisation of a trained quadratic SVM and the bit-accurate
// integer inference engine (paper Section III, "Reducing bitwidths" +
// Figure 2).
//
// Pipeline mapping (all arithmetic is genuine int64/int128 integer math, with
// the exact widths published by hw::PipelineConfig):
//
//   features x_j, SVs    : Dbits two's complement, per-feature range
//                          [-2^Rj, 2^Rj] selected by Eq. 6 over the SV set;
//                          out-of-range values saturate.
//   MAC1 (dot product)   : products aligned to the widest feature scale by
//                          arithmetic right shifts of 2*(Rmax - Rj) -- the
//                          "scale-back operation" the paper implements with
//                          shifters; saturating accumulation.
//   +1 and truncation    : the kernel's +1 is added as round(1 / lsb_max^2);
//                          the low `dot_truncate_bits` (paper: 10) are then
//                          discarded.
//   square               : kernel value squared; low `square_truncate_bits`
//                          (paper: 10) discarded.
//   MAC2                 : multiplied by alpha_i*y_i quantised to Abits with
//                          a single global power-of-two range; accumulated
//                          with the quantised bias; the class is the sign of
//                          the accumulator (its MSB in hardware).
//
// The paper's comparison point "same bitwidth throughout the pipeline, same
// scaling factor among features" (Figures 6/7, right) is the `homogeneous`
// flag: every feature is forced to the global worst-case range Rmax.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "hw/accelerator_model.hpp"
#include "svm/model.hpp"

namespace svt::rt {
struct KernelScratch;  // rt/packed_kernel.hpp
}

namespace svt::core {

struct QuantConfig {
  int feature_bits = 9;        ///< Dbits.
  int alpha_bits = 15;         ///< Abits.
  /// Truncation depths after the dot product and the square. The paper
  /// discards 10 LSBs of raw-unit features whose typical values sit near the
  /// top of their power-of-two ranges; our features are mean-centred, so
  /// typical dot products sit ~4 bits lower in their range and the
  /// *equivalent retained precision* is 6 bits of truncation (see DESIGN.md).
  /// The engine additionally truncates enough for the squarer input to stay
  /// bit-accurate in 64-bit arithmetic (width-driven truncation).
  int dot_truncate_bits = 6;
  int square_truncate_bits = 6;
  bool homogeneous = false;    ///< Single global feature scale (ablation).
};

/// A quadratic SVM quantised for the Figure-2 accelerator.
class QuantizedModel {
 public:
  /// Quantise `model` (which must use the quadratic polynomial kernel).
  /// Throws std::invalid_argument for non-quadratic kernels, models without
  /// SVs, or configs whose stage widths exceed what bit-accurate int64/int128
  /// emulation supports (feature_bits <= 20 covers the paper's whole sweep).
  static QuantizedModel build(const svt::svm::SvmModel& model, const QuantConfig& config);

  /// Classify a (real-valued) feature vector: quantise, run the integer
  /// pipeline, return the sign (+1 / -1). Throws on dimension mismatch.
  int classify(std::span<const double> x) const;

  /// Batched classification: quantise every window and run the blocked
  /// packed-SV integer kernel (rt::batch_quantized_accumulators). Bit-exact
  /// with classify() applied per window. Throws on dimension mismatch.
  std::vector<int> classify_batch(std::span<const std::vector<double>> xs) const;

  /// The decision value reconstructed from the final integer accumulator
  /// (for tests and diagnostics; hardware only exposes the sign).
  double dequantized_decision(std::span<const double> x) const;

  /// Batched dequantised decision values; bit-exact accumulators vs the
  /// per-window path, scaled by the MAC2 LSB.
  std::vector<double> dequantized_decisions(std::span<const std::vector<double>> xs) const;

  /// Scratch variant: stages the quantised feature-major batch and the
  /// accumulators in `scratch` and writes the values into `out` (resized),
  /// so repeated batch classification allocates nothing once warm.
  /// Bit-identical to the allocating overload.
  void dequantized_decisions(std::span<const std::vector<double>> xs, rt::KernelScratch& scratch,
                             std::vector<double>& out) const;

  /// Quantise a test vector into Dbits integers (saturating, per-feature).
  std::vector<std::int64_t> quantize_input(std::span<const double> x) const;

  /// Text serialisation mirroring SvmModel's format: the quantised primaries
  /// (config, Eq.-6 ranges, packed SV table, alpha_y weights, kernel +1 and
  /// bias at their pipeline scales) are written exactly; every derived field
  /// (shift table, stage widths, MAC2 LSB scale) is recomputed on load, so a
  /// loaded model is bit-identical to the freshly built one and deployments
  /// skip requantisation at startup. load() throws std::invalid_argument on
  /// corrupt input.
  void save(std::ostream& os) const;
  static QuantizedModel load(std::istream& is);

  /// The hardware design point this model runs on.
  const hw::PipelineConfig& pipeline() const { return pipeline_; }

  /// Per-feature Eq. 6 ranges R_j.
  const std::vector<int>& feature_ranges() const { return ranges_; }

  int global_alpha_range_log2() const { return alpha_range_log2_; }
  std::size_t num_features() const { return ranges_.size(); }
  std::size_t num_support_vectors() const { return q_alpha_y_.size(); }
  const QuantConfig& config() const { return config_; }

 private:
  QuantizedModel() = default;

  /// Recompute every derived field (product shifts, Rmax, pipeline widths
  /// including width-driven truncation, MAC2 LSB scale) from the primaries
  /// (config_, ranges_, alpha_range_log2_) and validate; shared by build()
  /// and load() so both construction paths agree bit-for-bit.
  void compute_derived(std::size_t nsv);

  /// Integer decision accumulator (sign = class).
  __int128 decision_accumulator(std::span<const std::int64_t> qx) const;

  /// Batched accumulators over the packed (flattened) SV table; bit-exact
  /// with decision_accumulator() per window. The scratch variant stages the
  /// quantised batch in scratch.qxt and leaves the result in scratch.accs.
  std::vector<__int128> batch_accumulators(std::span<const std::vector<double>> xs) const;
  void batch_accumulators(std::span<const std::vector<double>> xs,
                          rt::KernelScratch& scratch) const;

  QuantConfig config_;
  hw::PipelineConfig pipeline_;
  std::vector<int> ranges_;                ///< R_j per feature.
  std::vector<int> product_shifts_;        ///< 2*(Rmax - R_j) per feature.
  int max_range_log2_ = 0;                 ///< Rmax.
  int alpha_range_log2_ = 0;               ///< Global range of alpha_y.
  std::vector<std::int64_t> q_sv_packed_;  ///< Row-major flattened nsv x nfeat SV table.
  std::vector<std::int64_t> q_alpha_y_;
  std::int64_t q_one_ = 0;                 ///< Kernel coef0 at the MAC1 scale.
  __int128 q_bias_ = 0;                    ///< Bias at the MAC2 scale.
  double acc2_scale_ = 1.0;                ///< Real value of one MAC2 LSB.
};

}  // namespace svt::core
