// Shared experiment scaffolding for the benches: dataset/feature preparation
// with environment-variable scaling, and the per-design-point evaluation
// loops behind every table and figure.
//
// Environment knobs (all optional):
//   SVT_WPS    windows per session (default 30; the paper's 140 h of data
//              correspond to ~116).
//   SVT_FOLDS  number of leave-one-session-out folds evaluated (default all
//              24; lower it for quick runs).
//   SVT_SEED   dataset generation seed (default 42).
//   SVT_CSV_DIR  where benches drop their CSV dumps (default ".").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/quantize.hpp"
#include "core/tailoring.hpp"
#include "ecg/dataset.hpp"
#include "features/extractor.hpp"
#include "hw/accelerator_model.hpp"
#include "svm/cross_validation.hpp"

namespace svt::core {

struct ExperimentConfig {
  ecg::DatasetParams dataset;
  svt::svm::TrainParams train;
  std::size_t max_folds = 0;  ///< 0 = all sessions.
  std::string csv_dir = ".";

  /// Defaults overridden by the SVT_* environment variables.
  static ExperimentConfig from_env();
};

/// Dataset + extracted features, ready for cross-validation.
struct PreparedData {
  ecg::Dataset dataset;
  features::FeatureMatrix matrix;

  /// Group ids for cross_validate, truncated to `max_folds` distinct
  /// sessions when requested (remaining sessions keep training-only roles).
  std::vector<int> groups() const;
};

/// Generate the cohort and extract all 53 features (deterministic).
PreparedData prepare_data(const ExperimentConfig& config);

/// Evaluate one design point with leave-one-session-out CV.
struct DesignPointResult {
  double sensitivity = 0.0;
  double specificity = 0.0;
  double geometric_mean = 0.0;
  double mean_support_vectors = 0.0;
  hw::CostReport cost;  ///< At the mean SV count of the folds.
};

/// `keep`: feature subset (empty = all). `sv_budget`: 0 = unbudgeted.
/// `quant`: nullopt = float inference (costed as the 64-bit design point).
DesignPointResult evaluate_design_point(const PreparedData& data,
                                        const ExperimentConfig& config,
                                        const std::vector<std::size_t>& keep,
                                        std::size_t sv_budget,
                                        const std::optional<QuantConfig>& quant,
                                        std::size_t max_folds_override = 0);

/// Figure-5 sweep: progressively tighter SV budgets. Budgets must be strictly
/// decreasing; each fold trains once and the budgeting continues from the
/// previous budget's surviving training set (which is exactly the paper's
/// iterative-removal procedure, observed at several stop points). Results are
/// aligned with `budgets`. `quant` optionally evaluates each budget through
/// the fixed-point engine.
std::vector<DesignPointResult> sweep_sv_budgets(const PreparedData& data,
                                                const ExperimentConfig& config,
                                                const std::vector<std::size_t>& keep,
                                                const std::vector<std::size_t>& budgets,
                                                const std::optional<QuantConfig>& quant = {});

/// Figure-6 sweep: evaluate many quantisation configs against the *same*
/// per-fold trained (and optionally budgeted) models. Results align with
/// `configs`.
std::vector<DesignPointResult> sweep_quant_configs(const PreparedData& data,
                                                   const ExperimentConfig& config,
                                                   const std::vector<std::size_t>& keep,
                                                   std::size_t sv_budget,
                                                   const std::vector<QuantConfig>& configs);

/// Read a size_t / uint64 environment variable (returns fallback if unset or
/// unparseable).
std::uint64_t env_u64(const char* name, std::uint64_t fallback);
double env_double(const char* name, double fallback);
std::string env_string(const char* name, const std::string& fallback);

}  // namespace svt::core
