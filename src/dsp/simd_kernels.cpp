#include "dsp/simd_kernels.hpp"

#if defined(__SSE2__) || defined(_M_X64)
#include <emmintrin.h>
#endif

namespace svt::dsp::detail {

common::SimdTier dsp_effective_tier() {
  common::SimdTier tier = common::simd_tier();
  if (tier == common::SimdTier::kAvx2 && !dsp_avx2_compiled()) tier = common::SimdTier::kSse2;
#if !(defined(__SSE2__) || defined(_M_X64))
  if (tier == common::SimdTier::kSse2) tier = common::SimdTier::kScalar;
#endif
  return tier;
}

namespace {

void lerp_grid_span_scalar(double start, double fs, double t_lo, double span, double v_lo,
                           double v_hi, std::size_t i0, std::size_t count, double* out) {
  for (std::size_t j = 0; j < count; ++j) {
    const double t = start + static_cast<double>(i0 + j) / fs;
    const double frac = (t - t_lo) / span;
    out[j] = v_lo * (1.0 - frac) + v_hi * frac;
  }
}

void taper_scalar(const double* x, const double* w, std::size_t n, double* interleaved) {
  for (std::size_t i = 0; i < n; ++i) {
    interleaved[2 * i] = x[i] * w[i];
    interleaved[2 * i + 1] = 0.0;
  }
}

void psd_bins_scalar(const double* interleaved, std::size_t k_begin, std::size_t k_end,
                     double norm, bool accumulate, double* power) {
  for (std::size_t k = k_begin; k < k_end; ++k) {
    const double re = interleaved[2 * k];
    const double im = interleaved[2 * k + 1];
    double p = (re * re + im * im) / norm;
    p *= 2.0;  // One-sided estimate folds the negative axis (interior bins).
    if (accumulate) {
      power[k] += p;
    } else {
      power[k] = p;
    }
  }
}

#if defined(__SSE2__) || defined(_M_X64)

void lerp_grid_span_sse2(double start, double fs, double t_lo, double span, double v_lo,
                         double v_hi, std::size_t i0, std::size_t count, double* out) {
  const __m128d start_v = _mm_set1_pd(start), fs_v = _mm_set1_pd(fs);
  const __m128d t_lo_v = _mm_set1_pd(t_lo), span_v = _mm_set1_pd(span);
  const __m128d v_lo_v = _mm_set1_pd(v_lo), v_hi_v = _mm_set1_pd(v_hi);
  const __m128d one = _mm_set1_pd(1.0);
  std::size_t j = 0;
  for (; j + 2 <= count; j += 2) {
    const __m128d iv = _mm_set_pd(static_cast<double>(i0 + j + 1), static_cast<double>(i0 + j));
    const __m128d t = _mm_add_pd(start_v, _mm_div_pd(iv, fs_v));
    const __m128d frac = _mm_div_pd(_mm_sub_pd(t, t_lo_v), span_v);
    const __m128d r = _mm_add_pd(_mm_mul_pd(v_lo_v, _mm_sub_pd(one, frac)),
                                 _mm_mul_pd(v_hi_v, frac));
    _mm_storeu_pd(out + j, r);
  }
  lerp_grid_span_scalar(start, fs, t_lo, span, v_lo, v_hi, i0 + j, count - j, out + j);
}

void taper_sse2(const double* x, const double* w, std::size_t n, double* interleaved) {
  const __m128d zero = _mm_setzero_pd();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d m = _mm_mul_pd(_mm_loadu_pd(x + i), _mm_loadu_pd(w + i));
    _mm_storeu_pd(interleaved + 2 * i, _mm_unpacklo_pd(m, zero));
    _mm_storeu_pd(interleaved + 2 * i + 2, _mm_unpackhi_pd(m, zero));
  }
  taper_scalar(x + i, w + i, n - i, interleaved + 2 * i);
}

void psd_bins_sse2(const double* interleaved, std::size_t k_begin, std::size_t k_end,
                   double norm, bool accumulate, double* power) {
  const __m128d norm_v = _mm_set1_pd(norm);
  const __m128d two = _mm_set1_pd(2.0);
  std::size_t k = k_begin;
  for (; k + 2 <= k_end; k += 2) {
    const __m128d c0 = _mm_loadu_pd(interleaved + 2 * k);      // re_k, im_k
    const __m128d c1 = _mm_loadu_pd(interleaved + 2 * k + 2);  // re_k+1, im_k+1
    const __m128d m0 = _mm_mul_pd(c0, c0);
    const __m128d m1 = _mm_mul_pd(c1, c1);
    // [re^2, re^2] + [im^2, im^2]: the same re*re + im*im operand order as
    // the scalar loop, two bins at a time.
    const __m128d sum = _mm_add_pd(_mm_unpacklo_pd(m0, m1), _mm_unpackhi_pd(m0, m1));
    __m128d p = _mm_div_pd(sum, norm_v);
    p = _mm_mul_pd(p, two);
    if (accumulate) p = _mm_add_pd(_mm_loadu_pd(power + k), p);
    _mm_storeu_pd(power + k, p);
  }
  psd_bins_scalar(interleaved, k, k_end, norm, accumulate, power);
}

#endif  // __SSE2__

}  // namespace

void lerp_grid_span(double start, double fs, double t_lo, double span, double v_lo, double v_hi,
                    std::size_t i0, std::size_t count, double* out) {
  switch (dsp_effective_tier()) {
    case common::SimdTier::kAvx2:
      lerp_grid_span_avx2(start, fs, t_lo, span, v_lo, v_hi, i0, count, out);
      return;
#if defined(__SSE2__) || defined(_M_X64)
    case common::SimdTier::kSse2:
      lerp_grid_span_sse2(start, fs, t_lo, span, v_lo, v_hi, i0, count, out);
      return;
#endif
    default: lerp_grid_span_scalar(start, fs, t_lo, span, v_lo, v_hi, i0, count, out); return;
  }
}

void taper_into_complex(const double* x, const double* w, std::size_t n, double* interleaved) {
  switch (dsp_effective_tier()) {
    case common::SimdTier::kAvx2: taper_into_complex_avx2(x, w, n, interleaved); return;
#if defined(__SSE2__) || defined(_M_X64)
    case common::SimdTier::kSse2: taper_sse2(x, w, n, interleaved); return;
#endif
    default: taper_scalar(x, w, n, interleaved); return;
  }
}

void psd_interior_bins(const double* interleaved, std::size_t k_begin, std::size_t k_end,
                       double norm, bool accumulate, double* power) {
  switch (dsp_effective_tier()) {
    case common::SimdTier::kAvx2:
      psd_interior_bins_avx2(interleaved, k_begin, k_end, norm, accumulate, power);
      return;
#if defined(__SSE2__) || defined(_M_X64)
    case common::SimdTier::kSse2:
      psd_bins_sse2(interleaved, k_begin, k_end, norm, accumulate, power);
      return;
#endif
    default: psd_bins_scalar(interleaved, k_begin, k_end, norm, accumulate, power); return;
  }
}

}  // namespace svt::dsp::detail
