#include "dsp/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "common/assert.hpp"

namespace svt::dsp {

bool is_power_of_two(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

std::size_t next_power_of_two(std::size_t n) {
  if (n == 0) throw std::invalid_argument("next_power_of_two: n == 0");
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

namespace {

void bit_reverse_permute(std::vector<std::complex<double>>& x) {
  const std::size_t n = x.size();
  std::size_t j = 0;
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j |= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
}

void fft_core(std::vector<std::complex<double>>& x, bool inverse) {
  const std::size_t n = x.size();
  if (!is_power_of_two(n)) throw std::invalid_argument("fft: size must be a power of two");
  bit_reverse_permute(x);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = x[i + k];
        const std::complex<double> v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& v : x) v /= static_cast<double>(n);
  }
}

}  // namespace

void fft_inplace(std::vector<std::complex<double>>& x) { fft_core(x, /*inverse=*/false); }

void ifft_inplace(std::vector<std::complex<double>>& x) { fft_core(x, /*inverse=*/true); }

std::vector<std::complex<double>> fft_real(std::span<const double> x, std::size_t fft_size) {
  if (x.empty()) throw std::invalid_argument("fft_real: empty input");
  std::size_t n = fft_size == 0 ? next_power_of_two(x.size()) : fft_size;
  if (!is_power_of_two(n) || n < x.size())
    throw std::invalid_argument("fft_real: fft_size must be a power of two >= input size");
  std::vector<std::complex<double>> buf(n, {0.0, 0.0});
  for (std::size_t i = 0; i < x.size(); ++i) buf[i] = {x[i], 0.0};
  fft_inplace(buf);
  return buf;
}

std::vector<double> magnitude_squared_spectrum(std::span<const double> x, std::size_t fft_size) {
  const auto spec = fft_real(x, fft_size);
  const std::size_t half = spec.size() / 2;
  std::vector<double> mag(half + 1);
  for (std::size_t k = 0; k <= half; ++k) mag[k] = std::norm(spec[k]);
  return mag;
}

FftPlan::FftPlan(std::size_t n) : n_(n) {
  if (!is_power_of_two(n)) throw std::invalid_argument("FftPlan: size must be a power of two");
  bitrev_.resize(n);
  for (std::size_t i = 0; i < n; ++i) bitrev_[i] = i;
  std::size_t j = 0;
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j |= bit;
    bitrev_[i] = j;
  }
  // Per-stage twiddle chains, generated with the same w *= wlen recurrence
  // fft_core runs inside each butterfly block: table lookups therefore feed
  // the butterflies the exact doubles the planless path computes.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = -2.0 * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    std::vector<std::complex<double>> stage(len / 2);
    std::complex<double> w(1.0, 0.0);
    for (std::size_t k = 0; k < len / 2; ++k) {
      stage[k] = w;
      w *= wlen;
    }
    twiddles_.push_back(std::move(stage));
  }
}

void fft_inplace(std::span<std::complex<double>> x, const FftPlan& plan) {
  const std::size_t n = x.size();
  if (n != plan.size()) throw std::invalid_argument("fft_inplace: size != plan size");
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = plan.bitrev_[i];
    if (i < j) std::swap(x[i], x[j]);
  }
  std::size_t stage = 0;
  for (std::size_t len = 2; len <= n; len <<= 1, ++stage) {
    const auto& tw = plan.twiddles_[stage];
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = x[i + k];
        const std::complex<double> v = x[i + k + len / 2] * tw[k];
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
      }
    }
  }
}

FftPlanCache::FftPlanCache(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument("FftPlanCache: capacity == 0");
}

const FftPlan& FftPlanCache::get(std::size_t n) {
  // Linear scan: the bound is single-digit, so this beats a map on both
  // lookup cost and locality.
  for (auto it = plans_.begin(); it != plans_.end(); ++it) {
    if (it->size() == n) {
      plans_.splice(plans_.begin(), plans_, it);  // Touch: move to MRU.
      return plans_.front();
    }
  }
  if (plans_.size() == capacity_) {
    plans_.pop_back();  // Evict the LRU plan.
    ++evictions_;
  }
  plans_.emplace_front(n);
  return plans_.front();
}

}  // namespace svt::dsp
