// AVX2 variants of the float feature-path kernels; compiled with
// -mavx2 -ffp-contract=off when the toolchain supports it (see
// CMakeLists.txt) and only called when runtime dispatch confirms AVX2.
// Every operation is elementwise IEEE in the scalar loop's order, so the
// results are bit-identical to the scalar reference.

#include "dsp/simd_kernels.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "common/assert.hpp"

namespace svt::dsp::detail {

bool dsp_avx2_compiled() {
#if defined(__AVX2__)
  return true;
#else
  return false;
#endif
}

#if defined(__AVX2__)

namespace {

void lerp_tail_scalar(double start, double fs, double t_lo, double span, double v_lo,
                      double v_hi, std::size_t i0, std::size_t count, double* out) {
  for (std::size_t j = 0; j < count; ++j) {
    const double t = start + static_cast<double>(i0 + j) / fs;
    const double frac = (t - t_lo) / span;
    out[j] = v_lo * (1.0 - frac) + v_hi * frac;
  }
}

}  // namespace

void lerp_grid_span_avx2(double start, double fs, double t_lo, double span, double v_lo,
                         double v_hi, std::size_t i0, std::size_t count, double* out) {
  const __m256d start_v = _mm256_set1_pd(start), fs_v = _mm256_set1_pd(fs);
  const __m256d t_lo_v = _mm256_set1_pd(t_lo), span_v = _mm256_set1_pd(span);
  const __m256d v_lo_v = _mm256_set1_pd(v_lo), v_hi_v = _mm256_set1_pd(v_hi);
  const __m256d one = _mm256_set1_pd(1.0);
  std::size_t j = 0;
  for (; j + 4 <= count; j += 4) {
    const __m256d iv = _mm256_set_pd(
        static_cast<double>(i0 + j + 3), static_cast<double>(i0 + j + 2),
        static_cast<double>(i0 + j + 1), static_cast<double>(i0 + j));
    const __m256d t = _mm256_add_pd(start_v, _mm256_div_pd(iv, fs_v));
    const __m256d frac = _mm256_div_pd(_mm256_sub_pd(t, t_lo_v), span_v);
    const __m256d r = _mm256_add_pd(_mm256_mul_pd(v_lo_v, _mm256_sub_pd(one, frac)),
                                    _mm256_mul_pd(v_hi_v, frac));
    _mm256_storeu_pd(out + j, r);
  }
  lerp_tail_scalar(start, fs, t_lo, span, v_lo, v_hi, i0 + j, count - j, out + j);
}

void taper_into_complex_avx2(const double* x, const double* w, std::size_t n,
                             double* interleaved) {
  const __m256d zero = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d m = _mm256_mul_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(w + i));
    // Interleave (m, 0) pairs: unpack gives [m0,0|m2,0] and [m1,0|m3,0] per
    // 128-bit half; the cross-half permutes restore index order.
    const __m256d a = _mm256_unpacklo_pd(m, zero);
    const __m256d b = _mm256_unpackhi_pd(m, zero);
    _mm256_storeu_pd(interleaved + 2 * i, _mm256_permute2f128_pd(a, b, 0x20));
    _mm256_storeu_pd(interleaved + 2 * i + 4, _mm256_permute2f128_pd(a, b, 0x31));
  }
  for (; i < n; ++i) {
    interleaved[2 * i] = x[i] * w[i];
    interleaved[2 * i + 1] = 0.0;
  }
}

void psd_interior_bins_avx2(const double* interleaved, std::size_t k_begin, std::size_t k_end,
                            double norm, bool accumulate, double* power) {
  const __m256d norm_v = _mm256_set1_pd(norm);
  const __m256d two = _mm256_set1_pd(2.0);
  std::size_t k = k_begin;
  for (; k + 4 <= k_end; k += 4) {
    const __m256d c0 = _mm256_loadu_pd(interleaved + 2 * k);      // re,im for k, k+1
    const __m256d c1 = _mm256_loadu_pd(interleaved + 2 * k + 4);  // re,im for k+2, k+3
    const __m256d m0 = _mm256_mul_pd(c0, c0);
    const __m256d m1 = _mm256_mul_pd(c1, c1);
    // hadd adds re^2 + im^2 per pair (scalar operand order), yielding
    // [p_k, p_k+2, p_k+1, p_k+3]; the permute restores bin order.
    const __m256d h = _mm256_hadd_pd(m0, m1);
    const __m256d sum = _mm256_permute4x64_pd(h, _MM_SHUFFLE(3, 1, 2, 0));
    __m256d p = _mm256_div_pd(sum, norm_v);
    p = _mm256_mul_pd(p, two);
    if (accumulate) p = _mm256_add_pd(_mm256_loadu_pd(power + k), p);
    _mm256_storeu_pd(power + k, p);
  }
  for (; k < k_end; ++k) {
    const double re = interleaved[2 * k];
    const double im = interleaved[2 * k + 1];
    double p = (re * re + im * im) / norm;
    p *= 2.0;
    if (accumulate) {
      power[k] += p;
    } else {
      power[k] = p;
    }
  }
}

#else  // !__AVX2__: dispatch clamps to SSE2, so these are never reached.

void lerp_grid_span_avx2(double, double, double, double, double, double, std::size_t,
                         std::size_t, double*) {
  SVT_ASSERT(false && "lerp_grid_span_avx2 called without AVX2 code compiled in");
}

void taper_into_complex_avx2(const double*, const double*, std::size_t, double*) {
  SVT_ASSERT(false && "taper_into_complex_avx2 called without AVX2 code compiled in");
}

void psd_interior_bins_avx2(const double*, std::size_t, std::size_t, double, bool, double*) {
  SVT_ASSERT(false && "psd_interior_bins_avx2 called without AVX2 code compiled in");
}

#endif

}  // namespace svt::dsp::detail
