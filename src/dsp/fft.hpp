// Radix-2 fast Fourier transform.
//
// Substrate for the power-spectral-density features (paper features 25-53,
// computed from the ECG-derived respiration series). Implemented from scratch:
// iterative in-place decimation-in-time radix-2 FFT with bit-reversal
// permutation, plus helpers for real-input spectra.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace svt::dsp {

/// True if n is a power of two (n >= 1).
bool is_power_of_two(std::size_t n);

/// Smallest power of two >= n (n >= 1). Throws on n == 0.
std::size_t next_power_of_two(std::size_t n);

/// In-place forward FFT. x.size() must be a power of two. Throws otherwise.
void fft_inplace(std::vector<std::complex<double>>& x);

/// In-place inverse FFT (includes the 1/N normalisation).
void ifft_inplace(std::vector<std::complex<double>>& x);

/// Forward FFT of a real series zero-padded to the next power of two
/// (or to fft_size if given, which must be a power of two >= x.size()).
std::vector<std::complex<double>> fft_real(std::span<const double> x, std::size_t fft_size = 0);

/// One-sided magnitude-squared spectrum |X[k]|^2 for k = 0..N/2 of a real
/// series (zero-padded to a power of two). Size is N/2+1.
std::vector<double> magnitude_squared_spectrum(std::span<const double> x,
                                               std::size_t fft_size = 0);

}  // namespace svt::dsp
