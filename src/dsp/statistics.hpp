// Descriptive statistics over real-valued series.
//
// These are the numerical primitives behind the HRV / Lorentz-plot features
// (paper Section III, "Reducing the features set") and behind the
// correlation-driven feature selection (paper Eq. 4).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace svt::dsp {

/// Arithmetic mean. Throws std::invalid_argument on an empty span.
double mean(std::span<const double> x);

/// Population variance (divides by N). Throws on empty input.
double variance_population(std::span<const double> x);

/// Sample variance (divides by N-1). Throws if fewer than two samples.
double variance_sample(std::span<const double> x);

/// Population standard deviation.
double stddev_population(std::span<const double> x);

/// Sample standard deviation.
double stddev_sample(std::span<const double> x);

/// Root mean square of the series. Throws on empty input.
double rms(std::span<const double> x);

/// Minimum value. Throws on empty input.
double min_value(std::span<const double> x);

/// Maximum value. Throws on empty input.
double max_value(std::span<const double> x);

/// Median (interpolated for even-sized inputs). Throws on empty input.
double median(std::span<const double> x);

/// Linear-interpolated percentile, p in [0,100]. Throws on empty input or
/// out-of-range p.
double percentile(std::span<const double> x, double p);

/// percentile() over an ALREADY ascending-sorted span (no copy, no sort).
/// The scratch feature path sorts once and reads several percentiles from
/// the same buffer; percentile() delegates here, so both agree bit-for-bit.
double percentile_sorted(std::span<const double> sorted, double p);

/// Inter-quartile range (P75 - P25).
double iqr(std::span<const double> x);

/// Fisher skewness (population form). Returns 0 for constant series.
double skewness(std::span<const double> x);

/// Excess kurtosis (population form). Returns 0 for constant series.
double kurtosis_excess(std::span<const double> x);

/// Population covariance between two equally-sized series. Throws on size
/// mismatch or empty input.
double covariance_population(std::span<const double> x, std::span<const double> y);

/// Pearson correlation coefficient (paper Eq. 4). Returns 0 when either
/// series is constant (the paper's redundancy analysis treats a constant
/// feature as uncorrelated rather than undefined).
double pearson(std::span<const double> x, std::span<const double> y);

/// Successive differences x[i+1]-x[i]; size N-1. Throws if x has < 2 samples.
std::vector<double> successive_differences(std::span<const double> x);

/// Scratch variant: differences land in `out` (resized; capacity reused).
/// The allocating overload and the zero-allocation HRV path share this
/// implementation. Throws if x has < 2 samples.
void successive_differences_into(std::span<const double> x, std::vector<double>& out);

/// Fraction (in [0,1]) of values with |v| > threshold. Shared by
/// fraction_successive_diff_above and the scratch HRV path.
double fraction_abs_above(std::span<const double> values, double threshold);

/// Root mean square of successive differences (the HRV "RMSSD" primitive).
double rmssd(std::span<const double> x);

/// Fraction (in [0,1]) of successive differences with |diff| > threshold
/// (the HRV "pNNx" primitive). Throws if x has < 2 samples.
double fraction_successive_diff_above(std::span<const double> x, double threshold);

/// Biased autocorrelation r[k] = (1/N) * sum_{n} x[n] x[n+k], k = 0..max_lag.
/// Throws if max_lag >= x.size().
std::vector<double> autocorrelation(std::span<const double> x, std::size_t max_lag);

/// Remove the arithmetic mean in place.
void remove_mean(std::vector<double>& x);

/// Remove a least-squares linear trend in place.
void remove_linear_trend(std::vector<double>& x);

/// Shannon entropy (bits) of a fixed-bin histogram of x over [min,max].
/// Returns 0 for constant series. Throws if bins == 0.
double histogram_entropy(std::span<const double> x, std::size_t bins);

}  // namespace svt::dsp
