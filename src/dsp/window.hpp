// Window (taper) functions for spectral estimation.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace svt::dsp {

enum class WindowType { kRectangular, kHann, kHamming, kBlackman };

/// Human-readable name of a window type.
std::string window_name(WindowType type);

/// Window coefficients of the given length (symmetric form). Throws on n == 0.
std::vector<double> make_window(WindowType type, std::size_t n);

/// Sum of squared window coefficients (used for PSD normalisation).
double window_power(std::span<const double> w);

}  // namespace svt::dsp
