#include "dsp/ar_model.hpp"

#include <cmath>
#include <complex>
#include <numbers>
#include <stdexcept>

#include "common/assert.hpp"
#include "dsp/statistics.hpp"

namespace svt::dsp {

std::vector<double> ArModel::spectrum(std::span<const double> frequencies_hz, double fs_hz) const {
  if (fs_hz <= 0.0) throw std::invalid_argument("ArModel::spectrum: fs_hz <= 0");
  std::vector<double> psd(frequencies_hz.size());
  for (std::size_t i = 0; i < frequencies_hz.size(); ++i) {
    const double w = 2.0 * std::numbers::pi * frequencies_hz[i] / fs_hz;
    std::complex<double> denom(1.0, 0.0);
    for (std::size_t k = 0; k < coefficients.size(); ++k) {
      const double kk = static_cast<double>(k + 1);
      denom -= coefficients[k] * std::exp(std::complex<double>(0.0, -w * kk));
    }
    psd[i] = 2.0 * noise_variance / (fs_hz * std::norm(denom));
  }
  return psd;
}

double ArModel::predict_next(std::span<const double> x) const {
  if (x.size() < coefficients.size())
    throw std::invalid_argument("ArModel::predict_next: series shorter than model order");
  double acc = 0.0;
  for (std::size_t k = 0; k < coefficients.size(); ++k)
    acc += coefficients[k] * x[x.size() - 1 - k];
  return acc;
}

ArModel levinson_durbin(std::span<const double> autocorr, std::size_t order) {
  if (order == 0) throw std::invalid_argument("levinson_durbin: order == 0");
  if (autocorr.size() < order + 1)
    throw std::invalid_argument("levinson_durbin: need order+1 autocorrelation lags");
  if (autocorr[0] <= 0.0) throw std::invalid_argument("levinson_durbin: r[0] <= 0");

  std::vector<double> a(order, 0.0);   // Predictor coefficients a1..ap.
  std::vector<double> prev(order, 0.0);
  double err = autocorr[0];
  for (std::size_t m = 0; m < order; ++m) {
    double acc = autocorr[m + 1];
    for (std::size_t k = 0; k < m; ++k) acc -= a[k] * autocorr[m - k];
    const double reflection = err > 0.0 ? acc / err : 0.0;
    prev = a;
    a[m] = reflection;
    for (std::size_t k = 0; k < m; ++k) a[k] = prev[k] - reflection * prev[m - 1 - k];
    err *= (1.0 - reflection * reflection);
    if (err < 0.0) err = 0.0;
  }
  return ArModel{std::move(a), err};
}

ArModel ar_yule_walker(std::span<const double> x, std::size_t order) {
  if (order == 0) throw std::invalid_argument("ar_yule_walker: order == 0");
  if (x.size() <= order) throw std::invalid_argument("ar_yule_walker: series too short");
  std::vector<double> centred(x.begin(), x.end());
  remove_mean(centred);
  const auto r = autocorrelation(centred, order);
  if (r[0] <= 0.0) {
    // Constant series: all-zero model with zero driving noise.
    return ArModel{std::vector<double>(order, 0.0), 0.0};
  }
  return levinson_durbin(r, order);
}

ArModel ar_burg(std::span<const double> x, std::size_t order) {
  BurgScratch scratch;
  ar_burg(x, order, scratch);
  return ArModel{std::move(scratch.a), scratch.noise_variance};
}

void ar_burg(std::span<const double> x, std::size_t order, BurgScratch& scratch) {
  if (order == 0) throw std::invalid_argument("ar_burg: order == 0");
  if (x.size() <= order) throw std::invalid_argument("ar_burg: series too short");
  auto& centred = scratch.centred;
  centred.assign(x.begin(), x.end());
  remove_mean(centred);
  const std::size_t n = centred.size();

  auto& f = scratch.f;  // Forward prediction errors.
  auto& b = scratch.b;  // Backward prediction errors.
  auto& a = scratch.a;  // Predictor coefficients built incrementally.
  f.assign(centred.begin(), centred.end());
  b.assign(centred.begin(), centred.end());
  a.clear();
  a.reserve(order);

  double err = 0.0;
  for (double v : centred) err += v * v;
  err /= static_cast<double>(n);
  if (err <= 0.0) {
    a.assign(order, 0.0);
    scratch.noise_variance = 0.0;
    return;
  }

  for (std::size_t m = 0; m < order; ++m) {
    // Reflection coefficient k_m = 2 * sum f[i] b[i-1] / (sum f^2 + sum b^2).
    double num = 0.0, den = 0.0;
    for (std::size_t i = m + 1; i < n; ++i) {
      num += f[i] * b[i - 1];
      den += f[i] * f[i] + b[i - 1] * b[i - 1];
    }
    const double k = den > 0.0 ? 2.0 * num / den : 0.0;

    // Update predictor coefficients (step-up recursion).
    auto& prev = scratch.prev;
    prev.assign(a.begin(), a.end());
    a.push_back(k);
    for (std::size_t j = 0; j < m; ++j) a[j] = prev[j] - k * prev[m - 1 - j];

    // Update prediction errors (backwards in index to reuse b[i-1]).
    for (std::size_t i = n - 1; i > m; --i) {
      const double fi = f[i];
      const double bi = b[i - 1];
      f[i] = fi - k * bi;
      b[i] = bi - k * fi;
    }
    err *= (1.0 - k * k);
    if (err < 0.0) err = 0.0;
  }
  scratch.noise_variance = err;
}

std::vector<double> reflection_to_predictor(std::span<const double> reflection) {
  std::vector<double> a;
  a.reserve(reflection.size());
  for (std::size_t m = 0; m < reflection.size(); ++m) {
    const double k = reflection[m];
    std::vector<double> prev = a;
    a.push_back(k);
    for (std::size_t j = 0; j < m; ++j) a[j] = prev[j] - k * prev[m - 1 - j];
  }
  return a;
}

}  // namespace svt::dsp
