#include "dsp/filter.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace svt::dsp {

Biquad::Biquad(double b0, double b1, double b2, double a1, double a2)
    : b0_(b0), b1_(b1), b2_(b2), a1_(a1), a2_(a2) {}

void Biquad::reset() { x1_ = x2_ = y1_ = y2_ = 0.0; }

std::vector<double> Biquad::filter(std::span<const double> x) {
  reset();
  std::vector<double> y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = process(x[i]);
  return y;
}

namespace {

void require_cutoff(double cutoff_hz, double fs_hz, const char* what) {
  if (fs_hz <= 0.0) throw std::invalid_argument(std::string(what) + ": fs_hz <= 0");
  if (cutoff_hz <= 0.0 || cutoff_hz >= fs_hz / 2.0)
    throw std::invalid_argument(std::string(what) + ": cutoff outside (0, fs/2)");
}

}  // namespace

Biquad butterworth_lowpass(double cutoff_hz, double fs_hz) {
  require_cutoff(cutoff_hz, fs_hz, "butterworth_lowpass");
  const double k = std::tan(std::numbers::pi * cutoff_hz / fs_hz);
  const double q = 1.0 / std::numbers::sqrt2;
  const double norm = 1.0 / (1.0 + k / q + k * k);
  const double b0 = k * k * norm;
  return Biquad(b0, 2.0 * b0, b0, 2.0 * (k * k - 1.0) * norm, (1.0 - k / q + k * k) * norm);
}

Biquad butterworth_highpass(double cutoff_hz, double fs_hz) {
  require_cutoff(cutoff_hz, fs_hz, "butterworth_highpass");
  const double k = std::tan(std::numbers::pi * cutoff_hz / fs_hz);
  const double q = 1.0 / std::numbers::sqrt2;
  const double norm = 1.0 / (1.0 + k / q + k * k);
  const double b0 = norm;
  return Biquad(b0, -2.0 * b0, b0, 2.0 * (k * k - 1.0) * norm, (1.0 - k / q + k * k) * norm);
}

std::vector<double> bandpass_filter(std::span<const double> x, double lo_hz, double hi_hz,
                                    double fs_hz) {
  if (!(0.0 < lo_hz && lo_hz < hi_hz && hi_hz < fs_hz / 2.0))
    throw std::invalid_argument("bandpass_filter: need 0 < lo < hi < fs/2");
  auto hp = butterworth_highpass(lo_hz, fs_hz);
  auto lp = butterworth_lowpass(hi_hz, fs_hz);
  auto y = hp.filter(x);
  return lp.filter(y);
}

namespace {

void require_odd_window(std::size_t window, const char* what) {
  if (window == 0) throw std::invalid_argument(std::string(what) + ": window == 0");
  if (window % 2 == 0) throw std::invalid_argument(std::string(what) + ": window must be odd");
}

}  // namespace

std::vector<double> moving_average(std::span<const double> x, std::size_t window) {
  require_odd_window(window, "moving_average");
  const std::size_t half = window / 2;
  std::vector<double> y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const std::size_t lo = i >= half ? i - half : 0;
    const std::size_t hi = std::min(x.size() - 1, i + half);
    double acc = 0.0;
    for (std::size_t j = lo; j <= hi; ++j) acc += x[j];
    y[i] = acc / static_cast<double>(hi - lo + 1);
  }
  return y;
}

std::vector<double> moving_median(std::span<const double> x, std::size_t window) {
  require_odd_window(window, "moving_median");
  const std::size_t half = window / 2;
  std::vector<double> y(x.size());
  std::vector<double> buf;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const std::size_t lo = i >= half ? i - half : 0;
    const std::size_t hi = std::min(x.size() - 1, i + half);
    buf.assign(x.begin() + static_cast<std::ptrdiff_t>(lo),
               x.begin() + static_cast<std::ptrdiff_t>(hi + 1));
    std::sort(buf.begin(), buf.end());
    const std::size_t n = buf.size();
    y[i] = n % 2 == 1 ? buf[n / 2] : 0.5 * (buf[n / 2 - 1] + buf[n / 2]);
  }
  return y;
}

std::vector<double> five_point_derivative(std::span<const double> x, double fs_hz) {
  if (fs_hz <= 0.0) throw std::invalid_argument("five_point_derivative: fs_hz <= 0");
  std::vector<double> y(x.size(), 0.0);
  auto at = [&](std::ptrdiff_t i) {
    i = std::clamp<std::ptrdiff_t>(i, 0, static_cast<std::ptrdiff_t>(x.size()) - 1);
    return x[static_cast<std::size_t>(i)];
  };
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(x.size()); ++i) {
    y[static_cast<std::size_t>(i)] =
        fs_hz * (2.0 * at(i) + at(i - 1) - at(i - 3) - 2.0 * at(i - 4)) / 8.0;
  }
  return y;
}

std::vector<double> moving_window_integrate(std::span<const double> x, std::size_t window) {
  if (window == 0) throw std::invalid_argument("moving_window_integrate: window == 0");
  std::vector<double> y(x.size(), 0.0);
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += x[i];
    if (i >= window) acc -= x[i - window];
    const std::size_t n = std::min(i + 1, window);
    y[i] = acc / static_cast<double>(n);
  }
  return y;
}

}  // namespace svt::dsp
