#include "dsp/window.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace svt::dsp {

std::string window_name(WindowType type) {
  switch (type) {
    case WindowType::kRectangular: return "rectangular";
    case WindowType::kHann: return "hann";
    case WindowType::kHamming: return "hamming";
    case WindowType::kBlackman: return "blackman";
  }
  return "unknown";
}

std::vector<double> make_window(WindowType type, std::size_t n) {
  if (n == 0) throw std::invalid_argument("make_window: n == 0");
  std::vector<double> w(n, 1.0);
  if (n == 1 || type == WindowType::kRectangular) return w;
  const double denom = static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / denom;
    switch (type) {
      case WindowType::kRectangular: break;
      case WindowType::kHann:
        w[i] = 0.5 - 0.5 * std::cos(2.0 * std::numbers::pi * t);
        break;
      case WindowType::kHamming:
        w[i] = 0.54 - 0.46 * std::cos(2.0 * std::numbers::pi * t);
        break;
      case WindowType::kBlackman:
        w[i] = 0.42 - 0.5 * std::cos(2.0 * std::numbers::pi * t) +
               0.08 * std::cos(4.0 * std::numbers::pi * t);
        break;
    }
  }
  return w;
}

double window_power(std::span<const double> w) {
  double acc = 0.0;
  for (double v : w) acc += v * v;
  return acc;
}

}  // namespace svt::dsp
