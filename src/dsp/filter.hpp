// Digital filters used by the ECG acquisition path (Pan-Tompkins QRS
// detection) and by the EDR preprocessing.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace svt::dsp {

/// Second-order IIR section (biquad), direct form I.
/// y[n] = b0 x[n] + b1 x[n-1] + b2 x[n-2] - a1 y[n-1] - a2 y[n-2].
class Biquad {
 public:
  Biquad() = default;
  Biquad(double b0, double b1, double b2, double a1, double a2);

  /// Process one sample, updating internal state. Inline: the streaming QRS
  /// detector runs two of these per raw sample, where an out-of-line call
  /// would dominate the per-sample cost.
  double process(double x) {
    const double y = b0_ * x + b1_ * x1_ + b2_ * x2_ - a1_ * y1_ - a2_ * y2_;
    x2_ = x1_;
    x1_ = x;
    y2_ = y1_;
    y1_ = y;
    return y;
  }

  /// Reset internal state to zero.
  void reset();

  /// Filter a whole series (stateless convenience; resets first).
  std::vector<double> filter(std::span<const double> x);

  double b0() const { return b0_; }
  double b1() const { return b1_; }
  double b2() const { return b2_; }
  double a1() const { return a1_; }
  double a2() const { return a2_; }

 private:
  double b0_ = 1.0, b1_ = 0.0, b2_ = 0.0;
  double a1_ = 0.0, a2_ = 0.0;
  double x1_ = 0.0, x2_ = 0.0, y1_ = 0.0, y2_ = 0.0;
};

/// Butterworth 2nd-order low-pass biquad (bilinear transform).
/// Throws if cutoff_hz <= 0 or cutoff_hz >= fs_hz/2.
Biquad butterworth_lowpass(double cutoff_hz, double fs_hz);

/// Butterworth 2nd-order high-pass biquad.
Biquad butterworth_highpass(double cutoff_hz, double fs_hz);

/// Band-pass as a high-pass/low-pass cascade. Throws unless
/// 0 < lo_hz < hi_hz < fs_hz/2.
std::vector<double> bandpass_filter(std::span<const double> x, double lo_hz, double hi_hz,
                                    double fs_hz);

/// Centred moving average of odd window length (edges use shrunken windows).
/// Throws if window == 0 or window is even.
std::vector<double> moving_average(std::span<const double> x, std::size_t window);

/// Centred moving median of odd window length (edges use shrunken windows).
std::vector<double> moving_median(std::span<const double> x, std::size_t window);

/// Five-point derivative used by Pan-Tompkins:
/// y[n] = (2x[n] + x[n-1] - x[n-3] - 2x[n-4]) / 8 (scaled by fs).
std::vector<double> five_point_derivative(std::span<const double> x, double fs_hz);

/// Moving-window integration (rectangular, trailing) of given length in
/// samples; Pan-Tompkins stage. Throws if window == 0.
std::vector<double> moving_window_integrate(std::span<const double> x, std::size_t window);

}  // namespace svt::dsp
