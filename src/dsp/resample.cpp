#include "dsp/resample.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/assert.hpp"
#include "dsp/simd_kernels.hpp"

namespace svt::dsp {

namespace {

void validate_series(std::span<const double> times_s, std::span<const double> values,
                     const char* what) {
  if (times_s.size() != values.size())
    throw std::invalid_argument(std::string(what) + ": size mismatch");
  if (times_s.size() < 2)
    throw std::invalid_argument(std::string(what) + ": need at least 2 samples");
  for (std::size_t i = 1; i < times_s.size(); ++i) {
    if (times_s[i] <= times_s[i - 1])
      throw std::invalid_argument(std::string(what) + ": times must be strictly increasing");
  }
}

/// interpolate_at without the per-call series validation (the resampling
/// loop validates once up front); arithmetic is identical.
double interpolate_unchecked(std::span<const double> times_s, std::span<const double> values,
                             double query_time_s) {
  if (query_time_s <= times_s.front()) return values.front();
  if (query_time_s >= times_s.back()) return values.back();
  // First element strictly greater than the query.
  const auto it = std::upper_bound(times_s.begin(), times_s.end(), query_time_s);
  const auto hi = static_cast<std::size_t>(std::distance(times_s.begin(), it));
  const std::size_t lo = hi - 1;
  const double span = times_s[hi] - times_s[lo];
  SVT_ASSERT(span > 0.0);
  const double frac = (query_time_s - times_s[lo]) / span;
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace

double interpolate_at(std::span<const double> times_s, std::span<const double> values,
                      double query_time_s) {
  validate_series(times_s, values, "interpolate_at");
  return interpolate_unchecked(times_s, values, query_time_s);
}

void resample_linear_into(std::span<const double> times_s, std::span<const double> values,
                          double fs_hz, double& start_time_s, std::vector<double>& out_values) {
  validate_series(times_s, values, "resample_linear");
  if (fs_hz <= 0.0) throw std::invalid_argument("resample_linear: fs_hz <= 0");
  start_time_s = times_s.front();
  const double duration = times_s.back() - times_s.front();
  const auto n = static_cast<std::size_t>(std::floor(duration * fs_hz)) + 1;
  out_values.resize(n);

  // Grid times are monotone, so instead of a binary search per point the
  // source segment advances with a single forward walk, and all grid points
  // falling inside one segment are interpolated by the vectorised kernel.
  // Every comparison and every arithmetic operation matches the per-point
  // interpolate_unchecked path, so the output is bit-identical to it.
  const double t_front = times_s.front();
  const double t_back = times_s.back();
  std::size_t i = 0;
  while (i < n) {  // Front clamp.
    const double t = start_time_s + static_cast<double>(i) / fs_hz;
    if (!(t <= t_front)) break;
    out_values[i++] = values.front();
  }
  std::size_t hi = 1;
  while (i < n) {
    const double t = start_time_s + static_cast<double>(i) / fs_hz;
    if (t >= t_back) break;
    while (times_s[hi] <= t) ++hi;  // First knot past t, as upper_bound finds.
    std::size_t j = i + 1;          // Extend the run sharing this segment.
    while (j < n) {
      const double tj = start_time_s + static_cast<double>(j) / fs_hz;
      if (tj >= t_back || times_s[hi] <= tj) break;
      ++j;
    }
    const std::size_t lo = hi - 1;
    const double span = times_s[hi] - times_s[lo];
    SVT_ASSERT(span > 0.0);
    detail::lerp_grid_span(start_time_s, fs_hz, times_s[lo], span, values[lo], values[hi], i,
                           j - i, out_values.data() + i);
    i = j;
  }
  for (; i < n; ++i) out_values[i] = values.back();  // Back clamp.
}

UniformSeries resample_linear(std::span<const double> times_s, std::span<const double> values,
                              double fs_hz) {
  UniformSeries out;
  out.fs_hz = fs_hz;
  resample_linear_into(times_s, values, fs_hz, out.start_time_s, out.values);
  return out;
}

}  // namespace svt::dsp
