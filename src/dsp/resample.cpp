#include "dsp/resample.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/assert.hpp"

namespace svt::dsp {

namespace {

void validate_series(std::span<const double> times_s, std::span<const double> values,
                     const char* what) {
  if (times_s.size() != values.size())
    throw std::invalid_argument(std::string(what) + ": size mismatch");
  if (times_s.size() < 2)
    throw std::invalid_argument(std::string(what) + ": need at least 2 samples");
  for (std::size_t i = 1; i < times_s.size(); ++i) {
    if (times_s[i] <= times_s[i - 1])
      throw std::invalid_argument(std::string(what) + ": times must be strictly increasing");
  }
}

/// interpolate_at without the per-call series validation (the resampling
/// loop validates once up front); arithmetic is identical.
double interpolate_unchecked(std::span<const double> times_s, std::span<const double> values,
                             double query_time_s) {
  if (query_time_s <= times_s.front()) return values.front();
  if (query_time_s >= times_s.back()) return values.back();
  // First element strictly greater than the query.
  const auto it = std::upper_bound(times_s.begin(), times_s.end(), query_time_s);
  const auto hi = static_cast<std::size_t>(std::distance(times_s.begin(), it));
  const std::size_t lo = hi - 1;
  const double span = times_s[hi] - times_s[lo];
  SVT_ASSERT(span > 0.0);
  const double frac = (query_time_s - times_s[lo]) / span;
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace

double interpolate_at(std::span<const double> times_s, std::span<const double> values,
                      double query_time_s) {
  validate_series(times_s, values, "interpolate_at");
  return interpolate_unchecked(times_s, values, query_time_s);
}

void resample_linear_into(std::span<const double> times_s, std::span<const double> values,
                          double fs_hz, double& start_time_s, std::vector<double>& out_values) {
  validate_series(times_s, values, "resample_linear");
  if (fs_hz <= 0.0) throw std::invalid_argument("resample_linear: fs_hz <= 0");
  start_time_s = times_s.front();
  const double duration = times_s.back() - times_s.front();
  const auto n = static_cast<std::size_t>(std::floor(duration * fs_hz)) + 1;
  out_values.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = start_time_s + static_cast<double>(i) / fs_hz;
    out_values[i] = interpolate_unchecked(times_s, values, t);
  }
}

UniformSeries resample_linear(std::span<const double> times_s, std::span<const double> values,
                              double fs_hz) {
  UniformSeries out;
  out.fs_hz = fs_hz;
  resample_linear_into(times_s, values, fs_hz, out.start_time_s, out.values);
  return out;
}

}  // namespace svt::dsp
