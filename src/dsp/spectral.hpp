// Power spectral density estimation (periodogram and Welch's method) and
// band-power utilities.
//
// The paper's PSD feature group (features 25-53) is the spectral density of
// the ECG-derived respiration series "in various bands"; this module provides
// the Welch estimator and band integration those features are built on.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "dsp/fft.hpp"
#include "dsp/window.hpp"

namespace svt::dsp {

/// A one-sided PSD estimate: power[k] corresponds to frequency_hz[k].
struct PsdEstimate {
  std::vector<double> frequency_hz;
  std::vector<double> power;  ///< Units: input^2 / Hz.

  /// Frequency resolution (spacing between bins) in Hz.
  double resolution_hz() const;
};

/// One-sided periodogram of a (detrended) real series sampled at fs_hz.
/// Throws on empty input or fs_hz <= 0.
PsdEstimate periodogram(std::span<const double> x, double fs_hz,
                        WindowType window = WindowType::kHann);

/// Parameters for Welch's averaged-periodogram method.
struct WelchParams {
  std::size_t segment_length = 256;   ///< Samples per segment.
  double overlap_fraction = 0.5;      ///< In [0,1); 0.5 = 50% overlap.
  WindowType window = WindowType::kHann;
  bool detrend_segments = true;       ///< Remove per-segment mean.
};

/// Welch PSD estimate. If the series is shorter than one segment, falls back
/// to a single periodogram over the whole series. Throws on empty input,
/// fs_hz <= 0, segment_length == 0 or overlap outside [0,1).
PsdEstimate welch_psd(std::span<const double> x, double fs_hz, const WelchParams& params = {});

/// Reusable workspace for the scratch Welch path: segment copy, cached
/// taper, FFT buffer and per-size FFT plans. Allocation-free once warm
/// (every buffer keeps its capacity between calls; the plan cache holds one
/// plan per distinct FFT size seen).
struct SpectralScratch {
  std::vector<double> segment;
  std::vector<double> window;  ///< Cached taper for (window_type, window_len).
  WindowType window_type = WindowType::kHann;
  std::size_t window_len = 0;
  std::vector<std::complex<double>> fft_buf;
  FftPlanCache plans;
};

/// Scratch variant of welch_psd: the estimate lands in `out` (resized;
/// capacity reused across calls). Same validation rules and bit-identical
/// results — the allocating overload above delegates here.
void welch_psd(std::span<const double> x, double fs_hz, const WelchParams& params,
               SpectralScratch& scratch, PsdEstimate& out);

/// One Welch segment's one-sided PSD, exactly as one iteration of the
/// welch_psd averaging loop computes it: copy x into the scratch segment
/// buffer, remove the per-segment mean when params.detrend_segments, taper
/// with the params window (cached in the scratch), FFT zero-padded to
/// next_power_of_two(x.size()) and normalise per bin. `power` is resized to
/// nfft/2+1. The caller owns segmentation: x IS the segment, whatever
/// params.segment_length says. This is the building block the streaming
/// segment cache memoizes — averaging k such vectors bin-wise in segment
/// order and dividing by k reproduces welch_psd bit-for-bit (shared
/// implementation, same accumulation order).
void welch_segment_psd(std::span<const double> x, double fs_hz, const WelchParams& params,
                       SpectralScratch& scratch, std::vector<double>& power);

/// Integrated power in [f_lo, f_hi) via trapezoid-free bin summation
/// (power * resolution for bins whose centre falls in the band).
/// Throws if f_hi < f_lo.
double band_power(const PsdEstimate& psd, double f_lo, double f_hi);

/// Total power over the whole estimate.
double total_power(const PsdEstimate& psd);

/// Frequency of the largest PSD bin within [f_lo, f_hi). Returns f_lo if the
/// band contains no bins.
double peak_frequency(const PsdEstimate& psd, double f_lo, double f_hi);

/// Spectral edge frequency: smallest f such that the cumulative power up to f
/// reaches `fraction` (in (0,1]) of the total power.
double spectral_edge_frequency(const PsdEstimate& psd, double fraction);

}  // namespace svt::dsp
