#include "dsp/spectral.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/assert.hpp"
#include "dsp/fft.hpp"
#include "dsp/simd_kernels.hpp"
#include "dsp/statistics.hpp"

namespace svt::dsp {

double PsdEstimate::resolution_hz() const {
  if (frequency_hz.size() < 2) return 0.0;
  return frequency_hz[1] - frequency_hz[0];
}

namespace {

/// One-sided PSD of a single windowed segment, normalised so that summing
/// power * df recovers the windowed signal power (standard periodogram
/// normalisation: |X[k]|^2 / (fs * sum w^2), with interior bins doubled).
PsdEstimate segment_psd(std::span<const double> x, double fs_hz, std::span<const double> w) {
  SVT_ASSERT(x.size() == w.size());
  std::vector<double> tapered(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) tapered[i] = x[i] * w[i];
  const std::size_t nfft = next_power_of_two(tapered.size());
  const auto mag2 = magnitude_squared_spectrum(tapered, nfft);
  const double norm = fs_hz * window_power(w);
  PsdEstimate psd;
  psd.frequency_hz.resize(mag2.size());
  psd.power.resize(mag2.size());
  const double df = fs_hz / static_cast<double>(nfft);
  for (std::size_t k = 0; k < mag2.size(); ++k) {
    psd.frequency_hz[k] = df * static_cast<double>(k);
    double p = mag2[k] / norm;
    const bool interior = k != 0 && k != mag2.size() - 1;
    if (interior) p *= 2.0;  // One-sided estimate folds the negative axis.
    psd.power[k] = p;
  }
  return psd;
}

}  // namespace

PsdEstimate periodogram(std::span<const double> x, double fs_hz, WindowType window) {
  if (x.empty()) throw std::invalid_argument("periodogram: empty input");
  if (fs_hz <= 0.0) throw std::invalid_argument("periodogram: fs_hz <= 0");
  const auto w = make_window(window, x.size());
  return segment_psd(x, fs_hz, w);
}

PsdEstimate welch_psd(std::span<const double> x, double fs_hz, const WelchParams& params) {
  SpectralScratch scratch;
  PsdEstimate out;
  welch_psd(x, fs_hz, params, scratch, out);
  return out;
}

namespace {

/// One windowed segment's PSD through the scratch FFT path; `accumulate`
/// adds the segment's power into `power` (which must hold nfft/2+1 bins)
/// instead of overwriting it. Value-identical to segment_psd: the taper
/// product goes straight into the zero-padded FFT buffer and the per-bin
/// normalisation runs in the same order.
void segment_power_into(std::span<const double> x, double fs_hz, std::span<const double> w,
                        SpectralScratch& scratch, double* power, bool accumulate) {
  SVT_ASSERT(x.size() == w.size());
  const std::size_t nfft = next_power_of_two(x.size());
  auto& buf = scratch.fft_buf;
  buf.assign(nfft, {0.0, 0.0});
  // std::complex<double> is layout-compatible with double[2], so the taper
  // and bin kernels run over the buffer as interleaved (re, im) pairs.
  auto* interleaved = reinterpret_cast<double*>(buf.data());
  detail::taper_into_complex(x.data(), w.data(), x.size(), interleaved);
  fft_inplace(buf, scratch.plans.get(nfft));

  const std::size_t half = nfft / 2;
  const double norm = fs_hz * window_power(w);
  // Edge bins (DC and Nyquist) are not doubled; the interior runs through
  // the vectorised kernel with the same (re*re + im*im) / norm * 2 order.
  const std::size_t edges[2] = {0, half};
  for (std::size_t e = 0; e < (half == 0 ? std::size_t{1} : std::size_t{2}); ++e) {
    const std::size_t k = edges[e];
    const double re = interleaved[2 * k];
    const double im = interleaved[2 * k + 1];
    const double p = (re * re + im * im) / norm;
    if (accumulate) {
      power[k] += p;
    } else {
      power[k] = p;
    }
  }
  if (half > 1) detail::psd_interior_bins(interleaved, 1, half, norm, accumulate, power);
}

/// (Re)build the cached taper when the requested (type, length) differs.
void ensure_window(SpectralScratch& scratch, WindowType type, std::size_t len) {
  if (scratch.window_len != len || scratch.window_type != type || scratch.window.empty()) {
    scratch.window = make_window(type, len);
    scratch.window_len = len;
    scratch.window_type = type;
  }
}

}  // namespace

void welch_psd(std::span<const double> x, double fs_hz, const WelchParams& params,
               SpectralScratch& scratch, PsdEstimate& out) {
  if (x.empty()) throw std::invalid_argument("welch_psd: empty input");
  if (fs_hz <= 0.0) throw std::invalid_argument("welch_psd: fs_hz <= 0");
  if (params.segment_length == 0) throw std::invalid_argument("welch_psd: segment_length == 0");
  if (params.overlap_fraction < 0.0 || params.overlap_fraction >= 1.0)
    throw std::invalid_argument("welch_psd: overlap_fraction outside [0,1)");

  const std::size_t seg = std::min(params.segment_length, x.size());
  auto hop = static_cast<std::size_t>(
      std::max(1.0, std::round(static_cast<double>(seg) * (1.0 - params.overlap_fraction))));
  ensure_window(scratch, params.window, seg);

  const std::size_t nfft = next_power_of_two(seg);
  const std::size_t half = nfft / 2;
  const double df = fs_hz / static_cast<double>(nfft);
  out.frequency_hz.resize(half + 1);
  out.power.resize(half + 1);
  for (std::size_t k = 0; k <= half; ++k) out.frequency_hz[k] = df * static_cast<double>(k);

  // seg <= x.size() by construction, so the loop always runs at least once.
  std::size_t count = 0;
  for (std::size_t start = 0; start + seg <= x.size(); start += hop) {
    scratch.segment.assign(x.begin() + static_cast<std::ptrdiff_t>(start),
                           x.begin() + static_cast<std::ptrdiff_t>(start + seg));
    if (params.detrend_segments) remove_mean(scratch.segment);
    segment_power_into(scratch.segment, fs_hz, scratch.window, scratch, out.power.data(),
                       /*accumulate=*/count > 0);
    ++count;
  }
  SVT_ASSERT(count > 0);
  for (double& p : out.power) p /= static_cast<double>(count);
}

void welch_segment_psd(std::span<const double> x, double fs_hz, const WelchParams& params,
                       SpectralScratch& scratch, std::vector<double>& power) {
  if (x.empty()) throw std::invalid_argument("welch_segment_psd: empty input");
  if (fs_hz <= 0.0) throw std::invalid_argument("welch_segment_psd: fs_hz <= 0");
  ensure_window(scratch, params.window, x.size());
  scratch.segment.assign(x.begin(), x.end());
  if (params.detrend_segments) remove_mean(scratch.segment);
  power.resize(next_power_of_two(x.size()) / 2 + 1);
  segment_power_into(scratch.segment, fs_hz, scratch.window, scratch, power.data(),
                     /*accumulate=*/false);
}

double band_power(const PsdEstimate& psd, double f_lo, double f_hi) {
  if (f_hi < f_lo) throw std::invalid_argument("band_power: f_hi < f_lo");
  const double df = psd.resolution_hz();
  if (df <= 0.0) return 0.0;
  double acc = 0.0;
  for (std::size_t k = 0; k < psd.frequency_hz.size(); ++k) {
    const double f = psd.frequency_hz[k];
    if (f >= f_lo && f < f_hi) acc += psd.power[k] * df;
  }
  return acc;
}

double total_power(const PsdEstimate& psd) {
  const double df = psd.resolution_hz();
  double acc = 0.0;
  for (double p : psd.power) acc += p * df;
  return acc;
}

double peak_frequency(const PsdEstimate& psd, double f_lo, double f_hi) {
  double best_f = f_lo;
  double best_p = -1.0;
  for (std::size_t k = 0; k < psd.frequency_hz.size(); ++k) {
    const double f = psd.frequency_hz[k];
    if (f >= f_lo && f < f_hi && psd.power[k] > best_p) {
      best_p = psd.power[k];
      best_f = f;
    }
  }
  return best_f;
}

double spectral_edge_frequency(const PsdEstimate& psd, double fraction) {
  if (fraction <= 0.0 || fraction > 1.0)
    throw std::invalid_argument("spectral_edge_frequency: fraction outside (0,1]");
  const double total = total_power(psd);
  if (total <= 0.0) return 0.0;
  const double df = psd.resolution_hz();
  double acc = 0.0;
  for (std::size_t k = 0; k < psd.power.size(); ++k) {
    acc += psd.power[k] * df;
    if (acc >= fraction * total) return psd.frequency_hz[k];
  }
  return psd.frequency_hz.empty() ? 0.0 : psd.frequency_hz.back();
}

}  // namespace svt::dsp
