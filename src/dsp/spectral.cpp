#include "dsp/spectral.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/assert.hpp"
#include "dsp/fft.hpp"
#include "dsp/statistics.hpp"

namespace svt::dsp {

double PsdEstimate::resolution_hz() const {
  if (frequency_hz.size() < 2) return 0.0;
  return frequency_hz[1] - frequency_hz[0];
}

namespace {

/// One-sided PSD of a single windowed segment, normalised so that summing
/// power * df recovers the windowed signal power (standard periodogram
/// normalisation: |X[k]|^2 / (fs * sum w^2), with interior bins doubled).
PsdEstimate segment_psd(std::span<const double> x, double fs_hz, std::span<const double> w) {
  SVT_ASSERT(x.size() == w.size());
  std::vector<double> tapered(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) tapered[i] = x[i] * w[i];
  const std::size_t nfft = next_power_of_two(tapered.size());
  const auto mag2 = magnitude_squared_spectrum(tapered, nfft);
  const double norm = fs_hz * window_power(w);
  PsdEstimate psd;
  psd.frequency_hz.resize(mag2.size());
  psd.power.resize(mag2.size());
  const double df = fs_hz / static_cast<double>(nfft);
  for (std::size_t k = 0; k < mag2.size(); ++k) {
    psd.frequency_hz[k] = df * static_cast<double>(k);
    double p = mag2[k] / norm;
    const bool interior = k != 0 && k != mag2.size() - 1;
    if (interior) p *= 2.0;  // One-sided estimate folds the negative axis.
    psd.power[k] = p;
  }
  return psd;
}

}  // namespace

PsdEstimate periodogram(std::span<const double> x, double fs_hz, WindowType window) {
  if (x.empty()) throw std::invalid_argument("periodogram: empty input");
  if (fs_hz <= 0.0) throw std::invalid_argument("periodogram: fs_hz <= 0");
  const auto w = make_window(window, x.size());
  return segment_psd(x, fs_hz, w);
}

PsdEstimate welch_psd(std::span<const double> x, double fs_hz, const WelchParams& params) {
  if (x.empty()) throw std::invalid_argument("welch_psd: empty input");
  if (fs_hz <= 0.0) throw std::invalid_argument("welch_psd: fs_hz <= 0");
  if (params.segment_length == 0) throw std::invalid_argument("welch_psd: segment_length == 0");
  if (params.overlap_fraction < 0.0 || params.overlap_fraction >= 1.0)
    throw std::invalid_argument("welch_psd: overlap_fraction outside [0,1)");

  const std::size_t seg = std::min(params.segment_length, x.size());
  auto hop = static_cast<std::size_t>(
      std::max(1.0, std::round(static_cast<double>(seg) * (1.0 - params.overlap_fraction))));
  const auto w = make_window(params.window, seg);

  PsdEstimate acc;
  std::size_t count = 0;
  for (std::size_t start = 0; start + seg <= x.size(); start += hop) {
    std::vector<double> segment(x.begin() + static_cast<std::ptrdiff_t>(start),
                                x.begin() + static_cast<std::ptrdiff_t>(start + seg));
    if (params.detrend_segments) remove_mean(segment);
    PsdEstimate p = segment_psd(segment, fs_hz, w);
    if (count == 0) {
      acc = std::move(p);
    } else {
      SVT_ASSERT(acc.power.size() == p.power.size());
      for (std::size_t k = 0; k < acc.power.size(); ++k) acc.power[k] += p.power[k];
    }
    ++count;
  }
  if (count == 0) {
    // Series shorter than one segment: single periodogram over everything.
    std::vector<double> whole(x.begin(), x.end());
    if (params.detrend_segments) remove_mean(whole);
    return segment_psd(whole, fs_hz, make_window(params.window, whole.size()));
  }
  for (double& p : acc.power) p /= static_cast<double>(count);
  return acc;
}

double band_power(const PsdEstimate& psd, double f_lo, double f_hi) {
  if (f_hi < f_lo) throw std::invalid_argument("band_power: f_hi < f_lo");
  const double df = psd.resolution_hz();
  if (df <= 0.0) return 0.0;
  double acc = 0.0;
  for (std::size_t k = 0; k < psd.frequency_hz.size(); ++k) {
    const double f = psd.frequency_hz[k];
    if (f >= f_lo && f < f_hi) acc += psd.power[k] * df;
  }
  return acc;
}

double total_power(const PsdEstimate& psd) {
  const double df = psd.resolution_hz();
  double acc = 0.0;
  for (double p : psd.power) acc += p * df;
  return acc;
}

double peak_frequency(const PsdEstimate& psd, double f_lo, double f_hi) {
  double best_f = f_lo;
  double best_p = -1.0;
  for (std::size_t k = 0; k < psd.frequency_hz.size(); ++k) {
    const double f = psd.frequency_hz[k];
    if (f >= f_lo && f < f_hi && psd.power[k] > best_p) {
      best_p = psd.power[k];
      best_f = f;
    }
  }
  return best_f;
}

double spectral_edge_frequency(const PsdEstimate& psd, double fraction) {
  if (fraction <= 0.0 || fraction > 1.0)
    throw std::invalid_argument("spectral_edge_frequency: fraction outside (0,1]");
  const double total = total_power(psd);
  if (total <= 0.0) return 0.0;
  const double df = psd.resolution_hz();
  double acc = 0.0;
  for (std::size_t k = 0; k < psd.power.size(); ++k) {
    acc += psd.power[k] * df;
    if (acc >= fraction * total) return psd.frequency_hz[k];
  }
  return psd.frequency_hz.empty() ? 0.0 : psd.frequency_hz.back();
}

}  // namespace svt::dsp
