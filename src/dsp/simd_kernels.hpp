// Internal SIMD kernels for the float feature path (EDR resampling and the
// Welch window/accumulate inner loops).
//
// Same dispatch-and-exactness story as the lane engine: each kernel
// replicates its scalar loop's exact elementwise operation order (IEEE
// add/mul/sub/div, no FMA, no reassociation), so the vector paths are
// bit-identical to the scalar reference at every tier. The tier is chosen
// per call from common::simd_tier() clamped to what this build compiled —
// one binary, runtime cpuid, SVT_LANE_ISA-forcible for CI.
#pragma once

#include <cstddef>

#include "common/simd_dispatch.hpp"

namespace svt::dsp::detail {

/// Runtime tier clamped to the ISAs this build compiled for the dsp kernels.
common::SimdTier dsp_effective_tier();

/// Whether simd_kernels_avx2.cpp carries AVX2 code in this build.
bool dsp_avx2_compiled();

/// Uniform-grid linear interpolation over one source segment:
/// out[j] = v_lo*(1-frac) + v_hi*frac for grid index i = i0+j, j in
/// [0, count), with t = start + double(i)/fs and frac = (t - t_lo)/span.
/// Bit-identical to the per-point scalar loop in resample_linear_into.
void lerp_grid_span(double start, double fs, double t_lo, double span, double v_lo, double v_hi,
                    std::size_t i0, std::size_t count, double* out);

/// Complex taper fill: interleaved[2i] = x[i]*w[i], interleaved[2i+1] = 0
/// for i in [0, n) — the Welch segment windowing into the FFT buffer.
void taper_into_complex(const double* x, const double* w, std::size_t n, double* interleaved);

/// Interior one-sided PSD bins k in [k_begin, k_end): p = (re*re + im*im)
/// / norm, doubled (the caller passes interior bins only), then power[k]
/// += p (accumulate) or = p. `interleaved` is the FFT buffer as (re, im)
/// pairs.
void psd_interior_bins(const double* interleaved, std::size_t k_begin, std::size_t k_end,
                       double norm, bool accumulate, double* power);

// AVX2 variants (compiled in simd_kernels_avx2.cpp when the toolchain
// supports -mavx2; called only when dsp_effective_tier() == kAvx2).
void lerp_grid_span_avx2(double start, double fs, double t_lo, double span, double v_lo,
                         double v_hi, std::size_t i0, std::size_t count, double* out);
void taper_into_complex_avx2(const double* x, const double* w, std::size_t n,
                             double* interleaved);
void psd_interior_bins_avx2(const double* interleaved, std::size_t k_begin, std::size_t k_end,
                            double norm, bool accumulate, double* power);

}  // namespace svt::dsp::detail
