// Auto-regressive (AR) model estimation.
//
// The paper's AR feature group (features 16-24) consists of the linear
// coefficients of an auto-regressive model of the ECG-derived respiration
// time series. We provide both classic estimators:
//  * autocorrelation method solved with Levinson-Durbin recursion, and
//  * Burg's method (forward/backward prediction-error minimisation),
// plus the model's parametric spectrum for validation.
//
// Convention: x[n] = sum_{k=1..p} a[k] * x[n-k] + e[n]; coefficients() returns
// [a1..ap]. The prediction-error (driving noise) variance is also reported.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace svt::dsp {

struct ArModel {
  std::vector<double> coefficients;  ///< a1..ap (predictor form, see header).
  double noise_variance = 0.0;       ///< Final prediction-error variance.

  std::size_t order() const { return coefficients.size(); }

  /// Parametric one-sided PSD of the model at the given frequencies,
  /// for a sampling rate fs_hz: sigma^2 / (fs * |1 - sum a_k e^{-j w k}|^2),
  /// doubled for one-sidedness.
  std::vector<double> spectrum(std::span<const double> frequencies_hz, double fs_hz) const;

  /// One-step-ahead linear prediction of x[n] from the p previous samples
  /// (x must contain at least `order()` samples; the most recent sample is
  /// x.back()).
  double predict_next(std::span<const double> x) const;
};

/// Levinson-Durbin recursion on an autocorrelation sequence r[0..p].
/// Throws if r has fewer than order+1 entries or r[0] <= 0.
ArModel levinson_durbin(std::span<const double> autocorr, std::size_t order);

/// AR estimation by the autocorrelation (Yule-Walker) method.
/// Throws if x.size() <= order or order == 0.
ArModel ar_yule_walker(std::span<const double> x, std::size_t order);

/// AR estimation by Burg's method. Throws if x.size() <= order or order == 0.
ArModel ar_burg(std::span<const double> x, std::size_t order);

/// Reusable workspace for the scratch Burg path (forward/backward error
/// series, coefficient vectors). Allocation-free once warm.
struct BurgScratch {
  std::vector<double> centred, f, b, a, prev;
  double noise_variance = 0.0;
};

/// Scratch variant of ar_burg: coefficients land in scratch.a (size =
/// order) and the prediction-error variance in scratch.noise_variance.
/// Bit-identical to ar_burg — the allocating overload delegates here.
void ar_burg(std::span<const double> x, std::size_t order, BurgScratch& scratch);

/// Reflection coefficients -> predictor coefficients (step-up recursion).
std::vector<double> reflection_to_predictor(std::span<const double> reflection);

}  // namespace svt::dsp
