#include "dsp/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/assert.hpp"

namespace svt::dsp {

namespace {

void require_non_empty(std::span<const double> x, const char* what) {
  if (x.empty()) throw std::invalid_argument(std::string(what) + ": empty input");
}

}  // namespace

double mean(std::span<const double> x) {
  require_non_empty(x, "mean");
  return std::accumulate(x.begin(), x.end(), 0.0) / static_cast<double>(x.size());
}

double variance_population(std::span<const double> x) {
  require_non_empty(x, "variance_population");
  const double m = mean(x);
  double acc = 0.0;
  for (double v : x) acc += (v - m) * (v - m);
  return acc / static_cast<double>(x.size());
}

double variance_sample(std::span<const double> x) {
  if (x.size() < 2) throw std::invalid_argument("variance_sample: need at least 2 samples");
  const double m = mean(x);
  double acc = 0.0;
  for (double v : x) acc += (v - m) * (v - m);
  return acc / static_cast<double>(x.size() - 1);
}

double stddev_population(std::span<const double> x) { return std::sqrt(variance_population(x)); }

double stddev_sample(std::span<const double> x) { return std::sqrt(variance_sample(x)); }

double rms(std::span<const double> x) {
  require_non_empty(x, "rms");
  double acc = 0.0;
  for (double v : x) acc += v * v;
  return std::sqrt(acc / static_cast<double>(x.size()));
}

double min_value(std::span<const double> x) {
  require_non_empty(x, "min_value");
  return *std::min_element(x.begin(), x.end());
}

double max_value(std::span<const double> x) {
  require_non_empty(x, "max_value");
  return *std::max_element(x.begin(), x.end());
}

double percentile(std::span<const double> x, double p) {
  require_non_empty(x, "percentile");
  std::vector<double> sorted(x.begin(), x.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, p);
}

double percentile_sorted(std::span<const double> sorted, double p) {
  require_non_empty(sorted, "percentile_sorted");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p out of [0,100]");
  if (sorted.size() == 1) return sorted.front();
  const double pos = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> x) { return percentile(x, 50.0); }

double iqr(std::span<const double> x) { return percentile(x, 75.0) - percentile(x, 25.0); }

double skewness(std::span<const double> x) {
  require_non_empty(x, "skewness");
  const double m = mean(x);
  double m2 = 0.0, m3 = 0.0;
  for (double v : x) {
    const double d = v - m;
    m2 += d * d;
    m3 += d * d * d;
  }
  m2 /= static_cast<double>(x.size());
  m3 /= static_cast<double>(x.size());
  if (m2 <= 0.0) return 0.0;
  return m3 / std::pow(m2, 1.5);
}

double kurtosis_excess(std::span<const double> x) {
  require_non_empty(x, "kurtosis_excess");
  const double m = mean(x);
  double m2 = 0.0, m4 = 0.0;
  for (double v : x) {
    const double d = v - m;
    m2 += d * d;
    m4 += d * d * d * d;
  }
  m2 /= static_cast<double>(x.size());
  m4 /= static_cast<double>(x.size());
  if (m2 <= 0.0) return 0.0;
  return m4 / (m2 * m2) - 3.0;
}

double covariance_population(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("covariance_population: size mismatch");
  require_non_empty(x, "covariance_population");
  const double mx = mean(x);
  const double my = mean(y);
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += (x[i] - mx) * (y[i] - my);
  return acc / static_cast<double>(x.size());
}

double pearson(std::span<const double> x, std::span<const double> y) {
  const double cov = covariance_population(x, y);
  const double sx = stddev_population(x);
  const double sy = stddev_population(y);
  if (sx <= 0.0 || sy <= 0.0) return 0.0;
  return cov / (sx * sy);
}

std::vector<double> successive_differences(std::span<const double> x) {
  std::vector<double> d;
  successive_differences_into(x, d);
  return d;
}

void successive_differences_into(std::span<const double> x, std::vector<double>& out) {
  if (x.size() < 2) throw std::invalid_argument("successive_differences: need at least 2 samples");
  out.resize(x.size() - 1);
  for (std::size_t i = 0; i + 1 < x.size(); ++i) out[i] = x[i + 1] - x[i];
}

double fraction_abs_above(std::span<const double> values, double threshold) {
  std::size_t count = 0;
  for (double v : values) {
    if (std::abs(v) > threshold) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(values.size());
}

double rmssd(std::span<const double> x) {
  const auto d = successive_differences(x);
  return rms(d);
}

double fraction_successive_diff_above(std::span<const double> x, double threshold) {
  const auto d = successive_differences(x);
  return fraction_abs_above(d, threshold);
}

std::vector<double> autocorrelation(std::span<const double> x, std::size_t max_lag) {
  require_non_empty(x, "autocorrelation");
  if (max_lag >= x.size()) throw std::invalid_argument("autocorrelation: max_lag >= size");
  std::vector<double> r(max_lag + 1, 0.0);
  const auto n = x.size();
  for (std::size_t k = 0; k <= max_lag; ++k) {
    double acc = 0.0;
    for (std::size_t i = 0; i + k < n; ++i) acc += x[i] * x[i + k];
    r[k] = acc / static_cast<double>(n);
  }
  return r;
}

void remove_mean(std::vector<double>& x) {
  if (x.empty()) return;
  const double m = mean(x);
  for (double& v : x) v -= m;
}

void remove_linear_trend(std::vector<double>& x) {
  const auto n = x.size();
  if (n < 2) return;
  // Least-squares fit of x[i] = a*i + b over i = 0..n-1.
  const double nn = static_cast<double>(n);
  const double sum_i = nn * (nn - 1.0) / 2.0;
  const double sum_ii = (nn - 1.0) * nn * (2.0 * nn - 1.0) / 6.0;
  double sum_x = 0.0, sum_ix = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum_x += x[i];
    sum_ix += static_cast<double>(i) * x[i];
  }
  const double denom = nn * sum_ii - sum_i * sum_i;
  if (denom == 0.0) return;
  const double a = (nn * sum_ix - sum_i * sum_x) / denom;
  const double b = (sum_x - a * sum_i) / nn;
  for (std::size_t i = 0; i < n; ++i) x[i] -= a * static_cast<double>(i) + b;
}

double histogram_entropy(std::span<const double> x, std::size_t bins) {
  if (bins == 0) throw std::invalid_argument("histogram_entropy: bins == 0");
  require_non_empty(x, "histogram_entropy");
  const double lo = min_value(x);
  const double hi = max_value(x);
  if (hi <= lo) return 0.0;
  std::vector<std::size_t> hist(bins, 0);
  for (double v : x) {
    auto bin = static_cast<std::size_t>((v - lo) / (hi - lo) * static_cast<double>(bins));
    if (bin >= bins) bin = bins - 1;
    ++hist[bin];
  }
  double h = 0.0;
  for (std::size_t c : hist) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(x.size());
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace svt::dsp
