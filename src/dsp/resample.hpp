// Resampling of unevenly-sampled series.
//
// RR-interval tachograms and beat-indexed EDR series are unevenly sampled in
// time (one sample per heartbeat); spectral analysis (Welch, AR) requires a
// uniform grid. This module provides linear-interpolation resampling onto a
// uniform rate, the standard preprocessing in HRV analysis.
#pragma once

#include <span>
#include <vector>

namespace svt::dsp {

/// A uniformly resampled series: value[i] sampled at start_time_s + i/fs_hz.
struct UniformSeries {
  std::vector<double> values;
  double fs_hz = 0.0;
  double start_time_s = 0.0;

  double duration_s() const {
    return fs_hz > 0.0 ? static_cast<double>(values.size()) / fs_hz : 0.0;
  }
};

/// Linearly interpolate the samples (t[i], v[i]) onto a uniform grid at fs_hz
/// spanning [t.front(), t.back()]. Times must be strictly increasing.
/// Throws on size mismatch, fewer than 2 samples, non-increasing times or
/// fs_hz <= 0.
UniformSeries resample_linear(std::span<const double> times_s, std::span<const double> values,
                              double fs_hz);

/// Scratch variant of resample_linear: the grid values land in `out_values`
/// (resized; capacity reused across calls) and the grid origin in
/// `start_time_s`. Validates the series once up front instead of per grid
/// point; the interpolation arithmetic is identical, so the resampled values
/// are bit-identical to resample_linear.
void resample_linear_into(std::span<const double> times_s, std::span<const double> values,
                          double fs_hz, double& start_time_s, std::vector<double>& out_values);

/// Linear interpolation at a single query time (clamps outside the range).
double interpolate_at(std::span<const double> times_s, std::span<const double> values,
                      double query_time_s);

}  // namespace svt::dsp
