// Runtime-parameterised fixed-point arithmetic.
//
// The paper's third optimisation axis ("Reducing bitwidths", Section III)
// replaces floating point with narrow two's-complement fixed point:
//  * features use Dbits with a per-feature power-of-two range [-2^Rj, 2^Rj],
//  * alpha*y coefficients (bounded in [-1,1] by construction) use Abits,
//  * the 10 least-significant bits are discarded after the dot product and
//    after the square operator,
//  * out-of-range values saturate to the admissible extremes.
//
// This module provides the bit-exact integer primitives that the quantised
// inference engine (svt::core::QuantizedEngine) is built from. Widths are
// runtime values (not template parameters) because the paper's exploration
// sweeps them continuously; all storage is int64 and every operation states
// the logical width of its result.
#pragma once

#include <cstdint>
#include <string>

namespace svt::fixed {

/// Maximum representable value of a signed two's-complement number of the
/// given width (2..63 supported). Throws std::invalid_argument otherwise.
std::int64_t max_signed_value(int bits);

/// Minimum representable value (symmetric check helper): -2^(bits-1).
std::int64_t min_signed_value(int bits);

/// Saturate v into the signed range of `bits` bits.
std::int64_t saturate(std::int64_t v, int bits);

/// Saturate a 128-bit value into `bits` signed bits (bits in [2,126]): the
/// MAC2-accumulator primitive shared by the per-window and batched
/// fixed-point engines, which must stay bit-identical.
__int128 saturate128(__int128 v, int bits);

/// True if v fits in `bits` signed bits without saturation.
bool fits(std::int64_t v, int bits);

/// Arithmetic shift right discarding the low `shift` bits (truncation toward
/// negative infinity, which is what dropping LSBs of a two's-complement value
/// in hardware does). shift in [0,62].
std::int64_t truncate_lsbs(std::int64_t v, int shift);

/// Round-to-nearest shift right (adds half an LSB before shifting).
std::int64_t round_shift_right(std::int64_t v, int shift);

/// Number of bits needed to represent v (including sign bit), minimum 1.
int signed_bit_width(std::int64_t v);

/// Decimal text of a signed 128-bit value (the MAC2 accumulator / bias scale
/// exceeds int64; model persistence writes it through these).
std::string to_string_int128(__int128 v);

/// Parse the decimal text produced by to_string_int128. Throws
/// std::invalid_argument on malformed input or overflow.
__int128 parse_int128(const std::string& text);

/// Describes a uniform quantiser mapping reals in [-2^range_log2, 2^range_log2)
/// to `bits`-bit signed integers. The LSB weighs 2^(range_log2 - bits + 1):
/// the top magnitude bit of the integer corresponds to 2^(range_log2).
struct QuantFormat {
  int bits = 16;        ///< Total signed width.
  int range_log2 = 0;   ///< R: values saturate to +/- 2^R.

  /// Real weight of one integer LSB.
  double lsb() const;

  /// Quantise a real value: scale, round-to-nearest, saturate.
  std::int64_t quantize(double v) const;

  /// Reconstruct the real value of a quantised integer.
  double dequantize(std::int64_t q) const;

  /// Largest representable real value.
  double max_real() const;

  /// e.g. "Q(9 bits, R=3)".
  std::string describe() const;

  bool operator==(const QuantFormat&) const = default;
};

/// Validate a format (bits in [2,63]); throws std::invalid_argument if bad.
void validate(const QuantFormat& fmt);

}  // namespace svt::fixed
