#include "fixed/fixed_point.hpp"

#include <cmath>
#include <stdexcept>

#include "common/assert.hpp"

namespace svt::fixed {

namespace {

void require_width(int bits, const char* what) {
  if (bits < 2 || bits > 63)
    throw std::invalid_argument(std::string(what) + ": bits must be in [2,63]");
}

}  // namespace

std::int64_t max_signed_value(int bits) {
  require_width(bits, "max_signed_value");
  return (std::int64_t{1} << (bits - 1)) - 1;
}

std::int64_t min_signed_value(int bits) {
  require_width(bits, "min_signed_value");
  return -(std::int64_t{1} << (bits - 1));
}

std::int64_t saturate(std::int64_t v, int bits) {
  const std::int64_t hi = max_signed_value(bits);
  const std::int64_t lo = -hi - 1;
  // Branch-free clamp: two conditional selects lower to cmov / vector
  // min-max instead of branches, so a saturating inner loop keeps its
  // throughput even when saturation events are data-dependent noise to the
  // branch predictor (they are: this is the fixed-point batch-path
  // bottleneck the ROADMAP names).
  v = v < lo ? lo : v;
  return v > hi ? hi : v;
}

__int128 saturate128(__int128 v, int bits) {
  SVT_ASSERT(bits >= 2 && bits <= 126);
  const __int128 hi = ((__int128)1 << (bits - 1)) - 1;
  const __int128 lo = -hi - 1;
  // Same branch-free select form as saturate(); v is unchanged when in range.
  v = v < lo ? lo : v;
  return v > hi ? hi : v;
}

bool fits(std::int64_t v, int bits) {
  return v >= min_signed_value(bits) && v <= max_signed_value(bits);
}

std::int64_t truncate_lsbs(std::int64_t v, int shift) {
  if (shift < 0 || shift > 62) throw std::invalid_argument("truncate_lsbs: shift outside [0,62]");
  return v >> shift;  // Arithmetic shift: implementation-defined pre-C++20, defined in C++20.
}

std::int64_t round_shift_right(std::int64_t v, int shift) {
  if (shift < 0 || shift > 62)
    throw std::invalid_argument("round_shift_right: shift outside [0,62]");
  if (shift == 0) return v;
  const std::int64_t half = std::int64_t{1} << (shift - 1);
  return (v + half) >> shift;
}

int signed_bit_width(std::int64_t v) {
  // Width w such that v fits in w signed bits: smallest w with
  // -2^(w-1) <= v <= 2^(w-1)-1.
  if (v == 0 || v == -1) return 1;
  std::uint64_t mag = v < 0 ? ~static_cast<std::uint64_t>(v) : static_cast<std::uint64_t>(v);
  int w = 1;
  while (mag != 0) {
    mag >>= 1;
    ++w;
  }
  return w;
}

std::string to_string_int128(__int128 v) {
  if (v == 0) return "0";
  const bool negative = v < 0;
  // Negate digit-by-digit via unsigned magnitude so INT128_MIN is handled.
  unsigned __int128 mag =
      negative ? -static_cast<unsigned __int128>(v) : static_cast<unsigned __int128>(v);
  std::string digits;
  while (mag != 0) {
    digits.push_back(static_cast<char>('0' + static_cast<int>(mag % 10)));
    mag /= 10;
  }
  if (negative) digits.push_back('-');
  return std::string(digits.rbegin(), digits.rend());
}

__int128 parse_int128(const std::string& text) {
  std::size_t i = 0;
  bool negative = false;
  if (!text.empty() && (text[0] == '-' || text[0] == '+')) {
    negative = text[0] == '-';
    i = 1;
  }
  if (i == text.size()) throw std::invalid_argument("parse_int128: no digits");
  constexpr unsigned __int128 kMax = ~static_cast<unsigned __int128>(0) >> 1;  // 2^127 - 1.
  const unsigned __int128 limit = negative ? kMax + 1 : kMax;
  unsigned __int128 mag = 0;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') throw std::invalid_argument("parse_int128: bad digit");
    const unsigned digit = static_cast<unsigned>(c - '0');
    if (mag > (limit - digit) / 10) throw std::invalid_argument("parse_int128: overflow");
    mag = mag * 10 + digit;
  }
  if (mag == 0) return 0;
  if (negative) return -static_cast<__int128>(mag - 1) - 1;  // Reaches INT128_MIN safely.
  return static_cast<__int128>(mag);
}

double QuantFormat::lsb() const {
  return std::ldexp(1.0, range_log2 - bits + 1);
}

std::int64_t QuantFormat::quantize(double v) const {
  validate(*this);
  const double scaled = v / lsb();
  if (std::isnan(scaled)) return 0;
  // Round to nearest, then saturate to the signed width.
  double r = std::nearbyint(scaled);
  const auto hi = static_cast<double>(max_signed_value(bits));
  const auto lo = static_cast<double>(min_signed_value(bits));
  if (r > hi) r = hi;
  if (r < lo) r = lo;
  return static_cast<std::int64_t>(r);
}

double QuantFormat::dequantize(std::int64_t q) const {
  validate(*this);
  return static_cast<double>(q) * lsb();
}

double QuantFormat::max_real() const { return static_cast<double>(max_signed_value(bits)) * lsb(); }

std::string QuantFormat::describe() const {
  return "Q(" + std::to_string(bits) + " bits, R=" + std::to_string(range_log2) + ")";
}

void validate(const QuantFormat& fmt) {
  if (fmt.bits < 2 || fmt.bits > 63)
    throw std::invalid_argument("QuantFormat: bits must be in [2,63]");
}

}  // namespace svt::fixed
