// Per-feature power-of-two range selection (paper Eq. 6).
//
// The paper restricts each feature j to a range [-2^Rj, 2^Rj] where Rj is the
// smallest integer satisfying
//      avg(Fj) - sigma(Fj) > -2^Rj   and   avg(Fj) + sigma(Fj) < 2^Rj - 1
// with avg/sigma computed over the values the feature takes *in the SV set*.
// Powers of two make up/down-scaling a shift instead of a divide. Values
// outside the range (in SVs or in the test vector) saturate.
#pragma once

#include <span>
#include <vector>

namespace svt::fixed {

/// Smallest R satisfying Eq. 6 for a feature column with the given mean and
/// standard deviation. R is clamped to [r_min, r_max] (the hardware stores R
/// in a small scale-factor memory, so its own width is bounded).
///
/// `sigma_headroom`: Eq. 6 literally brackets avg +- 1 sigma, which for the
/// paper's raw physiological features (whose means sit many sigmas above
/// zero) leaves several sigmas of slack below the power-of-two bound. Our
/// features are mean-centred, so the equivalent condition brackets
/// avg +- sigma_headroom * sigma (default 4); without it nearly a third of
/// all values would saturate and classification would collapse.
int select_range_log2(double mean, double stddev, int r_min = -8, int r_max = 20,
                      double sigma_headroom = 4.0);

/// Eq. 6 ranges for every feature column of a sample matrix.
/// `columns[j]` holds all values of feature j (e.g. across the SV set).
std::vector<int> select_feature_ranges(std::span<const std::vector<double>> columns,
                                       int r_min = -8, int r_max = 20,
                                       double sigma_headroom = 4.0);

/// Convenience: column extraction from row-major samples
/// (samples[i] = feature vector of sample i; all rows must have equal size).
std::vector<std::vector<double>> to_columns(std::span<const std::vector<double>> rows);

}  // namespace svt::fixed
