#include "fixed/range_selection.hpp"

#include <cmath>
#include <stdexcept>

#include "common/assert.hpp"
#include "dsp/statistics.hpp"

namespace svt::fixed {

int select_range_log2(double mean, double stddev, int r_min, int r_max,
                      double sigma_headroom) {
  if (r_min > r_max) throw std::invalid_argument("select_range_log2: r_min > r_max");
  if (stddev < 0.0) throw std::invalid_argument("select_range_log2: negative stddev");
  if (sigma_headroom <= 0.0)
    throw std::invalid_argument("select_range_log2: sigma_headroom <= 0");
  const double spread = sigma_headroom * stddev;
  for (int r = r_min; r <= r_max; ++r) {
    const double bound = std::ldexp(1.0, r);  // 2^r
    // Paper Eq. 6 (with headroom, see header): avg - h*sigma > -2^R and
    // avg + h*sigma < 2^R - 1. The "- 1" reflects the asymmetric two's-
    // complement range; at real-valued granularity it reduces to strict
    // inequality.
    if (mean - spread > -bound && mean + spread < bound) return r;
  }
  return r_max;
}

std::vector<int> select_feature_ranges(std::span<const std::vector<double>> columns, int r_min,
                                       int r_max, double sigma_headroom) {
  std::vector<int> ranges;
  ranges.reserve(columns.size());
  for (const auto& col : columns) {
    if (col.empty()) throw std::invalid_argument("select_feature_ranges: empty feature column");
    const double m = dsp::mean(col);
    const double s = dsp::stddev_population(col);
    ranges.push_back(select_range_log2(m, s, r_min, r_max, sigma_headroom));
  }
  return ranges;
}

std::vector<std::vector<double>> to_columns(std::span<const std::vector<double>> rows) {
  if (rows.empty()) return {};
  const std::size_t nfeat = rows.front().size();
  for (const auto& r : rows) {
    if (r.size() != nfeat) throw std::invalid_argument("to_columns: ragged rows");
  }
  std::vector<std::vector<double>> cols(nfeat);
  for (auto& c : cols) c.reserve(rows.size());
  for (const auto& r : rows) {
    for (std::size_t j = 0; j < nfeat; ++j) cols[j].push_back(r[j]);
  }
  return cols;
}

}  // namespace svt::fixed
