// Runtime CPU dispatch for the cross-patient lane kernels.
//
// Unlike the SVT_SIMD fixed-point kernel (which selects its ISA at compile
// time and therefore needs a dedicated CI build per ISA), the lane engine
// ships every tier in one binary and picks the widest one the *running* CPU
// supports: AVX2 (4 doubles/op) -> SSE2 (2 doubles/op, baseline on x86-64)
// -> scalar. The choice is queried once and cached; tests and CI can force a
// narrower tier through the SVT_LANE_ISA environment variable ("scalar",
// "sse2" or "avx2") or programmatically with set_simd_tier_override, so the
// fallback paths are continuously exercised on wide hardware.
//
// The tier reported here is what the *CPU and the user* allow; a kernel
// additionally clamps to what its translation units were compiled with
// (e.g. the AVX2 lane kernel clamps to SSE2 when the toolchain could not
// build -mavx2 code).
#pragma once

namespace svt::common {

/// Vector tiers in increasing width order (comparable with <).
enum class SimdTier { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// Widest tier the running CPU supports, clamped by the SVT_LANE_ISA
/// environment variable (read once) and by set_simd_tier_override. Never
/// reports a tier above the CPU's capability, whatever the override asks.
SimdTier simd_tier();

/// Widest tier the running CPU supports, ignoring overrides.
SimdTier simd_tier_detected();

/// Force a tier at runtime (tests/bench). Clamped to the detected tier;
/// pass detected to restore. Not thread-safe against concurrent
/// simd_tier() callers — set it before spawning workers.
void set_simd_tier_override(SimdTier tier);

/// "scalar", "sse2" or "avx2".
const char* simd_tier_name(SimdTier tier);

}  // namespace svt::common
