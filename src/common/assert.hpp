// Internal invariant checking for svmtailor.
//
// SVT_ASSERT guards *internal* invariants (bugs in our own code); API-boundary
// precondition violations throw std::invalid_argument instead, so library
// users get a recoverable, descriptive error.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace svt::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "svmtailor internal invariant violated: %s (%s:%d)\n", expr, file, line);
  std::abort();
}

}  // namespace svt::detail

#define SVT_ASSERT(expr) \
  ((expr) ? static_cast<void>(0) : ::svt::detail::assert_fail(#expr, __FILE__, __LINE__))
