// Minimal CSV emission for bench outputs.
#pragma once

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace svt::common {

/// Accumulates rows and writes a CSV file (used by benches to dump the data
/// behind every reproduced table/figure next to the printed summary).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header) : header_(std::move(header)) {}

  template <typename... Ts>
  void add_row(const Ts&... values) {
    std::ostringstream os;
    os.precision(10);
    std::size_t i = 0;
    ((os << (i++ ? "," : "") << values), ...);
    rows_.push_back(os.str());
    if (sizeof...(values) != header_.size())
      throw std::invalid_argument("CsvWriter: column count mismatch");
  }

  /// Write to `path`; returns false (and stays silent) if the file cannot be
  /// opened -- benches treat the CSV dump as best-effort.
  bool write(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    for (std::size_t i = 0; i < header_.size(); ++i) out << (i ? "," : "") << header_[i];
    out << '\n';
    for (const auto& r : rows_) out << r << '\n';
    return true;
  }

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::string> rows_;
};

}  // namespace svt::common
