#include "common/simd_dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace svt::common {

namespace {

SimdTier detect_cpu_tier() {
#if defined(__x86_64__) || defined(_M_X64)
#if defined(__GNUC__) || defined(__clang__)
  if (__builtin_cpu_supports("avx2")) return SimdTier::kAvx2;
#endif
  return SimdTier::kSse2;  // SSE2 is architectural baseline on x86-64.
#else
  return SimdTier::kScalar;
#endif
}

SimdTier parse_tier(const char* name, SimdTier fallback) {
  if (name == nullptr) return fallback;
  if (std::strcmp(name, "scalar") == 0) return SimdTier::kScalar;
  if (std::strcmp(name, "sse2") == 0) return SimdTier::kSse2;
  if (std::strcmp(name, "avx2") == 0) return SimdTier::kAvx2;
  return fallback;  // Unknown value: ignore rather than abort a serving host.
}

SimdTier initial_tier() {
  const SimdTier cpu = detect_cpu_tier();
  const SimdTier wanted = parse_tier(std::getenv("SVT_LANE_ISA"), cpu);
  return wanted < cpu ? wanted : cpu;
}

std::atomic<SimdTier>& tier_state() {
  static std::atomic<SimdTier> tier{initial_tier()};
  return tier;
}

}  // namespace

SimdTier simd_tier() { return tier_state().load(std::memory_order_relaxed); }

SimdTier simd_tier_detected() { return detect_cpu_tier(); }

void set_simd_tier_override(SimdTier tier) {
  const SimdTier cpu = detect_cpu_tier();
  tier_state().store(tier < cpu ? tier : cpu, std::memory_order_relaxed);
}

const char* simd_tier_name(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar: return "scalar";
    case SimdTier::kSse2: return "sse2";
    case SimdTier::kAvx2: return "avx2";
  }
  return "scalar";
}

}  // namespace svt::common
