// The extraction stage of the streaming pipeline, factored out of the
// monolithic StreamClassifier so every serving engine (single-threaded or
// sharded) reuses the exact same front half:
//
//   push_samples(patient, chunk)
//   ┌─────────────┐  full  ┌──────────────────────────────────┐
//   │ per-patient │ window │ QRS detect -> RR + EDR series    │  sink(
//   │ sample ring │ ─────> │ -> 53 raw features               │ ─ ExtractedWindow)
//   │  (overlap)  │        │ (selection/scaling is the        │
//   └─────────────┘        │  model's job, not the stream's)  │
//                          └──────────────────────────────────┘
//
// The extractor is deliberately model-free: it emits *raw full-length*
// feature vectors, so per-patient models (which each carry their own feature
// selection and scaler) can be swapped without touching stream state. It is
// single-threaded by design — the sharded engine gives each worker thread
// its own extractor, which is what makes per-patient results independent of
// the thread count, and patients that leave the ward can be dropped with
// erase_patient so a long-running stream does not accumulate dead rings.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "rt/ring_buffer.hpp"

namespace svt::rt {

struct StreamConfig {
  double fs_hz = 250.0;     ///< Raw ECG sampling rate.
  double window_s = 180.0;  ///< Analysis window length (paper: 3 minutes).
  double stride_s = 180.0;  ///< Hop between windows; < window_s overlaps.
  double edr_fs_hz = 4.0;   ///< Uniform EDR resampling rate.
  /// Windows whose QRS detection finds fewer R peaks than this are rejected
  /// (counted, not emitted): too few beats to rebuild the RR/EDR series.
  std::size_t min_beats = 4;
};

/// One fully extracted (but not yet classified) analysis window.
struct ExtractedWindow {
  int patient_id = 0;
  double start_s = 0.0;       ///< Window start within the patient's stream.
  std::size_t num_beats = 0;  ///< R peaks detected in the window.
  std::vector<double> raw_features;  ///< Full-length, unselected, unscaled.
};

/// Receives each extracted window as soon as it is complete.
using WindowSink = std::function<void(ExtractedWindow&&)>;

class WindowExtractor {
 public:
  /// Throws std::invalid_argument on a non-positive sampling rate, window,
  /// or stride, stride_s > window_s, or a window shorter than one sample.
  explicit WindowExtractor(StreamConfig config = {});

  /// Ingest a chunk of raw ECG samples (mV) for one patient, invoking `sink`
  /// for every full window that becomes available. Chunks may be of any
  /// size; a first push creates the patient's stream.
  void push_samples(int patient_id, std::span<const double> samples_mv,
                    const WindowSink& sink);

  /// Drop a patient's stream state (sample ring, window phase). Returns
  /// whether the patient existed. A later push recreates the stream from
  /// scratch (window phase restarts at 0). The rejected-window count is
  /// cumulative across evictions.
  bool erase_patient(int patient_id);

  /// Windows rejected for having fewer than min_beats R peaks.
  std::size_t rejected_windows() const { return rejected_; }

  /// Samples currently buffered for a patient (0 for unknown patients).
  std::size_t buffered_samples(int patient_id) const;

  std::size_t num_patients() const { return patients_.size(); }
  std::size_t window_samples() const { return window_samples_; }
  std::size_t stride_samples() const { return stride_samples_; }
  const StreamConfig& config() const { return config_; }

 private:
  struct PatientState {
    SampleRing ring;
    std::size_t consumed = 0;  ///< Samples dropped so far = next window start.
    explicit PatientState(std::size_t capacity) : ring(capacity) {}
  };

  void emit_window(int patient_id, PatientState& state, const WindowSink& sink);

  StreamConfig config_;
  std::size_t window_samples_ = 0;
  std::size_t stride_samples_ = 0;
  std::map<int, PatientState> patients_;
  std::size_t rejected_ = 0;
};

}  // namespace svt::rt
