// The extraction stage of the streaming pipeline, shared by every serving
// engine (single-threaded or sharded):
//
//   push_batch({patient, chunk}...)
//   ┌──────────────────────────┐ beats ┌───────────────────────────────────┐
//   │ lane packs: up to 8      │ ring  │ slice beats in [start, start+W)   │  sink(
//   │ patients' Pan-Tompkins   │ ────> │ -> RR + EDR series (scratch)      │ ─ ExtractedWindow)
//   │ chains in SIMD lockstep  │       │ -> 53 raw features (zero-alloc)   │
//   └──────────────────────────┘       └───────────────────────────────────┘
//
// Extraction is *incremental*: each raw sample runs through the online
// Pan-Tompkins chain exactly once as it arrives, and a window is assembled
// by slicing the beats that fall inside [start, start + window_s) out of
// the patient's beat ring — overlapping strides therefore cost O(1) work
// per sample instead of re-running the whole filter chain window_s/stride_s
// times per sample, and emission performs no heap allocation in steady
// state (one features::FeatureScratch per extractor, reused across every
// patient and window).
//
// Patients stream at the same rate, so their identical filter chains run
// lane-parallel: patients are grouped into LaneQrsDetector packs (one
// patient per SIMD lane, 4-wide AVX2 / 2-wide SSE2 by runtime dispatch),
// and push_batch steps every patient of a pack per instruction. Each lane
// is bit-identical to a dedicated scalar detector, so the emitted windows
// are byte-for-byte the same as the per-patient push_samples path — only
// faster when chunks for several patients arrive together. Lanes occupy
// fixed slots: patients joining or leaving (erase_patient / end_patient)
// never perturb other lanes' streams, a freed lane's ring storage stays
// pooled for the next same-pack patient, and a fully empty pack is
// released outright — resident detector memory is bounded by the number of
// concurrently active patients, not by patient churn.
//
// Because detection is causal with a bounded lookahead (the R-peak search
// runs behind the integrator), a window is emitted once the detector's
// finality frontier passes the window end — emission_lag_samples() (~190 ms
// at 250 Hz) after the last sample of the window arrives. Beat times inside
// a window are relative to the window start, so identical beat patterns
// produce bit-identical features wherever they sit in the stream.
//
// The extractor is deliberately model-free: it emits *raw full-length*
// feature vectors, so per-patient models (which each carry their own feature
// selection and scaler) can be swapped without touching stream state. It is
// single-threaded by design — the sharded engine gives each worker thread
// its own extractor (and therefore its own scratch), which is what makes
// per-patient results independent of the thread count.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "ecg/lane_qrs.hpp"
#include "ecg/quality.hpp"
#include "features/feature_scratch.hpp"
#include "features/feature_types.hpp"
#include "features/segment_cache.hpp"
#include "rt/workload.hpp"

namespace svt::rt {

struct StreamConfig {
  double fs_hz = 250.0;     ///< Raw ECG sampling rate.
  double window_s = 180.0;  ///< Analysis window length (paper: 3 minutes).
  double stride_s = 180.0;  ///< Hop between windows; < window_s overlaps.
  double edr_fs_hz = 4.0;   ///< Uniform EDR resampling rate.
  /// Windows with fewer beats than this are rejected (counted, not
  /// emitted): too few beats to rebuild the RR/EDR series.
  std::size_t min_beats = 4;
  /// Memoize per-stride feature intermediates (RR slices, EDR chunks, Welch
  /// segment periodograms) when the configuration is stride-aligned, so
  /// overlapping windows stop recomputing their shared samples. false runs
  /// the identical chunked pipeline but rebuilds every product per window —
  /// the parity reference (bit-identical output, none of the speedup).
  /// Non-aligned configurations use the legacy whole-window path either way.
  bool incremental = true;
  /// Workloads served per window, indexed by position (the workload id on
  /// every result). Empty = exactly {apnea_workload()} as workload 0 — the
  /// back-compatible single-pipeline default. The per-patient substrate
  /// (beat ring, RR, EDR) is computed once per window regardless of how
  /// many workloads consume it. Every engine sharing a stream must use the
  /// same list (it is part of the stream semantics, like window_s).
  std::vector<std::shared_ptr<const Workload>> workloads;
  /// Streaming signal-quality gate between detection and windowing (off by
  /// default: zero per-sample work, bit-identical pipeline). Part of the
  /// stream semantics like the window geometry — the single-threaded and
  /// sharded engines agree exactly because they share this config.
  ecg::QualityConfig quality;
};

/// One fully extracted (but not yet classified) analysis window, for one
/// workload. A stream serving W workloads emits W of these per window
/// position, consecutively, in registration order.
struct ExtractedWindow {
  int patient_id = 0;
  double start_s = 0.0;       ///< Window start within the patient's stream.
  std::size_t num_beats = 0;  ///< R peaks inside the window.
  std::uint32_t workload = 0;  ///< Index into the stream's workload list.
  std::uint32_t quality = 0;   ///< ecg::quality_flags bitmask (0 = clean).
  /// Valid prefix of raw_features (the workload's num_features()).
  std::size_t num_features = features::kNumFeatures;
  /// Full-length, unselected, unscaled features (fixed-size: no heap).
  std::array<double, kMaxWorkloadFeatures> raw_features{};

  std::span<const double> features_view() const { return {raw_features.data(), num_features}; }
};

/// Receives each extracted window as soon as it is complete.
using WindowSink = std::function<void(ExtractedWindow&&)>;

class WindowExtractor {
 public:
  /// One patient's chunk in a push_batch round.
  struct PatientChunk {
    int patient_id = 0;
    std::span<const double> samples_mv;
  };

  /// Throws std::invalid_argument on a non-positive sampling rate, window,
  /// or stride, stride_s > window_s, a window shorter than one sample, or a
  /// sampling rate too low for the QRS band-pass (fs_hz <= 30).
  explicit WindowExtractor(StreamConfig config = {});

  /// Ingest one chunk per patient — the lane-parallel hot path. Patients
  /// sharing a pack are stepped in SIMD lockstep; patient ids must be
  /// distinct within one call. `sink` fires for every window whose beats
  /// have become final, grouped per patient in chunk order. A first chunk
  /// creates the patient's stream (claiming a lane in the first pack with a
  /// free slot).
  void push_batch(std::span<const PatientChunk> chunks, const WindowSink& sink);

  /// Single-patient convenience: exactly push_batch of one chunk.
  void push_samples(int patient_id, std::span<const double> samples_mv,
                    const WindowSink& sink);

  /// End a finite stream: flush the detector's tail (the batch detector's
  /// end-of-record semantics), emit every remaining window that has a full
  /// complement of samples — including the trailing windows the live-stream
  /// path holds back for emission_lag_samples() — then drop the patient's
  /// state. Returns whether the patient existed. Live monitoring streams
  /// never call this; offline/recorded sessions end with it so no full
  /// window is lost.
  bool end_patient(int patient_id, const WindowSink& sink);

  /// Drop a patient's stream state (detector lane, beat ring, window
  /// phase). Returns whether the patient existed. The freed lane's ring
  /// storage is pooled for the pack's next patient (an emptied pack is
  /// released), so long-running wards do not accumulate dead detector
  /// state. A later push recreates the stream from scratch (window phase
  /// restarts at 0). The rejected-window count is cumulative across
  /// evictions.
  bool erase_patient(int patient_id);

  /// One patient's complete stream state — detector lane, beat ring, window
  /// phase — exported by detach_patient and imported bit-exactly by
  /// attach_patient on another extractor with the same StreamConfig. This is
  /// how the sharded engine migrates a patient between workers: the stream
  /// continues on the destination exactly where it left off.
  struct DetachedPatient {
    ecg::LaneQrsDetector::DetachedLane lane;
    std::int64_t pushed = 0;
    std::int64_t consumed = 0;
    /// Memoized stride intermediates travel with the stream (null on
    /// non-aligned configurations). Dropping it would still be correct —
    /// every entry is a pure function of the final beat stream — but
    /// carrying it keeps the destination shard's hit rate warm and its
    /// counters coherent.
    std::unique_ptr<features::SegmentFeatureCache> cache;
    /// Quality-gate state (null when the gate is off). MUST travel: the
    /// refractory countdown, open artifact spans and per-patient counters
    /// are stream state — recreating them on the destination would lose
    /// spans that overlap windows not yet emitted.
    std::unique_ptr<ecg::SignalQualityGate> gate;
  };

  /// Export a patient's stream state and drop the patient from this
  /// extractor (the freed lane is pooled like erase_patient). Returns
  /// nullopt for unknown patients.
  std::optional<DetachedPatient> detach_patient(int patient_id);

  /// Import a detached stream for `patient_id` (which must not already be
  /// live here), claiming a lane like a first push would. The patient's
  /// subsequent windows are bit-identical to never having migrated.
  void attach_patient(int patient_id, DetachedPatient&& state);

  /// Whether a patient currently has live stream state here.
  bool has_patient(int patient_id) const { return patients_.count(patient_id) > 0; }

  /// Degradation knob for the deadline controller: windows hop by
  /// stride_samples() * factor while set (> 1 = fewer overlapping windows,
  /// less classification work per sample). Applies from the next emission;
  /// factor is clamped to >= 1. Results are deliberately NOT bit-identical
  /// to factor 1 — that is the point of degrading.
  void set_stride_factor(std::size_t factor) { stride_factor_ = factor < 1 ? 1 : factor; }
  std::size_t stride_factor() const { return stride_factor_; }

  /// Windows rejected for having fewer than min_beats R peaks.
  std::size_t rejected_windows() const { return rejected_; }

  /// The resolved workload list (config.workloads, or the implicit
  /// single-apnea default). Stable for the extractor's lifetime.
  const std::vector<std::shared_ptr<const Workload>>& workloads() const { return workloads_; }
  std::size_t num_workloads() const { return workloads_.size(); }

  /// Aggregate quality-gate counters over live and retired patients
  /// (detached patients carry theirs to the destination extractor, like the
  /// segment-cache stats). All zeros when the gate is off.
  ecg::QualityStats quality_stats() const;

  /// Extractor-local annotate/suppress event counters. Unlike the per-gate
  /// stats these do NOT travel with a migrating patient (events count where
  /// they happened), so they are monotone per extractor — the property the
  /// sharded engine's watermark accounting needs. Summed over all
  /// extractors they equal the gate totals.
  std::size_t annotated_windows() const { return annotated_; }
  std::size_t suppressed_windows() const { return suppressed_; }

  /// Whether streams here run the incremental (segment-cached) feature
  /// pipeline: config.incremental and a stride-aligned configuration.
  bool incremental_active() const { return cache_layout_.has_value() && config_.incremental; }

  /// Aggregate segment-cache counters over live and retired patients
  /// (detached patients carry theirs to the destination extractor). All
  /// zeros when the legacy whole-window path is active.
  features::SegmentCacheStats cache_stats() const;

  /// Samples accumulated toward a patient's next window (0 for unknown
  /// patients): samples pushed minus samples consumed by emitted windows.
  std::size_t buffered_samples(int patient_id) const;

  /// Detection lookahead: a window is emitted once this many samples past
  /// its end have been pushed (the online detector's finality lag).
  std::size_t emission_lag_samples() const { return emission_lag_samples_; }

  std::size_t num_patients() const { return patients_.size(); }
  std::size_t window_samples() const { return window_samples_; }
  std::size_t stride_samples() const { return stride_samples_; }
  const StreamConfig& config() const { return config_; }

  /// Detector samples stepped in SIMD lockstep / by the scalar per-lane
  /// fallback, summed over live and retired packs. The vector fraction is
  /// the lane-occupancy figure reported by the throughput bench.
  std::uint64_t lane_vector_samples() const;
  std::uint64_t lane_scalar_samples() const;

  /// Dispatch tier the lane packs run at: "scalar", "sse2" or "avx2".
  const char* lane_isa() const;

  /// Detector ring/beat storage currently resident across all packs
  /// (including lanes pooled after eviction). Bounded by the number of
  /// concurrently active patients, independent of churn; 0 when no
  /// patients are live.
  std::size_t resident_detector_bytes() const;

 private:
  /// Up to LaneQrsDetector::kMaxLanes patients stepped in lockstep.
  struct Pack {
    ecg::LaneQrsDetector detector;
    std::size_t active = 0;  ///< Occupied lanes.
    explicit Pack(double fs_hz) : detector(fs_hz) {}
  };

  struct PatientState {
    std::size_t pack = 0;       ///< Index into packs_.
    std::size_t lane = 0;       ///< Lane slot within the pack.
    std::int64_t pushed = 0;    ///< Samples ingested so far.
    std::int64_t consumed = 0;  ///< Next window start (samples).
    /// Per-patient stride intermediates (null on the legacy path). Bounded:
    /// one window of chunk entries + one window of segment periodograms.
    std::unique_ptr<features::SegmentFeatureCache> cache;
    /// Per-patient quality-gate state (null when the gate is off).
    std::unique_ptr<ecg::SignalQualityGate> gate;
  };

  PatientState& find_or_create(int patient_id);
  std::size_t claim_pack();  ///< Pack index with a free lane (first fit).
  void release_patient(PatientState& state);
  void emit_ready_windows(int patient_id, PatientState& state, std::int64_t frontier,
                          const WindowSink& sink);
  void emit_window(int patient_id, PatientState& state, const WindowSink& sink);
  void emit_window_cached(int patient_id, PatientState& state, const WindowSink& sink);
  /// The shared back half of both emit paths: gate the window (annotate or
  /// suppress), then run every registered workload over the substrate and
  /// sink one ExtractedWindow per workload.
  void emit_for_workloads(int patient_id, PatientState& state, std::int64_t start,
                          const WindowSubstrate& substrate, const WindowSink& sink);

  StreamConfig config_;
  std::size_t window_samples_ = 0;
  std::size_t stride_samples_ = 0;
  std::size_t emission_lag_samples_ = 0;
  std::vector<std::unique_ptr<Pack>> packs_;  ///< Null slots are reusable.
  std::map<int, PatientState> patients_;
  std::size_t rejected_ = 0;
  std::size_t annotated_ = 0;   ///< Windows emitted with non-zero quality flags.
  std::size_t suppressed_ = 0;  ///< Windows withheld by the suppress policy.
  std::size_t stride_factor_ = 1;  ///< Deadline-mode hop multiplier.
  std::uint64_t retired_vector_samples_ = 0;  ///< From released packs.
  std::uint64_t retired_scalar_samples_ = 0;
  /// Segment-cache geometry when the configuration is stride-aligned;
  /// nullopt selects the legacy whole-window emit path.
  std::optional<features::SegmentFeatureCache::Layout> cache_layout_;
  features::SegmentCacheStats retired_cache_stats_;  ///< From erased/ended patients.
  /// Resolved workload list: config_.workloads, or {apnea_workload()}.
  std::vector<std::shared_ptr<const Workload>> workloads_;
  ecg::QualityStats retired_quality_stats_;  ///< From erased/ended patients.

  // Per-extractor scratch (extractors are single-threaded): reused across
  // every patient and window, so steady-state emission never allocates.
  features::FeatureScratch scratch_;
  ecg::RrSeries rr_scratch_;
  ecg::RespirationSeries edr_scratch_;
  std::vector<double> beat_times_;  ///< Window-relative beat times.
  std::vector<double> beat_amps_;
  std::vector<ecg::LaneQrsDetector::LaneChunk> lane_chunks_;  ///< push_batch scratch.
};

}  // namespace svt::rt
