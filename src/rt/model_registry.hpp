// Per-patient model serving with atomic hot-swap.
//
// The paper's deployment model is one *tailored* detector per patient; a
// serving runtime therefore needs a patient -> model map that can be updated
// while that patient's stream is live (a retrained or requantised detector
// arrives from the tailoring flow, or is loaded from disk). Two pieces:
//
//  * ServableModel — an immutable, self-contained deployable unit: the
//    tailored front half (feature selection + scaler) plus the decision
//    engine (bit-exact fixed-point core::QuantizedModel when quantised, the
//    packed float fast path otherwise). Immutability is what makes hot-swap
//    safe: classification threads only ever read a ServableModel through a
//    shared_ptr snapshot, so an in-flight batch keeps the model it started
//    with even if the registry entry is replaced mid-batch.
//
//  * ModelRegistry — the mutable patient -> shared_ptr<const ServableModel>
//    map (plus a cohort-wide default), guarded by a mutex. install() is the
//    hot-swap: it atomically replaces the pointer; the next resolve() serves
//    the new model. The continuous sharded engine resolves once per
//    classified batch, so a swap fences on the patient's next batch boundary
//    (never mid-batch) — flush() upgrades that to a hard fence. Old models
//    die when the last in-flight batch drops its snapshot. Every mutation
//    bumps generation(), a monotonic counter monitoring loops can poll to
//    detect swaps (e.g. the ROADMAP's swap-on-drift flow).
//
// ServableModel round-trips through the same text format as SvmModel
// (selection + scaler + float SVM + optional QuantizedModel), so a registry
// can be rebuilt from disk at startup without retraining or requantising.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/quantize.hpp"
#include "core/tailoring.hpp"
#include "rt/packed_model.hpp"
#include "svm/model.hpp"
#include "svm/scaler.hpp"

namespace svt::rt {

class ServableModel {
 public:
  /// Bundle a deployable model. `selected` are indices into the raw
  /// full-length feature vector; `scaler` must be fitted to that selection.
  /// When `quantized` is absent and the model uses the quadratic kernel, the
  /// packed float fast path is built up front. Throws std::invalid_argument
  /// if the scaler/model feature counts disagree with the selection.
  ServableModel(std::vector<std::size_t> selected, svm::StandardScaler scaler,
                svm::SvmModel model, std::optional<core::QuantizedModel> quantized);

  /// Copy the deployable parts out of a tailored detector.
  static ServableModel from_detector(const core::TailoredDetector& detector);

  /// The front half of classification: select this model's features from a
  /// raw full-length vector and scale them. Throws std::invalid_argument if
  /// the raw vector is too short.
  std::vector<double> prepare_row(std::span<const double> raw_features) const;

  /// Scratch variant: the prepared row lands in `out` (resized; capacity
  /// reused across calls), so the serving hot loop performs no allocation
  /// once warm. Bit-identical to the allocating overload.
  void prepare_row(std::span<const double> raw_features, std::vector<double>& out) const;

  const std::vector<std::size_t>& selected_features() const { return selected_; }
  const svm::StandardScaler& scaler() const { return scaler_; }
  const svm::SvmModel& model() const { return model_; }
  const std::optional<core::QuantizedModel>& quantized() const { return quantized_; }
  const std::optional<PackedModel>& packed() const { return packed_; }

  /// Text serialisation (round-trippable; the loaded engine is bit-identical,
  /// so deployments skip requantisation at startup). load() throws
  /// std::invalid_argument on corrupt input.
  void save(std::ostream& os) const;
  static ServableModel load(std::istream& is);

 private:
  std::vector<std::size_t> selected_;
  svm::StandardScaler scaler_;
  svm::SvmModel model_;
  std::optional<core::QuantizedModel> quantized_;
  std::optional<PackedModel> packed_;
};

/// Thread-safe (workload, patient) -> model map with a per-workload
/// default. Workload 0 is the primary pipeline (apnea in-tree); the
/// single-argument overloads address it, so pre-multi-workload callers are
/// source-compatible and serve exactly what they always served.
class ModelRegistry {
 public:
  ModelRegistry() = default;
  /// Workload-0 cohort default.
  explicit ModelRegistry(ServableModel default_model);

  /// The fallback served to a workload's patients without a dedicated entry
  /// (null clears). The single-argument overload addresses workload 0.
  void set_default(std::shared_ptr<const ServableModel> model);
  void set_default(std::uint32_t workload, std::shared_ptr<const ServableModel> model);
  void set_default(std::uint32_t workload, ServableModel model);

  /// Install (or hot-swap) a patient's dedicated model for one workload.
  /// Atomic with respect to resolve(): concurrent lookups see either the
  /// old or the new model, never a partial state.
  void install(int patient_id, std::shared_ptr<const ServableModel> model);
  void install(int patient_id, ServableModel model);
  void install(std::uint32_t workload, int patient_id,
               std::shared_ptr<const ServableModel> model);
  void install(std::uint32_t workload, int patient_id, ServableModel model);

  /// Remove a patient's dedicated workload-0 / per-workload model (falls
  /// back to that workload's default).
  void erase(int patient_id);
  void erase(std::uint32_t workload, int patient_id);

  /// The model currently serving (workload, patient): the dedicated entry
  /// if one is installed, else the workload's default, else null.
  std::shared_ptr<const ServableModel> resolve(int patient_id) const;
  std::shared_ptr<const ServableModel> resolve(std::uint32_t workload, int patient_id) const;

  /// Dedicated (workload, patient) entries across all workloads.
  std::size_t num_patient_models() const;

  /// Monotonic mutation counter: incremented by every set_default, install,
  /// and erase. Equal generations imply no swap happened in between.
  std::uint64_t generation() const;

 private:
  /// (workload, patient): ordered so workload-contiguous iteration works.
  using Key = std::pair<std::uint32_t, int>;

  mutable std::mutex mutex_;
  std::map<std::uint32_t, std::shared_ptr<const ServableModel>> defaults_;
  std::map<Key, std::shared_ptr<const ServableModel>> models_;
  std::uint64_t generation_ = 0;
};

}  // namespace svt::rt
