#include "rt/packed_model.hpp"

#include <algorithm>
#include <stdexcept>

#include "rt/packed_kernel.hpp"

namespace svt::rt {

PackedModel::PackedModel(const svt::svm::SvmModel& model) {
  using svt::svm::KernelType;
  if (model.kernel.type != KernelType::kPolynomial || model.kernel.degree != 2)
    throw std::invalid_argument("PackedModel: kernel must be quadratic polynomial");
  if (model.num_support_vectors() == 0)
    throw std::invalid_argument("PackedModel: model has no support vectors");
  nfeat_ = model.num_features();
  nsv_ = model.num_support_vectors();
  bias_ = model.bias;
  coef0_ = model.kernel.coef0;
  alpha_y_ = model.alpha_y;
  svs_.resize(nsv_ * nfeat_);
  for (std::size_t i = 0; i < nsv_; ++i)
    std::copy(model.support_vectors[i].begin(), model.support_vectors[i].end(),
              svs_.begin() + i * nfeat_);
}

void PackedModel::decision_values_flat(const double* xs, std::size_t nwin, double* out) const {
  if (nwin == 0) return;
  std::vector<double> xt(nwin * nfeat_);
  transpose_batch(xs, nwin, nfeat_, xt.data());
  batch_quadratic_decisions(xt.data(), nwin, nfeat_, svs_.data(), nsv_, alpha_y_.data(), bias_,
                            coef0_, out);
}

void PackedModel::decision_values(std::span<const std::vector<double>> xs,
                                  std::span<double> out) const {
  KernelScratch scratch;
  decision_values(xs, out, scratch);
}

void PackedModel::decision_values(std::span<const std::vector<double>> xs, std::span<double> out,
                                  KernelScratch& scratch) const {
  if (out.size() != xs.size())
    throw std::invalid_argument("PackedModel::decision_values: output size mismatch");
  const std::size_t nwin = xs.size();
  if (nwin == 0) return;
  auto& xt = scratch.xt;
  xt.resize(nwin * nfeat_);
  for (std::size_t w = 0; w < nwin; ++w) {
    if (xs[w].size() != nfeat_)
      throw std::invalid_argument("PackedModel::decision_values: feature-count mismatch");
    for (std::size_t f = 0; f < nfeat_; ++f) xt[f * nwin + w] = xs[w][f];
  }
  batch_quadratic_decisions(xt.data(), nwin, nfeat_, svs_.data(), nsv_, alpha_y_.data(), bias_,
                            coef0_, out.data());
}

std::vector<double> PackedModel::decision_values(std::span<const std::vector<double>> xs) const {
  std::vector<double> out(xs.size());
  decision_values(xs, out);
  return out;
}

double PackedModel::decision_value(std::span<const double> x) const {
  if (x.size() != nfeat_)
    throw std::invalid_argument("PackedModel::decision_value: feature-count mismatch");
  double out = 0.0;
  decision_values_flat(x.data(), 1, &out);
  return out;
}

}  // namespace svt::rt
