#include "rt/model_registry.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>
#include <utility>

namespace svt::rt {

ServableModel::ServableModel(std::vector<std::size_t> selected, svm::StandardScaler scaler,
                             svm::SvmModel model, std::optional<core::QuantizedModel> quantized)
    : selected_(std::move(selected)),
      scaler_(std::move(scaler)),
      model_(std::move(model)),
      quantized_(std::move(quantized)) {
  if (model_.num_support_vectors() == 0)
    throw std::invalid_argument("ServableModel: model has no support vectors");
  if (selected_.empty())
    throw std::invalid_argument("ServableModel: empty feature selection");
  if (model_.num_features() != selected_.size())
    throw std::invalid_argument("ServableModel: model/selection feature-count mismatch");
  if (!scaler_.fitted() || scaler_.num_features() != selected_.size())
    throw std::invalid_argument("ServableModel: scaler not fitted to the selection");
  if (quantized_ && quantized_->num_features() != selected_.size())
    throw std::invalid_argument("ServableModel: quantised engine feature-count mismatch");
  // Same fast-path rule as StreamClassifier: the packed float model is only
  // read when there is no quantised engine, so skip the SV-table copy then.
  if (!quantized_ && model_.kernel.type == svm::KernelType::kPolynomial &&
      model_.kernel.degree == 2) {
    packed_.emplace(model_);
  }
}

ServableModel ServableModel::from_detector(const core::TailoredDetector& detector) {
  return ServableModel(detector.selected_features(), detector.scaler(), detector.model(),
                       detector.quantized());
}

std::vector<double> ServableModel::prepare_row(std::span<const double> raw_features) const {
  std::vector<double> x;
  prepare_row(raw_features, x);
  return x;
}

void ServableModel::prepare_row(std::span<const double> raw_features,
                                std::vector<double>& out) const {
  out.clear();
  out.reserve(selected_.size());
  for (std::size_t j : selected_) {
    if (j >= raw_features.size())
      throw std::invalid_argument("ServableModel::prepare_row: feature vector too short");
    out.push_back(raw_features[j]);
  }
  scaler_.transform_inplace(out);
}

void ServableModel::save(std::ostream& os) const {
  os << "svmtailor-servable v1\n";
  os << "selected " << selected_.size();
  for (std::size_t j : selected_) os << ' ' << j;
  os << '\n';
  scaler_.save(os);
  model_.save(os);
  os << "quantized " << (quantized_ ? 1 : 0) << '\n';
  if (quantized_) quantized_->save(os);
}

ServableModel ServableModel::load(std::istream& is) {
  using svm::io::expect_header;
  using svm::io::expect_tag;
  using svm::io::require_good;
  expect_header(is, "svmtailor-servable", "v1", "ServableModel::load");
  std::size_t nselected = 0;
  expect_tag(is, "selected", "ServableModel::load");
  is >> nselected;
  require_good(is, "ServableModel::load");
  std::vector<std::size_t> selected(nselected);
  for (std::size_t& j : selected) is >> j;
  require_good(is, "ServableModel::load");
  auto scaler = svm::StandardScaler::load(is);
  auto model = svm::SvmModel::load(is);
  int has_quantized = 0;
  expect_tag(is, "quantized", "ServableModel::load");
  is >> has_quantized;
  require_good(is, "ServableModel::load");
  std::optional<core::QuantizedModel> quantized;
  if (has_quantized != 0) quantized = core::QuantizedModel::load(is);
  return ServableModel(std::move(selected), std::move(scaler), std::move(model),
                       std::move(quantized));
}

ModelRegistry::ModelRegistry(ServableModel default_model) {
  defaults_[0] = std::make_shared<const ServableModel>(std::move(default_model));
}

void ModelRegistry::set_default(std::shared_ptr<const ServableModel> model) {
  set_default(0, std::move(model));
}

void ModelRegistry::set_default(std::uint32_t workload,
                                std::shared_ptr<const ServableModel> model) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (model) {
    defaults_[workload] = std::move(model);
  } else {
    defaults_.erase(workload);
  }
  ++generation_;
}

void ModelRegistry::set_default(std::uint32_t workload, ServableModel model) {
  set_default(workload, std::make_shared<const ServableModel>(std::move(model)));
}

void ModelRegistry::install(int patient_id, std::shared_ptr<const ServableModel> model) {
  install(0, patient_id, std::move(model));
}

void ModelRegistry::install(int patient_id, ServableModel model) {
  install(0, patient_id, std::make_shared<const ServableModel>(std::move(model)));
}

void ModelRegistry::install(std::uint32_t workload, int patient_id,
                            std::shared_ptr<const ServableModel> model) {
  if (!model) throw std::invalid_argument("ModelRegistry::install: null model");
  const std::lock_guard<std::mutex> lock(mutex_);
  models_[Key{workload, patient_id}] = std::move(model);
  ++generation_;
}

void ModelRegistry::install(std::uint32_t workload, int patient_id, ServableModel model) {
  install(workload, patient_id, std::make_shared<const ServableModel>(std::move(model)));
}

void ModelRegistry::erase(int patient_id) { erase(0, patient_id); }

void ModelRegistry::erase(std::uint32_t workload, int patient_id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (models_.erase(Key{workload, patient_id}) > 0) ++generation_;
}

std::shared_ptr<const ServableModel> ModelRegistry::resolve(int patient_id) const {
  return resolve(0, patient_id);
}

std::shared_ptr<const ServableModel> ModelRegistry::resolve(std::uint32_t workload,
                                                            int patient_id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = models_.find(Key{workload, patient_id});
  if (it != models_.end()) return it->second;
  const auto def = defaults_.find(workload);
  return def != defaults_.end() ? def->second : nullptr;
}

std::size_t ModelRegistry::num_patient_models() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return models_.size();
}

std::uint64_t ModelRegistry::generation() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return generation_;
}

}  // namespace svt::rt
