#include "rt/cohort_replayer.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <random>
#include <set>
#include <span>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/quantize.hpp"
#include "features/af_features.hpp"
#include "features/feature_types.hpp"
#include "io/wfdb.hpp"
#include "svm/kernel.hpp"

namespace svt::rt {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

// The replayer always wraps the user's sink with its counting sink: the
// options handed to the engine carry the wrapper, and the user's sink is
// kept aside in user_sink_ (initialised first — declaration order — so the
// wrapper may capture it).
CohortReplayer::CohortReplayer(std::shared_ptr<ModelRegistry> registry, StreamConfig config,
                               EngineOptions options)
    : user_sink_(std::exchange(options.sink, {})),
      engine_(std::move(registry), config,
              [&options, this]() -> EngineOptions {
                options.sink = [this](std::span<const WindowResult> batch) {
                  if (!batch.empty()) {
                    const std::lock_guard<std::mutex> lock(windows_mutex_);
                    windows_per_patient_[batch.front().patient_id] += batch.size();
                  }
                  if (user_sink_) user_sink_(batch);
                };
                return std::move(options);
              }()) {}

int CohortReplayer::patient_id_of(const std::string& record_name) {
  std::size_t begin = record_name.size();
  while (begin > 0 && std::isdigit(static_cast<unsigned char>(record_name[begin - 1]))) --begin;
  if (begin == record_name.size())
    throw std::invalid_argument("record name '" + record_name +
                                "' carries no trailing record number");
  errno = 0;
  const long value = std::strtol(record_name.c_str() + begin, nullptr, 10);
  if (errno == ERANGE || value > std::numeric_limits<int>::max())
    throw std::invalid_argument("record name '" + record_name +
                                "': trailing record number does not fit a patient id");
  return static_cast<int>(value);
}

ReplayReport CohortReplayer::replay_directory(const std::string& dir,
                                              const ReplayOptions& options) {
  return replay_records(dir, io::read_records_index(dir), options);
}

ReplayReport CohortReplayer::replay_records(const std::string& dir,
                                            const std::vector<std::string>& names,
                                            const ReplayOptions& options) {
  if (options.chunk_s <= 0.0) throw std::invalid_argument("replay: non-positive chunk_s");
  if (options.speed < 0.0) throw std::invalid_argument("replay: negative speed");

  // Decode the whole cohort up front: replay should measure the *pipeline*,
  // not disk reads, and a corrupt record must fail before any sample flows.
  struct LoadedRecord {
    std::string name;
    int patient_id = 0;
    std::vector<double> samples_mv;
    std::string skip_reason;  ///< Non-empty: report, don't stream.
  };
  const double fs = engine_.config().fs_hz;
  std::vector<LoadedRecord> cohort;
  std::set<int> patient_ids;
  for (const auto& name : names) {
    const auto record = io::read_record(dir, name);
    LoadedRecord loaded;
    loaded.name = name;
    loaded.patient_id = patient_id_of(name);
    if (record.header.fs_hz != fs) {
      // One mis-recorded monitor must not abort the ward: skip the record
      // with a per-record reason instead of throwing.
      loaded.skip_reason = "sampled at " + std::to_string(record.header.fs_hz) +
                           " Hz, engine expects " + std::to_string(fs);
      cohort.push_back(std::move(loaded));
      continue;
    }
    const std::size_t channel = options.channel == ReplayOptions::kAutoChannel
                                    ? io::ecg_channel(record.header)
                                    : options.channel;
    if (channel >= record.header.num_signals())
      throw std::invalid_argument("replay: record " + name + " has no channel " +
                                  std::to_string(channel));
    if (!patient_ids.insert(loaded.patient_id).second)
      throw std::invalid_argument("replay: duplicate patient id " +
                                  std::to_string(loaded.patient_id) +
                                  " (concurrent records must be distinct patients)");
    loaded.samples_mv = record.signal_mv(channel);
    cohort.push_back(std::move(loaded));
  }

  {
    const std::lock_guard<std::mutex> lock(windows_mutex_);
    windows_per_patient_.clear();
  }
  const std::size_t dropped_before = engine_.dropped_chunks();
  const auto cache_before = engine_.cache_stats();
  const std::size_t chunk =
      std::max<std::size_t>(1, static_cast<std::size_t>(options.chunk_s * fs));

  // Round-robin admission: every record streams concurrently, one chunk per
  // record per round (the telemetry-gateway arrival pattern the benches and
  // examples use).
  std::vector<std::size_t> offsets(cohort.size(), 0);
  std::vector<Clock::time_point> admitted_at(cohort.size());
  const auto t0 = Clock::now();
  bool any_left = !cohort.empty();
  while (any_left) {
    any_left = false;
    for (std::size_t r = 0; r < cohort.size(); ++r) {
      const auto& record = cohort[r];
      std::size_t& offset = offsets[r];
      if (offset >= record.samples_mv.size()) continue;
      if (options.speed > 0.0) {
        const double stream_t = static_cast<double>(offset) / fs;
        std::this_thread::sleep_until(
            t0 + std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double>(stream_t / options.speed)));
      }
      const std::size_t n = std::min(chunk, record.samples_mv.size() - offset);
      engine_.push_samples(record.patient_id, std::span(record.samples_mv).subspan(offset, n));
      offset += n;
      if (offset < record.samples_mv.size()) {
        any_left = true;
      } else {
        // Record end: flush the detector tail so the trailing windows the
        // live path holds back are classified and delivered too.
        engine_.end_stream(record.patient_id);
        admitted_at[r] = Clock::now();
      }
    }
  }
  engine_.flush();  // Terminal fence: every chunk extracted, classified, delivered.
  const auto t_end = Clock::now();

  ReplayReport report;
  report.wall_s = seconds_since(t0, t_end);
  report.dropped_chunks = engine_.dropped_chunks() - dropped_before;
  const auto cache_after = engine_.cache_stats();  // Quiescent: fenced above.
  report.cache.hits = cache_after.hits - cache_before.hits;
  report.cache.misses = cache_after.misses - cache_before.misses;
  report.cache.evictions = cache_after.evictions - cache_before.evictions;
  const std::lock_guard<std::mutex> lock(windows_mutex_);
  for (std::size_t r = 0; r < cohort.size(); ++r) {
    RecordReplayStats stats;
    stats.record = cohort[r].name;
    stats.patient_id = cohort[r].patient_id;
    if (!cohort[r].skip_reason.empty()) {
      stats.skipped = true;
      stats.skip_reason = cohort[r].skip_reason;
      ++report.skipped_records;
      report.records.push_back(std::move(stats));
      continue;
    }
    stats.samples = cohort[r].samples_mv.size();
    stats.duration_s = static_cast<double>(stats.samples) / fs;
    stats.wall_s = seconds_since(t0, admitted_at[r]);
    stats.x_realtime = stats.wall_s > 0.0 ? stats.duration_s / stats.wall_s : 0.0;
    const auto it = windows_per_patient_.find(stats.patient_id);
    stats.windows = it == windows_per_patient_.end() ? 0 : it->second;
    report.total_duration_s += stats.duration_s;
    report.windows += stats.windows;
    report.records.push_back(std::move(stats));
  }
  report.x_realtime = report.wall_s > 0.0 ? report.total_duration_s / report.wall_s : 0.0;
  return report;
}

namespace {

/// Shared builder for the synthetic serving models: identity selection over
/// `nfeat` raw features, seeded z-score scaler, random quantised quadratic
/// SVM with `num_svs` support vectors.
ServableModel synthetic_model(std::size_t nfeat, std::size_t num_svs, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> sv_dist(-2.0, 2.0);
  std::uniform_real_distribution<double> alpha_dist(-1.0, 1.0);
  svm::SvmModel model;
  model.kernel = svm::quadratic_kernel();
  model.support_vectors.resize(num_svs, std::vector<double>(nfeat));
  model.alpha_y.resize(num_svs);
  for (std::size_t i = 0; i < num_svs; ++i) {
    for (auto& v : model.support_vectors[i]) v = sv_dist(rng);
    model.alpha_y[i] = alpha_dist(rng);
  }
  model.bias = -0.25;

  std::vector<std::size_t> selected(nfeat);
  for (std::size_t j = 0; j < nfeat; ++j) selected[j] = j;
  std::normal_distribution<double> gauss(0.0, 1.0);
  std::vector<std::vector<double>> fit_rows(16, std::vector<double>(nfeat));
  for (auto& row : fit_rows)
    for (auto& v : row) v = gauss(rng);
  svm::StandardScaler scaler(svm::ScalerMode::kZScore);
  scaler.fit(fit_rows);
  auto quantized = core::QuantizedModel::build(model, core::QuantConfig{});
  return ServableModel(std::move(selected), std::move(scaler), std::move(model),
                       std::move(quantized));
}

}  // namespace

ServableModel synthetic_full_feature_model(std::uint64_t seed) {
  // 68 support vectors: the paper's tailored SV budget. The RNG draw
  // sequence matches the historical inline builder, so the replay golden
  // file is unchanged by the refactor.
  return synthetic_model(features::kNumFeatures, 68, seed);
}

ServableModel synthetic_af_model(std::uint64_t seed) {
  return synthetic_model(features::kNumAfFeatures, 16, seed);
}

}  // namespace svt::rt
