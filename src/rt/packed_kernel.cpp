#include "rt/packed_kernel.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "fixed/fixed_point.hpp"

#if defined(SVT_SIMD) && (defined(__AVX2__) || defined(__SSE4_2__))
#include <immintrin.h>
#define SVT_SIMD_ACTIVE 1
#else
#define SVT_SIMD_ACTIVE 0
#endif

namespace svt::rt {

namespace {

/// Local clamp with the exact semantics of fixed::saturate for the
/// pre-validated widths the pipeline uses; inlined here because the
/// out-of-line call is the dominant cost of the per-element hot loop.
/// Branch-free (conditional selects, not early returns): the MAC1 loop runs
/// this once per feature x window and data-dependent saturation branches
/// defeat both the predictor and vectorisation of the window-block loop.
inline std::int64_t saturate64(std::int64_t v, std::int64_t hi, std::int64_t lo) {
  v = v < lo ? lo : v;
  return v > hi ? hi : v;
}

}  // namespace

void transpose_batch(const double* in, std::size_t nwin, std::size_t nfeat, double* out) {
  // Tiled: one kTile x kTile tile touches kTile cache lines on each side
  // regardless of the matrix extents, instead of striding the full row
  // length per element.
  constexpr std::size_t kTile = 32;
  for (std::size_t w0 = 0; w0 < nwin; w0 += kTile) {
    const std::size_t w1 = std::min(nwin, w0 + kTile);
    for (std::size_t f0 = 0; f0 < nfeat; f0 += kTile) {
      const std::size_t f1 = std::min(nfeat, f0 + kTile);
      for (std::size_t w = w0; w < w1; ++w)
        for (std::size_t f = f0; f < f1; ++f) out[f * nwin + w] = in[w * nfeat + f];
    }
  }
}

void batch_quadratic_decisions(const double* xt, std::size_t nwin, std::size_t nfeat,
                               const double* svs, std::size_t nsv, const double* alpha_y,
                               double bias, double coef0, double* out) {
  double accs[kWindowBlock];
  double dots[kWindowBlock];
  for (std::size_t w0 = 0; w0 < nwin; w0 += kWindowBlock) {
    const std::size_t nb = std::min(kWindowBlock, nwin - w0);
    std::fill(accs, accs + nb, bias);
    const double* sv_row = svs;
    for (std::size_t i = 0; i < nsv; ++i, sv_row += nfeat) {
      std::fill(dots, dots + nb, 0.0);
      for (std::size_t f = 0; f < nfeat; ++f) {
        const double svv = sv_row[f];
        const double* xrow = xt + f * nwin + w0;
        for (std::size_t b = 0; b < nb; ++b) dots[b] += xrow[b] * svv;
      }
      const double a = alpha_y[i];
      for (std::size_t b = 0; b < nb; ++b) {
        const double s = dots[b] + coef0;
        accs[b] += a * (s * s);
      }
    }
    std::copy(accs, accs + nb, out + w0);
  }
}

void batch_quantized_accumulators_scalar(const PackedQuantKernel& kernel,
                                         const std::int64_t* qxt, std::size_t nwin,
                                         __int128* out) {
  SVT_ASSERT(kernel.nfeat > 0 && kernel.nsv > 0);
  const std::int64_t mac1_hi = fixed::max_signed_value(kernel.mac1_bits);
  const std::int64_t mac1_lo = fixed::min_signed_value(kernel.mac1_bits);
  const std::int64_t kin_hi = fixed::max_signed_value(kernel.kin_bits);
  const std::int64_t kin_lo = fixed::min_signed_value(kernel.kin_bits);
  const std::int64_t kout_hi = fixed::max_signed_value(kernel.kout_bits);
  const std::int64_t kout_lo = fixed::min_signed_value(kernel.kout_bits);
  std::int64_t acc1s[kWindowBlock];
  __int128 acc2s[kWindowBlock];
  for (std::size_t w0 = 0; w0 < nwin; w0 += kWindowBlock) {
    const std::size_t nb = std::min(kWindowBlock, nwin - w0);
    std::fill(acc2s, acc2s + nb, kernel.q_bias);
    const std::int64_t* sv_row = kernel.q_svs;
    for (std::size_t i = 0; i < kernel.nsv; ++i, sv_row += kernel.nfeat) {
      // MAC1: dot product with per-feature scale-back shifts, saturating.
      std::fill(acc1s, acc1s + nb, std::int64_t{0});
      for (std::size_t f = 0; f < kernel.nfeat; ++f) {
        const std::int64_t svv = sv_row[f];
        const int shift = kernel.product_shifts[f];
        const std::int64_t* qrow = qxt + f * nwin + w0;
        for (std::size_t b = 0; b < nb; ++b)
          acc1s[b] = saturate64(acc1s[b] + ((qrow[b] * svv) >> shift), mac1_hi, mac1_lo);
      }
      const std::int64_t alpha = kernel.q_alpha_y[i];
      for (std::size_t b = 0; b < nb; ++b) {
        // +1, truncate, square, truncate, MAC2 -- same chain as the
        // per-window engine, so results are bit-exact.
        const std::int64_t acc1 = saturate64(acc1s[b] + kernel.q_one, mac1_hi, mac1_lo);
        const std::int64_t kin =
            saturate64(acc1 >> kernel.dot_truncate_bits, kin_hi, kin_lo);
        const std::int64_t square = kin * kin;
        const std::int64_t kout =
            saturate64(square >> kernel.square_truncate_bits, kout_hi, kout_lo);
        acc2s[b] =
            fixed::saturate128(acc2s[b] + static_cast<__int128>(alpha) * kout, kernel.mac2_bits);
      }
    }
    std::copy(acc2s, acc2s + nb, out + w0);
  }
}

#if SVT_SIMD_ACTIVE

// --- Explicit vector MAC1 (AVX2: 4 x int64 lanes; SSE4.2: 2) ----------------
//
// Every operation below is exact integer arithmetic with the same semantics
// as the scalar loop, so the results are bit-identical:
//  * the 64-bit product is a 32x32 signed multiply (quantised features and
//    SVs are Dbits <= 20-bit values, see PackedQuantKernel's contract);
//  * the arithmetic right shift by the per-feature constant s is synthesised
//    as ((v ^ 2^63) >>logical s) - (2^63 >>logical s) — the biased-unsigned
//    identity for floor division by 2^s;
//  * saturation is max(min(v, hi), lo) via 64-bit compare + blend, matching
//    the scalar clamp (lo <= hi always).

namespace {

#if defined(__AVX2__)

using VecI64 = __m256i;
inline constexpr std::size_t kLanes = 4;

inline VecI64 vec_load(const std::int64_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}
inline void vec_store(std::int64_t* p, VecI64 v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}
inline VecI64 vec_set1(std::int64_t v) { return _mm256_set1_epi64x(v); }
inline VecI64 vec_add(VecI64 a, VecI64 b) { return _mm256_add_epi64(a, b); }
inline VecI64 vec_mul32(VecI64 a, VecI64 b) { return _mm256_mul_epi32(a, b); }
inline VecI64 vec_sra(VecI64 v, int s) {
  const VecI64 bias = vec_set1(static_cast<std::int64_t>(std::uint64_t{1} << 63));
  return _mm256_sub_epi64(_mm256_srli_epi64(_mm256_xor_si256(v, bias), s),
                          _mm256_srli_epi64(bias, s));
}
inline VecI64 vec_clamp(VecI64 v, VecI64 hi, VecI64 lo) {
  v = _mm256_blendv_epi8(v, lo, _mm256_cmpgt_epi64(lo, v));  // max(v, lo)
  return _mm256_blendv_epi8(v, hi, _mm256_cmpgt_epi64(v, hi));  // min(v, hi)
}

#else  // __SSE4_2__

using VecI64 = __m128i;
inline constexpr std::size_t kLanes = 2;

inline VecI64 vec_load(const std::int64_t* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}
inline void vec_store(std::int64_t* p, VecI64 v) {
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
}
inline VecI64 vec_set1(std::int64_t v) { return _mm_set1_epi64x(v); }
inline VecI64 vec_add(VecI64 a, VecI64 b) { return _mm_add_epi64(a, b); }
inline VecI64 vec_mul32(VecI64 a, VecI64 b) { return _mm_mul_epi32(a, b); }
inline VecI64 vec_sra(VecI64 v, int s) {
  const VecI64 bias = vec_set1(static_cast<std::int64_t>(std::uint64_t{1} << 63));
  return _mm_sub_epi64(_mm_srli_epi64(_mm_xor_si128(v, bias), s),
                       _mm_srli_epi64(bias, s));
}
inline VecI64 vec_clamp(VecI64 v, VecI64 hi, VecI64 lo) {
  v = _mm_blendv_epi8(v, lo, _mm_cmpgt_epi64(lo, v));
  return _mm_blendv_epi8(v, hi, _mm_cmpgt_epi64(v, hi));
}

#endif

}  // namespace

void batch_quantized_accumulators(const PackedQuantKernel& kernel, const std::int64_t* qxt,
                                  std::size_t nwin, __int128* out) {
  SVT_ASSERT(kernel.nfeat > 0 && kernel.nsv > 0);
  const std::int64_t mac1_hi = fixed::max_signed_value(kernel.mac1_bits);
  const std::int64_t mac1_lo = fixed::min_signed_value(kernel.mac1_bits);
  const std::int64_t kin_hi = fixed::max_signed_value(kernel.kin_bits);
  const std::int64_t kin_lo = fixed::min_signed_value(kernel.kin_bits);
  const std::int64_t kout_hi = fixed::max_signed_value(kernel.kout_bits);
  const std::int64_t kout_lo = fixed::min_signed_value(kernel.kout_bits);
  const VecI64 vhi = vec_set1(mac1_hi);
  const VecI64 vlo = vec_set1(mac1_lo);
  alignas(32) std::int64_t acc1s[kWindowBlock];
  __int128 acc2s[kWindowBlock];
  for (std::size_t w0 = 0; w0 < nwin; w0 += kWindowBlock) {
    const std::size_t nb = std::min(kWindowBlock, nwin - w0);
    const std::size_t nb_vec = nb - nb % kLanes;
    std::fill(acc2s, acc2s + nb, kernel.q_bias);
    const std::int64_t* sv_row = kernel.q_svs;
    for (std::size_t i = 0; i < kernel.nsv; ++i, sv_row += kernel.nfeat) {
      std::fill(acc1s, acc1s + nb, std::int64_t{0});
      for (std::size_t f = 0; f < kernel.nfeat; ++f) {
        const std::int64_t svv = sv_row[f];
        const int shift = kernel.product_shifts[f];
        const std::int64_t* qrow = qxt + f * nwin + w0;
        const VecI64 vsv = vec_set1(svv);
        std::size_t b = 0;
        for (; b < nb_vec; b += kLanes) {
          const VecI64 term = vec_sra(vec_mul32(vec_load(qrow + b), vsv), shift);
          const VecI64 acc = vec_add(vec_load(acc1s + b), term);
          vec_store(acc1s + b, vec_clamp(acc, vhi, vlo));
        }
        for (; b < nb; ++b)  // Scalar tail for the last partial block.
          acc1s[b] = saturate64(acc1s[b] + ((qrow[b] * svv) >> shift), mac1_hi, mac1_lo);
      }
      const std::int64_t alpha = kernel.q_alpha_y[i];
      for (std::size_t b = 0; b < nb; ++b) {
        const std::int64_t acc1 = saturate64(acc1s[b] + kernel.q_one, mac1_hi, mac1_lo);
        const std::int64_t kin =
            saturate64(acc1 >> kernel.dot_truncate_bits, kin_hi, kin_lo);
        const std::int64_t square = kin * kin;
        const std::int64_t kout =
            saturate64(square >> kernel.square_truncate_bits, kout_hi, kout_lo);
        acc2s[b] =
            fixed::saturate128(acc2s[b] + static_cast<__int128>(alpha) * kout, kernel.mac2_bits);
      }
    }
    std::copy(acc2s, acc2s + nb, out + w0);
  }
}

bool simd_kernel_enabled() { return true; }

#else  // !SVT_SIMD_ACTIVE

void batch_quantized_accumulators(const PackedQuantKernel& kernel, const std::int64_t* qxt,
                                  std::size_t nwin, __int128* out) {
  batch_quantized_accumulators_scalar(kernel, qxt, nwin, out);
}

bool simd_kernel_enabled() { return false; }

#endif

}  // namespace svt::rt
