#include "rt/packed_kernel.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "fixed/fixed_point.hpp"

namespace svt::rt {

namespace {

/// Local clamp with the exact semantics of fixed::saturate for the
/// pre-validated widths the pipeline uses; inlined here because the
/// out-of-line call is the dominant cost of the per-element hot loop.
/// Branch-free (conditional selects, not early returns): the MAC1 loop runs
/// this once per feature x window and data-dependent saturation branches
/// defeat both the predictor and vectorisation of the window-block loop.
inline std::int64_t saturate64(std::int64_t v, std::int64_t hi, std::int64_t lo) {
  v = v < lo ? lo : v;
  return v > hi ? hi : v;
}

}  // namespace

void transpose_batch(const double* in, std::size_t nwin, std::size_t nfeat, double* out) {
  for (std::size_t w = 0; w < nwin; ++w)
    for (std::size_t f = 0; f < nfeat; ++f) out[f * nwin + w] = in[w * nfeat + f];
}

void batch_quadratic_decisions(const double* xt, std::size_t nwin, std::size_t nfeat,
                               const double* svs, std::size_t nsv, const double* alpha_y,
                               double bias, double coef0, double* out) {
  double accs[kWindowBlock];
  double dots[kWindowBlock];
  for (std::size_t w0 = 0; w0 < nwin; w0 += kWindowBlock) {
    const std::size_t nb = std::min(kWindowBlock, nwin - w0);
    std::fill(accs, accs + nb, bias);
    const double* sv_row = svs;
    for (std::size_t i = 0; i < nsv; ++i, sv_row += nfeat) {
      std::fill(dots, dots + nb, 0.0);
      for (std::size_t f = 0; f < nfeat; ++f) {
        const double svv = sv_row[f];
        const double* xrow = xt + f * nwin + w0;
        for (std::size_t b = 0; b < nb; ++b) dots[b] += xrow[b] * svv;
      }
      const double a = alpha_y[i];
      for (std::size_t b = 0; b < nb; ++b) {
        const double s = dots[b] + coef0;
        accs[b] += a * (s * s);
      }
    }
    std::copy(accs, accs + nb, out + w0);
  }
}

void batch_quantized_accumulators(const PackedQuantKernel& kernel, const std::int64_t* qxt,
                                  std::size_t nwin, __int128* out) {
  SVT_ASSERT(kernel.nfeat > 0 && kernel.nsv > 0);
  const std::int64_t mac1_hi = fixed::max_signed_value(kernel.mac1_bits);
  const std::int64_t mac1_lo = fixed::min_signed_value(kernel.mac1_bits);
  const std::int64_t kin_hi = fixed::max_signed_value(kernel.kin_bits);
  const std::int64_t kin_lo = fixed::min_signed_value(kernel.kin_bits);
  const std::int64_t kout_hi = fixed::max_signed_value(kernel.kout_bits);
  const std::int64_t kout_lo = fixed::min_signed_value(kernel.kout_bits);
  std::int64_t acc1s[kWindowBlock];
  __int128 acc2s[kWindowBlock];
  for (std::size_t w0 = 0; w0 < nwin; w0 += kWindowBlock) {
    const std::size_t nb = std::min(kWindowBlock, nwin - w0);
    std::fill(acc2s, acc2s + nb, kernel.q_bias);
    const std::int64_t* sv_row = kernel.q_svs;
    for (std::size_t i = 0; i < kernel.nsv; ++i, sv_row += kernel.nfeat) {
      // MAC1: dot product with per-feature scale-back shifts, saturating.
      std::fill(acc1s, acc1s + nb, std::int64_t{0});
      for (std::size_t f = 0; f < kernel.nfeat; ++f) {
        const std::int64_t svv = sv_row[f];
        const int shift = kernel.product_shifts[f];
        const std::int64_t* qrow = qxt + f * nwin + w0;
        for (std::size_t b = 0; b < nb; ++b)
          acc1s[b] = saturate64(acc1s[b] + ((qrow[b] * svv) >> shift), mac1_hi, mac1_lo);
      }
      const std::int64_t alpha = kernel.q_alpha_y[i];
      for (std::size_t b = 0; b < nb; ++b) {
        // +1, truncate, square, truncate, MAC2 -- same chain as the
        // per-window engine, so results are bit-exact.
        const std::int64_t acc1 = saturate64(acc1s[b] + kernel.q_one, mac1_hi, mac1_lo);
        const std::int64_t kin =
            saturate64(acc1 >> kernel.dot_truncate_bits, kin_hi, kin_lo);
        const std::int64_t square = kin * kin;
        const std::int64_t kout =
            saturate64(square >> kernel.square_truncate_bits, kout_hi, kout_lo);
        acc2s[b] =
            fixed::saturate128(acc2s[b] + static_cast<__int128>(alpha) * kout, kernel.mac2_bits);
      }
    }
    std::copy(acc2s, acc2s + nb, out + w0);
  }
}

}  // namespace svt::rt
