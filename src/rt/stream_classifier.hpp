// Batched streaming inference runtime (single-threaded reference engine).
//
// A StreamClassifier owns the whole online path from raw single-lead ECG
// samples to seizure labels, for many concurrent patients:
//
//   push_samples(patient, chunk)          flush()
//   ┌──────────────────────────┐  raw   ┌────────────────┐  batch  ┌────────┐
//   │ WindowExtractor          │ window │ select + scale │  rows   │ packed │
//   │ (ring -> QRS -> RR/EDR   │ ─────> │ (detector's    │ ──────> │ kernel │
//   │  -> 53 features)         │        │  front half)   │         │ (f/fx) │
//   └──────────────────────────┘        └────────────────┘         └────────┘
//
// The extraction stage lives in rt::WindowExtractor (shared with the sharded
// engine); every time it emits a window, the detector's front half (feature
// selection + scaling) runs immediately and the row is queued. flush() then
// classifies every queued row in ONE call through the packed batch kernel --
// the float fast path (rt::PackedModel), or the bit-exact fixed-point
// pipeline (core::QuantizedModel::classify_batch) when the detector carries
// a quantised engine. Patient streams are fully isolated: results for a
// patient are identical whether its samples are pushed alone or interleaved
// with other patients'. This engine is the determinism oracle: the
// continuous sharded engine (rt::ShardedStreamClassifier) is tested
// bit-identical against it per patient, in both flush-drain and
// continuous-sink delivery modes, under any worker count.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/tailoring.hpp"
#include "rt/engine.hpp"
#include "rt/model_registry.hpp"
#include "rt/window_extractor.hpp"

namespace svt::rt {

class StreamClassifier final : public Engine {
 public:
  /// Serve a deployable model directly (the same unit the registry and the
  /// network gateway serve, so a gateway reference run needs no training).
  /// The model's SVM is packed once up front when it uses the quadratic
  /// kernel (other kernels fall back to the per-window float path). Throws
  /// std::invalid_argument on a non-positive sampling rate, window, or
  /// stride, stride_s > window_s, or a config registering more than one
  /// workload (this overload serves exactly one).
  explicit StreamClassifier(ServableModel model, StreamConfig config = {});

  /// Serve one model per registered workload (models[w] classifies workload
  /// w's windows). Throws std::invalid_argument when the count disagrees
  /// with the config's workload list.
  StreamClassifier(std::vector<ServableModel> models, StreamConfig config);

  /// Wrap a tailored detector: serves ServableModel::from_detector(detector),
  /// which copies the deployable parts bit-exactly.
  explicit StreamClassifier(const core::TailoredDetector& detector, StreamConfig config = {});

  /// Ingest a chunk of raw ECG samples (mV) for one patient. Chunks may be
  /// of any size; windows are emitted as soon as enough samples accumulate.
  /// A first push creates the patient's stream.
  void push_samples(int patient_id, std::span<const double> samples_mv) override;

  /// End a finite patient stream: flushes the detector tail and queues the
  /// trailing windows the live path holds back (see
  /// WindowExtractor::end_patient), then drops the patient's stream state.
  /// Returns whether the patient existed. Follow with flush() to classify.
  bool end_stream(int patient_id) override;

  /// Windows extracted and queued, awaiting the next flush().
  std::size_t pending_windows() const { return pending_meta_.size(); }

  /// Classify every queued window in one batched call and return the
  /// results (stream order per patient, push order across patients).
  std::vector<WindowResult> flush() override;

  /// Uniform counters (rt::Engine). The single-threaded engine never drops
  /// chunks and runs no scheduler, so those fields are always zero.
  EngineStats stats() const override {
    EngineStats s;
    s.delivered_windows = delivered_windows_;
    s.rejected_windows = rejected_windows();
    s.windows_annotated = extractor_.annotated_windows();
    s.windows_suppressed = extractor_.suppressed_windows();
    return s;
  }

  /// Windows rejected for having fewer than min_beats R peaks.
  std::size_t rejected_windows() const { return extractor_.rejected_windows(); }

  /// Segment-cache counters of the incremental feature pipeline (all zeros
  /// on non-stride-aligned configurations).
  features::SegmentCacheStats cache_stats() const { return extractor_.cache_stats(); }

  /// Quality-gate counters (all zeros when the gate is off).
  ecg::QualityStats quality_stats() const { return extractor_.quality_stats(); }

  /// The stream's resolved workload list (see StreamConfig::workloads).
  std::size_t num_workloads() const { return extractor_.num_workloads(); }

  /// Samples currently buffered for a patient (0 for unknown patients).
  std::size_t buffered_samples(int patient_id) const {
    return extractor_.buffered_samples(patient_id);
  }

  std::size_t num_patients() const { return extractor_.num_patients(); }
  std::size_t window_samples() const { return extractor_.window_samples(); }
  std::size_t stride_samples() const { return extractor_.stride_samples(); }
  /// Detection lookahead: a window classifies once this many samples past
  /// its end have been pushed (see WindowExtractor::emission_lag_samples).
  std::size_t emission_lag_samples() const { return extractor_.emission_lag_samples(); }
  const StreamConfig& config() const { return extractor_.config(); }
  /// Workload 0's model (the only one for single-workload streams).
  const ServableModel& model() const { return models_.front(); }
  const ServableModel& model(std::size_t workload) const { return models_.at(workload); }

 private:
  void queue_window(const ExtractedWindow& window);

  std::vector<ServableModel> models_;  ///< One per workload, same order.
  WindowExtractor extractor_;
  std::vector<std::vector<double>> pending_rows_;  ///< Scaled, selected features.
  std::vector<WindowResult> pending_meta_;
  std::size_t delivered_windows_ = 0;  ///< Classified across all flushes.
};

}  // namespace svt::rt
