// Batched streaming inference runtime.
//
// A StreamClassifier owns the whole online path from raw single-lead ECG
// samples to seizure labels, for many concurrent patients:
//
//   push_samples(patient, chunk)          flush()
//   ┌─────────────┐  full  ┌──────────────────────────┐  batch  ┌────────┐
//   │ per-patient │ window │ QRS detect -> RR + EDR   │  rows   │ packed │
//   │ sample ring │ ─────> │ -> 53 features -> select │ ──────> │ kernel │
//   │  (overlap)  │        │ -> scale                 │         │ (f/fx) │
//   └─────────────┘        └──────────────────────────┘         └────────┘
//
// Samples accumulate per patient in a ring buffer; every time a full window
// of window_s seconds is available a feature row is extracted immediately
// (feature extraction is per-window work) and queued. flush() then
// classifies every queued row in ONE call through the packed batch kernel --
// the float fast path (rt::PackedModel), or the bit-exact fixed-point
// pipeline (core::QuantizedModel::classify_batch) when the detector carries
// a quantised engine. Patient streams are fully isolated: results for a
// patient are identical whether its samples are pushed alone or interleaved
// with other patients'.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "core/tailoring.hpp"
#include "rt/packed_model.hpp"
#include "rt/ring_buffer.hpp"

namespace svt::rt {

struct StreamConfig {
  double fs_hz = 250.0;     ///< Raw ECG sampling rate.
  double window_s = 180.0;  ///< Analysis window length (paper: 3 minutes).
  double stride_s = 180.0;  ///< Hop between windows; < window_s overlaps.
  double edr_fs_hz = 4.0;   ///< Uniform EDR resampling rate.
  /// Windows whose QRS detection finds fewer R peaks than this are rejected
  /// (counted, not classified): too few beats to rebuild the RR/EDR series.
  std::size_t min_beats = 4;
};

/// One classified window.
struct WindowResult {
  int patient_id = 0;
  double start_s = 0.0;         ///< Window start within the patient's stream.
  double decision_value = 0.0;  ///< Float (or dequantised fixed-point) f(x).
  int label = 0;                ///< +1 = ictal, -1 = interictal.
  std::size_t num_beats = 0;    ///< R peaks detected in the window.
};

class StreamClassifier {
 public:
  /// Wrap a tailored detector. The detector's SVM is packed once up front
  /// when it uses the quadratic kernel (other kernels fall back to the
  /// per-window float path). Throws std::invalid_argument on a non-positive
  /// sampling rate, window, or stride, or stride_s > window_s.
  explicit StreamClassifier(core::TailoredDetector detector, StreamConfig config = {});

  /// Ingest a chunk of raw ECG samples (mV) for one patient. Chunks may be
  /// of any size; windows are emitted as soon as enough samples accumulate.
  /// A first push creates the patient's stream.
  void push_samples(int patient_id, std::span<const double> samples_mv);

  /// Windows extracted and queued, awaiting the next flush().
  std::size_t pending_windows() const { return pending_meta_.size(); }

  /// Classify every queued window in one batched call and return the
  /// results (stream order per patient, push order across patients).
  std::vector<WindowResult> flush();

  /// Windows rejected for having fewer than min_beats R peaks.
  std::size_t rejected_windows() const { return rejected_; }

  /// Samples currently buffered for a patient (0 for unknown patients).
  std::size_t buffered_samples(int patient_id) const;

  std::size_t num_patients() const { return patients_.size(); }
  std::size_t window_samples() const { return window_samples_; }
  std::size_t stride_samples() const { return stride_samples_; }
  const StreamConfig& config() const { return config_; }
  const core::TailoredDetector& detector() const { return detector_; }

 private:
  struct PatientState {
    SampleRing ring;
    std::size_t consumed = 0;  ///< Samples dropped so far = next window start.
    explicit PatientState(std::size_t capacity) : ring(capacity) {}
  };

  void emit_window(int patient_id, PatientState& state);

  core::TailoredDetector detector_;
  std::optional<PackedModel> packed_;
  StreamConfig config_;
  std::size_t window_samples_ = 0;
  std::size_t stride_samples_ = 0;
  std::map<int, PatientState> patients_;
  std::vector<std::vector<double>> pending_rows_;  ///< Scaled, selected features.
  std::vector<WindowResult> pending_meta_;
  std::size_t rejected_ = 0;
};

}  // namespace svt::rt
