#include "rt/sharded_classifier.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

namespace svt::rt {

ShardedStreamClassifier::ShardedStreamClassifier(std::shared_ptr<ModelRegistry> registry,
                                                 StreamConfig config, std::size_t num_workers)
    : registry_(std::move(registry)), config_(config) {
  if (!registry_)
    throw std::invalid_argument("ShardedStreamClassifier: null model registry");
  const std::size_t n = std::max<std::size_t>(num_workers, 1);
  shards_.reserve(n);
  for (std::size_t s = 0; s < n; ++s)
    shards_.push_back(std::make_unique<Shard>(config));  // Validates config once per shard.
  for (auto& shard : shards_)
    shard->worker = std::thread([this, &shard = *shard] { worker_loop(shard); });
}

ShardedStreamClassifier::ShardedStreamClassifier(const core::TailoredDetector& detector,
                                                 StreamConfig config, std::size_t num_workers)
    : ShardedStreamClassifier(
          std::make_shared<ModelRegistry>(ServableModel::from_detector(detector)), config,
          num_workers) {}

ShardedStreamClassifier::~ShardedStreamClassifier() {
  for (auto& shard : shards_) shard->tasks.close();
  for (auto& shard : shards_)
    if (shard->worker.joinable()) shard->worker.join();
}

std::size_t ShardedStreamClassifier::shard_of(int patient_id) const {
  // Fibonacci hash of the id: consecutive patient ids spread evenly across
  // shards, and the assignment depends only on (id, num_workers).
  const auto h = static_cast<std::uint64_t>(static_cast<std::uint32_t>(patient_id)) *
                 UINT64_C(0x9E3779B97F4A7C15);
  return static_cast<std::size_t>(h >> 32) % shards_.size();
}

void ShardedStreamClassifier::push_samples(int patient_id,
                                           std::span<const double> samples_mv) {
  Task task;
  task.patient_id = patient_id;
  task.samples.assign(samples_mv.begin(), samples_mv.end());
  shards_[shard_of(patient_id)]->tasks.push(std::move(task));
}

void ShardedStreamClassifier::worker_loop(Shard& shard) {
  std::vector<ExtractedWindow> local;
  while (auto task = shard.tasks.wait_pop()) {
    if (task->barrier) {
      {
        const std::lock_guard<std::mutex> lock(done_mutex_);
        ++barriers_reached_;
      }
      done_cv_.notify_all();
      continue;
    }
    local.clear();
    shard.extractor.push_samples(task->patient_id, task->samples,
                                 [&local](ExtractedWindow&& window) {
                                   local.push_back(std::move(window));
                                 });
    const std::size_t rejected_now = shard.extractor.rejected_windows();
    if (rejected_now != shard.rejected_reported) {
      rejected_ += rejected_now - shard.rejected_reported;
      shard.rejected_reported = rejected_now;
    }
    if (!local.empty()) {
      {
        const std::lock_guard<std::mutex> lock(done_mutex_);
        for (auto& window : local) shard.rows.push_back(std::move(window));
        pending_rows_ += local.size();
      }
      done_cv_.notify_all();
    }
  }
}

std::vector<WindowResult> ShardedStreamClassifier::flush() {
  {
    const std::lock_guard<std::mutex> lock(done_mutex_);
    barriers_reached_ = 0;
  }
  Task barrier;
  barrier.barrier = true;
  for (auto& shard : shards_) shard->tasks.push(barrier);

  std::vector<WindowResult> results;
  std::map<int, std::shared_ptr<const ServableModel>> snapshot;
  std::vector<ExtractedWindow> grabbed;
  for (;;) {
    grabbed.clear();
    bool all_extracted = false;
    {
      std::unique_lock<std::mutex> lock(done_mutex_);
      done_cv_.wait(lock, [this] {
        return pending_rows_ > 0 || barriers_reached_ == shards_.size();
      });
      for (auto& shard : shards_) {
        for (auto& window : shard->rows) grabbed.push_back(std::move(window));
        shard->rows.clear();
      }
      pending_rows_ = 0;
      // A worker appends its rows before posting its barrier (both under
      // done_mutex_), so once every barrier is visible here the grab above
      // already holds everything extracted for this flush.
      all_extracted = barriers_reached_ == shards_.size();
    }
    // Classify outside the lock: this is what overlaps the packed batch
    // kernels with the extraction still running on the worker threads.
    if (!grabbed.empty()) classify_into(grabbed, results, snapshot);
    // Cut the drain at the barrier: rows extracted from samples pushed
    // after it belong to the next flush, and draining them here would let a
    // sustained concurrent producer keep this flush alive forever.
    if (all_extracted) break;
  }

  std::sort(results.begin(), results.end(), [](const WindowResult& a, const WindowResult& b) {
    return a.patient_id != b.patient_id ? a.patient_id < b.patient_id : a.start_s < b.start_s;
  });
  return results;
}

void ShardedStreamClassifier::classify_into(
    std::vector<ExtractedWindow>& windows, std::vector<WindowResult>& out,
    std::map<int, std::shared_ptr<const ServableModel>>& snapshot) const {
  // Group by patient, preserving per-patient arrival (= stream) order; each
  // patient may be served by a different model.
  std::map<int, std::vector<std::size_t>> by_patient;
  for (std::size_t i = 0; i < windows.size(); ++i)
    by_patient[windows[i].patient_id].push_back(i);

  for (auto& [patient_id, indices] : by_patient) {
    auto it = snapshot.find(patient_id);
    if (it == snapshot.end()) it = snapshot.emplace(patient_id, registry_->resolve(patient_id)).first;
    const auto& model = it->second;
    if (!model)
      throw std::runtime_error("ShardedStreamClassifier: no model for patient " +
                               std::to_string(patient_id));

    std::vector<std::vector<double>> rows;
    rows.reserve(indices.size());
    for (std::size_t i : indices) rows.push_back(model->prepare_row(windows[i].raw_features));

    std::vector<double> values(rows.size());
    if (model->quantized()) {
      values = model->quantized()->dequantized_decisions(rows);
    } else if (model->packed()) {
      model->packed()->decision_values(rows, values);
    } else {
      model->model().decision_values(rows, values);
    }

    for (std::size_t k = 0; k < indices.size(); ++k) {
      const ExtractedWindow& window = windows[indices[k]];
      WindowResult result;
      result.patient_id = patient_id;
      result.start_s = window.start_s;
      result.num_beats = window.num_beats;
      result.decision_value = values[k];
      result.label = values[k] >= 0.0 ? +1 : -1;
      out.push_back(result);
    }
  }
}

}  // namespace svt::rt
