#include "rt/sharded_classifier.hpp"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace svt::rt {

ShardedStreamClassifier::ShardedStreamClassifier(std::shared_ptr<ModelRegistry> registry,
                                                 StreamConfig config, std::size_t num_workers,
                                                 EngineOptions options, ResultSink sink)
    : registry_(std::move(registry)), config_(config), options_(options) {
  if (!registry_)
    throw std::invalid_argument("ShardedStreamClassifier: null model registry");
  if (sink) sink_ = std::make_shared<const ResultSink>(std::move(sink));
  const std::size_t n = std::max<std::size_t>(num_workers, 1);
  shards_.reserve(n);
  for (std::size_t s = 0; s < n; ++s)
    shards_.push_back(std::make_unique<Shard>(config, options_));  // Validates config per shard.
  for (auto& shard : shards_)
    shard->worker = std::thread([this, &shard = *shard] { worker_loop(shard); });
}

ShardedStreamClassifier::ShardedStreamClassifier(const core::TailoredDetector& detector,
                                                 StreamConfig config, std::size_t num_workers,
                                                 EngineOptions options, ResultSink sink)
    : ShardedStreamClassifier(
          std::make_shared<ModelRegistry>(ServableModel::from_detector(detector)), config,
          num_workers, options, std::move(sink)) {}

ShardedStreamClassifier::~ShardedStreamClassifier() {
  for (auto& shard : shards_) shard->tasks.close();
  for (auto& shard : shards_)
    if (shard->worker.joinable()) shard->worker.join();
}

void ShardedStreamClassifier::set_result_sink(ResultSink sink) {
  const std::lock_guard<std::mutex> lock(sink_mutex_);
  sink_ = sink ? std::make_shared<const ResultSink>(std::move(sink)) : nullptr;
}

std::size_t ShardedStreamClassifier::shard_of(int patient_id) const {
  // Fibonacci hash of the id: consecutive patient ids spread evenly across
  // shards, and the assignment depends only on (id, num_workers).
  const auto h = static_cast<std::uint64_t>(static_cast<std::uint32_t>(patient_id)) *
                 UINT64_C(0x9E3779B97F4A7C15);
  return static_cast<std::size_t>(h >> 32) % shards_.size();
}

void ShardedStreamClassifier::push_samples(int patient_id,
                                           std::span<const double> samples_mv) {
  Task task;
  task.patient_id = patient_id;
  task.samples.assign(samples_mv.begin(), samples_mv.end());
  task.enqueued = std::chrono::steady_clock::now();
  shards_[shard_of(patient_id)]->tasks.push(std::move(task));
}

void ShardedStreamClassifier::evict_patient(int patient_id) {
  Task task;
  task.patient_id = patient_id;
  task.evict = true;
  // Control push: an eviction must reach the worker even when producers have
  // the queue saturated, and must never be displaced by drop-oldest.
  shards_[shard_of(patient_id)]->tasks.push_control(std::move(task));
}

void ShardedStreamClassifier::end_stream(int patient_id) {
  Task task;
  task.patient_id = patient_id;
  task.end_stream = true;
  task.enqueued = std::chrono::steady_clock::now();
  // Control push, like evictions: the end of a stream must not be dropped.
  shards_[shard_of(patient_id)]->tasks.push_control(std::move(task));
}

std::size_t ShardedStreamClassifier::dropped_chunks() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->tasks.dropped();
  return total;
}

void ShardedStreamClassifier::record_latency(Shard& shard,
                                             std::chrono::steady_clock::time_point enqueued) {
  const double latency =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - enqueued).count();
  const std::lock_guard<std::mutex> lock(shard.latency_mutex);
  if (shard.latencies_s.size() < kLatencyReservoir) {
    shard.latencies_s.push_back(latency);
  } else {
    // Reservoir full: overwrite the oldest entry (recent-window view).
    shard.latencies_s[shard.latency_next] = latency;
    shard.latency_next = (shard.latency_next + 1) % kLatencyReservoir;
  }
}

void ShardedStreamClassifier::worker_loop(Shard& shard) {
  std::vector<ExtractedWindow> windows;
  std::vector<Task> round;
  std::vector<WindowExtractor::PatientChunk> chunks;
  std::optional<Task> pending;  ///< Popped while coalescing, deferred.
  const auto collect = [&windows](ExtractedWindow&& window) {
    windows.push_back(std::move(window));
  };
  const auto note_rejected = [&] {
    const std::size_t rejected_now = shard.extractor.rejected_windows();
    if (rejected_now != shard.rejected_reported) {
      rejected_ += rejected_now - shard.rejected_reported;
      shard.rejected_reported = rejected_now;
    }
  };
  const auto note_error = [&] {
    // Record the first error for the next flush() and keep serving: one
    // patient without a model must not take down the whole shard.
    const std::lock_guard<std::mutex> lock(error_mutex_);
    if (!error_) error_ = std::current_exception();
  };
  for (;;) {
    std::optional<Task> task =
        pending ? std::exchange(pending, std::nullopt) : shard.tasks.wait_pop();
    if (!task) break;
    if (task->fence) {
      {
        const std::lock_guard<std::mutex> lock(fence_mutex_);
        ++fences_reached_;
      }
      fence_cv_.notify_all();
      continue;
    }
    if (task->evict) {
      shard.extractor.erase_patient(task->patient_id);
      continue;
    }
    if (task->end_stream) {
      windows.clear();
      shard.extractor.end_patient(task->patient_id, collect);
      note_rejected();
      if (windows.empty()) continue;
      try {
        classify_batch(task->patient_id, windows, shard);
        record_latency(shard, task->enqueued);
      } catch (...) {
        note_error();
      }
      continue;
    }

    // Sample chunk: coalesce whatever other patients' chunks are already
    // queued (up to the lane-pack width) so the extractor steps the round in
    // SIMD lockstep. A control task — or a second chunk for a patient
    // already in the round — ends the round and carries into the next
    // iteration, preserving per-patient stream order and fence ordering.
    round.clear();
    round.push_back(std::move(*task));
    while (round.size() < ecg::LaneQrsDetector::kMaxLanes) {
      auto next = shard.tasks.try_pop();
      if (!next) break;
      const bool control = next->fence || next->evict || next->end_stream;
      const bool duplicate =
          std::any_of(round.begin(), round.end(),
                      [&](const Task& t) { return t.patient_id == next->patient_id; });
      if (control || duplicate) {
        pending = std::move(next);
        break;
      }
      round.push_back(std::move(*next));
    }

    windows.clear();
    chunks.clear();
    for (const Task& t : round) chunks.push_back({t.patient_id, t.samples});
    shard.extractor.push_batch(chunks, collect);
    note_rejected();

    // Windows land contiguously per patient in round order; each patient's
    // segment is classified and delivered on its own, with the latency clock
    // of that patient's chunk.
    std::size_t begin = 0;
    for (const Task& t : round) {
      std::size_t end = begin;
      while (end < windows.size() && windows[end].patient_id == t.patient_id) ++end;
      if (end > begin) {
        try {
          classify_batch(t.patient_id,
                         std::span<const ExtractedWindow>(windows.data() + begin, end - begin),
                         shard);
          record_latency(shard, t.enqueued);
        } catch (...) {
          note_error();
        }
      }
      begin = end;
    }
  }
}

void ShardedStreamClassifier::classify_batch(int patient_id,
                                             std::span<const ExtractedWindow> windows,
                                             Shard& shard) {
  // Snapshot the patient's model once per batch: this is the hot-swap fence.
  // The batch runs to completion on the snapshot even if install() replaces
  // the registry entry mid-batch; the next batch sees the new model.
  const auto model = registry_->resolve(patient_id);
  if (!model)
    throw std::runtime_error("ShardedStreamClassifier: no model for patient " +
                             std::to_string(patient_id));

  // All staging lives in the shard's scratch: rows, values and the kernel's
  // transpose/quantise buffers keep their capacity between batches, so the
  // steady-state serve loop performs no heap allocation.
  const std::size_t n = windows.size();
  ClassifyScratch& scratch = shard.scratch;
  if (scratch.rows.size() < n) scratch.rows.resize(n);
  for (std::size_t k = 0; k < n; ++k)
    model->prepare_row(windows[k].raw_features, scratch.rows[k]);
  const std::span<const std::vector<double>> rows(scratch.rows.data(), n);

  auto& values = scratch.values;
  if (model->quantized()) {
    model->quantized()->dequantized_decisions(rows, scratch.kernel, values);
  } else if (model->packed()) {
    values.resize(n);
    model->packed()->decision_values(rows, values, scratch.kernel);
  } else {
    values.resize(n);
    model->model().decision_values(rows, values);
  }

  auto& batch = scratch.batch;
  batch.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    batch[k].patient_id = patient_id;
    batch[k].start_s = windows[k].start_s;
    batch[k].num_beats = windows[k].num_beats;
    batch[k].decision_value = values[k];
    batch[k].label = values[k] >= 0.0 ? +1 : -1;
  }
  deliver(batch);
}

std::vector<double> ShardedStreamClassifier::delivery_latencies_s() const {
  std::vector<double> all;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->latency_mutex);
    all.insert(all.end(), shard->latencies_s.begin(), shard->latencies_s.end());
  }
  return all;
}

void ShardedStreamClassifier::deliver(std::span<const WindowResult> batch) {
  std::shared_ptr<const ResultSink> sink;
  {
    const std::lock_guard<std::mutex> lock(sink_mutex_);
    sink = sink_;
  }
  if (sink) {
    (*sink)(batch);
  } else {
    const std::lock_guard<std::mutex> lock(collected_mutex_);
    collected_.insert(collected_.end(), batch.begin(), batch.end());
  }
  delivered_ += batch.size();
}

std::vector<WindowResult> ShardedStreamClassifier::flush() {
  {
    const std::lock_guard<std::mutex> lock(fence_mutex_);
    fences_reached_ = 0;
  }
  Task fence;
  fence.fence = true;
  // Control push: fences bypass queue capacity, so a flush cannot deadlock
  // against a saturated shard queue, and drop-oldest can never evict one.
  for (auto& shard : shards_) shard->tasks.push_control(fence);
  {
    std::unique_lock<std::mutex> lock(fence_mutex_);
    fence_cv_.wait(lock, [this] { return fences_reached_ == shards_.size(); });
  }

  // A worker delivers a chunk's results before popping the next task, so
  // once every fence is visible everything pushed before this flush has been
  // delivered (to the sink, or collected below).
  {
    const std::lock_guard<std::mutex> lock(error_mutex_);
    if (error_) {
      auto error = std::exchange(error_, nullptr);  // The engine stays usable.
      std::rethrow_exception(error);
    }
  }

  std::vector<WindowResult> results;
  {
    const std::lock_guard<std::mutex> lock(collected_mutex_);
    results.swap(collected_);
  }
  std::sort(results.begin(), results.end(), [](const WindowResult& a, const WindowResult& b) {
    return a.patient_id != b.patient_id ? a.patient_id < b.patient_id : a.start_s < b.start_s;
  });
  return results;
}

}  // namespace svt::rt
