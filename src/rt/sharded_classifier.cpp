#include "rt/sharded_classifier.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace svt::rt {

ShardedStreamClassifier::ShardedStreamClassifier(std::shared_ptr<ModelRegistry> registry,
                                                 StreamConfig config, EngineOptions options)
    : registry_(std::move(registry)), config_(config), options_(std::move(options)) {
  if (!registry_)
    throw std::invalid_argument("ShardedStreamClassifier: null model registry");
  if (options_.deadline.target_p99_s > 0.0 && options_.queue_capacity == 0)
    throw std::invalid_argument(
        "ShardedStreamClassifier: deadline mode requires a bounded queue — "
        "level-3 forced shedding evicts against queue_capacity, so capacity 0 "
        "(unbounded) would make it a silent no-op");
  if (options_.sink) sink_ = std::make_shared<const ResultSink>(std::move(options_.sink));
  placement_ =
      options_.placement ? options_.placement : std::make_shared<FibonacciPlacement>();
  const std::size_t n = std::max<std::size_t>(options_.num_workers, 1);
  shard_patients_.assign(n, 0);
  shards_.reserve(n);
  for (std::size_t s = 0; s < n; ++s)
    shards_.push_back(std::make_unique<Shard>(config, options_));  // Validates config per shard.
  for (std::size_t s = 0; s < n; ++s) {
    Shard& shard = *shards_[s];
    shard.worker = std::thread([this, s, &shard] { worker_loop(s, shard); });
  }
  if (options_.deadline.target_p99_s > 0.0)
    deadline_thread_ = std::thread([this] { deadline_loop(); });
}

ShardedStreamClassifier::ShardedStreamClassifier(const core::TailoredDetector& detector,
                                                 StreamConfig config, EngineOptions options)
    : ShardedStreamClassifier(
          std::make_shared<ModelRegistry>(ServableModel::from_detector(detector)), config,
          std::move(options)) {}

ShardedStreamClassifier::~ShardedStreamClassifier() {
  if (deadline_thread_.joinable()) {
    {
      const std::lock_guard<std::mutex> lock(deadline_mutex_);
      deadline_stop_ = true;
    }
    deadline_cv_.notify_all();
    deadline_thread_.join();
  }
  for (auto& shard : shards_) shard->tasks.close();
  for (auto& shard : shards_)
    if (shard->worker.joinable()) shard->worker.join();
}

void ShardedStreamClassifier::set_result_sink(ResultSink sink) {
  {
    const std::lock_guard<std::mutex> lock(route_mutex_);
    for (const auto& [pid, route] : routes_)
      if (route.issued != route.settled)
        throw std::logic_error(
            "ShardedStreamClassifier::set_result_sink: work in flight for patient " +
            std::to_string(pid) + " — fence with flush() first");
  }
  const std::lock_guard<std::mutex> lock(sink_mutex_);
  sink_ = sink ? std::make_shared<const ResultSink>(std::move(sink)) : nullptr;
}

std::size_t ShardedStreamClassifier::shard_of(int patient_id) const {
  const std::lock_guard<std::mutex> lock(route_mutex_);
  const auto it = routes_.find(patient_id);
  if (it != routes_.end()) return it->second.shard;
  // Unseen patient: ask the policy prospectively without creating a route
  // (exact for stateless policies; a load-dependent guess otherwise).
  std::vector<ShardLoad> loads(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s)
    loads[s] = ShardLoad{shards_[s]->tasks.size(), shard_patients_[s]};
  return placement_->place(patient_id, loads) % shards_.size();
}

std::size_t ShardedStreamClassifier::route_for_push(int patient_id) {
  const std::lock_guard<std::mutex> lock(route_mutex_);
  auto [it, inserted] = routes_.try_emplace(patient_id);
  if (inserted) {
    std::vector<ShardLoad> loads(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s)
      loads[s] = ShardLoad{shards_[s]->tasks.size(), shard_patients_[s]};
    it->second.shard = placement_->place(patient_id, loads) % shards_.size();
    ++shard_patients_[it->second.shard];
  }
  ++it->second.issued;
  return it->second.shard;
}

void ShardedStreamClassifier::push_samples(int patient_id,
                                           std::span<const double> samples_mv) {
  const std::size_t shard = route_for_push(patient_id);
  Task task;
  task.patient_id = patient_id;
  {
    // Reuse a drained chunk's buffer (worker returns them after each round):
    // the steady-state ingest path re-copies into the same cache-warm pages
    // instead of allocating fresh cold ones.
    Shard& home = *shards_[shard];
    const std::lock_guard<std::mutex> lock(home.pool_mutex);
    if (!home.sample_pool.empty()) {
      task.samples = std::move(home.sample_pool.back());
      home.sample_pool.pop_back();
    }
  }
  task.samples.assign(samples_mv.begin(), samples_mv.end());
  task.enqueued = std::chrono::steady_clock::now();
  shards_[shard]->tasks.push(std::move(task));
}

void ShardedStreamClassifier::evict_patient(int patient_id) {
  Task task;
  task.patient_id = patient_id;
  task.evict = true;
  // Control push: an eviction must reach the worker even when producers have
  // the queue saturated, and must never be displaced by drop-oldest.
  const std::size_t shard = route_for_push(patient_id);
  shards_[shard]->tasks.push_control(std::move(task));
}

bool ShardedStreamClassifier::end_stream(int patient_id) {
  Task task;
  task.patient_id = patient_id;
  task.end_stream = true;
  task.enqueued = std::chrono::steady_clock::now();
  // Control push, like evictions: the end of a stream must not be dropped.
  const std::size_t shard = route_for_push(patient_id);
  shards_[shard]->tasks.push_control(std::move(task));
  return true;
}

void ShardedStreamClassifier::rebalance_patient(int patient_id, std::size_t dest) {
  if (dest >= shards_.size())
    throw std::invalid_argument("ShardedStreamClassifier::rebalance_patient: shard " +
                                std::to_string(dest) + " out of range");
  std::size_t victim = 0;
  {
    const std::lock_guard<std::mutex> lock(route_mutex_);
    auto [it, inserted] = routes_.try_emplace(patient_id);
    if (inserted) {
      // Unseen patient: just pre-route it, nothing to migrate.
      it->second.shard = dest;
      ++shard_patients_[dest];
      return;
    }
    RouteEntry& route = it->second;
    if (route.shard == dest || route.migrating) return;
    route.migrating = true;
    victim = route.shard;
  }
  Task token;
  token.patient_id = patient_id;
  token.migrate = true;
  token.dest = dest;
  // Front insertion: the hand-off should happen now, not after the victim
  // has drained its whole backlog (the extraction protocol accounts for the
  // patient's queued chunks wherever they sit).
  if (!shards_[victim]->tasks.push_control_front(std::move(token))) {
    const std::lock_guard<std::mutex> lock(route_mutex_);
    const auto it = routes_.find(patient_id);
    if (it != routes_.end()) it->second.migrating = false;
  }
}

std::size_t ShardedStreamClassifier::dropped_chunks() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->tasks.dropped();
  return total;
}

SchedulerStats ShardedStreamClassifier::scheduler_stats() const {
  SchedulerStats s;
  s.steals = steals_.load();
  s.migrations = migrations_.load();
  s.migrated_chunks = migrated_chunks_.load();
  s.stride_widenings = stride_widenings_.load();
  s.shed_activations = shed_activations_.load();
  for (const auto& shard : shards_) s.shed_chunks += shard->tasks.forced_dropped();
  s.deadline_level = static_cast<std::size_t>(deadline_level_.load());
  return s;
}

features::SegmentCacheStats ShardedStreamClassifier::cache_stats() const {
  features::SegmentCacheStats total;
  for (const auto& shard : shards_) total += shard->extractor.cache_stats();
  // A patient whose stream goes quiet right after a migration stays parked
  // on its route until the next push lazily attaches it — its travelling
  // cache lives in no extractor, so fold parked state in here.
  const std::lock_guard<std::mutex> lock(route_mutex_);
  for (const auto& [pid, route] : routes_)
    if (route.parked && route.parked->cache) total += route.parked->cache->stats();
  return total;
}

ecg::QualityStats ShardedStreamClassifier::quality_stats() const {
  // Gate stats travel with a migrating patient, so summing the shard
  // extractors is exact when the engine is quiescent (after flush()) —
  // provided parked patients (detached by the victim, not yet attached by
  // the new owner; permanent if the stream never pushes again) are counted
  // too. A mid-migration read can still transiently miss in-flight state.
  ecg::QualityStats total;
  for (const auto& shard : shards_) total += shard->extractor.quality_stats();
  const std::lock_guard<std::mutex> lock(route_mutex_);
  for (const auto& [pid, route] : routes_)
    if (route.parked && route.parked->gate) total += route.parked->gate->stats();
  return total;
}

EngineStats ShardedStreamClassifier::stats() const {
  EngineStats s;
  s.delivered_windows = delivered_.load();
  s.rejected_windows = rejected_.load();
  s.dropped_chunks = dropped_chunks();
  s.windows_annotated = annotated_.load();
  s.windows_suppressed = suppressed_.load();
  s.scheduler = scheduler_stats();
  return s;
}

void ShardedStreamClassifier::record_latency(Shard& shard,
                                             std::chrono::steady_clock::time_point enqueued) {
  const double latency =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - enqueued).count();
  const std::lock_guard<std::mutex> lock(shard.latency_mutex);
  if (shard.latencies_s.size() < kLatencyReservoir) {
    shard.latencies_s.push_back(latency);
  } else {
    // Reservoir full: overwrite the oldest entry (recent-window view).
    shard.latencies_s[shard.latency_next] = latency;
    shard.latency_next = (shard.latency_next + 1) % kLatencyReservoir;
  }
}

void ShardedStreamClassifier::settle_patient_locked(int patient_id) {
  const auto it = routes_.find(patient_id);
  if (it != routes_.end()) ++it->second.settled;
}

void ShardedStreamClassifier::settle_evicted_locked(Shard& shard) {
  for (const Task& task : shard.tasks.take_evicted()) settle_patient_locked(task.patient_id);
}

void ShardedStreamClassifier::settle_evicted(Shard& shard) {
  auto evicted = shard.tasks.take_evicted();
  if (evicted.empty()) return;
  const std::lock_guard<std::mutex> lock(route_mutex_);
  for (const Task& task : evicted) settle_patient_locked(task.patient_id);
}

void ShardedStreamClassifier::ensure_attached(std::size_t self, Shard& shard, int patient_id) {
  if (shard.extractor.has_patient(patient_id)) return;
  std::unique_ptr<WindowExtractor::DetachedPatient> parked;
  {
    const std::lock_guard<std::mutex> lock(route_mutex_);
    const auto it = routes_.find(patient_id);
    if (it == routes_.end() || it->second.shard != self || !it->second.parked) return;
    parked = std::move(it->second.parked);
  }
  // Attaching is worker-local extractor surgery; the state was moved out
  // under the routing lock, so no other thread can observe or race it.
  shard.extractor.attach_patient(patient_id, std::move(*parked));
}

bool ShardedStreamClassifier::maybe_steal(std::size_t self) {
  const std::lock_guard<std::mutex> lock(route_mutex_);
  if (fence_pending_) return false;  // Never start a hand-off across a fence.
  int best_patient = 0;
  std::size_t best_backlog = 0;
  for (const auto& [pid, route] : routes_) {
    if (route.shard == self || route.migrating) continue;
    const std::size_t backlog = route.issued - route.settled;
    if (backlog >= options_.stealing.min_backlog && backlog > best_backlog) {
      best_backlog = backlog;
      best_patient = pid;
    }
  }
  if (best_backlog == 0) return false;
  RouteEntry& route = routes_.at(best_patient);
  route.migrating = true;
  ++steals_;
  Task token;
  token.patient_id = best_patient;
  token.migrate = true;
  token.dest = self;
  // Front insertion: stealing only relieves the victim if the hand-off jumps
  // its backlog — the stolen patient's queued chunks move to this (idle)
  // worker immediately instead of after the victim drains everything.
  if (!shards_[route.shard]->tasks.push_control_front(std::move(token))) {
    route.migrating = false;
    return false;
  }
  return true;
}

void ShardedStreamClassifier::handle_migration(std::size_t self, Shard& shard,
                                               const Task& token) {
  std::vector<WorkQueue<Task>::Extracted> moved;
  bool retry = false;
  bool retry_behind_data = false;
  {
    const std::lock_guard<std::mutex> lock(route_mutex_);
    const auto it = routes_.find(token.patient_id);
    if (it == routes_.end()) return;
    RouteEntry& route = it->second;
    if (!route.migrating) return;  // Cancelled (e.g. failed re-queue).
    if (route.shard != self || token.dest >= shards_.size() || token.dest == self) {
      route.migrating = false;
      return;
    }
    if (fence_pending_) {
      // A flush is fencing: moving queued chunks to a destination whose
      // fence may already have passed would deliver them after the flush
      // returns. Park the token behind our own fence and retry.
      retry = true;
    } else {
      // The cutoff check needs exact settled counts: fold in any
      // backpressure evictions that raced this far.
      settle_evicted_locked(shard);
      const int pid = token.patient_id;
      const std::size_t k = shard.tasks.extract_matching(
          [pid](const Task& t) { return !t.fence && !t.migrate && t.patient_id == pid; },
          moved);
      if (route.settled + k != route.issued) {
        // A producer has incremented issued under the routing lock but its
        // push has not landed in our queue yet. Put the backlog back (front
        // insertion preserves per-patient order) and retry the token —
        // behind one data item, never at the very head: the in-flight push
        // may be blocked on a full kBlock queue, and only draining a data
        // slot lets it land (a head-parked token would spin forever).
        shard.tasks.reinsert_front(std::move(moved));
        moved.clear();
        retry = true;
        retry_behind_data = true;
      } else {
        // Exact cutoff: every issued task is either settled or in `moved`.
        // Detach the extraction state (if the patient ever reached our
        // extractor — it may still be parked from a previous hop, or have
        // ended), park it on the route, and re-home the patient. Producers
        // serialised behind route_mutex_ see the new shard before they can
        // push again, so nothing for this patient lands on us afterwards.
        if (auto detached = shard.extractor.detach_patient(pid))
          route.parked =
              std::make_unique<WindowExtractor::DetachedPatient>(std::move(*detached));
        --shard_patients_[self];
        ++shard_patients_[token.dest];
        route.shard = token.dest;
        route.migrating = false;
        // Forward the backlog while still holding the routing lock: the
        // thief cannot attach (lazy attach takes route_mutex_) until we
        // release, so it can never process these chunks stateless. Control
        // pushes keep queue-position semantics (end_stream/evict entries
        // stay control; data entries bypassing capacity here is deliberate —
        // a migration must not deadlock on a full destination).
        auto& dest_queue = shards_[token.dest]->tasks;
        for (auto& entry : moved) dest_queue.push_control(std::move(entry.item));
        ++migrations_;
        migrated_chunks_ += moved.size();
      }
    }
  }
  if (retry) {
    // An in-flight push resolves in a moment: keep the token near the head
    // (behind the first data item) so the hand-off completes promptly while
    // the queue still drains. A pending fence is different — requeue at the
    // back, behind our own fence, so the retry runs after the flush.
    Task again = token;
    const bool requeued = retry_behind_data
                              ? shard.tasks.push_control_behind_data(std::move(again))
                              : shard.tasks.push_control(std::move(again));
    if (!requeued) {
      const std::lock_guard<std::mutex> lock(route_mutex_);
      const auto it = routes_.find(token.patient_id);
      if (it != routes_.end()) it->second.migrating = false;
    }
    // The blocker (an in-flight push, or a flush draining other shards) is
    // external; don't spin the queue hot while it clears.
    std::this_thread::yield();
  }
}

void ShardedStreamClassifier::worker_loop(std::size_t self, Shard& shard) {
  std::vector<ExtractedWindow> windows;
  std::vector<Task> round;
  std::vector<WindowExtractor::PatientChunk> chunks;
  std::optional<Task> pending;  ///< Popped while coalescing, deferred.
  const bool stealing = options_.stealing.enable;
  std::size_t steal_backoff = 1;  ///< Idle polls between steal scans.
  std::size_t idle_polls = 0;     ///< Empty polls since the last scan.
  const auto collect = [&windows](ExtractedWindow&& window) {
    windows.push_back(std::move(window));
  };
  const auto note_rejected = [&] {
    const std::size_t rejected_now = shard.extractor.rejected_windows();
    if (rejected_now != shard.rejected_reported) {
      rejected_ += rejected_now - shard.rejected_reported;
      shard.rejected_reported = rejected_now;
    }
    // Same watermark pattern for the quality-gate counters. These are the
    // extractor's OWN monotone event counts (they do not travel with a
    // migrating patient), so the delta is never negative.
    if (config_.quality.enable) {
      const std::size_t annotated_now = shard.extractor.annotated_windows();
      if (annotated_now != shard.annotated_reported) {
        annotated_ += annotated_now - shard.annotated_reported;
        shard.annotated_reported = annotated_now;
      }
      const std::size_t suppressed_now = shard.extractor.suppressed_windows();
      if (suppressed_now != shard.suppressed_reported) {
        suppressed_ += suppressed_now - shard.suppressed_reported;
        shard.suppressed_reported = suppressed_now;
      }
    }
  };
  const auto note_error = [&] {
    // Record the first error for the next flush() and keep serving: one
    // patient without a model must not take down the whole shard.
    const std::lock_guard<std::mutex> lock(error_mutex_);
    if (!error_) error_ = std::current_exception();
  };
  const auto settle_one = [&](int patient_id) {
    const std::lock_guard<std::mutex> lock(route_mutex_);
    settle_patient_locked(patient_id);
  };
  for (;;) {
    settle_evicted(shard);
    // Deadline mode: pick up the controller's stride factor at a batch
    // boundary (never mid-round).
    const std::size_t stride = stride_factor_.load(std::memory_order_relaxed);
    if (stride != shard.extractor.stride_factor()) shard.extractor.set_stride_factor(stride);

    std::optional<Task> task;
    if (pending) {
      task = std::exchange(pending, std::nullopt);
    } else if (stealing) {
      // Stealing mode: an empty queue is the steal trigger. The scan is
      // O(patients) under route_mutex_ — the producer hot path's lock — so
      // failed scans back off exponentially (1, 2, 4, ... capped polls
      // between attempts) instead of contending it every idle millisecond;
      // fresh work or a successful steal resets the cadence.
      task = shard.tasks.try_pop();
      if (!task) {
        if (++idle_polls >= steal_backoff) {
          idle_polls = 0;
          steal_backoff =
              maybe_steal(self) ? 1 : std::min(steal_backoff * 2, kMaxStealBackoffPolls);
        }
        bool timed_out = false;
        task = shard.tasks.wait_pop_for(kIdlePoll, timed_out);
        if (!task) {
          if (timed_out) continue;
          break;  // Closed and drained.
        }
      }
      steal_backoff = 1;  // Fresh work: next idle spell scans immediately.
      idle_polls = 0;
    } else {
      task = shard.tasks.wait_pop();
      if (!task) break;
    }
    if (task->fence) {
      {
        const std::lock_guard<std::mutex> lock(fence_mutex_);
        ++fences_reached_;
      }
      fence_cv_.notify_all();
      continue;
    }
    if (task->migrate) {
      handle_migration(self, shard, *task);
      continue;
    }
    if (task->evict) {
      {
        const std::lock_guard<std::mutex> lock(route_mutex_);
        const auto it = routes_.find(task->patient_id);
        if (it != routes_.end()) {
          it->second.parked.reset();  // Free state parked mid-migration too.
          ++it->second.settled;
        }
      }
      shard.extractor.erase_patient(task->patient_id);
      continue;
    }
    if (task->end_stream) {
      ensure_attached(self, shard, task->patient_id);
      windows.clear();
      shard.extractor.end_patient(task->patient_id, collect);
      note_rejected();
      if (!windows.empty()) {
        try {
          classify_batch(task->patient_id, windows, shard);
          record_latency(shard, task->enqueued);
        } catch (...) {
          note_error();
        }
      }
      settle_one(task->patient_id);
      continue;
    }

    // Sample chunk: coalesce whatever other patients' chunks are already
    // queued (up to the lane-pack width) so the extractor steps the round in
    // SIMD lockstep. A control task — or a second chunk for a patient
    // already in the round — ends the round and carries into the next
    // iteration, preserving per-patient stream order and fence ordering.
    round.clear();
    round.push_back(std::move(*task));
    while (round.size() < ecg::LaneQrsDetector::kMaxLanes) {
      auto next = shard.tasks.try_pop();
      if (!next) break;
      const bool control = next->fence || next->evict || next->end_stream || next->migrate;
      const bool duplicate =
          std::any_of(round.begin(), round.end(),
                      [&](const Task& t) { return t.patient_id == next->patient_id; });
      if (control || duplicate) {
        pending = std::move(next);
        break;
      }
      round.push_back(std::move(*next));
    }

    windows.clear();
    chunks.clear();
    for (const Task& t : round) {
      ensure_attached(self, shard, t.patient_id);
      chunks.push_back({t.patient_id, t.samples});
    }
    shard.extractor.push_batch(chunks, collect);
    note_rejected();

    // Windows land contiguously per patient in round order; each patient's
    // segment is classified and delivered on its own, with the latency clock
    // of that patient's chunk.
    std::size_t begin = 0;
    for (const Task& t : round) {
      std::size_t end = begin;
      while (end < windows.size() && windows[end].patient_id == t.patient_id) ++end;
      if (end > begin) {
        try {
          classify_batch(t.patient_id,
                         std::span<const ExtractedWindow>(windows.data() + begin, end - begin),
                         shard);
          record_latency(shard, t.enqueued);
        } catch (...) {
          note_error();
        }
      }
      begin = end;
    }
    {
      const std::lock_guard<std::mutex> lock(route_mutex_);
      for (const Task& t : round) settle_patient_locked(t.patient_id);
    }
    {
      // Hand the drained buffers back to the producers (see Shard::sample_pool).
      const std::lock_guard<std::mutex> lock(shard.pool_mutex);
      for (Task& t : round) {
        if (shard.sample_pool.size() >= kSamplePoolCap) break;
        if (t.samples.capacity() > 0) shard.sample_pool.push_back(std::move(t.samples));
      }
    }
  }
}

void ShardedStreamClassifier::classify_batch(int patient_id,
                                             std::span<const ExtractedWindow> windows,
                                             Shard& shard) {
  // All staging lives in the shard's scratch: rows, values and the kernel's
  // transpose/quantise buffers keep their capacity between batches, so the
  // steady-state serve loop performs no heap allocation.
  const std::size_t n = windows.size();
  ClassifyScratch& scratch = shard.scratch;
  auto& batch = scratch.batch;
  batch.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    batch[k].patient_id = patient_id;
    batch[k].start_s = windows[k].start_s;
    batch[k].num_beats = windows[k].num_beats;
    batch[k].workload = windows[k].workload;
    batch[k].quality = windows[k].quality;
  }

  // One batched kernel call per workload: gather that workload's windows in
  // emission order, classify, scatter the values back. A single-workload
  // stream takes exactly one call over the whole batch in emission order —
  // the historical behaviour, bit for bit.
  const std::size_t num_workloads = shard.extractor.num_workloads();
  for (std::uint32_t w = 0; w < num_workloads; ++w) {
    auto& index = scratch.index;
    index.clear();
    for (std::size_t k = 0; k < n; ++k)
      if (windows[k].workload == w) index.push_back(k);
    if (index.empty()) continue;

    // Snapshot the (workload, patient) model once per batch: this is the
    // hot-swap fence. The batch runs to completion on the snapshot even if
    // install() replaces the registry entry mid-batch; the next batch sees
    // the new model.
    const auto model = registry_->resolve(w, patient_id);
    if (!model)
      throw std::runtime_error("ShardedStreamClassifier: no model for workload " +
                               std::to_string(w) + ", patient " +
                               std::to_string(patient_id));

    const std::size_t m = index.size();
    if (scratch.rows.size() < m) scratch.rows.resize(m);
    for (std::size_t k = 0; k < m; ++k)
      model->prepare_row(windows[index[k]].features_view(), scratch.rows[k]);
    const std::span<const std::vector<double>> rows(scratch.rows.data(), m);

    auto& values = scratch.values;
    if (model->quantized()) {
      model->quantized()->dequantized_decisions(rows, scratch.kernel, values);
    } else if (model->packed()) {
      values.resize(m);
      model->packed()->decision_values(rows, values, scratch.kernel);
    } else {
      values.resize(m);
      model->model().decision_values(rows, values);
    }
    for (std::size_t k = 0; k < m; ++k) {
      batch[index[k]].decision_value = values[k];
      batch[index[k]].label = values[k] >= 0.0 ? +1 : -1;
    }
  }
  deliver(batch);
}

std::vector<double> ShardedStreamClassifier::delivery_latencies_s() const {
  std::vector<double> all;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->latency_mutex);
    all.insert(all.end(), shard->latencies_s.begin(), shard->latencies_s.end());
  }
  return all;
}

void ShardedStreamClassifier::deliver(std::span<const WindowResult> batch) {
  std::shared_ptr<const ResultSink> sink;
  {
    const std::lock_guard<std::mutex> lock(sink_mutex_);
    sink = sink_;
  }
  if (sink) {
    (*sink)(batch);
  } else {
    const std::lock_guard<std::mutex> lock(collected_mutex_);
    collected_.insert(collected_.end(), batch.begin(), batch.end());
  }
  delivered_ += batch.size();
}

std::vector<WindowResult> ShardedStreamClassifier::flush() {
  {
    const std::lock_guard<std::mutex> lock(route_mutex_);
    fence_pending_ = true;  // Pause migrations for the fence's duration.
  }
  {
    const std::lock_guard<std::mutex> lock(fence_mutex_);
    fences_reached_ = 0;
  }
  Task fence;
  fence.fence = true;
  // Control push: fences bypass queue capacity, so a flush cannot deadlock
  // against a saturated shard queue, and drop-oldest can never evict one.
  for (auto& shard : shards_) shard->tasks.push_control(fence);
  {
    std::unique_lock<std::mutex> lock(fence_mutex_);
    fence_cv_.wait(lock, [this] { return fences_reached_ == shards_.size(); });
  }
  {
    const std::lock_guard<std::mutex> lock(route_mutex_);
    fence_pending_ = false;
  }

  // Drain in-flight migrations: a token that raced the fence was requeued
  // behind it and resolves now that fence_pending_ has cleared. Waiting here
  // makes the fence total — after flush() the route table and scheduler
  // counters are settled, not merely the result stream (no new hand-offs can
  // start: everything is settled, so no backlog clears the steal threshold,
  // and a rebalance during a flush is the caller's own race).
  for (;;) {
    bool migrating = false;
    {
      const std::lock_guard<std::mutex> lock(route_mutex_);
      for (const auto& [pid, route] : routes_)
        if (route.migrating) {
          migrating = true;
          break;
        }
    }
    if (!migrating) break;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }

  // A worker delivers a chunk's results before popping the next task, so
  // once every fence is visible everything pushed before this flush has been
  // delivered (to the sink, or collected below).
  {
    const std::lock_guard<std::mutex> lock(error_mutex_);
    if (error_) {
      auto error = std::exchange(error_, nullptr);  // The engine stays usable.
      std::rethrow_exception(error);
    }
  }

  std::vector<WindowResult> results;
  {
    const std::lock_guard<std::mutex> lock(collected_mutex_);
    results.swap(collected_);
  }
  std::sort(results.begin(), results.end(), [](const WindowResult& a, const WindowResult& b) {
    if (a.patient_id != b.patient_id) return a.patient_id < b.patient_id;
    if (a.start_s != b.start_s) return a.start_s < b.start_s;
    return a.workload < b.workload;
  });
  return results;
}

void ShardedStreamClassifier::apply_deadline_level(int level) {
  const int previous = deadline_level_.exchange(level);
  if (previous == level) return;
  // Stride: level 0 -> x1, level 1 -> x2, levels 2+ -> x4.
  const std::size_t stride = level >= 2 ? 4 : (level == 1 ? 2 : 1);
  if (stride > stride_factor_.load()) ++stride_widenings_;
  stride_factor_.store(stride);
  // Forced shedding only at the top level.
  const bool shed = level >= 3;
  if (shed && previous < 3) {
    ++shed_activations_;
    for (auto& shard : shards_) shard->tasks.set_forced_drop(true);
  } else if (!shed && previous >= 3) {
    for (auto& shard : shards_) shard->tasks.set_forced_drop(false);
  }
}

void ShardedStreamClassifier::deadline_loop() {
  const auto interval = std::chrono::duration<double>(
      options_.deadline.poll_interval_s > 0 ? options_.deadline.poll_interval_s : 0.05);
  const double target = options_.deadline.target_p99_s;
  int calm_polls = 0;
  std::unique_lock<std::mutex> lock(deadline_mutex_);
  while (!deadline_stop_) {
    deadline_cv_.wait_for(
        lock, std::chrono::duration_cast<std::chrono::nanoseconds>(interval),
        [this] { return deadline_stop_; });
    if (deadline_stop_) break;
    lock.unlock();

    std::vector<double> latencies = delivery_latencies_s();
    if (!latencies.empty()) {
      const std::size_t idx =
          std::min(latencies.size() - 1,
                   static_cast<std::size_t>(0.99 * static_cast<double>(latencies.size())));
      std::nth_element(latencies.begin(),
                       latencies.begin() + static_cast<std::ptrdiff_t>(idx), latencies.end());
      const double p99 = latencies[idx];
      const int level = deadline_level_.load();
      if (p99 > options_.deadline.arm_fraction * target) {
        // Degrading one level per poll gives each remedy a poll interval to
        // bite before the next escalation.
        if (level < 3) apply_deadline_level(level + 1);
        calm_polls = 0;
      } else if (p99 < options_.deadline.recover_fraction * target) {
        if (level > 0 && ++calm_polls >= options_.deadline.recover_polls) {
          apply_deadline_level(level - 1);
          calm_polls = 0;
        }
      } else {
        calm_polls = 0;  // In the hysteresis band: hold the current level.
      }
    }

    lock.lock();
  }
  // Leave the engine un-degraded on shutdown.
  lock.unlock();
  apply_deadline_level(0);
}

}  // namespace svt::rt
