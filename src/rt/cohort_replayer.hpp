// Cohort replay: stream a directory of WFDB records into the sharded engine.
//
// A recorded ward (a PhysioNet-style directory of records + RECORDS index)
// becomes a live multi-patient stream:
//
//   RECORDS ──> io::read_record ──> ECG channel, ADC -> mV
//        │  (per record: patient id from the trailing record number)
//        ▼
//   round-robin bounded chunks ──> ShardedStreamClassifier::push_samples
//        │   (chunk_s seconds per push; optional real-time pacing)       │
//        ▼                                                               ▼
//   end_stream(patient) at each record's end             ResultSink (caller's)
//   (flushes the detector tail so trailing windows
//    classify — no full window of a finite recording
//    is ever lost), then one terminal flush() fence
//
// Pacing: speed = 0 replays as fast as the pipeline accepts (throughput
// mode — the bench's replay_x_realtime metric); speed = k paces each
// record's chunks against the wall clock at k× real time (k = 1 simulates
// the live ward). Records replay concurrently, interleaved chunk by chunk
// in round-robin order — the arrival pattern of a telemetry gateway — and
// every record must carry a distinct patient id, so per-patient results are
// bit-identical to pushing that record's samples alone through the
// single-threaded StreamClassifier (asserted at 1/2/4 workers by
// tests/test_replay.cpp).
//
// Stats: per record, the replayer reports wall time to admit the record
// (first chunk push -> end_stream), the achieved real-time multiple, and
// the windows delivered for its patient; per cohort, the aggregate ×
// real-time rate and the engine's dropped-chunk count over the replay.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "rt/sharded_classifier.hpp"

namespace svt::rt {

struct ReplayOptions {
  /// Real-time multiple for pacing; 0 = as fast as possible.
  double speed = 0.0;
  /// Seconds of signal pushed per chunk (bounds queue memory; the default
  /// matches the 4 s telemetry chunks used across the benches).
  double chunk_s = 4.0;
  /// Channel to stream; kAutoChannel picks io::ecg_channel per record.
  static constexpr std::size_t kAutoChannel = static_cast<std::size_t>(-1);
  std::size_t channel = kAutoChannel;
};

/// Replay outcome for one record.
struct RecordReplayStats {
  std::string record;
  int patient_id = 0;
  double duration_s = 0.0;   ///< Recorded signal length.
  std::size_t samples = 0;
  double wall_s = 0.0;       ///< Replay start -> this record fully admitted.
  double x_realtime = 0.0;   ///< duration_s / wall_s.
  std::size_t windows = 0;   ///< Windows delivered for this patient.
  bool skipped = false;      ///< Record not streamed (see skip_reason).
  std::string skip_reason;   ///< Why, e.g. a sampling-rate mismatch.
};

/// Replay outcome for the whole cohort (wall time includes the terminal
/// fence, so `windows` is the exact delivered count).
struct ReplayReport {
  std::vector<RecordReplayStats> records;
  double total_duration_s = 0.0;  ///< Sum of recorded lengths.
  double wall_s = 0.0;
  double x_realtime = 0.0;        ///< total_duration_s / wall_s.
  std::size_t windows = 0;
  std::size_t dropped_chunks = 0;  ///< Dropped during this replay (kDropOldest).
  std::size_t skipped_records = 0;  ///< Records skipped (per-record skip_reason).
  /// Segment-cache activity during this replay (delta over the engine's
  /// counters, like dropped_chunks): how much per-stride feature work the
  /// overlapping windows reused instead of recomputing.
  features::SegmentCacheStats cache;
};

class CohortReplayer {
 public:
  /// Own a sharded engine serving `registry`, configured by the unified
  /// rt::EngineOptions (workers, queues, placement, stealing, deadline).
  /// Results are delivered through options.sink (same thread-safety
  /// contract as ShardedStreamClassifier); leave it empty to replay for the
  /// stats alone. The replayer wraps the sink with its own counting sink on
  /// the engine — do not replace it via engine().set_result_sink(), or
  /// per-record window counts go dark.
  /// (The pre-scheduler positional (registry, config, num_workers, sink)
  /// shim is gone; pass workers/sink through rt::EngineOptions.)
  explicit CohortReplayer(std::shared_ptr<ModelRegistry> registry, StreamConfig config = {},
                          EngineOptions options = {});

  /// Replay every record listed in `<dir>/RECORDS`.
  ReplayReport replay_directory(const std::string& dir, const ReplayOptions& options = {});

  /// Replay an explicit record list from `dir`. A record whose sampling
  /// rate disagrees with the stream config is skipped — reported in its
  /// RecordReplayStats (skipped/skip_reason) and counted in
  /// ReplayReport::skipped_records — rather than aborting the whole cohort:
  /// one mis-recorded monitor must not take the ward replay down. Throws
  /// std::invalid_argument on a name without a trailing record number,
  /// duplicate patient ids, or an out-of-range channel selection. Not
  /// reentrant: one replay at a time.
  ReplayReport replay_records(const std::string& dir, const std::vector<std::string>& names,
                              const ReplayOptions& options = {});

  /// Patient id of a record: its trailing decimal number ("p007" -> 7,
  /// "100" -> 100). Throws std::invalid_argument when there is none.
  static int patient_id_of(const std::string& record_name);

  ShardedStreamClassifier& engine() { return engine_; }
  const ShardedStreamClassifier& engine() const { return engine_; }

 private:
  std::mutex windows_mutex_;
  std::map<int, std::size_t> windows_per_patient_;
  ResultSink user_sink_;
  ShardedStreamClassifier engine_;  ///< Last: its sink captures the above.
};

/// A deterministic, training-free serving model over the full raw feature
/// vector (identity selection, seeded z-score scaler, random quantised
/// quadratic SVM). Fixture replays and benches use it so the classified
/// stream depends only on the seed — never on a training run — which is
/// what keeps the replay golden file stable across builds.
ServableModel synthetic_full_feature_model(std::uint64_t seed = 21);

/// Same idea over the AF-screening workload's 3-feature schema (rmssd
/// ratio, turning-point ratio, RR Shannon entropy): identity selection,
/// seeded scaler, random quantised quadratic SVM. Pairs with
/// rt::af_workload() in multi-workload fixtures and benches.
ServableModel synthetic_af_model(std::uint64_t seed = 43);

}  // namespace svt::rt
