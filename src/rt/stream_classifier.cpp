#include "rt/stream_classifier.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace svt::rt {

namespace {

std::vector<ServableModel> single_model(ServableModel model) {
  std::vector<ServableModel> models;
  models.push_back(std::move(model));
  return models;
}

}  // namespace

StreamClassifier::StreamClassifier(ServableModel model, StreamConfig config)
    : StreamClassifier(single_model(std::move(model)), std::move(config)) {}

StreamClassifier::StreamClassifier(std::vector<ServableModel> models, StreamConfig config)
    : models_(std::move(models)), extractor_(std::move(config)) {
  if (models_.size() != extractor_.num_workloads())
    throw std::invalid_argument(
        "StreamClassifier: one model per registered workload required (got " +
        std::to_string(models_.size()) + " for " +
        std::to_string(extractor_.num_workloads()) + " workloads)");
}

StreamClassifier::StreamClassifier(const core::TailoredDetector& detector, StreamConfig config)
    : StreamClassifier(ServableModel::from_detector(detector), std::move(config)) {}

void StreamClassifier::push_samples(int patient_id, std::span<const double> samples_mv) {
  extractor_.push_samples(patient_id, samples_mv, [this](ExtractedWindow&& window) {
    // The model's per-window front half (feature selection + scaling); the
    // back half (the decision kernel) is deferred to flush(), where all
    // queued rows go through one batched call per workload.
    queue_window(window);
  });
}

bool StreamClassifier::end_stream(int patient_id) {
  return extractor_.end_patient(
      patient_id, [this](ExtractedWindow&& window) { queue_window(window); });
}

void StreamClassifier::queue_window(const ExtractedWindow& window) {
  pending_rows_.push_back(models_[window.workload].prepare_row(window.features_view()));
  WindowResult meta;
  meta.patient_id = window.patient_id;
  meta.start_s = window.start_s;
  meta.num_beats = window.num_beats;
  meta.workload = window.workload;
  meta.quality = window.quality;
  pending_meta_.push_back(meta);
}

std::vector<WindowResult> StreamClassifier::flush() {
  std::vector<WindowResult> results = std::move(pending_meta_);
  std::vector<std::vector<double>> rows = std::move(pending_rows_);
  pending_meta_.clear();
  pending_rows_.clear();
  delivered_windows_ += results.size();
  if (results.empty()) return results;

  // One batched kernel call per workload: gather that workload's rows in
  // queue order, classify, scatter the values back. With a single workload
  // this is exactly one call over all rows in push order — the historical
  // (pre-multi-workload) behaviour, bit for bit.
  std::vector<std::size_t> index;
  std::vector<std::vector<double>> workload_rows;
  std::vector<double> values;
  for (std::uint32_t w = 0; w < models_.size(); ++w) {
    index.clear();
    for (std::size_t i = 0; i < results.size(); ++i)
      if (results[i].workload == w) index.push_back(i);
    if (index.empty()) continue;
    workload_rows.clear();
    for (const std::size_t i : index) workload_rows.push_back(std::move(rows[i]));

    const ServableModel& model = models_[w];
    if (model.quantized()) {
      // Fixed-point deployment: labels come from the bit-exact batched
      // integer pipeline; the dequantised accumulator doubles as the
      // decision value.
      values = model.quantized()->dequantized_decisions(workload_rows);
    } else {
      values.resize(workload_rows.size());
      if (model.packed()) {
        model.packed()->decision_values(workload_rows, values);
      } else {
        model.model().decision_values(workload_rows, values);
      }
    }
    for (std::size_t k = 0; k < index.size(); ++k) {
      results[index[k]].decision_value = values[k];
      results[index[k]].label = values[k] >= 0.0 ? +1 : -1;
    }
  }
  return results;
}

}  // namespace svt::rt
