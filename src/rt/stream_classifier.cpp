#include "rt/stream_classifier.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "ecg/qrs_detect.hpp"
#include "features/extractor.hpp"

namespace svt::rt {

StreamClassifier::StreamClassifier(core::TailoredDetector detector, StreamConfig config)
    : detector_(std::move(detector)), config_(config) {
  if (config.fs_hz <= 0.0) throw std::invalid_argument("StreamClassifier: fs_hz <= 0");
  if (config.window_s <= 0.0) throw std::invalid_argument("StreamClassifier: window_s <= 0");
  if (config.stride_s <= 0.0) throw std::invalid_argument("StreamClassifier: stride_s <= 0");
  if (config.stride_s > config.window_s)
    throw std::invalid_argument("StreamClassifier: stride_s > window_s leaves coverage gaps");
  if (config.edr_fs_hz <= 0.0) throw std::invalid_argument("StreamClassifier: edr_fs_hz <= 0");
  window_samples_ = static_cast<std::size_t>(std::llround(config.window_s * config.fs_hz));
  stride_samples_ = static_cast<std::size_t>(std::llround(config.stride_s * config.fs_hz));
  if (window_samples_ == 0 || stride_samples_ == 0)
    throw std::invalid_argument("StreamClassifier: window/stride shorter than one sample");

  // flush() only reads the packed float model when there is no quantised
  // engine; skip the pack (and the SV-table copy) otherwise.
  const auto& model = detector_.model();
  if (!detector_.quantized() && model.kernel.type == svt::svm::KernelType::kPolynomial &&
      model.kernel.degree == 2 && model.num_support_vectors() > 0) {
    packed_.emplace(model);
  }
}

void StreamClassifier::push_samples(int patient_id, std::span<const double> samples_mv) {
  auto it = patients_.find(patient_id);
  if (it == patients_.end())
    it = patients_.emplace(patient_id, PatientState(window_samples_)).first;
  PatientState& state = it->second;
  while (!samples_mv.empty()) {
    const std::size_t taken = state.ring.push(samples_mv);
    samples_mv = samples_mv.subspan(taken);
    while (state.ring.size() >= window_samples_) {
      emit_window(patient_id, state);
      state.ring.drop(stride_samples_);
      state.consumed += stride_samples_;
    }
  }
}

void StreamClassifier::emit_window(int patient_id, PatientState& state) {
  ecg::EcgWaveform window;
  window.fs_hz = config_.fs_hz;
  window.samples_mv.resize(window_samples_);
  state.ring.copy_out(window.samples_mv);

  const auto qrs = ecg::detect_qrs(window);
  if (qrs.size() < config_.min_beats || qrs.size() < 2) {
    ++rejected_;
    return;
  }
  const auto raw =
      features::extract_features(qrs.to_rr_series(), qrs.to_edr(config_.edr_fs_hz));

  // The detector's per-window front half (feature selection + scaling); the
  // back half (the decision kernel) is deferred to flush(), where all
  // queued rows go through one batched call.
  auto row = detector_.prepare_row(raw);

  WindowResult meta;
  meta.patient_id = patient_id;
  meta.start_s = static_cast<double>(state.consumed) / config_.fs_hz;
  meta.num_beats = qrs.size();
  pending_rows_.push_back(std::move(row));
  pending_meta_.push_back(meta);
}

std::vector<WindowResult> StreamClassifier::flush() {
  std::vector<WindowResult> results = std::move(pending_meta_);
  std::vector<std::vector<double>> rows = std::move(pending_rows_);
  pending_meta_.clear();
  pending_rows_.clear();
  if (results.empty()) return results;

  if (detector_.quantized()) {
    // Fixed-point deployment: labels come from the bit-exact batched integer
    // pipeline; the dequantised accumulator doubles as the decision value.
    const auto values = detector_.quantized()->dequantized_decisions(rows);
    for (std::size_t w = 0; w < results.size(); ++w) {
      results[w].decision_value = values[w];
      results[w].label = values[w] >= 0.0 ? +1 : -1;
    }
    return results;
  }

  std::vector<double> values(rows.size());
  if (packed_) {
    packed_->decision_values(rows, values);
  } else {
    detector_.model().decision_values(rows, values);
  }
  for (std::size_t w = 0; w < results.size(); ++w) {
    results[w].decision_value = values[w];
    results[w].label = values[w] >= 0.0 ? +1 : -1;
  }
  return results;
}

std::size_t StreamClassifier::buffered_samples(int patient_id) const {
  const auto it = patients_.find(patient_id);
  return it == patients_.end() ? 0 : it->second.ring.size();
}

}  // namespace svt::rt
