#include "rt/stream_classifier.hpp"

#include <utility>

namespace svt::rt {

StreamClassifier::StreamClassifier(ServableModel model, StreamConfig config)
    : model_(std::move(model)), extractor_(config) {}

StreamClassifier::StreamClassifier(const core::TailoredDetector& detector, StreamConfig config)
    : StreamClassifier(ServableModel::from_detector(detector), config) {}

void StreamClassifier::push_samples(int patient_id, std::span<const double> samples_mv) {
  extractor_.push_samples(patient_id, samples_mv, [this](ExtractedWindow&& window) {
    // The model's per-window front half (feature selection + scaling); the
    // back half (the decision kernel) is deferred to flush(), where all
    // queued rows go through one batched call.
    queue_window(window);
  });
}

bool StreamClassifier::end_stream(int patient_id) {
  return extractor_.end_patient(
      patient_id, [this](ExtractedWindow&& window) { queue_window(window); });
}

void StreamClassifier::queue_window(const ExtractedWindow& window) {
  pending_rows_.push_back(model_.prepare_row(window.raw_features));
  WindowResult meta;
  meta.patient_id = window.patient_id;
  meta.start_s = window.start_s;
  meta.num_beats = window.num_beats;
  pending_meta_.push_back(meta);
}

std::vector<WindowResult> StreamClassifier::flush() {
  std::vector<WindowResult> results = std::move(pending_meta_);
  std::vector<std::vector<double>> rows = std::move(pending_rows_);
  pending_meta_.clear();
  pending_rows_.clear();
  delivered_windows_ += results.size();
  if (results.empty()) return results;

  if (model_.quantized()) {
    // Fixed-point deployment: labels come from the bit-exact batched integer
    // pipeline; the dequantised accumulator doubles as the decision value.
    const auto values = model_.quantized()->dequantized_decisions(rows);
    for (std::size_t w = 0; w < results.size(); ++w) {
      results[w].decision_value = values[w];
      results[w].label = values[w] >= 0.0 ? +1 : -1;
    }
    return results;
  }

  std::vector<double> values(rows.size());
  if (model_.packed()) {
    model_.packed()->decision_values(rows, values);
  } else {
    model_.model().decision_values(rows, values);
  }
  for (std::size_t w = 0; w < results.size(); ++w) {
    results[w].decision_value = values[w];
    results[w].label = values[w] >= 0.0 ? +1 : -1;
  }
  return results;
}

}  // namespace svt::rt
