#include "rt/window_extractor.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "dsp/resample.hpp"
#include "dsp/statistics.hpp"
#include "features/extractor.hpp"

namespace svt::rt {

WindowExtractor::WindowExtractor(StreamConfig config) : config_(config) {
  if (config.fs_hz <= 0.0) throw std::invalid_argument("WindowExtractor: fs_hz <= 0");
  if (config.window_s <= 0.0) throw std::invalid_argument("WindowExtractor: window_s <= 0");
  if (config.stride_s <= 0.0) throw std::invalid_argument("WindowExtractor: stride_s <= 0");
  if (config.stride_s > config.window_s)
    throw std::invalid_argument("WindowExtractor: stride_s > window_s leaves coverage gaps");
  if (config.edr_fs_hz <= 0.0) throw std::invalid_argument("WindowExtractor: edr_fs_hz <= 0");
  window_samples_ = static_cast<std::size_t>(std::llround(config.window_s * config.fs_hz));
  stride_samples_ = static_cast<std::size_t>(std::llround(config.stride_s * config.fs_hz));
  if (window_samples_ == 0 || stride_samples_ == 0)
    throw std::invalid_argument("WindowExtractor: window/stride shorter than one sample");
  // Probe detector: validates fs against the QRS band-pass up front (instead
  // of on the first push) and fixes the emission lookahead.
  const ecg::StreamingQrsDetector probe(config.fs_hz);
  emission_lag_samples_ = static_cast<std::size_t>(probe.finality_lag());
}

void WindowExtractor::push_samples(int patient_id, std::span<const double> samples_mv,
                                   const WindowSink& sink) {
  auto it = patients_.find(patient_id);
  if (it == patients_.end())
    it = patients_.emplace(patient_id, PatientState(config_.fs_hz)).first;
  PatientState& state = it->second;

  state.detector.push(samples_mv);
  state.pushed += static_cast<std::int64_t>(samples_mv.size());

  // A window [start, start + W) is complete once every beat that can fall
  // inside it is final — i.e. the detector's frontier has passed its end.
  const auto window = static_cast<std::int64_t>(window_samples_);
  while (state.detector.final_through() >= state.consumed + window) {
    emit_window(patient_id, state, sink);
    state.consumed += static_cast<std::int64_t>(stride_samples_);
    state.detector.drop_beats_before(state.consumed);
  }
}

void WindowExtractor::emit_window(int patient_id, PatientState& state, const WindowSink& sink) {
  const std::int64_t start = state.consumed;
  const std::int64_t end = start + static_cast<std::int64_t>(window_samples_);

  // Slice the window's beats out of the ring (the head is already >= start:
  // the stride advance drops older beats). Times are window-relative, so
  // identical beat patterns give bit-identical features anywhere in the
  // stream.
  const auto& ring = state.detector.beats();
  beat_times_.clear();
  beat_amps_.clear();
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const ecg::Beat& beat = ring[i];
    if (beat.sample_index >= end) break;
    beat_times_.push_back(static_cast<double>(beat.sample_index - start) / config_.fs_hz);
    beat_amps_.push_back(beat.amplitude_mv);
  }
  const std::size_t nbeats = beat_times_.size();
  if (nbeats < config_.min_beats || nbeats < 2) {
    ++rejected_;
    return;
  }

  // RR tachogram, same construction as QrsDetection::to_rr_series.
  rr_scratch_.beat_times_s.clear();
  rr_scratch_.rr_s.clear();
  for (std::size_t i = 1; i < nbeats; ++i) {
    rr_scratch_.beat_times_s.push_back(beat_times_[i]);
    rr_scratch_.rr_s.push_back(beat_times_[i] - beat_times_[i - 1]);
  }

  // EDR series, same construction as QrsDetection::to_edr.
  double edr_start = 0.0;
  dsp::resample_linear_into(beat_times_, beat_amps_, config_.edr_fs_hz, edr_start,
                            edr_scratch_.values);
  edr_scratch_.fs_hz = config_.edr_fs_hz;
  dsp::remove_mean(edr_scratch_.values);

  ExtractedWindow out;
  out.patient_id = patient_id;
  out.start_s = static_cast<double>(start) / config_.fs_hz;
  out.num_beats = nbeats;
  features::extract_features(rr_scratch_, edr_scratch_, scratch_, out.raw_features);
  sink(std::move(out));
}

bool WindowExtractor::end_patient(int patient_id, const WindowSink& sink) {
  const auto it = patients_.find(patient_id);
  if (it == patients_.end()) return false;
  PatientState& state = it->second;
  // finish() runs the remaining decisions with the batch detector's
  // end-of-record clamping, so every beat is final through the last sample.
  state.detector.finish();
  const auto window = static_cast<std::int64_t>(window_samples_);
  while (state.consumed + window <= state.pushed) {
    emit_window(patient_id, state, sink);
    state.consumed += static_cast<std::int64_t>(stride_samples_);
    state.detector.drop_beats_before(state.consumed);
  }
  patients_.erase(it);
  return true;
}

bool WindowExtractor::erase_patient(int patient_id) {
  return patients_.erase(patient_id) > 0;
}

std::size_t WindowExtractor::buffered_samples(int patient_id) const {
  const auto it = patients_.find(patient_id);
  return it == patients_.end() ? 0
                               : static_cast<std::size_t>(it->second.pushed - it->second.consumed);
}

}  // namespace svt::rt
