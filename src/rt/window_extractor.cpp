#include "rt/window_extractor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "dsp/resample.hpp"
#include "dsp/statistics.hpp"

namespace svt::rt {

namespace {

/// Segment-cached PSD source: applies the compute_psd_features gates to the
/// assembled window, then serves the averaged memoized periodograms.
class CachePsdSource final : public WindowPsdSource {
 public:
  CachePsdSource(features::SegmentFeatureCache& cache, std::int64_t m0,
                 std::span<const double> edr)
      : cache_(cache), m0_(m0), edr_(edr) {}

  const dsp::PsdEstimate* window_psd(features::FeatureScratch& scratch) override {
    if (edr_.size() < 32 || dsp::stddev_population(edr_) <= 0.0) return nullptr;
    return &cache_.window_psd(m0_, scratch.spectral);
  }

 private:
  features::SegmentFeatureCache& cache_;
  std::int64_t m0_;
  std::span<const double> edr_;
};

}  // namespace

WindowExtractor::WindowExtractor(StreamConfig config) : config_(config) {
  if (config.fs_hz <= 0.0) throw std::invalid_argument("WindowExtractor: fs_hz <= 0");
  if (config.window_s <= 0.0) throw std::invalid_argument("WindowExtractor: window_s <= 0");
  if (config.stride_s <= 0.0) throw std::invalid_argument("WindowExtractor: stride_s <= 0");
  if (config.stride_s > config.window_s)
    throw std::invalid_argument("WindowExtractor: stride_s > window_s leaves coverage gaps");
  if (config.edr_fs_hz <= 0.0) throw std::invalid_argument("WindowExtractor: edr_fs_hz <= 0");
  window_samples_ = static_cast<std::size_t>(std::llround(config.window_s * config.fs_hz));
  stride_samples_ = static_cast<std::size_t>(std::llround(config.stride_s * config.fs_hz));
  if (window_samples_ == 0 || stride_samples_ == 0)
    throw std::invalid_argument("WindowExtractor: window/stride shorter than one sample");
  // Probe detector: validates fs against the QRS band-pass up front (instead
  // of on the first push) and fixes the emission lookahead. Lane detectors
  // allocate nothing until a lane is claimed, so the probe is cheap.
  const ecg::LaneQrsDetector probe(config.fs_hz);
  emission_lag_samples_ = static_cast<std::size_t>(probe.finality_lag());
  // Stride-aligned configurations run the incremental (segment-cached)
  // pipeline; others keep the legacy whole-window path. The layout is
  // computed even with incremental=false so the parity reference runs the
  // same chunked code with memoization off.
  cache_layout_ = features::SegmentFeatureCache::plan(
      config_.fs_hz, config_.edr_fs_hz, static_cast<std::int64_t>(stride_samples_),
      static_cast<std::int64_t>(window_samples_));
  // Resolve the workload list: empty = the single-apnea default (workload 0
  // is the paper's pipeline, bit-identical to the pre-workload engine).
  workloads_ = config_.workloads.empty()
                   ? std::vector<std::shared_ptr<const Workload>>{apnea_workload()}
                   : config_.workloads;
  for (const auto& workload : workloads_) {
    if (!workload) throw std::invalid_argument("WindowExtractor: null workload");
    const std::size_t n = workload->num_features();
    if (n == 0 || n > kMaxWorkloadFeatures)
      throw std::invalid_argument("WindowExtractor: workload feature count out of range");
  }
  // Validate the quality configuration up front (not on the first push):
  // the probe gate exercises the same checks every per-patient gate would.
  if (config_.quality.enable) {
    const ecg::SignalQualityGate quality_probe(config_.quality, config_.fs_hz);
    (void)quality_probe;
  }
}

std::size_t WindowExtractor::claim_pack() {
  // First-fit pack selection keeps lanes densely occupied: an existing pack
  // with a free lane, else a released pack slot, else a new pack.
  std::size_t pack_idx = packs_.size();
  for (std::size_t i = 0; i < packs_.size(); ++i) {
    if (packs_[i] && packs_[i]->detector.free_lanes() > 0) {
      pack_idx = i;
      break;
    }
  }
  if (pack_idx == packs_.size()) {
    for (std::size_t i = 0; i < packs_.size(); ++i) {
      if (!packs_[i]) {
        pack_idx = i;
        break;
      }
    }
    if (pack_idx == packs_.size()) packs_.emplace_back();
    packs_[pack_idx] = std::make_unique<Pack>(config_.fs_hz);
  }
  return pack_idx;
}

WindowExtractor::PatientState& WindowExtractor::find_or_create(int patient_id) {
  auto it = patients_.find(patient_id);
  if (it != patients_.end()) return it->second;
  const std::size_t pack_idx = claim_pack();
  Pack& pack = *packs_[pack_idx];
  PatientState state;
  state.pack = pack_idx;
  state.lane = pack.detector.add_lane();
  if (cache_layout_)
    state.cache =
        std::make_unique<features::SegmentFeatureCache>(*cache_layout_, config_.incremental);
  if (config_.quality.enable)
    state.gate = std::make_unique<ecg::SignalQualityGate>(config_.quality, config_.fs_hz);
  ++pack.active;
  return patients_.emplace(patient_id, std::move(state)).first->second;
}

std::optional<WindowExtractor::DetachedPatient> WindowExtractor::detach_patient(int patient_id) {
  const auto it = patients_.find(patient_id);
  if (it == patients_.end()) return std::nullopt;
  PatientState& state = it->second;
  Pack& pack = *packs_[state.pack];
  DetachedPatient out;
  out.lane = pack.detector.detach_lane(state.lane);
  out.pushed = state.pushed;
  out.consumed = state.consumed;
  out.cache = std::move(state.cache);  // Stats travel with the entries.
  out.gate = std::move(state.gate);    // Spans/counters travel with the stream.
  if (--pack.active == 0) {
    retired_vector_samples_ += pack.detector.vector_samples();
    retired_scalar_samples_ += pack.detector.scalar_samples();
    packs_[state.pack].reset();
  }
  patients_.erase(it);
  return out;
}

void WindowExtractor::attach_patient(int patient_id, DetachedPatient&& detached) {
  if (patients_.count(patient_id) > 0)
    throw std::logic_error("WindowExtractor: attach_patient over a live stream");
  const std::size_t pack_idx = claim_pack();
  Pack& pack = *packs_[pack_idx];
  PatientState state;
  state.pack = pack_idx;
  state.lane = pack.detector.attach_lane(std::move(detached.lane));
  state.pushed = detached.pushed;
  state.consumed = detached.consumed;
  state.cache = std::move(detached.cache);
  state.gate = std::move(detached.gate);
  // A detached stream from a matching configuration carries its cache; be
  // robust to one that does not (correctness never depends on warm entries).
  if (cache_layout_ && !state.cache)
    state.cache =
        std::make_unique<features::SegmentFeatureCache>(*cache_layout_, config_.incremental);
  if (!cache_layout_) state.cache.reset();
  // Same robustness for the gate (a fresh gate loses history; a matching
  // migration always carries one, so this only covers mismatched configs).
  if (config_.quality.enable && !state.gate)
    state.gate = std::make_unique<ecg::SignalQualityGate>(config_.quality, config_.fs_hz);
  if (!config_.quality.enable) state.gate.reset();
  ++pack.active;
  patients_.emplace(patient_id, std::move(state));
}

void WindowExtractor::release_patient(PatientState& state) {
  if (state.cache) retired_cache_stats_ += state.cache->stats();
  if (state.gate) retired_quality_stats_ += state.gate->stats();
  Pack& pack = *packs_[state.pack];
  pack.detector.remove_lane(state.lane);
  if (--pack.active == 0) {
    // Last occupant gone: fold the pack's occupancy counters into the
    // retired totals and release its ring storage outright, so resident
    // memory tracks live patients rather than historical churn.
    retired_vector_samples_ += pack.detector.vector_samples();
    retired_scalar_samples_ += pack.detector.scalar_samples();
    packs_[state.pack].reset();
  }
}

void WindowExtractor::push_batch(std::span<const PatientChunk> chunks, const WindowSink& sink) {
  for (const auto& chunk : chunks) find_or_create(chunk.patient_id);

  // Step each involved pack once, with every one of its patients' chunks in
  // lockstep. Patient ids must be distinct within one batch (the lane
  // engine asserts one chunk per lane).
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    const std::size_t pack_idx = patients_.find(chunks[i].patient_id)->second.pack;
    bool first_for_pack = true;
    for (std::size_t j = 0; j < i; ++j) {
      if (patients_.find(chunks[j].patient_id)->second.pack == pack_idx) {
        first_for_pack = false;
        break;
      }
    }
    if (!first_for_pack) continue;
    lane_chunks_.clear();
    for (std::size_t j = i; j < chunks.size(); ++j) {
      const PatientState& state = patients_.find(chunks[j].patient_id)->second;
      if (state.pack == pack_idx) lane_chunks_.push_back({state.lane, chunks[j].samples_mv});
    }
    packs_[pack_idx]->detector.push(lane_chunks_);
  }

  // Emission runs per patient in chunk order, so each patient's windows
  // arrive contiguously and in stream order.
  for (const auto& chunk : chunks) {
    PatientState& state = patients_.find(chunk.patient_id)->second;
    // Quality gate: scan the raw chunk at its absolute stream offset. The
    // scan is per-sample sequential state only, so the resulting spans are
    // independent of chunk boundaries (and of which shard runs the stream).
    if (state.gate) state.gate->scan(chunk.samples_mv, state.pushed);
    state.pushed += static_cast<std::int64_t>(chunk.samples_mv.size());
    const auto& detector = packs_[state.pack]->detector;
    emit_ready_windows(chunk.patient_id, state, detector.final_through(state.lane), sink);
  }
}

void WindowExtractor::push_samples(int patient_id, std::span<const double> samples_mv,
                                   const WindowSink& sink) {
  const PatientChunk chunk{patient_id, samples_mv};
  push_batch({&chunk, 1}, sink);
}

void WindowExtractor::emit_ready_windows(int patient_id, PatientState& state,
                                         std::int64_t frontier, const WindowSink& sink) {
  // A window [start, start + W) is complete once every beat that can fall
  // inside it is final — i.e. the frontier has passed its end.
  const auto window = static_cast<std::int64_t>(window_samples_);
  auto& detector = packs_[state.pack]->detector;
  while (frontier >= state.consumed + window) {
    if (state.cache) {
      emit_window_cached(patient_id, state, sink);
    } else {
      emit_window(patient_id, state, sink);
    }
    // stride_factor_ > 1 is the deadline controller's degradation: windows
    // hop further apart, shedding the overlap work (and its results).
    state.consumed += static_cast<std::int64_t>(stride_samples_ * stride_factor_);
    // The chunked pipeline keeps one stride of left context behind the next
    // window (a chunk at m interpolates from beats in [(m-1)*S, (m+1)*S)).
    const std::int64_t retain =
        state.cache ? state.consumed - static_cast<std::int64_t>(stride_samples_)
                    : state.consumed;
    detector.drop_beats_before(state.lane, retain);
    // Artifact spans behind the retained horizon can never overlap a future
    // window; drop them so span memory tracks the window, not the stream.
    if (state.gate) state.gate->drop_spans_before(retain);
  }
}

void WindowExtractor::emit_window(int patient_id, PatientState& state, const WindowSink& sink) {
  const std::int64_t start = state.consumed;
  const std::int64_t end = start + static_cast<std::int64_t>(window_samples_);

  // Slice the window's beats out of the ring (the head is already >= start:
  // the stride advance drops older beats). Times are window-relative, so
  // identical beat patterns give bit-identical features anywhere in the
  // stream.
  const auto& ring = packs_[state.pack]->detector.beats(state.lane);
  beat_times_.clear();
  beat_amps_.clear();
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const ecg::Beat& beat = ring[i];
    if (beat.sample_index >= end) break;
    beat_times_.push_back(static_cast<double>(beat.sample_index - start) / config_.fs_hz);
    beat_amps_.push_back(beat.amplitude_mv);
  }
  const std::size_t nbeats = beat_times_.size();
  if (nbeats < config_.min_beats || nbeats < 2) {
    ++rejected_;
    return;
  }

  // RR tachogram, same construction as QrsDetection::to_rr_series.
  rr_scratch_.beat_times_s.clear();
  rr_scratch_.rr_s.clear();
  for (std::size_t i = 1; i < nbeats; ++i) {
    rr_scratch_.beat_times_s.push_back(beat_times_[i]);
    rr_scratch_.rr_s.push_back(beat_times_[i] - beat_times_[i - 1]);
  }

  // EDR series, same construction as QrsDetection::to_edr.
  double edr_start = 0.0;
  dsp::resample_linear_into(beat_times_, beat_amps_, config_.edr_fs_hz, edr_start,
                            edr_scratch_.values);
  edr_scratch_.fs_hz = config_.edr_fs_hz;
  dsp::remove_mean(edr_scratch_.values);

  // Substrate computed once; every registered workload extracts from it.
  // The null PSD source selects the direct whole-window Welch computation —
  // bit-identical to the pre-workload extract_features path.
  WindowSubstrate substrate;
  substrate.rr_s = rr_scratch_.rr_s;
  substrate.edr = edr_scratch_.values;
  substrate.edr_fs_hz = config_.edr_fs_hz;
  substrate.num_beats = nbeats;
  emit_for_workloads(patient_id, state, start, substrate, sink);
}

void WindowExtractor::emit_window_cached(int patient_id, PatientState& state,
                                         const WindowSink& sink) {
  features::SegmentFeatureCache& cache = *state.cache;
  const auto& layout = cache.layout();
  const std::int64_t start = state.consumed;
  const std::int64_t m0 = start / layout.stride_samples;

  // Ensure every covered chunk's products (EDR values, RR slice, beat
  // count), then assemble the window by concatenation — at 6x overlap five
  // of the six chunks are already resident in steady state.
  const auto& ring = packs_[state.pack]->detector.beats(state.lane);
  for (std::int64_t j = 0; j < layout.chunks_per_window; ++j) cache.chunk(ring, m0 + j);
  const auto view = cache.assemble_window(m0);
  if (view.beats < config_.min_beats || view.beats < 2) {
    ++rejected_;
    return;
  }

  // Same substrate contract as the legacy path, but over the assembled
  // spans — and the PSD source serves the average of the memoized
  // per-segment periodograms instead of re-running Welch over the window
  // (applying compute_psd_features' gates to the assembled EDR first).
  CachePsdSource psd_source(cache, m0, view.edr);
  WindowSubstrate substrate;
  substrate.rr_s = view.rr;
  substrate.edr = view.edr;
  substrate.edr_fs_hz = config_.edr_fs_hz;
  substrate.num_beats = view.beats;
  substrate.psd = &psd_source;
  emit_for_workloads(patient_id, state, start, substrate, sink);
}

void WindowExtractor::emit_for_workloads(int patient_id, PatientState& state,
                                         std::int64_t start, const WindowSubstrate& substrate,
                                         const WindowSink& sink) {
  // Quality gating happens once per window position, before any workload
  // runs: every workload of a suppressed window is withheld together, and
  // an annotated window carries the same flags on every workload's result.
  std::uint32_t flags = 0;
  if (state.gate) {
    const std::int64_t end = start + static_cast<std::int64_t>(window_samples_);
    if (state.gate->overlaps_artifact(start, end)) flags |= ecg::quality_flags::kArtifact;
    const std::size_t outliers = ecg::count_rr_outliers(substrate.rr_s, config_.quality);
    if (outliers > 0) {
      state.gate->note_rr_outliers(outliers);
      flags |= ecg::quality_flags::kRrOutliers;
    }
    if (flags != 0) {
      if (config_.quality.policy == ecg::QualityPolicy::kSuppress) {
        state.gate->note_suppressed();
        ++suppressed_;
        return;
      }
      state.gate->note_annotated();
      ++annotated_;
    }
  }

  for (std::uint32_t w = 0; w < workloads_.size(); ++w) {
    const Workload& workload = *workloads_[w];
    ExtractedWindow out;
    out.patient_id = patient_id;
    out.start_s = static_cast<double>(start) / config_.fs_hz;
    out.num_beats = substrate.num_beats;
    out.workload = w;
    out.quality = flags;
    out.num_features = workload.num_features();
    workload.extract(substrate, scratch_, {out.raw_features.data(), out.num_features});
    sink(std::move(out));
  }
}

bool WindowExtractor::end_patient(int patient_id, const WindowSink& sink) {
  const auto it = patients_.find(patient_id);
  if (it == patients_.end()) return false;
  PatientState& state = it->second;
  // finish() runs the remaining decisions with the batch detector's
  // end-of-record clamping, so every beat is final through the last sample.
  packs_[state.pack]->detector.finish(state.lane);
  emit_ready_windows(patient_id, state, state.pushed, sink);
  release_patient(state);
  patients_.erase(it);
  return true;
}

bool WindowExtractor::erase_patient(int patient_id) {
  const auto it = patients_.find(patient_id);
  if (it == patients_.end()) return false;
  release_patient(it->second);
  patients_.erase(it);
  return true;
}

std::size_t WindowExtractor::buffered_samples(int patient_id) const {
  const auto it = patients_.find(patient_id);
  return it == patients_.end() ? 0
                               : static_cast<std::size_t>(it->second.pushed - it->second.consumed);
}

std::uint64_t WindowExtractor::lane_vector_samples() const {
  std::uint64_t total = retired_vector_samples_;
  for (const auto& pack : packs_)
    if (pack) total += pack->detector.vector_samples();
  return total;
}

std::uint64_t WindowExtractor::lane_scalar_samples() const {
  std::uint64_t total = retired_scalar_samples_;
  for (const auto& pack : packs_)
    if (pack) total += pack->detector.scalar_samples();
  return total;
}

features::SegmentCacheStats WindowExtractor::cache_stats() const {
  features::SegmentCacheStats total = retired_cache_stats_;
  for (const auto& [id, state] : patients_)
    if (state.cache) total += state.cache->stats();
  return total;
}

ecg::QualityStats WindowExtractor::quality_stats() const {
  ecg::QualityStats total = retired_quality_stats_;
  for (const auto& [id, state] : patients_)
    if (state.gate) total += state.gate->stats();
  return total;
}

const char* WindowExtractor::lane_isa() const { return ecg::lane_isa_name(); }

std::size_t WindowExtractor::resident_detector_bytes() const {
  std::size_t total = 0;
  for (const auto& pack : packs_)
    if (pack) total += pack->detector.resident_bytes();
  return total;
}

}  // namespace svt::rt
