#include "rt/window_extractor.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "ecg/qrs_detect.hpp"
#include "features/extractor.hpp"

namespace svt::rt {

WindowExtractor::WindowExtractor(StreamConfig config) : config_(config) {
  if (config.fs_hz <= 0.0) throw std::invalid_argument("WindowExtractor: fs_hz <= 0");
  if (config.window_s <= 0.0) throw std::invalid_argument("WindowExtractor: window_s <= 0");
  if (config.stride_s <= 0.0) throw std::invalid_argument("WindowExtractor: stride_s <= 0");
  if (config.stride_s > config.window_s)
    throw std::invalid_argument("WindowExtractor: stride_s > window_s leaves coverage gaps");
  if (config.edr_fs_hz <= 0.0) throw std::invalid_argument("WindowExtractor: edr_fs_hz <= 0");
  window_samples_ = static_cast<std::size_t>(std::llround(config.window_s * config.fs_hz));
  stride_samples_ = static_cast<std::size_t>(std::llround(config.stride_s * config.fs_hz));
  if (window_samples_ == 0 || stride_samples_ == 0)
    throw std::invalid_argument("WindowExtractor: window/stride shorter than one sample");
}

void WindowExtractor::push_samples(int patient_id, std::span<const double> samples_mv,
                                   const WindowSink& sink) {
  auto it = patients_.find(patient_id);
  if (it == patients_.end())
    it = patients_.emplace(patient_id, PatientState(window_samples_)).first;
  PatientState& state = it->second;
  while (!samples_mv.empty()) {
    const std::size_t taken = state.ring.push(samples_mv);
    samples_mv = samples_mv.subspan(taken);
    while (state.ring.size() >= window_samples_) {
      emit_window(patient_id, state, sink);
      state.ring.drop(stride_samples_);
      state.consumed += stride_samples_;
    }
  }
}

void WindowExtractor::emit_window(int patient_id, PatientState& state, const WindowSink& sink) {
  ecg::EcgWaveform window;
  window.fs_hz = config_.fs_hz;
  window.samples_mv.resize(window_samples_);
  state.ring.copy_out(window.samples_mv);

  const auto qrs = ecg::detect_qrs(window);
  if (qrs.size() < config_.min_beats || qrs.size() < 2) {
    ++rejected_;
    return;
  }

  ExtractedWindow out;
  out.patient_id = patient_id;
  out.start_s = static_cast<double>(state.consumed) / config_.fs_hz;
  out.num_beats = qrs.size();
  out.raw_features =
      features::extract_features(qrs.to_rr_series(), qrs.to_edr(config_.edr_fs_hz));
  sink(std::move(out));
}

bool WindowExtractor::erase_patient(int patient_id) {
  return patients_.erase(patient_id) > 0;
}

std::size_t WindowExtractor::buffered_samples(int patient_id) const {
  const auto it = patients_.find(patient_id);
  return it == patients_.end() ? 0 : it->second.ring.size();
}

}  // namespace svt::rt
