// Packed (flattened) representation of a trained quadratic SVM for the
// streaming runtime: the SV table is stored once as a contiguous row-major
// matrix plus a per-SV weight array, so repeated batch classification pays
// no per-call packing cost (unlike SvmModel::decision_values, which packs on
// every call) and no vector<vector> pointer chasing.
#pragma once

#include <span>
#include <vector>

#include "rt/packed_kernel.hpp"
#include "svm/model.hpp"

namespace svt::rt {

class PackedModel {
 public:
  /// Pack `model`, which must use the quadratic polynomial kernel and have
  /// at least one support vector; throws std::invalid_argument otherwise.
  explicit PackedModel(const svt::svm::SvmModel& model);

  std::size_t num_features() const { return nfeat_; }
  std::size_t num_support_vectors() const { return nsv_; }
  double bias() const { return bias_; }

  /// Batched decision values; `out.size()` must equal `xs.size()`. Matches
  /// SvmModel::decision_value per window (same accumulation order).
  void decision_values(std::span<const std::vector<double>> xs, std::span<double> out) const;
  std::vector<double> decision_values(std::span<const std::vector<double>> xs) const;

  /// Scratch variant: stages the transposed batch in `scratch.xt` instead
  /// of a per-call allocation. Bit-identical results.
  void decision_values(std::span<const std::vector<double>> xs, std::span<double> out,
                       KernelScratch& scratch) const;

  /// Batched decision values over a flat row-major batch (nwin x nfeat).
  void decision_values_flat(const double* xs, std::size_t nwin, double* out) const;

  /// Single-window decision value through the packed path.
  double decision_value(std::span<const double> x) const;

 private:
  std::size_t nfeat_ = 0;
  std::size_t nsv_ = 0;
  std::vector<double> svs_;      ///< nsv x nfeat, row-major.
  std::vector<double> alpha_y_;  ///< nsv.
  double bias_ = 0.0;
  double coef0_ = 0.0;
};

}  // namespace svt::rt
