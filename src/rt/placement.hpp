// Pluggable patient placement for the sharded serving engine.
//
// A PlacementPolicy answers one question — which shard should own a patient
// — and is consulted exactly once per patient, when the engine first sees
// the id (and again only if the caller explicitly rebalances the patient:
// migration is the scheduler's job, not the policy's). The engine passes a
// snapshot of per-shard load so policies can be load-aware; the default
// FibonacciPlacement ignores it and hashes the id, which keeps placement a
// pure function of (id, shard count) — the historical behaviour, and the
// right choice when producers push from many threads and a deterministic
// assignment matters more than balance. LeastLoadedPlacement picks the
// shard with the fewest queued tasks (ties: fewest patients, then lowest
// index), which spreads a ward whose ids happen to collide under the hash.
//
// Contract: place() is called under the engine's routing lock — it must be
// fast, must not call back into the engine, and must return a value
// < shards.size(). Policies are shared between engines via shared_ptr and
// must be stateless or internally synchronised.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace svt::rt {

/// One shard's load snapshot at placement time.
struct ShardLoad {
  std::size_t queued = 0;    ///< Tasks waiting in the shard's queue.
  std::size_t patients = 0;  ///< Patients currently routed to the shard.
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  /// Shard for a new patient; must return < shards.size().
  virtual std::size_t place(int patient_id, std::span<const ShardLoad> shards) = 0;
};

/// The engine's historical static assignment: a Fibonacci hash of the id,
/// spreading consecutive patient ids evenly across shards. Depends only on
/// (id, shard count).
inline std::size_t fibonacci_shard(int patient_id, std::size_t num_shards) {
  const auto h = static_cast<std::uint64_t>(static_cast<std::uint32_t>(patient_id)) *
                 UINT64_C(0x9E3779B97F4A7C15);
  return static_cast<std::size_t>(h >> 32) % num_shards;
}

class FibonacciPlacement final : public PlacementPolicy {
 public:
  std::size_t place(int patient_id, std::span<const ShardLoad> shards) override {
    return fibonacci_shard(patient_id, shards.size());
  }
};

/// Load-aware placement: the shard with the fewest queued tasks (ties broken
/// by fewest patients, then lowest index). Admission order now matters to
/// the assignment, but per-patient results stay bit-exact regardless — only
/// *where* a patient runs changes.
class LeastLoadedPlacement final : public PlacementPolicy {
 public:
  std::size_t place(int, std::span<const ShardLoad> shards) override {
    std::size_t best = 0;
    for (std::size_t s = 1; s < shards.size(); ++s) {
      if (shards[s].queued < shards[best].queued ||
          (shards[s].queued == shards[best].queued &&
           shards[s].patients < shards[best].patients))
        best = s;
    }
    return best;
  }
};

}  // namespace svt::rt
