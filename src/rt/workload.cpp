#include "rt/workload.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/assert.hpp"
#include "features/af_features.hpp"
#include "features/ar_features.hpp"
#include "features/extractor.hpp"
#include "features/feature_types.hpp"
#include "features/hrv_features.hpp"
#include "features/lorentz_features.hpp"
#include "features/psd_features.hpp"

namespace svt::rt {

namespace {

class ApneaWorkload final : public Workload {
 public:
  const char* name() const override { return "apnea"; }
  std::size_t num_features() const override { return features::kNumFeatures; }

  std::string feature_name(std::size_t index) const override {
    const auto& catalog = features::feature_catalog();
    if (index >= catalog.size())
      throw std::out_of_range("ApneaWorkload: feature index out of range");
    return catalog[index].name;
  }

  void extract(const WindowSubstrate& s, features::FeatureScratch& scratch,
               std::span<double> out) const override {
    SVT_ASSERT(out.size() == features::kNumFeatures);
    std::size_t off = 0;
    features::compute_hrv_features(s.rr_s, scratch,
                                   out.subspan(off, features::kNumHrvFeatures));
    off += features::kNumHrvFeatures;
    features::compute_lorentz_features(s.rr_s, scratch,
                                       out.subspan(off, features::kNumLorentzFeatures));
    off += features::kNumLorentzFeatures;
    features::compute_ar_features(s.edr, scratch,
                                  out.subspan(off, features::kNumArFeatures));
    off += features::kNumArFeatures;
    const auto psd_out = out.subspan(off, features::kNumPsdFeatures);
    if (s.psd) {
      // Segment-cached path: the provider applies the PSD gates and hands
      // back the averaged memoized periodograms (null = gates failed, keep
      // the zero fill — exactly compute_psd_features' early-out contract).
      std::fill(psd_out.begin(), psd_out.end(), 0.0);
      if (const dsp::PsdEstimate* psd = s.psd->window_psd(scratch))
        features::summarize_psd(*psd, s.edr_fs_hz, psd_out);
    } else {
      features::compute_psd_features(s.edr, s.edr_fs_hz, scratch, psd_out);
    }
  }
};

class AfWorkload final : public Workload {
 public:
  const char* name() const override { return "af"; }
  std::size_t num_features() const override { return features::kNumAfFeatures; }

  std::string feature_name(std::size_t index) const override {
    static const char* names[features::kNumAfFeatures] = {
        "af_rmssd_ratio", "af_turning_point_ratio", "af_shannon_entropy"};
    if (index >= features::kNumAfFeatures)
      throw std::out_of_range("AfWorkload: feature index out of range");
    return names[index];
  }

  void extract(const WindowSubstrate& s, features::FeatureScratch& scratch,
               std::span<double> out) const override {
    features::compute_af_features(s.rr_s, scratch, out);
  }
};

}  // namespace

std::shared_ptr<const Workload> apnea_workload() {
  static const auto instance = std::make_shared<const ApneaWorkload>();
  return instance;
}

std::shared_ptr<const Workload> af_workload() {
  static const auto instance = std::make_shared<const AfWorkload>();
  return instance;
}

}  // namespace svt::rt
