// Low-level batched quadratic-kernel evaluation over flat (packed) arrays.
//
// These are the compute primitives of the streaming runtime: the support-
// vector table lives in one contiguous row-major block and a *batch* of
// feature vectors is evaluated per call, blocked so that each SV row is
// streamed through the cache once per window block instead of once per
// window. Per-window arithmetic order is identical to the per-window
// engines (svm::SvmModel::decision_value, core::QuantizedModel), so results
// match them: bit-exactly for the fixed-point path, and to rounding of
// `pow(s,2)` vs `s*s` for the float path.
//
// The fixed-point kernel has two implementations with identical results:
// a portable branch-free scalar path (always compiled, exposed as
// batch_quantized_accumulators_scalar for parity tests), and an explicitly
// vectorised path (AVX2, else SSE4.2) selected at COMPILE time when the
// library is built with SVT_SIMD on a target that has the ISA — saturation
// becomes vector min/max and the multiply-shift runs across the window-
// block lanes. Integer arithmetic is exact, so the two paths are bit-
// identical (asserted across feature widths by tests/test_rt_batch.cpp).
//
// This header is a leaf: it depends only on svt::fixed, so both the float
// SVM layer and the fixed-point core can route their batch entry points
// through it without a dependency cycle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace svt::rt {

/// Number of windows evaluated together in the blocked kernels. Sized so a
/// block of accumulators and partial dot products stays in registers/L1.
inline constexpr std::size_t kWindowBlock = 16;

/// Reusable buffers for the batch classification hot loop: the transposed
/// (feature-major) float batch, the quantised feature-major batch, and the
/// MAC2 accumulators. Callers that classify repeatedly (the serving
/// engines) keep one per worker so the per-batch transpose/quantise staging
/// allocates nothing once warm. Not thread-safe; carries no model or
/// patient state.
struct KernelScratch {
  std::vector<double> xt;
  std::vector<std::int64_t> qxt;
  std::vector<__int128> accs;
};

/// Transpose a row-major batch (nwin x nfeat) into feature-major layout
/// (nfeat x nwin): out[f * nwin + w] = in[w * nfeat + f]. Blocked/tiled so
/// both sides stream through the cache a tile at a time instead of striding
/// the whole matrix per element. The feature-major layout makes the
/// innermost per-window loops of the blocked kernels contiguous (unit
/// stride), which is what lets them vectorise. (The quantised batch path
/// needs no transpose: it quantises straight into the feature-major
/// layout.)
void transpose_batch(const double* in, std::size_t nwin, std::size_t nfeat, double* out);

/// Batched float decision values of a quadratic-polynomial SVM:
///   out[w] = bias + sum_i alpha_y[i] * (x_w . sv_i + coef0)^2
/// `xt` is the batch in feature-major layout (see transpose_batch), `svs` the
/// row-major nsv x nfeat SV matrix. Per-window accumulation order matches
/// SvmModel::decision_value (SVs in order, features in order).
void batch_quadratic_decisions(const double* xt, std::size_t nwin, std::size_t nfeat,
                               const double* svs, std::size_t nsv, const double* alpha_y,
                               double bias, double coef0, double* out);

/// Fixed-point pipeline description for the batched integer kernel; mirrors
/// the per-window engine in core::QuantizedModel (MAC1 with per-feature
/// scale-back shifts -> +1 -> truncate -> square -> truncate -> MAC2), with
/// every stage saturating to the same widths. All pointers are borrowed.
/// Contract: q_svs and the quantised inputs are Dbits integers with
/// Dbits <= 20 (enforced by QuantizedModel::build), so products fit 32x32
/// signed multiplies — the property the SIMD path relies on.
struct PackedQuantKernel {
  std::size_t nfeat = 0;
  std::size_t nsv = 0;
  const std::int64_t* q_svs = nullptr;      ///< nsv x nfeat, row-major.
  const std::int64_t* q_alpha_y = nullptr;  ///< nsv.
  const int* product_shifts = nullptr;      ///< nfeat scale-back shifts.
  std::int64_t q_one = 0;                   ///< Kernel's +1 at the MAC1 scale.
  __int128 q_bias = 0;                      ///< Bias at the MAC2 scale.
  int mac1_bits = 0;
  int kin_bits = 0;
  int kout_bits = 0;
  int mac2_bits = 0;
  int dot_truncate_bits = 0;
  int square_truncate_bits = 0;
};

/// Batched integer decision accumulators (sign = class), bit-exact with the
/// per-window engine. `qxt` is the quantised batch in feature-major layout.
/// Dispatches to the vector path in SVT_SIMD builds, else runs the scalar
/// reference; both produce identical bits.
void batch_quantized_accumulators(const PackedQuantKernel& kernel, const std::int64_t* qxt,
                                  std::size_t nwin, __int128* out);

/// The portable branch-free scalar reference (always compiled): the
/// bit-exactness oracle for the SIMD path.
void batch_quantized_accumulators_scalar(const PackedQuantKernel& kernel,
                                         const std::int64_t* qxt, std::size_t nwin,
                                         __int128* out);

/// True when this build dispatches batch_quantized_accumulators to an
/// explicit vector implementation (SVT_SIMD build on an AVX2/SSE4.2 target).
bool simd_kernel_enabled();

}  // namespace svt::rt
