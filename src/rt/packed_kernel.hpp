// Low-level batched quadratic-kernel evaluation over flat (packed) arrays.
//
// These are the compute primitives of the streaming runtime: the support-
// vector table lives in one contiguous row-major block and a *batch* of
// feature vectors is evaluated per call, blocked so that each SV row is
// streamed through the cache once per window block instead of once per
// window. Per-window arithmetic order is identical to the per-window
// engines (svm::SvmModel::decision_value, core::QuantizedModel), so results
// match them: bit-exactly for the fixed-point path, and to rounding of
// `pow(s,2)` vs `s*s` for the float path.
//
// This header is a leaf: it depends only on svt::fixed, so both the float
// SVM layer and the fixed-point core can route their batch entry points
// through it without a dependency cycle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace svt::rt {

/// Number of windows evaluated together in the blocked kernels. Sized so a
/// block of accumulators and partial dot products stays in registers/L1.
inline constexpr std::size_t kWindowBlock = 16;

/// Transpose a row-major batch (nwin x nfeat) into feature-major layout
/// (nfeat x nwin): out[f * nwin + w] = in[w * nfeat + f]. The feature-major
/// layout makes the innermost per-window loops of the blocked kernels
/// contiguous (unit stride), which is what lets them vectorise. (The
/// quantised batch path needs no transpose: it quantises straight into the
/// feature-major layout.)
void transpose_batch(const double* in, std::size_t nwin, std::size_t nfeat, double* out);

/// Batched float decision values of a quadratic-polynomial SVM:
///   out[w] = bias + sum_i alpha_y[i] * (x_w . sv_i + coef0)^2
/// `xt` is the batch in feature-major layout (see transpose_batch), `svs` the
/// row-major nsv x nfeat SV matrix. Per-window accumulation order matches
/// SvmModel::decision_value (SVs in order, features in order).
void batch_quadratic_decisions(const double* xt, std::size_t nwin, std::size_t nfeat,
                               const double* svs, std::size_t nsv, const double* alpha_y,
                               double bias, double coef0, double* out);

/// Fixed-point pipeline description for the batched integer kernel; mirrors
/// the per-window engine in core::QuantizedModel (MAC1 with per-feature
/// scale-back shifts -> +1 -> truncate -> square -> truncate -> MAC2), with
/// every stage saturating to the same widths. All pointers are borrowed.
struct PackedQuantKernel {
  std::size_t nfeat = 0;
  std::size_t nsv = 0;
  const std::int64_t* q_svs = nullptr;      ///< nsv x nfeat, row-major.
  const std::int64_t* q_alpha_y = nullptr;  ///< nsv.
  const int* product_shifts = nullptr;      ///< nfeat scale-back shifts.
  std::int64_t q_one = 0;                   ///< Kernel's +1 at the MAC1 scale.
  __int128 q_bias = 0;                      ///< Bias at the MAC2 scale.
  int mac1_bits = 0;
  int kin_bits = 0;
  int kout_bits = 0;
  int mac2_bits = 0;
  int dot_truncate_bits = 0;
  int square_truncate_bits = 0;
};

/// Batched integer decision accumulators (sign = class), bit-exact with the
/// per-window engine. `qxt` is the quantised batch in feature-major layout.
void batch_quantized_accumulators(const PackedQuantKernel& kernel, const std::int64_t* qxt,
                                  std::size_t nwin, __int128* out);

}  // namespace svt::rt
