// The unified serving-engine surface: one options struct and one minimal
// interface shared by every entry point.
//
// Before this header, the runtime grew three parallel 5-argument
// constructor stacks (ShardedStreamClassifier, CohortReplayer, ServeGateway)
// that could not gain a scheduler knob without breaking every caller. Now:
//
//  * rt::EngineOptions carries everything an engine needs beyond the model
//    registry and StreamConfig — worker count, queue sizing/backpressure,
//    placement policy, work stealing, deadline mode, and the result sink —
//    and is consumed uniformly by all three entry points (the old
//    positional signatures survive as thin deprecated shims).
//
//  * rt::Engine is the minimal interface a driver needs to stream against
//    (push_samples / end_stream / flush / stats), implemented by both the
//    single-threaded StreamClassifier (the determinism oracle) and the
//    sharded ShardedStreamClassifier, so loadgen --direct, the cohort
//    replayer, and the gateway program against the interface instead of a
//    concrete engine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "rt/placement.hpp"
#include "rt/work_queue.hpp"

namespace svt::rt {

/// One classified window, for one workload. A stream serving W workloads
/// yields W results per window position, sharing (patient_id, start_s) and
/// distinguished by `workload`.
struct WindowResult {
  int patient_id = 0;
  double start_s = 0.0;         ///< Window start within the patient's stream.
  double decision_value = 0.0;  ///< Float (or dequantised fixed-point) f(x).
  int label = 0;                ///< +1 = positive class, -1 = negative.
  std::size_t num_beats = 0;    ///< R peaks detected in the window.
  std::uint32_t workload = 0;   ///< Index into the stream's workload list.
  std::uint32_t quality = 0;    ///< ecg::quality_flags bitmask (0 = clean).
};

/// Receives classified windows as soon as a patient's batch completes. Each
/// call is one patient's windows in time order; calls for one patient are in
/// stream order; calls for different patients may be concurrent.
using ResultSink = std::function<void(std::span<const WindowResult>)>;

/// Work-stealing knobs (sharded engine only). Off by default: stealing
/// moves patients between shards, so shard_of() answers are only stable
/// while it is disabled.
struct StealConfig {
  bool enable = false;
  /// An idle worker only steals a patient with at least this many queued
  /// tasks on the victim (stealing a nearly-drained patient is churn).
  std::size_t min_backlog = 2;
};

/// Deadline mode (sharded engine only): a periodic controller watches the
/// rolling p99 of delivery_latencies_s() against target_p99_s and degrades
/// *before* breach — first widening the effective window stride (x2, then
/// x4: fewer overlapping windows per sample), then forcing drop-oldest
/// shedding on the shard queues — and backs off symmetrically once the tail
/// recovers. Every action is counted in SchedulerStats.
/// Requires a bounded queue: the sharded engine rejects target_p99_s > 0
/// with EngineOptions::queue_capacity == 0 at construction, because the
/// final shedding level evicts against the queue bound and would otherwise
/// be a silent no-op.
struct DeadlineConfig {
  double target_p99_s = 0.0;  ///< 0 disables the controller.
  double poll_interval_s = 0.05;
  /// Degrade one level when rolling p99 exceeds arm_fraction * target
  /// (acting at the target itself would already be a breach).
  double arm_fraction = 0.8;
  /// Recover one level after recover_polls consecutive polls with p99 below
  /// recover_fraction * target.
  double recover_fraction = 0.5;
  int recover_polls = 4;
};

/// Everything an engine needs beyond the registry and stream config,
/// consumed uniformly by ShardedStreamClassifier, CohortReplayer, and
/// net::ServeGateway.
struct EngineOptions {
  /// Maximum raw-sample chunks queued per shard; 0 = unbounded (legacy).
  std::size_t queue_capacity = 1024;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// Worker threads / shards (clamped to >= 1).
  std::size_t num_workers = 1;
  /// Patient -> shard assignment; null = FibonacciPlacement.
  std::shared_ptr<PlacementPolicy> placement;
  StealConfig stealing;
  DeadlineConfig deadline;
  /// Continuous delivery sink; empty = collect for flush() (legacy mode).
  ResultSink sink;
};

/// Scheduler counters (all zero on the single-threaded engine and whenever
/// stealing/deadline mode are off).
struct SchedulerStats {
  std::size_t steals = 0;            ///< Migration requests issued.
  std::size_t migrations = 0;        ///< Patients actually re-homed.
  std::size_t migrated_chunks = 0;   ///< Queued tasks moved victim -> thief.
  std::size_t stride_widenings = 0;  ///< Deadline stride escalations.
  std::size_t shed_activations = 0;  ///< Times forced shedding switched on.
  std::size_t shed_chunks = 0;       ///< Chunks dropped by forced shedding.
  std::size_t deadline_level = 0;    ///< Current degradation level (0 = none).
};

/// Uniform counters every engine can answer.
struct EngineStats {
  std::size_t delivered_windows = 0;
  std::size_t rejected_windows = 0;
  std::size_t dropped_chunks = 0;
  /// Quality-gate outcomes (both zero when the gate is off): window
  /// positions emitted with non-zero quality flags / withheld by the
  /// suppress policy. Counted per window position, not per workload.
  std::size_t windows_annotated = 0;
  std::size_t windows_suppressed = 0;
  SchedulerStats scheduler;
};

/// The minimal surface a streaming driver needs. Implementations document
/// their own threading contracts; the single-threaded StreamClassifier is
/// the bit-exactness oracle the sharded implementation is tested against.
class Engine {
 public:
  virtual ~Engine() = default;

  /// Ingest one patient's chunk of raw ECG samples (mV).
  virtual void push_samples(int patient_id, std::span<const double> samples_mv) = 0;

  /// End a finite patient stream (classifies the held-back trailing
  /// windows). Returns whether the patient was known — asynchronous
  /// implementations that cannot know yet return true.
  virtual bool end_stream(int patient_id) = 0;

  /// Classify/deliver everything ingested so far. Returns the pending
  /// results when the engine collects (no sink); empty when a sink already
  /// delivered them continuously.
  virtual std::vector<WindowResult> flush() = 0;

  virtual EngineStats stats() const = 0;
};

}  // namespace svt::rt
