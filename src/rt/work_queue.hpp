// Minimal blocking FIFO used to feed per-shard worker threads.
//
// Multiple producers (any thread calling push_samples / flush) enqueue; the
// single shard worker blocks in wait_pop. close() drains gracefully: the
// worker keeps popping until the queue is empty, then wait_pop returns
// nullopt and the worker exits. Unbounded by design — the streaming runtime
// backpressures at flush(), which is a full pipeline barrier.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace svt::rt {

template <typename T>
class WorkQueue {
 public:
  /// Enqueue an item. Items pushed after close() are dropped.
  void push(T item) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

  /// Block until an item is available (returns it) or the queue is closed
  /// and drained (returns nullopt).
  std::optional<T> wait_pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Stop accepting items and wake all waiters once the backlog drains.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace svt::rt
