// Bounded multi-producer FIFO feeding the per-shard worker threads.
//
// Multiple producers (any thread calling push_samples / flush) enqueue; the
// single shard worker blocks in wait_pop. close() drains gracefully: the
// worker keeps popping until the queue is empty, then wait_pop returns
// nullopt and the worker exits.
//
// Capacity and backpressure: an unbounded queue lets a producer that outruns
// extraction buffer raw ECG without limit — the pipeline OOMs instead of
// pushing back. A WorkQueue is therefore constructed with a capacity (0 =
// unbounded, the legacy behaviour) and a BackpressurePolicy describing what
// push() does when the queue holds `capacity` data items:
//
//  * kBlock      — push() blocks until the worker drains an item (or the
//                  queue is closed, in which case the item is rejected). The
//                  lossless policy: a fast producer is throttled to the
//                  pipeline's real throughput.
//  * kDropOldest — push() evicts the oldest *data* item to make room and
//                  succeeds immediately, incrementing dropped(). The
//                  freshness policy for live monitoring: when the pipeline
//                  falls behind, old telemetry is sacrificed for new.
//
// Control items (push_control: flush fences, eviction requests) are exempt
// from both policies: they are never dropped, never evicted, and do not
// count toward capacity — so a fence can always reach a worker even when
// producers have the queue saturated, and drop-oldest can never discard a
// barrier (which would deadlock the fence protocol).
//
// Scheduler hooks (all for the sharded engine's ward-scale scheduler):
//
//  * Evicted data items are logged, not silently destroyed — the consumer
//    drains them with take_evicted() so per-patient task accounting (the
//    steal-fence cutoff) stays exact even under drop-oldest.
//  * set_forced_drop(true) makes push() behave as kDropOldest regardless of
//    the constructed policy — the deadline controller's load-shedding lever
//    — with those evictions counted separately in forced_dropped().
//  * extract_matching() atomically removes every queued entry matching a
//    predicate (preserving their relative order) so a migration can move a
//    patient's backlog wholesale to another shard; reinsert_front() puts an
//    extraction back when the migration has to be retried, and
//    push_control_behind_data() requeues the retried token behind one data
//    item so it can never starve a capacity-blocked producer.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace svt::rt {

/// What push() does when a bounded queue is full (see WorkQueue).
enum class BackpressurePolicy {
  kBlock,      ///< Throttle the producer until the worker catches up.
  kDropOldest  ///< Evict the oldest data item; count it in dropped().
};

template <typename T>
class WorkQueue {
 public:
  /// capacity == 0 means unbounded (policy is then irrelevant).
  explicit WorkQueue(std::size_t capacity = 0,
                     BackpressurePolicy policy = BackpressurePolicy::kBlock)
      : capacity_(capacity), policy_(policy) {}

  /// Enqueue a data item, applying the backpressure policy when the queue is
  /// full. Returns true if the item was enqueued, false if it was rejected
  /// (queue closed, including while blocked waiting for space).
  bool push(T item) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (capacity_ > 0 && policy_ == BackpressurePolicy::kBlock && !forced_drop_) {
        space_cv_.wait(lock,
                       [this] { return data_count_ < capacity_ || closed_ || forced_drop_; });
      }
      if (closed_) return false;
      if (capacity_ > 0 && data_count_ >= capacity_) {
        // kDropOldest (or forced shedding): evict the oldest data entry
        // (control entries are never evicted and never count toward
        // capacity). The victim is logged for take_evicted(), so consumers
        // tracking per-patient task counts see every eviction.
        for (auto it = items_.begin(); it != items_.end(); ++it) {
          if (!it->control) {
            evicted_.push_back(std::move(it->item));
            items_.erase(it);
            --data_count_;
            ++dropped_;
            if (forced_drop_) ++forced_dropped_;
            break;
          }
        }
      }
      items_.push_back(Entry{std::move(item), false});
      ++data_count_;
    }
    pop_cv_.notify_one();
    return true;
  }

  /// Enqueue a control item: always accepted while open, never dropped or
  /// evicted, exempt from capacity. Returns false only if the queue is
  /// closed.
  bool push_control(T item) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      items_.push_back(Entry{std::move(item), true});
    }
    pop_cv_.notify_one();
    return true;
  }

  /// Enqueue a control item at the FRONT of the queue: the consumer sees it
  /// before any queued work. For control messages whose ordering relative to
  /// data is accounted for out of band (migration tokens: the hand-off
  /// protocol extracts the patient's queued chunks wherever they sit, so the
  /// token jumping the backlog is what makes stealing drain a hot shard
  /// promptly instead of after it). Never use for fences — a fence means
  /// "everything pushed before me" and must stay FIFO. Returns false only if
  /// the queue is closed.
  bool push_control_front(T item) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      items_.push_front(Entry{std::move(item), true});
    }
    pop_cv_.notify_one();
    return true;
  }

  /// Enqueue a control item just BEHIND the first queued data item (at the
  /// very front when no data is queued). This is the migration retry slot:
  /// a token whose cutoff check failed because a producer's push is still
  /// in flight must stay near the head (the hand-off should complete
  /// promptly) but must NOT monopolise it — if that producer is blocked on
  /// a full kBlock queue, a head-inserted token would be re-popped forever
  /// while the data slot the push is waiting for never frees. Landing
  /// behind one data item guarantees the consumer drains a slot between
  /// retries, so a capacity-blocked producer always makes progress.
  /// Returns false only if the queue is closed.
  bool push_control_behind_data(T item) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      auto it = items_.begin();
      while (it != items_.end() && it->control) ++it;
      // Just behind the first data entry; at the very front when only
      // control entries are queued (no data slot to yield, so promptness
      // wins — exactly push_control_front's semantics).
      items_.insert(it == items_.end() ? items_.begin() : std::next(it),
                    Entry{std::move(item), true});
    }
    pop_cv_.notify_one();
    return true;
  }

  /// Block until an item is available (returns it) or the queue is closed
  /// and drained (returns nullopt).
  std::optional<T> wait_pop() {
    std::optional<T> item;
    bool wake = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      pop_cv_.wait(lock, [this] { return !items_.empty() || closed_; });
      if (items_.empty()) return std::nullopt;
      if (!items_.front().control) --data_count_;
      item = std::move(items_.front().item);
      items_.pop_front();
      wake = space_wake_due_locked();
    }
    if (wake) space_cv_.notify_all();
    return item;
  }

  /// Like wait_pop, but gives up after `timeout`. Returns the next item when
  /// one arrives in time; otherwise nullopt, with `timed_out` distinguishing
  /// a timeout (queue still live — the caller may do idle work such as a
  /// steal attempt and pop again) from closed-and-drained (the caller should
  /// exit, exactly like wait_pop returning nullopt).
  std::optional<T> wait_pop_for(std::chrono::milliseconds timeout, bool& timed_out) {
    timed_out = false;
    std::optional<T> item;
    bool wake = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!pop_cv_.wait_for(lock, timeout, [this] { return !items_.empty() || closed_; })) {
        timed_out = true;
        return std::nullopt;
      }
      if (items_.empty()) return std::nullopt;
      if (!items_.front().control) --data_count_;
      item = std::move(items_.front().item);
      items_.pop_front();
      wake = space_wake_due_locked();
    }
    if (wake) space_cv_.notify_all();
    return item;
  }

  /// Non-blocking pop: the next item if one is queued, nullopt otherwise
  /// (regardless of closed state — a closed queue still drains). Lets a
  /// consumer coalesce everything immediately available after a blocking
  /// wait_pop, e.g. the network writer batching queued frames into one send.
  std::optional<T> try_pop() {
    std::optional<T> item;
    bool wake = false;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (items_.empty()) return std::nullopt;
      if (!items_.front().control) --data_count_;
      item = std::move(items_.front().item);
      items_.pop_front();
      wake = space_wake_due_locked();
    }
    if (wake) space_cv_.notify_all();
    return item;
  }

  /// Stop accepting items; wake blocked producers (their items are rejected)
  /// and wake the worker once the backlog drains.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    pop_cv_.notify_all();
    space_cv_.notify_all();
  }

  /// Deadline-mode load shedding: while set, push() sheds like kDropOldest
  /// regardless of the constructed policy (blocked producers are released).
  /// Clearing it restores the constructed behaviour.
  void set_forced_drop(bool forced) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      forced_drop_ = forced;
    }
    space_cv_.notify_all();
  }

  /// Drain the log of evicted data items (in eviction order). The consumer
  /// calls this each loop iteration to settle per-patient task accounting.
  std::vector<T> take_evicted() {
    const std::lock_guard<std::mutex> lock(mutex_);
    return std::exchange(evicted_, {});
  }

  /// An extracted entry: the item plus whether it was queued as control.
  struct Extracted {
    T item;
    bool control = false;
  };

  /// Atomically remove every queued entry whose item matches `pred`,
  /// appending them to `out` in queue order. Returns how many were removed.
  /// The single consumer uses this to lift one patient's backlog out of its
  /// queue for migration; per-patient FIFO order is preserved end to end.
  template <typename Pred>
  std::size_t extract_matching(Pred&& pred, std::vector<Extracted>& out) {
    std::size_t extracted = 0;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      for (auto it = items_.begin(); it != items_.end();) {
        if (pred(static_cast<const T&>(it->item))) {
          if (!it->control) --data_count_;
          out.push_back(Extracted{std::move(it->item), it->control});
          it = items_.erase(it);
          ++extracted;
        } else {
          ++it;
        }
      }
    }
    if (extracted > 0) space_cv_.notify_all();
    return extracted;
  }

  /// Put an extraction back at the FRONT of the queue, preserving its
  /// order (used when a migration attempt must be retried). Front insertion
  /// keeps the extracted entries ahead of everything queued since — their
  /// per-patient order is what matters, and they were the oldest entries.
  void reinsert_front(std::vector<Extracted>&& entries) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
        if (!it->control) ++data_count_;
        items_.push_front(Entry{std::move(it->item), it->control});
      }
    }
    pop_cv_.notify_one();
  }

  /// Data items evicted by kDropOldest since construction.
  std::size_t dropped() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
  }

  /// Subset of dropped() evicted while forced shedding was active.
  std::size_t forced_dropped() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return forced_dropped_;
  }

  /// Items currently queued (data + control).
  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }
  BackpressurePolicy policy() const { return policy_; }

 private:
  struct Entry {
    T item;
    bool control = false;
  };

  /// Low-water producer wake (called under mutex_ after a pop). Waking a
  /// capacity-blocked producer on EVERY freed slot ping-pongs two context
  /// switches per chunk: the producer refills the one slot and blocks
  /// again. Waking only once the queue has drained to half capacity lets
  /// each wake buy a capacity/2-chunk push burst. Liveness: the consumer
  /// keeps popping while items remain, so a drain that leaves producers
  /// asleep always continues down to the low-water mark (empty is below
  /// every mark); close(), set_forced_drop() and extract_matching() still
  /// wake unconditionally. Unbounded queues never have space waiters.
  bool space_wake_due_locked() const { return capacity_ > 0 && data_count_ <= capacity_ / 2; }

  const std::size_t capacity_;
  const BackpressurePolicy policy_;
  mutable std::mutex mutex_;
  std::condition_variable pop_cv_;    ///< Signalled when an item arrives / close().
  std::condition_variable space_cv_;  ///< Signalled when a data slot frees / close().
  std::deque<Entry> items_;
  std::vector<T> evicted_;      ///< Evicted data items awaiting take_evicted().
  std::size_t data_count_ = 0;  ///< Non-control entries in items_.
  std::size_t dropped_ = 0;
  std::size_t forced_dropped_ = 0;
  bool closed_ = false;
  bool forced_drop_ = false;  ///< Deadline-mode shedding override.
};

}  // namespace svt::rt
