// Bounded multi-producer FIFO feeding the per-shard worker threads.
//
// Multiple producers (any thread calling push_samples / flush) enqueue; the
// single shard worker blocks in wait_pop. close() drains gracefully: the
// worker keeps popping until the queue is empty, then wait_pop returns
// nullopt and the worker exits.
//
// Capacity and backpressure: an unbounded queue lets a producer that outruns
// extraction buffer raw ECG without limit — the pipeline OOMs instead of
// pushing back. A WorkQueue is therefore constructed with a capacity (0 =
// unbounded, the legacy behaviour) and a BackpressurePolicy describing what
// push() does when the queue holds `capacity` data items:
//
//  * kBlock      — push() blocks until the worker drains an item (or the
//                  queue is closed, in which case the item is rejected). The
//                  lossless policy: a fast producer is throttled to the
//                  pipeline's real throughput.
//  * kDropOldest — push() evicts the oldest *data* item to make room and
//                  succeeds immediately, incrementing dropped(). The
//                  freshness policy for live monitoring: when the pipeline
//                  falls behind, old telemetry is sacrificed for new.
//
// Control items (push_control: flush fences, eviction requests) are exempt
// from both policies: they are never dropped, never evicted, and do not
// count toward capacity — so a fence can always reach a worker even when
// producers have the queue saturated, and drop-oldest can never discard a
// barrier (which would deadlock the fence protocol).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace svt::rt {

/// What push() does when a bounded queue is full (see WorkQueue).
enum class BackpressurePolicy {
  kBlock,      ///< Throttle the producer until the worker catches up.
  kDropOldest  ///< Evict the oldest data item; count it in dropped().
};

template <typename T>
class WorkQueue {
 public:
  /// capacity == 0 means unbounded (policy is then irrelevant).
  explicit WorkQueue(std::size_t capacity = 0,
                     BackpressurePolicy policy = BackpressurePolicy::kBlock)
      : capacity_(capacity), policy_(policy) {}

  /// Enqueue a data item, applying the backpressure policy when the queue is
  /// full. Returns true if the item was enqueued, false if it was rejected
  /// (queue closed, including while blocked waiting for space).
  bool push(T item) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (capacity_ > 0 && policy_ == BackpressurePolicy::kBlock) {
        space_cv_.wait(lock, [this] { return data_count_ < capacity_ || closed_; });
      }
      if (closed_) return false;
      if (capacity_ > 0 && data_count_ >= capacity_) {
        // kDropOldest: evict the oldest data entry (control entries are
        // never evicted and never count toward capacity).
        for (auto it = items_.begin(); it != items_.end(); ++it) {
          if (!it->control) {
            items_.erase(it);
            --data_count_;
            ++dropped_;
            break;
          }
        }
      }
      items_.push_back(Entry{std::move(item), false});
      ++data_count_;
    }
    pop_cv_.notify_one();
    return true;
  }

  /// Enqueue a control item: always accepted while open, never dropped or
  /// evicted, exempt from capacity. Returns false only if the queue is
  /// closed.
  bool push_control(T item) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      items_.push_back(Entry{std::move(item), true});
    }
    pop_cv_.notify_one();
    return true;
  }

  /// Block until an item is available (returns it) or the queue is closed
  /// and drained (returns nullopt).
  std::optional<T> wait_pop() {
    std::optional<T> item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      pop_cv_.wait(lock, [this] { return !items_.empty() || closed_; });
      if (items_.empty()) return std::nullopt;
      if (!items_.front().control) --data_count_;
      item = std::move(items_.front().item);
      items_.pop_front();
    }
    space_cv_.notify_one();
    return item;
  }

  /// Non-blocking pop: the next item if one is queued, nullopt otherwise
  /// (regardless of closed state — a closed queue still drains). Lets a
  /// consumer coalesce everything immediately available after a blocking
  /// wait_pop, e.g. the network writer batching queued frames into one send.
  std::optional<T> try_pop() {
    std::optional<T> item;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (items_.empty()) return std::nullopt;
      if (!items_.front().control) --data_count_;
      item = std::move(items_.front().item);
      items_.pop_front();
    }
    space_cv_.notify_one();
    return item;
  }

  /// Stop accepting items; wake blocked producers (their items are rejected)
  /// and wake the worker once the backlog drains.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    pop_cv_.notify_all();
    space_cv_.notify_all();
  }

  /// Data items evicted by kDropOldest since construction.
  std::size_t dropped() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
  }

  /// Items currently queued (data + control).
  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }
  BackpressurePolicy policy() const { return policy_; }

 private:
  struct Entry {
    T item;
    bool control = false;
  };

  const std::size_t capacity_;
  const BackpressurePolicy policy_;
  mutable std::mutex mutex_;
  std::condition_variable pop_cv_;    ///< Signalled when an item arrives / close().
  std::condition_variable space_cv_;  ///< Signalled when a data slot frees / close().
  std::deque<Entry> items_;
  std::size_t data_count_ = 0;  ///< Non-control entries in items_.
  std::size_t dropped_ = 0;
  bool closed_ = false;
};

}  // namespace svt::rt
