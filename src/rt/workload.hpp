// Pluggable per-window workloads over the shared extraction substrate.
//
// The runtime used to be hardwired to one pipeline: the fixed 53-feature
// apnea vector was baked into ExtractedWindow, WindowResult, ServableModel
// resolution and the net result frame. A Workload generalises the
// per-window half of the pipeline: it owns its feature *schema* (count +
// names) and its extraction hook over the per-patient substrate the
// extractor computes ONCE per window regardless of how many workloads
// consume it — the sliced RR tachogram, the resampled mean-removed EDR
// series, and (on the segment-cached path) the memoized window PSD:
//
//                      ┌ Workload 0 (apnea, 53) ─> ExtractedWindow{w=0}
//   beat ring ─> RR ───┤
//            └─> EDR ──┴ Workload 1 (AF,     3) ─> ExtractedWindow{w=1}
//
// What a workload does NOT own: windowing (geometry is per stream, shared),
// QRS detection, the quality gate, or classification back ends — models are
// resolved per (workload, patient) from the ModelRegistry, so the servable
// classifier family of a workload is simply its column of the registry.
//
// Bit-exactness contract: a config whose `workloads` list is empty serves
// exactly {apnea_workload()} as workload 0, and ApneaWorkload::extract runs
// the same span-based kernels (and the same PSD gates) as the pre-workload
// extractor did on both the legacy whole-window path and the segment-cached
// path — so single-workload results are bit-identical to the old engine.
// Extraction hooks must be pure (no per-call state beyond the scratch):
// workloads are shared across shards and threads by const pointer.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>

#include "dsp/spectral.hpp"
#include "features/feature_scratch.hpp"

namespace svt::rt {

/// Upper bound on any workload's per-window feature count: keeps
/// ExtractedWindow fixed-size (no heap in the emission hot path). The apnea
/// vector (53) is the largest in-tree schema.
inline constexpr std::size_t kMaxWorkloadFeatures = 64;

/// Lazily provides the window's Welch PSD on the segment-cached path (the
/// average of memoized per-segment periodograms). Returns null when the PSD
/// gates fail (series shorter than one Welch segment minimum, or constant),
/// in which case the consumer keeps its zero-filled defaults — the same
/// semantics as compute_psd_features' early-outs.
class WindowPsdSource {
 public:
  virtual ~WindowPsdSource() = default;
  virtual const dsp::PsdEstimate* window_psd(features::FeatureScratch& scratch) = 0;
};

/// The per-window inputs every workload extracts from, assembled once per
/// window by the extractor. Spans point into extractor-owned scratch: valid
/// for the duration of one extract() call only.
struct WindowSubstrate {
  std::span<const double> rr_s;  ///< RR intervals [s], window-local.
  std::span<const double> edr;   ///< Uniform mean-removed EDR series.
  double edr_fs_hz = 0.0;
  std::size_t num_beats = 0;     ///< R peaks inside the window.
  /// Non-null on the segment-cached path; null selects the direct
  /// whole-window PSD computation (the legacy path's semantics).
  WindowPsdSource* psd = nullptr;
};

class Workload {
 public:
  virtual ~Workload() = default;

  /// Stable identifier ("apnea", "af"): negotiated over the wire and used
  /// in bench metric names.
  virtual const char* name() const = 0;

  /// Schema: how many features extract() writes, and what each is called.
  /// num_features() must be in [1, kMaxWorkloadFeatures] and constant for
  /// the object's lifetime.
  virtual std::size_t num_features() const = 0;
  virtual std::string feature_name(std::size_t index) const = 0;

  /// Fill `out` (exactly num_features() long) from the substrate. Must be
  /// pure and thread-compatible: called concurrently from different workers
  /// with distinct scratches.
  virtual void extract(const WindowSubstrate& substrate, features::FeatureScratch& scratch,
                       std::span<double> out) const = 0;
};

/// The paper's apnea pipeline as a workload: the full 53-feature vector
/// (8 HRV + 7 Lorentz + 9 AR + 29 PSD), bit-identical to the pre-workload
/// extractor on both emission paths.
std::shared_ptr<const Workload> apnea_workload();

/// AF screening from the same RR series: {rmssd_ratio, turning_point_ratio,
/// shannon_entropy} (see features/af_features.hpp for the NaN edge
/// contract).
std::shared_ptr<const Workload> af_workload();

}  // namespace svt::rt
