// Continuous sharded multi-patient serving engine with a ward-scale
// scheduler: pluggable placement, whole-patient work stealing, and a
// deadline controller.
//
// Patients are sharded across N worker threads; each worker owns a private
// WindowExtractor AND classifies its own patients' windows, delivering
// results continuously — there is no global barrier anywhere in the
// steady-state path:
//
//   push_samples(p, chunk)
//        │ route table (placement policy on first sight)
//        ▼                       ┌────────────────────────────────────────┐
//   ┌─────────────┐ coalesced    │ WindowExtractor (lane packs: queued    │
//   │ bounded     │ round of     │  patients' chunks step SIMD lockstep)  │
//   │ shard queue │ ≤8 patients' │  -> registry snapshot (per batch)      │
//   │ (x N)       │ chunks       │  -> prepare + packed batch kernel      │
//   └─────────────┘  block/drop  │  -> ResultSink(batch)   ──────────────────> results
//                                └────────────────────────────────────────┘
//
// Scheduling (all through rt::EngineOptions):
//
//  * Placement — a patient's home shard is decided by the pluggable
//    rt::PlacementPolicy exactly once, when the engine first sees the id;
//    the decision is cached in the route table. The default
//    FibonacciPlacement reproduces the engine's historical static hash;
//    LeastLoadedPlacement spreads wards whose ids collide under it.
//
//  * Work stealing (StealConfig) — an idle worker steals whole PATIENTS,
//    never chunks: it picks the patient with the deepest backlog on another
//    shard and posts a migration token to the victim. The victim executes
//    the hand-off at a batch boundary, atomically under the routing lock:
//    it lifts the patient's entire queued backlog out of its queue
//    (extract_matching), verifies the cutoff is exact against the route
//    table's issued/settled counters (an in-flight producer push retries
//    the token), detaches the patient's extraction state from its lane
//    pack, re-homes the route, and forwards state + backlog to the thief.
//    The thief lazily attaches the state before the patient's next batch.
//    Because lanes compute bit-identically regardless of pack composition
//    (see ecg::LaneQrsDetector), per-patient results are bit-exact under
//    ANY steal schedule — stealing changes where a patient runs, never
//    what it computes. Chunks therefore migrate only between batches and a
//    patient is always processed by exactly one worker at a time.
//
//  * Deadline mode (DeadlineConfig) — a controller thread watches the
//    rolling p99 of delivery_latencies_s() against a target and degrades
//    BEFORE breach: level 1 widens the effective window stride x2 (fewer
//    overlapping windows per sample), level 2 widens x4, level 3 forces
//    drop-oldest shedding on the shard queues. It backs off level by level
//    once the tail holds below recover_fraction * target. Every action is
//    counted in SchedulerStats (scheduler_stats() / stats().scheduler).
//
// Lane coalescing: after popping one chunk, a worker drains whatever other
// patients' chunks are already queued (up to the lane-pack width) and
// extracts the round through WindowExtractor::push_batch, so a backlogged
// shard steps several patients' identical filter chains per instruction.
// Coalescing never reorders: a second chunk for a patient already in the
// round — or any control task — ends the round and is processed after it.
//
// Continuous delivery: every chunk that completes windows is classified
// immediately on the shard's worker (per-patient batch affinity) and handed
// to the ResultSink right away. Delivery guarantees:
//
//  * each sink invocation is ONE patient's windows, in time order;
//  * invocations for a given patient arrive in stream order (the patient's
//    chunks are processed serially by whichever worker owns it — migration
//    hands the patient off wholesale, so ownership is never shared);
//  * different patients' batches may be delivered concurrently from
//    different workers — the sink must be thread-safe across patients.
//
// Backpressure: each shard queue is bounded (EngineOptions::queue_capacity)
// with a configurable policy — kBlock throttles producers to pipeline
// throughput (lossless), kDropOldest evicts the stalest queued chunk and
// counts it in dropped_chunks() (freshest-data-wins for live monitoring).
// Fences and migrations bypass capacity, so flush() and stealing work even
// against saturated queues.
//
// flush() is retained as a drain-and-fence compatibility wrapper: it fences
// every shard (waits until everything pushed before the call has been
// extracted, classified, and delivered) and, when no sink is installed,
// returns the windows collected since the last flush sorted by (patient,
// start time). With a sink installed, flush() is a pure fence and returns
// an empty vector. Migrations pause while a flush is fencing (a hand-off
// must not move queued chunks past a fence already posted to the
// destination) and resume after it completes; flush() then waits for them
// to resolve, so the fence is total — once it returns, the route table and
// scheduler counters are settled too, and shard_of()/scheduler_stats() read
// race-free.
//
// Hot-swap fencing: workers snapshot a patient's model from the registry
// once per classified batch, so an install() takes effect at the patient's
// next batch boundary — never mid-batch.
//
// Determinism: a patient's chunks are processed serially by one worker at a
// time, in push order, through per-window arithmetic identical to the
// single-threaded StreamClassifier; detach/attach carries the exact filter,
// ring, and threshold state across shards. Per-patient results are
// therefore bit-identical for ANY worker count, placement, chunk
// interleaving, delivery mode, or migration schedule (asserted by
// tests/test_rt_shard.cpp, test_rt_continuous.cpp, and test_rt_sched.cpp) —
// as long as the deadline controller is off (stride widening deliberately
// trades window density for latency).
//
// Thread-safety contract: push_samples may be called from many threads
// concurrently (and may block under the kBlock policy); flush() must not
// run concurrently with another flush(). Registry installs are safe at any
// time from any thread.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "rt/engine.hpp"
#include "rt/model_registry.hpp"
#include "rt/stream_classifier.hpp"
#include "rt/window_extractor.hpp"
#include "rt/work_queue.hpp"

namespace svt::rt {

class ShardedStreamClassifier final : public Engine {
 public:
  /// Unified constructor: everything beyond the registry and stream config
  /// comes through rt::EngineOptions (worker count, queue sizing, placement,
  /// stealing, deadline mode, sink). Throws std::invalid_argument on a null
  /// registry, a bad stream config (same rules as WindowExtractor), or
  /// deadline mode over an unbounded queue (deadline.target_p99_s > 0 with
  /// queue_capacity == 0 — forced shedding needs a bound to evict against).
  ShardedStreamClassifier(std::shared_ptr<ModelRegistry> registry, StreamConfig config = {},
                          EngineOptions options = {});

  /// Unified constructor over one cohort-wide detector (the registry holds
  /// it as the workload-0 default; per-patient and per-workload models can
  /// still be installed later).
  ShardedStreamClassifier(const core::TailoredDetector& detector, StreamConfig config,
                          EngineOptions options = {});
  // The pre-scheduler positional (registry, config, num_workers, options,
  // sink) constructors are gone: every in-repo caller moved to
  // rt::EngineOptions when the multi-workload API landed. Set
  // options.num_workers / options.sink instead.

  ~ShardedStreamClassifier() override;
  ShardedStreamClassifier(const ShardedStreamClassifier&) = delete;
  ShardedStreamClassifier& operator=(const ShardedStreamClassifier&) = delete;

  /// Install (or clear, with an empty function) the continuous delivery
  /// sink. Prefer EngineOptions::sink at construction; this mutator exists
  /// for drivers that re-point delivery between runs. The engine must be
  /// QUIESCENT — every pushed task settled, e.g. right after construction or
  /// a flush() — because a batch classified concurrently with the swap could
  /// be delivered to either sink. Throws std::logic_error when work is in
  /// flight.
  void set_result_sink(ResultSink sink);

  /// Route a chunk of raw ECG samples (mV) to the patient's shard. Under
  /// kBlock backpressure this may block until the shard drains a chunk; under
  /// kDropOldest it returns immediately (possibly evicting the shard's
  /// stalest queued chunk). Safe to call from multiple threads.
  void push_samples(int patient_id, std::span<const double> samples_mv) override;

  /// Drain-and-fence: wait until every chunk pushed before this call has
  /// been extracted, classified, and delivered. Without a sink, returns the
  /// results collected since the last flush, sorted by (patient, start
  /// time); with a sink, returns empty. Rethrows the first classification
  /// error a worker hit since the last flush (e.g. a patient resolving to
  /// no model). A throwing flush loses nothing: windows other patients
  /// classified successfully stay collected and are returned by the next
  /// flush(). Error-to-fence attribution is best-effort — an error from a
  /// chunk pushed concurrently with this flush may be reported by it or by
  /// the next one.
  std::vector<WindowResult> flush() override;

  /// End a finite patient stream: the owning worker flushes the detector
  /// tail, classifies and delivers the trailing windows the live path holds
  /// back (see WindowExtractor::end_patient), and drops the patient's
  /// stream state. Asynchronous like push_samples, so the patient's
  /// existence cannot be answered synchronously: always returns true; fence
  /// with flush() to wait for the tail delivery.
  bool end_stream(int patient_id) override;

  /// Drop a patient's extraction state (detector, beat ring, window phase)
  /// on their shard. Asynchronous: takes effect after chunks already queued
  /// for the shard; fence with flush() for a synchronous guarantee. Frees
  /// memory for patients that left the ward — the registry entry (and the
  /// patient's route) are untouched.
  void evict_patient(int patient_id);

  /// Which shard (worker) currently serves a patient. For a patient the
  /// engine has seen, this reads the route table (exact, but stale the
  /// moment a migration lands). For an unseen patient it asks the placement
  /// policy prospectively — exact for stateless policies (the default
  /// Fibonacci hash), a load-dependent guess otherwise. Stable for the
  /// engine's lifetime when stealing is off, rebalance_patient is unused,
  /// and placement is the default.
  std::size_t shard_of(int patient_id) const;

  /// Explicitly re-home a patient onto `dest` (same hand-off protocol as a
  /// steal, counted in SchedulerStats::steals/migrations). Asynchronous:
  /// the victim migrates at its next batch boundary; fence with flush() for
  /// a synchronous guarantee. Unknown patients are routed to `dest` for
  /// when they first appear. No-op if the patient already lives on `dest`
  /// or a migration is already pending. Throws std::invalid_argument on an
  /// out-of-range shard. The deterministic lever the churn tests drive.
  void rebalance_patient(int patient_id, std::size_t dest);

  std::size_t num_workers() const { return shards_.size(); }

  /// Windows rejected for having fewer than min_beats R peaks (exact after
  /// a flush; may lag mid-stream while workers are extracting).
  std::size_t rejected_windows() const { return rejected_.load(); }

  /// Sample chunks evicted by the kDropOldest policy (or deadline shedding)
  /// across all shards.
  std::size_t dropped_chunks() const;

  /// Windows delivered (to the sink or the collection buffer) so far.
  std::size_t delivered_windows() const { return delivered_.load(); }

  /// Scheduler counters: steals issued, migrations landed, chunks moved,
  /// deadline actions. Monotonic except deadline_level (current state).
  SchedulerStats scheduler_stats() const;

  /// Aggregate segment-cache counters (hits / misses / evictions of the
  /// incremental feature pipeline) summed over every shard's extractor.
  /// All zeros when the stream configuration is not stride-aligned.
  /// Quiescent read: fence with flush() first — the extractors are
  /// worker-owned, and the fence is what orders their counters with this
  /// call (same contract as an exact shard_of()).
  features::SegmentCacheStats cache_stats() const;

  /// Aggregate quality-gate counters summed over every shard's extractor.
  /// All zeros when the gate is off. Quiescent read like cache_stats():
  /// fence with flush() first — gate state migrates with the patient, so
  /// only a fence makes the per-shard sums coherent.
  ecg::QualityStats quality_stats() const;

  /// Uniform counters (rt::Engine). windows_annotated/windows_suppressed
  /// are maintained by worker-side watermarks (like rejected_windows), so
  /// they are safe to read mid-stream and exact after a flush.
  EngineStats stats() const override;

  /// Per-batch delivery latencies in seconds: for every delivered batch,
  /// the time from its chunk's push_samples() submission to the sink (or
  /// collection buffer) receiving the classified windows — under kBlock
  /// backpressure this deliberately includes the producer's wait for queue
  /// space, since that is part of the latency a submitter observes. Bounded:
  /// each shard keeps a fixed-size reservoir of the most recent batches
  /// (kLatencyReservoir), so long-running engines report a recent-window
  /// percentile view at constant memory. Drives the continuous path's
  /// p50/p99 tracking in bench/rt_throughput AND the deadline controller.
  /// Snapshot is consistent mid-stream (per-shard mutex); for an exact
  /// account of everything pushed, fence with flush() first.
  std::vector<double> delivery_latencies_s() const;

  ModelRegistry& registry() { return *registry_; }
  const ModelRegistry& registry() const { return *registry_; }
  const StreamConfig& config() const { return config_; }
  const EngineOptions& options() const { return options_; }

  /// The resolved workload list (every shard serves the same list; see
  /// StreamConfig::workloads).
  const std::vector<std::shared_ptr<const Workload>>& workloads() const {
    return shards_.front()->extractor.workloads();
  }
  std::size_t num_workloads() const { return workloads().size(); }

 private:
  struct Task {
    int patient_id = 0;
    std::vector<double> samples;
    bool fence = false;
    bool evict = false;
    bool end_stream = false;
    bool migrate = false;     ///< Migration token: victim hands patient to dest.
    std::size_t dest = 0;     ///< Thief shard (migrate tokens only).
    std::chrono::steady_clock::time_point enqueued;  ///< For delivery latency.
  };

  /// Per-worker classification staging, reused across batches so the serve
  /// hot loop is allocation-free once warm (one per shard, worker-only).
  struct ClassifyScratch {
    std::vector<std::vector<double>> rows;  ///< Prepared (selected+scaled) rows.
    std::vector<double> values;
    std::vector<WindowResult> batch;
    std::vector<std::size_t> index;  ///< Batch positions of one workload's windows.
    KernelScratch kernel;
  };

  struct Shard {
    explicit Shard(const StreamConfig& config, const EngineOptions& options)
        : tasks(options.queue_capacity, options.backpressure), extractor(config) {}
    WorkQueue<Task> tasks;
    WindowExtractor extractor;          ///< Touched only by the worker thread.
    ClassifyScratch scratch;            ///< Touched only by the worker thread.
    std::size_t rejected_reported = 0;  ///< Worker-local watermark.
    std::size_t annotated_reported = 0;   ///< Quality watermarks (worker-local,
    std::size_t suppressed_reported = 0;  ///< against the extractor's counters).
    mutable std::mutex latency_mutex;   ///< Guards the latency reservoir.
    std::vector<double> latencies_s;    ///< Most recent delivered batches.
    std::size_t latency_next = 0;       ///< Overwrite cursor once full.
    /// Recycled Task sample buffers: the worker returns each drained chunk's
    /// vector here and push_samples reuses it for the next chunk, so the
    /// steady-state ingest path stops allocating (and, more importantly,
    /// keeps re-copying into the same cache-warm pages instead of marching
    /// through fresh cold memory — a measured ~20x per-chunk cost swing when
    /// the queue is shallow). Leaf lock: never held with another lock.
    std::mutex pool_mutex;
    std::vector<std::vector<double>> sample_pool;
    std::thread worker;
  };
  /// Buffers kept per shard; beyond this they are freed (bounds pool memory
  /// to kSamplePoolCap x chunk size per shard). Sized to cover a bounded
  /// queue's refill burst — a blocked producer wakes when the queue drains
  /// to half of a typical capacity (<= 512), and every push in that burst
  /// should find a recycled buffer rather than a cold allocation.
  static constexpr std::size_t kSamplePoolCap = 64;

  /// One patient's routing state. `issued` counts per-patient tasks routed
  /// (data + end_stream + evict); `settled` counts those consumed by a
  /// worker or evicted by backpressure. issued == settled means no task for
  /// the patient is queued or executing — the migration cutoff invariant.
  struct RouteEntry {
    std::size_t shard = 0;
    std::size_t issued = 0;
    std::size_t settled = 0;
    bool migrating = false;  ///< A migration token is pending for the patient.
    /// Extraction state parked mid-migration: detached by the victim, owned
    /// here until the new shard's worker lazily attaches it.
    std::unique_ptr<WindowExtractor::DetachedPatient> parked;
  };

  /// Per-shard bound on the delivery-latency reservoir: once full, the
  /// oldest samples are overwritten, so a long-running engine keeps a
  /// recent-window percentile view at fixed memory.
  static constexpr std::size_t kLatencyReservoir = 4096;

  /// Idle-worker poll period: a worker whose queue is empty wakes this often
  /// (stealing mode only — otherwise workers block) so a successful steal or
  /// fresh work is picked up promptly.
  static constexpr std::chrono::milliseconds kIdlePoll{1};

  /// Steal-scan backoff cap, in idle polls. The steal scan is O(patients)
  /// under route_mutex_ — the same lock the producer hot path takes — so a
  /// mostly-idle worker must not run it every poll: after each failed scan
  /// the polls between scans double (1, 2, 4, ...) up to this cap (~64 ms at
  /// kIdlePoll), and any popped task or successful steal resets the cadence.
  static constexpr std::size_t kMaxStealBackoffPolls = 64;

  void worker_loop(std::size_t self, Shard& shard);
  void classify_batch(int patient_id, std::span<const ExtractedWindow> windows, Shard& shard);
  void record_latency(Shard& shard, std::chrono::steady_clock::time_point enqueued);
  void deliver(std::span<const WindowResult> batch);

  /// Producer side: find-or-create the patient's route (consulting the
  /// placement policy on first sight), count the task as issued, and return
  /// the shard to push to. The shard choice and the issued increment are
  /// atomic under route_mutex_ — the invariant the migration cutoff relies
  /// on.
  std::size_t route_for_push(int patient_id);

  /// Worker side: drain the shard queue's eviction log and settle each
  /// evicted task's patient. Called every loop iteration (and inside the
  /// migration cutoff check). `locked` variant expects route_mutex_ held.
  void settle_evicted(Shard& shard);
  void settle_evicted_locked(Shard& shard);
  void settle_patient_locked(int patient_id);

  /// Worker side: attach the patient's parked extraction state if this
  /// shard now owns a freshly migrated patient (lazy attach, before the
  /// patient's next batch).
  void ensure_attached(std::size_t self, Shard& shard, int patient_id);

  /// Victim side: execute (or retry) a migration token at a batch boundary.
  void handle_migration(std::size_t self, Shard& shard, const Task& token);

  /// Thief side: scan the route table for the deepest-backlog patient on
  /// another shard and post a migration token for it. Returns whether a
  /// token was issued (drives the idle scan backoff).
  bool maybe_steal(std::size_t self);

  /// Deadline controller (runs on deadline_thread_ when
  /// options_.deadline.target_p99_s > 0).
  void deadline_loop();
  void apply_deadline_level(int level);

  std::shared_ptr<ModelRegistry> registry_;
  StreamConfig config_;
  EngineOptions options_;
  std::shared_ptr<PlacementPolicy> placement_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Routing (route_mutex_ is the outermost lock: queue mutexes may be taken
  // under it — via push/extract/size — but never the reverse).
  mutable std::mutex route_mutex_;
  std::unordered_map<int, RouteEntry> routes_;
  std::vector<std::size_t> shard_patients_;  ///< Patients routed per shard.
  bool fence_pending_ = false;  ///< A flush is fencing: migrations pause.

  // Continuous delivery (sink snapshotted per batch under sink_mutex_).
  std::mutex sink_mutex_;
  std::shared_ptr<const ResultSink> sink_;

  // Compatibility collection buffer (used only when no sink is installed).
  std::mutex collected_mutex_;
  std::vector<WindowResult> collected_;

  // Fence protocol (guarded by fence_mutex_).
  std::mutex fence_mutex_;
  std::condition_variable fence_cv_;
  std::size_t fences_reached_ = 0;  ///< Shards done with the current fence.

  // First classification error since the last flush (guarded by error_mutex_).
  std::mutex error_mutex_;
  std::exception_ptr error_;

  // Deadline controller.
  std::thread deadline_thread_;
  std::mutex deadline_mutex_;
  std::condition_variable deadline_cv_;
  bool deadline_stop_ = false;
  std::atomic<std::size_t> stride_factor_{1};  ///< Workers apply per round.
  std::atomic<int> deadline_level_{0};

  // Scheduler counters.
  std::atomic<std::size_t> steals_{0};
  std::atomic<std::size_t> migrations_{0};
  std::atomic<std::size_t> migrated_chunks_{0};
  std::atomic<std::size_t> stride_widenings_{0};
  std::atomic<std::size_t> shed_activations_{0};

  std::atomic<std::size_t> rejected_{0};
  std::atomic<std::size_t> delivered_{0};
  std::atomic<std::size_t> annotated_{0};
  std::atomic<std::size_t> suppressed_{0};
};

}  // namespace svt::rt
