// Continuous sharded multi-patient serving engine.
//
// Patients are consistently sharded across N worker threads; each worker
// owns a private WindowExtractor AND classifies its own patients' windows,
// delivering results continuously — there is no global barrier anywhere in
// the steady-state path:
//
//   push_samples(p, chunk)
//        │ shard_of(p)                      worker thread (one per shard)
//        ▼                       ┌────────────────────────────────────────┐
//   ┌─────────────┐ coalesced    │ WindowExtractor (lane packs: queued    │
//   │ bounded     │ round of     │  patients' chunks step SIMD lockstep)  │
//   │ shard queue │ ≤8 patients' │  -> registry snapshot (per batch)      │
//   │ (x N)       │ chunks       │  -> prepare + packed batch kernel      │
//   └─────────────┘  block/drop  │  -> ResultSink(batch)   ──────────────────> results
//                                └────────────────────────────────────────┘
//
// Lane coalescing: after blocking on one chunk, a worker drains whatever
// other patients' chunks are already queued (up to the lane-pack width) and
// extracts the round through WindowExtractor::push_batch, so a backlogged
// shard steps several patients' identical filter chains per instruction.
// Coalescing never reorders: a second chunk for a patient already in the
// round — or any control task — ends the round and is processed after it,
// so per-patient stream order, fence semantics, and per-patient bit-
// exactness are untouched (an idle shard degenerates to one chunk per
// round, the scalar-equivalent path).
//
// Continuous delivery: every chunk that completes windows is classified
// immediately on the shard's worker (per-patient batch affinity: a patient's
// windows are extracted AND classified by the one worker that owns the
// patient), and the classified batch is handed to the ResultSink right away.
// Delivery guarantees:
//
//  * each sink invocation is ONE patient's windows, in time order;
//  * invocations for a given patient arrive in stream order (the patient's
//    chunks are processed serially by one worker);
//  * different patients' batches may be delivered concurrently from
//    different workers — the sink must be thread-safe across patients.
//
// Backpressure: each shard queue is bounded (EngineOptions::queue_capacity)
// with a configurable policy — kBlock throttles producers to pipeline
// throughput (lossless), kDropOldest evicts the stalest queued chunk and
// counts it in dropped_chunks() (freshest-data-wins for live monitoring).
// Fences bypass capacity, so flush() works even against saturated queues.
//
// flush() is retained as a drain-and-fence compatibility wrapper: it fences
// every shard (waits until everything pushed before the call has been
// extracted, classified, and delivered) and, when no sink is installed,
// returns the windows collected since the last flush sorted by (patient,
// start time) — the PR-2 barrier-mode API, now just a view over the
// continuous path. With a sink installed, flush() is a pure fence and
// returns an empty vector.
//
// Hot-swap fencing: workers snapshot a patient's model from the registry
// once per classified batch, so an install() takes effect at the patient's
// next batch boundary — never mid-batch — and a fence (flush()) guarantees
// every subsequent window is served by the new model. This is a tighter
// fence than PR 2's once-per-flush snapshot: a swap lands within one chunk's
// latency instead of at the next global flush.
//
// Determinism: a patient's windows are extracted by exactly one worker, in
// push order, through per-window arithmetic identical to the single-threaded
// StreamClassifier; the batch kernels are bit-exact under any batch
// composition. Per-patient results are therefore bit-identical for ANY
// worker count, shard assignment, chunk interleaving, or delivery mode
// (asserted by tests/test_rt_shard.cpp and tests/test_rt_continuous.cpp).
//
// Thread-safety contract: push_samples may be called from many threads
// concurrently (and may block under the kBlock policy); flush() must not run
// concurrently with another flush(). Registry installs are safe at any time
// from any thread.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "rt/model_registry.hpp"
#include "rt/stream_classifier.hpp"
#include "rt/window_extractor.hpp"
#include "rt/work_queue.hpp"

namespace svt::rt {

/// Receives classified windows as soon as a patient's batch completes. Each
/// call is one patient's windows in time order; calls for one patient are in
/// stream order; calls for different patients may be concurrent.
using ResultSink = std::function<void(std::span<const WindowResult>)>;

/// Queue sizing and backpressure for the shard queues.
struct EngineOptions {
  /// Maximum raw-sample chunks queued per shard; 0 = unbounded (legacy).
  std::size_t queue_capacity = 1024;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
};

class ShardedStreamClassifier {
 public:
  /// Serve per-patient models from `registry` with `num_workers` worker
  /// threads (clamped to >= 1). Throws std::invalid_argument on a null
  /// registry or a bad stream config (same rules as WindowExtractor). If
  /// `sink` is set, results are delivered continuously through it and
  /// flush() becomes a pure fence.
  ShardedStreamClassifier(std::shared_ptr<ModelRegistry> registry, StreamConfig config = {},
                          std::size_t num_workers = 1, EngineOptions options = {},
                          ResultSink sink = {});

  /// Convenience: serve one cohort-wide detector (the registry holds it as
  /// the default; per-patient models can still be installed later).
  ShardedStreamClassifier(const core::TailoredDetector& detector, StreamConfig config = {},
                          std::size_t num_workers = 1, EngineOptions options = {},
                          ResultSink sink = {});

  ~ShardedStreamClassifier();
  ShardedStreamClassifier(const ShardedStreamClassifier&) = delete;
  ShardedStreamClassifier& operator=(const ShardedStreamClassifier&) = delete;

  /// Install (or clear, with an empty function) the continuous delivery
  /// sink. Call while no samples are in flight (e.g. right after
  /// construction or after a flush()); batches classified after the call see
  /// the new sink. With a sink installed the internal collection buffer is
  /// bypassed and flush() returns an empty vector.
  void set_result_sink(ResultSink sink);

  /// Route a chunk of raw ECG samples (mV) to the patient's shard. Under
  /// kBlock backpressure this may block until the shard drains a chunk; under
  /// kDropOldest it returns immediately (possibly evicting the shard's
  /// stalest queued chunk). Safe to call from multiple threads.
  void push_samples(int patient_id, std::span<const double> samples_mv);

  /// Drain-and-fence: wait until every chunk pushed before this call has
  /// been extracted, classified, and delivered. Without a sink, returns the
  /// results collected since the last flush, sorted by (patient, start
  /// time); with a sink, returns empty. Rethrows the first classification
  /// error a worker hit since the last flush (e.g. a patient resolving to
  /// no model). A throwing flush loses nothing: windows other patients
  /// classified successfully stay collected and are returned by the next
  /// flush(). Error-to-fence attribution is best-effort — an error from a
  /// chunk pushed concurrently with this flush may be reported by it or by
  /// the next one.
  std::vector<WindowResult> flush();

  /// End a finite patient stream: the owning worker flushes the detector
  /// tail, classifies and delivers the trailing windows the live path holds
  /// back (see WindowExtractor::end_patient), and drops the patient's
  /// stream state. Asynchronous like push_samples; fence with flush() to
  /// wait for the tail delivery. Live monitoring streams never end; use
  /// this when replaying finite recordings so no full window is lost.
  void end_stream(int patient_id);

  /// Drop a patient's extraction state (detector, beat ring, window phase)
  /// on their shard. Asynchronous: takes effect after chunks already queued
  /// for the shard; fence with flush() for a synchronous guarantee. Frees
  /// memory for patients that left the ward — the registry entry is
  /// untouched.
  void evict_patient(int patient_id);

  /// Which shard (worker) serves a patient; stable for the engine's lifetime.
  std::size_t shard_of(int patient_id) const;

  std::size_t num_workers() const { return shards_.size(); }

  /// Windows rejected for having fewer than min_beats R peaks (exact after
  /// a flush; may lag mid-stream while workers are extracting).
  std::size_t rejected_windows() const { return rejected_.load(); }

  /// Sample chunks evicted by the kDropOldest policy across all shards.
  std::size_t dropped_chunks() const;

  /// Windows delivered (to the sink or the collection buffer) so far.
  std::size_t delivered_windows() const { return delivered_.load(); }

  /// Per-batch delivery latencies in seconds: for every delivered batch,
  /// the time from its chunk's push_samples() submission to the sink (or
  /// collection buffer) receiving the classified windows — under kBlock
  /// backpressure this deliberately includes the producer's wait for queue
  /// space, since that is part of the latency a submitter observes. Bounded:
  /// each
  /// shard keeps a fixed-size reservoir of the most recent batches
  /// (kLatencyReservoir), so long-running engines report a recent-window
  /// percentile view at constant memory. Drives the continuous path's
  /// p50/p99 tracking in bench/rt_throughput. Snapshot is consistent
  /// mid-stream (per-shard mutex); for an exact account of everything
  /// pushed, fence with flush() first.
  std::vector<double> delivery_latencies_s() const;

  ModelRegistry& registry() { return *registry_; }
  const ModelRegistry& registry() const { return *registry_; }
  const StreamConfig& config() const { return config_; }
  const EngineOptions& options() const { return options_; }

 private:
  struct Task {
    int patient_id = 0;
    std::vector<double> samples;
    bool fence = false;
    bool evict = false;
    bool end_stream = false;
    std::chrono::steady_clock::time_point enqueued;  ///< For delivery latency.
  };

  /// Per-worker classification staging, reused across batches so the serve
  /// hot loop is allocation-free once warm (one per shard, worker-only).
  struct ClassifyScratch {
    std::vector<std::vector<double>> rows;  ///< Prepared (selected+scaled) rows.
    std::vector<double> values;
    std::vector<WindowResult> batch;
    KernelScratch kernel;
  };

  struct Shard {
    explicit Shard(const StreamConfig& config, const EngineOptions& options)
        : tasks(options.queue_capacity, options.backpressure), extractor(config) {}
    WorkQueue<Task> tasks;
    WindowExtractor extractor;          ///< Touched only by the worker thread.
    ClassifyScratch scratch;            ///< Touched only by the worker thread.
    std::size_t rejected_reported = 0;  ///< Worker-local watermark.
    mutable std::mutex latency_mutex;   ///< Guards the latency reservoir.
    std::vector<double> latencies_s;    ///< Most recent delivered batches.
    std::size_t latency_next = 0;       ///< Overwrite cursor once full.
    std::thread worker;
  };

  /// Per-shard bound on the delivery-latency reservoir: once full, the
  /// oldest samples are overwritten, so a long-running engine keeps a
  /// recent-window percentile view at fixed memory.
  static constexpr std::size_t kLatencyReservoir = 4096;

  void worker_loop(Shard& shard);
  void classify_batch(int patient_id, std::span<const ExtractedWindow> windows, Shard& shard);
  void record_latency(Shard& shard, std::chrono::steady_clock::time_point enqueued);
  void deliver(std::span<const WindowResult> batch);

  std::shared_ptr<ModelRegistry> registry_;
  StreamConfig config_;
  EngineOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Continuous delivery (sink snapshotted per batch under sink_mutex_).
  std::mutex sink_mutex_;
  std::shared_ptr<const ResultSink> sink_;

  // Compatibility collection buffer (used only when no sink is installed).
  std::mutex collected_mutex_;
  std::vector<WindowResult> collected_;

  // Fence protocol (guarded by fence_mutex_).
  std::mutex fence_mutex_;
  std::condition_variable fence_cv_;
  std::size_t fences_reached_ = 0;  ///< Shards done with the current fence.

  // First classification error since the last flush (guarded by error_mutex_).
  std::mutex error_mutex_;
  std::exception_ptr error_;

  std::atomic<std::size_t> rejected_{0};
  std::atomic<std::size_t> delivered_{0};
};

}  // namespace svt::rt
