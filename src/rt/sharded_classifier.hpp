// Sharded, pipelined multi-patient serving engine.
//
// Patients are consistently sharded across N worker threads; each worker
// owns a private WindowExtractor and runs the expensive extraction stage
// (QRS -> RR/EDR -> 53 features) concurrently with the callers that push
// samples AND with the classification stage that drains completed windows:
//
//   push_samples(p, chunk)            flush()  [caller thread]
//        │ shard_of(p)                   │ drains as rows appear
//        ▼                               ▼
//   ┌─────────────┐  chunk   ┌────────────────┐  rows   ┌──────────────────┐
//   │ shard task  │ ───────> │ worker thread: │ ──────> │ snapshot model   │
//   │ queue (x N) │          │ WindowExtractor│  (x N)  │ per patient,     │
//   └─────────────┘          │ -> raw windows │         │ prepare + packed │
//                            └────────────────┘         │ batch kernels    │
//                                                       └──────────────────┘
//
// flush() is the pipeline barrier: it enqueues a barrier token per shard and
// classifies completed windows in batches *while* the workers are still
// extracting, so feature extraction overlaps batched classification. It
// returns when every shard has extracted everything pushed before the flush
// and every window is classified. Models come from a ModelRegistry snapshot
// taken once per patient per flush, which gives hot-swap a crisp semantic:
// a model installed during a flush takes effect no later than the next
// flush, and never splits a patient's flush between two models.
//
// Determinism: a patient's windows are extracted by exactly one worker, in
// push order, through per-window arithmetic identical to the single-threaded
// StreamClassifier; the batch kernels are bit-exact under any batch
// composition. Per-patient results are therefore bit-identical for ANY
// worker count, shard assignment, or chunk interleaving (asserted by
// tests/test_rt_shard.cpp). Results are returned sorted by (patient, time),
// which is also deterministic.
//
// Thread-safety contract: push_samples may be called from many threads
// concurrently; flush() must not run concurrently with another flush().
// Registry installs are safe at any time from any thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "rt/model_registry.hpp"
#include "rt/stream_classifier.hpp"
#include "rt/window_extractor.hpp"
#include "rt/work_queue.hpp"

namespace svt::rt {

class ShardedStreamClassifier {
 public:
  /// Serve per-patient models from `registry` with `num_workers` extraction
  /// threads (clamped to >= 1). Throws std::invalid_argument on a null
  /// registry or a bad stream config (same rules as WindowExtractor).
  ShardedStreamClassifier(std::shared_ptr<ModelRegistry> registry, StreamConfig config = {},
                          std::size_t num_workers = 1);

  /// Convenience: serve one cohort-wide detector (the registry holds it as
  /// the default; per-patient models can still be installed later).
  ShardedStreamClassifier(const core::TailoredDetector& detector, StreamConfig config = {},
                          std::size_t num_workers = 1);

  ~ShardedStreamClassifier();
  ShardedStreamClassifier(const ShardedStreamClassifier&) = delete;
  ShardedStreamClassifier& operator=(const ShardedStreamClassifier&) = delete;

  /// Route a chunk of raw ECG samples (mV) to the patient's shard. Returns
  /// as soon as the copy is enqueued; extraction happens on the shard's
  /// worker thread. Safe to call from multiple threads.
  void push_samples(int patient_id, std::span<const double> samples_mv);

  /// Pipeline barrier: classify every window extracted from samples pushed
  /// before this call and return the results sorted by (patient, start
  /// time). Overlaps draining/classification with in-flight extraction.
  /// Throws std::runtime_error if a patient resolves to no model.
  std::vector<WindowResult> flush();

  /// Which shard (worker) serves a patient; stable for the engine's lifetime.
  std::size_t shard_of(int patient_id) const;

  std::size_t num_workers() const { return shards_.size(); }

  /// Windows rejected for having fewer than min_beats R peaks (exact after
  /// a flush; may lag mid-stream while workers are extracting).
  std::size_t rejected_windows() const { return rejected_.load(); }

  ModelRegistry& registry() { return *registry_; }
  const ModelRegistry& registry() const { return *registry_; }
  const StreamConfig& config() const { return config_; }

 private:
  struct Task {
    int patient_id = 0;
    std::vector<double> samples;
    bool barrier = false;
  };

  struct Shard {
    explicit Shard(StreamConfig config) : extractor(config) {}
    WorkQueue<Task> tasks;
    WindowExtractor extractor;           ///< Touched only by the worker thread.
    std::size_t rejected_reported = 0;   ///< Worker-local watermark.
    std::vector<ExtractedWindow> rows;   ///< Completed windows; guarded by done_mutex_.
    std::thread worker;
  };

  void worker_loop(Shard& shard);
  void classify_into(std::vector<ExtractedWindow>& windows, std::vector<WindowResult>& out,
                     std::map<int, std::shared_ptr<const ServableModel>>& snapshot) const;

  std::shared_ptr<ModelRegistry> registry_;
  StreamConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Extraction -> classification handoff (guarded by done_mutex_).
  std::mutex done_mutex_;
  std::condition_variable done_cv_;
  std::size_t pending_rows_ = 0;      ///< Completed windows not yet drained.
  std::size_t barriers_reached_ = 0;  ///< Shards done with the current flush.

  std::atomic<std::size_t> rejected_{0};
};

}  // namespace svt::rt
