// Fixed-capacity sample ring buffer for the streaming runtime.
//
// Holds the most recent raw samples of one patient stream between window
// emissions: samples are appended at the tail, whole windows are copied out
// oldest-first, and a stride's worth of samples is dropped from the head
// after each emission (overlapping windows drop less than they emit).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/assert.hpp"

namespace svt::rt {

class SampleRing {
 public:
  explicit SampleRing(std::size_t capacity) : buf_(capacity) { SVT_ASSERT(capacity > 0); }

  std::size_t capacity() const { return buf_.size(); }
  std::size_t size() const { return size_; }
  std::size_t free_space() const { return buf_.size() - size_; }
  bool full() const { return size_ == buf_.size(); }

  /// Append up to free_space() samples; returns how many were consumed.
  std::size_t push(std::span<const double> samples) {
    const std::size_t n = std::min(samples.size(), free_space());
    for (std::size_t i = 0; i < n; ++i) {
      buf_[(head_ + size_) % buf_.size()] = samples[i];
      ++size_;
    }
    return n;
  }

  /// Copy the oldest dst.size() samples into dst (dst.size() <= size()).
  void copy_out(std::span<double> dst) const {
    SVT_ASSERT(dst.size() <= size_);
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = buf_[(head_ + i) % buf_.size()];
  }

  /// Drop the n oldest samples (n <= size()).
  void drop(std::size_t n) {
    SVT_ASSERT(n <= size_);
    head_ = (head_ + n) % buf_.size();
    size_ -= n;
  }

 private:
  std::vector<double> buf_;
  std::size_t head_ = 0;  ///< Index of the oldest sample.
  std::size_t size_ = 0;
};

}  // namespace svt::rt
