// Classification metrics (paper Eq. 2).
//
// The paper scores detectors by Sensitivity, Specificity and their Geometric
// Mean (GM), averaged over leave-one-session-out folds; GM is the headline
// classification-performance number throughout.
#pragma once

#include <span>
#include <string>

namespace svt::svm {

struct ConfusionMatrix {
  std::size_t tp = 0, tn = 0, fp = 0, fn = 0;

  std::size_t total() const { return tp + tn + fp + fn; }
  std::size_t positives() const { return tp + fn; }
  std::size_t negatives() const { return tn + fp; }

  /// Se = TP / (TP + FN). Returns NaN if there are no positives.
  double sensitivity() const;
  /// Sp = TN / (TN + FP). Returns NaN if there are no negatives.
  double specificity() const;
  /// GM = sqrt(Se * Sp). NaN if either side is undefined.
  double geometric_mean() const;
  double accuracy() const;
  double precision() const;
  double f1() const;

  /// Accumulate another window of results.
  ConfusionMatrix& operator+=(const ConfusionMatrix& other);
};

/// Tally predictions against truth (+1/-1 labels). Throws on size mismatch.
ConfusionMatrix tally(std::span<const int> truth, std::span<const int> predicted);

/// Aggregated fold metrics: averages are taken over folds where the metric
/// is defined (a fold with no seizure windows has undefined Se), exactly the
/// convention needed for per-session cross-validation on imbalanced data.
struct FoldAverages {
  double sensitivity = 0.0;
  double specificity = 0.0;
  double geometric_mean = 0.0;
  std::size_t folds_with_se = 0;
  std::size_t folds_with_sp = 0;
  std::size_t folds_with_gm = 0;
};

FoldAverages average_over_folds(std::span<const ConfusionMatrix> folds);

}  // namespace svt::svm
