#include "svm/model.hpp"

#include <cmath>
#include <iomanip>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "common/assert.hpp"

namespace svt::svm {

double SvmModel::decision_value(std::span<const double> x) const {
  double acc = bias;
  for (std::size_t i = 0; i < support_vectors.size(); ++i)
    acc += alpha_y[i] * kernel(x, support_vectors[i]);
  return acc;
}

int SvmModel::predict(std::span<const double> x) const {
  return decision_value(x) >= 0.0 ? +1 : -1;
}

std::vector<double> SvmModel::sv_norms() const {
  std::vector<double> norms(support_vectors.size());
  for (std::size_t i = 0; i < support_vectors.size(); ++i) {
    const double a = alpha_y[i];
    norms[i] = a * a * kernel(support_vectors[i], support_vectors[i]);
  }
  return norms;
}

void SvmModel::save(std::ostream& os) const {
  os << "svmtailor-model v1\n";
  os << "kernel " << static_cast<int>(kernel.type) << ' ' << kernel.degree << ' '
     << std::setprecision(17) << kernel.coef0 << ' ' << kernel.gamma << '\n';
  os << "bias " << std::setprecision(17) << bias << '\n';
  os << "nsv " << support_vectors.size() << '\n';
  os << "nfeat " << num_features() << '\n';
  for (std::size_t i = 0; i < support_vectors.size(); ++i) {
    os << std::setprecision(17) << alpha_y[i];
    for (double v : support_vectors[i]) os << ' ' << std::setprecision(17) << v;
    os << '\n';
  }
}

SvmModel SvmModel::load(std::istream& is) {
  std::string magic, version;
  is >> magic >> version;
  if (magic != "svmtailor-model" || version != "v1")
    throw std::invalid_argument("SvmModel::load: bad header");
  SvmModel m;
  std::string tag;
  int ktype = 0;
  is >> tag >> ktype >> m.kernel.degree >> m.kernel.coef0 >> m.kernel.gamma;
  if (tag != "kernel") throw std::invalid_argument("SvmModel::load: expected 'kernel'");
  m.kernel.type = static_cast<KernelType>(ktype);
  is >> tag >> m.bias;
  if (tag != "bias") throw std::invalid_argument("SvmModel::load: expected 'bias'");
  std::size_t nsv = 0, nfeat = 0;
  is >> tag >> nsv;
  if (tag != "nsv") throw std::invalid_argument("SvmModel::load: expected 'nsv'");
  is >> tag >> nfeat;
  if (tag != "nfeat") throw std::invalid_argument("SvmModel::load: expected 'nfeat'");
  m.support_vectors.resize(nsv, std::vector<double>(nfeat));
  m.alpha_y.resize(nsv);
  for (std::size_t i = 0; i < nsv; ++i) {
    is >> m.alpha_y[i];
    for (std::size_t j = 0; j < nfeat; ++j) is >> m.support_vectors[i][j];
  }
  if (!is) throw std::invalid_argument("SvmModel::load: truncated model");
  return m;
}

}  // namespace svt::svm
