#include "svm/model.hpp"

#include <cmath>
#include <iomanip>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "common/assert.hpp"
#include "rt/packed_model.hpp"

namespace svt::svm {

namespace io {

void expect_tag(std::istream& is, const char* tag, const char* ctx) {
  std::string token;
  is >> token;
  if (!is || token != tag)
    throw std::invalid_argument(std::string(ctx) + ": expected '" + tag + "'");
}

void expect_header(std::istream& is, const char* magic, const char* version, const char* ctx) {
  std::string m, v;
  is >> m >> v;
  if (!is || m != magic || v != version)
    throw std::invalid_argument(std::string(ctx) + ": bad header");
}

void require_good(const std::istream& is, const char* ctx) {
  if (!is) throw std::invalid_argument(std::string(ctx) + ": truncated");
}

}  // namespace io

double SvmModel::decision_value(std::span<const double> x) const {
  double acc = bias;
  for (std::size_t i = 0; i < support_vectors.size(); ++i)
    acc += alpha_y[i] * kernel(x, support_vectors[i]);
  return acc;
}

int SvmModel::predict(std::span<const double> x) const {
  return decision_value(x) >= 0.0 ? +1 : -1;
}

void SvmModel::decision_values(std::span<const std::vector<double>> xs,
                               std::span<double> out) const {
  if (out.size() != xs.size())
    throw std::invalid_argument("SvmModel::decision_values: output size mismatch");
  const std::size_t nfeat = num_features();
  for (const auto& x : xs)
    if (x.size() != nfeat)
      throw std::invalid_argument("SvmModel::decision_values: feature-count mismatch");

  const bool quadratic = kernel.type == KernelType::kPolynomial && kernel.degree == 2;
  if (!quadratic || xs.empty() || nfeat == 0 || support_vectors.empty()) {
    for (std::size_t w = 0; w < xs.size(); ++w) out[w] = decision_value(xs[w]);
    return;
  }

  // Pack once and run the blocked kernel. The packing cost is amortised over
  // the batch; callers with a long-lived model should hold the
  // rt::PackedModel themselves so it is paid once, not per call.
  rt::PackedModel(*this).decision_values(xs, out);
}

std::vector<double> SvmModel::decision_values(std::span<const std::vector<double>> xs) const {
  std::vector<double> out(xs.size());
  decision_values(xs, out);
  return out;
}

std::vector<int> SvmModel::predict_batch(std::span<const std::vector<double>> xs) const {
  const auto values = decision_values(xs);
  std::vector<int> labels(values.size());
  for (std::size_t w = 0; w < values.size(); ++w) labels[w] = values[w] >= 0.0 ? +1 : -1;
  return labels;
}

std::vector<double> SvmModel::sv_norms() const {
  std::vector<double> norms(support_vectors.size());
  for (std::size_t i = 0; i < support_vectors.size(); ++i) {
    const double a = alpha_y[i];
    norms[i] = a * a * kernel(support_vectors[i], support_vectors[i]);
  }
  return norms;
}

void SvmModel::save(std::ostream& os) const {
  os << "svmtailor-model v1\n";
  os << "kernel " << static_cast<int>(kernel.type) << ' ' << kernel.degree << ' '
     << std::setprecision(17) << kernel.coef0 << ' ' << kernel.gamma << '\n';
  os << "bias " << std::setprecision(17) << bias << '\n';
  os << "nsv " << support_vectors.size() << '\n';
  os << "nfeat " << num_features() << '\n';
  for (std::size_t i = 0; i < support_vectors.size(); ++i) {
    os << std::setprecision(17) << alpha_y[i];
    for (double v : support_vectors[i]) os << ' ' << std::setprecision(17) << v;
    os << '\n';
  }
}

SvmModel SvmModel::load(std::istream& is) {
  io::expect_header(is, "svmtailor-model", "v1", "SvmModel::load");
  SvmModel m;
  int ktype = 0;
  io::expect_tag(is, "kernel", "SvmModel::load");
  is >> ktype >> m.kernel.degree >> m.kernel.coef0 >> m.kernel.gamma;
  m.kernel.type = static_cast<KernelType>(ktype);
  io::expect_tag(is, "bias", "SvmModel::load");
  is >> m.bias;
  std::size_t nsv = 0, nfeat = 0;
  io::expect_tag(is, "nsv", "SvmModel::load");
  is >> nsv;
  io::expect_tag(is, "nfeat", "SvmModel::load");
  is >> nfeat;
  io::require_good(is, "SvmModel::load");
  m.support_vectors.resize(nsv, std::vector<double>(nfeat));
  m.alpha_y.resize(nsv);
  for (std::size_t i = 0; i < nsv; ++i) {
    is >> m.alpha_y[i];
    for (std::size_t j = 0; j < nfeat; ++j) is >> m.support_vectors[i][j];
  }
  io::require_good(is, "SvmModel::load");
  return m;
}

}  // namespace svt::svm
