// Trained SVM model (paper Eq. 1): the support vectors, their signed weights
// alpha_i * y_i, the bias b and the kernel. Provides float inference and
// text serialisation; the fixed-point engine (svt::core) quantises this.
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "svm/kernel.hpp"

namespace svt::svm {

struct SvmModel {
  Kernel kernel;
  std::vector<std::vector<double>> support_vectors;
  std::vector<double> alpha_y;  ///< alpha_i * y_i per SV, in (-C, C).
  double bias = 0.0;

  std::size_t num_support_vectors() const { return support_vectors.size(); }
  std::size_t num_features() const {
    return support_vectors.empty() ? 0 : support_vectors.front().size();
  }

  /// Decision value f(x) = sum_i alpha_y_i k(x, sv_i) + b (paper Eq. 1
  /// before the sign). Throws std::invalid_argument on size mismatch.
  double decision_value(std::span<const double> x) const;

  /// Batched decision values for many windows in one call. Quadratic-
  /// polynomial models route through the packed row-major fast path
  /// (rt::PackedModel); other kernels fall back to the per-window loop.
  /// `out.size()` must equal `xs.size()`; every row must
  /// have num_features() entries. Throws std::invalid_argument otherwise.
  void decision_values(std::span<const std::vector<double>> xs, std::span<double> out) const;
  std::vector<double> decision_values(std::span<const std::vector<double>> xs) const;

  /// Batched class labels (sign of the batched decision values).
  std::vector<int> predict_batch(std::span<const std::vector<double>> xs) const;

  /// Class label: sign of the decision value (+1 / -1; 0 maps to +1).
  int predict(std::span<const double> x) const;

  /// The per-SV importance norm used for budgeting (paper Eq. 5):
  /// ||SV_i|| = ||alpha_i||^2 * k(x_i, x_i).
  std::vector<double> sv_norms() const;

  /// Text serialisation (round-trippable).
  void save(std::ostream& os) const;
  static SvmModel load(std::istream& is);
};

/// Helpers for the project's line-oriented "tag value..." model text format,
/// shared by every persistable artefact (SvmModel, core::QuantizedModel,
/// StandardScaler, rt::ServableModel) so they all fail the same way on
/// corrupt input.
namespace io {

/// Read one whitespace-delimited token and require it to equal `tag`; throws
/// std::invalid_argument("<ctx>: expected '<tag>'") otherwise.
void expect_tag(std::istream& is, const char* tag, const char* ctx);

/// Require the two-token header "<magic> <version>"; throws
/// std::invalid_argument("<ctx>: bad header") on mismatch.
void expect_header(std::istream& is, const char* magic, const char* version, const char* ctx);

/// Throw std::invalid_argument("<ctx>: truncated") if the stream has failed
/// (call after a block of extractions).
void require_good(const std::istream& is, const char* ctx);

}  // namespace io

}  // namespace svt::svm
