#include "svm/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <list>
#include <stdexcept>
#include <unordered_map>

#include "common/assert.hpp"

namespace svt::svm {

namespace {

/// Kernel-row cache with LRU eviction. Rows are stored as float (the SMO
/// update tolerates that precision; alphas and gradients stay double).
/// Values are divided by `scale` so cached entries stay O(1) regardless of
/// the kernel's magnitude -- float storage would otherwise destroy the
/// relative precision that the working-set second-order terms need.
class KernelCache {
 public:
  KernelCache(std::span<const std::vector<double>> samples, const Kernel& kernel, double scale,
              std::size_t budget_bytes)
      : samples_(samples), kernel_(kernel), scale_(scale > 0.0 ? scale : 1.0) {
    const std::size_t row_bytes = samples.size() * sizeof(float);
    capacity_rows_ = std::max<std::size_t>(2, row_bytes > 0 ? budget_bytes / row_bytes : 2);
  }

  /// Row i of the kernel matrix K(i, *).
  const std::vector<float>& row(std::size_t i) {
    if (auto it = map_.find(i); it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.values;
    }
    if (map_.size() >= capacity_rows_) {
      const std::size_t victim = lru_.back();
      lru_.pop_back();
      map_.erase(victim);
    }
    lru_.push_front(i);
    Entry entry;
    entry.lru_it = lru_.begin();
    entry.values.resize(samples_.size());
    for (std::size_t j = 0; j < samples_.size(); ++j)
      entry.values[j] = static_cast<float>(kernel_(samples_[i], samples_[j]) / scale_);
    auto [it, inserted] = map_.emplace(i, std::move(entry));
    SVT_ASSERT(inserted);
    return it->second.values;
  }

 private:
  struct Entry {
    std::vector<float> values;
    std::list<std::size_t>::iterator lru_it;
  };
  std::span<const std::vector<double>> samples_;
  const Kernel& kernel_;
  double scale_ = 1.0;
  std::size_t capacity_rows_ = 0;
  std::unordered_map<std::size_t, Entry> map_;
  std::list<std::size_t> lru_;
};

}  // namespace

SvmModel train_svm(std::span<const std::vector<double>> samples, std::span<const int> labels,
                   const Kernel& kernel, const TrainParams& params, TrainReport* report) {
  const std::size_t n = samples.size();
  if (n == 0) throw std::invalid_argument("train_svm: empty training set");
  if (labels.size() != n) throw std::invalid_argument("train_svm: labels/samples size mismatch");
  const std::size_t nfeat = samples.front().size();
  std::size_t npos = 0, nneg = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (samples[i].size() != nfeat) throw std::invalid_argument("train_svm: ragged samples");
    if (labels[i] == +1) {
      ++npos;
    } else if (labels[i] == -1) {
      ++nneg;
    } else {
      throw std::invalid_argument("train_svm: labels must be +1/-1");
    }
  }
  if (npos == 0 || nneg == 0)
    throw std::invalid_argument("train_svm: both classes must be present");
  if (params.c <= 0.0) throw std::invalid_argument("train_svm: c <= 0");

  const double wpos = params.positive_weight > 0.0
                          ? params.positive_weight
                          : static_cast<double>(nneg) / static_cast<double>(npos);

  // Solve the dual on the *normalised* kernel K' = K / mean(diag K): the
  // problem is equivalent (alphas scale by the inverse factor, undone when
  // the model is emitted), `c` becomes a scale-free regularisation knob, and
  // cached float kernel rows stay well-conditioned.
  double knorm = 1.0;
  if (params.scale_c_by_kernel) {
    double diag_acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) diag_acc += kernel(samples[i], samples[i]);
    const double mean_diag = diag_acc / static_cast<double>(n);
    if (mean_diag > 0.0) knorm = mean_diag;
  }
  std::vector<double> cost(n);
  for (std::size_t i = 0; i < n; ++i) cost[i] = labels[i] == +1 ? params.c * wpos : params.c;

  KernelCache cache(samples, kernel, knorm, /*budget_bytes=*/512u << 20);

  // Dual problem: min 1/2 a^T Q a - e^T a, 0 <= a_i <= C_i, y^T a = 0,
  // with Q_ij = y_i y_j K_ij. grad_i = (Q a)_i - 1.
  std::vector<double> alpha(n, 0.0);
  std::vector<double> grad(n, -1.0);
  const auto y = [&](std::size_t i) { return static_cast<double>(labels[i]); };

  // Kernel diagonal (double precision; the second-order selection needs it).
  std::vector<double> kdiag(n);
  for (std::size_t t = 0; t < n; ++t) kdiag[t] = kernel(samples[t], samples[t]) / knorm;

  std::size_t iter = 0;
  bool converged = false;
  for (; iter < params.max_iterations; ++iter) {
    // Working-set selection (libsvm WSS2): i is the maximal violator in
    // I_up; j maximises the second-order objective decrease among violating
    // members of I_low.
    double g_max = -std::numeric_limits<double>::infinity();
    double g_min = std::numeric_limits<double>::infinity();
    std::ptrdiff_t i_sel = -1;
    for (std::size_t t = 0; t < n; ++t) {
      const bool in_up = (y(t) > 0 && alpha[t] < cost[t]) || (y(t) < 0 && alpha[t] > 0.0);
      const double v = -y(t) * grad[t];
      if (in_up && v > g_max) {
        g_max = v;
        i_sel = static_cast<std::ptrdiff_t>(t);
      }
    }
    if (i_sel < 0) {
      converged = true;
      break;
    }
    const auto i = static_cast<std::size_t>(i_sel);
    const auto& ki = cache.row(i);
    const double kii = kdiag[i];

    std::ptrdiff_t j_sel = -1;
    double best_gain = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      const bool in_low = (y(t) > 0 && alpha[t] > 0.0) || (y(t) < 0 && alpha[t] < cost[t]);
      if (!in_low) continue;
      const double v = -y(t) * grad[t];
      g_min = std::min(g_min, v);
      const double diff = g_max - v;
      if (diff <= 0.0) continue;
      double eta = kii + kdiag[t] - 2.0 * static_cast<double>(ki[t]);
      if (eta <= 1e-12) eta = 1e-12;
      const double gain = diff * diff / eta;
      if (gain > best_gain) {
        best_gain = gain;
        j_sel = static_cast<std::ptrdiff_t>(t);
      }
    }
    if (j_sel < 0 || g_max - g_min < params.tolerance) {
      converged = g_max - g_min < params.tolerance;
      break;
    }
    const auto j = static_cast<std::size_t>(j_sel);
    const auto& kj = cache.row(j);

    double eta = kii + kdiag[j] - 2.0 * static_cast<double>(ki[j]);
    if (eta <= 1e-12) eta = 1e-12;

    // Unconstrained step along the feasible direction d_i = y_i, d_j = -y_j
    // (which preserves the equality constraint), then clip to the box.
    const double vj = -y(j) * grad[j];
    const double step = (g_max - vj) / eta;
    const double yi = y(i), yj = y(j);
    double ai_new, aj_new;
    if (yi == yj) {
      const double sum = alpha[i] + alpha[j];
      ai_new = alpha[i] + yi * step;
      ai_new = std::clamp(ai_new, std::max(0.0, sum - cost[j]), std::min(cost[i], sum));
      aj_new = sum - ai_new;
    } else {
      const double diff = alpha[i] - alpha[j];
      ai_new = alpha[i] + yi * step;
      ai_new = std::clamp(ai_new, std::max(0.0, diff), std::min(cost[i], cost[j] + diff));
      aj_new = ai_new - diff;
    }
    // Snap to the box bounds: an alpha left a few ulps away from its bound
    // would otherwise be re-selected as an eternal "violator" with no room
    // to move (the equality constraint absorbs the ~1e-12 relative drift).
    const auto snap = [](double v, double hi) {
      if (v < hi * 1e-12) return 0.0;
      if (v > hi * (1.0 - 1e-12)) return hi;
      return v;
    };
    ai_new = snap(ai_new, cost[i]);
    aj_new = snap(aj_new, cost[j]);

    const double dai = ai_new - alpha[i];
    const double daj = aj_new - alpha[j];
    if (std::abs(dai) < 1e-16 && std::abs(daj) < 1e-16) {
      break;  // Numerically stuck: report non-convergence honestly.
    }
    alpha[i] = ai_new;
    alpha[j] = aj_new;
    for (std::size_t t = 0; t < n; ++t) {
      grad[t] += y(t) * (yi * dai * static_cast<double>(ki[t]) +
                         yj * daj * static_cast<double>(kj[t]));
    }
  }

  // Bias: average of y_t * (-grad_t) ... i.e. b = -(g_max+g_min)/2 in the
  // -y*grad convention; use free SVs when available for a sharper estimate.
  double b_acc = 0.0;
  std::size_t b_count = 0;
  for (std::size_t t = 0; t < n; ++t) {
    // "Free" SVs (strictly inside the box, judged relative to the box size).
    const double margin = params.alpha_epsilon * cost[t];
    if (alpha[t] > margin && alpha[t] < cost[t] - margin) {
      b_acc += -y(t) * grad[t];
      ++b_count;
    }
  }
  double bias;
  if (b_count > 0) {
    bias = b_acc / static_cast<double>(b_count);
  } else {
    double g_max = -std::numeric_limits<double>::infinity();
    double g_min = std::numeric_limits<double>::infinity();
    for (std::size_t t = 0; t < n; ++t) {
      const bool in_up = (y(t) > 0 && alpha[t] < cost[t]) || (y(t) < 0 && alpha[t] > 0.0);
      const bool in_low = (y(t) > 0 && alpha[t] > 0.0) || (y(t) < 0 && alpha[t] < cost[t]);
      const double v = -y(t) * grad[t];
      if (in_up) g_max = std::max(g_max, v);
      if (in_low) g_min = std::min(g_min, v);
    }
    bias = (g_max + g_min) / 2.0;
  }

  SvmModel model;
  model.kernel = kernel;
  model.bias = bias;
  // SV filter relative to the largest alpha: optimal alphas scale as 1/K, so
  // an absolute threshold would be meaningless across kernel magnitudes.
  double alpha_max = 0.0;
  for (double a : alpha) alpha_max = std::max(alpha_max, a);
  const double sv_threshold = params.alpha_epsilon * alpha_max;
  for (std::size_t t = 0; t < n; ++t) {
    if (alpha[t] > sv_threshold && alpha[t] > 0.0) {
      model.support_vectors.push_back(samples[t]);
      // Undo the kernel normalisation so the model works with the *original*
      // kernel: f(x) = sum (alpha/knorm) y K(x, sv) + b  ==  sum alpha y K' + b.
      model.alpha_y.push_back(alpha[t] * y(t) / knorm);
    }
  }

  if (report != nullptr) {
    report->iterations = iter;
    report->converged = converged;
    report->num_support_vectors = model.num_support_vectors();
    // Dual objective: sum a_i - 1/2 sum a_i a_j y_i y_j K_ij
    //               = sum a_i - 1/2 sum_i a_i (grad_i + 1) using grad = Qa - e.
    double obj = 0.0;
    for (std::size_t t = 0; t < n; ++t) obj += alpha[t] - 0.5 * alpha[t] * (grad[t] + 1.0);
    report->objective = obj;
  }
  return model;
}

}  // namespace svt::svm
