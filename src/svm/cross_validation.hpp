// Leave-one-group-out cross-validation driver.
//
// The paper evaluates every design point over 24 folds, each holding out one
// recording session. This driver is generic over (samples, labels, group ids)
// and over two customisation hooks used by the tailoring experiments:
//  * `transform`  -- post-processes the trained model per fold (e.g. SV
//    budgeting with retraining needs the fold's training data);
//  * `classifier` -- builds the per-fold inference function (e.g. the
//    fixed-point engine quantises the fold's model before predicting).
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "svm/metrics.hpp"
#include "svm/model.hpp"
#include "svm/scaler.hpp"
#include "svm/trainer.hpp"

namespace svt::svm {

/// Per-fold inference function over a *scaled* feature vector.
using ClassifierFn = std::function<int(std::span<const double>)>;

/// Builds a ClassifierFn from the fold's trained model and (scaled) training
/// data. Default: SvmModel::predict.
using ClassifierFactory = std::function<ClassifierFn(
    const SvmModel&, std::span<const std::vector<double>>, std::span<const int>)>;

/// Post-processes the fold's trained model (scaled training data provided so
/// the hook can retrain).
using ModelTransform = std::function<SvmModel(
    const SvmModel&, std::span<const std::vector<double>>, std::span<const int>)>;

struct CvOptions {
  Kernel kernel = quadratic_kernel();
  TrainParams train;
  bool standardize = true;
  ScalerMode scaler_mode = ScalerMode::kZScore;
  std::vector<double> post_gains;  ///< See StandardScaler::set_post_gains.
  ModelTransform transform;      ///< Optional.
  ClassifierFactory classifier;  ///< Optional.
};

struct FoldOutcome {
  int group = 0;
  ConfusionMatrix confusion;
  std::size_t num_support_vectors = 0;
  bool trained = false;  ///< False if the training split had a single class.
};

struct CvResult {
  std::vector<FoldOutcome> folds;
  FoldAverages averages;

  /// Mean SV count over successfully trained folds (drives the HW model).
  double mean_support_vectors() const;
};

/// Run leave-one-group-out CV. `groups[i]` is the fold id of sample i.
/// Folds whose training split lacks one of the classes are skipped (marked
/// trained=false). Throws std::invalid_argument on size mismatches.
CvResult cross_validate(std::span<const std::vector<double>> samples,
                        std::span<const int> labels, std::span<const int> groups,
                        const CvOptions& options);

}  // namespace svt::svm
