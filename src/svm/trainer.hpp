// C-SVC training by Sequential Minimal Optimization (SMO).
//
// Keerthi-style working-set selection (maximal KKT violating pair), full
// Gram-matrix cache for the dataset sizes this reproduction uses, and
// per-class penalty weights to cope with the heavy ictal/interictal
// imbalance (seizure windows are a few percent of the data).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "svm/kernel.hpp"
#include "svm/model.hpp"

namespace svt::svm {

struct TrainParams {
  double c = 1.0;                 ///< Soft-margin penalty (see scale_c_by_kernel).
  double positive_weight = 0.0;   ///< C+ multiplier; 0 = auto (Nneg/Npos).
  double tolerance = 1e-3;        ///< KKT violation tolerance.
  std::size_t max_iterations = 200000;  ///< SMO pair updates before giving up.
  double alpha_epsilon = 1e-6;    ///< SV filter, *relative* to the largest alpha.

  /// When true (default) the effective penalty is c / mean_i k(x_i, x_i):
  /// optimal alphas scale as 1/K, so normalising C by the kernel magnitude
  /// makes the same `c` mean the same amount of regularisation for linear,
  /// quadratic, cubic and RBF kernels (whose values differ by orders of
  /// magnitude on physiological features in natural units).
  bool scale_c_by_kernel = true;
};

struct TrainReport {
  std::size_t iterations = 0;
  bool converged = false;
  std::size_t num_support_vectors = 0;
  double objective = 0.0;  ///< Dual objective at termination.
};

/// Train a binary C-SVC. Labels must be +1/-1 and both classes present.
/// Throws std::invalid_argument on bad inputs.
SvmModel train_svm(std::span<const std::vector<double>> samples, std::span<const int> labels,
                   const Kernel& kernel, const TrainParams& params = {},
                   TrainReport* report = nullptr);

}  // namespace svt::svm
