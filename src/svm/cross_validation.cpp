#include "svm/cross_validation.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "common/assert.hpp"

namespace svt::svm {

double CvResult::mean_support_vectors() const {
  double acc = 0.0;
  std::size_t count = 0;
  for (const auto& f : folds) {
    if (f.trained) {
      acc += static_cast<double>(f.num_support_vectors);
      ++count;
    }
  }
  return count > 0 ? acc / static_cast<double>(count) : 0.0;
}

CvResult cross_validate(std::span<const std::vector<double>> samples,
                        std::span<const int> labels, std::span<const int> groups,
                        const CvOptions& options) {
  const std::size_t n = samples.size();
  if (labels.size() != n || groups.size() != n)
    throw std::invalid_argument("cross_validate: size mismatch");
  if (n == 0) throw std::invalid_argument("cross_validate: empty dataset");

  const std::set<int> group_ids(groups.begin(), groups.end());
  CvResult result;
  result.folds.reserve(group_ids.size());

  for (int g : group_ids) {
    // Negative group ids mark training-only samples (used to cap the number
    // of evaluated folds without shrinking the training sets).
    if (g < 0) continue;
    FoldOutcome outcome;
    outcome.group = g;

    std::vector<std::vector<double>> train_x, test_x;
    std::vector<int> train_y, test_y;
    for (std::size_t i = 0; i < n; ++i) {
      if (groups[i] == g) {
        test_x.push_back(samples[i]);
        test_y.push_back(labels[i]);
      } else {
        train_x.push_back(samples[i]);
        train_y.push_back(labels[i]);
      }
    }
    const bool has_pos = std::find(train_y.begin(), train_y.end(), +1) != train_y.end();
    const bool has_neg = std::find(train_y.begin(), train_y.end(), -1) != train_y.end();
    if (train_x.empty() || test_x.empty() || !has_pos || !has_neg) {
      result.folds.push_back(outcome);
      continue;
    }

    StandardScaler scaler(options.scaler_mode);
    scaler.set_post_gains(options.post_gains);
    if (options.standardize) {
      scaler.fit(train_x);
      train_x = scaler.transform_all(train_x);
      test_x = scaler.transform_all(test_x);
    }

    SvmModel model = train_svm(train_x, train_y, options.kernel, options.train);
    if (options.transform) model = options.transform(model, train_x, train_y);

    ClassifierFn classify;
    if (options.classifier) {
      classify = options.classifier(model, train_x, train_y);
    } else {
      classify = [&model](std::span<const double> x) { return model.predict(x); };
    }

    std::vector<int> predicted(test_x.size());
    for (std::size_t i = 0; i < test_x.size(); ++i) predicted[i] = classify(test_x[i]);

    outcome.trained = true;
    outcome.num_support_vectors = model.num_support_vectors();
    outcome.confusion = tally(test_y, predicted);
    result.folds.push_back(outcome);
  }

  std::vector<ConfusionMatrix> confusions;
  for (const auto& f : result.folds) {
    if (f.trained) confusions.push_back(f.confusion);
  }
  result.averages = average_over_folds(confusions);
  return result;
}

}  // namespace svt::svm
