#include "svm/kernel.hpp"

#include <cmath>
#include <stdexcept>

namespace svt::svm {

double dot(std::span<const double> x, std::span<const double> z) {
  if (x.size() != z.size()) throw std::invalid_argument("dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * z[i];
  return acc;
}

double Kernel::operator()(std::span<const double> x, std::span<const double> z) const {
  switch (type) {
    case KernelType::kLinear:
      return dot(x, z);
    case KernelType::kPolynomial: {
      if (degree < 1) throw std::invalid_argument("Kernel: polynomial degree < 1");
      return std::pow(dot(x, z) + coef0, degree);
    }
    case KernelType::kRbf: {
      if (x.size() != z.size()) throw std::invalid_argument("Kernel: size mismatch");
      double d2 = 0.0;
      for (std::size_t i = 0; i < x.size(); ++i) {
        const double d = x[i] - z[i];
        d2 += d * d;
      }
      return std::exp(-gamma * d2);
    }
  }
  throw std::invalid_argument("Kernel: unknown type");
}

std::string Kernel::name() const {
  switch (type) {
    case KernelType::kLinear: return "linear";
    case KernelType::kPolynomial:
      if (degree == 2) return "quadratic";
      if (degree == 3) return "cubic";
      return "poly-" + std::to_string(degree);
    case KernelType::kRbf: return "gaussian";
  }
  return "unknown";
}

Kernel linear_kernel() { return Kernel{KernelType::kLinear, 1, 0.0, 0.0}; }

Kernel quadratic_kernel() { return Kernel{KernelType::kPolynomial, 2, 1.0, 0.0}; }

Kernel cubic_kernel() { return Kernel{KernelType::kPolynomial, 3, 1.0, 0.0}; }

Kernel gaussian_kernel(double gamma) { return Kernel{KernelType::kRbf, 0, 0.0, gamma}; }

}  // namespace svt::svm
