// Feature standardisation.
//
// Fitted on the training fold only and applied to both folds -- the usual
// guard against test-set leakage. Two modes:
//  * kZScore     -- subtract mean, divide by std (constant features -> 0);
//  * kCenterOnly -- subtract mean, keep natural per-feature scales. This is
//    the project default: the paper's per-feature power-of-two ranges
//    (Eq. 6) exist precisely because physiological features span wildly
//    different magnitudes, and full z-scoring would erase that heterogeneity
//    (making the homogeneous-scaling ablation of Figures 6/7 meaningless).
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

namespace svt::svm {

enum class ScalerMode { kZScore, kCenterOnly };

class StandardScaler {
 public:
  StandardScaler() = default;
  explicit StandardScaler(ScalerMode mode) : mode_(mode) {}

  /// Fit means/stds per column. Throws std::invalid_argument on empty input
  /// or ragged rows.
  void fit(std::span<const std::vector<double>> samples);

  /// Transform one sample in place. Throws if not fitted or size mismatch.
  void transform_inplace(std::vector<double>& sample) const;

  /// Span variant (the implementation; the vector overload delegates): lets
  /// the zero-allocation serving path scale rows in caller-owned buffers.
  void transform_inplace(std::span<double> sample) const;

  /// Transform a copy.
  std::vector<double> transform(std::span<const double> sample) const;

  /// Transform a whole matrix.
  std::vector<std::vector<double>> transform_all(
      std::span<const std::vector<double>> samples) const;

  /// Fixed per-feature gains applied *after* normalisation (empty = none).
  /// Used to express category-typical magnitude conventions: the inference
  /// hardware sees features whose ranges differ across categories, which is
  /// what the paper's per-feature power-of-two scaling exists to handle.
  /// Must match the feature count at transform time.
  void set_post_gains(std::vector<double> gains) { gains_ = std::move(gains); }
  const std::vector<double>& post_gains() const { return gains_; }

  /// Text serialisation (round-trippable, full double precision; the same
  /// line-oriented format as SvmModel::save). A fitted scaler is part of a
  /// deployable per-patient model, so it persists with it.
  void save(std::ostream& os) const;
  static StandardScaler load(std::istream& is);

  bool fitted() const { return !mean_.empty(); }
  std::size_t num_features() const { return mean_.size(); }
  ScalerMode mode() const { return mode_; }
  const std::vector<double>& means() const { return mean_; }
  const std::vector<double>& stds() const { return std_; }

 private:
  ScalerMode mode_ = ScalerMode::kZScore;
  std::vector<double> mean_;
  std::vector<double> std_;
  std::vector<double> gains_;
};

}  // namespace svt::svm
