#include "svm/metrics.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace svt::svm {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}

double ConfusionMatrix::sensitivity() const {
  const auto p = positives();
  return p == 0 ? kNaN : static_cast<double>(tp) / static_cast<double>(p);
}

double ConfusionMatrix::specificity() const {
  const auto n = negatives();
  return n == 0 ? kNaN : static_cast<double>(tn) / static_cast<double>(n);
}

double ConfusionMatrix::geometric_mean() const {
  const double se = sensitivity();
  const double sp = specificity();
  if (std::isnan(se) || std::isnan(sp)) return kNaN;
  return std::sqrt(se * sp);
}

double ConfusionMatrix::accuracy() const {
  const auto t = total();
  return t == 0 ? kNaN : static_cast<double>(tp + tn) / static_cast<double>(t);
}

double ConfusionMatrix::precision() const {
  const auto denom = tp + fp;
  return denom == 0 ? kNaN : static_cast<double>(tp) / static_cast<double>(denom);
}

double ConfusionMatrix::f1() const {
  const double p = precision();
  const double r = sensitivity();
  if (std::isnan(p) || std::isnan(r) || p + r == 0.0) return kNaN;
  return 2.0 * p * r / (p + r);
}

ConfusionMatrix& ConfusionMatrix::operator+=(const ConfusionMatrix& other) {
  tp += other.tp;
  tn += other.tn;
  fp += other.fp;
  fn += other.fn;
  return *this;
}

ConfusionMatrix tally(std::span<const int> truth, std::span<const int> predicted) {
  if (truth.size() != predicted.size()) throw std::invalid_argument("tally: size mismatch");
  ConfusionMatrix cm;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == +1) {
      if (predicted[i] == +1) {
        ++cm.tp;
      } else {
        ++cm.fn;
      }
    } else {
      if (predicted[i] == +1) {
        ++cm.fp;
      } else {
        ++cm.tn;
      }
    }
  }
  return cm;
}

FoldAverages average_over_folds(std::span<const ConfusionMatrix> folds) {
  FoldAverages avg;
  double se_acc = 0.0, sp_acc = 0.0, gm_acc = 0.0;
  for (const auto& f : folds) {
    const double se = f.sensitivity();
    const double sp = f.specificity();
    const double gm = f.geometric_mean();
    if (!std::isnan(se)) {
      se_acc += se;
      ++avg.folds_with_se;
    }
    if (!std::isnan(sp)) {
      sp_acc += sp;
      ++avg.folds_with_sp;
    }
    if (!std::isnan(gm)) {
      gm_acc += gm;
      ++avg.folds_with_gm;
    }
  }
  if (avg.folds_with_se > 0) avg.sensitivity = se_acc / static_cast<double>(avg.folds_with_se);
  if (avg.folds_with_sp > 0) avg.specificity = sp_acc / static_cast<double>(avg.folds_with_sp);
  if (avg.folds_with_gm > 0) avg.geometric_mean = gm_acc / static_cast<double>(avg.folds_with_gm);
  return avg;
}

}  // namespace svt::svm
