// SVM kernel functions.
//
// The paper compares linear, quadratic, cubic and Gaussian kernels (Table I)
// and settles on the quadratic polynomial k(x,z) = (x.z + 1)^2, whose
// inference maps onto the Figure-2 hardware pipeline (MAC1 -> +1 -> square).
#pragma once

#include <span>
#include <string>

namespace svt::svm {

enum class KernelType { kLinear, kPolynomial, kRbf };

/// Kernel description. For polynomial: (x.z + coef0)^degree. For RBF:
/// exp(-gamma * |x-z|^2).
struct Kernel {
  KernelType type = KernelType::kPolynomial;
  int degree = 2;
  double coef0 = 1.0;
  double gamma = 0.1;

  /// Evaluate k(x, z). Throws std::invalid_argument on size mismatch.
  double operator()(std::span<const double> x, std::span<const double> z) const;

  /// Human-readable name ("linear", "quadratic", "cubic", "poly-d", "rbf").
  std::string name() const;

  bool operator==(const Kernel&) const = default;
};

/// Convenience factories matching Table I.
Kernel linear_kernel();
Kernel quadratic_kernel();
Kernel cubic_kernel();
Kernel gaussian_kernel(double gamma);

/// Plain dot product (exposed for the fixed-point pipeline and tests).
double dot(std::span<const double> x, std::span<const double> z);

}  // namespace svt::svm
