#include "svm/scaler.hpp"

#include <cmath>
#include <stdexcept>

namespace svt::svm {

void StandardScaler::fit(std::span<const std::vector<double>> samples) {
  if (samples.empty()) throw std::invalid_argument("StandardScaler::fit: empty input");
  const std::size_t nfeat = samples.front().size();
  for (const auto& row : samples) {
    if (row.size() != nfeat) throw std::invalid_argument("StandardScaler::fit: ragged rows");
  }
  mean_.assign(nfeat, 0.0);
  std_.assign(nfeat, 0.0);
  const double n = static_cast<double>(samples.size());
  for (const auto& row : samples) {
    for (std::size_t j = 0; j < nfeat; ++j) mean_[j] += row[j];
  }
  for (double& m : mean_) m /= n;
  for (const auto& row : samples) {
    for (std::size_t j = 0; j < nfeat; ++j) {
      const double d = row[j] - mean_[j];
      std_[j] += d * d;
    }
  }
  for (double& s : std_) s = std::sqrt(s / n);
}

void StandardScaler::transform_inplace(std::vector<double>& sample) const {
  if (!fitted()) throw std::invalid_argument("StandardScaler: not fitted");
  if (sample.size() != mean_.size())
    throw std::invalid_argument("StandardScaler::transform: size mismatch");
  if (!gains_.empty() && gains_.size() != mean_.size())
    throw std::invalid_argument("StandardScaler::transform: post_gains size mismatch");
  for (std::size_t j = 0; j < sample.size(); ++j) {
    if (mode_ == ScalerMode::kCenterOnly) {
      sample[j] -= mean_[j];
    } else {
      sample[j] = std_[j] > 0.0 ? (sample[j] - mean_[j]) / std_[j] : 0.0;
    }
    if (!gains_.empty()) sample[j] *= gains_[j];
  }
}

std::vector<double> StandardScaler::transform(std::span<const double> sample) const {
  std::vector<double> out(sample.begin(), sample.end());
  transform_inplace(out);
  return out;
}

std::vector<std::vector<double>> StandardScaler::transform_all(
    std::span<const std::vector<double>> samples) const {
  std::vector<std::vector<double>> out;
  out.reserve(samples.size());
  for (const auto& row : samples) out.push_back(transform(row));
  return out;
}

}  // namespace svt::svm
