#include "svm/scaler.hpp"

#include <cmath>
#include <iomanip>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "svm/model.hpp"

namespace svt::svm {

void StandardScaler::fit(std::span<const std::vector<double>> samples) {
  if (samples.empty()) throw std::invalid_argument("StandardScaler::fit: empty input");
  const std::size_t nfeat = samples.front().size();
  for (const auto& row : samples) {
    if (row.size() != nfeat) throw std::invalid_argument("StandardScaler::fit: ragged rows");
  }
  mean_.assign(nfeat, 0.0);
  std_.assign(nfeat, 0.0);
  const double n = static_cast<double>(samples.size());
  for (const auto& row : samples) {
    for (std::size_t j = 0; j < nfeat; ++j) mean_[j] += row[j];
  }
  for (double& m : mean_) m /= n;
  for (const auto& row : samples) {
    for (std::size_t j = 0; j < nfeat; ++j) {
      const double d = row[j] - mean_[j];
      std_[j] += d * d;
    }
  }
  for (double& s : std_) s = std::sqrt(s / n);
}

void StandardScaler::transform_inplace(std::vector<double>& sample) const {
  transform_inplace(std::span<double>(sample));
}

void StandardScaler::transform_inplace(std::span<double> sample) const {
  if (!fitted()) throw std::invalid_argument("StandardScaler: not fitted");
  if (sample.size() != mean_.size())
    throw std::invalid_argument("StandardScaler::transform: size mismatch");
  if (!gains_.empty() && gains_.size() != mean_.size())
    throw std::invalid_argument("StandardScaler::transform: post_gains size mismatch");
  for (std::size_t j = 0; j < sample.size(); ++j) {
    if (mode_ == ScalerMode::kCenterOnly) {
      sample[j] -= mean_[j];
    } else {
      sample[j] = std_[j] > 0.0 ? (sample[j] - mean_[j]) / std_[j] : 0.0;
    }
    if (!gains_.empty()) sample[j] *= gains_[j];
  }
}

std::vector<double> StandardScaler::transform(std::span<const double> sample) const {
  std::vector<double> out(sample.begin(), sample.end());
  transform_inplace(out);
  return out;
}

std::vector<std::vector<double>> StandardScaler::transform_all(
    std::span<const std::vector<double>> samples) const {
  std::vector<std::vector<double>> out;
  out.reserve(samples.size());
  for (const auto& row : samples) out.push_back(transform(row));
  return out;
}

void StandardScaler::save(std::ostream& os) const {
  os << "svmtailor-scaler v1\n";
  os << "mode " << static_cast<int>(mode_) << '\n';
  os << "nfeat " << mean_.size() << '\n';
  os << std::setprecision(17);
  os << "means";
  for (double m : mean_) os << ' ' << m;
  os << "\nstds";
  for (double s : std_) os << ' ' << s;
  os << "\ngains " << gains_.size();
  for (double g : gains_) os << ' ' << g;
  os << '\n';
}

StandardScaler StandardScaler::load(std::istream& is) {
  io::expect_header(is, "svmtailor-scaler", "v1", "StandardScaler::load");
  StandardScaler s;
  int mode = 0;
  io::expect_tag(is, "mode", "StandardScaler::load");
  is >> mode;
  if (is && mode != static_cast<int>(ScalerMode::kZScore) &&
      mode != static_cast<int>(ScalerMode::kCenterOnly))
    throw std::invalid_argument("StandardScaler::load: unknown scaler mode");
  s.mode_ = static_cast<ScalerMode>(mode);
  std::size_t nfeat = 0;
  io::expect_tag(is, "nfeat", "StandardScaler::load");
  is >> nfeat;
  io::require_good(is, "StandardScaler::load");
  s.mean_.resize(nfeat);
  s.std_.resize(nfeat);
  io::expect_tag(is, "means", "StandardScaler::load");
  for (double& m : s.mean_) is >> m;
  io::expect_tag(is, "stds", "StandardScaler::load");
  for (double& v : s.std_) is >> v;
  std::size_t ngains = 0;
  io::expect_tag(is, "gains", "StandardScaler::load");
  is >> ngains;
  io::require_good(is, "StandardScaler::load");
  s.gains_.resize(ngains);
  for (double& g : s.gains_) is >> g;
  io::require_good(is, "StandardScaler::load");
  return s;
}

}  // namespace svt::svm
