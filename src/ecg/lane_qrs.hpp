// Cross-patient SIMD lane engine for streaming Pan-Tompkins QRS detection.
//
// StreamingQrsDetector's serial IIR chain (~13 ns/sample) cannot be
// vectorised *within* one patient without changing FP rounding order — but a
// ward runs many patients through the *same* chain, so it vectorises
// *across* them: LaneQrsDetector holds up to kMaxLanes (8) patient streams
// as structure-of-arrays filter state and steps 4 (AVX2) or 2 (SSE2) lanes
// per instruction, one patient per SIMD lane.
//
// Bit-exactness contract: each lane executes the exact per-sample operation
// sequence of StreamingQrsDetector — same expression order, elementwise IEEE
// vector arithmetic, no FMA — so every lane's beat stream is bit-identical
// to a dedicated scalar detector fed the same samples, for every dispatch
// tier (asserted by tests/test_lane_qrs.cpp). Divergent control flow
// (threshold learning, peak confirmation, refractory, dedup) runs per lane:
// samples are ingested in lockstep blocks of <= kStepBlock, then each lane
// replays its decision catch-up scalar. Deferring decisions by a bounded
// block is exact because decisions never feed back into the filter chain and
// the raw-search clamp min(raw_end, i + win/4) is unaffected by a later
// raw_end (the decision lag is exactly win/4); the history rings carry
// kStepBlock extra capacity to cover the deferral.
//
// Lane lifecycle: lanes occupy fixed slots (no state moves on churn), so
// patients join (add_lane) and leave (remove_lane) without perturbing other
// lanes' results; a freed slot keeps its ring allocations pooled for the
// next occupant, bounding resident memory by the pack width, not by patient
// churn. Ragged input (lanes with different chunk lengths, idle lanes,
// fresh lanes) falls back to the scalar per-lane step; vector_samples() /
// scalar_samples() expose how much of the traffic ran in lockstep.
//
// Dispatch: the tier is chosen at construction from runtime cpuid (AVX2 ->
// SSE2 -> scalar; see common/simd_dispatch.hpp), clamped to what this build
// compiled; one binary runs everywhere, and SVT_LANE_ISA=scalar|sse2 forces
// the narrower paths for CI parity coverage.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/simd_dispatch.hpp"
#include "ecg/lane_qrs_kernel.hpp"
#include "ecg/streaming_qrs.hpp"

namespace svt::ecg {

/// Dispatch tier the lane engine will actually run at: the runtime tier
/// (cpuid + override) clamped to what this build compiled AVX2 code for.
common::SimdTier lane_effective_tier();

/// simd_tier_name(lane_effective_tier()): "scalar", "sse2" or "avx2".
const char* lane_isa_name();

/// A pack of up to kMaxLanes same-rate patient streams stepped in SIMD
/// lockstep, each lane bit-identical to a StreamingQrsDetector.
class LaneQrsDetector {
 public:
  static constexpr std::size_t kMaxLanes = detail::kMaxLanes;

  /// One lane's input for a push() round.
  struct LaneChunk {
    std::size_t lane = 0;
    std::span<const double> samples;
  };

  /// Same validation rules as StreamingQrsDetector. Construction allocates
  /// nothing per lane; ring storage appears on add_lane.
  explicit LaneQrsDetector(double fs_hz, const PanTompkinsParams& params = {});

  /// Claim a free lane slot for a new stream (fresh detector state; pooled
  /// ring storage from a previous occupant is reused). Requires
  /// free_lanes() > 0.
  std::size_t add_lane();

  /// Per-lane filter-chain scalars (the lane's column of LaneFilterState).
  static constexpr std::size_t kFilterStateDoubles = 13;

  /// One lane's complete stream state, exported by detach_lane and imported
  /// bit-exactly by attach_lane — possibly into a different pack, as long as
  /// both packs share fs_hz and params (the sharded engine migrates patients
  /// between workers this way). Opaque to callers: move it, don't poke it.
  struct DetachedLane {
    struct Ring {
      double& at(std::int64_t index) { return buf[static_cast<std::size_t>(index) & mask]; }
      double at(std::int64_t index) const { return buf[static_cast<std::size_t>(index) & mask]; }
      std::vector<double> buf;
      std::size_t mask = 0;
    };
    Ring squared, integrated, raw;
    BeatRing beats;
    std::int64_t n = 0;
    std::int64_t cursor = 1;
    bool finished = false;
    bool thresholds_ready = false;
    double spki = 0.0;
    double npki = 0.0;
    std::int64_t last_peak_idx = 0;
    bool have_peak = false;
    double last_kept_time = 0.0;
    bool have_kept = false;
    std::array<double, kFilterStateDoubles> filter{};
  };

  /// Export a lane's stream state and release the slot (like remove_lane,
  /// except the ring storage leaves with the state instead of staying
  /// pooled). Requires the lane to be active. The detached stream continues
  /// bit-exactly wherever it is attached next.
  DetachedLane detach_lane(std::size_t lane);

  /// Claim a free slot and import a detached stream into it, continuing the
  /// stream bit-exactly. Requires free_lanes() > 0 and a detach from a
  /// detector with the same fs_hz and params. Returns the claimed slot.
  std::size_t attach_lane(DetachedLane&& detached);

  /// Release a lane slot. Other lanes' streams and results are untouched;
  /// the slot's ring storage stays pooled for the next occupant.
  void remove_lane(std::size_t lane);

  bool lane_active(std::size_t lane) const { return lanes_[check(lane)].active; }
  std::size_t active_lanes() const { return active_count_; }
  std::size_t free_lanes() const { return kMaxLanes - active_count_; }

  /// Advance several lanes together — the lane-parallel hot path. Chunks
  /// may differ in length (ragged tails run scalar); at most one chunk per
  /// lane per call. Confirmed beats land in each lane's beats() ring.
  void push(std::span<const LaneChunk> chunks);

  /// Single-lane convenience (exactly push() of one chunk).
  void push_one(std::size_t lane, std::span<const double> samples_mv);

  /// End-of-record flush for one lane; StreamingQrsDetector::finish
  /// semantics. Other lanes are unaffected.
  void finish(std::size_t lane);

  const BeatRing& beats(std::size_t lane) const { return lanes_[check(lane)].beats; }
  void drop_beats_before(std::size_t lane, std::int64_t sample_index) {
    lanes_[check(lane)].beats.drop_before(sample_index);
  }
  std::int64_t samples_seen(std::size_t lane) const { return lanes_[check(lane)].n; }
  std::int64_t final_through(std::size_t lane) const;
  std::int64_t finality_lag() const {
    return static_cast<std::int64_t>(win_ + decision_lag_);
  }
  double fs_hz() const { return coeffs_.fs; }

  /// Tier this pack dispatches to (fixed at construction).
  common::SimdTier tier() const { return tier_; }

  /// Samples stepped in vector lockstep / by the scalar fallback, summed
  /// over all lanes. scalar/(scalar+vector) is the scalar-tail fraction.
  std::uint64_t vector_samples() const { return vector_samples_; }
  std::uint64_t scalar_samples() const { return scalar_samples_; }

  /// Ring + beat storage currently resident across all lane slots
  /// (including pooled storage of freed slots) — bounded by kMaxLanes times
  /// the per-stream ring footprint, independent of patient churn.
  std::size_t resident_bytes() const;

 private:
  /// Power-of-two, absolute-indexed history ring (same scheme as
  /// StreamingQrsDetector::HistoryRing).
  struct Ring {
    void init(std::size_t min_capacity);
    double& at(std::int64_t index) { return buf[static_cast<std::size_t>(index) & mask]; }
    double at(std::int64_t index) const { return buf[static_cast<std::size_t>(index) & mask]; }
    std::vector<double> buf;
    std::size_t mask = 0;
  };

  struct LaneState {
    Ring squared, integrated, raw;
    BeatRing beats;
    std::int64_t n = 0;
    std::int64_t cursor = 1;
    bool active = false;
    bool finished = false;
    bool thresholds_ready = false;
    double spki = 0.0;
    double npki = 0.0;
    std::int64_t last_peak_idx = 0;
    bool have_peak = false;
    double last_kept_time = 0.0;
    bool have_kept = false;
  };

  static std::size_t check(std::size_t lane) {
    SVT_ASSERT(lane < kMaxLanes);
    return lane;
  }

  void reset_lane(std::size_t lane);
  void step_scalar(std::size_t lane, const double* x, std::size_t count);
  void after_block(std::size_t lane);
  void learn_thresholds(std::size_t lane, std::int64_t learning);
  void replay_decisions(std::size_t lane, std::int64_t limit, std::int64_t raw_end);
  void take_peak(std::size_t lane, std::int64_t i, std::int64_t raw_end, double peak);
  void run_group(std::size_t base, std::size_t width, std::array<const double*, kMaxLanes>& cur,
                 std::array<std::size_t, kMaxLanes>& rem);

  detail::LaneCoeffs coeffs_;
  detail::LaneFilterState filt_;
  PanTompkinsParams params_;
  std::size_t win_ = 0;
  std::size_t refractory_ = 0;
  std::int64_t learning_n_ = 0;
  std::size_t decision_lag_ = 0;
  common::SimdTier tier_ = common::SimdTier::kScalar;

  std::array<LaneState, kMaxLanes> lanes_;
  std::size_t active_count_ = 0;
  std::uint64_t vector_samples_ = 0;
  std::uint64_t scalar_samples_ = 0;
};

}  // namespace svt::ecg
