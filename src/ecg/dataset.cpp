#include "ecg/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/assert.hpp"

namespace svt::ecg {

std::size_t Dataset::num_windows() const {
  std::size_t n = 0;
  for (const auto& s : sessions) n += s.windows.size();
  return n;
}

std::size_t Dataset::num_seizure_windows() const {
  std::size_t n = 0;
  for (const auto& s : sessions) {
    for (const auto& w : s.windows) {
      if (w.label > 0) ++n;
    }
  }
  return n;
}

std::vector<const WindowRecord*> Dataset::all_windows() const {
  std::vector<const WindowRecord*> out;
  out.reserve(num_windows());
  for (const auto& s : sessions) {
    for (const auto& w : s.windows) out.push_back(&w);
  }
  return out;
}

namespace {

/// Place `count` seizures in a session, keeping them clear of the session
/// edges and of each other (>= 2 windows apart), so that pre/post-ictal
/// ramps stay inside the session.
std::vector<SeizureEvent> place_seizures(int count, const DatasetParams& params,
                                         std::mt19937_64& rng) {
  std::vector<SeizureEvent> out;
  if (count <= 0) return out;
  const double duration = params.session_duration_s();
  // Keep one window clear at each edge when the session affords it; shrink
  // the margins (and the inter-seizure gap) for short sessions so small test
  // datasets remain generatable.
  double lo = std::min(params.window_s, duration * 0.15);
  double hi = duration - std::min(2.0 * params.window_s, duration * 0.3);
  if (hi <= lo) {
    lo = duration * 0.1;
    hi = duration * 0.9;
  }
  std::uniform_real_distribution<double> onset_dist(lo, hi);
  std::uniform_real_distribution<double> len_dist(60.0, 150.0);
  std::uniform_real_distribution<double> intensity_dist(0.55, 1.3);
  const double min_gap =
      std::min(2.0 * params.window_s + 180.0, (hi - lo) / static_cast<double>(count));

  int attempts = 0;
  while (static_cast<int>(out.size()) < count && attempts < 10000) {
    ++attempts;
    SeizureEvent candidate;
    candidate.onset_s = onset_dist(rng);
    candidate.duration_s = len_dist(rng);
    candidate.intensity = intensity_dist(rng);
    bool clear = true;
    for (const auto& s : out) {
      if (std::abs(s.onset_s - candidate.onset_s) < min_gap) {
        clear = false;
        break;
      }
    }
    if (clear) out.push_back(candidate);
  }
  if (static_cast<int>(out.size()) < count)
    throw std::invalid_argument("place_seizures: session too short for requested seizure count");
  std::sort(out.begin(), out.end(),
            [](const SeizureEvent& a, const SeizureEvent& b) { return a.onset_s < b.onset_s; });
  return out;
}

/// Scatter non-ictal arousal bursts over the session (Poisson-ish count).
std::vector<ArousalEvent> place_arousals(const PatientProfile& patient,
                                         const DatasetParams& params, std::mt19937_64& rng) {
  const double duration = params.session_duration_s();
  const double expected = patient.arousal_rate_per_hour * duration / 3600.0;
  std::poisson_distribution<int> count_dist(expected);
  std::uniform_real_distribution<double> onset_dist(0.0, duration);
  std::uniform_real_distribution<double> len_dist(40.0, 150.0);
  std::uniform_real_distribution<double> mag_dist(0.4, 1.0);
  const int count = count_dist(rng);
  std::vector<ArousalEvent> out;
  out.reserve(static_cast<std::size_t>(std::max(0, count)));
  for (int i = 0; i < count; ++i) {
    ArousalEvent ev;
    ev.onset_s = onset_dist(rng);
    ev.duration_s = len_dist(rng);
    ev.magnitude = mag_dist(rng);
    out.push_back(ev);
  }
  return out;
}

/// Scatter artifact episodes over the session.
std::vector<ArtifactEvent> place_artifacts(const PatientProfile& patient,
                                           const DatasetParams& params, std::mt19937_64& rng) {
  const double duration = params.session_duration_s();
  const double expected = patient.artifact_rate_per_hour * duration / 3600.0;
  std::poisson_distribution<int> count_dist(expected);
  std::uniform_real_distribution<double> onset_dist(0.0, duration);
  std::uniform_real_distribution<double> len_dist(20.0, 70.0);
  std::uniform_real_distribution<double> sev_dist(0.3, 1.0);
  const int count = count_dist(rng);
  std::vector<ArtifactEvent> out;
  out.reserve(static_cast<std::size_t>(std::max(0, count)));
  for (int i = 0; i < count; ++i) {
    ArtifactEvent ev;
    ev.onset_s = onset_dist(rng);
    ev.duration_s = len_dist(rng);
    ev.severity = sev_dist(rng);
    out.push_back(ev);
  }
  return out;
}

}  // namespace

Dataset generate_dataset(const DatasetParams& params) {
  if (params.num_sessions <= 0) throw std::invalid_argument("generate_dataset: num_sessions <= 0");
  if (params.windows_per_session <= 0)
    throw std::invalid_argument("generate_dataset: windows_per_session <= 0");
  if (params.window_s <= 0.0) throw std::invalid_argument("generate_dataset: window_s <= 0");
  if (params.total_seizures < 0)
    throw std::invalid_argument("generate_dataset: total_seizures < 0");

  Dataset ds;
  ds.patients = make_default_cohort();
  const int n_patients = static_cast<int>(ds.patients.size());

  // Distribute seizures round-robin so every session gets at least
  // floor(total/sessions); leftovers go to the first sessions.
  std::vector<int> seizure_counts(static_cast<std::size_t>(params.num_sessions),
                                  params.total_seizures / params.num_sessions);
  for (int i = 0; i < params.total_seizures % params.num_sessions; ++i)
    ++seizure_counts[static_cast<std::size_t>(i)];

  std::mt19937_64 master_rng(params.seed);

  for (int s = 0; s < params.num_sessions; ++s) {
    SessionRecord session;
    session.session_index = s;
    session.patient_id = s % n_patients;  // Sessions cycle through the cohort.
    session.duration_s = params.session_duration_s();

    // Per-session RNG derived from the master seed keeps sessions independent
    // of each other (and of windows_per_session) for reproducibility.
    std::mt19937_64 rng(master_rng());

    const auto& patient = ds.patients[static_cast<std::size_t>(session.patient_id)];
    session.seizures = place_seizures(seizure_counts[static_cast<std::size_t>(s)], params, rng);
    session.arousals = place_arousals(patient, params, rng);
    session.artifacts = place_artifacts(patient, params, rng);

    SessionSignalParams sig;
    sig.duration_s = session.duration_s;
    sig.respiration_fs_hz = params.respiration_fs_hz;
    SessionEvents events{session.seizures, session.arousals, session.artifacts};
    const auto rr = generate_rr_series(patient, events, sig, rng);
    const auto resp = generate_respiration(patient, events, sig, rng);

    session.windows.reserve(static_cast<std::size_t>(params.windows_per_session));
    for (int w = 0; w < params.windows_per_session; ++w) {
      WindowRecord rec;
      rec.patient_id = session.patient_id;
      rec.session_index = s;
      rec.start_s = w * params.window_s;
      const double end_s = rec.start_s + params.window_s;
      rec.label = -1;
      for (const auto& sz : session.seizures) {
        // A window is ictal if the seizure covers a meaningful part of it
        // (>= 30 s overlap), matching how clinical annotations are rolled
        // up to window labels.
        const double overlap = std::min(end_s, sz.end_s()) - std::max(rec.start_s, sz.onset_s);
        if (overlap >= 30.0) {
          rec.label = +1;
          break;
        }
      }
      rec.rr = slice_rr(rr, rec.start_s, end_s);
      rec.edr = slice_respiration(resp, rec.start_s, end_s);
      session.windows.push_back(std::move(rec));
    }
    ds.sessions.push_back(std::move(session));
  }
  return ds;
}

std::vector<Fold> make_session_folds(const Dataset& dataset) {
  // Flattened window order must match Dataset::all_windows().
  std::vector<int> window_session;
  window_session.reserve(dataset.num_windows());
  for (const auto& s : dataset.sessions) {
    for (std::size_t i = 0; i < s.windows.size(); ++i) window_session.push_back(s.session_index);
  }

  std::vector<Fold> folds;
  folds.reserve(dataset.sessions.size());
  for (const auto& s : dataset.sessions) {
    Fold f;
    f.test_session_index = s.session_index;
    for (std::size_t i = 0; i < window_session.size(); ++i) {
      if (window_session[i] == s.session_index) {
        f.test_indices.push_back(i);
      } else {
        f.train_indices.push_back(i);
      }
    }
    folds.push_back(std::move(f));
  }
  return folds;
}

}  // namespace svt::ecg
