#include "ecg/patient.hpp"

namespace svt::ecg {

std::vector<PatientProfile> make_default_cohort() {
  std::vector<PatientProfile> cohort(7);
  for (int i = 0; i < 7; ++i) {
    cohort[static_cast<std::size_t>(i)].id = i;
    cohort[static_cast<std::size_t>(i)].name = "P" + std::to_string(i + 1);
  }

  // Patient-to-patient variation: baselines, HRV magnitudes, noise levels and
  // ictal signatures differ so that no single feature (and no linear
  // combination) cleanly separates seizures across the whole cohort.
  cohort[0].baseline_hr_bpm = 68.0;
  cohort[0].ictal_hr_delta_bpm = 34.0;
  cohort[0].lf_amplitude_bpm = 2.8;
  cohort[0].resp_rate_hz = 0.22;

  // Bradycardic responder with a vagal-surge signature: ictal heart-rate
  // *drop*, HRV *enhancement* (RMSSD rises with vagal tone) and respiratory
  // slowing. Together with patients 6 and 7 below, every major autonomic cue
  // is bimodal across the cohort -- the reason a linear SVM underperforms
  // polynomial kernels on this task (paper Table I).
  cohort[1].baseline_hr_bpm = 75.0;
  cohort[1].ictal_response = IctalResponse::kBradycardia;
  cohort[1].ictal_hr_delta_bpm = 24.0;
  cohort[1].ictal_hrv_suppression = 1.6;  // >1: vagal HRV enhancement.
  cohort[1].ictal_resp_rate_delta_hz = -0.07;
  cohort[1].ictal_resp_irregularity = 0.05;  // Vagal seizures: slow *regular* breathing.
  cohort[1].hf_amplitude_bpm = 2.4;
  cohort[1].resp_rate_hz = 0.27;
  cohort[1].rr_noise_sigma_s = 0.016;

  cohort[2].baseline_hr_bpm = 81.0;
  cohort[2].ictal_hr_delta_bpm = 24.0;
  cohort[2].hr_drift_sigma_bpm = 4.0;
  cohort[2].resp_rate_hz = 0.30;
  cohort[2].ectopic_rate_per_min = 2.2;

  cohort[3].baseline_hr_bpm = 64.0;
  cohort[3].ictal_hr_delta_bpm = 38.0;
  cohort[3].lf_amplitude_bpm = 2.0;
  cohort[3].hf_amplitude_bpm = 1.4;
  cohort[3].resp_rate_hz = 0.24;

  cohort[4].baseline_hr_bpm = 72.0;
  cohort[4].ictal_hr_delta_bpm = 26.0;
  cohort[4].ictal_hrv_suppression = 0.55;
  cohort[4].resp_rate_hz = 0.26;
  cohort[4].rr_noise_sigma_s = 0.014;

  // Further bradycardic responders: ictal heart-rate *decrease* with vagal
  // HRV enhancement and respiratory slowing. "Deviates from the patient norm
  // in either direction" is the true class boundary, which a linear SVM
  // cannot express but a quadratic one can.
  cohort[5].baseline_hr_bpm = 77.0;
  cohort[5].ictal_response = IctalResponse::kBradycardia;
  cohort[5].ictal_hr_delta_bpm = 22.0;
  cohort[5].ictal_hrv_suppression = 1.4;
  cohort[5].ictal_resp_rate_delta_hz = -0.08;
  cohort[5].ictal_resp_irregularity = 0.04;
  cohort[5].resp_rate_hz = 0.28;

  cohort[6].baseline_hr_bpm = 70.0;
  cohort[6].ictal_response = IctalResponse::kBradycardia;
  cohort[6].ictal_hr_delta_bpm = 20.0;
  cohort[6].ictal_hrv_suppression = 1.5;
  cohort[6].ictal_resp_rate_delta_hz = -0.05;
  cohort[6].ictal_resp_irregularity = 0.06;
  cohort[6].hf_amplitude_bpm = 2.1;
  cohort[6].resp_rate_hz = 0.23;
  cohort[6].ectopic_rate_per_min = 1.8;

  return cohort;
}

}  // namespace svt::ecg
