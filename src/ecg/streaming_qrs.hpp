// Incremental (streaming) Pan-Tompkins QRS detection.
//
// The batch detector (ecg::detect_qrs) re-runs the whole filter chain over
// every analysis window, so a streaming runtime with overlapping windows
// pays O(window / stride) passes per raw sample. This detector consumes
// each sample exactly once: the band-pass biquads, the five-point
// derivative's delay line, the trailing moving-window integrator, and the
// adaptive dual thresholds are all persistent state, so the amortised cost
// is O(1) per sample regardless of the windowing on top.
//
// Equivalence contract: the whole chain is causal, so feeding a record
// through push() (in chunks of any size) and then finish() yields *bit-
// identical* beats to detect_qrs over the same record — same filter
// arithmetic in the same order, same threshold updates, same raw-signal
// peak localisation, same dedup rule (asserted by
// tests/test_streaming_qrs.cpp). Mid-stream, detection runs a fixed
// lookahead behind the newest sample:
//
//  * the local-max test needs integrated[i+1] (one sample), and the R-peak
//    localisation searches the raw signal up to i + win/4 — so the decision
//    cursor trails the newest sample by max(1, win/4) samples;
//  * a future decision at index i can still place a beat as far back as
//    i - win, so a beat is *final* (no later sample can add one before it)
//    only once the cursor has moved win past it.
//
// Detected beats land in a BeatRing of (absolute sample index, raw
// amplitude); the windowing layer slices them per window and drops them as
// the stride advances. The ring grows geometrically but is steady-state
// allocation-free once warm.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "dsp/filter.hpp"
#include "ecg/qrs_detect.hpp"

namespace svt::ecg {

/// One detected heartbeat: where its R peak sits in the raw stream and the
/// raw-signal amplitude there.
struct Beat {
  std::int64_t sample_index = 0;  ///< Absolute index into the patient stream.
  double amplitude_mv = 0.0;      ///< Raw ECG value at the R peak.
};

/// Growable ring of beats ordered by sample index: beats append at the
/// tail as they are confirmed and are dropped from the head as the window
/// stride advances. Capacity doubles when full (amortised; no steady-state
/// allocation once sized for the widest window).
class BeatRing {
 public:
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Allocated slots (for residency accounting; power of two once grown).
  std::size_t capacity() const { return buf_.size(); }

  /// Drop every beat; keeps the allocation (ring reuse across streams).
  void clear() {
    head_ = 0;
    size_ = 0;
  }

  /// i-th oldest beat (0 = head).
  const Beat& operator[](std::size_t i) const {
    SVT_ASSERT(i < size_);
    return buf_[(head_ + i) & (buf_.size() - 1)];
  }

  void push_back(const Beat& beat) {
    if (size_ == buf_.size()) grow();
    buf_[(head_ + size_) & (buf_.size() - 1)] = beat;
    ++size_;
  }

  /// Drop beats from the head whose sample index is < `sample_index`.
  void drop_before(std::int64_t sample_index) {
    while (size_ > 0 && buf_[head_ & (buf_.size() - 1)].sample_index < sample_index) {
      head_ = (head_ + 1) & (buf_.size() - 1);
      --size_;
    }
  }

 private:
  void grow();

  std::vector<Beat> buf_;  ///< Power-of-two capacity (0 until first push).
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

/// Stateful online Pan-Tompkins detector for one patient stream.
class StreamingQrsDetector {
 public:
  /// Throws std::invalid_argument on a non-positive sampling rate or a
  /// band-pass outside (0, fs/2) — the same rules as the batch chain.
  explicit StreamingQrsDetector(double fs_hz, const PanTompkinsParams& params = {});

  /// Consume a chunk of raw samples (any size, including empty). Confirmed
  /// beats are appended to beats(). Must not be called after finish().
  void push(std::span<const double> samples_mv);

  /// Flush the tail of a finite record: runs the remaining decisions with
  /// the batch detector's end-of-record clamping (and, for records shorter
  /// than the learning period, its shortened-learning thresholds), making
  /// the total beat set bit-identical to detect_qrs over the same record.
  /// Only meaningful for finite records; a live stream never calls this.
  void finish();

  /// Confirmed beats, oldest first, ordered by sample index.
  const BeatRing& beats() const { return beats_; }

  /// Drop confirmed beats before an absolute sample index (stride advance).
  void drop_beats_before(std::int64_t sample_index) { beats_.drop_before(sample_index); }

  /// Samples consumed so far.
  std::int64_t samples_seen() const { return n_; }

  /// Beats with sample_index < final_through() are final: no future sample
  /// can insert, move, or suppress a beat before this bound.
  std::int64_t final_through() const;

  /// Worst-case gap between samples_seen() and final_through(): a window
  /// whose end trails samples_seen() by at least this much is complete.
  std::int64_t finality_lag() const {
    return static_cast<std::int64_t>(win_ + decision_lag_);
  }

  double fs_hz() const { return fs_; }

 private:
  struct HistoryRing {
    void init(std::size_t min_capacity);
    double& at(std::int64_t index) { return buf[static_cast<std::size_t>(index) & mask]; }
    std::vector<double> buf;  ///< Power-of-two capacity, absolute-indexed.
    std::size_t mask = 0;
  };

  void ingest(double x);
  void learn_thresholds(std::int64_t learning);
  void decide(std::int64_t i, std::int64_t raw_end);

  // --- Configuration (fixed at construction) ---------------------------------
  double fs_ = 0.0;
  PanTompkinsParams params_;
  std::size_t win_ = 0;           ///< Integration window length in samples.
  std::size_t refractory_ = 0;    ///< Minimum decision spacing in samples.
  std::int64_t learning_n_ = 0;   ///< Threshold-learning length in samples.
  std::size_t decision_lag_ = 0;  ///< max(1, win/4): lookahead of a decision.

  // --- Filter chain state ----------------------------------------------------
  dsp::Biquad hp_;
  dsp::Biquad lp_;
  double f1_ = 0.0, f2_ = 0.0, f3_ = 0.0, f4_ = 0.0;  ///< Filtered-sample delay line.
  double integ_acc_ = 0.0;         ///< Running trailing-window sum.
  HistoryRing squared_;            ///< Squared derivative (for the subtraction).
  HistoryRing integrated_;         ///< Integrator output (local-max + learning).
  HistoryRing raw_;                ///< Raw samples (R-peak localisation).

  // --- Adaptive thresholds ---------------------------------------------------
  bool thresholds_ready_ = false;
  double spki_ = 0.0;
  double npki_ = 0.0;
  std::int64_t last_peak_idx_ = 0;
  bool have_peak_ = false;
  double last_kept_time_ = 0.0;  ///< Dedup: time of the newest confirmed beat.
  bool have_kept_ = false;

  std::int64_t n_ = 0;       ///< Samples consumed.
  std::int64_t cursor_ = 1;  ///< Next decision index (batch loop starts at 1).
  bool finished_ = false;

  BeatRing beats_;
};

}  // namespace svt::ecg
