// Internal lockstep-kernel interface of the cross-patient lane engine.
//
// The per-sample Pan-Tompkins arithmetic (two biquads, five-point
// derivative, squaring, trailing integrator) is lane-invariant: every
// patient at the same sampling rate runs the *same* filter chain over
// *different* data. The kernels here step several patients' chains in
// lockstep — one patient per SIMD lane — so the vector path performs the
// exact per-lane operation sequence of StreamingQrsDetector::ingest and is
// bit-identical to it by construction (elementwise IEEE add/mul/sub/div,
// no FMA contraction, identical expression order).
//
// Layout: filter state is structure-of-arrays over kMaxLanes fixed lane
// slots; history rings stay per-lane (lanes sit at different absolute
// stream positions, so ring traffic is scalar — the ~20 FLOPs of chain
// arithmetic per sample are what vectorise). Divergent control flow
// (threshold learning, peak confirmation, dedup) never runs here: the
// caller defers it and replays it per lane after each block.
#pragma once

#include <cstddef>
#include <cstdint>

namespace svt::ecg::detail {

inline constexpr std::size_t kMaxLanes = 8;

/// Lockstep blocks are capped at this many samples so the deferred per-lane
/// decision catch-up never trails the stream by more than kStepBlock; the
/// history rings carry exactly this much extra capacity.
inline constexpr std::size_t kStepBlock = 64;

/// Input for disengaged lanes: the kernel still computes their (discarded)
/// chain values, and a shared zero block keeps that branch-free.
extern const double kZeros[kStepBlock];

/// Lane-invariant chain coefficients (same fs and band-pass for every lane).
struct LaneCoeffs {
  double hp_b0 = 1.0, hp_b1 = 0.0, hp_b2 = 0.0, hp_a1 = 0.0, hp_a2 = 0.0;
  double lp_b0 = 1.0, lp_b1 = 0.0, lp_b2 = 0.0, lp_a1 = 0.0, lp_a2 = 0.0;
  double fs = 0.0;
  std::int64_t win = 1;  ///< Integration window length in samples.
};

/// Structure-of-arrays filter-chain state, indexed by lane slot. Aligned so
/// a vector group (4 AVX2 / 2 SSE2 consecutive slots) loads directly.
struct LaneFilterState {
  alignas(64) double hp_x1[kMaxLanes] = {}, hp_x2[kMaxLanes] = {};
  alignas(64) double hp_y1[kMaxLanes] = {}, hp_y2[kMaxLanes] = {};
  alignas(64) double lp_x1[kMaxLanes] = {}, lp_x2[kMaxLanes] = {};
  alignas(64) double lp_y1[kMaxLanes] = {}, lp_y2[kMaxLanes] = {};
  alignas(64) double f1[kMaxLanes] = {}, f2[kMaxLanes] = {};
  alignas(64) double f3[kMaxLanes] = {}, f4[kMaxLanes] = {};
  alignas(64) double integ_acc[kMaxLanes] = {};
};

/// One lane's cursor through a lockstep block: its input, its absolute
/// stream position and its (power-of-two, absolute-indexed) history rings.
struct LaneRun {
  const double* input = kZeros;  ///< `steps` samples to consume.
  double* raw = nullptr;
  std::size_t raw_mask = 0;
  double* squared = nullptr;
  std::size_t squared_mask = 0;
  double* integrated = nullptr;
  std::size_t integrated_mask = 0;
  std::int64_t n = 0;     ///< Absolute sample count; advanced iff engaged.
  bool engaged = false;   ///< Disengaged: compute-and-discard, no stores.
};

// Step `steps` (<= kStepBlock) samples for the consecutive lane slots
// [base, base+width) in lockstep (SSE2 width 2, AVX2 width 4). Disengaged
// lanes' filter-state entries are clobbered with don't-care values — the
// caller snapshots and restores any live ones — and their rings and `n`
// stay untouched. Engaged lanes must have n >= 1: the first sample of a
// stream seeds the derivative delay line and is peeled through the scalar
// step by the caller.
void lane_step_block_sse2(const LaneCoeffs& c, LaneFilterState& s, std::size_t base,
                          LaneRun* runs, std::size_t steps);
void lane_step_block_avx2(const LaneCoeffs& c, LaneFilterState& s, std::size_t base,
                          LaneRun* runs, std::size_t steps);

/// Whether this build carries AVX2 code for lane_step_block_avx2 (the TU is
/// compiled with -mavx2 only when the toolchain supports it); when false the
/// engine clamps its dispatch to SSE2.
bool lane_avx2_compiled();

}  // namespace svt::ecg::detail
