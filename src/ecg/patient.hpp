// Patient and seizure modelling primitives.
//
// The paper's dataset is a proprietary clinical cohort (7 patients, 140 h,
// 34 focal seizures recorded across 24 sessions in an epilepsy monitoring
// unit). We substitute a physiologically-motivated synthetic cohort, per
// DESIGN.md Section 2: each patient has an individual cardiac baseline, an
// individual *ictal autonomic signature* (most patients exhibit ictal
// tachycardia, a minority ictal bradycardia -- this bimodality is what makes
// the detection problem non-linear, reproducing the paper's linear-vs-
// quadratic kernel gap), and per-session variability.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace svt::ecg {

/// Direction of the dominant ictal heart-rate response.
enum class IctalResponse : std::uint8_t { kTachycardia, kBradycardia };

/// A single annotated seizure (times relative to session start).
struct SeizureEvent {
  double onset_s = 0.0;
  double duration_s = 90.0;
  double intensity = 1.0;  ///< Scales the autonomic excursion (0.55..1.3).

  double end_s() const { return onset_s + duration_s; }

  /// True if [onset, end) overlaps the window [w_start, w_end).
  bool overlaps(double w_start_s, double w_end_s) const {
    return onset_s < w_end_s && w_start_s < end_s();
  }
};

/// A non-ictal autonomic arousal (movement, sleep-stage shift, stress):
/// a tachycardic burst that *confounds* seizure detection. These are what
/// keep the synthetic task's specificity away from 100%.
struct ArousalEvent {
  double onset_s = 0.0;
  double duration_s = 60.0;
  double magnitude = 1.0;  ///< In [0,1]; scales the patient's arousal response.

  double end_s() const { return onset_s + duration_s; }
};

/// A signal-quality artifact episode (electrode motion, mis-detected beats):
/// inflates beat-to-beat RR dispersion and drops occasional beats. Artifacts
/// attack exactly the dispersion features (SDNN, RMSSD, SD1...) that any HR
/// ramp also inflates, so a detector cannot ride "high dispersion" alone --
/// the property that keeps the linear kernel honest (paper Table I).
struct ArtifactEvent {
  double onset_s = 0.0;
  double duration_s = 30.0;
  double severity = 1.0;  ///< In [0,1].

  double end_s() const { return onset_s + duration_s; }
};

/// Static physiological description of one patient.
struct PatientProfile {
  int id = 0;
  std::string name;

  // --- Interictal (baseline) cardiac model -------------------------------
  double baseline_hr_bpm = 72.0;     ///< Resting heart rate.
  double hr_drift_sigma_bpm = 3.0;   ///< Std of the slow Ornstein-Uhlenbeck HR drift.
  double lf_amplitude_bpm = 2.5;     ///< Mayer-wave (~0.1 Hz) HR oscillation amplitude.
  double hf_amplitude_bpm = 1.8;     ///< Respiratory sinus arrhythmia amplitude.
  double rr_noise_sigma_s = 0.012;   ///< White beat-to-beat RR jitter.
  double ectopic_rate_per_min = 1.0; ///< Premature-beat (ectopic) rate.

  // --- Respiration model ---------------------------------------------------
  double resp_rate_hz = 0.25;        ///< Baseline respiratory frequency.
  double resp_amplitude = 1.0;       ///< Baseline respiration depth (arbitrary units).
  double resp_noise_sigma = 0.08;    ///< Additive respiration noise.

  // --- Arousal (confounder) model -------------------------------------------
  double arousal_rate_per_hour = 10.0; ///< Expected arousals per hour.
  double arousal_hr_delta_bpm = 22.0;  ///< Tachycardic burst magnitude.
  double arousal_hrv_suppression = 0.85;  ///< Mild HRV damping during arousals.
  double arousal_resp_rate_delta_hz = 0.04;

  // --- Artifact (signal-quality) model ---------------------------------------
  double artifact_rate_per_hour = 6.0;       ///< Expected artifact episodes/hour.
  double artifact_rr_noise_multiplier = 8.0; ///< RR jitter inflation at severity 1.
  double artifact_missed_beat_prob = 0.06;   ///< Per-beat drop probability at severity 1.

  // --- Ictal signature ------------------------------------------------------
  IctalResponse ictal_response = IctalResponse::kTachycardia;
  double ictal_hr_delta_bpm = 32.0;  ///< Magnitude of the ictal HR excursion.
  double ictal_hrv_suppression = 0.70;  ///< LF/HF amplitude multiplier during seizures.
  double ictal_resp_rate_delta_hz = 0.10;  ///< Respiratory-rate shift during seizures.
  double ictal_resp_irregularity = 0.25;   ///< Extra respiration amplitude variability
                                           ///  (near zero for vagal/bradycardic responders).
  double preictal_ramp_s = 30.0;     ///< Autonomic changes ramp in before clinical onset.
  double postictal_tau_s = 90.0;     ///< Exponential recovery time constant.

  /// Signed ictal HR excursion (+ for tachycardia, - for bradycardia).
  double signed_ictal_hr_delta_bpm() const {
    return ictal_response == IctalResponse::kTachycardia ? ictal_hr_delta_bpm
                                                         : -ictal_hr_delta_bpm;
  }
};

/// The seven-patient cohort used throughout the reproduction. Patients 5 and 6
/// are bradycardic responders; amplitudes/baselines vary across patients.
std::vector<PatientProfile> make_default_cohort();

}  // namespace svt::ecg
