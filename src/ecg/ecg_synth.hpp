// ECG waveform synthesis.
//
// Renders a continuous single-lead ECG from an RR tachogram using per-beat
// Gaussian wave templates (P, Q, R, S, T), in the spirit of the McSharry
// dynamical ECG model. The R-wave amplitude is modulated by the respiration
// signal -- this is exactly the mechanism ECG-Derived Respiration (EDR)
// exploits, so the full acquisition path (waveform -> QRS detection -> RR +
// R-amplitude EDR) can be exercised end-to-end by the examples and tests.
#pragma once

#include <random>
#include <span>
#include <vector>

#include "ecg/rr_model.hpp"

namespace svt::ecg {

/// One Gaussian wave component: amplitude * exp(-(t-center)^2 / (2 width^2)),
/// with center expressed as a fraction of the current RR interval.
struct WaveComponent {
  double amplitude_mv = 0.0;
  double center_fraction = 0.0;  ///< Position within the beat, in [0,1).
  double width_s = 0.02;
};

/// Morphology of one beat (standard P-QRS-T shape by default).
struct BeatMorphology {
  WaveComponent p{0.15, 0.70, 0.025};   // P wave of the *next* beat cycle.
  WaveComponent q{-0.12, 0.94, 0.010};
  WaveComponent r{1.10, 0.00, 0.012};   // R peak anchors the beat time.
  WaveComponent s{-0.25, 0.035, 0.010}; // Relative to R, expressed in seconds below.
  WaveComponent t{0.30, 0.30, 0.060};
};

struct EcgSynthParams {
  double fs_hz = 250.0;          ///< Output sampling rate.
  double baseline_wander_mv = 0.05;
  double noise_sigma_mv = 0.01;
  double edr_modulation = 0.15;  ///< Fractional R-amplitude modulation by respiration.
  BeatMorphology morphology;
};

/// Sampled ECG waveform.
struct EcgWaveform {
  std::vector<double> samples_mv;
  double fs_hz = 250.0;

  double duration_s() const {
    return fs_hz > 0.0 ? static_cast<double>(samples_mv.size()) / fs_hz : 0.0;
  }
};

/// Synthesise the ECG for a tachogram; `respiration` modulates R amplitudes
/// (pass an empty series to disable EDR modulation). Deterministic given rng.
/// Throws std::invalid_argument if the tachogram is empty or fs_hz <= 0.
EcgWaveform synthesize_ecg(const RrSeries& rr, const RespirationSeries& respiration,
                           const EcgSynthParams& params, std::mt19937_64& rng);

/// One-call session synthesis: generate the RR tachogram and respiration for
/// a session and render the waveform — the full acquisition chain every ward
/// fixture, bench, and example needs. Deterministic given the rng state.
EcgWaveform synthesize_session(const PatientProfile& patient, const SessionEvents& events,
                               const SessionSignalParams& session, const EcgSynthParams& params,
                               std::mt19937_64& rng);

}  // namespace svt::ecg
