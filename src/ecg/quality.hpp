// Streaming signal-quality gate: artifact spans + RR outlier screening.
//
// Ward telemetry is not clean ECG: electrode pops, lead motion and cable
// strain produce excursions that the QRS chain happily "detects" as beats,
// and one corrupted minute can poison every overlapping analysis window.
// The gate sits between detection and windowing:
//
//   raw chunk ──> SignalQualityGate::scan  (amplitude / slew thresholds,
//        │         refractory ignore window per hit — an artifact burst
//        │         becomes ONE rejected span, not hundreds of hits)
//        ▼
//   window emission: a window overlapping any rejected span — or whose RR
//   series contains ratio-band outliers — is *annotated* (quality flags on
//   the result) or *suppressed* (not emitted, counted) per policy.
//
// The gate NEVER mutates the sample or feature stream: with annotation
// policy the emitted windows are bit-identical to a gate-less run (only the
// flags differ), and with the gate disabled no per-sample work happens at
// all. Detection state is per-sample sequential (previous sample, refractory
// countdown), so the rejected spans are independent of chunk sizes and of
// which shard runs the stream — the property that keeps 1-worker and
// sharded engines in exact agreement (tests/test_quality.cpp).
//
// RR outlier screening is window-local and purely counting: an interior
// interval whose ratio to BOTH neighbours falls outside the configured band
// is an outlier (ectopy / missed-beat signature). Series shorter than
// min_rr_intervals are not screened — too little context to call anything
// an outlier.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace svt::ecg {

/// What to do with a window that trips the quality gate.
enum class QualityPolicy {
  kAnnotate,  ///< Emit it with quality flags set (downstream decides).
  kSuppress,  ///< Do not emit it; count it in windows_suppressed.
};

/// Window-level quality flags (bitmask on results and net decision records).
namespace quality_flags {
inline constexpr std::uint32_t kArtifact = 1u << 0;    ///< Overlaps a rejected span.
inline constexpr std::uint32_t kRrOutliers = 1u << 1;  ///< RR series has ratio-band outliers.
}  // namespace quality_flags

struct QualityConfig {
  /// Off by default: zero per-sample work, bit-identical pipeline.
  bool enable = false;
  /// |sample| above this is an electrode/saturation artifact (<= 0 disables
  /// the amplitude check). Physiologic single-lead ECG stays well under
  /// +-4 mV; rail-hitting pops do not.
  double amp_threshold_mv = 4.0;
  /// |x[n] - x[n-1]| above this is a slew artifact (<= 0 disables): a step
  /// this steep within one sample period is cable strain, not myocardium.
  double slew_threshold_mv = 1.5;
  /// Ignore window after a hit: the burst and its filter ringing become one
  /// span instead of re-triggering per sample (snippet-2 style 1 s hold).
  double refractory_s = 1.0;
  /// RR ratio band: an interior interval with rr[i]/rr[i-1] AND
  /// rr[i]/rr[i+1] both outside [low, high] is an outlier.
  double rr_ratio_low = 0.75;
  double rr_ratio_high = 1.5;
  /// RR series shorter than this are not screened.
  std::size_t min_rr_intervals = 5;
  QualityPolicy policy = QualityPolicy::kAnnotate;
};

/// Cumulative gate counters (monotone; migrate with the patient's stream
/// state and aggregate like the segment-cache stats).
struct QualityStats {
  std::uint64_t artifact_hits = 0;       ///< Threshold crossings (outside refractory).
  std::uint64_t artifact_spans = 0;      ///< Distinct rejected spans opened.
  std::uint64_t rejected_samples = 0;    ///< Samples covered by rejected spans.
  std::uint64_t rr_outliers = 0;         ///< Outlier intervals seen at emission.
  std::uint64_t windows_annotated = 0;   ///< Emitted with non-zero flags.
  std::uint64_t windows_suppressed = 0;  ///< Withheld by kSuppress.

  QualityStats& operator+=(const QualityStats& o) {
    artifact_hits += o.artifact_hits;
    artifact_spans += o.artifact_spans;
    rejected_samples += o.rejected_samples;
    rr_outliers += o.rr_outliers;
    windows_annotated += o.windows_annotated;
    windows_suppressed += o.windows_suppressed;
    return *this;
  }
};

/// Outlier intervals in one window's RR series under `config`'s ratio band
/// (0 when the series is shorter than min_rr_intervals). Pure counting —
/// the series is never modified.
std::size_t count_rr_outliers(std::span<const double> rr_s, const QualityConfig& config);

/// Per-patient streaming gate state. Single-threaded like the extractor
/// that owns it; migrates wholesale with the patient (it is self-contained:
/// config copy, detection state, span list, counters).
class SignalQualityGate {
 public:
  /// Throws std::invalid_argument on fs_hz <= 0 or an inverted RR band.
  SignalQualityGate(const QualityConfig& config, double fs_hz);

  /// Scan one chunk whose first sample has absolute stream index
  /// `base_index` (samples pushed before it). Chunks must arrive in stream
  /// order; chunk boundaries do not affect the resulting spans.
  void scan(std::span<const double> samples_mv, std::int64_t base_index);

  /// Whether [begin, end) (absolute sample indices) overlaps any rejected
  /// span recorded so far.
  bool overlaps_artifact(std::int64_t begin, std::int64_t end) const;

  /// Drop spans ending at or before `bound` — windows never look behind the
  /// extractor's retained-beat horizon, so neither need the spans.
  void drop_spans_before(std::int64_t bound);

  /// Emission-side accounting (the extractor calls these once per window).
  void note_rr_outliers(std::size_t n) { stats_.rr_outliers += n; }
  void note_annotated() { ++stats_.windows_annotated; }
  void note_suppressed() { ++stats_.windows_suppressed; }

  const QualityConfig& config() const { return config_; }
  const QualityStats& stats() const { return stats_; }
  std::size_t live_spans() const { return spans_.size(); }

 private:
  struct Span {
    std::int64_t begin = 0;
    std::int64_t end = 0;  ///< Exclusive.
  };

  QualityConfig config_;
  std::int64_t refractory_samples_ = 0;
  std::int64_t refractory_left_ = 0;
  double prev_sample_ = 0.0;
  bool has_prev_ = false;
  std::vector<Span> spans_;  ///< Sorted, disjoint; appended at the tail.
  QualityStats stats_;
};

}  // namespace svt::ecg
