// Synthetic clinical dataset: sessions, windows, labels, folds.
//
// Mirrors the paper's data organisation: recordings are grouped into
// *sessions* (24 in the paper); each session is segmented into 3-minute
// windows; a window is labelled +1 if it overlaps an annotated seizure and
// -1 otherwise; cross-validation is leave-one-session-out (the paper's "24
// folds, where for each fold the ECG windows originating from a recording
// session are used as the test set and all others as the training set").
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "ecg/patient.hpp"
#include "ecg/rr_model.hpp"

namespace svt::ecg {

/// One 3-minute analysis window with its physiological series and label.
struct WindowRecord {
  int patient_id = 0;
  int session_index = 0;   ///< Global session number (fold id).
  double start_s = 0.0;    ///< Window start within its session.
  int label = -1;          ///< +1 = ictal (seizure) window, -1 = interictal.
  RrSeries rr;             ///< Beat times relative to window start.
  RespirationSeries edr;   ///< Uniformly sampled EDR (ground-truth path).
};

/// One recording session (one cross-validation fold).
struct SessionRecord {
  int patient_id = 0;
  int session_index = 0;
  double duration_s = 0.0;
  std::vector<SeizureEvent> seizures;
  std::vector<ArousalEvent> arousals;    ///< Non-ictal autonomic confounders.
  std::vector<ArtifactEvent> artifacts;  ///< Signal-quality confounders.
  std::vector<WindowRecord> windows;
};

/// The full synthetic cohort dataset.
struct Dataset {
  std::vector<PatientProfile> patients;
  std::vector<SessionRecord> sessions;

  std::size_t num_windows() const;
  std::size_t num_seizure_windows() const;
  std::size_t num_sessions() const { return sessions.size(); }

  /// All windows flattened in session order.
  std::vector<const WindowRecord*> all_windows() const;
};

/// Generation parameters. Defaults give a paper-shaped cohort: 7 patients,
/// 24 sessions, 34 seizures, 3-minute windows. `windows_per_session` scales
/// total compute (the paper's 140 h correspond to ~116 windows/session; the
/// default here is sized so every bench runs in seconds -- raise it via the
/// SVT_WPS environment variable for full-scale runs).
struct DatasetParams {
  int num_sessions = 24;
  int total_seizures = 34;
  int windows_per_session = 30;
  double window_s = 180.0;
  double respiration_fs_hz = 4.0;
  std::uint64_t seed = 42;

  double session_duration_s() const { return windows_per_session * window_s; }
};

/// Generate the full cohort dataset. Deterministic in params.seed.
/// Throws std::invalid_argument on non-positive counts or durations, or if
/// the requested seizures cannot fit (more than 2 per session on average
/// would collide with the spacing constraints).
Dataset generate_dataset(const DatasetParams& params = {});

/// Leave-one-session-out fold: indices into a flattened window list.
struct Fold {
  int test_session_index = 0;
  std::vector<std::size_t> train_indices;
  std::vector<std::size_t> test_indices;
};

/// Build the leave-one-session-out folds over `dataset.all_windows()` order.
std::vector<Fold> make_session_folds(const Dataset& dataset);

}  // namespace svt::ecg
