#include "ecg/quality.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace svt::ecg {

std::size_t count_rr_outliers(std::span<const double> rr_s, const QualityConfig& config) {
  const std::size_t n = rr_s.size();
  if (n < config.min_rr_intervals) return 0;
  std::size_t outliers = 0;
  for (std::size_t i = 1; i + 1 < n; ++i) {
    if (rr_s[i - 1] <= 0.0 || rr_s[i + 1] <= 0.0) continue;
    const double r_prev = rr_s[i] / rr_s[i - 1];
    const double r_next = rr_s[i] / rr_s[i + 1];
    const auto outside = [&](double r) {
      return r < config.rr_ratio_low || r > config.rr_ratio_high;
    };
    // Both neighbours must disagree: a single step is the *next* interval's
    // problem too, but an isolated spike disagrees on both sides.
    if (outside(r_prev) && outside(r_next)) ++outliers;
  }
  return outliers;
}

SignalQualityGate::SignalQualityGate(const QualityConfig& config, double fs_hz)
    : config_(config) {
  if (fs_hz <= 0.0) throw std::invalid_argument("SignalQualityGate: fs_hz <= 0");
  if (config.rr_ratio_low > config.rr_ratio_high)
    throw std::invalid_argument("SignalQualityGate: inverted RR ratio band");
  refractory_samples_ =
      std::max<std::int64_t>(0, std::llround(config.refractory_s * fs_hz));
}

void SignalQualityGate::scan(std::span<const double> samples_mv, std::int64_t base_index) {
  const bool check_amp = config_.amp_threshold_mv > 0.0;
  const bool check_slew = config_.slew_threshold_mv > 0.0;
  for (std::size_t i = 0; i < samples_mv.size(); ++i) {
    const double x = samples_mv[i];
    const double slew = has_prev_ ? std::abs(x - prev_sample_) : 0.0;
    prev_sample_ = x;
    has_prev_ = true;
    if (refractory_left_ > 0) {
      // Inside a hold: the span already covers this sample; re-triggering
      // here would turn one burst into a hit per sample.
      --refractory_left_;
      continue;
    }
    const bool hit = (check_amp && std::abs(x) > config_.amp_threshold_mv) ||
                     (check_slew && slew > config_.slew_threshold_mv);
    if (!hit) continue;
    ++stats_.artifact_hits;
    refractory_left_ = refractory_samples_;
    const std::int64_t begin = base_index + static_cast<std::int64_t>(i);
    const std::int64_t end = begin + 1 + refractory_samples_;
    if (!spans_.empty() && spans_.back().end >= begin) {
      // Contiguous with (or overlapping) the previous span: extend it.
      Span& back = spans_.back();
      if (end > back.end) {
        stats_.rejected_samples += static_cast<std::uint64_t>(end - back.end);
        back.end = end;
      }
    } else {
      spans_.push_back({begin, end});
      ++stats_.artifact_spans;
      stats_.rejected_samples += static_cast<std::uint64_t>(end - begin);
    }
  }
}

bool SignalQualityGate::overlaps_artifact(std::int64_t begin, std::int64_t end) const {
  for (const Span& span : spans_) {
    if (span.begin >= end) break;  // Sorted: nothing later can overlap.
    if (span.end > begin) return true;
  }
  return false;
}

void SignalQualityGate::drop_spans_before(std::int64_t bound) {
  const auto first_kept = std::find_if(
      spans_.begin(), spans_.end(), [bound](const Span& s) { return s.end > bound; });
  spans_.erase(spans_.begin(), first_kept);
}

}  // namespace svt::ecg
