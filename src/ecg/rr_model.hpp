// Beat-to-beat RR-interval and respiration generator.
//
// Produces, for one recording session, the two physiological series every
// downstream feature group consumes:
//  * the RR tachogram (beat times + RR intervals), driven by a heart-rate
//    process composed of a slow Ornstein-Uhlenbeck drift, a Mayer-wave LF
//    oscillation (~0.1 Hz), respiratory sinus arrhythmia locked to the
//    respiration phase, white jitter, occasional ectopic beats, and the
//    patient's ictal signature around each seizure;
//  * the respiration signal (uniformly sampled), whose rate/amplitude also
//    respond to seizures -- this doubles as the ground-truth EDR for the fast
//    (RR-level) dataset path.
#pragma once

#include <random>
#include <span>
#include <vector>

#include "ecg/patient.hpp"

namespace svt::ecg {

/// RR tachogram: beat_times_s[i] is the time of beat i, rr_s[i] the interval
/// that *ended* at that beat. Both series have equal length.
struct RrSeries {
  std::vector<double> beat_times_s;
  std::vector<double> rr_s;

  std::size_t size() const { return rr_s.size(); }
  double duration_s() const { return beat_times_s.empty() ? 0.0 : beat_times_s.back(); }
};

/// Uniformly sampled respiration (and, by substitution, EDR) signal.
struct RespirationSeries {
  std::vector<double> values;
  double fs_hz = 4.0;

  double duration_s() const {
    return fs_hz > 0.0 ? static_cast<double>(values.size()) / fs_hz : 0.0;
  }
};

/// Session-level generator parameters.
struct SessionSignalParams {
  double duration_s = 3600.0;
  double respiration_fs_hz = 4.0;
};

/// Everything that happens in one session besides baseline physiology.
struct SessionEvents {
  std::vector<SeizureEvent> seizures;
  std::vector<ArousalEvent> arousals;
  std::vector<ArtifactEvent> artifacts;
};

/// Ictal modulation factor: 0 away from seizures, ramping up across the
/// pre-ictal window, `intensity` during the seizure, exponential decay
/// afterwards. Exposed for tests and for the waveform synthesiser.
double ictal_intensity(const PatientProfile& patient, std::span<const SeizureEvent> seizures,
                       double t_s);

/// Arousal modulation factor (10 s ramp-in, 30 s decay, scaled by each
/// event's magnitude).
double arousal_intensity(std::span<const ArousalEvent> arousals, double t_s);

/// Artifact severity at time t (box profile, scaled by each event's severity).
double artifact_intensity(std::span<const ArtifactEvent> artifacts, double t_s);

/// Generate the RR tachogram for one session. Deterministic given the rng
/// state. Throws std::invalid_argument on non-positive duration.
RrSeries generate_rr_series(const PatientProfile& patient, const SessionEvents& events,
                            const SessionSignalParams& params, std::mt19937_64& rng);

/// Generate the respiration signal for one session (same ictal timeline).
RespirationSeries generate_respiration(const PatientProfile& patient,
                                       const SessionEvents& events,
                                       const SessionSignalParams& params, std::mt19937_64& rng);

/// Extract the sub-series of a tachogram falling in [start_s, end_s).
RrSeries slice_rr(const RrSeries& rr, double start_s, double end_s);

/// Extract the sub-series of a respiration signal falling in [start_s, end_s).
RespirationSeries slice_respiration(const RespirationSeries& resp, double start_s, double end_s);

}  // namespace svt::ecg
