#include "ecg/streaming_qrs.hpp"

#include <algorithm>
#include <stdexcept>

namespace svt::ecg {

namespace {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

void BeatRing::grow() {
  std::vector<Beat> next(std::max<std::size_t>(16, buf_.size() * 2));
  for (std::size_t i = 0; i < size_; ++i) next[i] = (*this)[i];
  buf_ = std::move(next);
  head_ = 0;
}

void StreamingQrsDetector::HistoryRing::init(std::size_t min_capacity) {
  buf.assign(next_pow2(min_capacity), 0.0);
  mask = buf.size() - 1;
}

StreamingQrsDetector::StreamingQrsDetector(double fs_hz, const PanTompkinsParams& params)
    : fs_(fs_hz), params_(params) {
  if (fs_hz <= 0.0) throw std::invalid_argument("StreamingQrsDetector: fs_hz <= 0");
  if (!(0.0 < params.bandpass_lo_hz && params.bandpass_lo_hz < params.bandpass_hi_hz &&
        params.bandpass_hi_hz < fs_hz / 2.0))
    throw std::invalid_argument("StreamingQrsDetector: need 0 < lo < hi < fs/2");
  hp_ = dsp::butterworth_highpass(params.bandpass_lo_hz, fs_hz);
  lp_ = dsp::butterworth_lowpass(params.bandpass_hi_hz, fs_hz);
  win_ = std::max<std::size_t>(1, static_cast<std::size_t>(params.integration_window_s * fs_hz));
  refractory_ = static_cast<std::size_t>(params.refractory_s * fs_hz);
  learning_n_ = static_cast<std::int64_t>(static_cast<std::size_t>(params.learning_s * fs_hz));
  decision_lag_ = std::max<std::size_t>(1, win_ / 4);

  const auto learning = static_cast<std::size_t>(learning_n_);
  squared_.init(win_ + 2);
  integrated_.init(learning + decision_lag_ + 4);
  raw_.init(std::max(learning + 2, win_ + decision_lag_ + 2));
  if (learning_n_ == 0) thresholds_ready_ = true;  // Batch: zero-length head leaves 0/0.
}

std::int64_t StreamingQrsDetector::final_through() const {
  if (finished_) return n_;
  return cursor_ > static_cast<std::int64_t>(win_) ? cursor_ - static_cast<std::int64_t>(win_)
                                                   : 0;
}

void StreamingQrsDetector::ingest(double x) {
  raw_.at(n_) = x;
  const double f = lp_.process(hp_.process(x));
  // The batch derivative clamps negative indices to filtered[0]; seeding the
  // delay line with the first filtered value reproduces that edge exactly.
  if (n_ == 0) f1_ = f2_ = f3_ = f4_ = f;
  const double d = fs_ * (2.0 * f + f1_ - f3_ - 2.0 * f4_) / 8.0;
  f4_ = f3_;
  f3_ = f2_;
  f2_ = f1_;
  f1_ = f;

  const double sq = d * d;
  // Same add / subtract / divide order as moving_window_integrate, so the
  // running sum rounds identically to the batch pass.
  integ_acc_ += sq;
  squared_.at(n_) = sq;
  if (n_ >= static_cast<std::int64_t>(win_)) integ_acc_ -= squared_.at(n_ - win_);
  const auto norm = std::min<std::int64_t>(n_ + 1, static_cast<std::int64_t>(win_));
  integrated_.at(n_) = integ_acc_ / static_cast<double>(norm);
  ++n_;
}

void StreamingQrsDetector::learn_thresholds(std::int64_t learning) {
  // Mirrors dsp::max_value / dsp::mean over the integrated head: same
  // traversal order, so the learned thresholds are bit-identical.
  if (learning <= 0) return;
  double maxv = integrated_.at(0);
  double sum = 0.0;
  for (std::int64_t k = 0; k < learning; ++k) {
    const double v = integrated_.at(k);
    if (v > maxv) maxv = v;
    sum += v;
  }
  spki_ = maxv * 0.4;
  npki_ = sum / static_cast<double>(learning) * 0.5;
}

void StreamingQrsDetector::decide(std::int64_t i, std::int64_t raw_end) {
  const double ci = integrated_.at(i);
  const bool is_local_max = ci >= integrated_.at(i - 1) && ci > integrated_.at(i + 1);
  if (!is_local_max) return;
  const double peak = ci;
  const double threshold = npki_ + 0.25 * (spki_ - npki_);

  if (peak > threshold &&
      (!have_peak_ || i - last_peak_idx_ > static_cast<std::int64_t>(refractory_))) {
    // Locate the true R peak in the raw signal near the integrator peak (the
    // integrator delays the peak by roughly the window length). Mid-stream
    // raw_end is the newest sample, which never clamps (the decision lag
    // guarantees i + win/4 samples exist); at finish() it clamps exactly
    // like the batch end-of-record search.
    const std::int64_t search_lo = i >= static_cast<std::int64_t>(win_)
                                       ? i - static_cast<std::int64_t>(win_)
                                       : 0;
    const std::int64_t search_hi =
        std::min(raw_end, i + static_cast<std::int64_t>(win_ / 4));
    std::int64_t best = search_lo;
    for (std::int64_t j = search_lo; j <= search_hi; ++j) {
      if (raw_.at(j) > raw_.at(best)) best = j;
    }
    // Online dedup, same rule as the batch compaction pass: a candidate is
    // kept only if it clears the last *kept* beat by half a refractory.
    const double t = static_cast<double>(best) / fs_;
    if (!have_kept_ || t > last_kept_time_ + params_.refractory_s * 0.5) {
      beats_.push_back({best, raw_.at(best)});
      last_kept_time_ = t;
      have_kept_ = true;
    }
    spki_ = 0.125 * peak + 0.875 * spki_;
    last_peak_idx_ = i;
    have_peak_ = true;
  } else {
    npki_ = 0.125 * peak + 0.875 * npki_;
  }
}

void StreamingQrsDetector::push(std::span<const double> samples_mv) {
  SVT_ASSERT(!finished_);
  for (const double x : samples_mv) {
    ingest(x);
    if (!thresholds_ready_ && n_ >= learning_n_) {
      // The batch detector learns from the first learning_s seconds before
      // scanning from index 1; the catch-up below replays exactly that scan.
      learn_thresholds(learning_n_);
      thresholds_ready_ = true;
    }
    if (!thresholds_ready_) continue;
    const std::int64_t limit = n_ - 1 - static_cast<std::int64_t>(decision_lag_);
    while (cursor_ <= limit) {
      decide(cursor_, n_ - 1);
      ++cursor_;
    }
  }
}

void StreamingQrsDetector::finish() {
  if (finished_) return;
  finished_ = true;
  if (n_ == 0) return;
  if (!thresholds_ready_) {
    // Record shorter than the learning period: the batch detector shrinks
    // the learning head to the record.
    learn_thresholds(std::min(n_, learning_n_));
    thresholds_ready_ = true;
  }
  for (std::int64_t i = cursor_; i + 1 < n_; ++i) decide(i, n_ - 1);
  cursor_ = n_;
}

}  // namespace svt::ecg
