// Pan-Tompkins QRS (R peak) detection.
//
// The classic real-time QRS detector: band-pass (5-15 Hz) -> five-point
// derivative -> squaring -> moving-window integration -> adaptive dual
// thresholds with search-back. This closes the acquisition loop for the
// waveform dataset path: synthesised ECG in, beat times + R amplitudes out,
// from which the RR tachogram and the EDR series are rebuilt exactly as a
// WBSN front-end would.
#pragma once

#include <span>
#include <vector>

#include "ecg/ecg_synth.hpp"
#include "ecg/rr_model.hpp"

namespace svt::ecg {

struct QrsDetection {
  std::vector<double> r_peak_times_s;
  std::vector<double> r_amplitudes_mv;  ///< Raw-signal amplitude at each peak.

  std::size_t size() const { return r_peak_times_s.size(); }

  /// RR tachogram implied by successive R peaks (size = peaks - 1).
  RrSeries to_rr_series() const;

  /// EDR series: R amplitudes resampled to a uniform rate via linear
  /// interpolation, mean removed. Throws if fewer than 2 peaks.
  RespirationSeries to_edr(double fs_hz) const;
};

struct PanTompkinsParams {
  double bandpass_lo_hz = 5.0;
  double bandpass_hi_hz = 15.0;
  double integration_window_s = 0.150;
  double refractory_s = 0.200;       ///< Minimum spacing between QRS complexes.
  double t_wave_blank_s = 0.360;     ///< Slope-based T-wave rejection horizon.
  double learning_s = 2.0;           ///< Initial threshold-learning period.
};

/// Run Pan-Tompkins detection over a waveform. Throws std::invalid_argument
/// on an empty waveform or non-positive sampling rate.
QrsDetection detect_qrs(const EcgWaveform& ecg, const PanTompkinsParams& params = {});

}  // namespace svt::ecg
