// AVX2 lockstep kernel for the lane engine: 4 patients per instruction.
//
// This translation unit is compiled with -mavx2 -ffp-contract=off whenever
// the toolchain accepts those flags (see CMakeLists.txt); the kernel is only
// *called* when runtime dispatch has confirmed the CPU supports AVX2. Note
// -mavx2 does not enable FMA, and contraction is off besides, so every
// add/mul/sub/div below is a distinct elementwise IEEE operation — the
// per-lane rounding sequence is exactly StreamingQrsDetector::ingest's.

#include "ecg/lane_qrs_kernel.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "common/assert.hpp"

namespace svt::ecg::detail {

bool lane_avx2_compiled() {
#if defined(__AVX2__)
  return true;
#else
  return false;
#endif
}

#if defined(__AVX2__)

void lane_step_block_avx2(const LaneCoeffs& c, LaneFilterState& s, std::size_t base,
                          LaneRun* runs, std::size_t steps) {
  SVT_ASSERT(base % 4 == 0 && base + 4 <= kMaxLanes && steps <= kStepBlock);
  const __m256d hp_b0 = _mm256_set1_pd(c.hp_b0), hp_b1 = _mm256_set1_pd(c.hp_b1);
  const __m256d hp_b2 = _mm256_set1_pd(c.hp_b2), hp_a1 = _mm256_set1_pd(c.hp_a1);
  const __m256d hp_a2 = _mm256_set1_pd(c.hp_a2);
  const __m256d lp_b0 = _mm256_set1_pd(c.lp_b0), lp_b1 = _mm256_set1_pd(c.lp_b1);
  const __m256d lp_b2 = _mm256_set1_pd(c.lp_b2), lp_a1 = _mm256_set1_pd(c.lp_a1);
  const __m256d lp_a2 = _mm256_set1_pd(c.lp_a2);
  const __m256d fs = _mm256_set1_pd(c.fs);
  const __m256d two = _mm256_set1_pd(2.0);
  // 1/8 is exact in binary64, so x * 0.125 == x / 8.0 bit-for-bit — one fewer
  // divide on the per-sample critical path (vdivpd is the throughput bottleneck).
  const __m256d eighth = _mm256_set1_pd(0.125);

  __m256d hx1 = _mm256_load_pd(&s.hp_x1[base]), hx2 = _mm256_load_pd(&s.hp_x2[base]);
  __m256d hy1 = _mm256_load_pd(&s.hp_y1[base]), hy2 = _mm256_load_pd(&s.hp_y2[base]);
  __m256d lx1 = _mm256_load_pd(&s.lp_x1[base]), lx2 = _mm256_load_pd(&s.lp_x2[base]);
  __m256d ly1 = _mm256_load_pd(&s.lp_y1[base]), ly2 = _mm256_load_pd(&s.lp_y2[base]);
  __m256d f1 = _mm256_load_pd(&s.f1[base]), f2 = _mm256_load_pd(&s.f2[base]);
  __m256d f3 = _mm256_load_pd(&s.f3[base]), f4 = _mm256_load_pd(&s.f4[base]);
  __m256d acc = _mm256_load_pd(&s.integ_acc[base]);

  std::int64_t n[4];
  for (int w = 0; w < 4; ++w) n[w] = runs[w].n;

  // Steady state (every engaged lane past integrator warmup) runs the
  // branch-free fast path: disengaged lanes are redirected into a small
  // dummy ring so there are no per-lane branches in the hot loop, and the
  // window-leaving subtrahend is loaded straight from the squared rings
  // (written `win` iterations earlier — no store-forward stall on the
  // accumulator chain, unlike bouncing per-lane scalars through a staging
  // array into a 32-byte vector load).
  bool steady = true;
  for (int w = 0; w < 4; ++w)
    if (runs[w].engaged && runs[w].n < c.win) steady = false;

  alignas(32) double tmp[4], tmp2[4];
  if (steady) {
    alignas(32) double dummy[8] = {};
    const double* in[4];
    double* raw[4];
    double* squared[4];
    double* integrated[4];
    std::size_t raw_m[4], sq_m[4], integ_m[4];
    for (int w = 0; w < 4; ++w) {
      const LaneRun& r = runs[w];
      in[w] = r.input;
      if (r.engaged) {
        raw[w] = r.raw;
        squared[w] = r.squared;
        integrated[w] = r.integrated;
        raw_m[w] = r.raw_mask;
        sq_m[w] = r.squared_mask;
        integ_m[w] = r.integrated_mask;
      } else {
        raw[w] = squared[w] = integrated[w] = dummy;
        raw_m[w] = sq_m[w] = integ_m[w] = 7;
      }
    }
    const __m256d nrm = _mm256_set1_pd(static_cast<double>(c.win));
    for (std::size_t k = 0; k < steps; ++k) {
      const __m256d x = _mm256_set_pd(in[3][k], in[2][k], in[1][k], in[0][k]);
      // High-pass biquad: (((b0*x + b1*x1) + b2*x2) - a1*y1) - a2*y2.
      __m256d hy = _mm256_mul_pd(hp_b0, x);
      hy = _mm256_add_pd(hy, _mm256_mul_pd(hp_b1, hx1));
      hy = _mm256_add_pd(hy, _mm256_mul_pd(hp_b2, hx2));
      hy = _mm256_sub_pd(hy, _mm256_mul_pd(hp_a1, hy1));
      hy = _mm256_sub_pd(hy, _mm256_mul_pd(hp_a2, hy2));
      hx2 = hx1;
      hx1 = x;
      hy2 = hy1;
      hy1 = hy;
      // Low-pass biquad on the high-passed sample.
      __m256d f = _mm256_mul_pd(lp_b0, hy);
      f = _mm256_add_pd(f, _mm256_mul_pd(lp_b1, lx1));
      f = _mm256_add_pd(f, _mm256_mul_pd(lp_b2, lx2));
      f = _mm256_sub_pd(f, _mm256_mul_pd(lp_a1, ly1));
      f = _mm256_sub_pd(f, _mm256_mul_pd(lp_a2, ly2));
      lx2 = lx1;
      lx1 = hy;
      ly2 = ly1;
      ly1 = f;
      // Five-point derivative: fs * (((2f + f1) - f3) - 2*f4) / 8.
      __m256d d = _mm256_mul_pd(two, f);
      d = _mm256_add_pd(d, f1);
      d = _mm256_sub_pd(d, f3);
      d = _mm256_sub_pd(d, _mm256_mul_pd(two, f4));
      d = _mm256_mul_pd(_mm256_mul_pd(fs, d), eighth);
      f4 = f3;
      f3 = f2;
      f2 = f1;
      f1 = f;
      const __m256d sq = _mm256_mul_pd(d, d);
      // Trailing integrator; n >= win for every live lane, so the leaving
      // sample always exists and the normaliser is the full window.
      acc = _mm256_add_pd(acc, sq);
      const __m256d sub = _mm256_set_pd(
          squared[3][static_cast<std::size_t>(n[3] - c.win) & sq_m[3]],
          squared[2][static_cast<std::size_t>(n[2] - c.win) & sq_m[2]],
          squared[1][static_cast<std::size_t>(n[1] - c.win) & sq_m[1]],
          squared[0][static_cast<std::size_t>(n[0] - c.win) & sq_m[0]]);
      acc = _mm256_sub_pd(acc, sub);
      const __m256d integ = _mm256_div_pd(acc, nrm);
      _mm256_store_pd(tmp, sq);
      _mm256_store_pd(tmp2, integ);
      for (int w = 0; w < 4; ++w) {
        const auto nw = static_cast<std::size_t>(n[w]);
        raw[w][nw & raw_m[w]] = in[w][k];
        squared[w][nw & sq_m[w]] = tmp[w];
        integrated[w][nw & integ_m[w]] = tmp2[w];
        ++n[w];
      }
    }
  } else {
    // Warmup path (at most the first `win` samples after a lane joins):
    // per-lane branches are fine here, but the subtrahend/normaliser vectors
    // are still built from registers, not bounced through memory.
    alignas(32) double sub[4], nrm[4];
    for (std::size_t k = 0; k < steps; ++k) {
      const __m256d x = _mm256_set_pd(runs[3].input[k], runs[2].input[k], runs[1].input[k],
                                      runs[0].input[k]);
      for (int w = 0; w < 4; ++w) {
        LaneRun& r = runs[w];
        if (r.engaged) r.raw[static_cast<std::size_t>(n[w]) & r.raw_mask] = r.input[k];
      }
      // High-pass biquad: (((b0*x + b1*x1) + b2*x2) - a1*y1) - a2*y2.
      __m256d hy = _mm256_mul_pd(hp_b0, x);
      hy = _mm256_add_pd(hy, _mm256_mul_pd(hp_b1, hx1));
      hy = _mm256_add_pd(hy, _mm256_mul_pd(hp_b2, hx2));
      hy = _mm256_sub_pd(hy, _mm256_mul_pd(hp_a1, hy1));
      hy = _mm256_sub_pd(hy, _mm256_mul_pd(hp_a2, hy2));
      hx2 = hx1;
      hx1 = x;
      hy2 = hy1;
      hy1 = hy;
      // Low-pass biquad on the high-passed sample.
      __m256d f = _mm256_mul_pd(lp_b0, hy);
      f = _mm256_add_pd(f, _mm256_mul_pd(lp_b1, lx1));
      f = _mm256_add_pd(f, _mm256_mul_pd(lp_b2, lx2));
      f = _mm256_sub_pd(f, _mm256_mul_pd(lp_a1, ly1));
      f = _mm256_sub_pd(f, _mm256_mul_pd(lp_a2, ly2));
      lx2 = lx1;
      lx1 = hy;
      ly2 = ly1;
      ly1 = f;
      // Five-point derivative: fs * (((2f + f1) - f3) - 2*f4) / 8.
      __m256d d = _mm256_mul_pd(two, f);
      d = _mm256_add_pd(d, f1);
      d = _mm256_sub_pd(d, f3);
      d = _mm256_sub_pd(d, _mm256_mul_pd(two, f4));
      d = _mm256_mul_pd(_mm256_mul_pd(fs, d), eighth);
      f4 = f3;
      f3 = f2;
      f2 = f1;
      f1 = f;
      const __m256d sq = _mm256_mul_pd(d, d);
      // Trailing integrator: add, then subtract the sample leaving the window
      // (0 during warmup and for disengaged lanes — exact no-ops).
      acc = _mm256_add_pd(acc, sq);
      _mm256_store_pd(tmp, sq);
      for (int w = 0; w < 4; ++w) {
        LaneRun& r = runs[w];
        if (r.engaged) {
          r.squared[static_cast<std::size_t>(n[w]) & r.squared_mask] = tmp[w];
          sub[w] = n[w] >= c.win
                       ? r.squared[static_cast<std::size_t>(n[w] - c.win) & r.squared_mask]
                       : 0.0;
          nrm[w] = static_cast<double>(n[w] + 1 < c.win ? n[w] + 1 : c.win);
        } else {
          sub[w] = 0.0;
          nrm[w] = 1.0;
        }
      }
      acc = _mm256_sub_pd(acc, _mm256_set_pd(sub[3], sub[2], sub[1], sub[0]));
      const __m256d integ = _mm256_div_pd(acc, _mm256_set_pd(nrm[3], nrm[2], nrm[1], nrm[0]));
      _mm256_store_pd(tmp, integ);
      for (int w = 0; w < 4; ++w) {
        LaneRun& r = runs[w];
        if (r.engaged) {
          r.integrated[static_cast<std::size_t>(n[w]) & r.integrated_mask] = tmp[w];
          ++n[w];
        }
      }
    }
  }

  _mm256_store_pd(&s.hp_x1[base], hx1);
  _mm256_store_pd(&s.hp_x2[base], hx2);
  _mm256_store_pd(&s.hp_y1[base], hy1);
  _mm256_store_pd(&s.hp_y2[base], hy2);
  _mm256_store_pd(&s.lp_x1[base], lx1);
  _mm256_store_pd(&s.lp_x2[base], lx2);
  _mm256_store_pd(&s.lp_y1[base], ly1);
  _mm256_store_pd(&s.lp_y2[base], ly2);
  _mm256_store_pd(&s.f1[base], f1);
  _mm256_store_pd(&s.f2[base], f2);
  _mm256_store_pd(&s.f3[base], f3);
  _mm256_store_pd(&s.f4[base], f4);
  _mm256_store_pd(&s.integ_acc[base], acc);
  // Disengaged lanes advance a local count in the steady path (into the
  // dummy ring); their real cursors must not move.
  for (int w = 0; w < 4; ++w)
    if (runs[w].engaged) runs[w].n = n[w];
}

#else  // !__AVX2__: the engine clamps to SSE2, so this is never reached.

void lane_step_block_avx2(const LaneCoeffs&, LaneFilterState&, std::size_t, LaneRun*,
                          std::size_t) {
  SVT_ASSERT(false && "lane_step_block_avx2 called without AVX2 code compiled in");
}

#endif

}  // namespace svt::ecg::detail
