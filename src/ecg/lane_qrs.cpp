#include "ecg/lane_qrs.hpp"

#include <algorithm>
#include <stdexcept>

#if defined(__SSE2__) || defined(_M_X64)
#include <emmintrin.h>
#endif

#include "dsp/filter.hpp"

namespace svt::ecg {

namespace detail {
const double kZeros[kStepBlock] = {};
}  // namespace detail

namespace {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

constexpr std::size_t kFilterDoubles = 13;  ///< Per-lane filter-state scalars.
static_assert(kFilterDoubles == LaneQrsDetector::kFilterStateDoubles,
              "DetachedLane::filter must cover the whole per-lane filter column");

}  // namespace

common::SimdTier lane_effective_tier() {
  common::SimdTier tier = common::simd_tier();
  if (tier == common::SimdTier::kAvx2 && !detail::lane_avx2_compiled())
    tier = common::SimdTier::kSse2;
#if !(defined(__SSE2__) || defined(_M_X64))
  if (tier == common::SimdTier::kSse2) tier = common::SimdTier::kScalar;
#endif
  return tier;
}

const char* lane_isa_name() { return common::simd_tier_name(lane_effective_tier()); }

void LaneQrsDetector::Ring::init(std::size_t min_capacity) {
  buf.assign(next_pow2(min_capacity), 0.0);
  mask = buf.size() - 1;
}

LaneQrsDetector::LaneQrsDetector(double fs_hz, const PanTompkinsParams& params)
    : params_(params), tier_(lane_effective_tier()) {
  if (fs_hz <= 0.0) throw std::invalid_argument("LaneQrsDetector: fs_hz <= 0");
  if (!(0.0 < params.bandpass_lo_hz && params.bandpass_lo_hz < params.bandpass_hi_hz &&
        params.bandpass_hi_hz < fs_hz / 2.0))
    throw std::invalid_argument("LaneQrsDetector: need 0 < lo < hi < fs/2");
  const dsp::Biquad hp = dsp::butterworth_highpass(params.bandpass_lo_hz, fs_hz);
  const dsp::Biquad lp = dsp::butterworth_lowpass(params.bandpass_hi_hz, fs_hz);
  coeffs_.hp_b0 = hp.b0();
  coeffs_.hp_b1 = hp.b1();
  coeffs_.hp_b2 = hp.b2();
  coeffs_.hp_a1 = hp.a1();
  coeffs_.hp_a2 = hp.a2();
  coeffs_.lp_b0 = lp.b0();
  coeffs_.lp_b1 = lp.b1();
  coeffs_.lp_b2 = lp.b2();
  coeffs_.lp_a1 = lp.a1();
  coeffs_.lp_a2 = lp.a2();
  coeffs_.fs = fs_hz;
  win_ = std::max<std::size_t>(1, static_cast<std::size_t>(params.integration_window_s * fs_hz));
  coeffs_.win = static_cast<std::int64_t>(win_);
  refractory_ = static_cast<std::size_t>(params.refractory_s * fs_hz);
  learning_n_ = static_cast<std::int64_t>(static_cast<std::size_t>(params.learning_s * fs_hz));
  decision_lag_ = std::max<std::size_t>(1, win_ / 4);
}

std::size_t LaneQrsDetector::add_lane() {
  SVT_ASSERT(active_count_ < kMaxLanes);
  std::size_t lane = 0;
  while (lanes_[lane].active) ++lane;
  reset_lane(lane);
  lanes_[lane].active = true;
  ++active_count_;
  return lane;
}

void LaneQrsDetector::remove_lane(std::size_t lane) {
  LaneState& state = lanes_[check(lane)];
  SVT_ASSERT(state.active);
  state.active = false;
  --active_count_;
  // Ring buffers stay allocated in the slot: they are pooled for the next
  // occupant, so memory is bounded by the pack width, not by churn.
}

LaneQrsDetector::DetachedLane LaneQrsDetector::detach_lane(std::size_t lane) {
  LaneState& state = lanes_[check(lane)];
  SVT_ASSERT(state.active);
  DetachedLane out;
  out.squared.buf = std::move(state.squared.buf);
  out.squared.mask = state.squared.mask;
  out.integrated.buf = std::move(state.integrated.buf);
  out.integrated.mask = state.integrated.mask;
  out.raw.buf = std::move(state.raw.buf);
  out.raw.mask = state.raw.mask;
  out.beats = std::move(state.beats);
  out.n = state.n;
  out.cursor = state.cursor;
  out.finished = state.finished;
  out.thresholds_ready = state.thresholds_ready;
  out.spki = state.spki;
  out.npki = state.npki;
  out.last_peak_idx = state.last_peak_idx;
  out.have_peak = state.have_peak;
  out.last_kept_time = state.last_kept_time;
  out.have_kept = state.have_kept;
  out.filter = {filt_.hp_x1[lane], filt_.hp_x2[lane], filt_.hp_y1[lane], filt_.hp_y2[lane],
                filt_.lp_x1[lane], filt_.lp_x2[lane], filt_.lp_y1[lane], filt_.lp_y2[lane],
                filt_.f1[lane],    filt_.f2[lane],    filt_.f3[lane],    filt_.f4[lane],
                filt_.integ_acc[lane]};
  // The slot's ring storage left with the stream; a fresh occupant
  // reallocates via reset_lane, so no moved-from buffers linger.
  state = LaneState{};
  --active_count_;
  return out;
}

std::size_t LaneQrsDetector::attach_lane(DetachedLane&& detached) {
  SVT_ASSERT(active_count_ < kMaxLanes);
  std::size_t lane = 0;
  while (lanes_[lane].active) ++lane;
  LaneState& state = lanes_[lane];
  state.squared.buf = std::move(detached.squared.buf);
  state.squared.mask = detached.squared.mask;
  state.integrated.buf = std::move(detached.integrated.buf);
  state.integrated.mask = detached.integrated.mask;
  state.raw.buf = std::move(detached.raw.buf);
  state.raw.mask = detached.raw.mask;
  state.beats = std::move(detached.beats);
  state.n = detached.n;
  state.cursor = detached.cursor;
  state.finished = detached.finished;
  state.thresholds_ready = detached.thresholds_ready;
  state.spki = detached.spki;
  state.npki = detached.npki;
  state.last_peak_idx = detached.last_peak_idx;
  state.have_peak = detached.have_peak;
  state.last_kept_time = detached.last_kept_time;
  state.have_kept = detached.have_kept;
  state.active = true;
  ++active_count_;
  const double* in = detached.filter.data();
  filt_.hp_x1[lane] = *in++;
  filt_.hp_x2[lane] = *in++;
  filt_.hp_y1[lane] = *in++;
  filt_.hp_y2[lane] = *in++;
  filt_.lp_x1[lane] = *in++;
  filt_.lp_x2[lane] = *in++;
  filt_.lp_y1[lane] = *in++;
  filt_.lp_y2[lane] = *in++;
  filt_.f1[lane] = *in++;
  filt_.f2[lane] = *in++;
  filt_.f3[lane] = *in++;
  filt_.f4[lane] = *in++;
  filt_.integ_acc[lane] = *in++;
  return lane;
}

void LaneQrsDetector::reset_lane(std::size_t lane) {
  LaneState& state = lanes_[lane];
  const auto learning = static_cast<std::size_t>(learning_n_);
  // Same minimum capacities as StreamingQrsDetector, plus kStepBlock so the
  // entries a deferred learning scan / decision catch-up reads survive a
  // whole lockstep block.
  state.squared.init(win_ + 2);
  state.integrated.init(learning + decision_lag_ + 4 + detail::kStepBlock);
  state.raw.init(std::max(learning + 2, win_ + decision_lag_ + 2) + detail::kStepBlock);
  state.beats.clear();
  state.n = 0;
  state.cursor = 1;
  state.finished = false;
  state.thresholds_ready = learning_n_ == 0;  // Batch: zero-length head leaves 0/0.
  state.spki = 0.0;
  state.npki = 0.0;
  state.last_peak_idx = 0;
  state.have_peak = false;
  state.last_kept_time = 0.0;
  state.have_kept = false;
  filt_.hp_x1[lane] = filt_.hp_x2[lane] = filt_.hp_y1[lane] = filt_.hp_y2[lane] = 0.0;
  filt_.lp_x1[lane] = filt_.lp_x2[lane] = filt_.lp_y1[lane] = filt_.lp_y2[lane] = 0.0;
  filt_.f1[lane] = filt_.f2[lane] = filt_.f3[lane] = filt_.f4[lane] = 0.0;
  filt_.integ_acc[lane] = 0.0;
}

std::int64_t LaneQrsDetector::final_through(std::size_t lane) const {
  const LaneState& state = lanes_[check(lane)];
  if (state.finished) return state.n;
  return state.cursor > static_cast<std::int64_t>(win_)
             ? state.cursor - static_cast<std::int64_t>(win_)
             : 0;
}

void LaneQrsDetector::step_scalar(std::size_t lane, const double* x, std::size_t count) {
  // Per-sample arithmetic identical to StreamingQrsDetector::ingest, reading
  // the lane's column of the SoA state.
  LaneState& state = lanes_[lane];
  const detail::LaneCoeffs& c = coeffs_;
  detail::LaneFilterState& s = filt_;
  for (std::size_t k = 0; k < count; ++k) {
    const double xv = x[k];
    state.raw.at(state.n) = xv;
    const double hy = c.hp_b0 * xv + c.hp_b1 * s.hp_x1[lane] + c.hp_b2 * s.hp_x2[lane] -
                      c.hp_a1 * s.hp_y1[lane] - c.hp_a2 * s.hp_y2[lane];
    s.hp_x2[lane] = s.hp_x1[lane];
    s.hp_x1[lane] = xv;
    s.hp_y2[lane] = s.hp_y1[lane];
    s.hp_y1[lane] = hy;
    const double f = c.lp_b0 * hy + c.lp_b1 * s.lp_x1[lane] + c.lp_b2 * s.lp_x2[lane] -
                     c.lp_a1 * s.lp_y1[lane] - c.lp_a2 * s.lp_y2[lane];
    s.lp_x2[lane] = s.lp_x1[lane];
    s.lp_x1[lane] = hy;
    s.lp_y2[lane] = s.lp_y1[lane];
    s.lp_y1[lane] = f;
    if (state.n == 0) s.f1[lane] = s.f2[lane] = s.f3[lane] = s.f4[lane] = f;
    const double d = c.fs * (2.0 * f + s.f1[lane] - s.f3[lane] - 2.0 * s.f4[lane]) / 8.0;
    s.f4[lane] = s.f3[lane];
    s.f3[lane] = s.f2[lane];
    s.f2[lane] = s.f1[lane];
    s.f1[lane] = f;
    const double sq = d * d;
    s.integ_acc[lane] += sq;
    state.squared.at(state.n) = sq;
    if (state.n >= c.win) s.integ_acc[lane] -= state.squared.at(state.n - c.win);
    const auto norm = std::min<std::int64_t>(state.n + 1, c.win);
    state.integrated.at(state.n) = s.integ_acc[lane] / static_cast<double>(norm);
    ++state.n;
  }
}

void LaneQrsDetector::learn_thresholds(std::size_t lane, std::int64_t learning) {
  if (learning <= 0) return;
  LaneState& state = lanes_[lane];
  double maxv = state.integrated.at(0);
  double sum = 0.0;
  for (std::int64_t k = 0; k < learning; ++k) {
    const double v = state.integrated.at(k);
    if (v > maxv) maxv = v;
    sum += v;
  }
  state.spki = maxv * 0.4;
  state.npki = sum / static_cast<double>(learning) * 0.5;
}

void LaneQrsDetector::take_peak(std::size_t lane, std::int64_t i, std::int64_t raw_end,
                                double peak) {
  // Slow path of the decision replay: a local maximum above threshold and
  // clear of the refractory period. Searches the raw signal for the R peak
  // and adapts the signal-level estimate; fires roughly once per heartbeat.
  LaneState& state = lanes_[lane];
  const std::int64_t search_lo =
      i >= static_cast<std::int64_t>(win_) ? i - static_cast<std::int64_t>(win_) : 0;
  const std::int64_t search_hi = std::min(raw_end, i + static_cast<std::int64_t>(win_ / 4));
  std::int64_t best = search_lo;
  for (std::int64_t j = search_lo; j <= search_hi; ++j) {
    if (state.raw.at(j) > state.raw.at(best)) best = j;
  }
  const double t = static_cast<double>(best) / coeffs_.fs;
  if (!state.have_kept || t > state.last_kept_time + params_.refractory_s * 0.5) {
    state.beats.push_back({best, state.raw.at(best)});
    state.last_kept_time = t;
    state.have_kept = true;
  }
  state.spki = 0.125 * peak + 0.875 * state.spki;
  state.last_peak_idx = i;
  state.have_peak = true;
}

void LaneQrsDetector::replay_decisions(std::size_t lane, std::int64_t limit,
                                       std::int64_t raw_end) {
  // Rolling scan from the decision cursor through `limit` (inclusive) over
  // the frozen integrated ring: per sample the hot path is one ring load and
  // two compares (carrying prev/cur across iterations), with the threshold
  // test inlined on the sparse local maxima and the noise-level update kept
  // in registers. Arithmetic and comparison order are exactly
  // StreamingQrsDetector's per-sample decision.
  LaneState& state = lanes_[lane];
  if (state.cursor > limit) return;
  const double* buf = state.integrated.buf.data();
  const std::size_t mask = state.integrated.mask;
  std::int64_t i = state.cursor;
  double prev = buf[static_cast<std::size_t>(i - 1) & mask];
  double cur = buf[static_cast<std::size_t>(i) & mask];
  double npki = state.npki;
  double spki = state.spki;
  while (i <= limit) {
    const double next = buf[static_cast<std::size_t>(i + 1) & mask];
    if (cur >= prev && cur > next) {
      const double threshold = npki + 0.25 * (spki - npki);
      if (cur > threshold &&
          (!state.have_peak ||
           i - state.last_peak_idx > static_cast<std::int64_t>(refractory_))) {
        state.npki = npki;
        state.spki = spki;
        take_peak(lane, i, raw_end, cur);
        npki = state.npki;
        spki = state.spki;
      } else {
        npki = 0.125 * cur + 0.875 * npki;
      }
    }
    prev = cur;
    cur = next;
    ++i;
  }
  state.npki = npki;
  state.spki = spki;
  state.cursor = i;
}

void LaneQrsDetector::after_block(std::size_t lane) {
  // Deferred replay of the per-sample bookkeeping StreamingQrsDetector::push
  // interleaves with ingestion. Exact because the learning scan reads ring
  // entries that no longer change, decisions never feed back into the chain,
  // and a larger raw_end cannot move min(raw_end, i + win/4) once
  // raw_end >= i + decision_lag (decision_lag == max(1, win/4)).
  LaneState& state = lanes_[lane];
  if (!state.thresholds_ready && state.n >= learning_n_) {
    state.thresholds_ready = true;
    learn_thresholds(lane, learning_n_);
  }
  if (!state.thresholds_ready) return;
  replay_decisions(lane, state.n - 1 - static_cast<std::int64_t>(decision_lag_), state.n - 1);
}

void LaneQrsDetector::push(std::span<const LaneChunk> chunks) {
  std::array<const double*, kMaxLanes> cur{};
  std::array<std::size_t, kMaxLanes> rem{};
  std::array<bool, kMaxLanes> seen{};
  for (const LaneChunk& chunk : chunks) {
    const std::size_t lane = check(chunk.lane);
    SVT_ASSERT(lanes_[lane].active && !lanes_[lane].finished);
    SVT_ASSERT(!seen[lane]);  // At most one chunk per lane per round.
    seen[lane] = true;
    cur[lane] = chunk.samples.data();
    rem[lane] = chunk.samples.size();
  }
  const std::size_t width = tier_ == common::SimdTier::kAvx2   ? 4
                            : tier_ == common::SimdTier::kSse2 ? 2
                                                               : 1;
  for (std::size_t base = 0; base < kMaxLanes; base += width) run_group(base, width, cur, rem);
}

void LaneQrsDetector::push_one(std::size_t lane, std::span<const double> samples_mv) {
  const LaneChunk chunk{lane, samples_mv};
  push(std::span<const LaneChunk>(&chunk, 1));
}

void LaneQrsDetector::run_group(std::size_t base, std::size_t width,
                                std::array<const double*, kMaxLanes>& cur,
                                std::array<std::size_t, kMaxLanes>& rem) {
  // A stream's first sample seeds the derivative delay line: peel it through
  // the scalar step so the vector body stays branch-free.
  for (std::size_t w = 0; w < width; ++w) {
    const std::size_t lane = base + w;
    if (rem[lane] > 0 && lanes_[lane].n == 0) {
      step_scalar(lane, cur[lane], 1);
      after_block(lane);
      ++cur[lane];
      --rem[lane];
      ++scalar_samples_;
    }
  }
  for (;;) {
    std::size_t engaged = 0;
    std::size_t m = detail::kStepBlock;
    for (std::size_t w = 0; w < width; ++w) {
      if (rem[base + w] > 0) {
        ++engaged;
        m = std::min(m, rem[base + w]);
      }
    }
    if (engaged == 0) return;
    if (engaged < 2 || width < 2) {
      // Ragged tail / lone lane / scalar tier: nothing left in lockstep.
      for (std::size_t w = 0; w < width; ++w) {
        const std::size_t lane = base + w;
        while (rem[lane] > 0) {
          const std::size_t take = std::min(rem[lane], detail::kStepBlock);
          step_scalar(lane, cur[lane], take);
          after_block(lane);
          cur[lane] += take;
          rem[lane] -= take;
          scalar_samples_ += take;
        }
      }
      return;
    }
    // Lockstep block over the group. The kernel clobbers every slot's
    // filter state, so live-but-idle lanes are snapshotted and restored.
    detail::LaneRun runs[4];
    double saved[4][kFilterDoubles];
    bool protect[4] = {};
    for (std::size_t w = 0; w < width; ++w) {
      const std::size_t lane = base + w;
      detail::LaneRun& r = runs[w];
      r = detail::LaneRun{};
      if (rem[lane] > 0) {
        LaneState& state = lanes_[lane];
        r.engaged = true;
        r.input = cur[lane];
        r.raw = state.raw.buf.data();
        r.raw_mask = state.raw.mask;
        r.squared = state.squared.buf.data();
        r.squared_mask = state.squared.mask;
        r.integrated = state.integrated.buf.data();
        r.integrated_mask = state.integrated.mask;
        r.n = state.n;
      } else if (lanes_[lane].active) {
        protect[w] = true;
        double* out = saved[w];
        *out++ = filt_.hp_x1[lane];
        *out++ = filt_.hp_x2[lane];
        *out++ = filt_.hp_y1[lane];
        *out++ = filt_.hp_y2[lane];
        *out++ = filt_.lp_x1[lane];
        *out++ = filt_.lp_x2[lane];
        *out++ = filt_.lp_y1[lane];
        *out++ = filt_.lp_y2[lane];
        *out++ = filt_.f1[lane];
        *out++ = filt_.f2[lane];
        *out++ = filt_.f3[lane];
        *out++ = filt_.f4[lane];
        *out++ = filt_.integ_acc[lane];
      }
    }
    if (width == 4) {
      detail::lane_step_block_avx2(coeffs_, filt_, base, runs, m);
    } else {
      detail::lane_step_block_sse2(coeffs_, filt_, base, runs, m);
    }
    for (std::size_t w = 0; w < width; ++w) {
      const std::size_t lane = base + w;
      if (protect[w]) {
        const double* in = saved[w];
        filt_.hp_x1[lane] = *in++;
        filt_.hp_x2[lane] = *in++;
        filt_.hp_y1[lane] = *in++;
        filt_.hp_y2[lane] = *in++;
        filt_.lp_x1[lane] = *in++;
        filt_.lp_x2[lane] = *in++;
        filt_.lp_y1[lane] = *in++;
        filt_.lp_y2[lane] = *in++;
        filt_.f1[lane] = *in++;
        filt_.f2[lane] = *in++;
        filt_.f3[lane] = *in++;
        filt_.f4[lane] = *in++;
        filt_.integ_acc[lane] = *in++;
      }
      if (runs[w].engaged) {
        lanes_[lane].n = runs[w].n;
        cur[lane] += m;
        rem[lane] -= m;
        after_block(lane);
        vector_samples_ += m;
      }
    }
  }
}

void LaneQrsDetector::finish(std::size_t lane) {
  LaneState& state = lanes_[check(lane)];
  SVT_ASSERT(state.active);
  if (state.finished) return;
  state.finished = true;
  if (state.n == 0) return;
  if (!state.thresholds_ready) {
    learn_thresholds(lane, std::min(state.n, learning_n_));
    state.thresholds_ready = true;
  }
  replay_decisions(lane, state.n - 2, state.n - 1);
  state.cursor = state.n;
}

std::size_t LaneQrsDetector::resident_bytes() const {
  std::size_t bytes = 0;
  for (const LaneState& state : lanes_) {
    bytes += (state.squared.buf.capacity() + state.integrated.buf.capacity() +
              state.raw.buf.capacity()) *
             sizeof(double);
    bytes += state.beats.capacity() * sizeof(Beat);
  }
  return bytes;
}

// --- SSE2 lockstep kernel ----------------------------------------------------
// SSE2 is architectural baseline on x86-64, so this compiles in the plain
// library TU with no extra flags; two patients per instruction.

namespace detail {

#if defined(__SSE2__) || defined(_M_X64)

void lane_step_block_sse2(const LaneCoeffs& c, LaneFilterState& s, std::size_t base,
                          LaneRun* runs, std::size_t steps) {
  SVT_ASSERT(base % 2 == 0 && base + 2 <= kMaxLanes && steps <= kStepBlock);
  const __m128d hp_b0 = _mm_set1_pd(c.hp_b0), hp_b1 = _mm_set1_pd(c.hp_b1);
  const __m128d hp_b2 = _mm_set1_pd(c.hp_b2), hp_a1 = _mm_set1_pd(c.hp_a1);
  const __m128d hp_a2 = _mm_set1_pd(c.hp_a2);
  const __m128d lp_b0 = _mm_set1_pd(c.lp_b0), lp_b1 = _mm_set1_pd(c.lp_b1);
  const __m128d lp_b2 = _mm_set1_pd(c.lp_b2), lp_a1 = _mm_set1_pd(c.lp_a1);
  const __m128d lp_a2 = _mm_set1_pd(c.lp_a2);
  const __m128d fs = _mm_set1_pd(c.fs);
  const __m128d two = _mm_set1_pd(2.0);
  // 1/8 is exact in binary64, so x * 0.125 == x / 8.0 bit-for-bit — one fewer
  // divide on the per-sample critical path (vdivpd is the throughput bottleneck).
  const __m128d eighth = _mm_set1_pd(0.125);

  __m128d hx1 = _mm_load_pd(&s.hp_x1[base]), hx2 = _mm_load_pd(&s.hp_x2[base]);
  __m128d hy1 = _mm_load_pd(&s.hp_y1[base]), hy2 = _mm_load_pd(&s.hp_y2[base]);
  __m128d lx1 = _mm_load_pd(&s.lp_x1[base]), lx2 = _mm_load_pd(&s.lp_x2[base]);
  __m128d ly1 = _mm_load_pd(&s.lp_y1[base]), ly2 = _mm_load_pd(&s.lp_y2[base]);
  __m128d f1 = _mm_load_pd(&s.f1[base]), f2 = _mm_load_pd(&s.f2[base]);
  __m128d f3 = _mm_load_pd(&s.f3[base]), f4 = _mm_load_pd(&s.f4[base]);
  __m128d acc = _mm_load_pd(&s.integ_acc[base]);

  std::int64_t n[2] = {runs[0].n, runs[1].n};

  // Same steady/warmup split as the AVX2 kernel (see lane_qrs_avx2.cpp): in
  // steady state the window subtrahend loads straight from the squared rings
  // and disengaged lanes write into a dummy ring, keeping the accumulator's
  // loop-carried chain free of store-forward stalls and per-lane branches.
  const bool steady = (!runs[0].engaged || runs[0].n >= c.win) &&
                      (!runs[1].engaged || runs[1].n >= c.win);

  alignas(16) double tmp[2], tmp2[2];
  if (steady) {
    alignas(16) double dummy[8] = {};
    const double* in[2];
    double* raw[2];
    double* squared[2];
    double* integrated[2];
    std::size_t raw_m[2], sq_m[2], integ_m[2];
    for (int w = 0; w < 2; ++w) {
      const LaneRun& r = runs[w];
      in[w] = r.input;
      if (r.engaged) {
        raw[w] = r.raw;
        squared[w] = r.squared;
        integrated[w] = r.integrated;
        raw_m[w] = r.raw_mask;
        sq_m[w] = r.squared_mask;
        integ_m[w] = r.integrated_mask;
      } else {
        raw[w] = squared[w] = integrated[w] = dummy;
        raw_m[w] = sq_m[w] = integ_m[w] = 7;
      }
    }
    const __m128d nrm = _mm_set1_pd(static_cast<double>(c.win));
    for (std::size_t k = 0; k < steps; ++k) {
      const __m128d x = _mm_set_pd(in[1][k], in[0][k]);
      __m128d hy = _mm_mul_pd(hp_b0, x);
      hy = _mm_add_pd(hy, _mm_mul_pd(hp_b1, hx1));
      hy = _mm_add_pd(hy, _mm_mul_pd(hp_b2, hx2));
      hy = _mm_sub_pd(hy, _mm_mul_pd(hp_a1, hy1));
      hy = _mm_sub_pd(hy, _mm_mul_pd(hp_a2, hy2));
      hx2 = hx1;
      hx1 = x;
      hy2 = hy1;
      hy1 = hy;
      __m128d f = _mm_mul_pd(lp_b0, hy);
      f = _mm_add_pd(f, _mm_mul_pd(lp_b1, lx1));
      f = _mm_add_pd(f, _mm_mul_pd(lp_b2, lx2));
      f = _mm_sub_pd(f, _mm_mul_pd(lp_a1, ly1));
      f = _mm_sub_pd(f, _mm_mul_pd(lp_a2, ly2));
      lx2 = lx1;
      lx1 = hy;
      ly2 = ly1;
      ly1 = f;
      __m128d d = _mm_mul_pd(two, f);
      d = _mm_add_pd(d, f1);
      d = _mm_sub_pd(d, f3);
      d = _mm_sub_pd(d, _mm_mul_pd(two, f4));
      d = _mm_mul_pd(_mm_mul_pd(fs, d), eighth);
      f4 = f3;
      f3 = f2;
      f2 = f1;
      f1 = f;
      const __m128d sq = _mm_mul_pd(d, d);
      acc = _mm_add_pd(acc, sq);
      const __m128d sub =
          _mm_set_pd(squared[1][static_cast<std::size_t>(n[1] - c.win) & sq_m[1]],
                     squared[0][static_cast<std::size_t>(n[0] - c.win) & sq_m[0]]);
      acc = _mm_sub_pd(acc, sub);
      const __m128d integ = _mm_div_pd(acc, nrm);
      _mm_store_pd(tmp, sq);
      _mm_store_pd(tmp2, integ);
      for (int w = 0; w < 2; ++w) {
        const auto nw = static_cast<std::size_t>(n[w]);
        raw[w][nw & raw_m[w]] = in[w][k];
        squared[w][nw & sq_m[w]] = tmp[w];
        integrated[w][nw & integ_m[w]] = tmp2[w];
        ++n[w];
      }
    }
  } else {
    alignas(16) double sub[2], nrm[2];
    for (std::size_t k = 0; k < steps; ++k) {
      const __m128d x = _mm_set_pd(runs[1].input[k], runs[0].input[k]);
      for (int w = 0; w < 2; ++w) {
        LaneRun& r = runs[w];
        if (r.engaged) r.raw[static_cast<std::size_t>(n[w]) & r.raw_mask] = r.input[k];
      }
      __m128d hy = _mm_mul_pd(hp_b0, x);
      hy = _mm_add_pd(hy, _mm_mul_pd(hp_b1, hx1));
      hy = _mm_add_pd(hy, _mm_mul_pd(hp_b2, hx2));
      hy = _mm_sub_pd(hy, _mm_mul_pd(hp_a1, hy1));
      hy = _mm_sub_pd(hy, _mm_mul_pd(hp_a2, hy2));
      hx2 = hx1;
      hx1 = x;
      hy2 = hy1;
      hy1 = hy;
      __m128d f = _mm_mul_pd(lp_b0, hy);
      f = _mm_add_pd(f, _mm_mul_pd(lp_b1, lx1));
      f = _mm_add_pd(f, _mm_mul_pd(lp_b2, lx2));
      f = _mm_sub_pd(f, _mm_mul_pd(lp_a1, ly1));
      f = _mm_sub_pd(f, _mm_mul_pd(lp_a2, ly2));
      lx2 = lx1;
      lx1 = hy;
      ly2 = ly1;
      ly1 = f;
      __m128d d = _mm_mul_pd(two, f);
      d = _mm_add_pd(d, f1);
      d = _mm_sub_pd(d, f3);
      d = _mm_sub_pd(d, _mm_mul_pd(two, f4));
      d = _mm_mul_pd(_mm_mul_pd(fs, d), eighth);
      f4 = f3;
      f3 = f2;
      f2 = f1;
      f1 = f;
      const __m128d sq = _mm_mul_pd(d, d);
      acc = _mm_add_pd(acc, sq);
      _mm_store_pd(tmp, sq);
      for (int w = 0; w < 2; ++w) {
        LaneRun& r = runs[w];
        if (r.engaged) {
          r.squared[static_cast<std::size_t>(n[w]) & r.squared_mask] = tmp[w];
          sub[w] = n[w] >= c.win
                       ? r.squared[static_cast<std::size_t>(n[w] - c.win) & r.squared_mask]
                       : 0.0;
          nrm[w] = static_cast<double>(n[w] + 1 < c.win ? n[w] + 1 : c.win);
        } else {
          sub[w] = 0.0;
          nrm[w] = 1.0;
        }
      }
      acc = _mm_sub_pd(acc, _mm_set_pd(sub[1], sub[0]));
      const __m128d integ = _mm_div_pd(acc, _mm_set_pd(nrm[1], nrm[0]));
      _mm_store_pd(tmp, integ);
      for (int w = 0; w < 2; ++w) {
        LaneRun& r = runs[w];
        if (r.engaged) {
          r.integrated[static_cast<std::size_t>(n[w]) & r.integrated_mask] = tmp[w];
          ++n[w];
        }
      }
    }
  }

  _mm_store_pd(&s.hp_x1[base], hx1);
  _mm_store_pd(&s.hp_x2[base], hx2);
  _mm_store_pd(&s.hp_y1[base], hy1);
  _mm_store_pd(&s.hp_y2[base], hy2);
  _mm_store_pd(&s.lp_x1[base], lx1);
  _mm_store_pd(&s.lp_x2[base], lx2);
  _mm_store_pd(&s.lp_y1[base], ly1);
  _mm_store_pd(&s.lp_y2[base], ly2);
  _mm_store_pd(&s.f1[base], f1);
  _mm_store_pd(&s.f2[base], f2);
  _mm_store_pd(&s.f3[base], f3);
  _mm_store_pd(&s.f4[base], f4);
  _mm_store_pd(&s.integ_acc[base], acc);
  // Steady path advances disengaged lanes' local count into the dummy ring;
  // their real cursors must not move.
  if (runs[0].engaged) runs[0].n = n[0];
  if (runs[1].engaged) runs[1].n = n[1];
}

#else

void lane_step_block_sse2(const LaneCoeffs&, LaneFilterState&, std::size_t, LaneRun*,
                          std::size_t) {
  SVT_ASSERT(false && "lane_step_block_sse2 called on a non-SSE2 target");
}

#endif

}  // namespace detail

}  // namespace svt::ecg
