#include "ecg/qrs_detect.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/assert.hpp"
#include "dsp/filter.hpp"
#include "dsp/resample.hpp"
#include "dsp/statistics.hpp"

namespace svt::ecg {

RrSeries QrsDetection::to_rr_series() const {
  RrSeries rr;
  if (r_peak_times_s.size() < 2) return rr;
  rr.beat_times_s.reserve(r_peak_times_s.size() - 1);
  rr.rr_s.reserve(r_peak_times_s.size() - 1);
  for (std::size_t i = 1; i < r_peak_times_s.size(); ++i) {
    rr.beat_times_s.push_back(r_peak_times_s[i]);
    rr.rr_s.push_back(r_peak_times_s[i] - r_peak_times_s[i - 1]);
  }
  return rr;
}

RespirationSeries QrsDetection::to_edr(double fs_hz) const {
  if (r_peak_times_s.size() < 2)
    throw std::invalid_argument("QrsDetection::to_edr: need at least 2 peaks");
  const auto uniform = dsp::resample_linear(r_peak_times_s, r_amplitudes_mv, fs_hz);
  RespirationSeries edr;
  edr.fs_hz = fs_hz;
  edr.values = uniform.values;
  dsp::remove_mean(edr.values);
  return edr;
}

QrsDetection detect_qrs(const EcgWaveform& ecg, const PanTompkinsParams& params) {
  if (ecg.samples_mv.empty()) throw std::invalid_argument("detect_qrs: empty waveform");
  if (ecg.fs_hz <= 0.0) throw std::invalid_argument("detect_qrs: fs_hz <= 0");
  const double fs = ecg.fs_hz;

  // Stage 1-4: band-pass, derivative, squaring, moving-window integration.
  auto filtered = dsp::bandpass_filter(ecg.samples_mv, params.bandpass_lo_hz,
                                       params.bandpass_hi_hz, fs);
  auto deriv = dsp::five_point_derivative(filtered, fs);
  for (double& v : deriv) v *= v;
  const auto win = std::max<std::size_t>(1, static_cast<std::size_t>(params.integration_window_s * fs));
  auto integrated = dsp::moving_window_integrate(deriv, win);

  // Stage 5: adaptive thresholding on the integrated signal.
  const auto refractory = static_cast<std::size_t>(params.refractory_s * fs);
  const auto learning = std::min(integrated.size(),
                                 static_cast<std::size_t>(params.learning_s * fs));

  double spki = 0.0;  // Running signal-peak estimate.
  double npki = 0.0;  // Running noise-peak estimate.
  if (learning > 0) {
    const std::span<const double> head(integrated.data(), learning);
    spki = dsp::max_value(head) * 0.4;
    npki = dsp::mean(head) * 0.5;
  }

  QrsDetection out;
  std::size_t last_peak_idx = 0;
  bool have_peak = false;

  for (std::size_t i = 1; i + 1 < integrated.size(); ++i) {
    const bool is_local_max = integrated[i] >= integrated[i - 1] && integrated[i] > integrated[i + 1];
    if (!is_local_max) continue;
    const double peak = integrated[i];
    const double threshold = npki + 0.25 * (spki - npki);

    if (peak > threshold && (!have_peak || i - last_peak_idx > refractory)) {
      // Locate the true R peak in the raw signal near the integrator peak
      // (the integrator delays the peak by roughly the window length).
      const std::size_t search_lo = i >= win ? i - win : 0;
      const std::size_t search_hi = std::min(ecg.samples_mv.size() - 1, i + win / 4);
      std::size_t best = search_lo;
      for (std::size_t j = search_lo; j <= search_hi; ++j) {
        if (ecg.samples_mv[j] > ecg.samples_mv[best]) best = j;
      }
      out.r_peak_times_s.push_back(static_cast<double>(best) / fs);
      out.r_amplitudes_mv.push_back(ecg.samples_mv[best]);
      spki = 0.125 * peak + 0.875 * spki;
      last_peak_idx = i;
      have_peak = true;
    } else {
      npki = 0.125 * peak + 0.875 * npki;
    }
  }

  // Deduplicate peaks mapped to the same raw sample (can happen when two
  // integrator maxima point at one R wave) and enforce monotonic times.
  auto& t = out.r_peak_times_s;
  auto& a = out.r_amplitudes_mv;
  std::size_t w = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (w == 0 || t[i] > t[w - 1] + params.refractory_s * 0.5) {
      t[w] = t[i];
      a[w] = a[i];
      ++w;
    }
  }
  t.resize(w);
  a.resize(w);
  return out;
}

}  // namespace svt::ecg
