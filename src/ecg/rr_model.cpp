#include "ecg/rr_model.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "common/assert.hpp"

namespace svt::ecg {

double ictal_intensity(const PatientProfile& patient, std::span<const SeizureEvent> seizures,
                       double t_s) {
  double intensity = 0.0;
  for (const auto& sz : seizures) {
    double v = 0.0;
    if (t_s < sz.onset_s) {
      const double lead = sz.onset_s - t_s;
      if (lead < patient.preictal_ramp_s && patient.preictal_ramp_s > 0.0)
        v = 1.0 - lead / patient.preictal_ramp_s;
    } else if (t_s < sz.end_s()) {
      v = 1.0;
    } else {
      const double since = t_s - sz.end_s();
      if (patient.postictal_tau_s > 0.0) v = std::exp(-since / patient.postictal_tau_s);
    }
    intensity = std::max(intensity, v * sz.intensity);
  }
  return intensity;
}

double arousal_intensity(std::span<const ArousalEvent> arousals, double t_s) {
  constexpr double kRampS = 10.0;
  constexpr double kDecayTauS = 30.0;
  double intensity = 0.0;
  for (const auto& ar : arousals) {
    double v = 0.0;
    if (t_s >= ar.onset_s && t_s < ar.end_s()) {
      v = std::min(1.0, (t_s - ar.onset_s) / kRampS);
    } else if (t_s >= ar.end_s()) {
      v = std::exp(-(t_s - ar.end_s()) / kDecayTauS);
    }
    intensity = std::max(intensity, v * ar.magnitude);
  }
  return intensity;
}

namespace {

/// Shared slow-state processes for one session: an Ornstein-Uhlenbeck HR
/// drift and a slowly wandering respiration rate. Both are sampled on a
/// coarse 1 Hz grid and linearly interpolated, so RR and respiration
/// generation see consistent (but independent per call) dynamics.
struct SlowProcesses {
  std::vector<double> hr_drift_bpm;   // 1 Hz grid.
  std::vector<double> resp_rate_hz;   // 1 Hz grid.
  std::vector<double> resp_depth;     // 1 Hz grid, multiplicative (~1).

  static SlowProcesses generate(const PatientProfile& p, double duration_s,
                                std::mt19937_64& rng) {
    const auto n = static_cast<std::size_t>(std::ceil(duration_s)) + 2;
    SlowProcesses sp;
    sp.hr_drift_bpm.resize(n);
    sp.resp_rate_hz.resize(n);
    sp.resp_depth.resize(n);
    std::normal_distribution<double> gauss(0.0, 1.0);
    // OU process: dX = -X/tau dt + sigma*sqrt(2/tau) dW, dt = 1 s.
    const double tau_hr = 120.0;
    const double tau_resp = 300.0;
    const double tau_depth = 240.0;
    double x = gauss(rng) * p.hr_drift_sigma_bpm;
    double r = 0.0;
    double d = 0.0;
    const double resp_sigma = 0.02;
    // Respiration-depth wander: a strong window-scale common mode. It is
    // what makes *all* EDR band powers rise and fall together (the PSD
    // block redundancy of the paper's Figure 3) without carrying any class
    // information (the class signal lives in the respiratory *rate*).
    const double depth_sigma = 0.30;
    for (std::size_t i = 0; i < n; ++i) {
      sp.hr_drift_bpm[i] = x;
      sp.resp_rate_hz[i] = p.resp_rate_hz + r;
      sp.resp_depth[i] = std::exp(d);
      x += -x / tau_hr + p.hr_drift_sigma_bpm * std::sqrt(2.0 / tau_hr) * gauss(rng);
      r += -r / tau_resp + resp_sigma * std::sqrt(2.0 / tau_resp) * gauss(rng);
      d += -d / tau_depth + depth_sigma * std::sqrt(2.0 / tau_depth) * gauss(rng);
    }
    return sp;
  }

  double at(const std::vector<double>& grid, double t_s) const {
    if (grid.empty()) return 0.0;
    const double pos = std::clamp(t_s, 0.0, static_cast<double>(grid.size() - 1));
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    const std::size_t hi = std::min(lo + 1, grid.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return grid[lo] * (1.0 - frac) + grid[hi] * frac;
  }

  double hr_drift(double t_s) const { return at(hr_drift_bpm, t_s); }
  double resp_rate(double t_s) const { return at(resp_rate_hz, t_s); }
  double depth(double t_s) const { return at(resp_depth, t_s); }
};

void require_params(const SessionSignalParams& params, const char* what) {
  if (params.duration_s <= 0.0)
    throw std::invalid_argument(std::string(what) + ": duration_s <= 0");
  if (params.respiration_fs_hz <= 0.0)
    throw std::invalid_argument(std::string(what) + ": respiration_fs_hz <= 0");
}

}  // namespace

double artifact_intensity(std::span<const ArtifactEvent> artifacts, double t_s) {
  double intensity = 0.0;
  for (const auto& ar : artifacts) {
    if (t_s >= ar.onset_s && t_s < ar.end_s()) intensity = std::max(intensity, ar.severity);
  }
  return intensity;
}

RrSeries generate_rr_series(const PatientProfile& patient, const SessionEvents& events,
                            const SessionSignalParams& params, std::mt19937_64& rng) {
  require_params(params, "generate_rr_series");
  const auto slow = SlowProcesses::generate(patient, params.duration_s, rng);
  std::normal_distribution<double> gauss(0.0, 1.0);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);

  RrSeries out;
  out.beat_times_s.reserve(static_cast<std::size_t>(params.duration_s * 2.5));
  out.rr_s.reserve(out.beat_times_s.capacity());

  double t = 0.0;
  double resp_phase = 0.0;
  bool pending_compensatory = false;
  while (t < params.duration_s) {
    const double k = ictal_intensity(patient, events.seizures, t);
    const double a = arousal_intensity(events.arousals, t);
    const double art = artifact_intensity(events.artifacts, t);
    const double hrv_scale =
        std::max(0.1, 1.0 - k * (1.0 - patient.ictal_hrv_suppression) -
                          a * (1.0 - patient.arousal_hrv_suppression));

    const double resp_rate = slow.resp_rate(t) + k * patient.ictal_resp_rate_delta_hz +
                             a * patient.arousal_resp_rate_delta_hz;

    double hr = patient.baseline_hr_bpm + slow.hr_drift(t) +
                k * patient.signed_ictal_hr_delta_bpm() + a * patient.arousal_hr_delta_bpm +
                hrv_scale * patient.lf_amplitude_bpm *
                    std::sin(2.0 * std::numbers::pi * 0.095 * t) +
                hrv_scale * patient.hf_amplitude_bpm * std::sin(resp_phase);
    hr = std::clamp(hr, 30.0, 220.0);

    // Artifact episodes inflate the beat-to-beat jitter (electrode motion,
    // fiducial-point wander in the QRS detector).
    const double noise_sigma =
        patient.rr_noise_sigma_s *
        (1.0 + art * (patient.artifact_rr_noise_multiplier - 1.0));
    double rr = 60.0 / hr + noise_sigma * gauss(rng);

    // Occasional ectopic (premature) beat followed by a compensatory pause.
    if (pending_compensatory) {
      rr *= 1.45;
      pending_compensatory = false;
    } else if (uniform(rng) < patient.ectopic_rate_per_min * rr / 60.0) {
      rr *= 0.60;
      pending_compensatory = true;
    }
    // Missed beats during artifacts: the detector skips an R peak and the
    // apparent RR doubles.
    if (art > 0.0 && uniform(rng) < art * patient.artifact_missed_beat_prob) rr *= 2.0;
    rr = std::clamp(rr, 0.25, 2.5);

    t += rr;
    resp_phase += 2.0 * std::numbers::pi * resp_rate * rr;
    out.beat_times_s.push_back(t);
    out.rr_s.push_back(rr);
  }
  return out;
}

RespirationSeries generate_respiration(const PatientProfile& patient,
                                       const SessionEvents& events,
                                       const SessionSignalParams& params, std::mt19937_64& rng) {
  require_params(params, "generate_respiration");
  const auto slow = SlowProcesses::generate(patient, params.duration_s, rng);
  std::normal_distribution<double> gauss(0.0, 1.0);

  RespirationSeries out;
  out.fs_hz = params.respiration_fs_hz;
  const auto n = static_cast<std::size_t>(params.duration_s * params.respiration_fs_hz);
  out.values.resize(n);

  double phase = 0.0;
  double amp_mod = 0.0;  // Slow amplitude wander (AR(1) at sample rate).
  const double dt = 1.0 / params.respiration_fs_hz;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * dt;
    const double k = ictal_intensity(patient, events.seizures, t);
    const double a = arousal_intensity(events.arousals, t);
    const double art = artifact_intensity(events.artifacts, t);
    const double rate = slow.resp_rate(t) + k * patient.ictal_resp_rate_delta_hz +
                        a * patient.arousal_resp_rate_delta_hz;
    phase += 2.0 * std::numbers::pi * rate * dt;

    const double irregularity =
        0.08 + k * patient.ictal_resp_irregularity + 0.30 * a + 0.3 * art;
    amp_mod = 0.995 * amp_mod + irregularity * 0.1 * gauss(rng);
    const double amplitude = patient.resp_amplitude * slow.depth(t) * (1.0 + amp_mod);

    // The broadband noise floor scales with the instantaneous signal
    // amplitude (EDR is an amplitude-demodulated signal, so its derivation
    // noise is multiplicative). This couples *all* PSD bands to the common
    // amplitude process, giving the EDR band powers the strong mutual
    // correlation the paper's Figure 3 shows for the PSD feature block.
    const double noise_scale = std::max(0.2, amplitude / patient.resp_amplitude);
    out.values[i] =
        amplitude * std::sin(phase) + noise_scale * patient.resp_noise_sigma * gauss(rng);
  }
  return out;
}

RrSeries slice_rr(const RrSeries& rr, double start_s, double end_s) {
  if (end_s < start_s) throw std::invalid_argument("slice_rr: end < start");
  RrSeries out;
  for (std::size_t i = 0; i < rr.size(); ++i) {
    const double t = rr.beat_times_s[i];
    if (t >= start_s && t < end_s) {
      out.beat_times_s.push_back(t - start_s);
      out.rr_s.push_back(rr.rr_s[i]);
    }
  }
  return out;
}

RespirationSeries slice_respiration(const RespirationSeries& resp, double start_s, double end_s) {
  if (end_s < start_s) throw std::invalid_argument("slice_respiration: end < start");
  RespirationSeries out;
  out.fs_hz = resp.fs_hz;
  const auto lo = static_cast<std::size_t>(std::max(0.0, start_s * resp.fs_hz));
  const auto hi = std::min(resp.values.size(),
                           static_cast<std::size_t>(std::max(0.0, end_s * resp.fs_hz)));
  if (lo < hi)
    out.values.assign(resp.values.begin() + static_cast<std::ptrdiff_t>(lo),
                      resp.values.begin() + static_cast<std::ptrdiff_t>(hi));
  return out;
}

}  // namespace svt::ecg
