#include "ecg/ecg_synth.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "common/assert.hpp"

namespace svt::ecg {

namespace {

/// Add a Gaussian bump centred at time c (seconds) to the waveform.
void add_gaussian(std::vector<double>& samples, double fs_hz, double amplitude, double center_s,
                  double width_s) {
  if (width_s <= 0.0) return;
  const double span = 4.0 * width_s;
  const auto lo = static_cast<std::ptrdiff_t>(std::floor((center_s - span) * fs_hz));
  const auto hi = static_cast<std::ptrdiff_t>(std::ceil((center_s + span) * fs_hz));
  for (std::ptrdiff_t i = std::max<std::ptrdiff_t>(lo, 0);
       i <= hi && i < static_cast<std::ptrdiff_t>(samples.size()); ++i) {
    const double t = static_cast<double>(i) / fs_hz;
    const double d = (t - center_s) / width_s;
    samples[static_cast<std::size_t>(i)] += amplitude * std::exp(-0.5 * d * d);
  }
}

}  // namespace

EcgWaveform synthesize_ecg(const RrSeries& rr, const RespirationSeries& respiration,
                           const EcgSynthParams& params, std::mt19937_64& rng) {
  if (rr.size() == 0) throw std::invalid_argument("synthesize_ecg: empty tachogram");
  if (params.fs_hz <= 0.0) throw std::invalid_argument("synthesize_ecg: fs_hz <= 0");

  EcgWaveform out;
  out.fs_hz = params.fs_hz;
  const double duration = rr.beat_times_s.back() + 1.0;
  out.samples_mv.assign(static_cast<std::size_t>(duration * params.fs_hz), 0.0);

  std::normal_distribution<double> gauss(0.0, 1.0);

  for (std::size_t b = 0; b < rr.size(); ++b) {
    const double t_r = rr.beat_times_s[b];           // R peak time.
    const double rr_cur = rr.rr_s[b];
    const auto& m = params.morphology;

    // Respiration-driven R amplitude modulation (the EDR mechanism).
    double resp_value = 0.0;
    if (!respiration.values.empty()) {
      auto idx = static_cast<std::size_t>(t_r * respiration.fs_hz);
      if (idx >= respiration.values.size()) idx = respiration.values.size() - 1;
      resp_value = respiration.values[idx];
    }
    const double r_amp = m.r.amplitude_mv * (1.0 + params.edr_modulation * resp_value);

    add_gaussian(out.samples_mv, params.fs_hz, r_amp, t_r, m.r.width_s);
    add_gaussian(out.samples_mv, params.fs_hz, m.q.amplitude_mv, t_r - 0.025, m.q.width_s);
    add_gaussian(out.samples_mv, params.fs_hz, m.s.amplitude_mv, t_r + 0.030, m.s.width_s);
    add_gaussian(out.samples_mv, params.fs_hz, m.t.amplitude_mv, t_r + m.t.center_fraction * rr_cur,
                 m.t.width_s);
    add_gaussian(out.samples_mv, params.fs_hz, m.p.amplitude_mv, t_r + m.p.center_fraction * rr_cur,
                 m.p.width_s);
  }

  // Baseline wander (two slow sinusoids) + white measurement noise.
  for (std::size_t i = 0; i < out.samples_mv.size(); ++i) {
    const double t = static_cast<double>(i) / params.fs_hz;
    out.samples_mv[i] += params.baseline_wander_mv *
                             (std::sin(2.0 * std::numbers::pi * 0.05 * t) +
                              0.5 * std::sin(2.0 * std::numbers::pi * 0.12 * t + 1.3)) +
                         params.noise_sigma_mv * gauss(rng);
  }
  return out;
}

EcgWaveform synthesize_session(const PatientProfile& patient, const SessionEvents& events,
                               const SessionSignalParams& session, const EcgSynthParams& params,
                               std::mt19937_64& rng) {
  const RrSeries rr = generate_rr_series(patient, events, session, rng);
  const RespirationSeries resp = generate_respiration(patient, events, session, rng);
  return synthesize_ecg(rr, resp, params, rng);
}

}  // namespace svt::ecg
