// Cost model of the Figure-2 inference accelerator.
//
// Pipeline (paper Figure 2): an SV memory feeds a first MAC unit computing
// the dot product x_T . x_i over Nfeat cycles; the result (+1) is squared to
// evaluate the quadratic kernel; a second MAC accumulates alpha_i*y_i-weighted
// kernel values over the NSV support vectors; the output class is the sign of
// the final accumulator after adding the bias.
//
// This header also owns the *width contract*: the exact bit widths of every
// pipeline stage as a function of (Dbits, Abits, truncations, Nfeat, NSV).
// The bit-accurate quantised inference engine (svt::core::QuantizedEngine)
// uses the same widths, so the GM/energy/area trade-offs measured by the
// benches are self-consistent.
#pragma once

#include <cstddef>
#include <string>

#include "hw/tech_model.hpp"

namespace svt::hw {

/// A point in the accelerator design space.
struct PipelineConfig {
  std::size_t num_features = 53;
  std::size_t num_support_vectors = 120;
  int feature_bits = 64;     ///< Dbits: feature representation width.
  int alpha_bits = 64;       ///< Abits: alpha_i*y_i representation width.
  int dot_truncate_bits = 10;     ///< LSBs discarded after the dot product.
  int square_truncate_bits = 10;  ///< LSBs discarded after the square.

  // --- Derived stage widths (the hardware/software width contract) ---------
  /// MAC1 accumulator: product width 2*Dbits grown by log2(Nfeat) additions,
  /// +1 for the kernel's "+1" headroom.
  int mac1_accumulator_bits() const;
  /// Kernel input width after discarding dot_truncate_bits LSBs.
  int kernel_input_bits() const;
  /// Squarer output width before truncation.
  int square_raw_bits() const;
  /// Kernel value width after discarding square_truncate_bits LSBs.
  int kernel_output_bits() const;
  /// MAC2 accumulator: Abits x kernel product grown by log2(NSV) additions,
  /// +1 for the bias.
  int mac2_accumulator_bits() const;
  /// SV memory word: one support vector (Nfeat features) + its alpha_y.
  std::size_t sv_word_bits() const;
  /// Cycles per classification: Nfeat MAC1 cycles + square + MAC2 per SV.
  std::size_t cycles_per_classification() const;

  /// Validate (positive sizes, widths in [2,63], truncations >= 0); throws
  /// std::invalid_argument otherwise.
  void validate() const;

  std::string describe() const;
};

/// Itemised cost estimate.
struct AreaBreakdown {
  double sv_memory_mm2 = 0.0;
  double scale_memory_mm2 = 0.0;  ///< Per-feature Rj scale factors.
  double mac1_mm2 = 0.0;
  double squarer_mm2 = 0.0;
  double mac2_mm2 = 0.0;
  double control_mm2 = 0.0;
  double total_mm2 = 0.0;
};

struct EnergyBreakdown {
  double memory_nj = 0.0;
  double mac1_nj = 0.0;
  double squarer_nj = 0.0;
  double mac2_nj = 0.0;
  double cycle_overhead_nj = 0.0;
  double static_nj = 0.0;
  double total_nj = 0.0;
};

struct CostReport {
  PipelineConfig config;
  AreaBreakdown area;
  EnergyBreakdown energy;
  double latency_us = 0.0;  ///< Per classification at the model's clock.
};

/// Evaluate the cost model at a design point.
CostReport estimate_cost(const PipelineConfig& config,
                         const TechModel& tech = default_tech_model());

}  // namespace svt::hw
