// CACTI-flavoured SRAM macro model.
#pragma once

#include <cstddef>

#include "hw/tech_model.hpp"

namespace svt::hw {

/// One on-chip SRAM macro storing `words` entries of `bits_per_word` bits.
struct SramMacro {
  std::size_t words = 0;
  std::size_t bits_per_word = 0;

  std::size_t capacity_bits() const { return words * bits_per_word; }

  /// Macro area in um^2 (bitcells + periphery floor). Zero-capacity macros
  /// cost nothing (the design simply omits them).
  double area_um2(const TechModel& tech) const;

  /// Energy of one full-word read in pJ, including the CACTI-style
  /// capacity-dependent wordline/bitline term.
  double read_energy_pj(const TechModel& tech) const;
};

}  // namespace svt::hw
