// Arithmetic operator cost models (array multipliers, adders, registers).
#pragma once

#include <cstddef>

#include "hw/tech_model.hpp"

namespace svt::hw {

/// Area of a b1 x b2 array multiplier in um^2. Throws std::invalid_argument
/// on non-positive widths.
double multiplier_area_um2(int b1, int b2, const TechModel& tech);

/// Area of a `bits`-wide adder with its pipeline register, um^2.
double adder_area_um2(int bits, const TechModel& tech);

/// Switching energy of one b1 x b2 multiply in pJ (quadratic array term +
/// linear wiring/glitch term).
double multiply_energy_pj(int b1, int b2, const TechModel& tech);

/// Energy of one multiply-accumulate op: multiply + stage overhead
/// (accumulator flop + forwarding).
double mac_energy_pj(int b1, int b2, const TechModel& tech);

/// ceil(log2(n)) for n >= 1 (0 for n == 1); accumulator growth helper.
int clog2(std::size_t n);

}  // namespace svt::hw
