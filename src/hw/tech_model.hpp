// 40 nm technology constants for the analytic accelerator cost model.
//
// The paper evaluates area and energy "via hardware synthesis targeting a
// 40nm technology" with a CACTI-style memory model [14]. We cannot run a
// proprietary synthesis flow, so (per DESIGN.md Section 2) we substitute an
// analytic model whose constants are calibrated so that the paper's baseline
// design point (53 features, unbudgeted SV set, 64-bit datapath) lands near
// the paper's reported ~2000 nJ / ~0.4 mm^2, and whose *scaling* with memory
// bits, operator widths and operation counts reproduces the paper's relative
// gains. All constants live here, in one place, with their provenance.
//
// Model structure:
//  * SRAM macro: area = bits * area_per_bit + fixed periphery; read energy =
//    (fixed access + per-bit) * (1 + 0.5 * sqrt(capacity / reference)) -- the
//    square-root capacity term is the classic CACTI wordline/bitline scaling.
//  * Multiplier: area and switching energy scale with b1*b2 (array
//    multiplier); adders/registers scale linearly in width.
//  * Every MAC1 cycle pays a width-independent clock/control overhead -- in
//    low-power serial designs this infrastructure cost is a large share of
//    total energy and is what keeps the paper's bit-width gains at ~3x
//    rather than the ~50x a pure b^2 model would predict.
//  * Static (leakage + clock-tree) power is proportional to area and is paid
//    over the classification latency.
#pragma once

namespace svt::hw {

struct TechModel {
  // --- SRAM (CACTI-flavoured) ---------------------------------------------
  double sram_area_um2_per_bit = 0.6;      ///< 40 nm 6T bitcell + local overhead.
  double sram_periphery_um2 = 3000.0;      ///< Decoder/sense-amp floor per macro.
  double sram_access_fixed_pj = 4.0;       ///< Per-access periphery energy.
  double sram_access_pj_per_bit = 0.03;    ///< Per read bit.
  double sram_reference_bits = 16384.0;    ///< Capacity normalisation (16 kbit).
  double sram_capacity_exponent = 0.5;     ///< sqrt scaling of access energy.
  double sram_capacity_slope = 0.5;        ///< Weight of the capacity term.

  // --- Arithmetic operators -------------------------------------------------
  double mult_area_um2_per_bit2 = 2.5;     ///< Array multiplier area / (b1*b2).
  double mult_area_floor_um2 = 50.0;
  double adder_area_um2_per_bit = 15.0;    ///< Adder + pipeline register, per bit.
  double mult_energy_pj_per_bit2 = 0.021;  ///< Switching energy / (b1*b2).
  double mult_energy_pj_per_bit = 0.15;    ///< Linear (wiring/glitch) term on b1+b2.
  double stage_op_overhead_pj = 5.0;       ///< Register/flop energy per stage op.

  // --- Whole-pipeline infrastructure ----------------------------------------
  double cycle_overhead_pj = 35.0;   ///< Clock tree + control per MAC1 cycle.
  double control_area_um2 = 5000.0;  ///< FSM, scale-factor shifters, I/O.
  double static_power_mw_per_mm2 = 2.0;  ///< Leakage + clock distribution.
  double clock_mhz = 10.0;           ///< Low-power operating point.
};

/// The calibrated default model used by every experiment.
inline TechModel default_tech_model() { return TechModel{}; }

}  // namespace svt::hw
