#include "hw/accelerator_model.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "common/assert.hpp"
#include "hw/arith_model.hpp"
#include "hw/memory_model.hpp"

namespace svt::hw {

int PipelineConfig::mac1_accumulator_bits() const {
  return 2 * feature_bits + clog2(std::max<std::size_t>(num_features, 1)) + 1;
}

int PipelineConfig::kernel_input_bits() const {
  return std::max(2, mac1_accumulator_bits() - dot_truncate_bits);
}

int PipelineConfig::square_raw_bits() const { return 2 * kernel_input_bits(); }

int PipelineConfig::kernel_output_bits() const {
  return std::max(2, square_raw_bits() - square_truncate_bits);
}

int PipelineConfig::mac2_accumulator_bits() const {
  return alpha_bits + kernel_output_bits() +
         clog2(std::max<std::size_t>(num_support_vectors, 1)) + 1;
}

std::size_t PipelineConfig::sv_word_bits() const {
  return num_features * static_cast<std::size_t>(feature_bits) +
         static_cast<std::size_t>(alpha_bits);
}

std::size_t PipelineConfig::cycles_per_classification() const {
  // Per SV: Nfeat dot-product MACs, one square cycle, one MAC2 cycle.
  return num_support_vectors * (num_features + 2);
}

void PipelineConfig::validate() const {
  if (num_features == 0) throw std::invalid_argument("PipelineConfig: num_features == 0");
  if (num_support_vectors == 0)
    throw std::invalid_argument("PipelineConfig: num_support_vectors == 0");
  if (feature_bits < 2 || feature_bits > 64)
    throw std::invalid_argument("PipelineConfig: feature_bits outside [2,64]");
  if (alpha_bits < 2 || alpha_bits > 64)
    throw std::invalid_argument("PipelineConfig: alpha_bits outside [2,64]");
  if (dot_truncate_bits < 0 || square_truncate_bits < 0)
    throw std::invalid_argument("PipelineConfig: negative truncation");
}

std::string PipelineConfig::describe() const {
  std::ostringstream os;
  os << "pipeline(nfeat=" << num_features << ", nsv=" << num_support_vectors
     << ", Dbits=" << feature_bits << ", Abits=" << alpha_bits << ")";
  return os.str();
}

CostReport estimate_cost(const PipelineConfig& config, const TechModel& tech) {
  config.validate();
  CostReport report;
  report.config = config;

  // --- Memories -------------------------------------------------------------
  SramMacro sv_mem{config.num_support_vectors, config.sv_word_bits()};
  // Scale-factor memory: one 6-bit Rj per feature (range [-8,20] fits in 6
  // bits including sign). Only needed below 64-bit datapaths; its cost is
  // charged always -- it is negligible, and charging it uniformly keeps the
  // model monotone in the widths.
  SramMacro scale_mem{config.num_features, 6};

  // --- Area -------------------------------------------------------------------
  constexpr double kUm2PerMm2 = 1e6;
  AreaBreakdown& area = report.area;
  area.sv_memory_mm2 = sv_mem.area_um2(tech) / kUm2PerMm2;
  area.scale_memory_mm2 = scale_mem.area_um2(tech) / kUm2PerMm2;
  area.mac1_mm2 = (multiplier_area_um2(config.feature_bits, config.feature_bits, tech) +
                   adder_area_um2(config.mac1_accumulator_bits(), tech)) /
                  kUm2PerMm2;
  area.squarer_mm2 = (multiplier_area_um2(config.kernel_input_bits(),
                                          config.kernel_input_bits(), tech) +
                      adder_area_um2(config.kernel_output_bits(), tech)) /
                     kUm2PerMm2;
  area.mac2_mm2 = (multiplier_area_um2(config.alpha_bits, config.kernel_output_bits(), tech) +
                   adder_area_um2(config.mac2_accumulator_bits(), tech)) /
                  kUm2PerMm2;
  area.control_mm2 = tech.control_area_um2 / kUm2PerMm2;
  area.total_mm2 = area.sv_memory_mm2 + area.scale_memory_mm2 + area.mac1_mm2 +
                   area.squarer_mm2 + area.mac2_mm2 + area.control_mm2;

  // --- Latency ------------------------------------------------------------------
  const double cycles = static_cast<double>(config.cycles_per_classification());
  report.latency_us = cycles / tech.clock_mhz;

  // --- Energy per classification ---------------------------------------------
  constexpr double kPjPerNj = 1e3;
  EnergyBreakdown& energy = report.energy;
  const double nsv = static_cast<double>(config.num_support_vectors);
  const double nfeat = static_cast<double>(config.num_features);

  // One SV-word read per support vector plus one scale-factor read per
  // feature (scale factors are read once per classification, not per SV:
  // the test vector is scaled while it is loaded).
  energy.memory_nj = (nsv * sv_mem.read_energy_pj(tech) +
                      nfeat * scale_mem.read_energy_pj(tech)) /
                     kPjPerNj;
  energy.mac1_nj =
      nsv * nfeat * mac_energy_pj(config.feature_bits, config.feature_bits, tech) / kPjPerNj;
  energy.squarer_nj = nsv *
                      mac_energy_pj(config.kernel_input_bits(), config.kernel_input_bits(), tech) /
                      kPjPerNj;
  energy.mac2_nj =
      nsv * mac_energy_pj(config.alpha_bits, config.kernel_output_bits(), tech) / kPjPerNj;
  energy.cycle_overhead_nj = cycles * tech.cycle_overhead_pj / kPjPerNj;
  // Static (leakage + clock tree) power over the classification latency.
  // Units: (mW/mm^2 * mm^2) * us = mW * us = 1e-3 W * 1e-6 s = 1 nJ.
  energy.static_nj = tech.static_power_mw_per_mm2 * area.total_mm2 * report.latency_us;
  energy.total_nj = energy.memory_nj + energy.mac1_nj + energy.squarer_nj + energy.mac2_nj +
                    energy.cycle_overhead_nj + energy.static_nj;
  return report;
}

}  // namespace svt::hw
