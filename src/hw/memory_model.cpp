#include "hw/memory_model.hpp"

#include <cmath>

namespace svt::hw {

double SramMacro::area_um2(const TechModel& tech) const {
  const auto bits = capacity_bits();
  if (bits == 0) return 0.0;
  return static_cast<double>(bits) * tech.sram_area_um2_per_bit + tech.sram_periphery_um2;
}

double SramMacro::read_energy_pj(const TechModel& tech) const {
  const auto bits = capacity_bits();
  if (bits == 0) return 0.0;
  const double base = tech.sram_access_fixed_pj +
                      tech.sram_access_pj_per_bit * static_cast<double>(bits_per_word);
  const double capacity_factor =
      1.0 + tech.sram_capacity_slope *
                std::pow(static_cast<double>(bits) / tech.sram_reference_bits,
                         tech.sram_capacity_exponent);
  return base * capacity_factor;
}

}  // namespace svt::hw
