#include "hw/arith_model.hpp"

#include <stdexcept>

namespace svt::hw {

namespace {
void require_widths(int b1, int b2, const char* what) {
  if (b1 <= 0 || b2 <= 0) throw std::invalid_argument(std::string(what) + ": non-positive width");
}
}  // namespace

double multiplier_area_um2(int b1, int b2, const TechModel& tech) {
  require_widths(b1, b2, "multiplier_area_um2");
  return tech.mult_area_floor_um2 +
         tech.mult_area_um2_per_bit2 * static_cast<double>(b1) * static_cast<double>(b2);
}

double adder_area_um2(int bits, const TechModel& tech) {
  if (bits <= 0) throw std::invalid_argument("adder_area_um2: non-positive width");
  return tech.adder_area_um2_per_bit * static_cast<double>(bits);
}

double multiply_energy_pj(int b1, int b2, const TechModel& tech) {
  require_widths(b1, b2, "multiply_energy_pj");
  return tech.mult_energy_pj_per_bit2 * static_cast<double>(b1) * static_cast<double>(b2) +
         tech.mult_energy_pj_per_bit * static_cast<double>(b1 + b2);
}

double mac_energy_pj(int b1, int b2, const TechModel& tech) {
  return multiply_energy_pj(b1, b2, tech) + tech.stage_op_overhead_pj;
}

int clog2(std::size_t n) {
  if (n == 0) throw std::invalid_argument("clog2: n == 0");
  int bits = 0;
  std::size_t v = n - 1;
  while (v != 0) {
    v >>= 1;
    ++bits;
  }
  return bits;
}

}  // namespace svt::hw
