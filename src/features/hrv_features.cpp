#include "features/hrv_features.hpp"

#include <cmath>

#include "dsp/statistics.hpp"

namespace svt::features {

std::array<double, kNumHrvFeatures> compute_hrv_features(const ecg::RrSeries& rr) {
  std::array<double, kNumHrvFeatures> f{};
  if (rr.size() < 4) return f;
  const std::span<const double> x(rr.rr_s);

  std::vector<double> hr(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) hr[i] = 60.0 / x[i];

  // Units follow HRV-analysis convention (intervals in milliseconds, rates
  // in bpm, fractions in percent). The resulting *heterogeneous* feature
  // magnitudes are what the paper's per-feature power-of-two ranges exist
  // to handle, so they are preserved deliberately (see svm::ScalerMode).
  const double mean_nn = dsp::mean(x);
  f[0] = dsp::mean(hr);                                     // [bpm]
  f[1] = mean_nn * 1e3;                                     // [ms]
  f[2] = dsp::stddev_sample(x) * 1e3;                       // SDNN [ms]
  f[3] = dsp::rmssd(x) * 1e3;                               // RMSSD [ms]
  f[4] = dsp::fraction_successive_diff_above(x, 0.050) * 100.0;  // pNN50 [%]
  f[5] = mean_nn > 0.0 ? dsp::stddev_sample(x) / mean_nn * 100.0 : 0.0;  // CVNN [%]
  f[6] = dsp::stddev_sample(hr);                            // [bpm]
  f[7] = dsp::iqr(x) * 1e3;                                 // [ms]
  return f;
}

}  // namespace svt::features
