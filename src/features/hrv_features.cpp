#include "features/hrv_features.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "dsp/statistics.hpp"

namespace svt::features {

std::array<double, kNumHrvFeatures> compute_hrv_features(const ecg::RrSeries& rr) {
  std::array<double, kNumHrvFeatures> f{};
  FeatureScratch scratch;
  compute_hrv_features(rr, scratch, f);
  return f;
}

void compute_hrv_features(const ecg::RrSeries& rr, FeatureScratch& scratch,
                          std::span<double> f) {
  compute_hrv_features(std::span<const double>(rr.rr_s), scratch, f);
}

void compute_hrv_features(std::span<const double> rr_s, FeatureScratch& scratch,
                          std::span<double> f) {
  SVT_ASSERT(f.size() == kNumHrvFeatures);
  std::fill(f.begin(), f.end(), 0.0);
  if (rr_s.size() < 4) return;
  const std::span<const double> x(rr_s);

  auto& hr = scratch.hr;
  hr.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) hr[i] = 60.0 / x[i];

  // Units follow HRV-analysis convention (intervals in milliseconds, rates
  // in bpm, fractions in percent). The resulting *heterogeneous* feature
  // magnitudes are what the paper's per-feature power-of-two ranges exist
  // to handle, so they are preserved deliberately (see svm::ScalerMode).
  const double mean_nn = dsp::mean(x);
  f[0] = dsp::mean(hr);                                     // [bpm]
  f[1] = mean_nn * 1e3;                                     // [ms]
  f[2] = dsp::stddev_sample(x) * 1e3;                       // SDNN [ms]

  auto& d = scratch.diffs;  // Successive differences, shared by RMSSD/pNN50.
  dsp::successive_differences_into(x, d);
  f[3] = dsp::rms(d) * 1e3;                                 // RMSSD [ms]
  f[4] = dsp::fraction_abs_above(d, 0.050) * 100.0;         // pNN50 [%]

  f[5] = mean_nn > 0.0 ? dsp::stddev_sample(x) / mean_nn * 100.0 : 0.0;  // CVNN [%]
  f[6] = dsp::stddev_sample(hr);                            // [bpm]

  auto& sorted = scratch.sorted;  // One sort serves both IQR percentiles.
  sorted.assign(x.begin(), x.end());
  std::sort(sorted.begin(), sorted.end());
  f[7] = (dsp::percentile_sorted(sorted, 75.0) - dsp::percentile_sorted(sorted, 25.0)) * 1e3;
}

}  // namespace svt::features
