// AF-screening features over an RR tachogram.
//
// Atrial fibrillation shows up in the RR series as irregular-irregularity:
// beat-to-beat variability that is large *relative to the mean interval*
// (rmssd ratio), direction changes far more frequent than sinus rhythm's
// respiratory modulation produces (turning-point ratio), and an interval
// histogram that spreads across many bins instead of piling into one
// (Shannon entropy). Three scalar features are enough for a small screening
// SVM — the classical Moody/Tateno-style detectors use exactly this family.
//
// Edge semantics are part of the contract (asserted by
// tests/test_af_features.cpp): a window too short for a statistic yields
// NaN rather than a silently degenerate value, so downstream consumers can
// distinguish "no evidence" from "evidence of regularity":
//   rmssd_ratio          needs >= 2 intervals (one successive difference);
//   turning_point_ratio  needs >= 3 intervals (one interior point);
//   shannon_entropy      needs >= 32 intervals (8 trimmed per side must
//                        leave a populated histogram).
// A non-positive mean RR (degenerate input) also yields NaN for the ratio.
#pragma once

#include <cstddef>
#include <span>

#include "features/feature_scratch.hpp"

namespace svt::features {

/// Feature vector layout served by the AF workload.
inline constexpr std::size_t kNumAfFeatures = 3;

/// RMSSD of successive RR differences, normalised by the mean interval
/// (dimensionless; high under AF). NaN for < 2 intervals or mean <= 0.
double af_rmssd_ratio(std::span<const double> rr_s);

/// Fraction of interior intervals that are strict local extrema of the
/// tachogram (the turning-point test for serial randomness; ~2/3 for an
/// i.i.d. sequence). Plateaus (ties) are not turning points. NaN for < 3
/// intervals.
double af_turning_point_ratio(std::span<const double> rr_s);

/// Shannon entropy of a 16-bin histogram over the sorted RR series with the
/// 8 smallest and 8 largest intervals trimmed (outlier-robust), normalised
/// to [0, 1] by log(16). Returns 0 when every kept interval is identical
/// (hi <= lo), NaN for < 32 intervals. `scratch.sorted` is used for the
/// sort; its previous contents are overwritten.
double af_shannon_entropy(std::span<const double> rr_s, FeatureScratch& scratch);

/// All kNumAfFeatures in order: {rmssd_ratio, turning_point_ratio,
/// shannon_entropy}. `out.size()` must equal kNumAfFeatures.
void compute_af_features(std::span<const double> rr_s, FeatureScratch& scratch,
                         std::span<double> out);

}  // namespace svt::features
