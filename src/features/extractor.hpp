// Full 53-feature extraction and dataset-to-matrix assembly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ecg/dataset.hpp"
#include "features/feature_scratch.hpp"
#include "features/feature_types.hpp"

namespace svt::features {

/// Labelled feature matrix in the layout the SVM layer consumes.
struct FeatureMatrix {
  std::vector<std::vector<double>> samples;  ///< samples[i] = feature vector of window i.
  std::vector<int> labels;                   ///< +1 / -1, aligned with samples.
  std::vector<int> session_index;            ///< Fold id per sample.
  std::vector<int> patient_id;               ///< Patient per sample.

  std::size_t size() const { return samples.size(); }
  std::size_t num_features() const { return samples.empty() ? 0 : samples.front().size(); }

  /// Keep only the listed feature columns (in the given order).
  FeatureMatrix select_features(const std::vector<std::size_t>& kept) const;

  /// Rows whose index is in `rows` (e.g. a fold's train or test indices).
  FeatureMatrix select_rows(const std::vector<std::size_t>& rows) const;
};

/// Extract the 53-dimensional feature vector of one window.
std::vector<double> extract_features(const ecg::WindowRecord& window);

/// Extract the same feature vector directly from the two physiological
/// series (used by the streaming runtime, which rebuilds them per window
/// from raw ECG samples via QRS detection rather than from a dataset).
std::vector<double> extract_features(const ecg::RrSeries& rr,
                                     const ecg::RespirationSeries& edr);

/// Scratch variant: writes the kNumFeatures values into `out` (out.size()
/// must equal kNumFeatures) with no heap allocation once the scratch is
/// warm. Bit-identical to the allocating overloads, which delegate here.
void extract_features(const ecg::RrSeries& rr, const ecg::RespirationSeries& edr,
                      FeatureScratch& scratch, std::span<double> out);

/// Extract features for every window of a dataset (session order).
FeatureMatrix extract_feature_matrix(const ecg::Dataset& dataset);

}  // namespace svt::features
