// Feature catalogue shared by the extractor, the selection algorithm and the
// plots/benches.
//
// The paper's baseline set has 53 features in four groups (Section III):
//   1-8   heart-rate analysis (HRV time domain),
//   9-15  Lorentz (Poincare) plot geometry,
//   16-24 auto-regressive model coefficients of the EDR series,
//   25-53 power-spectral-density analysis of the EDR series.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace svt::features {

enum class FeatureCategory { kHrv, kLorentz, kAr, kPsd };

/// Printable group name matching the paper's Figure 3 legend.
std::string category_name(FeatureCategory c);

struct FeatureInfo {
  std::size_t index = 0;  ///< 0-based position in the feature vector.
  std::string name;
  FeatureCategory category = FeatureCategory::kHrv;
};

inline constexpr std::size_t kNumHrvFeatures = 8;
inline constexpr std::size_t kNumLorentzFeatures = 7;
inline constexpr std::size_t kNumArFeatures = 9;
inline constexpr std::size_t kNumPsdFeatures = 29;
inline constexpr std::size_t kNumFeatures =
    kNumHrvFeatures + kNumLorentzFeatures + kNumArFeatures + kNumPsdFeatures;  // 53

/// Full catalogue, ordered as in the feature vector.
const std::vector<FeatureInfo>& feature_catalog();

/// Category of the feature at a 0-based index. Throws std::out_of_range.
FeatureCategory category_of(std::size_t index);

/// Category-typical magnitude gain (a power of two) applied after per-feature
/// normalisation: HRV 8x, Lorentz 4x, PSD 2x, AR 1x. This preserves the
/// *heterogeneous feature ranges* of raw physiological units -- the property
/// the paper's per-feature power-of-two scaling (Eq. 6) exists to exploit --
/// while keeping the kernel numerically well-conditioned for training.
double category_gain(FeatureCategory c);

/// Convenience: gains for a subset of feature indices (full catalogue order).
std::vector<double> category_gains(const std::vector<std::size_t>& feature_indices);

}  // namespace svt::features
