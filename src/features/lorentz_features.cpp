#include "features/lorentz_features.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/assert.hpp"
#include "dsp/statistics.hpp"

namespace svt::features {

std::array<double, kNumLorentzFeatures> compute_lorentz_features(const ecg::RrSeries& rr) {
  std::array<double, kNumLorentzFeatures> f{};
  FeatureScratch scratch;
  compute_lorentz_features(rr, scratch, f);
  return f;
}

void compute_lorentz_features(const ecg::RrSeries& rr, FeatureScratch& scratch,
                              std::span<double> f) {
  compute_lorentz_features(std::span<const double>(rr.rr_s), scratch, f);
}

void compute_lorentz_features(std::span<const double> rr_s, FeatureScratch& scratch,
                              std::span<double> f) {
  SVT_ASSERT(f.size() == kNumLorentzFeatures);
  std::fill(f.begin(), f.end(), 0.0);
  if (rr_s.size() < 4) return;
  const auto& x = rr_s;

  // Rotate successive pairs by 45 degrees: u along the identity line,
  // v perpendicular to it. SD1 = std(v), SD2 = std(u).
  auto& u = scratch.u;
  auto& v = scratch.v;
  u.resize(x.size() - 1);
  v.resize(x.size() - 1);
  for (std::size_t i = 0; i + 1 < x.size(); ++i) {
    u[i] = (x[i + 1] + x[i]) / std::numbers::sqrt2;
    v[i] = (x[i + 1] - x[i]) / std::numbers::sqrt2;
  }
  const double sd1 = dsp::stddev_sample(v) * 1e3;  // [ms]
  const double sd2 = dsp::stddev_sample(u) * 1e3;  // [ms]

  f[0] = sd1;
  f[1] = sd2;
  f[2] = sd2 > 0.0 ? sd1 / sd2 : 0.0;
  f[3] = std::numbers::pi * sd1 * sd2 / 100.0;  // Ellipse area [10^2 ms^2].
  f[4] = sd1 > 0.0 ? sd2 / sd1 : 0.0;           // CSI.
  const double prod = 16.0 * sd1 * sd2;
  f[5] = prod > 0.0 ? std::log10(prod) : 0.0;   // CVI.
  const double cu = dsp::mean(u);
  const double cv = dsp::mean(v);
  f[6] = std::sqrt(cu * cu + cv * cv) * 1e3;    // Centroid distance [ms].
}

}  // namespace svt::features
