// Power-spectral-density EDR features (paper features 25-53).
//
// Welch PSD of the EDR series (4 Hz sampling -> 0..2 Hz one-sided), summarised
// as 25 log band powers over equal-width bands covering [0, 2) Hz plus four
// spectral summaries. Neighbouring narrow bands of a smooth respiratory
// spectrum are strongly correlated, which reproduces the paper's Figure-3
// observation that "most PSD features encode information redundantly".
#pragma once

#include <array>
#include <span>

#include "ecg/rr_model.hpp"
#include "features/feature_scratch.hpp"
#include "features/feature_types.hpp"

namespace svt::features {

inline constexpr std::size_t kNumPsdBands = 25;

/// Features, in order:
///  0..24  log10(band power + eps) over 25 equal bands spanning [0, fs/2)
///  25     log10(total power + eps)
///  26     low/high respiratory band power ratio ([0.1,0.25) / [0.25,0.5) Hz)
///  27     peak (dominant respiratory) frequency in [0.05, 0.6) Hz
///  28     95% spectral edge frequency
std::array<double, kNumPsdFeatures> compute_psd_features(const ecg::RespirationSeries& edr);

/// Scratch variant: writes the kNumPsdFeatures values into `out` (out.size()
/// must equal kNumPsdFeatures) with no heap allocation once the scratch is
/// warm. Bit-identical to the allocating overload (delegates to the span
/// entry point below).
void compute_psd_features(const ecg::RespirationSeries& edr, FeatureScratch& scratch,
                          std::span<double> out);

/// Span-based entry point: the EDR series as raw values + rate, no
/// container required. THE implementation — both overloads above delegate
/// here, so every path is bit-identical by construction. The streaming
/// segment cache does not call this directly (it assembles the Welch PSD
/// from memoized per-segment periodograms) but shares summarize_psd below.
void compute_psd_features(std::span<const double> edr_values, double edr_fs_hz,
                          FeatureScratch& scratch, std::span<double> out);

/// The band-power / summary half of compute_psd_features: fills all
/// kNumPsdFeatures values from an already-computed Welch PSD. Split out so
/// the incremental feature pipeline can feed a PSD averaged from cached
/// per-segment periodograms through the exact same summary arithmetic.
void summarize_psd(const dsp::PsdEstimate& psd, double edr_fs_hz, std::span<double> out);

}  // namespace svt::features
