// Power-spectral-density EDR features (paper features 25-53).
//
// Welch PSD of the EDR series (4 Hz sampling -> 0..2 Hz one-sided), summarised
// as 25 log band powers over equal-width bands covering [0, 2) Hz plus four
// spectral summaries. Neighbouring narrow bands of a smooth respiratory
// spectrum are strongly correlated, which reproduces the paper's Figure-3
// observation that "most PSD features encode information redundantly".
#pragma once

#include <array>
#include <span>

#include "ecg/rr_model.hpp"
#include "features/feature_scratch.hpp"
#include "features/feature_types.hpp"

namespace svt::features {

inline constexpr std::size_t kNumPsdBands = 25;

/// Features, in order:
///  0..24  log10(band power + eps) over 25 equal bands spanning [0, fs/2)
///  25     log10(total power + eps)
///  26     low/high respiratory band power ratio ([0.1,0.25) / [0.25,0.5) Hz)
///  27     peak (dominant respiratory) frequency in [0.05, 0.6) Hz
///  28     95% spectral edge frequency
std::array<double, kNumPsdFeatures> compute_psd_features(const ecg::RespirationSeries& edr);

/// Scratch variant: writes the kNumPsdFeatures values into `out` (out.size()
/// must equal kNumPsdFeatures) with no heap allocation once the scratch is
/// warm. Bit-identical to the allocating overload.
void compute_psd_features(const ecg::RespirationSeries& edr, FeatureScratch& scratch,
                          std::span<double> out);

}  // namespace svt::features
