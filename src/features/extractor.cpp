#include "features/extractor.hpp"

#include <stdexcept>

#include "common/assert.hpp"
#include "features/ar_features.hpp"
#include "features/hrv_features.hpp"
#include "features/lorentz_features.hpp"
#include "features/psd_features.hpp"

namespace svt::features {

std::string category_name(FeatureCategory c) {
  switch (c) {
    case FeatureCategory::kHrv: return "HRV";
    case FeatureCategory::kLorentz: return "Lorentz";
    case FeatureCategory::kAr: return "AR";
    case FeatureCategory::kPsd: return "PSD";
  }
  return "unknown";
}

const std::vector<FeatureInfo>& feature_catalog() {
  static const std::vector<FeatureInfo> catalog = [] {
    std::vector<FeatureInfo> c;
    c.reserve(kNumFeatures);
    const char* hrv_names[] = {"mean_hr",  "mean_nn", "sdnn",   "rmssd",
                               "pnn50",    "cvnn",    "sd_hr",  "rr_iqr"};
    const char* lorentz_names[] = {"sd1", "sd2", "sd1_sd2", "ellipse_area",
                                   "csi", "cvi", "centroid_dist"};
    std::size_t idx = 0;
    for (const char* n : hrv_names)
      c.push_back({idx++, n, FeatureCategory::kHrv});
    for (const char* n : lorentz_names)
      c.push_back({idx++, n, FeatureCategory::kLorentz});
    for (std::size_t i = 0; i < kNumArFeatures; ++i)
      c.push_back({idx++, "edr_ar_a" + std::to_string(i + 1), FeatureCategory::kAr});
    for (std::size_t i = 0; i < kNumPsdBands; ++i)
      c.push_back({idx++, "edr_psd_band" + std::to_string(i + 1), FeatureCategory::kPsd});
    c.push_back({idx++, "edr_psd_total", FeatureCategory::kPsd});
    c.push_back({idx++, "edr_psd_lf_hf", FeatureCategory::kPsd});
    c.push_back({idx++, "edr_psd_peak_f", FeatureCategory::kPsd});
    c.push_back({idx++, "edr_psd_edge95", FeatureCategory::kPsd});
    SVT_ASSERT(c.size() == kNumFeatures);
    return c;
  }();
  return catalog;
}

FeatureCategory category_of(std::size_t index) {
  const auto& catalog = feature_catalog();
  if (index >= catalog.size()) throw std::out_of_range("category_of: feature index out of range");
  return catalog[index].category;
}

double category_gain(FeatureCategory c) {
  // Powers of two, chosen so that (a) ranges stay heterogeneous across
  // categories (3 octaves -- the property Eq. 6's per-feature scaling
  // exploits) and (b) typical dot products are O(1), keeping the quadratic
  // kernel's +1 meaningful: (x.z + 1)^2 must blend a linear and a quadratic
  // channel, not degenerate to the homogeneous (x.z)^2 whose f(x) = f(-x)
  // symmetry cannot express this task's class geometry.
  switch (c) {
    case FeatureCategory::kHrv: return 0.5;
    case FeatureCategory::kLorentz: return 0.25;
    case FeatureCategory::kPsd: return 0.125;
    case FeatureCategory::kAr: return 0.0625;
  }
  return 1.0;
}

std::vector<double> category_gains(const std::vector<std::size_t>& feature_indices) {
  std::vector<double> gains;
  gains.reserve(feature_indices.size());
  for (std::size_t j : feature_indices) gains.push_back(category_gain(category_of(j)));
  return gains;
}

std::vector<double> extract_features(const ecg::RrSeries& rr,
                                     const ecg::RespirationSeries& edr) {
  FeatureScratch scratch;
  std::vector<double> f(kNumFeatures);
  extract_features(rr, edr, scratch, f);
  return f;
}

void extract_features(const ecg::RrSeries& rr, const ecg::RespirationSeries& edr,
                      FeatureScratch& scratch, std::span<double> out) {
  SVT_ASSERT(out.size() == kNumFeatures);
  std::size_t off = 0;
  compute_hrv_features(rr, scratch, out.subspan(off, kNumHrvFeatures));
  off += kNumHrvFeatures;
  compute_lorentz_features(rr, scratch, out.subspan(off, kNumLorentzFeatures));
  off += kNumLorentzFeatures;
  compute_ar_features(edr, scratch, out.subspan(off, kNumArFeatures));
  off += kNumArFeatures;
  compute_psd_features(edr, scratch, out.subspan(off, kNumPsdFeatures));
}

std::vector<double> extract_features(const ecg::WindowRecord& window) {
  return extract_features(window.rr, window.edr);
}

FeatureMatrix extract_feature_matrix(const ecg::Dataset& dataset) {
  FeatureMatrix m;
  const auto windows = dataset.all_windows();
  m.samples.reserve(windows.size());
  m.labels.reserve(windows.size());
  m.session_index.reserve(windows.size());
  m.patient_id.reserve(windows.size());
  for (const auto* w : windows) {
    m.samples.push_back(extract_features(*w));
    m.labels.push_back(w->label);
    m.session_index.push_back(w->session_index);
    m.patient_id.push_back(w->patient_id);
  }
  return m;
}

FeatureMatrix FeatureMatrix::select_features(const std::vector<std::size_t>& kept) const {
  FeatureMatrix out;
  out.labels = labels;
  out.session_index = session_index;
  out.patient_id = patient_id;
  out.samples.reserve(samples.size());
  for (const auto& row : samples) {
    std::vector<double> r;
    r.reserve(kept.size());
    for (std::size_t j : kept) {
      if (j >= row.size()) throw std::out_of_range("select_features: feature index out of range");
      r.push_back(row[j]);
    }
    out.samples.push_back(std::move(r));
  }
  return out;
}

FeatureMatrix FeatureMatrix::select_rows(const std::vector<std::size_t>& rows) const {
  FeatureMatrix out;
  out.samples.reserve(rows.size());
  out.labels.reserve(rows.size());
  out.session_index.reserve(rows.size());
  out.patient_id.reserve(rows.size());
  for (std::size_t i : rows) {
    if (i >= samples.size()) throw std::out_of_range("select_rows: row index out of range");
    out.samples.push_back(samples[i]);
    out.labels.push_back(labels[i]);
    out.session_index.push_back(session_index[i]);
    out.patient_id.push_back(patient_id[i]);
  }
  return out;
}

}  // namespace svt::features
