#include "features/af_features.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hpp"

namespace svt::features {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}  // namespace

double af_rmssd_ratio(std::span<const double> rr_s) {
  const std::size_t n = rr_s.size();
  if (n < 2) return kNaN;
  double sum_sq = 0.0;
  double sum = rr_s[0];
  for (std::size_t i = 1; i < n; ++i) {
    const double d = rr_s[i] - rr_s[i - 1];
    sum_sq += d * d;
    sum += rr_s[i];
  }
  const double rmssd = std::sqrt(sum_sq / static_cast<double>(n - 1));
  const double mean = sum / static_cast<double>(n);
  return mean > 0.0 ? rmssd / mean : kNaN;
}

double af_turning_point_ratio(std::span<const double> rr_s) {
  const std::size_t n = rr_s.size();
  if (n < 3) return kNaN;
  std::size_t turning = 0;
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const bool peak = rr_s[i] > rr_s[i - 1] && rr_s[i] > rr_s[i + 1];
    const bool trough = rr_s[i] < rr_s[i - 1] && rr_s[i] < rr_s[i + 1];
    if (peak || trough) ++turning;
  }
  return static_cast<double>(turning) / static_cast<double>(n - 2);
}

double af_shannon_entropy(std::span<const double> rr_s, FeatureScratch& scratch) {
  constexpr std::size_t kTrim = 8;    ///< Intervals dropped per tail.
  constexpr std::size_t kBins = 16;
  const std::size_t n = rr_s.size();
  if (n < 2 * kTrim * 2) return kNaN;  // < 32: trimming would gut the histogram.
  scratch.sorted.assign(rr_s.begin(), rr_s.end());
  std::sort(scratch.sorted.begin(), scratch.sorted.end());
  const std::span<const double> kept(scratch.sorted.data() + kTrim, n - 2 * kTrim);
  const double lo = kept.front();
  const double hi = kept.back();
  if (hi <= lo) return 0.0;  // Metronome rhythm: a single occupied bin.

  std::size_t counts[kBins] = {};
  const double inv_range = 1.0 / (hi - lo);
  for (const double x : kept) {
    auto k = static_cast<std::ptrdiff_t>((x - lo) * inv_range * static_cast<double>(kBins));
    k = std::clamp<std::ptrdiff_t>(k, 0, kBins - 1);
    ++counts[k];
  }

  const auto total = static_cast<double>(kept.size());
  double entropy = 0.0;
  for (const std::size_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / total;
    entropy -= p * std::log(p);
  }
  // Normalise by the 16-bin maximum so the feature lands in [0, 1].
  return entropy / std::log(static_cast<double>(kBins));
}

void compute_af_features(std::span<const double> rr_s, FeatureScratch& scratch,
                         std::span<double> out) {
  SVT_ASSERT(out.size() == kNumAfFeatures);
  out[0] = af_rmssd_ratio(rr_s);
  out[1] = af_turning_point_ratio(rr_s);
  out[2] = af_shannon_entropy(rr_s, scratch);
}

}  // namespace svt::features
