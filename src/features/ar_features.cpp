#include "features/ar_features.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "dsp/ar_model.hpp"
#include "dsp/statistics.hpp"

namespace svt::features {

std::array<double, kNumArFeatures> compute_ar_features(const ecg::RespirationSeries& edr) {
  std::array<double, kNumArFeatures> f{};
  FeatureScratch scratch;
  compute_ar_features(edr, scratch, f);
  return f;
}

void compute_ar_features(const ecg::RespirationSeries& edr, FeatureScratch& scratch,
                         std::span<double> f) {
  compute_ar_features(edr.values, scratch, f);
}

void compute_ar_features(std::span<const double> edr_values, FeatureScratch& scratch,
                         std::span<double> f) {
  SVT_ASSERT(f.size() == kNumArFeatures);
  std::fill(f.begin(), f.end(), 0.0);
  if (edr_values.size() <= kArOrder + 1) return;
  if (dsp::stddev_population(edr_values) <= 0.0) return;
  dsp::ar_burg(edr_values, kArOrder, scratch.burg);
  for (std::size_t i = 0; i < kNumArFeatures; ++i) f[i] = scratch.burg.a[i];
}

}  // namespace svt::features
