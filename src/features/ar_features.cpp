#include "features/ar_features.hpp"

#include "dsp/ar_model.hpp"
#include "dsp/statistics.hpp"

namespace svt::features {

std::array<double, kNumArFeatures> compute_ar_features(const ecg::RespirationSeries& edr) {
  std::array<double, kNumArFeatures> f{};
  if (edr.values.size() <= kArOrder + 1) return f;
  if (dsp::stddev_population(edr.values) <= 0.0) return f;
  const auto model = dsp::ar_burg(edr.values, kArOrder);
  for (std::size_t i = 0; i < kNumArFeatures; ++i) f[i] = model.coefficients[i];
  return f;
}

}  // namespace svt::features
