// Reusable per-worker workspace for the zero-allocation feature path.
//
// One FeatureScratch holds every buffer the 53-feature extraction chain
// needs — the HRV heart-rate / successive-difference / percentile-sort
// buffers, the Lorentz rotation buffers, the Burg forward/backward error
// series, and the Welch segment / taper / FFT-plan scratch — so steady-
// state window emission performs no heap allocation (every vector keeps its
// capacity between windows; the FFT plan cache holds one plan per distinct
// length seen).
//
// Ownership: scratch is NOT thread-safe and carries no per-patient state —
// every value is fully overwritten per call, so one scratch can serve any
// number of interleaved patients (asserted by tests/test_features.cpp). The
// sharded engine gives each worker thread its own scratch via the worker's
// private WindowExtractor.
//
// Bit-exactness: the scratch overloads of compute_*_features and
// extract_features are THE implementation; the allocating overloads
// delegate to them with a local scratch, so both paths agree bit-for-bit.
#pragma once

#include <vector>

#include "dsp/ar_model.hpp"
#include "dsp/spectral.hpp"

namespace svt::features {

struct FeatureScratch {
  // HRV (features 1-8).
  std::vector<double> hr;      ///< Instantaneous heart rate per interval.
  std::vector<double> diffs;   ///< Successive RR differences.
  std::vector<double> sorted;  ///< Sorted RR copy for the percentiles.
  // Lorentz (features 9-15).
  std::vector<double> u, v;  ///< 45-degree rotated successive-pair axes.
  // AR (features 16-24).
  dsp::BurgScratch burg;
  // PSD (features 25-53).
  dsp::SpectralScratch spectral;
  dsp::PsdEstimate psd;
};

}  // namespace svt::features
