// HRV time-domain features (paper features 1-8).
#pragma once

#include <array>
#include <span>

#include "ecg/rr_model.hpp"
#include "features/feature_scratch.hpp"
#include "features/feature_types.hpp"

namespace svt::features {

/// Features, in order (conventional HRV units -- ms / bpm / percent):
///  0 mean heart rate [bpm]
///  1 mean NN (RR) interval [ms]
///  2 SDNN: standard deviation of RR [ms]
///  3 RMSSD: RMS of successive RR differences [ms]
///  4 pNN50: percent of successive differences > 50 ms
///  5 CVNN: SDNN / meanNN [%]
///  6 SD of instantaneous heart rate [bpm]
///  7 RR inter-quartile range [ms]
///
/// Windows with fewer than 4 beats yield all-zero features (an unusable
/// window; the generator never produces one, but the API stays total).
std::array<double, kNumHrvFeatures> compute_hrv_features(const ecg::RrSeries& rr);

/// Scratch variant: writes the kNumHrvFeatures values into `out`
/// (out.size() must equal kNumHrvFeatures) with no heap allocation once
/// the scratch is warm. Bit-identical to the allocating overload (delegates
/// to the span entry point below).
void compute_hrv_features(const ecg::RrSeries& rr, FeatureScratch& scratch,
                          std::span<double> out);

/// Span-based entry point: only the interval values enter the features (the
/// beat times in RrSeries are carried for plotting, not used here). THE
/// implementation — both overloads above delegate here, so every path is
/// bit-identical by construction. The streaming segment cache feeds its
/// assembled per-window interval span through this.
void compute_hrv_features(std::span<const double> rr_s, FeatureScratch& scratch,
                          std::span<double> out);

}  // namespace svt::features
