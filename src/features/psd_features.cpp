#include "features/psd_features.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "dsp/spectral.hpp"
#include "dsp/statistics.hpp"

namespace svt::features {

std::array<double, kNumPsdFeatures> compute_psd_features(const ecg::RespirationSeries& edr) {
  std::array<double, kNumPsdFeatures> f{};
  FeatureScratch scratch;
  compute_psd_features(edr, scratch, f);
  return f;
}

void compute_psd_features(const ecg::RespirationSeries& edr, FeatureScratch& scratch,
                          std::span<double> f) {
  compute_psd_features(edr.values, edr.fs_hz, scratch, f);
}

void compute_psd_features(std::span<const double> edr_values, double edr_fs_hz,
                          FeatureScratch& scratch, std::span<double> f) {
  SVT_ASSERT(f.size() == kNumPsdFeatures);
  std::fill(f.begin(), f.end(), 0.0);
  if (edr_values.size() < 32 || edr_fs_hz <= 0.0) return;
  if (dsp::stddev_population(edr_values) <= 0.0) return;

  dsp::WelchParams wp;
  wp.segment_length = 256;
  wp.overlap_fraction = 0.5;
  dsp::welch_psd(edr_values, edr_fs_hz, wp, scratch.spectral, scratch.psd);
  summarize_psd(scratch.psd, edr_fs_hz, f);
}

void summarize_psd(const dsp::PsdEstimate& psd, double edr_fs_hz, std::span<double> f) {
  SVT_ASSERT(f.size() == kNumPsdFeatures);
  constexpr double kEps = 1e-12;
  const double nyquist = edr_fs_hz / 2.0;
  const double band_width = nyquist / static_cast<double>(kNumPsdBands);
  for (std::size_t b = 0; b < kNumPsdBands; ++b) {
    const double lo = band_width * static_cast<double>(b);
    const double hi = lo + band_width;
    f[b] = std::log10(dsp::band_power(psd, lo, hi) + kEps);
  }
  f[25] = std::log10(dsp::total_power(psd) + kEps);
  const double low = dsp::band_power(psd, 0.10, 0.25);
  const double high = dsp::band_power(psd, 0.25, 0.50);
  f[26] = std::log10((low + kEps) / (high + kEps));
  f[27] = dsp::peak_frequency(psd, 0.05, 0.60);
  f[28] = dsp::spectral_edge_frequency(psd, 0.95);
}

}  // namespace svt::features
