#include "features/segment_cache.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "dsp/simd_kernels.hpp"

namespace svt::features {

std::optional<SegmentFeatureCache::Layout> SegmentFeatureCache::plan(
    double fs_hz, double edr_fs_hz, std::int64_t stride_samples, std::int64_t window_samples) {
  if (fs_hz <= 0.0 || edr_fs_hz <= 0.0 || stride_samples <= 0 || window_samples <= 0)
    return std::nullopt;
  if (window_samples % stride_samples != 0) return std::nullopt;
  // The EDR grid must advance an integral number of points per stride so
  // chunk-local grid times are stride-invariant.
  const double chunk_len_d = static_cast<double>(stride_samples) * edr_fs_hz / fs_hz;
  if (chunk_len_d < 1.0 || chunk_len_d != std::floor(chunk_len_d)) return std::nullopt;

  Layout layout;
  layout.fs_hz = fs_hz;
  layout.edr_fs_hz = edr_fs_hz;
  layout.stride_samples = stride_samples;
  layout.window_samples = window_samples;
  layout.chunk_len = static_cast<std::int64_t>(chunk_len_d);
  layout.chunks_per_window = window_samples / stride_samples;
  // Welch segment: the largest multiple of the chunk length that fits
  // welch_psd's default 256-point segment, clamped to the window; hop is one
  // chunk, so a segment periodogram is shared by every window covering it.
  layout.seg_chunks =
      std::clamp<std::int64_t>(std::int64_t{256} / layout.chunk_len, 1, layout.chunks_per_window);
  layout.num_segments = layout.chunks_per_window - layout.seg_chunks + 1;
  return layout;
}

SegmentFeatureCache::SegmentFeatureCache(const Layout& layout, bool memoize)
    : layout_(layout), memoize_(memoize) {
  SVT_ASSERT(layout_.chunks_per_window >= 1 && layout_.chunk_len >= 1 &&
             layout_.num_segments >= 1);
  chunks_.resize(static_cast<std::size_t>(layout_.chunks_per_window));
  welch_.resize(static_cast<std::size_t>(layout_.num_segments));
}

const SegmentFeatureCache::Chunk& SegmentFeatureCache::chunk(const ecg::BeatRing& ring,
                                                             std::int64_t m) {
  SVT_ASSERT(m >= 0);
  Chunk& c = slot(m);
  if (memoize_ && c.index == m) {
    ++stats_.hits;
    return c;
  }
  if (c.index != -1 && c.index != m) ++stats_.evictions;
  ++stats_.misses;
  build_chunk(ring, m, c);
  return c;
}

void SegmentFeatureCache::build_chunk(const ecg::BeatRing& ring, std::int64_t m, Chunk& out) {
  const std::int64_t S = layout_.stride_samples;
  const std::int64_t lo = (m - 1) * S;  // One stride of left context.
  const std::int64_t seg_lo = m * S;
  const std::int64_t hi = (m + 1) * S;
  beat_t_.clear();
  beat_a_.clear();
  beat_i_.clear();
  std::size_t in_seg = 0;
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const ecg::Beat& b = ring[i];
    if (b.sample_index < lo) continue;
    if (b.sample_index >= hi) break;
    beat_i_.push_back(b.sample_index);
    beat_t_.push_back(static_cast<double>(b.sample_index - seg_lo) / layout_.fs_hz);
    beat_a_.push_back(b.amplitude_mv);
    if (b.sample_index >= seg_lo) ++in_seg;
  }
  out.index = m;
  out.beats = in_seg;
  out.rr.clear();
  out.rr_from.clear();
  for (std::size_t j = 1; j < beat_i_.size(); ++j) {
    if (beat_i_[j] < seg_lo) continue;  // Interval ends in the context stride.
    out.rr.push_back(static_cast<double>(beat_i_[j] - beat_i_[j - 1]) / layout_.fs_hz);
    out.rr_from.push_back(beat_i_[j - 1]);
  }
  out.empty = beat_t_.empty();
  out.edr.clear();
  if (out.empty) return;

  // EDR grid: chunk_len points at chunk-local times i / edr_fs. Same loop
  // (and same vector kernel) as resample_linear_into with the grid anchored
  // at 0, plus the causal tail hold past the last collected beat.
  const std::size_t n = static_cast<std::size_t>(layout_.chunk_len);
  out.edr.resize(n);
  const double fs = layout_.edr_fs_hz;
  const double t_front = beat_t_.front();
  const double t_back = beat_t_.back();
  std::size_t i = 0;
  while (i < n) {  // Front clamp.
    const double t = static_cast<double>(i) / fs;
    if (!(t <= t_front)) break;
    out.edr[i++] = beat_a_.front();
  }
  std::size_t hi_k = 1;
  while (i < n) {
    const double t = static_cast<double>(i) / fs;
    if (t >= t_back) break;
    while (beat_t_[hi_k] <= t) ++hi_k;
    std::size_t j = i + 1;  // Extend the run sharing this segment.
    while (j < n) {
      const double tj = static_cast<double>(j) / fs;
      if (tj >= t_back || beat_t_[hi_k] <= tj) break;
      ++j;
    }
    const double span = beat_t_[hi_k] - beat_t_[hi_k - 1];
    SVT_ASSERT(span > 0.0);
    dsp::detail::lerp_grid_span(0.0, fs, beat_t_[hi_k - 1], span, beat_a_[hi_k - 1],
                                beat_a_[hi_k], i, j - i, out.edr.data() + i);
    i = j;
  }
  for (; i < n; ++i) out.edr[i] = beat_a_.back();  // Causal tail hold.
}

const std::vector<double>& SegmentFeatureCache::segment_psd(std::int64_t m,
                                                            dsp::SpectralScratch& scratch) {
  SVT_ASSERT(m >= 0);
  WelchEntry& e = welch_[static_cast<std::size_t>(m % layout_.num_segments)];
  if (memoize_ && e.index == m) {
    ++stats_.hits;
    return e.power;
  }
  if (e.index != -1 && e.index != m) ++stats_.evictions;
  ++stats_.misses;
  seg_buf_.clear();
  for (std::int64_t j = 0; j < layout_.seg_chunks; ++j) {
    const Chunk& c = slot(m + j);
    SVT_ASSERT(c.index == m + j && !c.empty);
    seg_buf_.insert(seg_buf_.end(), c.edr.begin(), c.edr.end());
  }
  dsp::welch_segment_psd(seg_buf_, layout_.edr_fs_hz, dsp::WelchParams{}, scratch, e.power);
  e.index = m;
  return e.power;
}

SegmentFeatureCache::WindowView SegmentFeatureCache::assemble_window(std::int64_t m0) {
  const std::int64_t cpw = layout_.chunks_per_window;
  const std::int64_t start = m0 * layout_.stride_samples;
  const std::size_t chunk_len = static_cast<std::size_t>(layout_.chunk_len);
  rr_buf_.clear();
  edr_buf_.resize(static_cast<std::size_t>(layout_.window_edr_len()));
  std::size_t beats = 0;
  double hold = 0.0;
  bool have_hold = false;
  std::size_t leading_empty = 0;  // Backfilled from the first non-empty chunk.
  for (std::int64_t j = 0; j < cpw; ++j) {
    const Chunk& c = slot(m0 + j);
    SVT_ASSERT(c.index == m0 + j);
    beats += c.beats;
    if (j == 0) {
      // Only the first chunk can hold intervals opening before the window.
      for (std::size_t k = 0; k < c.rr.size(); ++k)
        if (c.rr_from[k] >= start) rr_buf_.push_back(c.rr[k]);
    } else {
      rr_buf_.insert(rr_buf_.end(), c.rr.begin(), c.rr.end());
    }
    double* dst = edr_buf_.data() + static_cast<std::size_t>(j) * chunk_len;
    if (!c.empty) {
      std::copy(c.edr.begin(), c.edr.end(), dst);
      if (!have_hold)
        std::fill(edr_buf_.data(), edr_buf_.data() + leading_empty * chunk_len, c.edr.front());
      hold = c.edr.back();
      have_hold = true;
    } else if (have_hold) {
      std::fill(dst, dst + chunk_len, hold);
    } else {
      ++leading_empty;
    }
  }
  // No beat anywhere near the window: a flat series the feature gates will
  // zero out anyway.
  if (!have_hold) std::fill(edr_buf_.begin(), edr_buf_.end(), 0.0);
  assembled_ = m0;
  return WindowView{rr_buf_, edr_buf_, beats};
}

const dsp::PsdEstimate& SegmentFeatureCache::window_psd(std::int64_t m0,
                                                        dsp::SpectralScratch& scratch) {
  SVT_ASSERT(assembled_ == m0);
  const std::size_t seg_len = static_cast<std::size_t>(layout_.welch_segment_len());
  const std::size_t nfft = dsp::next_power_of_two(seg_len);
  const std::size_t half = nfft / 2 + 1;
  const double df = layout_.edr_fs_hz / static_cast<double>(nfft);
  psd_.frequency_hz.resize(half);
  for (std::size_t k = 0; k < half; ++k) psd_.frequency_hz[k] = df * static_cast<double>(k);
  psd_.power.resize(half);

  const std::int64_t nseg = layout_.num_segments;
  for (std::int64_t s = 0; s < nseg; ++s) {
    bool cacheable = true;
    for (std::int64_t j = 0; j < layout_.seg_chunks; ++j) {
      if (slot(m0 + s + j).empty) {
        cacheable = false;
        break;
      }
    }
    const std::vector<double>* p;
    if (cacheable) {
      p = &segment_psd(m0 + s, scratch);
    } else {
      // The segment overlaps an empty chunk, so its values depend on this
      // window's fill: compute it per window from the assembled EDR and do
      // not cache it.
      ++stats_.misses;
      const std::span<const double> x(
          edr_buf_.data() + static_cast<std::size_t>(s) * static_cast<std::size_t>(layout_.chunk_len),
          seg_len);
      dsp::welch_segment_psd(x, layout_.edr_fs_hz, dsp::WelchParams{}, scratch, seg_power_);
      p = &seg_power_;
    }
    SVT_ASSERT(p->size() == half);
    // Same accumulation order as welch_psd: first segment overwrites, the
    // rest add in ascending order, then one divide by the segment count.
    if (s == 0) {
      std::copy(p->begin(), p->end(), psd_.power.begin());
    } else {
      for (std::size_t k = 0; k < half; ++k) psd_.power[k] += (*p)[k];
    }
  }
  for (double& p : psd_.power) p /= static_cast<double>(nseg);
  return psd_;
}

}  // namespace svt::features
