// Overlap-aware memoization of per-stride feature intermediates.
//
// At the paper's 180 s window / 30 s stride configuration every window
// shares 5/6 of its samples with its predecessor, yet a from-scratch
// extractor rebuilds the RR tachogram, re-resamples the EDR series and
// recomputes every Welch segment FFT per window — paying the overlap
// factor in redundant work. This cache keys those intermediates on
// *stride-aligned segments* of the patient stream so each is computed once
// and reused by every window that covers it:
//
//   stride chunks   m:  [m*S, (m+1)*S) raw samples  ->  EDR grid values +
//                       RR interval slice (one entry per chunk)
//   Welch segments  m:  chunks m..m+seg_chunks-1    ->  one-sided
//                       periodogram power (one entry per segment start)
//
// Bit-exactness is by *construction*, not by tolerance: a chunk's products
// depend only on the final beats inside [(m-1)*S, (m+1)*S) — local beat
// times are anchored at the chunk start, RR intervals are differences of
// absolute integer sample indices, and the interpolation runs the exact
// resample_linear_into arithmetic — so recomputing an entry from the same
// stream yields the identical bits wherever (and on whichever shard) it
// runs. A window is then assembled purely by concatenating chunk products:
// the cached and the memoization-disabled pipeline execute the same code on
// the same values (asserted by tests/test_rt_feature_cache.cpp with
// EXPECT_EQ on doubles, across strides, chunkings, eviction and migration).
//
// Chunk semantics (shared by the cached and uncached builds):
//  * A chunk sees one stride of left context: beats in [(m-1)*S, (m+1)*S).
//    Grid points before the first such beat clamp to its amplitude; points
//    after the last one hold its amplitude (the next beat is outside the
//    causal horizon, so the tail holds flat until the next chunk re-anchors
//    — a deliberate, documented deviation from whole-window interpolation
//    that keeps every chunk final as soon as the stream frontier passes it,
//    which is what makes the newest chunk cacheable too).
//  * RR intervals are (n_i - n_{i-1}) / fs over absolute beat sample
//    indices; an interval is stored with the chunk of its *ending* beat and
//    only if its opening beat lies within the left-context horizon (a gap
//    longer than one stride yields no interval — at clinical strides such
//    an interval could only be an artifact).
//  * A chunk with no beat in its horizon is `empty`; window assembly fills
//    it by holding the preceding chunk's tail (or clamping to the next
//    chunk's front when the window starts empty). Welch segments touching
//    an empty chunk are recomputed per window and not cached.
//
// Memory is bounded per patient: chunks_per_window chunk entries plus
// num_segments periodogram entries plus the window assembly buffers — a
// few tens of kilobytes at the paper configuration, independent of stream
// length (old entries are overwritten in place as the stride advances;
// stats().evictions counts them).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dsp/spectral.hpp"
#include "ecg/streaming_qrs.hpp"

namespace svt::features {

/// Cumulative memoization counters (monotone; survive migration with the
/// cache object). A "product" is one chunk (EDR + RR slice) or one Welch
/// segment periodogram; per-window recomputes of segments touching an empty
/// chunk count as misses.
struct SegmentCacheStats {
  std::uint64_t hits = 0;       ///< Products served from the cache.
  std::uint64_t misses = 0;     ///< Products (re)built.
  std::uint64_t evictions = 0;  ///< Valid entries overwritten by the stride advance.

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
  SegmentCacheStats& operator+=(const SegmentCacheStats& o) {
    hits += o.hits;
    misses += o.misses;
    evictions += o.evictions;
    return *this;
  }
};

class SegmentFeatureCache {
 public:
  /// The stride-aligned geometry everything is keyed on. Derived once by
  /// plan(); immutable for the cache's lifetime.
  struct Layout {
    double fs_hz = 0.0;
    double edr_fs_hz = 0.0;
    std::int64_t stride_samples = 0;    ///< S: raw samples per chunk.
    std::int64_t window_samples = 0;    ///< W = S * chunks_per_window.
    std::int64_t chunk_len = 0;         ///< C: EDR grid points per chunk.
    std::int64_t chunks_per_window = 0;
    std::int64_t seg_chunks = 0;        ///< Chunks per Welch segment.
    std::int64_t num_segments = 0;      ///< Welch segments per window (hop = 1 chunk).

    std::int64_t window_edr_len() const { return chunk_len * chunks_per_window; }
    std::int64_t welch_segment_len() const { return chunk_len * seg_chunks; }
  };

  /// The geometry for a stream configuration, or nullopt when it is not
  /// stride-aligned (the extractor then runs its legacy whole-window path):
  /// alignment requires the EDR grid to advance an integral number of
  /// points per stride (stride_samples * edr_fs_hz / fs_hz integral) and
  /// the window to be an integral number of strides. The Welch segment
  /// spans the largest multiple of the chunk length <= 256 grid points
  /// (welch_psd's default segment), clamped to the window.
  static std::optional<Layout> plan(double fs_hz, double edr_fs_hz,
                                    std::int64_t stride_samples, std::int64_t window_samples);

  /// memoize=false runs the identical build code but rebuilds every product
  /// on every access — the "from scratch" reference the parity suite holds
  /// the cached pipeline to.
  SegmentFeatureCache(const Layout& layout, bool memoize);

  const Layout& layout() const { return layout_; }
  bool memoize() const { return memoize_; }
  const SegmentCacheStats& stats() const { return stats_; }

  /// One stride chunk's memoized products.
  struct Chunk {
    std::int64_t index = -1;  ///< Stride index m; covers raw [m*S, (m+1)*S).
    bool empty = false;       ///< No beat fell in [(m-1)*S, (m+1)*S).
    std::size_t beats = 0;    ///< Beats with sample_index in [m*S, (m+1)*S).
    std::vector<double> edr;  ///< chunk_len grid values (unset when empty).
    std::vector<double> rr;   ///< Intervals ending at in-chunk beats [s].
    std::vector<std::int64_t> rr_from;  ///< Opening-beat sample index per interval.
  };

  /// Chunk m, built from the ring on a miss. The ring must still hold every
  /// final beat with sample_index in [(m-1)*S, (m+1)*S) — the extractor
  /// guarantees this by retaining one stride of beats behind the window.
  const Chunk& chunk(const ecg::BeatRing& ring, std::int64_t m);

  /// Periodogram of the Welch segment starting at chunk m (covering chunks
  /// m..m+seg_chunks-1, all of which must be built, current and non-empty).
  /// nfft/2+1 power bins, exactly welch_segment_psd of the concatenated
  /// chunk values.
  const std::vector<double>& segment_psd(std::int64_t m, dsp::SpectralScratch& scratch);

  /// The window starting at chunk m0, assembled from built chunks (call
  /// chunk() for m0..m0+chunks_per_window-1 first). Spans point into
  /// internal buffers valid until the next assemble_window call.
  struct WindowView {
    std::span<const double> rr;   ///< Concatenated in-window intervals.
    std::span<const double> edr;  ///< window_edr_len() grid values.
    std::size_t beats = 0;        ///< Beats inside [m0*S, m0*S + W).
  };
  WindowView assemble_window(std::int64_t m0);

  /// Welch PSD of the assembled window: the average of num_segments
  /// per-segment periodograms in ascending segment order (cached where all
  /// covered chunks are non-empty, recomputed per window from the assembled
  /// EDR otherwise). Call assemble_window(m0) first. Bit-identical to
  /// welch_psd over the assembled EDR with the layout's segment length and
  /// a one-chunk hop.
  const dsp::PsdEstimate& window_psd(std::int64_t m0, dsp::SpectralScratch& scratch);

 private:
  Chunk& slot(std::int64_t m) {
    return chunks_[static_cast<std::size_t>(m % layout_.chunks_per_window)];
  }
  void build_chunk(const ecg::BeatRing& ring, std::int64_t m, Chunk& out);

  struct WelchEntry {
    std::int64_t index = -1;
    std::vector<double> power;
  };

  Layout layout_;
  bool memoize_ = true;
  std::vector<Chunk> chunks_;      ///< Ring keyed m % chunks_per_window.
  std::vector<WelchEntry> welch_;  ///< Ring keyed m % num_segments.
  SegmentCacheStats stats_;

  // Build/assembly scratch (per patient; reused across windows).
  std::vector<double> beat_t_;        ///< Chunk-local beat times.
  std::vector<double> beat_a_;        ///< Beat amplitudes.
  std::vector<std::int64_t> beat_i_;  ///< Absolute beat sample indices.
  std::vector<double> rr_buf_;        ///< Assembled window intervals.
  std::vector<double> edr_buf_;       ///< Assembled window EDR grid.
  std::vector<double> seg_buf_;       ///< Concatenated chunk values for a segment build.
  std::vector<double> seg_power_;     ///< Fallback (uncached) segment power.
  std::int64_t assembled_ = -1;       ///< m0 of the current assembly, for asserts.
  dsp::PsdEstimate psd_;              ///< Averaged window PSD.
};

}  // namespace svt::features
