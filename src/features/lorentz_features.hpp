// Lorentz (Poincare) plot features (paper features 9-15).
//
// The Lorentz plot scatters successive RR pairs (RR[n], RR[n+1]). Its
// geometry summarises short- vs long-term variability: SD1 is the dispersion
// perpendicular to the identity line (beat-to-beat), SD2 along it
// (long-term). Seizure-induced autonomic changes shrink and displace the
// cloud, which these features capture.
#pragma once

#include <array>
#include <span>

#include "ecg/rr_model.hpp"
#include "features/feature_scratch.hpp"
#include "features/feature_types.hpp"

namespace svt::features {

/// Features, in order:
///  0 SD1 [ms]
///  1 SD2 [ms]
///  2 SD1/SD2 ratio
///  3 ellipse area pi*SD1*SD2 [10^2 ms^2]
///  4 CSI (cardiac sympathetic index) = SD2/SD1
///  5 CVI (cardiac vagal index) = log10(16 * SD1 * SD2)
///  6 centroid distance from origin [ms]
///
/// Windows with fewer than 4 beats yield all-zero features.
std::array<double, kNumLorentzFeatures> compute_lorentz_features(const ecg::RrSeries& rr);

/// Scratch variant: writes the kNumLorentzFeatures values into `out`
/// (out.size() must equal kNumLorentzFeatures) with no heap allocation once
/// the scratch is warm. Bit-identical to the allocating overload (delegates
/// to the span entry point below).
void compute_lorentz_features(const ecg::RrSeries& rr, FeatureScratch& scratch,
                              std::span<double> out);

/// Span-based entry point: the plot geometry uses only the interval values.
/// THE implementation — both overloads above delegate here, so every path
/// is bit-identical by construction. The streaming segment cache feeds its
/// assembled per-window interval span through this.
void compute_lorentz_features(std::span<const double> rr_s, FeatureScratch& scratch,
                              std::span<double> out);

}  // namespace svt::features
