// Auto-regressive EDR features (paper features 16-24).
//
// The linear coefficients a1..a9 of an AR(9) model of the ECG-derived
// respiration series, estimated with Burg's method (robust on the short
// 3-minute windows the paper uses).
#pragma once

#include <array>
#include <span>

#include "ecg/rr_model.hpp"
#include "features/feature_scratch.hpp"
#include "features/feature_types.hpp"

namespace svt::features {

inline constexpr std::size_t kArOrder = kNumArFeatures;  // AR(9).

/// AR(9) coefficients of the EDR series (all-zero if the window is too short
/// or the series is constant).
std::array<double, kNumArFeatures> compute_ar_features(const ecg::RespirationSeries& edr);

/// Scratch variant: writes the kNumArFeatures values into `out` (out.size()
/// must equal kNumArFeatures) with no heap allocation once the scratch is
/// warm. Bit-identical to the allocating overload (delegates to the span
/// entry point below).
void compute_ar_features(const ecg::RespirationSeries& edr, FeatureScratch& scratch,
                         std::span<double> out);

/// Span-based entry point (the EDR rate does not enter the AR model, so a
/// raw value span suffices). THE implementation — both overloads above
/// delegate here, so every path is bit-identical by construction. The
/// streaming segment cache feeds its assembled window span through this.
void compute_ar_features(std::span<const double> edr_values, FeatureScratch& scratch,
                         std::span<double> out);

}  // namespace svt::features
