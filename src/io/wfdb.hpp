// PhysioNet/WFDB-compatible record ingest.
//
// Long-term ECG archives (MIT-BIH, CHB-MIT, the long-term databases the
// paper's cohort resembles) ship as WFDB records: a text header
// (`record.hea`) describing the signals, plus binary signal files holding
// interleaved ADC samples. This module implements the subset the streaming
// runtime needs to replay recorded wards:
//
//  * header parsing — record line (name, signal count, sampling rate,
//    samples per signal), per-signal lines (file name, storage format,
//    gain/baseline/units, ADC resolution/zero, checksum, description),
//    comment lines, and the WFDB defaults (gain 200 adu/mV, baseline 0)
//    when fields are omitted;
//  * signal decoding for format 212 (two 12-bit two's-complement samples
//    packed into 3 bytes; a record with an odd total sample count ends in a
//    2-byte half-group), format 16 (little-endian int16), and format 80
//    (one byte per sample in offset binary: stored byte = adc + 128, so the
//    representable range is [-128, 127]), with multi-channel frames
//    de-interleaved per signal;
//  * ADC-units -> physical-units (mV) conversion via each signal's
//    gain/baseline;
//  * a matching writer, so the offline dev box can generate fixture records
//    from the synthetic cohort. read∘write is bit-exact on ADC samples
//    (asserted for both 212 parities by tests/test_wfdb.cpp), and
//    quantize_mv∘signal_mv is the identity on in-range samples, so a
//    record round-trips through physical units without drift.
//
// Everything throws std::invalid_argument on malformed input (bad header
// fields, unsupported formats, signal files whose size disagrees with the
// header, checksum mismatches) — a replay driver should fail loudly on a
// corrupt archive rather than stream garbage into a ward.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace svt::io {

/// WFDB default gain when the header omits it: 200 ADC units per mV.
inline constexpr double kDefaultAdcGain = 200.0;

/// One signal (channel) of a record, as described by its header line.
struct SignalSpec {
  std::string file_name;        ///< Signal file holding this channel.
  int format = 16;              ///< Storage format: 212, 16, or 80.
  double adc_gain = kDefaultAdcGain;  ///< ADC units per mV.
  int baseline = 0;             ///< ADC value corresponding to 0 mV.
  int adc_resolution = 12;      ///< Significant bits per sample.
  int adc_zero = 0;             ///< Mid-range ADC value.
  int init_value = 0;           ///< First sample (informational).
  bool has_checksum = false;    ///< Whether the header carried a checksum.
  std::int16_t checksum = 0;    ///< 16-bit signed sum of all samples.
  std::string units = "mV";
  std::string description;
};

/// Parsed record header (`<name>.hea`).
struct RecordHeader {
  std::string record_name;
  double fs_hz = 250.0;       ///< WFDB default sampling rate.
  std::size_t num_samples = 0;  ///< Samples per signal.
  std::vector<SignalSpec> signals;

  std::size_t num_signals() const { return signals.size(); }
  double duration_s() const {
    return fs_hz > 0.0 ? static_cast<double>(num_samples) / fs_hz : 0.0;
  }
};

/// Parse a header from a stream (comment lines beginning with '#' are
/// skipped anywhere; missing gain/baseline fall back to the WFDB defaults).
RecordHeader parse_header(std::istream& is);

/// Read and parse `<dir>/<record>.hea`.
RecordHeader read_header(const std::string& dir, const std::string& record_name);

/// A fully decoded record: header + per-signal ADC sample series.
struct WfdbRecord {
  RecordHeader header;
  std::vector<std::vector<int>> adc;  ///< [signal][sample], ADC units.

  /// Convert one channel to physical units: (adc - baseline) / gain, in mV.
  std::vector<double> signal_mv(std::size_t channel) const;
};

/// Read `<dir>/<record>.hea` plus every signal file it references,
/// de-interleaving multi-channel frames and validating file sizes and (when
/// present) per-signal checksums.
WfdbRecord read_record(const std::string& dir, const std::string& record_name);

/// Write `<dir>/<header.record_name>.hea` and the signal file(s): samples
/// interleaved frame by frame per signal file, packed per each signal's
/// format. `adc[s]` must all have equal length (which becomes
/// header.num_samples); init_value and checksum fields are computed here.
/// Throws std::invalid_argument on ragged input, an unsupported format, or
/// samples outside the format's representable range.
void write_record(const std::string& dir, RecordHeader header,
                  const std::vector<std::vector<int>>& adc);

/// Quantise a physical-units sample to ADC units through a signal's
/// gain/baseline, clamped to the format's representable range. Inverse of
/// signal_mv for in-range samples: quantize_mv(signal_mv(adc)) == adc.
int quantize_mv(double mv, const SignalSpec& spec);

/// Quantise a whole mV series (see quantize_mv).
std::vector<int> quantize_signal_mv(std::span<const double> mv, const SignalSpec& spec);

/// Pick the ECG channel of a multi-signal record: the first signal whose
/// description contains "ecg" (case-insensitive), else the first with units
/// "mV", else channel 0.
std::size_t ecg_channel(const RecordHeader& header);

/// Smallest/largest ADC value representable in a storage format.
int format_min_value(int format);
int format_max_value(int format);

/// Read the record names listed in `<dir>/RECORDS` (one per line, comments
/// and blank lines skipped). Throws if the index is missing or empty.
std::vector<std::string> read_records_index(const std::string& dir);

/// Write `<dir>/RECORDS`.
void write_records_index(const std::string& dir, const std::vector<std::string>& names);

}  // namespace svt::io
