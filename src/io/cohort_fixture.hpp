// Writer-generated synthetic WFDB fixture cohorts.
//
// The offline dev box (and CI) needs realistic *recorded* wards to replay:
// this module synthesises per-patient ECG sessions (ecg::synthesize_session)
// and writes them through the WFDB writer as a directory of records plus a
// RECORDS index — the same shape as a PhysioNet database download, so the
// replay driver and the golden-file CI gate exercise the exact ingest path a
// real archive would take. The fixtures deliberately cover the reader's edge
// cases: both storage formats (212 and 16), both 212 tail parities (even and
// odd sample counts), single- and multi-channel records where the ECG is not
// channel 0, and a non-zero baseline.
//
// Everything is deterministic in the seed: the same params always produce
// byte-identical records, which is what lets CI regenerate the cohort and
// diff the replayed alert stream against a committed golden file.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "io/wfdb.hpp"

namespace svt::io {

struct CohortFixtureParams {
  std::size_t num_patients = 4;
  double duration_s = 60.0;   ///< Recording length per patient.
  double fs_hz = 250.0;
  double adc_gain = 200.0;    ///< ADC units per mV for the ECG channels.
  std::uint64_t seed = 9001;  ///< Base seed; patient p uses seed + p.
  bool with_seizures = true;  ///< Odd patients seize mid-recording.
};

/// One written fixture record.
struct FixtureRecord {
  std::string name;            ///< Record name ("p001", ...).
  int patient_id = 0;
  std::size_t num_samples = 0;
  std::size_t num_signals = 0;
  std::size_t ecg_channel = 0;
  int format = 0;              ///< ECG channel storage format.
};

/// Synthesise and write a cohort of single-session records into `dir`
/// (created if missing), plus the RECORDS index. Record p00N carries patient
/// id N. Record layout rotates with the index i so one replayed cohort
/// covers the reader's packing, parity, channel-selection, and baseline
/// paths: even i store format 212, odd i format 16; odd i are two-channel
/// (a RESP channel first, the ECG second); i % 4 in {2, 3} get an odd
/// sample count (the format-212 trailing half-group when i is even); and
/// i % 4 == 2 uses a non-zero ADC baseline.
std::vector<FixtureRecord> write_synthetic_cohort(const std::string& dir,
                                                  const CohortFixtureParams& params = {});

}  // namespace svt::io
