#include "io/wfdb.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace svt::io {

namespace {

[[noreturn]] void fail(const std::string& what) { throw std::invalid_argument("wfdb: " + what); }

bool parse_long(const std::string& token, long& out) {
  if (token.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(token.c_str(), &end, 10);
  if (end == token.c_str() || *end != '\0' || errno == ERANGE) return false;
  out = value;
  return true;
}

bool parse_double(const std::string& token, double& out) {
  if (token.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0' || errno == ERANGE) return false;
  out = value;
  return true;
}

/// Gain field: `gain[(baseline)][/units]`. Returns false when the token is
/// not gain-shaped (it is then the description). A parsed gain of 0 means
/// "unspecified" in WFDB and falls back to the default.
bool parse_gain_spec(const std::string& token, SignalSpec& spec, bool& has_baseline) {
  const char* p = token.c_str();
  char* end = nullptr;
  errno = 0;
  const double gain = std::strtod(p, &end);
  if (end == p || errno == ERANGE) return false;
  p = end;
  bool baseline_present = false;
  long baseline = 0;
  if (*p == '(') {
    errno = 0;
    baseline = std::strtol(p + 1, &end, 10);
    if (end == p + 1 || *end != ')' || errno == ERANGE) return false;
    baseline_present = true;
    p = end + 1;
  }
  std::string units;
  if (*p == '/') {
    units.assign(p + 1);
    if (units.empty()) return false;
    p += 1 + units.size();
  }
  if (*p != '\0') return false;
  // Commit only after the token validated in full: a rejected token is the
  // free-text description and must leave the spec's defaults untouched.
  spec.adc_gain = gain > 0.0 ? gain : kDefaultAdcGain;
  if (baseline_present) {
    spec.baseline = static_cast<int>(baseline);
    has_baseline = true;
  }
  if (!units.empty()) spec.units = std::move(units);
  return true;
}

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream iss(line);
  std::vector<std::string> tokens;
  std::string token;
  while (iss >> token) tokens.push_back(token);
  return tokens;
}

bool next_content_line(std::istream& is, std::string& line) {
  while (std::getline(is, line)) {
    std::size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos || line[begin] == '#') continue;
    const std::size_t last = line.find_last_not_of(" \t\r");
    line = line.substr(begin, last - begin + 1);
    return true;
  }
  return false;
}

SignalSpec parse_signal_line(const std::string& line) {
  const auto tokens = tokenize(line);
  if (tokens.size() < 2) fail("signal line needs at least a file name and a format: " + line);
  SignalSpec spec;
  spec.file_name = tokens[0];
  long format = 0;
  if (!parse_long(tokens[1], format) || (format != 212 && format != 16 && format != 80))
    fail("unsupported signal format '" + tokens[1] + "' (supported: 212, 16, 80)");
  spec.format = static_cast<int>(format);
  spec.adc_resolution = spec.format == 212 ? 12 : (spec.format == 80 ? 8 : 16);

  // Optional positional numeric fields; the first token that does not parse
  // as its slot starts the free-text description.
  std::size_t i = 2;
  bool has_baseline = false;
  if (i < tokens.size() && parse_gain_spec(tokens[i], spec, has_baseline)) ++i;
  long value = 0;
  bool has_adc_zero = false;
  if (i < tokens.size() && parse_long(tokens[i], value)) {
    spec.adc_resolution = static_cast<int>(value);
    ++i;
    if (i < tokens.size() && parse_long(tokens[i], value)) {
      spec.adc_zero = static_cast<int>(value);
      has_adc_zero = true;
      ++i;
      if (i < tokens.size() && parse_long(tokens[i], value)) {
        spec.init_value = static_cast<int>(value);
        ++i;
        if (i < tokens.size() && parse_long(tokens[i], value)) {
          spec.checksum = static_cast<std::int16_t>(value);
          spec.has_checksum = true;
          ++i;
          if (i < tokens.size() && parse_long(tokens[i], value)) ++i;  // block_size: unused.
        }
      }
    }
  }
  // WFDB: an omitted baseline defaults to adc_zero (itself defaulting to 0).
  if (!has_baseline && has_adc_zero) spec.baseline = spec.adc_zero;
  for (; i < tokens.size(); ++i) {
    if (!spec.description.empty()) spec.description += ' ';
    spec.description += tokens[i];
  }
  return spec;
}

std::vector<unsigned char> read_binary_file(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) fail("cannot open signal file " + path.string());
  std::vector<unsigned char> bytes((std::istreambuf_iterator<char>(is)),
                                   std::istreambuf_iterator<char>());
  return bytes;
}

int sign_extend_12(unsigned v) {
  return static_cast<int>(v >= 2048u ? static_cast<long>(v) - 4096 : static_cast<long>(v));
}

/// Decode `total` samples in storage order (frames interleave the file's
/// signals) from a format-212 byte stream. A trailing odd sample occupies a
/// 2-byte half-group: low byte + the low nibble of the second byte.
std::vector<int> decode_212(const std::vector<unsigned char>& bytes, std::size_t total,
                            const std::string& file) {
  const std::size_t expected = (total / 2) * 3 + (total % 2) * 2;
  if (bytes.size() != expected)
    fail("signal file " + file + ": " + std::to_string(bytes.size()) + " bytes, expected " +
         std::to_string(expected) + " for " + std::to_string(total) + " format-212 samples");
  std::vector<int> samples(total);
  std::size_t b = 0;
  for (std::size_t s = 0; s + 1 < total; s += 2, b += 3) {
    samples[s] = sign_extend_12(static_cast<unsigned>(bytes[b]) |
                                ((static_cast<unsigned>(bytes[b + 1]) & 0x0Fu) << 8));
    samples[s + 1] = sign_extend_12(static_cast<unsigned>(bytes[b + 2]) |
                                    ((static_cast<unsigned>(bytes[b + 1]) >> 4) << 8));
  }
  if (total % 2 != 0)
    samples[total - 1] = sign_extend_12(static_cast<unsigned>(bytes[b]) |
                                        ((static_cast<unsigned>(bytes[b + 1]) & 0x0Fu) << 8));
  return samples;
}

std::vector<int> decode_16(const std::vector<unsigned char>& bytes, std::size_t total,
                           const std::string& file) {
  if (bytes.size() != total * 2)
    fail("signal file " + file + ": " + std::to_string(bytes.size()) + " bytes, expected " +
         std::to_string(total * 2) + " for " + std::to_string(total) + " format-16 samples");
  std::vector<int> samples(total);
  for (std::size_t s = 0; s < total; ++s) {
    const unsigned v = static_cast<unsigned>(bytes[2 * s]) |
                       (static_cast<unsigned>(bytes[2 * s + 1]) << 8);
    samples[s] = static_cast<int>(static_cast<std::int16_t>(v));
  }
  return samples;
}

void encode_212(const std::vector<int>& samples, std::vector<unsigned char>& bytes) {
  std::size_t s = 0;
  for (; s + 1 < samples.size(); s += 2) {
    const unsigned a = static_cast<unsigned>(samples[s]) & 0xFFFu;
    const unsigned b = static_cast<unsigned>(samples[s + 1]) & 0xFFFu;
    bytes.push_back(static_cast<unsigned char>(a & 0xFFu));
    bytes.push_back(static_cast<unsigned char>((a >> 8) | ((b >> 8) << 4)));
    bytes.push_back(static_cast<unsigned char>(b & 0xFFu));
  }
  if (s < samples.size()) {  // Odd tail: 2-byte half-group, high nibble clear.
    const unsigned a = static_cast<unsigned>(samples[s]) & 0xFFFu;
    bytes.push_back(static_cast<unsigned char>(a & 0xFFu));
    bytes.push_back(static_cast<unsigned char>(a >> 8));
  }
}

void encode_16(const std::vector<int>& samples, std::vector<unsigned char>& bytes) {
  for (const int v : samples) {
    const unsigned u = static_cast<unsigned>(v) & 0xFFFFu;
    bytes.push_back(static_cast<unsigned char>(u & 0xFFu));
    bytes.push_back(static_cast<unsigned char>(u >> 8));
  }
}

/// Format 80: one byte per sample, offset binary (stored byte = adc + 128).
std::vector<int> decode_80(const std::vector<unsigned char>& bytes, std::size_t total,
                           const std::string& file) {
  if (bytes.size() != total)
    fail("signal file " + file + ": " + std::to_string(bytes.size()) + " bytes, expected " +
         std::to_string(total) + " for " + std::to_string(total) + " format-80 samples");
  std::vector<int> samples(total);
  for (std::size_t s = 0; s < total; ++s) samples[s] = static_cast<int>(bytes[s]) - 128;
  return samples;
}

void encode_80(const std::vector<int>& samples, std::vector<unsigned char>& bytes) {
  for (const int v : samples) bytes.push_back(static_cast<unsigned char>(v + 128));
}

std::int16_t sample_checksum(const std::vector<int>& samples) {
  std::uint32_t sum = 0;
  for (const int v : samples) sum += static_cast<std::uint32_t>(v);
  return static_cast<std::int16_t>(static_cast<std::uint16_t>(sum));
}

/// Signals sharing one signal file, in header order.
struct FileGroup {
  std::string file_name;
  int format = 0;
  std::vector<std::size_t> channels;
};

std::vector<FileGroup> group_by_file(const RecordHeader& header) {
  std::vector<FileGroup> groups;
  for (std::size_t c = 0; c < header.signals.size(); ++c) {
    const auto& spec = header.signals[c];
    FileGroup* group = nullptr;
    for (auto& g : groups)
      if (g.file_name == spec.file_name) group = &g;
    if (group == nullptr) {
      groups.push_back({spec.file_name, spec.format, {}});
      group = &groups.back();
    } else if (group->format != spec.format) {
      fail("signal file " + spec.file_name + " mixes formats " +
           std::to_string(group->format) + " and " + std::to_string(spec.format));
    }
    group->channels.push_back(c);
  }
  return groups;
}

}  // namespace

int format_min_value(int format) {
  if (format == 212) return -2048;
  if (format == 16) return -32768;
  if (format == 80) return -128;
  fail("unsupported format " + std::to_string(format));
}

int format_max_value(int format) {
  if (format == 212) return 2047;
  if (format == 16) return 32767;
  if (format == 80) return 127;
  fail("unsupported format " + std::to_string(format));
}

RecordHeader parse_header(std::istream& is) {
  std::string line;
  if (!next_content_line(is, line)) fail("empty header");
  const auto record_tokens = tokenize(line);
  if (record_tokens.size() < 2) fail("record line needs a name and a signal count: " + line);
  RecordHeader header;
  header.record_name = record_tokens[0];
  if (header.record_name.find('/') != std::string::npos)
    fail("multi-segment records are not supported: " + header.record_name);
  long num_signals = 0;
  if (!parse_long(record_tokens[1], num_signals) || num_signals <= 0)
    fail("bad signal count '" + record_tokens[1] + "'");
  if (record_tokens.size() >= 3) {
    double fs = 0.0;
    if (!parse_double(record_tokens[2], fs) || fs <= 0.0)
      fail("bad sampling rate '" + record_tokens[2] + "'");
    header.fs_hz = fs;
  }
  if (record_tokens.size() >= 4) {
    long num_samples = 0;
    if (!parse_long(record_tokens[3], num_samples) || num_samples < 0)
      fail("bad sample count '" + record_tokens[3] + "'");
    header.num_samples = static_cast<std::size_t>(num_samples);
  }
  for (long s = 0; s < num_signals; ++s) {
    if (!next_content_line(is, line))
      fail("header ends after " + std::to_string(s) + " of " + std::to_string(num_signals) +
           " signal lines");
    header.signals.push_back(parse_signal_line(line));
  }
  return header;
}

RecordHeader read_header(const std::string& dir, const std::string& record_name) {
  const auto path = std::filesystem::path(dir) / (record_name + ".hea");
  std::ifstream is(path);
  if (!is) fail("cannot open header " + path.string());
  return parse_header(is);
}

std::vector<double> WfdbRecord::signal_mv(std::size_t channel) const {
  if (channel >= adc.size())
    fail("channel " + std::to_string(channel) + " out of range (record has " +
         std::to_string(adc.size()) + ")");
  const auto& spec = header.signals[channel];
  std::vector<double> mv(adc[channel].size());
  for (std::size_t s = 0; s < mv.size(); ++s)
    mv[s] = static_cast<double>(adc[channel][s] - spec.baseline) / spec.adc_gain;
  return mv;
}

WfdbRecord read_record(const std::string& dir, const std::string& record_name) {
  WfdbRecord record;
  record.header = read_header(dir, record_name);
  const auto& header = record.header;
  if (header.num_samples == 0)
    fail("record " + record_name + " declares no sample count (required for decoding)");
  record.adc.assign(header.num_signals(), std::vector<int>(header.num_samples));
  for (const auto& group : group_by_file(header)) {
    const auto path = std::filesystem::path(dir) / group.file_name;
    const auto bytes = read_binary_file(path);
    const std::size_t total = header.num_samples * group.channels.size();
    const auto flat = group.format == 212  ? decode_212(bytes, total, group.file_name)
                      : group.format == 80 ? decode_80(bytes, total, group.file_name)
                                           : decode_16(bytes, total, group.file_name);
    for (std::size_t t = 0; t < header.num_samples; ++t)
      for (std::size_t k = 0; k < group.channels.size(); ++k)
        record.adc[group.channels[k]][t] = flat[t * group.channels.size() + k];
  }
  for (std::size_t c = 0; c < header.num_signals(); ++c) {
    const auto& spec = header.signals[c];
    if (spec.has_checksum && sample_checksum(record.adc[c]) != spec.checksum)
      fail("record " + record_name + " signal " + std::to_string(c) +
           ": checksum mismatch (corrupt signal file?)");
  }
  return record;
}

void write_record(const std::string& dir, RecordHeader header,
                  const std::vector<std::vector<int>>& adc) {
  if (adc.empty() || adc.size() != header.num_signals())
    fail("write_record: " + std::to_string(adc.size()) + " sample series for " +
         std::to_string(header.num_signals()) + " declared signals");
  header.num_samples = adc[0].size();
  for (std::size_t c = 0; c < adc.size(); ++c) {
    auto& spec = header.signals[c];
    if (adc[c].size() != header.num_samples)
      fail("write_record: ragged sample series (signal " + std::to_string(c) + ")");
    if (spec.adc_gain <= 0.0) fail("write_record: non-positive gain");
    const int lo = format_min_value(spec.format);
    const int hi = format_max_value(spec.format);
    for (const int v : adc[c])
      if (v < lo || v > hi)
        fail("write_record: sample " + std::to_string(v) + " outside format-" +
             std::to_string(spec.format) + " range [" + std::to_string(lo) + ", " +
             std::to_string(hi) + "]");
    spec.init_value = adc[c].empty() ? 0 : adc[c].front();
    spec.checksum = sample_checksum(adc[c]);
    spec.has_checksum = true;
  }

  std::filesystem::create_directories(dir);
  const auto groups = group_by_file(header);
  for (const auto& group : groups) {
    std::vector<int> flat(header.num_samples * group.channels.size());
    for (std::size_t t = 0; t < header.num_samples; ++t)
      for (std::size_t k = 0; k < group.channels.size(); ++k)
        flat[t * group.channels.size() + k] = adc[group.channels[k]][t];
    std::vector<unsigned char> bytes;
    bytes.reserve(group.format == 212  ? (flat.size() / 2) * 3 + 2
                  : group.format == 80 ? flat.size()
                                       : flat.size() * 2);
    if (group.format == 212)
      encode_212(flat, bytes);
    else if (group.format == 80)
      encode_80(flat, bytes);
    else
      encode_16(flat, bytes);
    const auto path = std::filesystem::path(dir) / group.file_name;
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) fail("cannot write signal file " + path.string());
    os.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  }

  const auto hea_path = std::filesystem::path(dir) / (header.record_name + ".hea");
  std::ofstream os(hea_path, std::ios::trunc);
  if (!os) fail("cannot write header " + hea_path.string());
  // Full double precision, so a non-round gain or sampling rate survives the
  // text round-trip and signal_mv stays the exact inverse of quantize_mv.
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << header.record_name << ' ' << header.num_signals() << ' ' << header.fs_hz << ' '
     << header.num_samples << '\n';
  for (const auto& spec : header.signals) {
    os << spec.file_name << ' ' << spec.format << ' ' << spec.adc_gain << '(' << spec.baseline
       << ")/" << spec.units << ' ' << spec.adc_resolution << ' ' << spec.adc_zero << ' '
       << spec.init_value << ' ' << spec.checksum << " 0";
    if (!spec.description.empty()) os << ' ' << spec.description;
    os << '\n';
  }
  if (!os) fail("failed writing header " + hea_path.string());
}

int quantize_mv(double mv, const SignalSpec& spec) {
  if (spec.adc_gain <= 0.0) fail("quantize_mv: non-positive gain");
  const double adc = std::round(mv * spec.adc_gain) + static_cast<double>(spec.baseline);
  const double lo = format_min_value(spec.format);
  const double hi = format_max_value(spec.format);
  return static_cast<int>(std::min(std::max(adc, lo), hi));
}

std::vector<int> quantize_signal_mv(std::span<const double> mv, const SignalSpec& spec) {
  std::vector<int> adc(mv.size());
  for (std::size_t s = 0; s < mv.size(); ++s) adc[s] = quantize_mv(mv[s], spec);
  return adc;
}

std::size_t ecg_channel(const RecordHeader& header) {
  auto contains_ecg = [](const std::string& text) {
    for (std::size_t i = 0; i + 3 <= text.size(); ++i)
      if (std::tolower(static_cast<unsigned char>(text[i])) == 'e' &&
          std::tolower(static_cast<unsigned char>(text[i + 1])) == 'c' &&
          std::tolower(static_cast<unsigned char>(text[i + 2])) == 'g')
        return true;
    return false;
  };
  for (std::size_t c = 0; c < header.signals.size(); ++c)
    if (contains_ecg(header.signals[c].description)) return c;
  for (std::size_t c = 0; c < header.signals.size(); ++c)
    if (header.signals[c].units == "mV") return c;
  return 0;
}

std::vector<std::string> read_records_index(const std::string& dir) {
  const auto path = std::filesystem::path(dir) / "RECORDS";
  std::ifstream is(path);
  if (!is) fail("cannot open record index " + path.string());
  std::vector<std::string> names;
  std::string line;
  while (next_content_line(is, line)) names.push_back(line);
  if (names.empty()) fail("record index " + path.string() + " lists no records");
  return names;
}

void write_records_index(const std::string& dir, const std::vector<std::string>& names) {
  std::filesystem::create_directories(dir);
  const auto path = std::filesystem::path(dir) / "RECORDS";
  std::ofstream os(path, std::ios::trunc);
  if (!os) fail("cannot write record index " + path.string());
  for (const auto& name : names) os << name << '\n';
  if (!os) fail("failed writing record index " + path.string());
}

}  // namespace svt::io
