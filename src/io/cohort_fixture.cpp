#include "io/cohort_fixture.hpp"

#include <cmath>
#include <cstdio>
#include <numbers>
#include <random>
#include <stdexcept>

#include "ecg/ecg_synth.hpp"
#include "ecg/patient.hpp"
#include "ecg/rr_model.hpp"

namespace svt::io {

namespace {

/// A deterministic slow respiration-shaped confounder channel, so the
/// multi-channel records carry a plausible non-ECG signal the replayer must
/// skip over.
std::vector<double> resp_channel_mv(std::size_t num_samples, double fs_hz, int patient_id) {
  std::vector<double> mv(num_samples);
  const double rate_hz = 0.22 + 0.01 * static_cast<double>(patient_id % 5);
  for (std::size_t s = 0; s < num_samples; ++s) {
    const double t = static_cast<double>(s) / fs_hz;
    mv[s] = 0.6 * std::sin(2.0 * std::numbers::pi * rate_hz * t) +
            0.1 * std::sin(2.0 * std::numbers::pi * 1.7 * rate_hz * t);
  }
  return mv;
}

}  // namespace

std::vector<FixtureRecord> write_synthetic_cohort(const std::string& dir,
                                                  const CohortFixtureParams& params) {
  if (params.num_patients == 0) throw std::invalid_argument("cohort fixture: no patients");
  if (params.duration_s <= 0.0 || params.fs_hz <= 0.0)
    throw std::invalid_argument("cohort fixture: non-positive duration or sampling rate");

  std::vector<FixtureRecord> records;
  std::vector<std::string> names;
  for (std::size_t i = 0; i < params.num_patients; ++i) {
    const int patient_id = static_cast<int>(i) + 1;
    char name[16];
    std::snprintf(name, sizeof(name), "p%03d", patient_id);

    ecg::PatientProfile profile;
    profile.id = patient_id;
    profile.baseline_hr_bpm = 66.0 + 4.0 * static_cast<double>(i % 5);
    ecg::SessionEvents events;
    if (params.with_seizures && i % 2 == 1)
      events.seizures.push_back({0.4 * params.duration_s, 0.3 * params.duration_s, 1.2});
    ecg::SessionSignalParams session;
    session.duration_s = params.duration_s;
    ecg::EcgSynthParams synth;
    synth.fs_hz = params.fs_hz;
    std::mt19937_64 rng(params.seed + static_cast<std::uint64_t>(patient_id));
    auto waveform = ecg::synthesize_session(profile, events, session, synth, rng);

    // Trim to the nominal length, then force the rotation's sample-count
    // parity (i % 4 in {2, 3} -> odd) so both format-212 tails occur.
    std::size_t num_samples = std::min(
        waveform.samples_mv.size(), static_cast<std::size_t>(params.duration_s * params.fs_hz));
    const bool want_odd = i % 4 == 2 || i % 4 == 3;
    if (num_samples > 1 && (num_samples % 2 == 1) != want_odd) --num_samples;
    waveform.samples_mv.resize(num_samples);

    SignalSpec ecg_spec;
    ecg_spec.format = i % 2 == 0 ? 212 : 16;
    ecg_spec.file_name = std::string(name) + ".dat";
    ecg_spec.adc_gain = params.adc_gain;
    ecg_spec.baseline = i % 4 == 2 ? 200 : 0;
    ecg_spec.adc_resolution = ecg_spec.format == 212 ? 12 : 16;
    ecg_spec.adc_zero = ecg_spec.baseline;
    ecg_spec.units = "mV";
    ecg_spec.description = "ECG lead I (synthetic)";

    RecordHeader header;
    header.record_name = name;
    header.fs_hz = params.fs_hz;
    std::vector<std::vector<int>> adc;
    if (i % 2 == 1) {  // Two-channel record: RESP first, the ECG second.
      SignalSpec resp_spec = ecg_spec;
      resp_spec.units = "au";
      resp_spec.description = "RESP (synthetic)";
      header.signals.push_back(resp_spec);
      adc.push_back(quantize_signal_mv(resp_channel_mv(num_samples, params.fs_hz, patient_id),
                                       resp_spec));
    }
    header.signals.push_back(ecg_spec);
    adc.push_back(quantize_signal_mv(waveform.samples_mv, ecg_spec));
    write_record(dir, header, adc);

    FixtureRecord written;
    written.name = name;
    written.patient_id = patient_id;
    written.num_samples = num_samples;
    written.num_signals = header.num_signals();
    written.ecg_channel = header.num_signals() - 1;
    written.format = ecg_spec.format;
    records.push_back(written);
    names.push_back(name);
  }
  write_records_index(dir, names);
  return records;
}

}  // namespace svt::io
