#include "net/client.hpp"

#include <utility>

namespace svt::net {

GatewayClient::GatewayClient(const Endpoint& endpoint, std::size_t flush_bytes)
    : flush_bytes_(flush_bytes), socket_(connect_to(endpoint)) {
  HelloFrame hello;
  append_hello(sendbuf_, hello);
  flush();
  receiver_ = std::thread([this] { receive_loop(); });
}

GatewayClient::~GatewayClient() {
  socket_.shutdown_both();
  if (receiver_.joinable()) receiver_.join();
}

std::optional<HelloAckFrame> GatewayClient::hello_ack() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return ack_ || error_ || closed_; });
  return ack_;
}

bool GatewayClient::open_stream(std::int32_t patient_id, double fs_hz) {
  StreamOpenFrame open;
  open.patient_id = patient_id;
  open.fs_hz = fs_hz;
  append_stream_open(sendbuf_, open);
  return append_and_maybe_flush();
}

bool GatewayClient::send_samples(std::int32_t patient_id, std::span<const double> samples_mv) {
  append_sample_chunk(sendbuf_, patient_id, samples_mv);
  return append_and_maybe_flush();
}

bool GatewayClient::end_stream(std::int32_t patient_id) {
  EndStreamFrame end;
  end.patient_id = patient_id;
  append_end_stream(sendbuf_, end);
  return append_and_maybe_flush();
}

bool GatewayClient::append_and_maybe_flush() {
  if (sendbuf_.size() >= flush_bytes_) return flush();
  return !send_failed_;
}

bool GatewayClient::flush() {
  if (send_failed_) return false;
  if (sendbuf_.empty()) return true;
  if (!socket_.send_all(sendbuf_)) {
    send_failed_ = true;
    sendbuf_.clear();
    return false;
  }
  sendbuf_.clear();
  return true;
}

std::optional<StatsFrame> GatewayClient::finish() {
  append_bye(sendbuf_);
  if (!flush()) return std::nullopt;
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return stats_ || error_ || closed_; });
  return stats_;
}

std::vector<ReceivedDecision> GatewayClient::decisions() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return decisions_;
}

std::optional<ErrorFrame> GatewayClient::error() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return error_;
}

void GatewayClient::receive_loop() {
  FrameDecoder decoder;
  std::vector<std::uint8_t> recvbuf(64 * 1024);
  bool done = false;
  while (!done) {
    const std::ptrdiff_t n = socket_.recv_some(recvbuf);
    if (n <= 0) break;
    decoder.feed(std::span<const std::uint8_t>(recvbuf.data(), static_cast<std::size_t>(n)));
    FrameDecoder::Frame frame;
    while (!done) {
      const auto status = decoder.next(frame);
      if (status == FrameDecoder::Status::kNeedMore) break;
      if (status == FrameDecoder::Status::kError) {
        // A gateway never sends malformed frames; treat it as a dead peer.
        done = true;
        break;
      }
      switch (frame.type) {
        case FrameType::kHelloAck: {
          HelloAckFrame ack;
          if (parse_hello_ack(frame.payload, ack)) {
            const std::lock_guard<std::mutex> lock(mutex_);
            ack_ = ack;
          }
          cv_.notify_all();
          break;
        }
        case FrameType::kDecision: {
          DecisionBatchView batch;
          if (!parse_decisions(frame.payload, batch)) break;
          const std::lock_guard<std::mutex> lock(mutex_);
          for (std::size_t i = 0; i < batch.num_decisions; ++i) {
            const DecisionRecord r = batch.record(i);
            ReceivedDecision d;
            d.patient_id = batch.patient_id;
            d.start_s = r.start_s;
            d.decision_value = r.decision_value;
            d.label = r.label;
            d.num_beats = r.num_beats;
            d.workload = r.workload;
            d.quality = r.quality;
            decisions_.push_back(d);
          }
          break;
        }
        case FrameType::kStats: {
          StatsFrame stats;
          if (parse_stats(frame.payload, stats)) {
            const std::lock_guard<std::mutex> lock(mutex_);
            stats_ = stats;
          }
          cv_.notify_all();
          // The stats answer is the server's last frame; keep reading only
          // for the FIN so the loop exits on its own.
          break;
        }
        case FrameType::kError: {
          ErrorFrame error;
          if (parse_error(frame.payload, error)) {
            const std::lock_guard<std::mutex> lock(mutex_);
            error_ = std::move(error);
          }
          cv_.notify_all();
          done = true;  // The server closes after a typed refusal.
          break;
        }
        default:
          break;  // Server-side protocol types we never expect; ignore.
      }
    }
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

}  // namespace svt::net
