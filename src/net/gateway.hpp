// Network serving gateway: many concurrent patient streams over TCP/UDS.
//
//   client                     gateway                          engine
//   ──────                     ───────                          ──────
//   hello ───────────────────> reader thread (per connection)
//   stream_open(p) ──────────>   route p -> connection
//   sample_chunk(p, mV) ─────>   decode into reused buffers ──> push_samples
//        (TCP backpressure <──   blocks when p's shard      (bounded shard
//         throttles the           queue is full)             queues, PR 3
//         sender)                                            WorkQueue)
//                                                               │ shard worker
//   decision(p, windows) <──── writer thread (per connection) <─┘ ResultSink
//        (batched sends:        bounded send queue; frames        (one patient
//         coalesce + one        coalesced up to flush_bytes,      per batch,
//         explicit flush)       then one explicit send)           time-ordered)
//   end_stream(p) ───────────>   engine.end_stream(p)
//   bye ─────────────────────>   fence; stats ──> client; close
//
// Ingest is allocation-free per sample: each connection's reader owns a
// reused receive buffer, frame decoder, and sample scratch vector, so a
// sample travels recv -> decode -> shard queue with no per-sample heap
// traffic (the engine's per-chunk task copy is the only allocation, as in
// the in-process path). Backpressure composes end to end: a full shard
// queue blocks the reader (EngineOptions::backpressure = kBlock), the
// un-recv'd bytes fill the kernel socket buffer, and TCP flow control
// throttles the remote writer — the PR 3 queue semantics stretched over
// the wire.
//
// Decisions travel the reverse path: the engine's ResultSink (installed by
// the gateway) routes each classified batch to the connection that opened
// the patient's stream and enqueues the encoded frame on that connection's
// bounded send WorkQueue — kBlock mirrors ingest losslessly (a slow client
// eventually throttles its own shard), kDropOldest sheds stale decisions
// for live monitoring. The writer thread drains the queue, coalescing
// everything immediately available into one buffer (up to flush_bytes)
// before a single explicit send — the chained-buffer/flush idiom of
// Galois' buffered transport.
//
// Bit-exactness: the gateway adds no arithmetic. Samples cross the wire as
// exact IEEE-754 bit patterns, chunk re-framing cannot change results (the
// engine is chunking-invariant), and per-patient decision order is
// preserved (one patient = one shard = one send queue), so a loopback
// round trip is bit-identical to pushing the same samples through the
// in-process engine at any worker count (tests/test_net_gateway.cpp, the
// serving-smoke CI job).
//
// Robustness: a malformed frame (bad magic/version/length/CRC, bad
// payload) or a protocol violation poisons only its own connection — the
// reader answers with a typed kError frame, tears the connection down, and
// evicts its patients' shard state so nothing leaks; other connections and
// the engine keep serving.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "rt/sharded_classifier.hpp"

namespace svt::net {

struct GatewayOptions {
  /// Deprecated alias for engine.num_workers (the larger of the two wins).
  std::size_t num_workers = 1;
  /// Unified configuration for the embedded engine: workers, shard-queue
  /// sizing/backpressure, placement policy, work stealing, deadline mode
  /// (rt::EngineOptions). The sink field is ignored — the gateway installs
  /// its own routing sink.
  rt::EngineOptions engine;
  /// Encoded decision batches queued per connection before the sink applies
  /// backpressure (0 = unbounded).
  std::size_t send_queue_capacity = 1024;
  rt::BackpressurePolicy send_backpressure = rt::BackpressurePolicy::kBlock;
  /// Writer coalescing bound: queued frames are batched into one buffer up
  /// to this many bytes, then flushed with a single send.
  std::size_t flush_bytes = 64 * 1024;
};

struct GatewayStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t streams_opened = 0;
  std::uint64_t streams_closed = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t samples_ingested = 0;
  std::uint64_t decision_batches_sent = 0;
  std::uint64_t decision_windows_sent = 0;
  std::uint64_t protocol_errors = 0;
  /// Sink batches whose patient had no live connection (evicted mid-flight
  /// or pushed in-process): counted, not delivered.
  std::uint64_t orphan_batches = 0;
};

class ServeGateway {
 public:
  /// Serve `registry` through an embedded ShardedStreamClassifier. The
  /// gateway installs its own ResultSink on the engine; do not replace it.
  ServeGateway(std::shared_ptr<rt::ModelRegistry> registry, rt::StreamConfig config = {},
               GatewayOptions options = {});
  ~ServeGateway();
  ServeGateway(const ServeGateway&) = delete;
  ServeGateway& operator=(const ServeGateway&) = delete;

  /// Bind a listener (call any number of times before start; typically one
  /// TCP and/or one UDS). Returns the bound endpoint with an ephemeral TCP
  /// port resolved. Throws std::runtime_error on bind failure.
  Endpoint add_listener(const Endpoint& endpoint);

  /// Spawn the accept loops. Throws std::logic_error without a listener.
  void start();

  /// Stop accepting, tear down every live connection (their patients'
  /// shard state is evicted), and join all gateway threads. The engine
  /// itself stays alive until destruction. Idempotent.
  void stop();

  /// Block until `n` connections have been accepted AND closed since
  /// construction (the CI smoke uses this to exit after the load generator
  /// disconnects).
  void wait_connections_closed(std::size_t n);

  GatewayStats stats() const;

  /// Gateway-side decision delivery latencies in seconds: per coalesced
  /// send, classification-complete (sink entry) -> bytes handed to the
  /// kernel. Bounded recent-window reservoir like the engine's.
  std::vector<double> delivery_latencies_s() const;

  rt::ShardedStreamClassifier& engine() { return engine_; }
  const rt::ShardedStreamClassifier& engine() const { return engine_; }
  const rt::StreamConfig& config() const { return engine_.config(); }

 private:
  struct OutItem {
    std::vector<std::uint8_t> bytes;
    std::chrono::steady_clock::time_point ready;  ///< Sink entry time.
    bool latency_tracked = false;  ///< Only decision batches are timed.
  };

  struct Connection {
    explicit Connection(Socket sock, const GatewayOptions& options)
        : socket(std::move(sock)),
          send_queue(options.send_queue_capacity, options.send_backpressure) {}
    Socket socket;
    rt::WorkQueue<OutItem> send_queue;
    std::thread reader;
    std::thread writer;
    std::atomic<int> finished_halves{0};  ///< Reader + writer completions.
    std::atomic<bool> done{false};        ///< Both halves finished; joinable.
  };

  void accept_loop(Listener& listener);
  void reader_loop(const std::shared_ptr<Connection>& conn);
  void writer_loop(const std::shared_ptr<Connection>& conn);
  /// Called by each of reader/writer as it exits; the second call marks the
  /// connection closed (so wait_connections_closed cannot return while the
  /// writer still owes the peer its final frames).
  void finish_half(const std::shared_ptr<Connection>& conn);
  /// Answer a protocol error with a typed frame and poison the connection.
  void fail_connection(const std::shared_ptr<Connection>& conn, ErrorCode code,
                       std::string message);
  /// Deregister `conn`'s patients; evict shard state for streams never
  /// ended cleanly (`open` = pid -> still-streaming flag from the reader).
  void release_patients(const std::shared_ptr<Connection>& conn,
                        const std::map<int, bool>& streams);
  void deliver(std::span<const rt::WindowResult> batch);
  StatsFrame snapshot_stats_frame();
  void record_send_latency(double seconds);
  void reap_finished_locked();  ///< Joins finished connections (conn_mutex_ held).

  GatewayOptions options_;
  rt::ShardedStreamClassifier engine_;

  std::vector<std::unique_ptr<Listener>> listeners_;
  std::vector<std::thread> accept_threads_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};

  mutable std::mutex conn_mutex_;
  std::condition_variable conn_cv_;  ///< Signalled when a connection closes.
  std::map<std::uint64_t, std::shared_ptr<Connection>> connections_;
  std::uint64_t next_conn_id_ = 1;

  mutable std::mutex routes_mutex_;
  std::map<int, std::shared_ptr<Connection>> routes_;  ///< patient -> connection.

  std::mutex fence_mutex_;  ///< flush() is not reentrant; serialise fences.

  mutable std::mutex latency_mutex_;
  std::vector<double> latencies_s_;
  std::size_t latency_next_ = 0;
  static constexpr std::size_t kLatencyReservoir = 4096;

  // Counters (atomic so readers, writers, and sink threads update freely).
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_closed_{0};
  std::atomic<std::uint64_t> streams_opened_{0};
  std::atomic<std::uint64_t> streams_closed_{0};
  std::atomic<std::uint64_t> frames_received_{0};
  std::atomic<std::uint64_t> samples_ingested_{0};
  std::atomic<std::uint64_t> decision_batches_sent_{0};
  std::atomic<std::uint64_t> decision_windows_sent_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> orphan_batches_{0};
};

}  // namespace svt::net
