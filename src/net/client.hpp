// Client side of the gateway protocol.
//
// A GatewayClient owns one connection: the caller's thread sends (hello,
// stream-open, sample chunks, end-stream, bye) while an internal receiver
// thread decodes the server's frames as they arrive — decisions are
// collected continuously, so a client that streams for hours never lets the
// kernel receive buffer fill (which would stall the gateway's writer and,
// through the bounded send queue, eventually the patient's shard: both
// sides blocked in send is the classic stream-protocol deadlock; the
// receiver thread is what rules it out).
//
// Sends are batched through a reusable buffer and flushed explicitly (or
// automatically once flush_bytes accumulate), mirroring the gateway's
// writer: many small frames become one send() syscall.
//
// finish() ends the conversation: it sends kBye, flushes, and blocks until
// the server's kStats answer (which the gateway sends only after fencing
// the engine — so once finish() returns, every decision for every sample
// this client pushed has been received). A typed kError refusal from the
// server is surfaced by error() and makes the in-flight call return false.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"

namespace svt::net {

/// One decision received from the gateway (a DecisionRecord plus its
/// patient, flattened for easy sorting/diffing against in-process results).
struct ReceivedDecision {
  std::int32_t patient_id = 0;
  double start_s = 0.0;
  double decision_value = 0.0;
  std::int32_t label = 0;
  std::uint32_t num_beats = 0;
  std::uint32_t workload = 0;  ///< Index into the hello-ack workload list.
  std::uint32_t quality = 0;   ///< ecg::quality_flags bitmask (0 = clean).
};

class GatewayClient {
 public:
  /// Connect and send the hello. Throws std::runtime_error if the endpoint
  /// is unreachable. The handshake completes asynchronously; hello_ack()
  /// waits for it.
  explicit GatewayClient(const Endpoint& endpoint, std::size_t flush_bytes = 64 * 1024);
  ~GatewayClient();
  GatewayClient(const GatewayClient&) = delete;
  GatewayClient& operator=(const GatewayClient&) = delete;

  /// Block until the server's hello-ack (its stream config) or a refusal /
  /// disconnect (nullopt; see error()).
  std::optional<HelloAckFrame> hello_ack();

  /// The following queue one frame into the send buffer (flushed once
  /// flush_bytes accumulate) and return false if the connection has failed.
  bool open_stream(std::int32_t patient_id, double fs_hz);
  bool send_samples(std::int32_t patient_id, std::span<const double> samples_mv);
  bool end_stream(std::int32_t patient_id);

  /// Send everything buffered now (one explicit send call).
  bool flush();

  /// Send kBye and block until the server's kStats answer — i.e. until
  /// every decision owed to this client has arrived — or a refusal /
  /// disconnect (nullopt).
  std::optional<StatsFrame> finish();

  /// Decisions received so far (all of them, in arrival order). After a
  /// successful finish() this is the complete stream.
  std::vector<ReceivedDecision> decisions() const;

  /// The server's typed refusal, if one arrived.
  std::optional<ErrorFrame> error() const;

 private:
  void receive_loop();
  bool append_and_maybe_flush();

  std::size_t flush_bytes_;
  Socket socket_;
  std::vector<std::uint8_t> sendbuf_;
  bool send_failed_ = false;
  std::thread receiver_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::optional<HelloAckFrame> ack_;
  std::optional<StatsFrame> stats_;
  std::optional<ErrorFrame> error_;
  bool closed_ = false;  ///< Receiver saw EOF or a socket error.
  std::vector<ReceivedDecision> decisions_;
};

}  // namespace svt::net
