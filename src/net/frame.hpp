// Wire framing for the network serving gateway.
//
// Every message on a gateway connection is one length-prefixed frame with a
// fixed 12-byte little-endian header:
//
//   offset  size  field
//        0     2  magic   0x5653 ("SV")
//        2     1  version kProtocolVersion
//        3     1  type    FrameType
//        4     4  length  payload bytes (<= kMaxPayloadBytes)
//        8     4  crc32   CRC-32 of the payload for CONTROL frames; 0 for
//                         the two data frame types (kSampleChunk, kDecision),
//                         which are length-checked but not checksummed so the
//                         sample hot path stays cheap
//
// Frame types and payloads (all integers little-endian, all floats IEEE-754
// binary64 little-endian):
//
//   kHello       u16 protocol version, u16 max_workloads (0 = accept any)
//                                               client -> server, first frame
//   kHelloAck    u16 version, f64 fs_hz, f64 window_s, f64 stride_s,
//                u16 num_workloads, num_workloads x WorkloadDescriptor
//                (u16 name_len, name_len x u8 UTF-8 name, u16 num_features)
//   kStreamOpen  i32 patient_id, f64 fs_hz      fs must equal the server's
//   kSampleChunk i32 patient_id, u32 count, count x f64 samples (mV)
//   kEndStream   i32 patient_id                 finite stream ended
//   kBye         (empty)                        client done; server fences,
//                                               answers kStats, closes
//   kStats       14 x u64 counters              see StatsFrame
//   kDecision    i32 patient_id, u32 count, count x DecisionRecord
//                (f64 start_s, f64 decision, i32 label, u32 num_beats,
//                 u32 workload, u32 quality_flags)
//   kError       u32 code, UTF-8 message        typed refusal; sender closes
//
// Decoding is incremental: FrameDecoder consumes bytes in arbitrary slices
// (a frame fed byte-by-byte decodes identically to one fed whole) and
// surfaces malformed input — bad magic, wrong version, oversized length,
// CRC mismatch, truncation — as typed ErrorCodes instead of crashing, so a
// gateway can answer with a kError frame and drop the connection. The
// decoder reuses one internal buffer; steady-state feeding allocates
// nothing once the buffer has grown to the connection's chunk size.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace svt::net {

inline constexpr std::uint16_t kMagic = 0x5653;  // "SV" when read LE.
/// Version history: v1 carried 8 u64 counters in kStats; v2 grew it to 12
/// (the ward-scale scheduler counters); v3 is the multi-workload protocol —
/// DecisionRecord gained workload id + quality flags (24 -> 32 bytes),
/// kHello gained the client's accepted workload count, kHelloAck describes
/// each served workload (name + feature count), and kStats grew to 14
/// counters (quality-gate annotations/suppressions). Payloads are
/// size-checked, so mixed versions must never talk past the handshake — the
/// decoder rejects a foreign version byte on the first frame (kBadVersion)
/// and the gateway refuses a mismatched kHello, instead of failing silently
/// at stats parse.
inline constexpr std::uint8_t kProtocolVersion = 3;
inline constexpr std::size_t kHeaderBytes = 12;
/// Upper bound on one frame's payload: a 4 s chunk at 250 Hz is ~8 KiB, so
/// 1 MiB leaves room for minutes-long chunks while making a garbage length
/// field fail fast instead of waiting for gigabytes that never arrive.
inline constexpr std::size_t kMaxPayloadBytes = 1u << 20;

enum class FrameType : std::uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kStreamOpen = 3,
  kSampleChunk = 4,
  kEndStream = 5,
  kBye = 6,
  kStats = 7,
  kDecision = 8,
  kError = 9,
};

/// Control frames carry a CRC-32 over the payload; the two data frame types
/// (sample chunks and decisions) are length-checked only.
inline constexpr bool is_control_frame(FrameType type) {
  return type != FrameType::kSampleChunk && type != FrameType::kDecision;
}

enum class ErrorCode : std::uint32_t {
  kNone = 0,
  kBadMagic = 1,
  kBadVersion = 2,
  kOversizedFrame = 3,
  kBadCrc = 4,
  kTruncatedFrame = 5,   ///< Connection ended mid-frame.
  kBadPayload = 6,       ///< Payload length/content disagrees with the type.
  kUnknownType = 7,
  kProtocolViolation = 8,  ///< Valid frame at the wrong time (no hello, ...).
  kDuplicateStream = 9,
  kUnknownStream = 10,
  kConfigMismatch = 11,  ///< StreamOpen fs_hz != the server's stream config.
  kServerError = 12,
};

const char* error_code_name(ErrorCode code);

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) over `bytes`.
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

// --- Typed payloads ----------------------------------------------------------

struct HelloFrame {
  std::uint16_t version = kProtocolVersion;
  /// Most workloads the client is prepared to demultiplex; 0 = accept
  /// whatever the server serves. The gateway refuses (kConfigMismatch) when
  /// it serves more than a non-zero bound.
  std::uint16_t max_workloads = 0;
};

/// One served workload as announced in the hello-ack: the registered name
/// and its per-window feature count (rt::Workload::num_features).
struct WorkloadDescriptor {
  std::string name;
  std::uint16_t num_features = 0;
};

struct HelloAckFrame {
  std::uint16_t version = kProtocolVersion;
  double fs_hz = 0.0;
  double window_s = 0.0;
  double stride_s = 0.0;
  /// Served workloads, in workload-id order (DecisionRecord::workload
  /// indexes this list).
  std::vector<WorkloadDescriptor> workloads;
};

struct StreamOpenFrame {
  std::int32_t patient_id = 0;
  double fs_hz = 0.0;
};

struct EndStreamFrame {
  std::int32_t patient_id = 0;
};

/// Server counters answered to a kBye (also usable for monitoring frames).
struct StatsFrame {
  std::uint64_t windows_delivered = 0;
  std::uint64_t windows_rejected = 0;
  std::uint64_t chunks_dropped = 0;   ///< Engine kDropOldest evictions.
  std::uint64_t frames_received = 0;
  std::uint64_t samples_ingested = 0;
  std::uint64_t streams_opened = 0;
  std::uint64_t streams_closed = 0;
  std::uint64_t protocol_errors = 0;
  // Ward-scale scheduler counters (rt::SchedulerStats; zero when stealing
  // and deadline mode are off).
  std::uint64_t patients_stolen = 0;    ///< Migrations landed.
  std::uint64_t chunks_migrated = 0;    ///< Queued chunks moved between shards.
  std::uint64_t stride_widenings = 0;   ///< Deadline stride escalations.
  std::uint64_t chunks_shed = 0;        ///< Chunks dropped by forced shedding.
  // Quality-gate counters (v3; zero when the gate is off).
  std::uint64_t windows_annotated = 0;   ///< Emitted with non-zero quality flags.
  std::uint64_t windows_suppressed = 0;  ///< Withheld by the suppress policy.
};

/// One classified window on the wire (32 bytes).
struct DecisionRecord {
  double start_s = 0.0;
  double decision_value = 0.0;
  std::int32_t label = 0;
  std::uint32_t num_beats = 0;
  std::uint32_t workload = 0;  ///< Index into the hello-ack workload list.
  std::uint32_t quality = 0;   ///< ecg::quality_flags bitmask (0 = clean).
};

struct ErrorFrame {
  ErrorCode code = ErrorCode::kNone;
  std::string message;
};

// --- Encoding ----------------------------------------------------------------
// Every append_* encodes one complete frame (header + payload) onto the end
// of `out`, which is the caller's reusable send buffer: repeated appends
// build a batch that one send() flushes explicitly.

void append_hello(std::vector<std::uint8_t>& out, const HelloFrame& hello);
void append_hello_ack(std::vector<std::uint8_t>& out, const HelloAckFrame& ack);
void append_stream_open(std::vector<std::uint8_t>& out, const StreamOpenFrame& open);
void append_sample_chunk(std::vector<std::uint8_t>& out, std::int32_t patient_id,
                         std::span<const double> samples_mv);
void append_end_stream(std::vector<std::uint8_t>& out, const EndStreamFrame& end);
void append_bye(std::vector<std::uint8_t>& out);
void append_stats(std::vector<std::uint8_t>& out, const StatsFrame& stats);
void append_decisions(std::vector<std::uint8_t>& out, std::int32_t patient_id,
                      std::span<const DecisionRecord> decisions);
void append_error(std::vector<std::uint8_t>& out, const ErrorFrame& error);

// --- Payload parsing ---------------------------------------------------------
// Each parse_* decodes one frame's payload span (as surfaced by the
// decoder); returns false when the payload length or content disagrees with
// the frame type (the caller should treat that as ErrorCode::kBadPayload).

bool parse_hello(std::span<const std::uint8_t> payload, HelloFrame& out);
bool parse_hello_ack(std::span<const std::uint8_t> payload, HelloAckFrame& out);
bool parse_stream_open(std::span<const std::uint8_t> payload, StreamOpenFrame& out);
bool parse_end_stream(std::span<const std::uint8_t> payload, EndStreamFrame& out);
bool parse_stats(std::span<const std::uint8_t> payload, StatsFrame& out);
bool parse_error(std::span<const std::uint8_t> payload, ErrorFrame& out);

/// Zero-copy view of a sample-chunk payload; `samples` points into the
/// decoder's buffer and is valid until the next feed()/next() call.
struct SampleChunkView {
  std::int32_t patient_id = 0;
  std::size_t num_samples = 0;
  const std::uint8_t* samples = nullptr;  ///< num_samples x f64 LE.
  /// Decode into `out` (resized; capacity reused across calls, so a
  /// per-connection scratch makes the ingest path allocation-free once
  /// warm).
  void copy_samples(std::vector<double>& out) const;
};
bool parse_sample_chunk(std::span<const std::uint8_t> payload, SampleChunkView& out);

/// Zero-copy view of a decision payload (same lifetime rules).
struct DecisionBatchView {
  std::int32_t patient_id = 0;
  std::size_t num_decisions = 0;
  const std::uint8_t* records = nullptr;  ///< num_decisions x 32 bytes.
  DecisionRecord record(std::size_t i) const;
};
bool parse_decisions(std::span<const std::uint8_t> payload, DecisionBatchView& out);

// --- Incremental decoding ----------------------------------------------------

class FrameDecoder {
 public:
  struct Frame {
    FrameType type = FrameType::kHello;
    std::span<const std::uint8_t> payload;  ///< Valid until next feed()/next().
  };

  enum class Status {
    kNeedMore,  ///< No complete frame buffered yet.
    kFrame,     ///< `frame` holds the next decoded frame.
    kError,     ///< Malformed input; the decoder is poisoned (see error()).
  };

  /// Buffer `bytes` (any slicing: whole frames, partial frames, single
  /// bytes). No-op once poisoned.
  void feed(std::span<const std::uint8_t> bytes);

  /// Extract the next complete frame, if any. After kError the decoder
  /// refuses further input: framing is byte-positional, so nothing after a
  /// malformed header can be trusted — the connection must be dropped.
  Status next(Frame& frame);

  /// Signal end-of-input (peer closed the connection). Returns kNone when
  /// the byte stream ended on a frame boundary, kTruncatedFrame otherwise.
  ErrorCode finish() const;

  ErrorCode error() const { return error_; }
  const std::string& error_message() const { return error_message_; }

  /// Bytes currently buffered and not yet consumed by next().
  std::size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  ErrorCode poison(ErrorCode code, std::string message);

  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  ///< Prefix of buffer_ already handed out.
  ErrorCode error_ = ErrorCode::kNone;
  std::string error_message_;
};

}  // namespace svt::net
