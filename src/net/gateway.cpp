#include "net/gateway.hpp"

#include <stdexcept>
#include <utility>

namespace svt::net {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kRecvBufferBytes = 64 * 1024;

}  // namespace

ServeGateway::ServeGateway(std::shared_ptr<rt::ModelRegistry> registry, rt::StreamConfig config,
                           GatewayOptions options)
    : options_(options),
      engine_(std::move(registry), config, [this, &options] {
        // Unified engine configuration: options.engine carries everything
        // (workers, queues, placement, stealing, deadline); the deprecated
        // GatewayOptions::num_workers still wins when it asks for more. The
        // gateway owns delivery, so its routing sink replaces any
        // user-provided one.
        rt::EngineOptions engine = std::move(options.engine);
        engine.num_workers = std::max(engine.num_workers, options.num_workers);
        engine.sink = [this](std::span<const rt::WindowResult> batch) { deliver(batch); };
        return engine;
      }()) {}

ServeGateway::~ServeGateway() { stop(); }

Endpoint ServeGateway::add_listener(const Endpoint& endpoint) {
  if (started_.load()) throw std::logic_error("ServeGateway: add_listener after start()");
  auto listener = std::make_unique<Listener>(Listener::listen(endpoint));
  const Endpoint bound = listener->local_endpoint();
  listeners_.push_back(std::move(listener));
  return bound;
}

void ServeGateway::start() {
  if (listeners_.empty()) throw std::logic_error("ServeGateway: start() without a listener");
  if (started_.exchange(true)) return;
  for (auto& listener : listeners_)
    accept_threads_.emplace_back([this, &listener] { accept_loop(*listener); });
}

void ServeGateway::stop() {
  if (stopping_.exchange(true)) {
    // A second stop() (e.g. destructor after an explicit stop) still joins
    // anything the first one left.
  }
  // Wake the accept loops first, close the fds only after the joins: a
  // listener fd closed while another thread polls it is a race (and the fd
  // number could be reused under that thread).
  for (auto& listener : listeners_) listener->request_stop();
  for (auto& thread : accept_threads_)
    if (thread.joinable()) thread.join();
  accept_threads_.clear();
  for (auto& listener : listeners_) listener->close();

  // Tear down live connections: waking the readers (socket shutdown) and the
  // writers (queue close) lets every per-connection thread run its normal
  // exit path, then join them all.
  std::vector<std::shared_ptr<Connection>> live;
  {
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    for (auto& [id, conn] : connections_) live.push_back(conn);
    connections_.clear();
  }
  for (auto& conn : live) {
    conn->socket.shutdown_both();
    conn->send_queue.close();
  }
  for (auto& conn : live) {
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->writer.joinable()) conn->writer.join();
  }
}

void ServeGateway::wait_connections_closed(std::size_t n) {
  std::unique_lock<std::mutex> lock(conn_mutex_);
  conn_cv_.wait(lock, [this, n] { return connections_closed_.load() >= n; });
}

GatewayStats ServeGateway::stats() const {
  GatewayStats s;
  s.connections_accepted = connections_accepted_.load();
  s.connections_closed = connections_closed_.load();
  s.streams_opened = streams_opened_.load();
  s.streams_closed = streams_closed_.load();
  s.frames_received = frames_received_.load();
  s.samples_ingested = samples_ingested_.load();
  s.decision_batches_sent = decision_batches_sent_.load();
  s.decision_windows_sent = decision_windows_sent_.load();
  s.protocol_errors = protocol_errors_.load();
  s.orphan_batches = orphan_batches_.load();
  return s;
}

std::vector<double> ServeGateway::delivery_latencies_s() const {
  const std::lock_guard<std::mutex> lock(latency_mutex_);
  return latencies_s_;
}

void ServeGateway::record_send_latency(double seconds) {
  const std::lock_guard<std::mutex> lock(latency_mutex_);
  if (latencies_s_.size() < kLatencyReservoir) {
    latencies_s_.push_back(seconds);
  } else {
    latencies_s_[latency_next_] = seconds;
    latency_next_ = (latency_next_ + 1) % kLatencyReservoir;
  }
}

void ServeGateway::accept_loop(Listener& listener) {
  while (true) {
    Socket sock = listener.accept();
    if (!sock.valid()) return;  // Listener closed (stop()) or fatal error.
    auto conn = std::make_shared<Connection>(std::move(sock), options_);
    connections_accepted_.fetch_add(1);
    {
      const std::lock_guard<std::mutex> lock(conn_mutex_);
      reap_finished_locked();
      if (stopping_.load()) {
        // Raced with stop(): do not register a connection nobody will join.
        conn->socket.shutdown_both();
        connections_closed_.fetch_add(1);
        conn_cv_.notify_all();
        continue;
      }
      const std::uint64_t id = next_conn_id_++;
      connections_[id] = conn;
    }
    conn->writer = std::thread([this, conn] { writer_loop(conn); });
    conn->reader = std::thread([this, conn] { reader_loop(conn); });
  }
}

void ServeGateway::reap_finished_locked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->second->done.load()) {
      if (it->second->reader.joinable()) it->second->reader.join();
      if (it->second->writer.joinable()) it->second->writer.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

StatsFrame ServeGateway::snapshot_stats_frame() {
  StatsFrame stats;
  stats.windows_delivered = engine_.delivered_windows();
  stats.windows_rejected = engine_.rejected_windows();
  stats.chunks_dropped = engine_.dropped_chunks();
  stats.frames_received = frames_received_.load();
  stats.samples_ingested = samples_ingested_.load();
  stats.streams_opened = streams_opened_.load();
  stats.streams_closed = streams_closed_.load();
  stats.protocol_errors = protocol_errors_.load();
  const rt::SchedulerStats sched = engine_.scheduler_stats();
  stats.patients_stolen = sched.migrations;
  stats.chunks_migrated = sched.migrated_chunks;
  stats.stride_widenings = sched.stride_widenings;
  stats.chunks_shed = sched.shed_chunks;
  const rt::EngineStats engine_stats = engine_.stats();
  stats.windows_annotated = engine_stats.windows_annotated;
  stats.windows_suppressed = engine_stats.windows_suppressed;
  return stats;
}

void ServeGateway::fail_connection(const std::shared_ptr<Connection>& conn, ErrorCode code,
                                   std::string message) {
  protocol_errors_.fetch_add(1);
  OutItem item;
  ErrorFrame error;
  error.code = code;
  error.message = std::move(message);
  append_error(item.bytes, error);
  conn->send_queue.push_control(std::move(item));
  // Closing the queue lets the writer drain (the error frame included) and
  // exit; the reader stops consuming input after calling this.
  conn->send_queue.close();
}

void ServeGateway::release_patients(const std::shared_ptr<Connection>& conn,
                                    const std::map<int, bool>& streams) {
  for (const auto& [pid, still_open] : streams) {
    // Evict BEFORE deregistering: the eviction is queued on the patient's
    // shard ahead of any chunks a re-opened stream could push, so a new
    // connection reusing the id starts from stream phase 0 — never from the
    // dead connection's leftovers.
    if (still_open) engine_.evict_patient(pid);
    const std::lock_guard<std::mutex> lock(routes_mutex_);
    const auto it = routes_.find(pid);
    if (it != routes_.end() && it->second == conn) routes_.erase(it);
  }
}

void ServeGateway::deliver(std::span<const rt::WindowResult> batch) {
  if (batch.empty()) return;
  std::shared_ptr<Connection> conn;
  {
    const std::lock_guard<std::mutex> lock(routes_mutex_);
    const auto it = routes_.find(batch.front().patient_id);
    if (it != routes_.end()) conn = it->second;
  }
  if (!conn) {
    orphan_batches_.fetch_add(1);
    return;
  }
  // One wire record per window; the scratch vector is thread-local so each
  // shard worker reuses its own across batches (no per-window allocation).
  thread_local std::vector<DecisionRecord> records;
  records.clear();
  records.reserve(batch.size());
  for (const rt::WindowResult& w : batch) {
    DecisionRecord d;
    d.start_s = w.start_s;
    d.decision_value = w.decision_value;
    d.label = w.label;
    d.num_beats = static_cast<std::uint32_t>(w.num_beats);
    d.workload = w.workload;
    d.quality = w.quality;
    records.push_back(d);
  }
  OutItem item;
  item.ready = Clock::now();
  item.latency_tracked = true;
  append_decisions(item.bytes, batch.front().patient_id, records);
  if (!conn->send_queue.push(std::move(item))) {
    orphan_batches_.fetch_add(1);  // Connection tearing down; batch dropped.
    return;
  }
  decision_batches_sent_.fetch_add(1);
  decision_windows_sent_.fetch_add(batch.size());
}

void ServeGateway::writer_loop(const std::shared_ptr<Connection>& conn) {
  std::vector<std::uint8_t> sendbuf;
  std::vector<Clock::time_point> tracked;
  while (true) {
    auto item = conn->send_queue.wait_pop();
    if (!item) break;  // Queue closed and drained: connection is finished.
    sendbuf.clear();
    tracked.clear();
    sendbuf.insert(sendbuf.end(), item->bytes.begin(), item->bytes.end());
    if (item->latency_tracked) tracked.push_back(item->ready);
    // Coalesce everything immediately available into this send, bounded by
    // flush_bytes, then flush the whole batch with one explicit send call.
    while (sendbuf.size() < options_.flush_bytes) {
      auto more = conn->send_queue.try_pop();
      if (!more) break;
      sendbuf.insert(sendbuf.end(), more->bytes.begin(), more->bytes.end());
      if (more->latency_tracked) tracked.push_back(more->ready);
    }
    const bool sent = conn->socket.send_all(sendbuf);
    const auto now = Clock::now();
    if (sent) {
      for (const auto ready : tracked)
        record_send_latency(std::chrono::duration<double>(now - ready).count());
      continue;
    }
    // Peer is gone: unblock producers (sink pushes now fail fast) and wake
    // the reader out of recv so the connection tears down.
    conn->send_queue.close();
    conn->socket.shutdown_both();
    break;
  }
  // Drained (queue closed): everything queued — decisions, stats, or a
  // typed error frame — has been sent; FIN tells the peer that is all.
  conn->socket.shutdown_both();
  finish_half(conn);
}

void ServeGateway::reader_loop(const std::shared_ptr<Connection>& conn) {
  FrameDecoder decoder;
  std::vector<std::uint8_t> recvbuf(kRecvBufferBytes);
  std::vector<double> samples_scratch;  ///< Reused per-connection decode buffer.
  std::map<int, bool> streams;          ///< pid -> still accepting samples.
  bool helloed = false;
  bool clean_bye = false;
  bool failed = false;

  const auto fail = [&](ErrorCode code, std::string message) {
    fail_connection(conn, code, std::move(message));
    failed = true;
  };

  while (!failed && !clean_bye) {
    const std::ptrdiff_t n = conn->socket.recv_some(recvbuf);
    if (n <= 0) {
      // Orderly shutdown mid-frame is a truncation; count it (the peer is
      // gone, so no error frame can be answered).
      if (n == 0 && decoder.finish() != ErrorCode::kNone) protocol_errors_.fetch_add(1);
      break;
    }
    decoder.feed(std::span<const std::uint8_t>(recvbuf.data(), static_cast<std::size_t>(n)));

    FrameDecoder::Frame frame;
    while (!failed && !clean_bye) {
      const auto status = decoder.next(frame);
      if (status == FrameDecoder::Status::kNeedMore) break;
      if (status == FrameDecoder::Status::kError) {
        fail(decoder.error(), decoder.error_message());
        break;
      }
      frames_received_.fetch_add(1);
      if (!helloed && frame.type != FrameType::kHello) {
        fail(ErrorCode::kProtocolViolation, "first frame must be hello");
        break;
      }
      switch (frame.type) {
        case FrameType::kHello: {
          HelloFrame hello;
          if (!parse_hello(frame.payload, hello)) {
            fail(ErrorCode::kBadPayload, "hello payload");
            break;
          }
          if (helloed) {
            fail(ErrorCode::kProtocolViolation, "duplicate hello");
            break;
          }
          if (hello.version != kProtocolVersion) {
            fail(ErrorCode::kBadVersion,
                 "client speaks version " + std::to_string(hello.version));
            break;
          }
          // Per-workload negotiation: a client that bounds how many
          // workloads it can demultiplex (non-zero max) must accept every
          // one this engine serves — decision frames interleave all of
          // them, so a partial subscription cannot be honoured.
          if (hello.max_workloads != 0 && hello.max_workloads < engine_.num_workloads()) {
            fail(ErrorCode::kConfigMismatch,
                 "client accepts " + std::to_string(hello.max_workloads) +
                     " workloads, server serves " + std::to_string(engine_.num_workloads()));
            break;
          }
          helloed = true;
          OutItem ack;
          HelloAckFrame payload;
          payload.fs_hz = engine_.config().fs_hz;
          payload.window_s = engine_.config().window_s;
          payload.stride_s = engine_.config().stride_s;
          for (const auto& workload : engine_.workloads()) {
            WorkloadDescriptor desc;
            desc.name = workload->name();
            desc.num_features = static_cast<std::uint16_t>(workload->num_features());
            payload.workloads.push_back(std::move(desc));
          }
          append_hello_ack(ack.bytes, payload);
          conn->send_queue.push_control(std::move(ack));
          break;
        }
        case FrameType::kStreamOpen: {
          StreamOpenFrame open;
          if (!parse_stream_open(frame.payload, open)) {
            fail(ErrorCode::kBadPayload, "stream_open payload");
            break;
          }
          if (open.fs_hz != engine_.config().fs_hz) {
            fail(ErrorCode::kConfigMismatch,
                 "stream fs " + std::to_string(open.fs_hz) + " Hz, server expects " +
                     std::to_string(engine_.config().fs_hz));
            break;
          }
          // Register the route. A patient may be re-opened on the SAME
          // connection after end_stream (the engine dropped its state, so a
          // fresh stream is well-defined); any other live claim — open on
          // this connection, or any claim by another — is a duplicate.
          bool mine = false;
          {
            const std::lock_guard<std::mutex> lock(routes_mutex_);
            const auto [it, inserted] = routes_.emplace(open.patient_id, conn);
            mine = inserted || it->second == conn;
          }
          const auto sit = streams.find(open.patient_id);
          if (!mine || (sit != streams.end() && sit->second)) {
            fail(ErrorCode::kDuplicateStream,
                 "patient " + std::to_string(open.patient_id) + " already streaming");
            break;
          }
          streams[open.patient_id] = true;
          streams_opened_.fetch_add(1);
          break;
        }
        case FrameType::kSampleChunk: {
          SampleChunkView chunk;
          if (!parse_sample_chunk(frame.payload, chunk)) {
            fail(ErrorCode::kBadPayload, "sample_chunk payload");
            break;
          }
          const auto it = streams.find(chunk.patient_id);
          if (it == streams.end() || !it->second) {
            fail(ErrorCode::kUnknownStream,
                 "patient " + std::to_string(chunk.patient_id) + " has no open stream");
            break;
          }
          if (chunk.num_samples > 0) {
            chunk.copy_samples(samples_scratch);
            // May block under kBlock shard backpressure: the un-recv'd
            // bytes then back up into the kernel buffer and TCP throttles
            // the remote producer.
            engine_.push_samples(chunk.patient_id, samples_scratch);
            samples_ingested_.fetch_add(chunk.num_samples);
          }
          break;
        }
        case FrameType::kEndStream: {
          EndStreamFrame end;
          if (!parse_end_stream(frame.payload, end)) {
            fail(ErrorCode::kBadPayload, "end_stream payload");
            break;
          }
          const auto it = streams.find(end.patient_id);
          if (it == streams.end() || !it->second) {
            fail(ErrorCode::kUnknownStream,
                 "patient " + std::to_string(end.patient_id) + " has no open stream");
            break;
          }
          engine_.end_stream(end.patient_id);
          it->second = false;
          streams_closed_.fetch_add(1);
          break;
        }
        case FrameType::kBye: {
          // Defensive: a bye implies every stream is over. End any the
          // client forgot so their trailing windows still classify.
          for (auto& [pid, open] : streams) {
            if (open) {
              engine_.end_stream(pid);
              open = false;
              streams_closed_.fetch_add(1);
            }
          }
          // Fence so every queued chunk is classified and every decision
          // frame is on this connection's send queue before the stats
          // answer (which therefore marks end-of-decisions to the client).
          try {
            const std::lock_guard<std::mutex> lock(fence_mutex_);
            engine_.flush();
          } catch (const std::exception& err) {
            fail(ErrorCode::kServerError, err.what());
            break;
          }
          release_patients(conn, streams);
          streams.clear();
          OutItem stats;
          append_stats(stats.bytes, snapshot_stats_frame());
          conn->send_queue.push_control(std::move(stats));
          conn->send_queue.close();  // Writer drains decisions + stats, then exits.
          clean_bye = true;
          break;
        }
        default:
          fail(ErrorCode::kProtocolViolation, "unexpected frame type on a client connection");
          break;
      }
    }
  }

  release_patients(conn, streams);
  conn->send_queue.close();
  finish_half(conn);
}

void ServeGateway::finish_half(const std::shared_ptr<Connection>& conn) {
  if (conn->finished_halves.fetch_add(1) + 1 < 2) return;
  // Both halves are done: every frame owed to the peer (decisions, stats,
  // or a typed error) has been handed to the kernel and FIN sent, so the
  // conversation is truly over — only now may wait_connections_closed(n)
  // count this connection (the CI smoke exits the gateway on that count).
  connections_closed_.fetch_add(1);
  {
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    conn->done.store(true);
  }
  conn_cv_.notify_all();
}

}  // namespace svt::net
