#include "net/frame.hpp"

#include <array>
#include <cstring>

namespace svt::net {

namespace {

// --- Little-endian primitive encoding ---------------------------------------
// The wire format is explicitly little-endian regardless of host order; the
// per-byte assembly below compiles to plain loads/stores on LE hosts.

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_i32(std::vector<std::uint8_t>& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

std::int32_t get_i32(const std::uint8_t* p) { return static_cast<std::int32_t>(get_u32(p)); }

double get_f64(const std::uint8_t* p) {
  const std::uint64_t bits = get_u64(p);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

bool known_type(std::uint8_t type) {
  return type >= static_cast<std::uint8_t>(FrameType::kHello) &&
         type <= static_cast<std::uint8_t>(FrameType::kError);
}

/// Patch an already-appended frame: fill in the payload length and, for
/// control frames, the payload CRC. `header_at` is the offset of the frame
/// header inside `out`.
void seal_frame(std::vector<std::uint8_t>& out, std::size_t header_at, FrameType type) {
  const std::size_t payload_len = out.size() - header_at - kHeaderBytes;
  const std::uint32_t len32 = static_cast<std::uint32_t>(payload_len);
  for (int i = 0; i < 4; ++i) out[header_at + 4 + i] = static_cast<std::uint8_t>(len32 >> (8 * i));
  std::uint32_t crc = 0;
  if (is_control_frame(type)) {
    crc = crc32(std::span(out).subspan(header_at + kHeaderBytes, payload_len));
  }
  for (int i = 0; i < 4; ++i) out[header_at + 8 + i] = static_cast<std::uint8_t>(crc >> (8 * i));
}

/// Append a header with length/crc left as zero; seal_frame fills them once
/// the payload has been appended.
std::size_t begin_frame(std::vector<std::uint8_t>& out, FrameType type) {
  const std::size_t header_at = out.size();
  put_u16(out, kMagic);
  out.push_back(kProtocolVersion);
  out.push_back(static_cast<std::uint8_t>(type));
  put_u32(out, 0);  // length, sealed later
  put_u32(out, 0);  // crc, sealed later
  return header_at;
}

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::uint8_t b : bytes) c = kCrcTable[(c ^ b) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNone: return "none";
    case ErrorCode::kBadMagic: return "bad magic";
    case ErrorCode::kBadVersion: return "bad version";
    case ErrorCode::kOversizedFrame: return "oversized frame";
    case ErrorCode::kBadCrc: return "crc mismatch";
    case ErrorCode::kTruncatedFrame: return "truncated frame";
    case ErrorCode::kBadPayload: return "bad payload";
    case ErrorCode::kUnknownType: return "unknown frame type";
    case ErrorCode::kProtocolViolation: return "protocol violation";
    case ErrorCode::kDuplicateStream: return "duplicate stream";
    case ErrorCode::kUnknownStream: return "unknown stream";
    case ErrorCode::kConfigMismatch: return "config mismatch";
    case ErrorCode::kServerError: return "server error";
  }
  return "unknown error";
}

// --- Encoding ----------------------------------------------------------------

void append_hello(std::vector<std::uint8_t>& out, const HelloFrame& hello) {
  const std::size_t at = begin_frame(out, FrameType::kHello);
  put_u16(out, hello.version);
  put_u16(out, hello.max_workloads);
  seal_frame(out, at, FrameType::kHello);
}

void append_hello_ack(std::vector<std::uint8_t>& out, const HelloAckFrame& ack) {
  const std::size_t at = begin_frame(out, FrameType::kHelloAck);
  put_u16(out, ack.version);
  put_f64(out, ack.fs_hz);
  put_f64(out, ack.window_s);
  put_f64(out, ack.stride_s);
  put_u16(out, static_cast<std::uint16_t>(ack.workloads.size()));
  for (const WorkloadDescriptor& w : ack.workloads) {
    put_u16(out, static_cast<std::uint16_t>(w.name.size()));
    out.insert(out.end(), w.name.begin(), w.name.end());
    put_u16(out, w.num_features);
  }
  seal_frame(out, at, FrameType::kHelloAck);
}

void append_stream_open(std::vector<std::uint8_t>& out, const StreamOpenFrame& open) {
  const std::size_t at = begin_frame(out, FrameType::kStreamOpen);
  put_i32(out, open.patient_id);
  put_f64(out, open.fs_hz);
  seal_frame(out, at, FrameType::kStreamOpen);
}

void append_sample_chunk(std::vector<std::uint8_t>& out, std::int32_t patient_id,
                         std::span<const double> samples_mv) {
  const std::size_t at = begin_frame(out, FrameType::kSampleChunk);
  put_i32(out, patient_id);
  put_u32(out, static_cast<std::uint32_t>(samples_mv.size()));
  out.reserve(out.size() + samples_mv.size() * 8);
  for (const double s : samples_mv) put_f64(out, s);
  seal_frame(out, at, FrameType::kSampleChunk);
}

void append_end_stream(std::vector<std::uint8_t>& out, const EndStreamFrame& end) {
  const std::size_t at = begin_frame(out, FrameType::kEndStream);
  put_i32(out, end.patient_id);
  seal_frame(out, at, FrameType::kEndStream);
}

void append_bye(std::vector<std::uint8_t>& out) {
  const std::size_t at = begin_frame(out, FrameType::kBye);
  seal_frame(out, at, FrameType::kBye);
}

void append_stats(std::vector<std::uint8_t>& out, const StatsFrame& stats) {
  const std::size_t at = begin_frame(out, FrameType::kStats);
  put_u64(out, stats.windows_delivered);
  put_u64(out, stats.windows_rejected);
  put_u64(out, stats.chunks_dropped);
  put_u64(out, stats.frames_received);
  put_u64(out, stats.samples_ingested);
  put_u64(out, stats.streams_opened);
  put_u64(out, stats.streams_closed);
  put_u64(out, stats.protocol_errors);
  put_u64(out, stats.patients_stolen);
  put_u64(out, stats.chunks_migrated);
  put_u64(out, stats.stride_widenings);
  put_u64(out, stats.chunks_shed);
  put_u64(out, stats.windows_annotated);
  put_u64(out, stats.windows_suppressed);
  seal_frame(out, at, FrameType::kStats);
}

void append_decisions(std::vector<std::uint8_t>& out, std::int32_t patient_id,
                      std::span<const DecisionRecord> decisions) {
  const std::size_t at = begin_frame(out, FrameType::kDecision);
  put_i32(out, patient_id);
  put_u32(out, static_cast<std::uint32_t>(decisions.size()));
  out.reserve(out.size() + decisions.size() * 32);
  for (const DecisionRecord& d : decisions) {
    put_f64(out, d.start_s);
    put_f64(out, d.decision_value);
    put_i32(out, d.label);
    put_u32(out, d.num_beats);
    put_u32(out, d.workload);
    put_u32(out, d.quality);
  }
  seal_frame(out, at, FrameType::kDecision);
}

void append_error(std::vector<std::uint8_t>& out, const ErrorFrame& error) {
  const std::size_t at = begin_frame(out, FrameType::kError);
  put_u32(out, static_cast<std::uint32_t>(error.code));
  out.insert(out.end(), error.message.begin(), error.message.end());
  seal_frame(out, at, FrameType::kError);
}

// --- Payload parsing ---------------------------------------------------------

bool parse_hello(std::span<const std::uint8_t> payload, HelloFrame& out) {
  if (payload.size() != 4) return false;
  out.version = get_u16(payload.data());
  out.max_workloads = get_u16(payload.data() + 2);
  return true;
}

bool parse_hello_ack(std::span<const std::uint8_t> payload, HelloAckFrame& out) {
  // Fixed prefix, then a size-checked variable-length workload table: every
  // descriptor's declared name length must fit what remains, and the table
  // must consume the payload exactly.
  constexpr std::size_t kPrefix = 2 + 3 * 8 + 2;
  if (payload.size() < kPrefix) return false;
  out.version = get_u16(payload.data());
  out.fs_hz = get_f64(payload.data() + 2);
  out.window_s = get_f64(payload.data() + 10);
  out.stride_s = get_f64(payload.data() + 18);
  const std::size_t num_workloads = get_u16(payload.data() + 26);
  out.workloads.clear();
  out.workloads.reserve(num_workloads);
  std::size_t at = kPrefix;
  for (std::size_t w = 0; w < num_workloads; ++w) {
    if (payload.size() - at < 2) return false;
    const std::size_t name_len = get_u16(payload.data() + at);
    at += 2;
    if (payload.size() - at < name_len + 2) return false;
    WorkloadDescriptor desc;
    desc.name.assign(payload.begin() + static_cast<std::ptrdiff_t>(at),
                     payload.begin() + static_cast<std::ptrdiff_t>(at + name_len));
    at += name_len;
    desc.num_features = get_u16(payload.data() + at);
    at += 2;
    out.workloads.push_back(std::move(desc));
  }
  return at == payload.size();
}

bool parse_stream_open(std::span<const std::uint8_t> payload, StreamOpenFrame& out) {
  if (payload.size() != 4 + 8) return false;
  out.patient_id = get_i32(payload.data());
  out.fs_hz = get_f64(payload.data() + 4);
  return true;
}

bool parse_end_stream(std::span<const std::uint8_t> payload, EndStreamFrame& out) {
  if (payload.size() != 4) return false;
  out.patient_id = get_i32(payload.data());
  return true;
}

bool parse_stats(std::span<const std::uint8_t> payload, StatsFrame& out) {
  if (payload.size() != 14 * 8) return false;
  const std::uint8_t* p = payload.data();
  out.windows_delivered = get_u64(p);
  out.windows_rejected = get_u64(p + 8);
  out.chunks_dropped = get_u64(p + 16);
  out.frames_received = get_u64(p + 24);
  out.samples_ingested = get_u64(p + 32);
  out.streams_opened = get_u64(p + 40);
  out.streams_closed = get_u64(p + 48);
  out.protocol_errors = get_u64(p + 56);
  out.patients_stolen = get_u64(p + 64);
  out.chunks_migrated = get_u64(p + 72);
  out.stride_widenings = get_u64(p + 80);
  out.chunks_shed = get_u64(p + 88);
  out.windows_annotated = get_u64(p + 96);
  out.windows_suppressed = get_u64(p + 104);
  return true;
}

bool parse_error(std::span<const std::uint8_t> payload, ErrorFrame& out) {
  if (payload.size() < 4) return false;
  out.code = static_cast<ErrorCode>(get_u32(payload.data()));
  out.message.assign(payload.begin() + 4, payload.end());
  return true;
}

void SampleChunkView::copy_samples(std::vector<double>& out) const {
  out.resize(num_samples);
  for (std::size_t i = 0; i < num_samples; ++i) out[i] = get_f64(samples + 8 * i);
}

bool parse_sample_chunk(std::span<const std::uint8_t> payload, SampleChunkView& out) {
  if (payload.size() < 8) return false;
  out.patient_id = get_i32(payload.data());
  out.num_samples = get_u32(payload.data() + 4);
  if (payload.size() != 8 + out.num_samples * 8) return false;
  out.samples = payload.data() + 8;
  return true;
}

DecisionRecord DecisionBatchView::record(std::size_t i) const {
  const std::uint8_t* p = records + 32 * i;
  DecisionRecord d;
  d.start_s = get_f64(p);
  d.decision_value = get_f64(p + 8);
  d.label = get_i32(p + 16);
  d.num_beats = get_u32(p + 20);
  d.workload = get_u32(p + 24);
  d.quality = get_u32(p + 28);
  return d;
}

bool parse_decisions(std::span<const std::uint8_t> payload, DecisionBatchView& out) {
  if (payload.size() < 8) return false;
  out.patient_id = get_i32(payload.data());
  out.num_decisions = get_u32(payload.data() + 4);
  if (payload.size() != 8 + out.num_decisions * 32) return false;
  out.records = payload.data() + 8;
  return true;
}

// --- Incremental decoding ----------------------------------------------------

void FrameDecoder::feed(std::span<const std::uint8_t> bytes) {
  if (error_ != ErrorCode::kNone) return;
  // Compact before appending: drop the consumed prefix so the buffer's size
  // tracks the unconsumed backlog, not the connection's lifetime traffic.
  if (consumed_ > 0) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

ErrorCode FrameDecoder::poison(ErrorCode code, std::string message) {
  error_ = code;
  error_message_ = std::move(message);
  return code;
}

FrameDecoder::Status FrameDecoder::next(Frame& frame) {
  if (error_ != ErrorCode::kNone) return Status::kError;
  if (buffer_.size() - consumed_ < kHeaderBytes) return Status::kNeedMore;
  const std::uint8_t* header = buffer_.data() + consumed_;
  const std::uint16_t magic = get_u16(header);
  if (magic != kMagic) {
    poison(ErrorCode::kBadMagic, "frame magic " + std::to_string(magic));
    return Status::kError;
  }
  const std::uint8_t version = header[2];
  if (version != kProtocolVersion) {
    poison(ErrorCode::kBadVersion, "protocol version " + std::to_string(version));
    return Status::kError;
  }
  const std::uint8_t raw_type = header[3];
  if (!known_type(raw_type)) {
    poison(ErrorCode::kUnknownType, "frame type " + std::to_string(raw_type));
    return Status::kError;
  }
  const std::uint32_t length = get_u32(header + 4);
  if (length > kMaxPayloadBytes) {
    poison(ErrorCode::kOversizedFrame,
           "payload length " + std::to_string(length) + " exceeds " +
               std::to_string(kMaxPayloadBytes));
    return Status::kError;
  }
  if (buffer_.size() - consumed_ < kHeaderBytes + length) return Status::kNeedMore;
  const auto type = static_cast<FrameType>(raw_type);
  const auto payload =
      std::span<const std::uint8_t>(buffer_.data() + consumed_ + kHeaderBytes, length);
  if (is_control_frame(type)) {
    const std::uint32_t declared = get_u32(header + 8);
    const std::uint32_t actual = crc32(payload);
    if (declared != actual) {
      poison(ErrorCode::kBadCrc, "control frame crc " + std::to_string(declared) +
                                     " != computed " + std::to_string(actual));
      return Status::kError;
    }
  }
  consumed_ += kHeaderBytes + length;
  frame.type = type;
  frame.payload = payload;
  return Status::kFrame;
}

ErrorCode FrameDecoder::finish() const {
  if (error_ != ErrorCode::kNone) return error_;
  return buffer_.size() == consumed_ ? ErrorCode::kNone : ErrorCode::kTruncatedFrame;
}

}  // namespace svt::net
