// Thin RAII layer over POSIX stream sockets (TCP and Unix-domain).
//
// The gateway and its clients only need five operations — listen, accept,
// connect, send-everything, receive-some — so that is all this wraps. Both
// transports present the same Socket/Listener interface; an Endpoint names
// either one textually ("tcp:host:port" or "unix:/path"), which is what the
// example binaries take on the command line and the tests use to cover both
// legs with one code path.
//
// All sockets are blocking. send_all loops over partial writes (short
// writes are a normal stream-socket event, not an error) with SIGPIPE
// suppressed per-call, so a peer that disappears surfaces as a clean false
// return instead of a process signal. TCP connections set TCP_NODELAY:
// the framing layer already batches aggressively and flushes explicitly,
// so Nagle coalescing would only add delivery latency.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace svt::net {

/// Parsed "tcp:host:port" / "unix:/path" address.
struct Endpoint {
  enum class Kind { kTcp, kUnix };
  Kind kind = Kind::kTcp;
  std::string host;         ///< TCP only.
  std::uint16_t port = 0;   ///< TCP only; 0 binds an ephemeral port.
  std::string path;         ///< Unix only.

  /// Parse a textual endpoint; throws std::invalid_argument on a malformed
  /// spec (unknown scheme, bad port, overlong unix path).
  static Endpoint parse(const std::string& spec);
  static Endpoint tcp(std::string host, std::uint16_t port);
  static Endpoint unix_path(std::string path);
  std::string to_string() const;
};

/// Move-only owner of one connected (or accepted) socket fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Send the whole buffer, looping over partial writes and EINTR. Returns
  /// false when the peer is gone (EPIPE/ECONNRESET/...).
  bool send_all(std::span<const std::uint8_t> bytes);

  /// Receive up to buf.size() bytes. Returns the byte count, 0 on orderly
  /// peer shutdown, -1 on error (EINTR is retried internally).
  std::ptrdiff_t recv_some(std::span<std::uint8_t> buf);

  /// Shut down both directions (wakes a peer — or another thread of this
  /// process — blocked in recv) without releasing the fd.
  void shutdown_both();

  void close();

 private:
  int fd_ = -1;
};

/// Listening socket for either transport.
class Listener {
 public:
  Listener() = default;
  ~Listener() { close(); }
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Bind + listen. TCP: SO_REUSEADDR, port 0 picks an ephemeral port
  /// (local_endpoint() reports the resolved one). Unix: a stale socket file
  /// at the path is unlinked first. Throws std::runtime_error on failure.
  static Listener listen(const Endpoint& endpoint, int backlog = 128);

  /// Block until a connection arrives; returns an invalid Socket once the
  /// listener is closed (the shutdown path) or on a fatal accept error.
  Socket accept();

  /// The bound address (TCP port resolved even when 0 was requested).
  const Endpoint& local_endpoint() const { return endpoint_; }

  bool valid() const { return fd_ >= 0; }

  /// Wake a thread blocked in accept() via the internal wake pipe without
  /// touching any fd it may be using: every subsequent accept() returns an
  /// invalid Socket (the wake byte stays in the pipe). The owner joins the
  /// accept thread, THEN calls close() — closing a fd another thread still
  /// polls would race it (and the fd number could be reused under it).
  void request_stop();

  /// Close the listening fd (Unix sockets unlink their path). Only safe
  /// once no thread is blocked in accept() — see request_stop().
  void close();

 private:
  void close_fds();

  int fd_ = -1;
  Endpoint endpoint_;
  // Self-pipe: request_stop() writes a byte so a thread blocked in
  // accept()'s poll wakes deterministically without the fds being closed
  // under it.
  int wake_rx_ = -1;
  int wake_tx_ = -1;
};

/// Connect to a listening gateway; throws std::runtime_error on failure.
Socket connect_to(const Endpoint& endpoint);

}  // namespace svt::net
