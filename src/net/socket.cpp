#include "net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <stdexcept>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#include <utility>

namespace svt::net {

namespace {

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_un make_unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw std::invalid_argument("unix socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

// --- Endpoint ----------------------------------------------------------------

Endpoint Endpoint::tcp(std::string host, std::uint16_t port) {
  Endpoint ep;
  ep.kind = Kind::kTcp;
  ep.host = std::move(host);
  ep.port = port;
  return ep;
}

Endpoint Endpoint::unix_path(std::string path) {
  Endpoint ep;
  ep.kind = Kind::kUnix;
  ep.path = std::move(path);
  return ep;
}

Endpoint Endpoint::parse(const std::string& spec) {
  if (spec.rfind("unix:", 0) == 0) {
    const std::string path = spec.substr(5);
    if (path.empty()) throw std::invalid_argument("endpoint '" + spec + "': empty unix path");
    return unix_path(path);
  }
  if (spec.rfind("tcp:", 0) == 0) {
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == rest.size())
      throw std::invalid_argument("endpoint '" + spec + "': want tcp:host:port");
    const std::string port_str = rest.substr(colon + 1);
    char* end = nullptr;
    const unsigned long port = std::strtoul(port_str.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || port > 65535)
      throw std::invalid_argument("endpoint '" + spec + "': bad port '" + port_str + "'");
    return tcp(rest.substr(0, colon), static_cast<std::uint16_t>(port));
  }
  throw std::invalid_argument("endpoint '" + spec + "': want tcp:host:port or unix:/path");
}

std::string Endpoint::to_string() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

// --- Socket ------------------------------------------------------------------

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

bool Socket::send_all(std::span<const std::uint8_t> bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ::ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::ptrdiff_t Socket::recv_some(std::span<std::uint8_t> buf) {
  while (true) {
    const ::ssize_t n = ::recv(fd_, buf.data(), buf.size(), 0);
    if (n < 0 && errno == EINTR) continue;
    return n;
  }
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// --- Listener ----------------------------------------------------------------

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_),
      endpoint_(std::move(other.endpoint_)),
      wake_rx_(other.wake_rx_),
      wake_tx_(other.wake_tx_) {
  other.fd_ = other.wake_rx_ = other.wake_tx_ = -1;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close_fds();
    fd_ = other.fd_;
    endpoint_ = std::move(other.endpoint_);
    wake_rx_ = other.wake_rx_;
    wake_tx_ = other.wake_tx_;
    other.fd_ = other.wake_rx_ = other.wake_tx_ = -1;
  }
  return *this;
}

Listener Listener::listen(const Endpoint& endpoint, int backlog) {
  Listener listener;
  listener.endpoint_ = endpoint;
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    listener.fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listener.fd_ < 0) throw_errno("socket(AF_UNIX)");
    ::unlink(endpoint.path.c_str());  // A stale socket file would fail bind.
    const sockaddr_un addr = make_unix_addr(endpoint.path);
    if (::bind(listener.fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0)
      throw_errno("bind(" + endpoint.to_string() + ")");
  } else {
    listener.fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listener.fd_ < 0) throw_errno("socket(AF_INET)");
    int one = 1;
    ::setsockopt(listener.fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(endpoint.port);
    const std::string host = endpoint.host.empty() ? "0.0.0.0" : endpoint.host;
    if (host == "localhost") {
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    } else if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      throw std::invalid_argument("listen: bind host must be an IPv4 literal, got '" + host +
                                  "'");
    }
    if (::bind(listener.fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0)
      throw_errno("bind(" + endpoint.to_string() + ")");
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listener.fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
      listener.endpoint_.port = ntohs(bound.sin_port);
  }
  if (::listen(listener.fd_, backlog) != 0) throw_errno("listen(" + endpoint.to_string() + ")");
  int pipefd[2];
  if (::pipe2(pipefd, O_CLOEXEC) != 0) throw_errno("pipe2");
  listener.wake_rx_ = pipefd[0];
  listener.wake_tx_ = pipefd[1];
  return listener;
}

Socket Listener::accept() {
  while (fd_ >= 0) {
    pollfd fds[2] = {{fd_, POLLIN, 0}, {wake_rx_, POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Socket();
    }
    if (fds[1].revents != 0) return Socket();  // close() wrote the wake byte.
    if ((fds[0].revents & (POLLERR | POLLNVAL | POLLHUP)) != 0) return Socket();
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return Socket();
    }
    if (endpoint_.kind == Endpoint::Kind::kTcp) set_nodelay(conn);
    return Socket(conn);
  }
  return Socket();
}

void Listener::request_stop() {
  if (wake_tx_ >= 0) {
    const std::uint8_t byte = 1;
    [[maybe_unused]] const auto ignored = ::write(wake_tx_, &byte, 1);
  }
}

void Listener::close() {
  request_stop();
  close_fds();
}

void Listener::close_fds() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    if (endpoint_.kind == Endpoint::Kind::kUnix) ::unlink(endpoint_.path.c_str());
  }
  if (wake_rx_ >= 0) {
    ::close(wake_rx_);
    wake_rx_ = -1;
  }
  if (wake_tx_ >= 0) {
    ::close(wake_tx_);
    wake_tx_ = -1;
  }
}

// --- connect -----------------------------------------------------------------

Socket connect_to(const Endpoint& endpoint) {
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) throw_errno("socket(AF_UNIX)");
    const sockaddr_un addr = make_unix_addr(endpoint.path);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      throw_errno("connect(" + endpoint.to_string() + ")");
    }
    return Socket(fd);
  }
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  addrinfo* result = nullptr;
  const std::string port = std::to_string(endpoint.port);
  const std::string host = endpoint.host.empty() ? "127.0.0.1" : endpoint.host;
  const int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &result);
  if (rc != 0)
    throw std::runtime_error("resolve(" + endpoint.to_string() + "): " + gai_strerror(rc));
  int fd = -1;
  int saved = 0;
  for (const addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC, ai->ai_protocol);
    if (fd < 0) {
      saved = errno;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    saved = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(result);
  if (fd < 0) {
    errno = saved;
    throw_errno("connect(" + endpoint.to_string() + ")");
  }
  set_nodelay(fd);
  return Socket(fd);
}

}  // namespace svt::net
