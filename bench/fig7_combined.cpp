// Reproduces Figure 7: the combined tailoring flow. Left: GM / energy / area
// after each optimisation stage -- (a) 53 -> 30 features, (b) 68-SV budget,
// (c) 9-bit features + 15-bit coefficients -- normalised to the 64-bit
// unoptimised baseline, with per-step percentages. Right: the
// homogeneous-scaling 32-bit / 16-bit pipelines for comparison.
//
// Paper landmarks: overall 12.5x energy and 16x area gain for <= 3.2% GM
// loss; the 32-bit homogeneous pipeline needs 4x more energy and 7x more
// area than the fully tailored design while losing 7% GM.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "core/experiment.hpp"
#include "core/feature_selection.hpp"
#include "core/quantize.hpp"
#include "hw/accelerator_model.hpp"

int main() {
  using namespace svt;
  const auto config = core::ExperimentConfig::from_env();
  const auto data = core::prepare_data(config);
  bench::print_banner("Figure 7: combined optimisation flow", config, data);

  const auto order = core::rank_features_by_redundancy(data.matrix.samples);
  const auto keep30 = order.keep_set(30);

  struct Stage {
    std::string name;
    core::DesignPointResult result;
  };
  std::vector<Stage> stages;

  stages.push_back({"64-bit baseline (53 feat)",
                    core::evaluate_design_point(data, config, {}, 0, std::nullopt)});
  stages.push_back({"+ feature reduction (30)",
                    core::evaluate_design_point(data, config, keep30, 0, std::nullopt)});
  // Budget at the substrate's measured knee (~100 SVs at 30 features; the
  // paper's knee was ~50-68 of a ~120-SV model -- same relative point).
  // SVT_BUDGET overrides, e.g. SVT_BUDGET=68 for the paper-literal value.
  const std::size_t budget = core::env_u64("SVT_BUDGET", 100);
  stages.push_back({"+ SV budget (" + std::to_string(budget) + ")",
                    core::evaluate_design_point(data, config, keep30, budget, std::nullopt)});
  core::QuantConfig quant;  // Dbits=9, Abits=15.
  stages.push_back({"+ bit reduction (9/15)",
                    core::evaluate_design_point(data, config, keep30, budget, quant)});

  const auto& base = stages.front().result;
  common::CsvWriter csv({"stage", "gm_pct", "energy_nj", "area_mm2", "gm_rel", "energy_rel",
                         "area_rel"});
  std::printf("%-28s %8s %12s %10s  %7s %8s %8s\n", "stage", "GM %", "energy[nJ]", "area[mm2]",
              "GM rel", "E rel", "A rel");
  for (std::size_t s = 0; s < stages.size(); ++s) {
    const auto& r = stages[s].result;
    std::printf("%-28s %8.1f %12.1f %10.4f  %7.3f %8.3f %8.3f\n", stages[s].name.c_str(),
                r.geometric_mean * 100.0, r.cost.energy.total_nj, r.cost.area.total_mm2,
                r.geometric_mean / base.geometric_mean,
                r.cost.energy.total_nj / base.cost.energy.total_nj,
                r.cost.area.total_mm2 / base.cost.area.total_mm2);
    csv.add_row(stages[s].name, r.geometric_mean * 100.0, r.cost.energy.total_nj,
                r.cost.area.total_mm2, r.geometric_mean / base.geometric_mean,
                r.cost.energy.total_nj / base.cost.energy.total_nj,
                r.cost.area.total_mm2 / base.cost.area.total_mm2);
    if (s > 0) {
      const auto& p = stages[s - 1].result;
      std::printf("    step: GM %+.1f pts, energy %+.0f%%, area %+.0f%%\n",
                  (r.geometric_mean - p.geometric_mean) * 100.0,
                  (r.cost.energy.total_nj / p.cost.energy.total_nj - 1.0) * 100.0,
                  (r.cost.area.total_mm2 / p.cost.area.total_mm2 - 1.0) * 100.0);
    }
  }
  const auto& final = stages.back().result;
  std::printf("\noverall: %.1fx energy, %.1fx area, GM %+.1f pts  (paper: 12.5x, 16x, -3.2%%)\n",
              base.cost.energy.total_nj / final.cost.energy.total_nj,
              base.cost.area.total_mm2 / final.cost.area.total_mm2,
              (final.geometric_mean - base.geometric_mean) * 100.0);

  // Right-hand comparison: homogeneous 32-bit / 16-bit pipelines on the full
  // 53-feature, unbudgeted model. GM for 16 bits comes from the bit-accurate
  // engine; at 32 bits the engine's intermediate widths exceed what int64
  // emulation supports, and homogeneous quantisation at >= 20 bits is
  // empirically indistinguishable from float on this data, so the float GM
  // is reported (matching the paper's observation that wide homogeneous
  // pipelines recover the float accuracy while paying full hardware cost).
  std::printf("\nhomogeneous single-scale pipelines (53 features, no SV budget):\n");
  core::QuantConfig h16;
  h16.feature_bits = 16;
  h16.alpha_bits = 16;
  h16.homogeneous = true;
  const auto r16 = core::evaluate_design_point(data, config, {}, 0, h16);

  hw::PipelineConfig p32;
  p32.num_features = 53;
  p32.num_support_vectors =
      static_cast<std::size_t>(base.mean_support_vectors + 0.5);
  p32.feature_bits = 32;
  p32.alpha_bits = 32;
  const auto c32 = hw::estimate_cost(p32);

  std::printf("  16-bit: GM %5.1f%%  energy %8.1f nJ (%.2fx tailored)  area %6.4f mm2 (%.2fx)\n",
              r16.geometric_mean * 100.0, r16.cost.energy.total_nj,
              r16.cost.energy.total_nj / final.cost.energy.total_nj, r16.cost.area.total_mm2,
              r16.cost.area.total_mm2 / final.cost.area.total_mm2);
  std::printf("  32-bit: GM %5.1f%% (float-equivalent)  energy %8.1f nJ (%.2fx tailored)  "
              "area %6.4f mm2 (%.2fx)\n",
              base.geometric_mean * 100.0, c32.energy.total_nj,
              c32.energy.total_nj / final.cost.energy.total_nj, c32.area.total_mm2,
              c32.area.total_mm2 / final.cost.area.total_mm2);
  std::printf("  paper: 32-bit homogeneous costs 4x energy / 7x area vs the tailored design.\n");

  csv.add_row("homogeneous 16-bit", r16.geometric_mean * 100.0, r16.cost.energy.total_nj,
              r16.cost.area.total_mm2, r16.geometric_mean / base.geometric_mean,
              r16.cost.energy.total_nj / base.cost.energy.total_nj,
              r16.cost.area.total_mm2 / base.cost.area.total_mm2);
  csv.add_row("homogeneous 32-bit", base.geometric_mean * 100.0, c32.energy.total_nj,
              c32.area.total_mm2, 1.0, c32.energy.total_nj / base.cost.energy.total_nj,
              c32.area.total_mm2 / base.cost.area.total_mm2);
  csv.write(config.csv_dir + "/fig7_combined.csv");
  return 0;
}
