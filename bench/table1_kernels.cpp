// Reproduces Table I: classification performance of floating-point SVM
// implementations with linear, quadratic, cubic and Gaussian kernels,
// evaluated with leave-one-session-out cross-validation (Se / Sp / GM
// averaged over folds).
//
// Paper reference values:
//   Linear     Sp 75.6  Se 82.3  GM 72.9
//   Quadratic  Sp 92.3  Se 86.6  GM 86.8
//   Cubic      Sp 95.3  Se 86.6  GM 88.0
//   Gaussian   Sp 97.0  Se 79.6  GM 82.6
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "core/experiment.hpp"
#include "features/feature_types.hpp"
#include "svm/cross_validation.hpp"

int main() {
  using namespace svt;
  const auto config = core::ExperimentConfig::from_env();
  const auto data = core::prepare_data(config);
  bench::print_banner("Table I: SVM kernel comparison (float)", config, data);

  // RBF gamma by the "scale" heuristic in the *scaled* feature space the CV
  // driver trains in (z-score -> variance gain_j^2 per feature).
  std::vector<std::size_t> all_idx(data.matrix.num_features());
  for (std::size_t j = 0; j < all_idx.size(); ++j) all_idx[j] = j;
  const auto g = features::category_gains(all_idx);
  double gain2_acc = 0.0;
  for (double v : g) gain2_acc += v * v;
  const double gamma = 1.0 / gain2_acc;  // = 1 / (nfeat * mean scaled variance).

  std::vector<svm::Kernel> kernels = {
      svm::linear_kernel(),
      svm::quadratic_kernel(),
      svm::cubic_kernel(),
      svm::gaussian_kernel(gamma),
  };

  common::CsvWriter csv({"kernel", "sp_pct", "se_pct", "gm_pct", "mean_nsv"});
  std::printf("%-12s %8s %8s %8s %10s %8s\n", "SVM Kernel", "Sp %", "Se %", "GM", "mean#SV",
              "time[s]");

  std::vector<int> groups = data.groups();
  if (config.max_folds > 0) {
    for (int& g : groups) {
      if (g >= static_cast<int>(config.max_folds)) g = -1;
    }
  }

  std::vector<std::size_t> all_features(data.matrix.num_features());
  for (std::size_t j = 0; j < all_features.size(); ++j) all_features[j] = j;
  const auto gains = features::category_gains(all_features);

  for (const auto& kernel : kernels) {
    bench::Stopwatch timer;
    svm::CvOptions options;
    options.kernel = kernel;
    options.train = config.train;
    options.post_gains = gains;
    const auto cv =
        svm::cross_validate(data.matrix.samples, data.matrix.labels, groups, options);
    const double sp = cv.averages.specificity * 100.0;
    const double se = cv.averages.sensitivity * 100.0;
    const double gm = cv.averages.geometric_mean * 100.0;
    std::printf("%-12s %8.1f %8.1f %8.1f %10.1f %8.1f\n", kernel.name().c_str(), sp, se, gm,
                cv.mean_support_vectors(), timer.seconds());
    csv.add_row(kernel.name(), sp, se, gm, cv.mean_support_vectors());
  }
  csv.write(config.csv_dir + "/table1_kernels.csv");
  std::printf("\npaper:   linear 75.6/82.3/72.9  quadratic 92.3/86.6/86.8  "
              "cubic 95.3/86.6/88.0  gaussian 97.0/79.6/82.6\n");
  return 0;
}
