// Reproduces Figure 6: GM / energy / area surfaces as the feature width
// (Dbits, 7..17) and coefficient width (Abits, 13..17) vary, with the 10
// least-significant bits discarded after the dot product and the square.
// Evaluated with the *bit-accurate* integer engine on the reduced design
// (30 features, 68-SV budget), plus the paper's homogeneous-scaling
// comparison (one global feature scale, same width throughout).
//
// Paper landmarks: Dbits=9 / Abits=15 (red circle) loses ~1% GM vs float;
// GM degrades sharply toward Dbits=7; the homogeneous variant needs far
// wider words to match float (the paper quotes 64 bits, costing 2.4x energy
// and 6.2x area versus the per-feature design).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "core/experiment.hpp"
#include "core/feature_selection.hpp"
#include "core/quantize.hpp"

int main() {
  using namespace svt;
  const auto config = core::ExperimentConfig::from_env();
  const auto data = core::prepare_data(config);
  bench::print_banner("Figure 6: bit-width exploration (30 features, budgeted SVs)", config,
                      data);

  const auto order = core::rank_features_by_redundancy(data.matrix.samples);
  const auto keep = order.keep_set(30);
  // The paper budgets 68 of ~120 unbudgeted SVs. Our substrate's unbudgeted
  // models carry ~200 SVs at 30 features and their budget knee sits near
  // 100 (see fig5_sv_budget), so the default evaluates the same *relative*
  // operating point; SVT_BUDGET overrides (e.g. 68 for the literal paper
  // value).
  const std::size_t kBudget = core::env_u64("SVT_BUDGET", 100);

  // Float reference at the same design point.
  const auto float_ref = core::evaluate_design_point(data, config, keep, kBudget, std::nullopt);
  std::printf("float reference: GM %.1f%% (Se %.1f, Sp %.1f), mean #SV %.1f\n\n",
              float_ref.geometric_mean * 100.0, float_ref.sensitivity * 100.0,
              float_ref.specificity * 100.0, float_ref.mean_support_vectors);

  const std::vector<int> dbits = {7, 8, 9, 10, 11, 13, 15, 17};
  const std::vector<int> abits = {13, 15, 17};

  std::vector<core::QuantConfig> configs;
  for (int a : abits) {
    for (int d : dbits) {
      core::QuantConfig qc;
      qc.feature_bits = d;
      qc.alpha_bits = a;
      configs.push_back(qc);
    }
  }
  const auto results = core::sweep_quant_configs(data, config, keep, kBudget, configs);

  common::CsvWriter csv({"dbits", "abits", "homogeneous", "gm_pct", "energy_nj", "area_mm2"});
  std::printf("per-feature Eq.6 ranges -- GM %% (energy nJ / area mm2):\n%6s", "D\\A");
  for (int a : abits) std::printf("        Abits=%-2d        ", a);
  std::printf("\n");
  for (std::size_t di = 0; di < dbits.size(); ++di) {
    std::printf("%6d", dbits[di]);
    for (std::size_t ai = 0; ai < abits.size(); ++ai) {
      const auto& r = results[ai * dbits.size() + di];
      std::printf("  %5.1f (%7.1f/%6.4f)", r.geometric_mean * 100.0, r.cost.energy.total_nj,
                  r.cost.area.total_mm2);
      csv.add_row(dbits[di], abits[ai], 0, r.geometric_mean * 100.0, r.cost.energy.total_nj,
                  r.cost.area.total_mm2);
    }
    std::printf("%s\n", dbits[di] == 9 ? "   <-- Dbits=9 row (paper red circle at A=15)" : "");
  }

  // Homogeneous-scaling ablation: one global feature range, equal widths.
  std::printf("\nhomogeneous scaling (global range, Dbits = Abits = B):\n");
  std::vector<core::QuantConfig> homog;
  for (int b : {9, 11, 13, 15, 17}) {
    core::QuantConfig qc;
    qc.feature_bits = b;
    qc.alpha_bits = b;
    qc.homogeneous = true;
    homog.push_back(qc);
  }
  const auto hres = core::sweep_quant_configs(data, config, keep, kBudget, homog);
  for (std::size_t i = 0; i < homog.size(); ++i) {
    std::printf("  B=%2d  GM %5.1f%%  (energy %7.1f nJ, area %6.4f mm2)\n",
                homog[i].feature_bits, hres[i].geometric_mean * 100.0,
                hres[i].cost.energy.total_nj, hres[i].cost.area.total_mm2);
    csv.add_row(homog[i].feature_bits, homog[i].alpha_bits, 1,
                hres[i].geometric_mean * 100.0, hres[i].cost.energy.total_nj,
                hres[i].cost.area.total_mm2);
  }

  csv.write(config.csv_dir + "/fig6_bitwidth.csv");
  std::printf("\npaper: 9/15 bits loses ~1%% GM vs float; homogeneous scaling needs much "
              "wider words (64 bits quoted) to match.\n");
  return 0;
}
