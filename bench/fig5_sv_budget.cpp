// Reproduces Figure 5: classification performance and resource requirements
// as the support-vector budget tightens (low-norm removal + retraining,
// paper Eq. 5), at 64-bit precision on the full feature set.
//
// Paper landmarks: GM only marginally affected down to ~50 SVs, sharply
// worse after; at the ~50-SV design point GM is -1.5% for -76% energy and
// -45% area. Includes the no-retraining truncation ablation.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "core/experiment.hpp"
#include "core/sv_budget.hpp"
#include "core/tailoring.hpp"
#include "svm/cross_validation.hpp"

int main() {
  using namespace svt;
  const auto config = core::ExperimentConfig::from_env();
  const auto data = core::prepare_data(config);
  bench::print_banner("Figure 5: SV-budget sweep (64-bit pipeline)", config, data);

  common::CsvWriter csv({"budget", "gm_pct", "se_pct", "sp_pct", "mean_nsv", "energy_nj",
                         "area_mm2", "mode"});

  // Unbudgeted reference first.
  bench::Stopwatch total;
  const auto base =
      core::evaluate_design_point(data, config, /*keep=*/{}, /*sv_budget=*/0, std::nullopt);
  std::printf("%7s %8s %8s %8s %9s %12s %10s\n", "budget", "GM %", "Se %", "Sp %", "mean#SV",
              "energy[nJ]", "area[mm2]");
  std::printf("%7s %8.1f %8.1f %8.1f %9.1f %12.1f %10.4f\n", "none",
              base.geometric_mean * 100.0, base.sensitivity * 100.0, base.specificity * 100.0,
              base.mean_support_vectors, base.cost.energy.total_nj, base.cost.area.total_mm2);
  csv.add_row(0, base.geometric_mean * 100.0, base.sensitivity * 100.0,
              base.specificity * 100.0, base.mean_support_vectors, base.cost.energy.total_nj,
              base.cost.area.total_mm2, "unbudgeted");

  const std::vector<std::size_t> budgets = {160, 140, 120, 100, 80, 68, 60, 50, 40, 30, 20};
  const auto results = core::sweep_sv_budgets(data, config, /*keep=*/{}, budgets);
  for (std::size_t b = 0; b < budgets.size(); ++b) {
    const auto& r = results[b];
    const char* marker = budgets[b] == 50 ? "  <-- paper design point" : "";
    std::printf("%7zu %8.1f %8.1f %8.1f %9.1f %12.1f %10.4f%s\n", budgets[b],
                r.geometric_mean * 100.0, r.sensitivity * 100.0, r.specificity * 100.0,
                r.mean_support_vectors, r.cost.energy.total_nj, r.cost.area.total_mm2, marker);
    csv.add_row(budgets[b], r.geometric_mean * 100.0, r.sensitivity * 100.0,
                r.specificity * 100.0, r.mean_support_vectors, r.cost.energy.total_nj,
                r.cost.area.total_mm2, "retrain");
    if (budgets[b] == 50) {
      std::printf("        at 50 SVs: energy %+.0f%%, area %+.0f%%, GM %+.1f pts "
                  "(paper: -76%%, -45%%, -1.5%%)\n",
                  (r.cost.energy.total_nj / base.cost.energy.total_nj - 1.0) * 100.0,
                  (r.cost.area.total_mm2 / base.cost.area.total_mm2 - 1.0) * 100.0,
                  (r.geometric_mean - base.geometric_mean) * 100.0);
    }
  }

  // Ablation: truncate the SV set by norm *without* retraining.
  std::printf("\nablation: highest-norm truncation without retraining\n");
  for (std::size_t budget : {std::size_t{80}, std::size_t{50}}) {
    svm::CvOptions options;
    options.train = config.train;
    std::vector<std::size_t> all_idx(data.matrix.num_features());
    for (std::size_t j = 0; j < all_idx.size(); ++j) all_idx[j] = j;
    options.post_gains = features::category_gains(all_idx);
    options.transform = [budget](const svm::SvmModel& m, std::span<const std::vector<double>>,
                                 std::span<const int>) {
      return core::truncate_support_vectors(m, budget);
    };
    std::vector<int> groups = data.matrix.session_index;
    if (config.max_folds > 0) {
      for (int& g : groups) {
        if (g >= static_cast<int>(config.max_folds)) g = -1;
      }
    }
    const auto cv =
        svm::cross_validate(data.matrix.samples, data.matrix.labels, groups, options);
    std::printf("%7zu %8.1f  (vs retraining above)\n", budget,
                cv.averages.geometric_mean * 100.0);
    csv.add_row(budget, cv.averages.geometric_mean * 100.0, cv.averages.sensitivity * 100.0,
                cv.averages.specificity * 100.0, cv.mean_support_vectors(), 0.0, 0.0,
                "truncate");
  }

  csv.write(config.csv_dir + "/fig5_sv_budget.csv");
  std::printf("\ntotal %.1f s\n", total.seconds());
  return 0;
}
