// Reproduces Figure 3: the 53x53 Pearson correlation-coefficient matrix of
// the baseline feature set, whose block structure (strongly correlated PSD
// bands, partially correlated HRV/Lorentz groups) motivates the paper's
// redundancy-driven feature elimination.
//
// Prints per-category-block mean |rho| and dumps the full matrix to CSV.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "core/experiment.hpp"
#include "core/feature_selection.hpp"
#include "features/feature_types.hpp"

int main() {
  using namespace svt;
  const auto config = core::ExperimentConfig::from_env();
  const auto data = core::prepare_data(config);
  bench::print_banner("Figure 3: feature correlation matrix", config, data);

  const auto rho = core::correlation_matrix(data.matrix.samples);
  const auto& catalog = features::feature_catalog();

  // Block summary: mean |rho| within and across the four categories.
  const features::FeatureCategory cats[] = {
      features::FeatureCategory::kHrv, features::FeatureCategory::kLorentz,
      features::FeatureCategory::kAr, features::FeatureCategory::kPsd};
  std::printf("mean |Pearson| per category block (diagonal = within-group redundancy):\n");
  std::printf("%-9s", "");
  for (auto c : cats) std::printf("%9s", features::category_name(c).c_str());
  std::printf("\n");
  for (auto ca : cats) {
    std::printf("%-9s", features::category_name(ca).c_str());
    for (auto cb : cats) {
      double acc = 0.0;
      std::size_t count = 0;
      for (std::size_t i = 0; i < rho.size(); ++i) {
        for (std::size_t j = 0; j < rho.size(); ++j) {
          if (i == j) continue;
          if (catalog[i].category == ca && catalog[j].category == cb) {
            acc += std::abs(rho[i][j]);
            ++count;
          }
        }
      }
      std::printf("%9.3f", count ? acc / static_cast<double>(count) : 0.0);
    }
    std::printf("\n");
  }

  // The ten most redundant features by aggregated |rho| (the elimination
  // order's head), as the paper's Section III describes.
  const auto order = core::rank_features_by_redundancy(data.matrix.samples);
  std::printf("\nfirst features removed by the paper's iterative procedure:\n");
  for (std::size_t k = 0; k < 10 && k < order.removal_order.size(); ++k) {
    const auto j = order.removal_order[k];
    std::printf("  %2zu. #%2zu %-18s (%s)\n", k + 1, j + 1, catalog[j].name.c_str(),
                features::category_name(catalog[j].category).c_str());
  }

  // Full-matrix dump (plain stdio; the variadic CsvWriter does not fit a
  // 54-column matrix).
  {
    FILE* f = std::fopen((config.csv_dir + "/fig3_correlation.csv").c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f, "feature");
      for (const auto& info : catalog) std::fprintf(f, ",%s", info.name.c_str());
      std::fprintf(f, "\n");
      for (std::size_t i = 0; i < rho.size(); ++i) {
        std::fprintf(f, "%s", catalog[i].name.c_str());
        for (std::size_t j = 0; j < rho.size(); ++j) std::fprintf(f, ",%.6f", rho[i][j]);
        std::fprintf(f, "\n");
      }
      std::fclose(f);
      std::printf("\nfull matrix written to fig3_correlation.csv\n");
    }
  }
  std::printf("paper: PSD block strongly self-correlated; some HRV and Lorentz features "
              "mutually redundant.\n");
  return 0;
}
