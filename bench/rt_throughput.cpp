// Streaming-runtime throughput, tracked across PRs via BENCH_rt_throughput.json.
//
// Four families of measurements:
//  * kernel rates: single-window vs batched classification, float vs
//    fixed-point, in windows/second. The batched float fast path must stay
//    >= 3x the single-window float loop at 64-window batches (Release).
//  * branch-free saturation delta: the library's batched fixed-point kernel
//    (branch-free clamps) vs a reference blocked kernel whose saturation is
//    the PR-1 style branchy out-of-line call — the fixed-point batch-path
//    bottleneck named by the ROADMAP.
//  * sharded streaming: end-to-end multi-patient throughput (raw ECG ->
//    extraction -> batched classification) of ShardedStreamClassifier at
//    1/2/4 workers, in both delivery modes: flush-drain (the PR-2
//    compatibility path) and continuous sink delivery (results leave the
//    engine per classified batch; flush() is only the terminal fence).
//    Extraction + classification both run on the workers, so windows/s
//    should scale with worker count on a multi-core host (target: >= 2x at
//    4 workers; single-core machines cannot show this and the JSON records
//    the hardware concurrency for that reason). The 1-worker continuous run
//    also reports per-batch delivery-latency p50/p99 (queue entry -> sink).
//  * streaming stage breakdown at the paper's overlapping configuration
//    (180 s windows / 30 s stride, 6x sample overlap): incremental
//    extraction (telemetry-shaped 4 s rounds through push_batch, so the
//    cross-patient QRS lanes and the segment cache both engage) vs the seed
//    batch re-detection strategy, per-stage per-window feature costs (RR
//    features, EDR resample, Welch, Burg) so a regression localizes to one
//    DSP stage, the segment-cache hit rate at 6x overlap, classification
//    through the per-worker scratch path, and the continuous end-to-end
//    rate + delivery latency at 1 worker.
//  * network serving gateway: the same telemetry ward streamed over a Unix
//    domain socket loopback through net::ServeGateway by several concurrent
//    GatewayClient connections — streams sustained, ingest rate in
//    Msamples/s, round-trip windows/s (connect -> every decision received),
//    and the gateway-side decision-delivery p50/p99 (sink entry -> bytes
//    handed to the kernel). The UDS leg isolates protocol + framing +
//    thread-handoff cost from NIC behaviour.
//  * signal-quality gate + multi-workload serving: the marginal per-sample
//    cost of SignalQualityGate::scan (measured on the gate directly — at
//    tens of ns/sample an engine-throughput delta drowns in scheduler
//    noise), the annotate/suppress window counters over a dirty ward with
//    injected electrode-pop bursts (schedule-independent, so one sharded
//    pass per policy suffices), and per-workload windows/s when AF
//    screening is multiplexed next to apnea through one engine over the
//    shared per-patient substrate, vs the apnea-only baseline on the same
//    ward.
//  * ward-scale scheduler: a colliding ward (every patient id hashes to
//    shard 0) at 2 workers, static placement vs work stealing — on a
//    multi-core host stealing should recover most of the idle worker — plus
//    a saturated deadline-mode demo: an expensive delivery sink behind a
//    short blocking queue, unmanaged vs managed steady-state delivery p99
//    (final quarter of deliveries) against a fixed target, with the
//    controller's stride-widening / shedding counters. The deadline numbers
//    are recorded for the run page but not CI-gated (they depend on sleep
//    granularity); the two throughput numbers gate like the other
//    worker-scaling metrics.
//  * WFDB cohort replay: a writer-generated fixture ward replayed through
//    rt::CohortReplayer (chunked admission -> sharded engine ->
//    end-of-record flush), reported as the achieved x-real-time multiple at
//    1 and 2 workers. Each pass re-decodes the records from disk, but the
//    replayer's clock starts after decode, so the multiple covers admission
//    -> delivery of the streaming pipeline only. The fixture directory is
//    left in the CWD (bench_replay_fixture/) and uploaded with the CI bench
//    artifact so a regression can be replayed offline from the run page.
//
// CI gates on the JSON via bench/check_regression.py against the committed
// baseline in bench/baselines/ (machine-normalised; >25% regression fails;
// latency metrics gate as lower-is-better).
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <random>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/simd_dispatch.hpp"
#include "core/quantize.hpp"
#include "dsp/resample.hpp"
#include "dsp/statistics.hpp"
#include "ecg/lane_qrs.hpp"
#include "ecg/ecg_synth.hpp"
#include "ecg/qrs_detect.hpp"
#include "ecg/quality.hpp"
#include "ecg/rr_model.hpp"
#include "features/ar_features.hpp"
#include "features/extractor.hpp"
#include "features/feature_scratch.hpp"
#include "features/feature_types.hpp"
#include "features/hrv_features.hpp"
#include "features/lorentz_features.hpp"
#include "features/psd_features.hpp"
#include "fixed/fixed_point.hpp"
#include "io/cohort_fixture.hpp"
#include "net/client.hpp"
#include "net/gateway.hpp"
#include "net/socket.hpp"
#include "rt/cohort_replayer.hpp"
#include "rt/packed_kernel.hpp"
#include "rt/packed_model.hpp"
#include "rt/sharded_classifier.hpp"
#include "rt/window_extractor.hpp"
#include "rt/workload.hpp"
#include "svm/kernel.hpp"
#include "svm/model.hpp"
#include "svm/scaler.hpp"

namespace {

using namespace svt;

constexpr std::size_t kNumFeatures = 30;  // Paper's tailored design point.
constexpr std::size_t kNumSvs = 68;
constexpr std::size_t kNumWindows = 4096;

svm::SvmModel random_model(std::uint64_t seed, std::size_t nfeat = kNumFeatures) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> sv_dist(-2.0, 2.0);
  std::uniform_real_distribution<double> alpha_dist(-1.0, 1.0);
  svm::SvmModel m;
  m.kernel = svm::quadratic_kernel();
  m.support_vectors.resize(kNumSvs, std::vector<double>(nfeat));
  m.alpha_y.resize(kNumSvs);
  for (std::size_t i = 0; i < kNumSvs; ++i) {
    for (auto& v : m.support_vectors[i]) v = sv_dist(rng);
    m.alpha_y[i] = alpha_dist(rng);
  }
  m.bias = -0.25;
  return m;
}

std::vector<std::vector<double>> random_windows(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  std::vector<std::vector<double>> xs(kNumWindows, std::vector<double>(kNumFeatures));
  for (auto& row : xs)
    for (auto& v : row) v = dist(rng);
  return xs;
}

/// Run `body(iteration)` until ~budget_ms elapses; return windows/second
/// given `windows_per_iter` classified per call. Sections whose numbers feed
/// the regression gate's headline ratios pass a larger budget: on shared
/// hosts whose effective speed drifts, a longer average is the difference
/// between measuring the code and measuring the neighbour.
template <typename Body>
double measure(std::size_t windows_per_iter, Body&& body, std::size_t budget_ms = 400) {
  using clock = std::chrono::steady_clock;
  // Warm-up.
  body(0);
  std::size_t iters = 0;
  const auto start = clock::now();
  auto now = start;
  do {
    body(iters++);
    now = clock::now();
  } while (now - start < std::chrono::milliseconds(budget_ms));
  const double secs = std::chrono::duration<double>(now - start).count();
  return static_cast<double>(iters * windows_per_iter) / secs;
}

volatile double g_sink_f = 0.0;
volatile int g_sink_i = 0;

// --- Branchy-saturation reference kernel -------------------------------------
// The same blocked traversal as rt::batch_quantized_accumulators, but every
// clamp goes through an out-of-line early-return saturate — the shape the
// per-window engine used before the branch-free clamp landed. Kept here (not
// in the library) purely to measure the delta.

__attribute__((noinline)) std::int64_t branchy_saturate(std::int64_t v, std::int64_t hi,
                                                        std::int64_t lo) {
  if (v > hi) return hi;
  if (v < lo) return lo;
  return v;
}

void branchy_batch_accumulators(const rt::PackedQuantKernel& kernel, const std::int64_t* qxt,
                                std::size_t nwin, __int128* out) {
  const std::int64_t mac1_hi = fixed::max_signed_value(kernel.mac1_bits);
  const std::int64_t mac1_lo = fixed::min_signed_value(kernel.mac1_bits);
  const std::int64_t kin_hi = fixed::max_signed_value(kernel.kin_bits);
  const std::int64_t kin_lo = fixed::min_signed_value(kernel.kin_bits);
  const std::int64_t kout_hi = fixed::max_signed_value(kernel.kout_bits);
  const std::int64_t kout_lo = fixed::min_signed_value(kernel.kout_bits);
  std::int64_t acc1s[rt::kWindowBlock];
  __int128 acc2s[rt::kWindowBlock];
  for (std::size_t w0 = 0; w0 < nwin; w0 += rt::kWindowBlock) {
    const std::size_t nb = std::min(rt::kWindowBlock, nwin - w0);
    std::fill(acc2s, acc2s + nb, kernel.q_bias);
    const std::int64_t* sv_row = kernel.q_svs;
    for (std::size_t i = 0; i < kernel.nsv; ++i, sv_row += kernel.nfeat) {
      std::fill(acc1s, acc1s + nb, std::int64_t{0});
      for (std::size_t f = 0; f < kernel.nfeat; ++f) {
        const std::int64_t svv = sv_row[f];
        const int shift = kernel.product_shifts[f];
        const std::int64_t* qrow = qxt + f * nwin + w0;
        for (std::size_t b = 0; b < nb; ++b)
          acc1s[b] = branchy_saturate(acc1s[b] + ((qrow[b] * svv) >> shift), mac1_hi, mac1_lo);
      }
      const std::int64_t alpha = kernel.q_alpha_y[i];
      for (std::size_t b = 0; b < nb; ++b) {
        const std::int64_t acc1 = branchy_saturate(acc1s[b] + kernel.q_one, mac1_hi, mac1_lo);
        const std::int64_t kin =
            branchy_saturate(acc1 >> kernel.dot_truncate_bits, kin_hi, kin_lo);
        const std::int64_t square = kin * kin;
        const std::int64_t kout =
            branchy_saturate(square >> kernel.square_truncate_bits, kout_hi, kout_lo);
        acc2s[b] =
            fixed::saturate128(acc2s[b] + static_cast<__int128>(alpha) * kout, kernel.mac2_bits);
      }
    }
    std::copy(acc2s, acc2s + nb, out + w0);
  }
}

// --- Sharded end-to-end streaming --------------------------------------------

std::map<int, ecg::EcgWaveform> synth_ward(std::size_t patients, double duration_s) {
  std::map<int, ecg::EcgWaveform> ward;
  for (std::size_t p = 1; p <= patients; ++p) {
    ecg::PatientProfile profile;
    ecg::SessionEvents events;
    ecg::SessionSignalParams sp;
    sp.duration_s = duration_s;
    std::mt19937_64 rng(7000 + p);
    ward[static_cast<int>(p)] =
        ecg::synthesize_session(profile, events, sp, ecg::EcgSynthParams{}, rng);
  }
  return ward;
}

struct ShardedRun {
  double windows_per_s = 0.0;
  std::size_t windows = 0;
  double latency_p50_ms = 0.0;  ///< Per-batch delivery latency (continuous).
  double latency_p99_ms = 0.0;
};

/// Telemetry-shaped arrival: 4 s chunks, round-robin across the ward;
/// extraction + classification run on the workers while chunks arrive.
void push_ward(rt::ShardedStreamClassifier& classifier,
               const std::map<int, ecg::EcgWaveform>& ward, std::size_t chunk) {
  std::map<int, std::size_t> offsets;
  bool any_left = true;
  while (any_left) {
    any_left = false;
    for (const auto& [pid, wf] : ward) {
      std::size_t& off = offsets[pid];
      if (off >= wf.samples_mv.size()) continue;
      const std::size_t n = std::min(chunk, wf.samples_mv.size() - off);
      classifier.push_samples(pid, std::span(wf.samples_mv).subspan(off, n));
      off += n;
      if (off < wf.samples_mv.size()) any_left = true;
    }
  }
}

rt::StreamConfig ward_stream_config() {
  rt::StreamConfig config;
  config.fs_hz = 250.0;
  config.window_s = 20.0;
  config.stride_s = 10.0;
  return config;
}

/// Flush-drain mode: results leave the engine only at the terminal flush().
ShardedRun sharded_flush_rate(const std::shared_ptr<rt::ModelRegistry>& registry,
                              const std::map<int, ecg::EcgWaveform>& ward,
                              std::size_t workers) {
  const auto config = ward_stream_config();
  const std::size_t chunk = static_cast<std::size_t>(4.0 * config.fs_hz);
  using clock = std::chrono::steady_clock;
  const auto start = clock::now();
  rt::EngineOptions options;
  options.num_workers = workers;
  rt::ShardedStreamClassifier classifier(registry, config, std::move(options));
  push_ward(classifier, ward, chunk);
  const auto results = classifier.flush();
  const double secs = std::chrono::duration<double>(clock::now() - start).count();
  return {static_cast<double>(results.size()) / secs, results.size()};
}

/// Continuous mode: a sink counts results as each patient batch classifies;
/// the only flush() is the terminal fence. Also reports the per-batch
/// delivery-latency percentiles the engine records (queue entry -> sink).
/// The queue is bounded with lossless backpressure (like the scheduler
/// section, and like any deployment that must not OOM): a shallow queue
/// keeps the recycled chunk buffers cache-warm, where an unbounded one lets
/// a fast producer march the copy loop through tens of MB of cold memory.
ShardedRun continuous_rate(const std::shared_ptr<rt::ModelRegistry>& registry,
                           const std::map<int, ecg::EcgWaveform>& ward, std::size_t workers,
                           rt::StreamConfig config) {
  const std::size_t chunk = static_cast<std::size_t>(4.0 * config.fs_hz);
  using clock = std::chrono::steady_clock;
  ShardedRun run;
  double wall_s = 0.0;
  std::size_t passes = 0;
  std::size_t total_windows = 0;
  // Repeated passes with a wall-time budget (like the sched and replay
  // sections): one pass over even a multi-hour ward is only tens of
  // milliseconds of wall time, well inside scheduler noise on a busy host.
  do {
    std::atomic<std::size_t> delivered{0};
    rt::EngineOptions options;
    options.queue_capacity = 256;
    options.backpressure = rt::BackpressurePolicy::kBlock;
    options.num_workers = workers;
    options.sink = [&delivered](std::span<const rt::WindowResult> batch) {
      delivered += batch.size();
    };
    const auto start = clock::now();
    rt::ShardedStreamClassifier classifier(registry, config, std::move(options));
    push_ward(classifier, ward, chunk);
    classifier.flush();  // Fence: every pushed chunk classified and delivered.
    wall_s += std::chrono::duration<double>(clock::now() - start).count();
    run.windows = delivered.load();
    total_windows += run.windows;
    ++passes;
    const auto latencies = classifier.delivery_latencies_s();
    if (!latencies.empty()) {
      run.latency_p50_ms = dsp::percentile(latencies, 50.0) * 1e3;
      run.latency_p99_ms = dsp::percentile(latencies, 99.0) * 1e3;
    }
  } while (wall_s < 1.0);
  run.windows_per_s = static_cast<double>(total_windows) / wall_s;
  return run;
}

// --- Signal-quality gate and multi-workload serving --------------------------

/// The ward with electrode-pop bursts injected into every other patient:
/// 50-sample 8.5 mV plateaus (rail-hitting pops, far above the 4 mV
/// amplitude threshold) at three points per dirty stream, so the gate's
/// span bookkeeping engages and the window counters are non-zero.
std::map<int, ecg::EcgWaveform> synth_dirty_ward(std::size_t patients, double duration_s) {
  auto ward = synth_ward(patients, duration_s);
  bool dirty = true;
  for (auto& [pid, wf] : ward) {
    if (dirty)
      for (const double at_s : {12.0, 47.0, 83.0}) {
        const auto start = static_cast<std::size_t>(at_s * wf.fs_hz);
        const auto stop = std::min(start + 50, wf.samples_mv.size());
        for (std::size_t s = start; s < stop; ++s) wf.samples_mv[s] = 8.5;
      }
    dirty = !dirty;
  }
  return ward;
}

struct QualityRun {
  double gate_ns_per_sample = 0.0;       ///< Marginal cost of scan() per sample.
  std::uint64_t windows_annotated = 0;   ///< Annotate-policy pass over the ward.
  std::uint64_t windows_suppressed = 0;  ///< Suppress-policy pass, same ward.
  std::uint64_t artifact_spans = 0;
  std::uint64_t rr_outliers = 0;
};

QualityRun quality_gate_run(const std::shared_ptr<rt::ModelRegistry>& registry,
                            const std::map<int, ecg::EcgWaveform>& dirty_ward) {
  QualityRun run;
  // Per-sample scan cost, measured on the gate directly with telemetry-shaped
  // 4 s chunks over one dirty stream. A fresh gate per pass keeps the span
  // list replaying identically (spans are appended at the tail and scan never
  // searches them, so the list's length does not feed back into the cost).
  {
    const auto& wf = dirty_ward.begin()->second;
    ecg::QualityConfig qc;
    qc.enable = true;
    const auto chunk = static_cast<std::size_t>(4.0 * wf.fs_hz);
    using clock = std::chrono::steady_clock;
    double wall_s = 0.0;
    std::uint64_t scanned = 0;
    do {
      ecg::SignalQualityGate gate(qc, wf.fs_hz);
      const auto start = clock::now();
      for (std::size_t off = 0; off < wf.samples_mv.size(); off += chunk) {
        const std::size_t n = std::min(chunk, wf.samples_mv.size() - off);
        gate.scan(std::span(wf.samples_mv).subspan(off, n), static_cast<std::int64_t>(off));
      }
      wall_s += std::chrono::duration<double>(clock::now() - start).count();
      scanned += wf.samples_mv.size();
      g_sink_i = static_cast<int>(gate.stats().artifact_hits);
    } while (wall_s < 0.3);
    run.gate_ns_per_sample = wall_s / static_cast<double>(scanned) * 1e9;
  }
  // Window accounting: the gate's spans and flags are chunk- and
  // schedule-independent, so a single 2-worker pass per policy records the
  // exact counters any worker count would produce.
  for (const auto policy : {ecg::QualityPolicy::kAnnotate, ecg::QualityPolicy::kSuppress}) {
    auto config = ward_stream_config();
    config.quality.enable = true;
    config.quality.policy = policy;
    rt::EngineOptions options;
    options.num_workers = 2;
    rt::ShardedStreamClassifier classifier(registry, config, std::move(options));
    push_ward(classifier, dirty_ward, static_cast<std::size_t>(4.0 * config.fs_hz));
    classifier.flush();
    const auto qs = classifier.quality_stats();
    if (policy == ecg::QualityPolicy::kAnnotate) {
      run.windows_annotated = qs.windows_annotated;
      run.artifact_spans = qs.artifact_spans;
      run.rr_outliers = qs.rr_outliers;
    } else {
      run.windows_suppressed = qs.windows_suppressed;
    }
  }
  return run;
}

struct AfRun {
  double apnea_only_wps = 0.0;  ///< Single-workload baseline on this ward.
  double dual_total_wps = 0.0;  ///< Both workloads through one engine.
  double dual_apnea_wps = 0.0;  ///< Apnea results/s within the dual run.
  double dual_af_wps = 0.0;     ///< AF results/s within the dual run.
  std::size_t af_windows = 0;   ///< AF windows per pass.
};

/// Apnea-only vs apnea+AF dual-workload serving on the same ward: the AF
/// stage rides the per-patient substrate (beat ring, RR) the apnea pipeline
/// already computes, so the dual run's total windows/s should approach 2x
/// the baseline rather than paying full extraction twice.
AfRun af_dual_workload_rate(const std::map<int, ecg::EcgWaveform>& ward, std::size_t workers) {
  AfRun run;
  const auto apnea_only = std::make_shared<rt::ModelRegistry>(rt::synthetic_full_feature_model());
  run.apnea_only_wps =
      continuous_rate(apnea_only, ward, workers, ward_stream_config()).windows_per_s;

  auto config = ward_stream_config();
  config.workloads = {rt::apnea_workload(), rt::af_workload()};
  auto registry = std::make_shared<rt::ModelRegistry>();
  registry->set_default(0, rt::synthetic_full_feature_model());
  registry->set_default(1, rt::synthetic_af_model());
  const std::size_t chunk = static_cast<std::size_t>(4.0 * config.fs_hz);
  using clock = std::chrono::steady_clock;
  double wall_s = 0.0;
  std::size_t apnea_total = 0;
  std::size_t af_total = 0;
  do {
    std::atomic<std::size_t> apnea{0};
    std::atomic<std::size_t> af{0};
    rt::EngineOptions options;
    options.num_workers = workers;
    options.queue_capacity = 256;
    options.backpressure = rt::BackpressurePolicy::kBlock;
    options.sink = [&apnea, &af](std::span<const rt::WindowResult> batch) {
      for (const auto& r : batch) (r.workload == 0 ? apnea : af) += 1;
    };
    const auto start = clock::now();
    rt::ShardedStreamClassifier classifier(registry, config, std::move(options));
    push_ward(classifier, ward, chunk);
    classifier.flush();
    wall_s += std::chrono::duration<double>(clock::now() - start).count();
    run.af_windows = af.load();
    apnea_total += apnea.load();
    af_total += af.load();
  } while (wall_s < 1.0);
  run.dual_apnea_wps = static_cast<double>(apnea_total) / wall_s;
  run.dual_af_wps = static_cast<double>(af_total) / wall_s;
  run.dual_total_wps = static_cast<double>(apnea_total + af_total) / wall_s;
  return run;
}

// --- Ward-scale scheduler: work stealing and deadline mode -------------------

/// A ward whose patient ids all hash to shard 0 of `workers` under the
/// default Fibonacci placement — the admission-order pathology the scheduler
/// exists for. Static hashing leaves every other worker idle, so any
/// throughput recovered on a multi-core host is attributable to stealing.
std::map<int, ecg::EcgWaveform> synth_colliding_ward(std::size_t patients, double duration_s,
                                                     std::size_t workers) {
  std::map<int, ecg::EcgWaveform> ward;
  std::size_t made = 0;
  for (int pid = 1; made < patients; ++pid) {
    if (rt::fibonacci_shard(pid, workers) != 0) continue;
    ecg::PatientProfile profile;
    ecg::SessionEvents events;
    ecg::SessionSignalParams sp;
    sp.duration_s = duration_s;
    std::mt19937_64 rng(7100 + made);
    ward[pid] = ecg::synthesize_session(profile, events, sp, ecg::EcgSynthParams{}, rng);
    ++made;
  }
  return ward;
}

struct SchedRun {
  double windows_per_s = 0.0;
  std::size_t windows = 0;  ///< Per pass.
  std::size_t passes = 0;
  rt::SchedulerStats sched;  ///< From the final pass.
};

/// Colliding-ward throughput with stealing on or off. The shard queues are
/// short and blocking, so the producer is throttled to pipeline speed and
/// the hot shard keeps a visible backlog for idle workers to steal from
/// while chunks still arrive (a flush fence pauses steal scans, so all the
/// stealing happens during the push phase — which is also when it matters).
/// Fresh engine per pass: placement and the steal schedule replay from
/// scratch every time.
SchedRun sched_ward_rate(const std::shared_ptr<rt::ModelRegistry>& registry,
                         const std::map<int, ecg::EcgWaveform>& ward, std::size_t workers,
                         bool steal) {
  const auto config = ward_stream_config();
  const std::size_t chunk = static_cast<std::size_t>(4.0 * config.fs_hz);
  SchedRun run;
  double wall_s = 0.0;
  std::size_t total_windows = 0;
  using clock = std::chrono::steady_clock;
  do {
    rt::EngineOptions options;
    options.num_workers = workers;
    options.queue_capacity = 16;
    options.backpressure = rt::BackpressurePolicy::kBlock;
    options.stealing.enable = steal;
    options.stealing.min_backlog = 2;
    std::atomic<std::size_t> delivered{0};
    options.sink = [&delivered](std::span<const rt::WindowResult> batch) {
      delivered += batch.size();
    };
    const auto start = clock::now();
    rt::ShardedStreamClassifier classifier(registry, config, std::move(options));
    push_ward(classifier, ward, chunk);
    classifier.flush();
    wall_s += std::chrono::duration<double>(clock::now() - start).count();
    run.windows = delivered.load();
    run.sched = classifier.scheduler_stats();
    total_windows += run.windows;
    ++run.passes;
  } while (wall_s < 0.3);
  run.windows_per_s = static_cast<double>(total_windows) / wall_s;
  return run;
}

struct DeadlineRun {
  double steady_p99_ms = 0.0;  ///< p99 over the final quarter of deliveries.
  std::size_t windows = 0;
  rt::SchedulerStats sched;
  std::size_t shed_chunks = 0;
};

/// Saturated single worker behind an expensive delivery sink (simulated
/// alarm fan-out: a fixed per-window cost downstream of classification) and
/// a short blocking queue. Unmanaged, delivery latency settles at roughly
/// queue_capacity x per-chunk service time; the deadline controller widens
/// the stride (fewer windows per chunk, so less sink work) and finally
/// sheds, pulling the tail back under the target. The steady-state p99 is
/// taken over the final quarter of deliveries for BOTH runs: the whole-run
/// p99 would charge the managed run for the pre-engagement transient the
/// controller needs a few polls to observe.
DeadlineRun deadline_ward_rate(const std::shared_ptr<rt::ModelRegistry>& registry,
                               const std::map<int, ecg::EcgWaveform>& ward,
                               double target_p99_s) {
  rt::StreamConfig config;
  config.fs_hz = 250.0;
  config.window_s = 8.0;
  config.stride_s = 2.0;  // One window per 2 s chunk once warm.
  const std::size_t chunk = static_cast<std::size_t>(config.stride_s * config.fs_hz);
  rt::EngineOptions options;
  options.num_workers = 1;
  options.queue_capacity = 16;
  options.backpressure = rt::BackpressurePolicy::kBlock;
  options.deadline.target_p99_s = target_p99_s;  // 0 = unmanaged reference run.
  options.deadline.poll_interval_s = 0.005;
  std::atomic<std::size_t> delivered{0};
  options.sink = [&delivered](std::span<const rt::WindowResult> batch) {
    delivered += batch.size();
    std::this_thread::sleep_for(std::chrono::microseconds(300) * batch.size());
  };
  rt::ShardedStreamClassifier classifier(registry, config, std::move(options));
  push_ward(classifier, ward, chunk);
  classifier.flush();
  DeadlineRun run;
  run.windows = delivered.load();
  run.sched = classifier.scheduler_stats();
  run.shed_chunks = run.sched.shed_chunks;
  const auto latencies = classifier.delivery_latencies_s();
  if (!latencies.empty()) {
    // The reservoir is in append order below its 4096 capacity (one shard,
    // far fewer deliveries), so the tail IS the latest deliveries.
    const std::size_t quarter = std::max<std::size_t>(latencies.size() / 4, 1);
    const std::vector<double> tail(latencies.end() - static_cast<std::ptrdiff_t>(quarter),
                                   latencies.end());
    run.steady_p99_ms = dsp::percentile(tail, 99.0) * 1e3;
  }
  return run;
}

// --- Streaming stage breakdown at the paper's overlapping stride -------------

rt::StreamConfig overlap_stream_config() {
  rt::StreamConfig config;
  config.fs_hz = 250.0;
  config.window_s = 180.0;  // The paper's 3-minute analysis window...
  config.stride_s = 30.0;   // ...hopped every 30 s: 6x sample overlap.
  return config;
}

struct StageRates {
  std::size_t windows = 0;       ///< Windows emitted by the incremental path.
  std::size_t ref_windows = 0;   ///< Windows emitted by the batch reference.
  double extract_wps = 0.0;
  double extract_ref_wps = 0.0;  ///< Seed-style re-detection per window.
  double classify_wps = 0.0;
  double stage_rr_us = 0.0;     ///< HRV + Lorentz on the window's RR series.
  double stage_edr_us = 0.0;    ///< Beat series -> uniform EDR grid resample.
  double stage_welch_us = 0.0;  ///< Welch PSD + band summary on the EDR.
  double stage_burg_us = 0.0;   ///< Burg AR fit + pole features on the EDR.
  features::SegmentCacheStats cache;  ///< From one extraction pass.
};

/// Extraction only: incremental WindowExtractor over the ward, counting sink.
StageRates stage_breakdown(const std::shared_ptr<rt::ModelRegistry>& registry,
                           const std::map<int, ecg::EcgWaveform>& ward,
                           const rt::StreamConfig& config) {
  StageRates rates;

  // Dry pass: count emitted windows and keep their raw features for the
  // classify-only stage.
  std::vector<std::vector<double>> raw_windows;
  {
    rt::WindowExtractor extractor(config);
    for (const auto& [pid, wf] : ward)
      extractor.push_samples(pid, wf.samples_mv, [&raw_windows](rt::ExtractedWindow&& w) {
        const auto features = w.features_view();
        raw_windows.emplace_back(features.begin(), features.end());
      });
  }
  rates.windows = raw_windows.size();
  if (rates.windows == 0) return rates;  // Degenerate ward: nothing to rate.

  // Telemetry-shaped arrival, matching the e2e and lane sections: 4 s chunks
  // round-robin across the ward through push_batch, so the cross-patient QRS
  // lanes engage. (Pushing each patient's full record back to back would run
  // the lane engine at occupancy 1 — the detector's scalar tail — a shape no
  // multi-patient deployment has; the emitted windows are bit-identical
  // either way.)
  const std::size_t chunk = static_cast<std::size_t>(4.0 * config.fs_hz);
  const auto extract_pass = [&](rt::WindowExtractor& extractor) {
    double acc = 0.0;
    const auto sink = [&acc](rt::ExtractedWindow&& w) { acc += w.raw_features[0]; };
    std::map<int, std::size_t> offsets;
    std::vector<rt::WindowExtractor::PatientChunk> chunks;
    bool any_left = true;
    while (any_left) {
      any_left = false;
      chunks.clear();
      for (const auto& [pid, wf] : ward) {
        std::size_t& off = offsets[pid];
        if (off >= wf.samples_mv.size()) continue;
        const std::size_t n = std::min(chunk, wf.samples_mv.size() - off);
        chunks.push_back({pid, std::span(wf.samples_mv).subspan(off, n)});
        off += n;
        if (off < wf.samples_mv.size()) any_left = true;
      }
      if (!chunks.empty()) extractor.push_batch(chunks, sink);
    }
    g_sink_f = acc;
  };
  rates.extract_wps = measure(
      rates.windows,
      [&](std::size_t) {
        rt::WindowExtractor extractor(config);
        extract_pass(extractor);
      },
      1500);
  {
    rt::WindowExtractor extractor(config);  // Uncounted pass: hit-rate read.
    extract_pass(extractor);
    rates.cache = extractor.cache_stats();
  }

  // The seed extraction strategy at the same configuration: copy each
  // window's samples and re-run the whole batch Pan-Tompkins chain + the
  // allocating feature path on it — the O(window/stride) re-processing the
  // incremental detector removes.
  const auto window = static_cast<std::size_t>(config.window_s * config.fs_hz);
  const auto stride = static_cast<std::size_t>(config.stride_s * config.fs_hz);
  const auto batch_pass = [&]() -> std::size_t {
    std::size_t emitted = 0;
    double acc = 0.0;
    for (const auto& entry : ward) {
      const auto& wf = entry.second;
      for (std::size_t start = 0; start + window <= wf.samples_mv.size(); start += stride) {
        ecg::EcgWaveform slice;
        slice.fs_hz = config.fs_hz;
        slice.samples_mv.assign(
            wf.samples_mv.begin() + static_cast<std::ptrdiff_t>(start),
            wf.samples_mv.begin() + static_cast<std::ptrdiff_t>(start + window));
        const auto qrs = ecg::detect_qrs(slice);
        if (qrs.size() < config.min_beats || qrs.size() < 2) continue;
        const auto feats =
            features::extract_features(qrs.to_rr_series(), qrs.to_edr(config.edr_fs_hz));
        acc += feats[0];
        ++emitted;
      }
    }
    g_sink_f = acc;
    return emitted;
  };
  rates.ref_windows = batch_pass();
  if (rates.ref_windows > 0)
    rates.extract_ref_wps = measure(rates.ref_windows, [&](std::size_t) { batch_pass(); });

  // Classification only: the serving front half (select + scale) plus the
  // batched fixed-point kernel over the pre-extracted raw windows, through
  // the per-worker scratch path the sharded engine uses.
  const auto model = registry->resolve(1);
  std::vector<std::vector<double>> rows(raw_windows.size());
  rt::KernelScratch kernel_scratch;
  std::vector<double> values;
  rates.classify_wps = measure(
      raw_windows.size(),
      [&](std::size_t) {
        for (std::size_t k = 0; k < raw_windows.size(); ++k)
          model->prepare_row(raw_windows[k], rows[k]);
        model->quantized()->dequantized_decisions(rows, kernel_scratch, values);
        g_sink_f = values[0];
      },
      1200);

  // Per-stage per-window feature costs on a representative window (the
  // batch-detected first window of the first patient), through the span
  // kernels the streaming path runs — the from-scratch work a segment-cache
  // miss pays once per stride. A regression in one DSP stage shows up here
  // by name before it blurs into the aggregate extract rate.
  const auto& head_wf = ward.begin()->second;
  ecg::EcgWaveform head;
  head.fs_hz = config.fs_hz;
  head.samples_mv.assign(head_wf.samples_mv.begin(),
                         head_wf.samples_mv.begin() + static_cast<std::ptrdiff_t>(window));
  const auto qrs = ecg::detect_qrs(head);
  const auto rr = qrs.to_rr_series();
  const auto edr = qrs.to_edr(config.edr_fs_hz);
  features::FeatureScratch scratch;
  std::array<double, features::kNumHrvFeatures + features::kNumLorentzFeatures> rr_out{};
  rates.stage_rr_us = 1e6 / measure(1, [&](std::size_t) {
    features::compute_hrv_features(rr.rr_s, scratch,
                                   std::span(rr_out).first(features::kNumHrvFeatures));
    features::compute_lorentz_features(rr.rr_s, scratch,
                                       std::span(rr_out).subspan(features::kNumHrvFeatures));
    g_sink_f = rr_out[0];
  });
  double edr_start = 0.0;
  std::vector<double> edr_buf;
  rates.stage_edr_us = 1e6 / measure(1, [&](std::size_t) {
    dsp::resample_linear_into(qrs.r_peak_times_s, qrs.r_amplitudes_mv, config.edr_fs_hz,
                              edr_start, edr_buf);
    g_sink_f = edr_buf[0];
  });
  std::array<double, features::kNumPsdFeatures> psd_out{};
  rates.stage_welch_us = 1e6 / measure(1, [&](std::size_t) {
    features::compute_psd_features(edr.values, config.edr_fs_hz, scratch, psd_out);
    g_sink_f = psd_out[0];
  });
  std::array<double, features::kNumArFeatures> ar_out{};
  rates.stage_burg_us = 1e6 / measure(1, [&](std::size_t) {
    features::compute_ar_features(edr.values, scratch, ar_out);
    g_sink_f = ar_out[0];
  });
  return rates;
}

// --- Lane-parallel extraction ------------------------------------------------

struct LaneRun {
  double wps = 0.0;
  std::size_t windows = 0;
  double vector_fraction = 0.0;  ///< Share of samples stepped in SIMD lockstep.
};

/// Extraction-only rate through WindowExtractor::push_batch with `patients`
/// concurrent same-rate streams arriving in 4 s telemetry rounds, at the
/// pipeline's current dispatch tier (the caller forces kScalar for the
/// reference runs). The vector fraction is lane occupancy: 1 minus the
/// scalar-tail share of detector samples.
LaneRun lane_extract_rate(const std::map<int, ecg::EcgWaveform>& ward, std::size_t patients,
                          const rt::StreamConfig& config) {
  std::vector<int> pids;
  std::vector<const std::vector<double>*> streams;
  for (const auto& [pid, wf] : ward) {
    if (pids.size() == patients) break;
    pids.push_back(pid);
    streams.push_back(&wf.samples_mv);
  }
  const std::size_t chunk = static_cast<std::size_t>(4.0 * config.fs_hz);

  LaneRun run;
  const auto pass = [&]() -> std::size_t {
    rt::WindowExtractor extractor(config);
    double acc = 0.0;
    std::size_t emitted = 0;
    const auto sink = [&](rt::ExtractedWindow&& w) {
      acc += w.raw_features[0];
      ++emitted;
    };
    std::vector<std::size_t> off(pids.size(), 0);
    std::vector<rt::WindowExtractor::PatientChunk> chunks;
    bool any_left = true;
    while (any_left) {
      any_left = false;
      chunks.clear();
      for (std::size_t p = 0; p < pids.size(); ++p) {
        if (off[p] >= streams[p]->size()) continue;
        const std::size_t n = std::min(chunk, streams[p]->size() - off[p]);
        chunks.push_back({pids[p], std::span(*streams[p]).subspan(off[p], n)});
        off[p] += n;
        if (off[p] < streams[p]->size()) any_left = true;
      }
      if (!chunks.empty()) extractor.push_batch(chunks, sink);
    }
    const std::uint64_t vec = extractor.lane_vector_samples();
    const std::uint64_t total = vec + extractor.lane_scalar_samples();
    run.vector_fraction = total ? static_cast<double>(vec) / static_cast<double>(total) : 0.0;
    g_sink_f = acc;
    return emitted;
  };
  run.windows = pass();
  if (run.windows == 0) return run;
  run.wps = measure(run.windows, [&](std::size_t) { pass(); });
  return run;
}

// --- Network serving gateway -------------------------------------------------

struct NetRun {
  std::size_t streams = 0;        ///< Concurrent patient streams sustained.
  std::size_t windows = 0;        ///< Decisions received per pass.
  std::size_t passes = 0;
  double ingest_msamples_s = 0.0;
  double round_trip_wps = 0.0;    ///< connect -> every decision received.
  double delivery_p50_ms = 0.0;   ///< Gateway sink entry -> send() handed off.
  double delivery_p99_ms = 0.0;
};

/// Loopback serving: the ward streamed through a UDS ServeGateway by
/// `connections` concurrent GatewayClients (patients dealt round-robin),
/// 4 s chunks, as fast as possible. Each pass covers connect -> finish()
/// — finish() blocks on the gateway's kStats answer, which it sends only
/// after fencing the engine, so the clock stops with every decision
/// delivered. Like the replay bench, passes repeat until ~0.4 s of wall
/// time accumulates.
NetRun net_gateway_rate(const std::shared_ptr<rt::ModelRegistry>& registry,
                        const std::map<int, ecg::EcgWaveform>& ward, std::size_t workers,
                        std::size_t connections) {
  const auto config = ward_stream_config();
  net::GatewayOptions options;
  options.num_workers = workers;
  net::ServeGateway gateway(registry, config, options);
  const auto endpoint = gateway.add_listener(net::Endpoint::unix_path(
      "/tmp/svt_bench_gateway_" + std::to_string(::getpid()) + ".sock"));
  gateway.start();

  // Deal the ward round-robin across the connections.
  std::vector<std::vector<int>> pids(connections);
  std::vector<std::vector<const std::vector<double>*>> samples(connections);
  std::size_t total_samples = 0;
  {
    std::size_t i = 0;
    for (const auto& [pid, wf] : ward) {
      pids[i % connections].push_back(pid);
      samples[i % connections].push_back(&wf.samples_mv);
      total_samples += wf.samples_mv.size();
      ++i;
    }
  }
  const std::size_t chunk = static_cast<std::size_t>(4.0 * config.fs_hz);

  NetRun run;
  run.streams = ward.size();
  using clock = std::chrono::steady_clock;
  const auto start = clock::now();
  double secs = 0.0;
  std::size_t total_windows = 0;
  do {
    std::atomic<std::size_t> delivered{0};
    std::vector<std::thread> drivers;
    drivers.reserve(connections);
    for (std::size_t c = 0; c < connections; ++c) {
      drivers.emplace_back([&, c] {
        net::GatewayClient client(endpoint);
        if (!client.hello_ack()) return;
        for (const int pid : pids[c]) client.open_stream(pid, config.fs_hz);
        std::vector<std::size_t> offsets(pids[c].size(), 0);
        bool any_left = !pids[c].empty();
        while (any_left) {
          any_left = false;
          for (std::size_t p = 0; p < pids[c].size(); ++p) {
            const auto& mv = *samples[c][p];
            std::size_t& off = offsets[p];
            if (off >= mv.size()) continue;
            const std::size_t n = std::min(chunk, mv.size() - off);
            client.send_samples(pids[c][p], std::span(mv).subspan(off, n));
            off += n;
            if (off < mv.size()) any_left = true;
          }
        }
        for (const int pid : pids[c]) client.end_stream(pid);
        if (client.finish()) delivered += client.decisions().size();
      });
    }
    for (auto& t : drivers) t.join();
    run.windows = delivered.load();
    total_windows += run.windows;
    ++run.passes;
    secs = std::chrono::duration<double>(clock::now() - start).count();
  } while (secs < 0.4);

  run.ingest_msamples_s =
      static_cast<double>(run.passes * total_samples) / secs / 1e6;
  run.round_trip_wps = static_cast<double>(total_windows) / secs;
  const auto latencies = gateway.delivery_latencies_s();
  if (!latencies.empty()) {
    run.delivery_p50_ms = dsp::percentile(latencies, 50.0) * 1e3;
    run.delivery_p99_ms = dsp::percentile(latencies, 99.0) * 1e3;
  }
  gateway.stop();
  return run;
}

}  // namespace

int main() {
  const auto model = random_model(7);
  const auto windows = random_windows(11);
  const rt::PackedModel packed(model);
  core::QuantConfig qc;  // 9-bit features / 15-bit alphas (paper Fig. 6/7).
  const auto qmodel = core::QuantizedModel::build(model, qc);

  std::printf("== rt_throughput ==\n");
  std::printf("model: %zu SVs x %zu features (quadratic kernel), %zu test windows\n\n", kNumSvs,
              kNumFeatures, kNumWindows);

  // Ward fixtures are synthesized up front so the measured sections run back
  // to back: on hosts with time-varying performance (shared/virtualised
  // CPUs), a minute of synthesis between the normaliser and a gated section
  // lets the machine drift into a different speed phase and skews the
  // machine-normalised ratios the regression gate compares.
  const auto ward = synth_ward(16, 120.0);
  // 2400 s streams: long enough that the segment cache's steady-state reuse
  // (5 of 6 chunks per window, minus the per-stream warm-up misses)
  // dominates the measured hit rate, as it does on a running ward.
  const auto overlap_ward = synth_ward(4, 2400.0);
  const auto dirty_ward = synth_dirty_ward(8, 120.0);

  const double float_single = measure(
      kNumWindows,
      [&](std::size_t) {
        double acc = 0.0;
        for (const auto& x : windows) acc += model.decision_value(x);
        g_sink_f = acc;
      },
      1200);  // The gate's machine normaliser: worth a longer average.

  std::vector<double> out(kNumWindows);
  const auto batched_rate = [&](std::size_t batch) {
    return measure(kNumWindows, [&, batch](std::size_t) {
      for (std::size_t w0 = 0; w0 < kNumWindows; w0 += batch) {
        const std::size_t n = std::min(batch, kNumWindows - w0);
        packed.decision_values(std::span(windows).subspan(w0, n),
                               std::span(out).subspan(w0, n));
      }
      g_sink_f = out[0];
    });
  };
  const double float_batch64 = batched_rate(64);
  const double float_batch256 = batched_rate(256);

  const double fixed_single = measure(kNumWindows, [&](std::size_t) {
    int acc = 0;
    for (const auto& x : windows) acc += qmodel.classify(x);
    g_sink_i = acc;
  });
  const auto fixed_batched_rate = [&](std::size_t batch) {
    return measure(kNumWindows, [&, batch](std::size_t) {
      int acc = 0;
      for (std::size_t w0 = 0; w0 < kNumWindows; w0 += batch) {
        const std::size_t n = std::min(batch, kNumWindows - w0);
        const auto labels = qmodel.classify_batch(std::span(windows).subspan(w0, n));
        acc += labels[0];
      }
      g_sink_i = acc;
    });
  };
  const double fixed_batch64 = fixed_batched_rate(64);

  // Branch-free vs branchy saturation: the SAME blocked traversal over the
  // SAME pre-quantised feature-major batch and packed tables; only the clamp
  // strategy differs, so the ratio isolates the saturation cost.
  rt::PackedQuantKernel kernel;
  kernel.nfeat = qmodel.num_features();
  kernel.nsv = qmodel.num_support_vectors();
  std::vector<std::int64_t> qxt(kNumWindows * kernel.nfeat);
  for (std::size_t w = 0; w < kNumWindows; ++w) {
    const auto qx = qmodel.quantize_input(windows[w]);
    for (std::size_t f = 0; f < kernel.nfeat; ++f) qxt[f * kNumWindows + w] = qx[f];
  }
  // Rebuild the packed tables from the model's published properties (the
  // same quantisers build() uses).
  const auto& ranges = qmodel.feature_ranges();
  std::vector<int> shifts(kernel.nfeat);
  int rmax = ranges[0];
  for (int r : ranges) rmax = std::max(rmax, r);
  for (std::size_t j = 0; j < kernel.nfeat; ++j) shifts[j] = 2 * (rmax - ranges[j]);
  std::vector<std::int64_t> qsvs(kernel.nsv * kernel.nfeat);
  for (std::size_t i = 0; i < kernel.nsv; ++i)
    for (std::size_t j = 0; j < kernel.nfeat; ++j) {
      const fixed::QuantFormat fmt{qmodel.config().feature_bits, ranges[j]};
      qsvs[i * kernel.nfeat + j] = fmt.quantize(model.support_vectors[i][j]);
    }
  const fixed::QuantFormat alpha_fmt{qmodel.config().alpha_bits,
                                     qmodel.global_alpha_range_log2()};
  std::vector<std::int64_t> qalpha(kernel.nsv);
  for (std::size_t i = 0; i < kernel.nsv; ++i) qalpha[i] = alpha_fmt.quantize(model.alpha_y[i]);
  kernel.q_svs = qsvs.data();
  kernel.q_alpha_y = qalpha.data();
  kernel.product_shifts = shifts.data();
  kernel.q_one = 0;  // coef0 scale detail: irrelevant to the saturation cost.
  kernel.q_bias = 0;
  kernel.mac1_bits = qmodel.pipeline().mac1_accumulator_bits();
  kernel.kin_bits = qmodel.pipeline().kernel_input_bits();
  kernel.kout_bits = qmodel.pipeline().kernel_output_bits();
  kernel.mac2_bits = std::min(126, qmodel.pipeline().mac2_accumulator_bits());
  kernel.dot_truncate_bits = qmodel.config().dot_truncate_bits;
  kernel.square_truncate_bits = qmodel.config().square_truncate_bits;
  std::vector<__int128> accs(kNumWindows);
  const double kernel_branchfree = measure(kNumWindows, [&](std::size_t) {
    rt::batch_quantized_accumulators(kernel, qxt.data(), kNumWindows, accs.data());
    g_sink_i = static_cast<int>(accs[0] > 0);
  });
  const double kernel_branchy = measure(kNumWindows, [&](std::size_t) {
    branchy_batch_accumulators(kernel, qxt.data(), kNumWindows, accs.data());
    g_sink_i = static_cast<int>(accs[0] > 0);
  });

  std::printf("%-44s %14.0f windows/s\n", "float  single-window loop", float_single);
  std::printf("%-44s %14.0f windows/s  (%.2fx single)\n", "float  batched (64-window batches)",
              float_batch64, float_batch64 / float_single);
  std::printf("%-44s %14.0f windows/s  (%.2fx single)\n", "float  batched (256-window batches)",
              float_batch256, float_batch256 / float_single);
  std::printf("%-44s %14.0f windows/s\n", "fixed  single-window loop", fixed_single);
  std::printf("%-44s %14.0f windows/s  (%.2fx single)\n", "fixed  batched (64-window batches)",
              fixed_batch64, fixed_batch64 / fixed_single);
  std::printf("%-44s %14.0f windows/s\n", "fixed  kernel only, branch-free saturate",
              kernel_branchfree);
  std::printf("%-44s %14.0f windows/s  (branch-free is %.2fx)\n",
              "fixed  kernel only, branchy saturate", kernel_branchy,
              kernel_branchfree / kernel_branchy);

  // --- Sharded end-to-end streaming ------------------------------------------
  const std::size_t hw_threads = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  // The ward benches need the extraction + classification *path*, not a
  // trained detector: the deterministic full-feature serving model (shared
  // with the replay fixtures and examples) keeps them training-free.
  auto registry = std::make_shared<rt::ModelRegistry>(rt::synthetic_full_feature_model());
  std::printf("\nsharded streaming: 16 patients x 120 s ECG @ 250 Hz, 20 s windows / 10 s stride"
              "\n(extraction + batched classification; host has %zu hardware threads)\n",
              hw_threads);
  std::map<std::size_t, ShardedRun> sharded;
  std::printf("flush-drain mode (results at the terminal flush):\n");
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    sharded[workers] = sharded_flush_rate(registry, ward, workers);
    std::printf("  %zu worker%s: %8.1f windows/s  (%zu windows, %.2fx 1-worker)\n", workers,
                workers == 1 ? " " : "s", sharded[workers].windows_per_s,
                sharded[workers].windows,
                sharded[workers].windows_per_s / sharded[1].windows_per_s);
  }
  const double scaling_4w = sharded[4].windows_per_s / sharded[1].windows_per_s;

  std::map<std::size_t, ShardedRun> continuous;
  std::printf("continuous mode (per-batch sink delivery, classification on the workers):\n");
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    continuous[workers] = continuous_rate(registry, ward, workers, ward_stream_config());
    std::printf("  %zu worker%s: %8.1f windows/s  (%zu windows, %.2fx 1-worker)\n", workers,
                workers == 1 ? " " : "s", continuous[workers].windows_per_s,
                continuous[workers].windows,
                continuous[workers].windows_per_s / continuous[1].windows_per_s);
  }
  const double continuous_scaling_4w =
      continuous[4].windows_per_s / continuous[1].windows_per_s;
  std::printf("  delivery latency @1 worker: p50 %.2f ms, p99 %.2f ms\n",
              continuous[1].latency_p50_ms, continuous[1].latency_p99_ms);

  // --- Streaming stage breakdown (incremental extraction engine) --------------
  const auto overlap_config = overlap_stream_config();
  std::printf("\nstreaming stage breakdown: 4 patients x 2400 s ECG @ 250 Hz, %g s windows"
              " / %g s stride (6x overlap)\n",
              overlap_config.window_s, overlap_config.stride_s);
  const auto stages = stage_breakdown(registry, overlap_ward, overlap_config);
  const double extract_speedup =
      stages.extract_ref_wps > 0.0 ? stages.extract_wps / stages.extract_ref_wps : 0.0;
  std::printf("  extract (incremental, 4 s rounds):    %10.1f windows/s  (%zu windows)\n",
              stages.extract_wps, stages.windows);
  std::printf("  extract (seed batch re-detection):    %10.1f windows/s  (%zu windows)\n",
              stages.extract_ref_wps, stages.ref_windows);
  std::printf("  incremental extraction speedup:       %10.2fx\n", extract_speedup);
  std::printf("  segment cache: hit rate %.3f  (%llu hits, %llu misses, %llu evictions) %s\n",
              stages.cache.hit_rate(), static_cast<unsigned long long>(stages.cache.hits),
              static_cast<unsigned long long>(stages.cache.misses),
              static_cast<unsigned long long>(stages.cache.evictions),
              stages.cache.hit_rate() >= 0.8 ? "(>= 0.8 target met)" : "(below 0.8 target!)");
  std::printf("  per-window stage costs: rr %.1f us, edr %.1f us, welch %.1f us, burg %.1f us\n",
              stages.stage_rr_us, stages.stage_edr_us, stages.stage_welch_us,
              stages.stage_burg_us);
  std::printf("  classify (scratch path, fixed-point): %10.1f windows/s\n", stages.classify_wps);
  const auto e2e = continuous_rate(registry, overlap_ward, 1, overlap_config);
  std::printf("  end-to-end continuous @1 worker:      %10.1f windows/s  (%zu windows,"
              " p50 %.2f ms, p99 %.2f ms)\n",
              e2e.windows_per_s, e2e.windows, e2e.latency_p50_ms, e2e.latency_p99_ms);

  // --- Lane-parallel extraction ------------------------------------------------
  std::printf("\nlane-parallel extraction: %s dispatch, 20 s windows / 10 s stride, 4 s rounds,"
              " extraction only\n",
              ecg::lane_isa_name());
  std::map<std::size_t, LaneRun> lane_runs;
  std::map<std::size_t, LaneRun> scalar_runs;
  for (const std::size_t patients : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    // Interleaved best-of-3: lane and scalar rounds alternate so a CPU-steal
    // burst on a shared runner cannot land wholly on one side of the ratio,
    // and best-of discards the stolen rounds.
    LaneRun best_lane, best_scalar;
    for (int rep = 0; rep < 3; ++rep) {
      const LaneRun lane = lane_extract_rate(ward, patients, ward_stream_config());
      // Scalar reference: force the kScalar tier for the whole extraction
      // pipeline (lane engine + float feature kernels), then restore.
      const auto prev_tier = common::simd_tier();
      common::set_simd_tier_override(common::SimdTier::kScalar);
      const LaneRun scalar = lane_extract_rate(ward, patients, ward_stream_config());
      common::set_simd_tier_override(prev_tier);
      if (lane.wps > best_lane.wps) best_lane = lane;
      if (scalar.wps > best_scalar.wps) best_scalar = scalar;
    }
    lane_runs[patients] = best_lane;
    scalar_runs[patients] = best_scalar;
    std::printf("  %zu patient%s: %10.1f windows/s lane, %10.1f scalar  (%.2fx, %4.1f%% lockstep"
                " / %4.1f%% scalar tail)\n",
                patients, patients == 1 ? " " : "s", lane_runs[patients].wps,
                scalar_runs[patients].wps, lane_runs[patients].wps / scalar_runs[patients].wps,
                100.0 * lane_runs[patients].vector_fraction,
                100.0 * (1.0 - lane_runs[patients].vector_fraction));
  }
  const double lane_speedup_4p = lane_runs[4].wps / scalar_runs[4].wps;
  const double lane_speedup_8p = lane_runs[8].wps / scalar_runs[8].wps;

  // --- Signal-quality gate and multi-workload serving --------------------------
  std::printf("\nsignal-quality gate: 8 patients x 120 s, electrode-pop bursts injected into"
              " every other patient\n");
  const auto quality = quality_gate_run(registry, dirty_ward);
  std::printf("  gate scan cost:   %8.2f ns/sample  (amplitude + slew + refractory, 4 s"
              " chunks)\n",
              quality.gate_ns_per_sample);
  std::printf("  annotate policy:  %llu windows annotated  (%llu artifact spans, %llu rr"
              " outliers)\n",
              static_cast<unsigned long long>(quality.windows_annotated),
              static_cast<unsigned long long>(quality.artifact_spans),
              static_cast<unsigned long long>(quality.rr_outliers));
  std::printf("  suppress policy:  %llu windows suppressed  (the same positions, withheld)\n",
              static_cast<unsigned long long>(quality.windows_suppressed));

  constexpr std::size_t kAfWorkers = 2;
  std::printf("multi-workload serving: apnea + AF screening through one engine,"
              " 16 patients x 120 s, %zu workers\n",
              kAfWorkers);
  const auto af = af_dual_workload_rate(ward, kAfWorkers);
  std::printf("  apnea-only baseline:  %8.1f windows/s\n", af.apnea_only_wps);
  std::printf("  apnea + af total:     %8.1f windows/s  (%.2fx the baseline; AF rides the"
              " shared substrate)\n",
              af.dual_total_wps, af.dual_total_wps / af.apnea_only_wps);
  std::printf("  per workload:         %8.1f apnea/s, %8.1f af/s  (%zu af windows/pass)\n",
              af.dual_apnea_wps, af.dual_af_wps, af.af_windows);

  // --- WFDB cohort replay ------------------------------------------------------
  io::CohortFixtureParams fixture;
  fixture.num_patients = 8;
  fixture.duration_s = 120.0;
  const auto fixture_records = io::write_synthetic_cohort("bench_replay_fixture", fixture);
  std::printf("\nwfdb cohort replay: %zu records x %.0f s @ %.0f Hz (fmt 212+16), as fast as"
              " possible\n",
              fixture_records.size(), fixture.duration_s, fixture.fs_hz);
  // One replay of this fixture lasts only a few ms, so (like measure())
  // passes are repeated until ~0.4 s of wall time accumulates and the
  // x-real-time multiple is taken over the aggregate — each pass decodes
  // from disk and streams from phase 0 (end_stream drops the patients).
  struct ReplayRate {
    double x_realtime = 0.0;
    std::size_t windows = 0;
  };
  std::map<std::size_t, ReplayRate> replay;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}}) {
    rt::EngineOptions replay_options;
    replay_options.num_workers = workers;
    rt::CohortReplayer replayer(registry, ward_stream_config(), std::move(replay_options));
    double recorded_s = 0.0, wall_s = 0.0;
    std::size_t passes = 0;
    do {
      const auto report = replayer.replay_directory("bench_replay_fixture");
      recorded_s += report.total_duration_s;
      wall_s += report.wall_s;
      replay[workers].windows = report.windows;
      ++passes;
    } while (wall_s < 0.4);
    replay[workers].x_realtime = recorded_s / wall_s;
    std::printf("  %zu worker%s: %10.0fx real time  (%zu windows/pass, %zu passes)\n", workers,
                workers == 1 ? " " : "s", replay[workers].x_realtime, replay[workers].windows,
                passes);
  }

  // --- Network serving gateway -------------------------------------------------
  constexpr std::size_t kNetWorkers = 2;
  constexpr std::size_t kNetConnections = 4;
  std::printf("\nnetwork serving gateway: 16 patients x 120 s over UDS loopback,"
              " %zu connections, 4 s chunks, %zu workers\n",
              kNetConnections, kNetWorkers);
  const auto net_run = net_gateway_rate(registry, ward, kNetWorkers, kNetConnections);
  std::printf("  streams sustained:    %zu concurrent patient streams\n", net_run.streams);
  std::printf("  ingest:               %10.2f Msamples/s\n", net_run.ingest_msamples_s);
  std::printf("  round trip:           %10.1f windows/s  (%zu windows/pass, %zu passes)\n",
              net_run.round_trip_wps, net_run.windows, net_run.passes);
  std::printf("  delivery (sink -> send): p50 %.2f ms, p99 %.2f ms\n", net_run.delivery_p50_ms,
              net_run.delivery_p99_ms);

  // --- Ward-scale scheduler ----------------------------------------------------
  constexpr std::size_t kSchedWorkers = 2;
  const auto colliding_ward = synth_colliding_ward(4, 120.0, kSchedWorkers);
  std::printf("\nward-scale scheduler: 4 patients x 120 s whose ids all hash to shard 0 of %zu"
              "\n(static placement leaves the other worker idle; stealing re-homes patients)\n",
              kSchedWorkers);
  const auto sched_static = sched_ward_rate(registry, colliding_ward, kSchedWorkers, false);
  const auto sched_steal = sched_ward_rate(registry, colliding_ward, kSchedWorkers, true);
  const double steal_speedup = sched_steal.windows_per_s / sched_static.windows_per_s;
  std::printf("  static hash:   %8.1f windows/s  (%zu windows/pass, %zu passes)\n",
              sched_static.windows_per_s, sched_static.windows, sched_static.passes);
  std::printf("  stealing on:   %8.1f windows/s  (%.2fx static; last pass: %zu steals,"
              " %zu migrations, %zu chunks moved)\n",
              sched_steal.windows_per_s, steal_speedup, sched_steal.sched.steals,
              sched_steal.sched.migrations, sched_steal.sched.migrated_chunks);
  if (hw_threads < kSchedWorkers)
    std::printf("  (host has %zu hardware thread%s; stealing cannot show a speedup here)\n",
                hw_threads, hw_threads == 1 ? "" : "s");

  constexpr double kDeadlineTargetMs = 5.0;
  const auto deadline_ward = synth_ward(3, 240.0);
  std::printf("deadline mode: 3 patients x 240 s, 8 s windows / 2 s stride, 1 worker,"
              " 16-chunk queue,\nsimulated 0.3 ms/window alarm fan-out in the sink"
              " (target p99 %.1f ms, steady state =\nfinal quarter of deliveries)\n",
              kDeadlineTargetMs);
  const auto unmanaged = deadline_ward_rate(registry, deadline_ward, 0.0);
  const auto managed = deadline_ward_rate(registry, deadline_ward, kDeadlineTargetMs * 1e-3);
  const bool deadline_met = managed.steady_p99_ms <= kDeadlineTargetMs;
  std::printf("  unmanaged: steady p99 %6.2f ms  (%zu windows delivered)\n",
              unmanaged.steady_p99_ms, unmanaged.windows);
  std::printf("  managed:   steady p99 %6.2f ms  (%zu windows, %zu stride widenings,"
              " %zu shed activations, %zu chunks shed) %s\n",
              managed.steady_p99_ms, managed.windows, managed.sched.stride_widenings,
              managed.sched.shed_activations, managed.shed_chunks,
              deadline_met ? "-- target met" : "-- target MISSED");

  std::printf("\nbatched float fast path vs single-window float loop: %.2fx %s\n",
              float_batch64 / float_single,
              float_batch64 / float_single >= 3.0 ? "(>= 3x target met)" : "(below 3x target!)");
  std::printf("sharded flush scaling at 4 workers: %.2fx %s\n", scaling_4w,
              scaling_4w >= 2.0
                  ? "(>= 2x target met)"
                  : hw_threads < 4 ? "(host has < 4 hardware threads; not meaningful here)"
                                   : "(below 2x target!)");
  std::printf("continuous scaling at 4 workers: %.2fx %s\n", continuous_scaling_4w,
              continuous_scaling_4w >= 2.0
                  ? "(>= 2x target met)"
                  : hw_threads < 4 ? "(host has < 4 hardware threads; not meaningful here)"
                                   : "(below 2x target!)");

  // --- Machine-readable record for cross-PR tracking ---------------------------
  if (std::FILE* json = std::fopen("BENCH_rt_throughput.json", "w")) {
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"bench\": \"rt_throughput\",\n");
    std::fprintf(json, "  \"hardware_threads\": %zu,\n", hw_threads);
    std::fprintf(json, "  \"model\": {\"num_svs\": %zu, \"num_features\": %zu, "
                       "\"test_windows\": %zu},\n",
                 kNumSvs, kNumFeatures, kNumWindows);
    std::fprintf(json, "  \"float_single_wps\": %.1f,\n", float_single);
    std::fprintf(json, "  \"float_batch64_wps\": %.1f,\n", float_batch64);
    std::fprintf(json, "  \"float_batch256_wps\": %.1f,\n", float_batch256);
    std::fprintf(json, "  \"float_batch64_speedup\": %.3f,\n", float_batch64 / float_single);
    std::fprintf(json, "  \"fixed_single_wps\": %.1f,\n", fixed_single);
    std::fprintf(json, "  \"fixed_batch64_wps\": %.1f,\n", fixed_batch64);
    std::fprintf(json, "  \"fixed_kernel_branchfree_wps\": %.1f,\n", kernel_branchfree);
    std::fprintf(json, "  \"fixed_kernel_branchy_wps\": %.1f,\n", kernel_branchy);
    std::fprintf(json, "  \"fixed_branchfree_speedup\": %.3f,\n",
                 kernel_branchfree / kernel_branchy);
    std::fprintf(json, "  \"sharded\": {\n");
    std::fprintf(json, "    \"patients\": 16, \"duration_s\": 120.0,\n");
    std::fprintf(json, "    \"workers_1_wps\": %.1f,\n", sharded[1].windows_per_s);
    std::fprintf(json, "    \"workers_2_wps\": %.1f,\n", sharded[2].windows_per_s);
    std::fprintf(json, "    \"workers_4_wps\": %.1f,\n", sharded[4].windows_per_s);
    std::fprintf(json, "    \"scaling_4w\": %.3f\n", scaling_4w);
    std::fprintf(json, "  },\n");
    std::fprintf(json, "  \"continuous\": {\n");
    std::fprintf(json, "    \"patients\": 16, \"duration_s\": 120.0,\n");
    std::fprintf(json, "    \"workers_1_wps\": %.1f,\n", continuous[1].windows_per_s);
    std::fprintf(json, "    \"workers_2_wps\": %.1f,\n", continuous[2].windows_per_s);
    std::fprintf(json, "    \"workers_4_wps\": %.1f,\n", continuous[4].windows_per_s);
    std::fprintf(json, "    \"scaling_4w\": %.3f,\n", continuous_scaling_4w);
    std::fprintf(json, "    \"latency_p50_ms\": %.3f,\n", continuous[1].latency_p50_ms);
    std::fprintf(json, "    \"latency_p99_ms\": %.3f\n", continuous[1].latency_p99_ms);
    std::fprintf(json, "  },\n");
    std::fprintf(json, "  \"replay\": {\n");
    std::fprintf(json, "    \"patients\": %zu, \"duration_s\": %.1f,\n", fixture.num_patients,
                 fixture.duration_s);
    std::fprintf(json, "    \"x_realtime_1w\": %.1f,\n", replay[1].x_realtime);
    std::fprintf(json, "    \"x_realtime_2w\": %.1f,\n", replay[2].x_realtime);
    std::fprintf(json, "    \"windows\": %zu\n", replay[1].windows);
    std::fprintf(json, "  },\n");
    std::fprintf(json, "  \"streaming\": {\n");
    std::fprintf(json, "    \"patients\": 4, \"duration_s\": 2400.0,\n");
    std::fprintf(json, "    \"window_s\": %.1f, \"stride_s\": %.1f,\n", overlap_config.window_s,
                 overlap_config.stride_s);
    std::fprintf(json, "    \"extract_wps\": %.1f,\n", stages.extract_wps);
    std::fprintf(json, "    \"extract_batch_ref_wps\": %.1f,\n", stages.extract_ref_wps);
    std::fprintf(json, "    \"extract_speedup_vs_batch\": %.3f,\n", extract_speedup);
    std::fprintf(json, "    \"classify_wps\": %.1f,\n", stages.classify_wps);
    std::fprintf(json, "    \"stage_rr_us\": %.3f,\n", stages.stage_rr_us);
    std::fprintf(json, "    \"stage_edr_us\": %.3f,\n", stages.stage_edr_us);
    std::fprintf(json, "    \"stage_welch_us\": %.3f,\n", stages.stage_welch_us);
    std::fprintf(json, "    \"stage_burg_us\": %.3f,\n", stages.stage_burg_us);
    std::fprintf(json, "    \"e2e_wps\": %.1f,\n", e2e.windows_per_s);
    std::fprintf(json, "    \"e2e_latency_p50_ms\": %.3f,\n", e2e.latency_p50_ms);
    std::fprintf(json, "    \"e2e_latency_p99_ms\": %.3f,\n", e2e.latency_p99_ms);
    std::fprintf(json, "    \"simd_kernel\": %s\n", rt::simd_kernel_enabled() ? "true" : "false");
    std::fprintf(json, "  },\n");
    std::fprintf(json, "  \"features\": {\n");
    std::fprintf(json, "    \"cache_hit_rate\": %.4f,\n", stages.cache.hit_rate());
    std::fprintf(json, "    \"cache_hits\": %llu,\n",
                 static_cast<unsigned long long>(stages.cache.hits));
    std::fprintf(json, "    \"cache_misses\": %llu,\n",
                 static_cast<unsigned long long>(stages.cache.misses));
    std::fprintf(json, "    \"cache_evictions\": %llu\n",
                 static_cast<unsigned long long>(stages.cache.evictions));
    std::fprintf(json, "  },\n");
    std::fprintf(json, "  \"lanes\": {\n");
    std::fprintf(json, "    \"isa\": \"%s\",\n", ecg::lane_isa_name());
    std::fprintf(json, "    \"patients_1_wps\": %.1f,\n", lane_runs[1].wps);
    std::fprintf(json, "    \"patients_4_wps\": %.1f,\n", lane_runs[4].wps);
    std::fprintf(json, "    \"patients_8_wps\": %.1f,\n", lane_runs[8].wps);
    std::fprintf(json, "    \"patients_1_scalar_wps\": %.1f,\n", scalar_runs[1].wps);
    std::fprintf(json, "    \"patients_4_scalar_wps\": %.1f,\n", scalar_runs[4].wps);
    std::fprintf(json, "    \"patients_8_scalar_wps\": %.1f,\n", scalar_runs[8].wps);
    std::fprintf(json, "    \"speedup_4p\": %.3f,\n", lane_speedup_4p);
    std::fprintf(json, "    \"speedup_8p\": %.3f,\n", lane_speedup_8p);
    std::fprintf(json, "    \"vector_fraction_4p\": %.3f,\n", lane_runs[4].vector_fraction);
    std::fprintf(json, "    \"vector_fraction_8p\": %.3f\n", lane_runs[8].vector_fraction);
    std::fprintf(json, "  },\n");
    std::fprintf(json, "  \"net\": {\n");
    std::fprintf(json, "    \"patients\": 16, \"duration_s\": 120.0,\n");
    std::fprintf(json, "    \"workers\": %zu, \"connections\": %zu,\n", kNetWorkers,
                 kNetConnections);
    std::fprintf(json, "    \"streams\": %zu,\n", net_run.streams);
    std::fprintf(json, "    \"ingest_msamples_s\": %.3f,\n", net_run.ingest_msamples_s);
    std::fprintf(json, "    \"round_trip_wps\": %.1f,\n", net_run.round_trip_wps);
    std::fprintf(json, "    \"delivery_p50_ms\": %.3f,\n", net_run.delivery_p50_ms);
    std::fprintf(json, "    \"delivery_p99_ms\": %.3f\n", net_run.delivery_p99_ms);
    std::fprintf(json, "  },\n");
    std::fprintf(json, "  \"sched\": {\n");
    std::fprintf(json, "    \"patients\": 4, \"duration_s\": 120.0, \"workers\": %zu,\n",
                 kSchedWorkers);
    std::fprintf(json, "    \"static_wps\": %.1f,\n", sched_static.windows_per_s);
    std::fprintf(json, "    \"steal_wps\": %.1f,\n", sched_steal.windows_per_s);
    std::fprintf(json, "    \"steal_speedup\": %.3f,\n", steal_speedup);
    std::fprintf(json, "    \"steals\": %zu,\n", sched_steal.sched.steals);
    std::fprintf(json, "    \"migrations\": %zu,\n", sched_steal.sched.migrations);
    std::fprintf(json, "    \"migrated_chunks\": %zu,\n", sched_steal.sched.migrated_chunks);
    std::fprintf(json, "    \"deadline\": {\n");
    std::fprintf(json, "      \"target_ms\": %.1f,\n", kDeadlineTargetMs);
    std::fprintf(json, "      \"unmanaged_p99_ms\": %.3f,\n", unmanaged.steady_p99_ms);
    std::fprintf(json, "      \"managed_p99_ms\": %.3f,\n", managed.steady_p99_ms);
    std::fprintf(json, "      \"met\": %s,\n", deadline_met ? "true" : "false");
    std::fprintf(json, "      \"stride_widenings\": %zu,\n", managed.sched.stride_widenings);
    std::fprintf(json, "      \"shed_activations\": %zu,\n", managed.sched.shed_activations);
    std::fprintf(json, "      \"shed_chunks\": %zu,\n", managed.shed_chunks);
    std::fprintf(json, "      \"unmanaged_windows\": %zu,\n", unmanaged.windows);
    std::fprintf(json, "      \"managed_windows\": %zu\n", managed.windows);
    std::fprintf(json, "    }\n");
    std::fprintf(json, "  },\n");
    std::fprintf(json, "  \"quality\": {\n");
    std::fprintf(json, "    \"patients\": 8, \"duration_s\": 120.0,\n");
    std::fprintf(json, "    \"gate_ns_per_sample\": %.3f,\n", quality.gate_ns_per_sample);
    std::fprintf(json, "    \"windows_annotated\": %llu,\n",
                 static_cast<unsigned long long>(quality.windows_annotated));
    std::fprintf(json, "    \"windows_suppressed\": %llu,\n",
                 static_cast<unsigned long long>(quality.windows_suppressed));
    std::fprintf(json, "    \"artifact_spans\": %llu,\n",
                 static_cast<unsigned long long>(quality.artifact_spans));
    std::fprintf(json, "    \"rr_outliers\": %llu\n",
                 static_cast<unsigned long long>(quality.rr_outliers));
    std::fprintf(json, "  },\n");
    std::fprintf(json, "  \"af\": {\n");
    std::fprintf(json, "    \"patients\": 16, \"duration_s\": 120.0, \"workers\": %zu,\n",
                 kAfWorkers);
    std::fprintf(json, "    \"apnea_only_wps\": %.1f,\n", af.apnea_only_wps);
    std::fprintf(json, "    \"dual_total_wps\": %.1f,\n", af.dual_total_wps);
    std::fprintf(json, "    \"dual_apnea_wps\": %.1f,\n", af.dual_apnea_wps);
    std::fprintf(json, "    \"dual_af_wps\": %.1f,\n", af.dual_af_wps);
    std::fprintf(json, "    \"dual_vs_single_ratio\": %.3f,\n",
                 af.apnea_only_wps > 0.0 ? af.dual_total_wps / af.apnea_only_wps : 0.0);
    std::fprintf(json, "    \"af_windows\": %zu\n", af.af_windows);
    std::fprintf(json, "  }\n");
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_rt_throughput.json\n");
  }
  return 0;
}
