// Streaming-runtime throughput: single-window vs batched classification,
// float vs fixed-point, in windows/second. The acceptance bar for the
// batched fast path is >= 3x the single-window float loop at 64-window
// batches (Release build).
#include <chrono>
#include <cstdio>
#include <random>
#include <vector>

#include "core/quantize.hpp"
#include "rt/packed_model.hpp"
#include "svm/kernel.hpp"
#include "svm/model.hpp"

namespace {

using namespace svt;

constexpr std::size_t kNumFeatures = 30;  // Paper's tailored design point.
constexpr std::size_t kNumSvs = 68;
constexpr std::size_t kNumWindows = 4096;

svm::SvmModel random_model(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> sv_dist(-2.0, 2.0);
  std::uniform_real_distribution<double> alpha_dist(-1.0, 1.0);
  svm::SvmModel m;
  m.kernel = svm::quadratic_kernel();
  m.support_vectors.resize(kNumSvs, std::vector<double>(kNumFeatures));
  m.alpha_y.resize(kNumSvs);
  for (std::size_t i = 0; i < kNumSvs; ++i) {
    for (auto& v : m.support_vectors[i]) v = sv_dist(rng);
    m.alpha_y[i] = alpha_dist(rng);
  }
  m.bias = -0.25;
  return m;
}

std::vector<std::vector<double>> random_windows(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  std::vector<std::vector<double>> xs(kNumWindows, std::vector<double>(kNumFeatures));
  for (auto& row : xs)
    for (auto& v : row) v = dist(rng);
  return xs;
}

/// Run `body(iteration)` until ~0.4 s elapses; return windows/second given
/// `windows_per_iter` classified per call.
template <typename Body>
double measure(std::size_t windows_per_iter, Body&& body) {
  using clock = std::chrono::steady_clock;
  // Warm-up.
  body(0);
  std::size_t iters = 0;
  const auto start = clock::now();
  auto now = start;
  do {
    body(iters++);
    now = clock::now();
  } while (now - start < std::chrono::milliseconds(400));
  const double secs = std::chrono::duration<double>(now - start).count();
  return static_cast<double>(iters * windows_per_iter) / secs;
}

volatile double g_sink_f = 0.0;
volatile int g_sink_i = 0;

}  // namespace

int main() {
  const auto model = random_model(7);
  const auto windows = random_windows(11);
  const rt::PackedModel packed(model);
  core::QuantConfig qc;  // 9-bit features / 15-bit alphas (paper Fig. 6/7).
  const auto qmodel = core::QuantizedModel::build(model, qc);

  std::printf("== rt_throughput ==\n");
  std::printf("model: %zu SVs x %zu features (quadratic kernel), %zu test windows\n\n", kNumSvs,
              kNumFeatures, kNumWindows);

  const double float_single = measure(kNumWindows, [&](std::size_t) {
    double acc = 0.0;
    for (const auto& x : windows) acc += model.decision_value(x);
    g_sink_f = acc;
  });

  std::vector<double> out(kNumWindows);
  const auto batched_rate = [&](std::size_t batch) {
    return measure(kNumWindows, [&, batch](std::size_t) {
      for (std::size_t w0 = 0; w0 < kNumWindows; w0 += batch) {
        const std::size_t n = std::min(batch, kNumWindows - w0);
        packed.decision_values(std::span(windows).subspan(w0, n),
                               std::span(out).subspan(w0, n));
      }
      g_sink_f = out[0];
    });
  };
  const double float_batch64 = batched_rate(64);
  const double float_batch256 = batched_rate(256);

  const double fixed_single = measure(kNumWindows, [&](std::size_t) {
    int acc = 0;
    for (const auto& x : windows) acc += qmodel.classify(x);
    g_sink_i = acc;
  });
  const auto fixed_batched_rate = [&](std::size_t batch) {
    return measure(kNumWindows, [&, batch](std::size_t) {
      int acc = 0;
      for (std::size_t w0 = 0; w0 < kNumWindows; w0 += batch) {
        const std::size_t n = std::min(batch, kNumWindows - w0);
        const auto labels = qmodel.classify_batch(std::span(windows).subspan(w0, n));
        acc += labels[0];
      }
      g_sink_i = acc;
    });
  };
  const double fixed_batch64 = fixed_batched_rate(64);

  std::printf("%-38s %14.0f windows/s\n", "float  single-window loop", float_single);
  std::printf("%-38s %14.0f windows/s  (%.2fx single)\n", "float  batched (64-window batches)",
              float_batch64, float_batch64 / float_single);
  std::printf("%-38s %14.0f windows/s  (%.2fx single)\n", "float  batched (256-window batches)",
              float_batch256, float_batch256 / float_single);
  std::printf("%-38s %14.0f windows/s\n", "fixed  single-window loop", fixed_single);
  std::printf("%-38s %14.0f windows/s  (%.2fx single)\n", "fixed  batched (64-window batches)",
              fixed_batch64, fixed_batch64 / fixed_single);
  std::printf("\nbatched float fast path vs single-window float loop: %.2fx %s\n",
              float_batch64 / float_single,
              float_batch64 / float_single >= 3.0 ? "(>= 3x target met)" : "(below 3x target!)");
  return 0;
}
