#include "bench_util.hpp"

#include "dsp/statistics.hpp"
#include "fixed/range_selection.hpp"

namespace svt::bench {

double rbf_gamma_scale(std::span<const std::vector<double>> samples) {
  const auto columns = fixed::to_columns(samples);
  if (columns.empty()) return 1.0;
  double var_acc = 0.0;
  for (const auto& col : columns) var_acc += dsp::variance_population(col);
  const double mean_var = var_acc / static_cast<double>(columns.size());
  const double denom = static_cast<double>(columns.size()) * mean_var;
  return denom > 0.0 ? 1.0 / denom : 1.0;
}

}  // namespace svt::bench
