// Shared helpers for the table/figure reproduction benches.
#pragma once

#include <chrono>
#include <cstdio>
#include <span>
#include <string>

#include "core/experiment.hpp"
#include "svm/kernel.hpp"

namespace svt::bench {

/// Print the standard bench banner with the effective dataset scale.
inline void print_banner(const char* title, const core::ExperimentConfig& config,
                         const core::PreparedData& data) {
  std::printf("== %s ==\n", title);
  std::printf(
      "dataset: %zu sessions, %zu windows (%zu ictal), %d windows/session, seed %llu\n",
      data.dataset.num_sessions(), data.dataset.num_windows(),
      data.dataset.num_seizure_windows(), config.dataset.windows_per_session,
      static_cast<unsigned long long>(config.dataset.seed));
  std::printf("train: C=%g (SVT_C), folds=%s (SVT_FOLDS), SVT_WPS to rescale\n\n",
              config.train.c,
              config.max_folds == 0 ? "all" : std::to_string(config.max_folds).c_str());
}

/// RBF gamma via the usual "scale" heuristic: 1 / (nfeat * mean feature
/// variance) computed over the raw samples.
double rbf_gamma_scale(std::span<const std::vector<double>> samples);

/// Wall-clock stopwatch for progress lines.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace svt::bench
