// Reproduces Figure 4: classification performance (GM) and resource
// requirements (energy per classification, accelerator area) as the feature
// set shrinks along the correlation-driven elimination order, at 64-bit
// precision.
//
// Paper landmarks: GM worsens slowly down to ~15 features and collapses
// below; at 23 features energy is -65% and area -42% for a -1.2% GM loss
// (dashed line); between 15 and 8 features resources *rise* again because
// training selects more support vectors.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "core/experiment.hpp"
#include "core/feature_selection.hpp"

int main() {
  using namespace svt;
  const auto config = core::ExperimentConfig::from_env();
  const auto data = core::prepare_data(config);
  bench::print_banner("Figure 4: feature-count sweep (64-bit pipeline)", config, data);

  const auto order = core::rank_features_by_redundancy(data.matrix.samples);
  const std::vector<std::size_t> sizes = {53, 45, 38, 33, 30, 27, 25, 23,
                                          20, 17, 15, 12, 10, 8,  6,  5};

  common::CsvWriter csv({"num_features", "gm_pct", "se_pct", "sp_pct", "mean_nsv",
                         "energy_nj", "area_mm2", "order"});
  std::printf("%5s %8s %8s %8s %9s %12s %10s %8s\n", "nfeat", "GM %", "Se %", "Sp %", "mean#SV",
              "energy[nJ]", "area[mm2]", "time[s]");

  double base_energy = 0.0, base_area = 0.0, base_gm = 0.0;
  for (std::size_t k : sizes) {
    bench::Stopwatch timer;
    const auto keep = order.keep_set(k);
    const auto r = core::evaluate_design_point(data, config, keep, /*sv_budget=*/0,
                                               /*quant=*/std::nullopt);
    if (k == 53) {
      base_energy = r.cost.energy.total_nj;
      base_area = r.cost.area.total_mm2;
      base_gm = r.geometric_mean;
    }
    const char* marker = k == 23 ? "  <-- paper design point" : "";
    std::printf("%5zu %8.1f %8.1f %8.1f %9.1f %12.1f %10.4f %8.1f%s\n", k,
                r.geometric_mean * 100.0, r.sensitivity * 100.0, r.specificity * 100.0,
                r.mean_support_vectors, r.cost.energy.total_nj, r.cost.area.total_mm2,
                timer.seconds(), marker);
    csv.add_row(k, r.geometric_mean * 100.0, r.sensitivity * 100.0, r.specificity * 100.0,
                r.mean_support_vectors, r.cost.energy.total_nj, r.cost.area.total_mm2,
                "correlation");

    if (k == 23 && base_energy > 0.0) {
      std::printf("      at 23 features: energy %+.0f%%, area %+.0f%%, GM %+.1f pts "
                  "(paper: -65%%, -42%%, -1.2%%)\n",
                  (r.cost.energy.total_nj / base_energy - 1.0) * 100.0,
                  (r.cost.area.total_mm2 / base_area - 1.0) * 100.0,
                  (r.geometric_mean - base_gm) * 100.0);
    }
  }

  // Ablation: random removal order at three sizes -- the correlation-driven
  // order should retain clearly more GM at small sizes.
  std::printf("\nablation: random removal order (seed 7)\n");
  const auto random_order = core::random_removal_order(data.matrix.num_features(), 7);
  for (std::size_t k : {std::size_t{30}, std::size_t{23}, std::size_t{15}}) {
    const auto keep = random_order.keep_set(k);
    const auto r = core::evaluate_design_point(data, config, keep, 0, std::nullopt);
    std::printf("%5zu %8.1f  (correlation-driven above)\n", k, r.geometric_mean * 100.0);
    csv.add_row(k, r.geometric_mean * 100.0, r.sensitivity * 100.0, r.specificity * 100.0,
                r.mean_support_vectors, r.cost.energy.total_nj, r.cost.area.total_mm2, "random");
  }

  csv.write(config.csv_dir + "/fig4_feature_sweep.csv");
  return 0;
}
