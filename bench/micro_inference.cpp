// Google-benchmark microbenchmarks of the inference engines and key DSP
// substrates: float SVM decision vs bit-accurate fixed-point classification,
// per-window feature extraction, FFT, and SMO training.
#include <benchmark/benchmark.h>

#include <random>

#include "core/quantize.hpp"
#include "core/tailoring.hpp"
#include "dsp/fft.hpp"
#include "ecg/dataset.hpp"
#include "features/extractor.hpp"
#include "svm/trainer.hpp"

namespace {

using namespace svt;

/// Small shared fixture built once (dataset generation dominates otherwise).
struct Fixture {
  ecg::Dataset dataset;
  features::FeatureMatrix matrix;
  core::TailoredDetector detector;

  static const Fixture& get() {
    static Fixture f = [] {
      Fixture fx;
      ecg::DatasetParams params;
      params.windows_per_session = 10;
      fx.dataset = ecg::generate_dataset(params);
      fx.matrix = features::extract_feature_matrix(fx.dataset);
      core::TailoringConfig config;
      config.num_features = 30;
      config.sv_budget = 68;
      std::vector<std::size_t> idx(fx.matrix.num_features());
      for (std::size_t j = 0; j < idx.size(); ++j) idx[j] = j;
      // Gains aligned with the *selected* subset are set inside tailor_detector
      // via config.post_gains; selection happens first, so pass full-order
      // gains for the 30 kept features after a dry selection.
      core::TailoringConfig probe = config;
      probe.quant.reset();
      auto dry = core::tailor_detector(fx.matrix.samples, fx.matrix.labels, probe);
      config.post_gains = features::category_gains(dry.selected_features());
      fx.detector = core::tailor_detector(fx.matrix.samples, fx.matrix.labels, config);
      return fx;
    }();
    return f;
  }
};

void BM_FloatDecision(benchmark::State& state) {
  const auto& fx = Fixture::get();
  const auto& x = fx.matrix.samples.front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.detector.decision_value(x));
  }
}
BENCHMARK(BM_FloatDecision);

void BM_QuantizedClassify(benchmark::State& state) {
  const auto& fx = Fixture::get();
  const auto& x = fx.matrix.samples.front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.detector.classify(x));
  }
}
BENCHMARK(BM_QuantizedClassify);

void BM_FeatureExtraction(benchmark::State& state) {
  const auto& fx = Fixture::get();
  const auto& window = fx.dataset.sessions.front().windows.front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(features::extract_features(window));
  }
}
BENCHMARK(BM_FeatureExtraction);

void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(1);
  std::normal_distribution<double> gauss(0.0, 1.0);
  std::vector<double> x(n);
  for (auto& v : x) v = gauss(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::magnitude_squared_spectrum(x));
  }
}
BENCHMARK(BM_Fft)->Arg(256)->Arg(1024)->Arg(4096);

void BM_SmoTraining(benchmark::State& state) {
  const auto& fx = Fixture::get();
  svm::TrainParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        svm::train_svm(fx.matrix.samples, fx.matrix.labels, svm::quadratic_kernel(), params));
  }
}
BENCHMARK(BM_SmoTraining)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
