#!/usr/bin/env python3
"""CI bench-regression gate for BENCH_rt_throughput.json.

Compares a fresh Release run of bench/rt_throughput against the committed
baseline (bench/baselines/BENCH_rt_throughput.json) and exits non-zero when
any gated metric regresses by more than the threshold (default 25%).

Absolute windows/s are machine-dependent (a laptop baseline vs a CI runner
can differ by far more than any real regression), so by default every
throughput metric is NORMALISED by the same run's `float_single_wps` — the
plainest single-threaded loop in the bench, which acts as a proxy for the
machine's scalar speed. A >25% drop in a *normalised* metric means the code
path got slower relative to the machine, which is what a regression gate
should catch. Pass --absolute to compare raw windows/s instead (only
meaningful when baseline and fresh run share hardware).

Refinements that keep the gate honest:

* The normaliser itself cannot be gated as a ratio (it is 1.0 by
  construction, so a uniform slowdown that hits every path proportionally
  would sail through). It is therefore compared in ABSOLUTE windows/s, but
  only when baseline and fresh run report the same `hardware_threads` —
  cross-machine absolute numbers would false-alarm.
* Thread-scaling metrics (the sharded/continuous/streaming sections, the
  replay x-real-time multiples, the network-gateway serving rates, and the
  ward-scheduler static/steal throughputs, which all run through the same
  threaded engine) are gated whenever the
  fresh run has AT LEAST as many hardware
  threads as the baseline: extra cores can only help those paths, so the
  baseline's machine-normalised ratio is a safe floor. They are skipped
  only on a smaller machine than the baseline's.
* Latency metrics are LOWER-is-better: they are normalised by multiplying
  with the run's own machine speed (latency x float_single_wps = "windows'
  worth of work per delivery"), and a regression is an INCREASE beyond the
  threshold. The same floor argument as the throughput metrics applies in
  mirror image — extra cores can only drain the pipeline faster — so they
  are gated whenever the fresh run has at least as many hardware threads as
  the baseline, and reported otherwise.
* A metric present in the fresh run but absent from the committed baseline
  is NEW since the baseline was written: it is reported, not gated, so a
  bench can grow without a lockstep baseline refresh. A metric absent from
  the fresh run means the bench shrank, which fails loudly.

Usage: check_regression.py FRESH_JSON BASELINE_JSON [--threshold 0.25]
       [--absolute]
       check_regression.py --self-test
"""

import argparse
import json
import sys

NORMALIZER = "float_single_wps"

# Dotted paths into the bench JSON. Everything here is a windows/s rate
# (higher is better) unless listed in LOWER_IS_BETTER. Ratios like
# float_batch64_speedup are implied by their numerators and deliberately not
# double-gated.
METRICS = [
    "float_single_wps",
    "float_batch64_wps",
    "float_batch256_wps",
    "fixed_single_wps",
    "fixed_batch64_wps",
    "fixed_kernel_branchfree_wps",
]
THREADED_METRICS = [
    "sharded.workers_1_wps",
    "sharded.workers_2_wps",
    "sharded.workers_4_wps",
    "continuous.workers_1_wps",
    "continuous.workers_2_wps",
    "continuous.workers_4_wps",
    "streaming.extract_wps",
    "streaming.classify_wps",
    "streaming.e2e_wps",
]
# x-real-time replay multiples (higher is better): dimensionless ratios of
# recorded seconds to wall seconds, but machine-dependent like any
# throughput, so they normalise and gate exactly like the thread-scaling
# metrics (the replay runs through the threaded engine).
REPLAY_METRICS = [
    "replay.x_realtime_1w",
    "replay.x_realtime_2w",
]
# Network-gateway serving rates: the UDS-loopback round trip runs through
# the same threaded engine plus socket I/O, so they normalise and gate like
# the thread-scaling class (the delivery percentiles gate lower-is-better
# below; net.streams is a configured count, recorded but not gated).
NET_METRICS = [
    "net.ingest_msamples_s",
    "net.round_trip_wps",
]
# Ward-scale scheduler throughputs (colliding ward at 2 workers, static
# placement vs work stealing): threaded-engine rates, so they normalise and
# gate like the thread-scaling class. The deadline-mode numbers in
# sched.deadline (p99s, controller counters, the `met` flag) are recorded
# for the run page but deliberately NOT gated: they depend on the host's
# sleep granularity, and the steal/migration counts are schedule-dependent.
SCHED_METRICS = [
    "sched.static_wps",
    "sched.steal_wps",
]
# Multi-workload serving rates (apnea + AF screening multiplexed through one
# engine at 2 workers, plus the apnea-only baseline on the same ward):
# threaded-engine rates, so they normalise and gate like the thread-scaling
# class. The dual_vs_single ratio is implied by its numerator/denominator
# (not double-gated, like the batch speedups), and af.af_windows is a
# deterministic per-pass count, recorded but not gated. The quality-gate
# window/span counters (quality.windows_annotated etc.) are likewise exact
# schedule-independent counts: recorded for the run page, never gated —
# only the gate's scan cost gates, lower-is-better below.
AF_METRICS = [
    "af.apnea_only_wps",
    "af.dual_total_wps",
    "af.dual_af_wps",
]
# Lane-parallel extraction rates (single-threaded, so they normalise and
# gate like the plain METRICS class) and the lane-vs-scalar speedups (already
# dimensionless: compared raw). Both depend on which SIMD tier runtime
# dispatch picked, so they are gated only when `lanes.isa` matches the
# baseline's — a baseline recorded on an AVX2 host must not fail a SSE2-only
# runner (tier mismatch is reported, not failed).
LANES_METRICS = [
    "lanes.patients_1_wps",
    "lanes.patients_4_wps",
    "lanes.patients_8_wps",
]
LANES_RATIO_METRICS = [
    "lanes.speedup_4p",
    "lanes.speedup_8p",
]
LOWER_IS_BETTER = [
    "continuous.latency_p50_ms",
    "continuous.latency_p99_ms",
    "streaming.e2e_latency_p50_ms",
    "streaming.e2e_latency_p99_ms",
    "net.delivery_p50_ms",
    "net.delivery_p99_ms",
    # Per-stage per-window feature costs (microseconds): the from-scratch
    # span-kernel work a segment-cache miss pays once per stride. They gate
    # exactly like the delivery latencies — lower is better, normalised by
    # the machine's scalar speed.
    "streaming.stage_rr_us",
    "streaming.stage_edr_us",
    "streaming.stage_welch_us",
    "streaming.stage_burg_us",
    # Signal-quality gate scan cost (nanoseconds per raw sample): pure
    # per-sample work on the stream path, so it gates like the stage costs.
    "quality.gate_ns_per_sample",
]
# Segment-cache hit rate: a dimensionless workload property (5 of 6 chunks
# per window are reused at the paper's 6x overlap), machine-independent, so
# it is compared RAW and gated on any host once the baseline records it
# (report-not-fail on first appearance, like every new metric).
RATIO_METRICS = [
    "features.cache_hit_rate",
]


def lookup(doc, path):
    node = doc
    for key in path.split("."):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def evaluate(fresh, baseline, threshold, absolute=False, echo=print):
    """Compare the two runs; returns the list of failure strings."""
    fresh_hw = fresh.get("hardware_threads") or 0
    base_hw = baseline.get("hardware_threads") or 0
    same_hw = fresh_hw == base_hw
    scale_armed = fresh_hw >= base_hw  # More cores can only help the threaded paths.
    if not same_hw:
        echo(f"note: hardware_threads differ (baseline {base_hw}, fresh {fresh_hw}); "
             f"the normaliser is not gated absolutely, and thread-scaling/latency metrics "
             f"are {'gated against the baseline floor' if scale_armed else 'reported but not gated'}")

    fresh_isa = lookup(fresh, "lanes.isa")
    base_isa = lookup(baseline, "lanes.isa")
    isa_match = fresh_isa is not None and fresh_isa == base_isa
    if base_isa is not None and fresh_isa is not None and not isa_match:
        echo(f"note: lane dispatch tier differs (baseline {base_isa!r}, fresh {fresh_isa!r}); "
             f"lane metrics are reported but not gated")

    fresh_norm = lookup(fresh, NORMALIZER)
    base_norm = lookup(baseline, NORMALIZER)
    if not absolute and (not fresh_norm or not base_norm):
        echo(f"error: normaliser {NORMALIZER!r} missing from an input")
        return [f"{NORMALIZER}: missing"]

    mode = "absolute" if absolute else f"normalised by {NORMALIZER}"
    echo(f"bench regression gate: threshold {threshold:.0%}, {mode}")
    echo(f"{'metric':<34} {'baseline':>12} {'fresh':>12} {'change':>8}  verdict")

    failures = []
    for metric in (METRICS + THREADED_METRICS + REPLAY_METRICS + NET_METRICS +
                   SCHED_METRICS + AF_METRICS + LANES_METRICS + LANES_RATIO_METRICS +
                   RATIO_METRICS + LOWER_IS_BETTER):
        base_value = lookup(baseline, metric)
        fresh_value = lookup(fresh, metric)
        if base_value is None or fresh_value is None:
            # A metric absent from the baseline is new since it was committed:
            # nothing to gate against (report-not-fail on first appearance).
            # Absent from the fresh run = bench shrank: fail loudly.
            if fresh_value is None:
                failures.append(f"{metric}: missing from fresh run")
                echo(f"{metric:<34} {base_value or 0:>12.1f} {'MISSING':>12} {'':>8}  FAIL")
            else:
                echo(f"{metric:<34} {'(new)':>12} {fresh_value:>12.1f} {'':>8}  skip")
            continue
        lower_better = metric in LOWER_IS_BETTER
        is_normalizer = metric == NORMALIZER
        if absolute or is_normalizer:
            # The normaliser's self-ratio is 1.0 by construction, so it is
            # always judged in absolute terms — and absolute comparisons are
            # only meaningful on the baseline's own hardware.
            gated = same_hw
            base_score, fresh_score = base_value, fresh_value
        elif lower_better:
            # Latency x machine speed: "windows' worth of work" per delivery.
            gated = scale_armed
            base_score, fresh_score = base_value * base_norm, fresh_value * fresh_norm
        elif metric in LANES_RATIO_METRICS:
            # Lane-vs-scalar speedups are dimensionless: compared raw, gated
            # only on the baseline's dispatch tier.
            gated = isa_match
            base_score, fresh_score = base_value, fresh_value
        elif metric in LANES_METRICS:
            gated = isa_match
            base_score, fresh_score = base_value / base_norm, fresh_value / fresh_norm
        elif metric in RATIO_METRICS:
            # Workload ratios (e.g. cache hit rate) are machine-independent:
            # compared raw and gated on any host.
            gated = True
            base_score, fresh_score = base_value, fresh_value
        else:
            gated = (scale_armed if metric in THREADED_METRICS + REPLAY_METRICS + NET_METRICS +
                     SCHED_METRICS + AF_METRICS else True)
            base_score, fresh_score = base_value / base_norm, fresh_value / fresh_norm
        change = fresh_score / base_score - 1.0 if base_score else 0.0
        regressed = change > threshold if lower_better else change < -threshold
        lanes_metric = metric in LANES_METRICS + LANES_RATIO_METRICS
        skip_label = "skip (isa)" if lanes_metric and not isa_match else "skip (hw)"
        verdict = "ok" if not regressed else ("FAIL" if gated else skip_label)
        if regressed and gated:
            limit = f"+{threshold:.0%}" if lower_better else f"-{threshold:.0%}"
            failures.append(f"{metric}: {change:+.1%} (limit {limit})")
        echo(f"{metric:<34} {base_value:>12.1f} {fresh_value:>12.1f} {change:>+7.1%}  {verdict}")
    return failures


# --- Self-test ---------------------------------------------------------------

def _doc(hw=4, norm=1000.0, **overrides):
    """A synthetic bench JSON with every gated metric present."""
    doc = {"hardware_threads": hw, NORMALIZER: norm}
    for metric in METRICS:
        doc.setdefault(metric, 500.0)
    for metric in (THREADED_METRICS + REPLAY_METRICS + NET_METRICS + SCHED_METRICS +
                   AF_METRICS + LANES_METRICS + LOWER_IS_BETTER):
        head, leaf = metric.split(".")
        doc.setdefault(head, {})[leaf] = 5.0 if leaf.endswith(("_ms", "_us", "_per_sample")) \
            else 800.0
    for metric in LANES_RATIO_METRICS:
        head, leaf = metric.split(".")
        doc.setdefault(head, {})[leaf] = 2.0
    for metric in RATIO_METRICS:
        head, leaf = metric.split(".")
        doc.setdefault(head, {})[leaf] = 0.85
    doc.setdefault("lanes", {}).setdefault("isa", "avx2")
    for path, value in overrides.items():
        head, _, leaf = path.partition(".")
        if leaf:
            doc.setdefault(head, {})[leaf] = value
        else:
            doc[head] = value
    return doc


def self_test():
    """Unit-style checks of the gating logic (run from ctest)."""
    quiet = lambda *_args, **_kw: None
    checks = []

    def check(name, got, want):
        checks.append((name, got == want, got, want))

    # Identical runs pass.
    check("identical runs pass", evaluate(_doc(), _doc(), 0.25, echo=quiet), [])
    # A >25% normalised throughput drop fails; a small one passes.
    check("big throughput drop fails",
          len(evaluate(_doc(**{"fixed_batch64_wps": 300.0}), _doc(), 0.25, echo=quiet)), 1)
    check("small throughput drop passes",
          evaluate(_doc(**{"fixed_batch64_wps": 450.0}), _doc(), 0.25, echo=quiet), [])
    # Improvements pass.
    check("improvement passes",
          evaluate(_doc(**{"streaming.e2e_wps": 5000.0}), _doc(), 0.25, echo=quiet), [])
    # New metric (absent from baseline) is reported, not gated.
    base_without = _doc()
    del base_without["streaming"]
    check("new metrics skip", evaluate(_doc(), base_without, 0.25, echo=quiet), [])
    # Metric missing from the fresh run fails (3 throughput + 2 latency +
    # 4 per-stage costs).
    fresh_without = _doc()
    del fresh_without["streaming"]
    failures = evaluate(fresh_without, _doc(), 0.25, echo=quiet)
    check("shrunken bench fails", len(failures), 9)
    # Latency: an increase beyond the threshold fails, a decrease passes.
    check("latency increase fails",
          len(evaluate(_doc(**{"continuous.latency_p99_ms": 9.0}), _doc(), 0.25, echo=quiet)), 1)
    check("latency decrease passes",
          evaluate(_doc(**{"continuous.latency_p99_ms": 1.0}), _doc(), 0.25, echo=quiet), [])
    # Latency gates against the baseline floor on a bigger host (more cores
    # only drain faster) and is skipped on a smaller one.
    check("latency gated on bigger host",
          len(evaluate(_doc(hw=8, **{"continuous.latency_p99_ms": 9.0}), _doc(hw=4), 0.25,
                       echo=quiet)), 1)
    check("latency skipped on smaller host",
          evaluate(_doc(hw=2, **{"continuous.latency_p99_ms": 9.0}), _doc(hw=4), 0.25,
                   echo=quiet), [])
    # Thread-scaling metrics: gated with >= baseline cores, skipped below.
    check("thread metrics gated on bigger host",
          len(evaluate(_doc(hw=8, **{"sharded.workers_4_wps": 100.0}), _doc(hw=4), 0.25,
                       echo=quiet)), 1)
    check("thread metrics skipped on smaller host",
          evaluate(_doc(hw=2, **{"sharded.workers_4_wps": 100.0}), _doc(hw=4), 0.25,
                   echo=quiet), [])
    # Replay x-real-time multiples: same rules as the thread-scaling class —
    # normalised higher-is-better, gated only with >= baseline cores, and
    # report-not-fail before the baseline records them.
    check("replay regression fails",
          len(evaluate(_doc(**{"replay.x_realtime_1w": 100.0}), _doc(), 0.25, echo=quiet)), 1)
    check("replay improvement passes",
          evaluate(_doc(**{"replay.x_realtime_2w": 5000.0}), _doc(), 0.25, echo=quiet), [])
    check("replay skipped on smaller host",
          evaluate(_doc(hw=2, **{"replay.x_realtime_2w": 100.0}), _doc(hw=4), 0.25,
                   echo=quiet), [])
    base_without_replay = _doc()
    del base_without_replay["replay"]
    check("new replay metrics skip", evaluate(_doc(), base_without_replay, 0.25, echo=quiet), [])
    fresh_without_replay = _doc()
    del fresh_without_replay["replay"]
    check("missing replay metrics fail",
          len(evaluate(fresh_without_replay, _doc(), 0.25, echo=quiet)), 2)
    # Network serving metrics: throughput gates like the thread-scaling
    # class, delivery p99 gates lower-is-better, and the whole section is
    # report-not-fail until the baseline records it.
    check("net throughput regression fails",
          len(evaluate(_doc(**{"net.round_trip_wps": 100.0}), _doc(), 0.25, echo=quiet)), 1)
    check("net throughput improvement passes",
          evaluate(_doc(**{"net.ingest_msamples_s": 5000.0}), _doc(), 0.25, echo=quiet), [])
    check("net delivery p99 increase fails",
          len(evaluate(_doc(**{"net.delivery_p99_ms": 9.0}), _doc(), 0.25, echo=quiet)), 1)
    check("net skipped on smaller host",
          evaluate(_doc(hw=2, **{"net.round_trip_wps": 100.0}), _doc(hw=4), 0.25,
                   echo=quiet), [])
    base_without_net = _doc()
    del base_without_net["net"]
    check("new net metrics skip", evaluate(_doc(), base_without_net, 0.25, echo=quiet), [])
    fresh_without_net = _doc()
    del fresh_without_net["net"]
    check("missing net metrics fail",
          len(evaluate(fresh_without_net, _doc(), 0.25, echo=quiet)), 4)
    # Ward-scheduler throughputs: gate like the thread-scaling class; the
    # deadline sub-object is never in any gate list, so its report-only
    # numbers cannot fail the gate however wildly they move.
    check("sched throughput regression fails",
          len(evaluate(_doc(**{"sched.steal_wps": 100.0}), _doc(), 0.25, echo=quiet)), 1)
    check("sched improvement passes",
          evaluate(_doc(**{"sched.steal_wps": 5000.0}), _doc(), 0.25, echo=quiet), [])
    check("sched skipped on smaller host",
          evaluate(_doc(hw=2, **{"sched.static_wps": 100.0}), _doc(hw=4), 0.25,
                   echo=quiet), [])
    base_without_sched = _doc()
    del base_without_sched["sched"]
    check("new sched metrics skip", evaluate(_doc(), base_without_sched, 0.25, echo=quiet), [])
    fresh_without_sched = _doc()
    del fresh_without_sched["sched"]
    check("missing sched metrics fail",
          len(evaluate(fresh_without_sched, _doc(), 0.25, echo=quiet)), 2)
    check("deadline numbers are report-only",
          evaluate(_doc(**{"sched.deadline": {"managed_p99_ms": 999.0, "met": False}}),
                   _doc(**{"sched.deadline": {"managed_p99_ms": 1.0, "met": True}}),
                   0.25, echo=quiet), [])
    # Multi-workload serving rates gate like the thread-scaling class; the
    # quality-gate scan cost gates lower-is-better like the stage costs; and
    # the quality window/span counters live outside every gate list, so they
    # are report-only however wildly they move.
    check("af throughput regression fails",
          len(evaluate(_doc(**{"af.dual_af_wps": 100.0}), _doc(), 0.25, echo=quiet)), 1)
    check("af improvement passes",
          evaluate(_doc(**{"af.dual_total_wps": 5000.0}), _doc(), 0.25, echo=quiet), [])
    check("af skipped on smaller host",
          evaluate(_doc(hw=2, **{"af.dual_af_wps": 100.0}), _doc(hw=4), 0.25, echo=quiet), [])
    base_without_af = _doc()
    del base_without_af["af"]
    check("new af metrics skip", evaluate(_doc(), base_without_af, 0.25, echo=quiet), [])
    fresh_without_af = _doc()
    del fresh_without_af["af"]
    check("missing af metrics fail",
          len(evaluate(fresh_without_af, _doc(), 0.25, echo=quiet)), 3)
    check("gate scan cost increase fails",
          len(evaluate(_doc(**{"quality.gate_ns_per_sample": 9.0}), _doc(), 0.25,
                       echo=quiet)), 1)
    check("gate scan cost decrease passes",
          evaluate(_doc(**{"quality.gate_ns_per_sample": 1.0}), _doc(), 0.25, echo=quiet), [])
    check("quality counters are report-only",
          evaluate(_doc(**{"quality.windows_suppressed": 999.0}),
                   _doc(**{"quality.windows_suppressed": 1.0}), 0.25, echo=quiet), [])
    fresh_without_quality = _doc()
    del fresh_without_quality["quality"]
    check("missing gate scan cost fails",
          len(evaluate(fresh_without_quality, _doc(), 0.25, echo=quiet)), 1)
    # Lane metrics: gated while the dispatch tier matches the baseline's,
    # reported-not-failed on a tier mismatch, and report-not-fail before the
    # baseline records the section at all.
    check("lane throughput regression fails",
          len(evaluate(_doc(**{"lanes.patients_4_wps": 100.0}), _doc(), 0.25, echo=quiet)), 1)
    check("lane speedup regression fails",
          len(evaluate(_doc(**{"lanes.speedup_8p": 1.0}), _doc(), 0.25, echo=quiet)), 1)
    check("lane improvement passes",
          evaluate(_doc(**{"lanes.speedup_4p": 4.0}), _doc(), 0.25, echo=quiet), [])
    check("lane metrics skipped on isa mismatch",
          evaluate(_doc(**{"lanes.isa": "sse2", "lanes.patients_4_wps": 100.0,
                           "lanes.speedup_4p": 1.0}),
                   _doc(), 0.25, echo=quiet), [])
    base_without_lanes = _doc()
    del base_without_lanes["lanes"]
    check("new lane metrics skip", evaluate(_doc(), base_without_lanes, 0.25, echo=quiet), [])
    fresh_without_lanes = _doc()
    del fresh_without_lanes["lanes"]
    check("missing lane metrics fail",
          len(evaluate(fresh_without_lanes, _doc(), 0.25, echo=quiet)), 5)
    # Per-stage feature costs gate lower-is-better like the delivery
    # latencies; the segment-cache hit rate is compared raw and gated on any
    # host, with report-not-fail before the baseline records the section.
    check("stage cost increase fails",
          len(evaluate(_doc(**{"streaming.stage_welch_us": 9.0}), _doc(), 0.25, echo=quiet)), 1)
    check("stage cost decrease passes",
          evaluate(_doc(**{"streaming.stage_welch_us": 1.0}), _doc(), 0.25, echo=quiet), [])
    check("hit-rate drop fails",
          len(evaluate(_doc(**{"features.cache_hit_rate": 0.5}), _doc(), 0.25, echo=quiet)), 1)
    check("hit-rate gated even cross-hardware",
          len(evaluate(_doc(hw=2, **{"features.cache_hit_rate": 0.5}), _doc(hw=4), 0.25,
                       echo=quiet)), 1)
    base_without_features = _doc()
    del base_without_features["features"]
    check("new hit-rate skips", evaluate(_doc(), base_without_features, 0.25, echo=quiet), [])
    fresh_without_features = _doc()
    del fresh_without_features["features"]
    check("missing hit-rate fails",
          len(evaluate(fresh_without_features, _doc(), 0.25, echo=quiet)), 1)
    # A uniform slowdown cannot hide in the ratios on same hardware: the
    # normaliser is gated absolutely.
    uniform = _doc(norm=500.0)
    for metric in METRICS:
        uniform[metric] = 250.0
    check("uniform slowdown caught via absolute normaliser",
          len(evaluate(uniform, _doc(), 0.25, echo=quiet)) >= 1, True)

    failed = [c for c in checks if not c[1]]
    for name, ok, got, want in checks:
        print(f"  {'ok  ' if ok else 'FAIL'} {name}" + ("" if ok else f" (got {got!r}, want {want!r})"))
    if failed:
        print(f"self-test: {len(failed)}/{len(checks)} checks failed")
        return 1
    print(f"self-test: all {len(checks)} checks passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", nargs="?", help="JSON written by the fresh bench run")
    parser.add_argument("baseline", nargs="?", help="committed baseline JSON")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="maximum allowed fractional regression (default 0.25)")
    parser.add_argument("--absolute", action="store_true",
                        help="compare raw windows/s instead of machine-normalised ratios")
    parser.add_argument("--self-test", action="store_true",
                        help="run the gate's own unit checks and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.fresh or not args.baseline:
        parser.error("FRESH_JSON and BASELINE_JSON are required (or use --self-test)")

    with open(args.fresh) as f:
        fresh = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)

    failures = evaluate(fresh, baseline, args.threshold, args.absolute)
    if failures:
        print(f"\nFAIL: {len(failures)} metric(s) regressed beyond {args.threshold:.0%}:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nOK: no gated metric regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
