#!/usr/bin/env python3
"""CI bench-regression gate for BENCH_rt_throughput.json.

Compares a fresh Release run of bench/rt_throughput against the committed
baseline (bench/baselines/BENCH_rt_throughput.json) and exits non-zero when
any gated metric regresses by more than the threshold (default 25%).

Absolute windows/s are machine-dependent (a laptop baseline vs a CI runner
can differ by far more than any real regression), so by default every
throughput metric is NORMALISED by the same run's `float_single_wps` — the
plainest single-threaded loop in the bench, which acts as a proxy for the
machine's scalar speed. A >25% drop in a *normalised* metric means the code
path got slower relative to the machine, which is what a regression gate
should catch. Pass --absolute to compare raw windows/s instead (only
meaningful when baseline and fresh run share hardware).

Two refinements keep the gate honest:

* The normaliser itself cannot be gated as a ratio (it is 1.0 by
  construction, so a uniform slowdown that hits every path proportionally
  would sail through). It is therefore compared in ABSOLUTE windows/s, but
  only when baseline and fresh run report the same `hardware_threads` —
  cross-machine absolute numbers would false-alarm.
* Thread-scaling metrics (the sharded/continuous sections) are gated
  whenever the fresh run has AT LEAST as many hardware threads as the
  baseline: extra cores can only help those paths, so the baseline's
  machine-normalised ratio is a safe floor. They are skipped only on a
  smaller machine than the baseline's. To tighten them after a hardware
  change, refresh the baseline from a CI artifact (the Release jobs upload
  BENCH_rt_throughput.json).

Usage: check_regression.py FRESH_JSON BASELINE_JSON [--threshold 0.25]
       [--absolute]
"""

import argparse
import json
import sys

NORMALIZER = "float_single_wps"

# Dotted paths into the bench JSON. Everything here is a windows/s rate
# (higher is better). Ratios like float_batch64_speedup are implied by their
# numerators and deliberately not double-gated.
METRICS = [
    "float_single_wps",
    "float_batch64_wps",
    "float_batch256_wps",
    "fixed_single_wps",
    "fixed_batch64_wps",
    "fixed_kernel_branchfree_wps",
]
THREADED_METRICS = [
    "sharded.workers_1_wps",
    "sharded.workers_2_wps",
    "sharded.workers_4_wps",
    "continuous.workers_1_wps",
    "continuous.workers_2_wps",
    "continuous.workers_4_wps",
]


def lookup(doc, path):
    node = doc
    for key in path.split("."):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="JSON written by the fresh bench run")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="maximum allowed fractional regression (default 0.25)")
    parser.add_argument("--absolute", action="store_true",
                        help="compare raw windows/s instead of machine-normalised ratios")
    args = parser.parse_args()

    with open(args.fresh) as f:
        fresh = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)

    fresh_hw = fresh.get("hardware_threads") or 0
    base_hw = baseline.get("hardware_threads") or 0
    same_hw = fresh_hw == base_hw
    scale_armed = fresh_hw >= base_hw  # More cores can only help the threaded paths.
    if not same_hw:
        print(f"note: hardware_threads differ (baseline {base_hw}, fresh {fresh_hw}); "
              f"the normaliser is not gated absolutely, and thread-scaling metrics are "
              f"{'gated against the baseline floor' if scale_armed else 'reported but not gated'}")

    fresh_norm = lookup(fresh, NORMALIZER)
    base_norm = lookup(baseline, NORMALIZER)
    if not args.absolute and (not fresh_norm or not base_norm):
        print(f"error: normaliser {NORMALIZER!r} missing from an input", file=sys.stderr)
        return 2

    mode = "absolute windows/s" if args.absolute else f"normalised by {NORMALIZER}"
    print(f"bench regression gate: threshold {args.threshold:.0%}, {mode}")
    print(f"{'metric':<34} {'baseline':>12} {'fresh':>12} {'change':>8}  verdict")

    failures = []
    for metric in METRICS + THREADED_METRICS:
        base_value = lookup(baseline, metric)
        fresh_value = lookup(fresh, metric)
        if base_value is None or fresh_value is None:
            # A metric absent from the baseline is new since it was committed:
            # nothing to gate against. Absent from the fresh run = bench shrank,
            # which should fail loudly.
            if fresh_value is None:
                failures.append(f"{metric}: missing from fresh run")
                print(f"{metric:<34} {base_value or 0:>12.1f} {'MISSING':>12} {'':>8}  FAIL")
            else:
                print(f"{metric:<34} {'(new)':>12} {fresh_value:>12.1f} {'':>8}  skip")
            continue
        is_normalizer = metric == NORMALIZER
        if args.absolute or is_normalizer:
            # The normaliser's self-ratio is 1.0 by construction, so it is
            # always judged in absolute terms — and absolute comparisons are
            # only meaningful on the baseline's own hardware.
            gated = same_hw
            base_score, fresh_score = base_value, fresh_value
        else:
            gated = scale_armed if metric in THREADED_METRICS else True
            base_score, fresh_score = base_value / base_norm, fresh_value / fresh_norm
        change = fresh_score / base_score - 1.0 if base_score else 0.0
        regressed = change < -args.threshold
        verdict = "ok" if not regressed else ("FAIL" if gated else "skip (hw)")
        if regressed and gated:
            failures.append(f"{metric}: {change:+.1%} (limit -{args.threshold:.0%})")
        print(f"{metric:<34} {base_value:>12.1f} {fresh_value:>12.1f} {change:>+7.1%}  {verdict}")

    if failures:
        print(f"\nFAIL: {len(failures)} metric(s) regressed beyond {args.threshold:.0%}:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nOK: no gated metric regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
