#include "fixed/range_selection.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace svt::fixed {
namespace {

TEST(RangeSelection, CentredFeatureUsesHeadroom) {
  // mean 0, sigma 1, headroom 4 -> needs 2^R > 4 -> R = 3.
  EXPECT_EQ(select_range_log2(0.0, 1.0), 3);
}

TEST(RangeSelection, HeadroomParameterMatters) {
  EXPECT_EQ(select_range_log2(0.0, 1.0, -8, 20, 1.0), 1);  // Literal Eq. 6: 2^R > 1.
  EXPECT_EQ(select_range_log2(0.0, 1.0, -8, 20, 8.0), 4);
  EXPECT_THROW(select_range_log2(0.0, 1.0, -8, 20, 0.0), std::invalid_argument);
}

TEST(RangeSelection, OffsetMeanShiftsRange) {
  // mean 70, sigma 8, headroom 4 -> need 2^R > 102 -> R = 7 (as for a raw
  // heart-rate feature in the paper's setting).
  EXPECT_EQ(select_range_log2(70.0, 8.0), 7);
}

TEST(RangeSelection, SmallSigmaGivesNegativeRange) {
  EXPECT_LT(select_range_log2(0.0, 0.01), 0);
}

TEST(RangeSelection, ClampsToBounds) {
  EXPECT_EQ(select_range_log2(0.0, 1e9), 20);           // Clamped at r_max.
  EXPECT_EQ(select_range_log2(0.0, 1e-9, -8, 20), -8);  // Clamped at r_min.
  EXPECT_THROW(select_range_log2(0.0, 1.0, 5, 4), std::invalid_argument);
  EXPECT_THROW(select_range_log2(0.0, -1.0), std::invalid_argument);
}

TEST(RangeSelection, MonotoneInSigma) {
  int prev = select_range_log2(0.0, 0.01);
  for (double sigma = 0.02; sigma < 100.0; sigma *= 2.0) {
    const int r = select_range_log2(0.0, sigma);
    EXPECT_GE(r, prev);
    prev = r;
  }
}

TEST(RangeSelection, PerColumnRanges) {
  std::vector<std::vector<double>> columns = {
      {-1.0, 0.0, 1.0},     // sigma ~0.82 -> R 2 with headroom 4.
      {-8.0, 0.0, 8.0},     // sigma ~6.5 -> R 5.
  };
  const auto ranges = select_feature_ranges(columns);
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_LT(ranges[0], ranges[1]);
  std::vector<std::vector<double>> bad = {{}};
  EXPECT_THROW(select_feature_ranges(bad), std::invalid_argument);
}

TEST(ToColumns, TransposesRowMajor) {
  std::vector<std::vector<double>> rows = {{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  const auto cols = to_columns(rows);
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_EQ(cols[0], (std::vector<double>{1.0, 3.0, 5.0}));
  EXPECT_EQ(cols[1], (std::vector<double>{2.0, 4.0, 6.0}));
  std::vector<std::vector<double>> ragged = {{1.0, 2.0}, {3.0}};
  EXPECT_THROW(to_columns(ragged), std::invalid_argument);
  EXPECT_TRUE(to_columns({}).empty());
}

class RangeCoverageProperty : public ::testing::TestWithParam<double> {};

TEST_P(RangeCoverageProperty, SelectedRangeCoversHeadroomSpread) {
  const double sigma = GetParam();
  const int r = select_range_log2(0.0, sigma);
  const double bound = std::ldexp(1.0, r);
  EXPECT_GT(bound, 4.0 * sigma);          // Covers the +-4 sigma spread...
  if (r > -8) EXPECT_LE(bound / 2.0, 8.0 * sigma);  // ...without gross waste.
}

INSTANTIATE_TEST_SUITE_P(Sigmas, RangeCoverageProperty,
                         ::testing::Values(0.05, 0.1, 0.5, 1.0, 3.0, 10.0, 100.0));

}  // namespace
}  // namespace svt::fixed
