#include "core/feature_selection.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

namespace svt::core {
namespace {

std::vector<std::vector<double>> redundant_samples(unsigned seed, std::size_t n = 200) {
  // Features: f0 random, f1 = f0 (duplicate), f2 = -f0, f3 independent,
  // f4 independent.
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> gauss(0.0, 1.0);
  std::vector<std::vector<double>> samples;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = gauss(rng);
    samples.push_back({a, a + 0.01 * gauss(rng), -a + 0.01 * gauss(rng), gauss(rng), gauss(rng)});
  }
  return samples;
}

TEST(CorrelationMatrix, SymmetricWithUnitDiagonal) {
  const auto samples = redundant_samples(1);
  const auto rho = correlation_matrix(samples);
  ASSERT_EQ(rho.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(rho[i][i], 1.0);
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_DOUBLE_EQ(rho[i][j], rho[j][i]);
      EXPECT_LE(std::abs(rho[i][j]), 1.0 + 1e-12);
    }
  }
  EXPECT_GT(rho[0][1], 0.99);
  EXPECT_LT(rho[0][2], -0.99);
  EXPECT_LT(std::abs(rho[0][3]), 0.2);
  std::vector<std::vector<double>> empty;
  EXPECT_THROW(correlation_matrix(empty), std::invalid_argument);
}

TEST(Ranking, RemovesRedundantClusterFirst) {
  const auto samples = redundant_samples(2);
  const auto order = rank_features_by_redundancy(samples);
  ASSERT_EQ(order.num_features(), 5u);
  // The {0,1,2} cluster is mutually |rho|~1; its members must be the first
  // two removals (one member may legitimately survive to represent it).
  const auto first = order.removal_order[0];
  const auto second = order.removal_order[1];
  EXPECT_LT(first, 3u);
  EXPECT_LT(second, 3u);
  // The two independent features survive the longest.
  const auto last = order.removal_order.back();
  const auto second_last = order.removal_order[order.removal_order.size() - 2];
  EXPECT_TRUE((last >= 3) || (second_last >= 3));
}

TEST(Ranking, KeepSetSemantics) {
  const auto samples = redundant_samples(3);
  const auto order = rank_features_by_redundancy(samples);
  const auto keep3 = order.keep_set(3);
  EXPECT_EQ(keep3.size(), 3u);
  EXPECT_TRUE(std::is_sorted(keep3.begin(), keep3.end()));
  // keep_set(k) is the suffix of the removal order.
  const auto keep5 = order.keep_set(5);
  EXPECT_EQ(keep5, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
  EXPECT_THROW(order.keep_set(0), std::invalid_argument);
  EXPECT_THROW(order.keep_set(6), std::invalid_argument);
}

TEST(Ranking, KeepSetsAreNested) {
  const auto samples = redundant_samples(4);
  const auto order = rank_features_by_redundancy(samples);
  for (std::size_t k = 1; k < 5; ++k) {
    const auto small = order.keep_set(k);
    const auto big = order.keep_set(k + 1);
    for (std::size_t f : small) {
      EXPECT_NE(std::find(big.begin(), big.end(), f), big.end());
    }
  }
}

TEST(RandomOrder, DeterministicPermutation) {
  const auto a = random_removal_order(10, 7);
  const auto b = random_removal_order(10, 7);
  EXPECT_EQ(a.removal_order, b.removal_order);
  const auto c = random_removal_order(10, 8);
  EXPECT_NE(a.removal_order, c.removal_order);
  // It is a permutation.
  auto sorted = a.removal_order;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(sorted[i], i);
}

}  // namespace
}  // namespace svt::core
