#include "core/tailoring.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "features/extractor.hpp"

namespace svt::core {
namespace {

/// Shared small dataset (generation is the expensive part).
const features::FeatureMatrix& matrix() {
  static const features::FeatureMatrix m = [] {
    ecg::DatasetParams params;
    params.windows_per_session = 10;
    const auto ds = ecg::generate_dataset(params);
    return features::extract_feature_matrix(ds);
  }();
  return m;
}

TailoringConfig standard_config() {
  TailoringConfig config;
  config.num_features = 30;
  config.sv_budget = 100;
  return config;
}

TEST(Tailoring, FullFlowProducesWorkingDetector) {
  auto config = standard_config();
  const auto detector = tailor_detector(matrix().samples, matrix().labels, config);
  EXPECT_EQ(detector.selected_features().size(), 30u);
  EXPECT_LE(detector.model().num_support_vectors(), 100u);
  ASSERT_TRUE(detector.quantized().has_value());
  // Training-set accuracy should be far above chance.
  std::size_t correct = 0;
  for (std::size_t i = 0; i < matrix().size(); ++i) {
    if (detector.classify(matrix().samples[i]) == matrix().labels[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(matrix().size()), 0.85);
}

TEST(Tailoring, FloatVariantSkipsQuantization) {
  auto config = standard_config();
  config.quant.reset();
  const auto detector = tailor_detector(matrix().samples, matrix().labels, config);
  EXPECT_FALSE(detector.quantized().has_value());
  // decision_value and classify agree in the float path.
  const auto& x = matrix().samples.front();
  EXPECT_EQ(detector.classify(x), detector.decision_value(x) >= 0.0 ? 1 : -1);
}

TEST(Tailoring, ZeroMeansKeepEverything) {
  TailoringConfig config;
  config.num_features = 0;
  config.sv_budget = 0;
  config.quant.reset();
  const auto detector = tailor_detector(matrix().samples, matrix().labels, config);
  EXPECT_EQ(detector.selected_features().size(), features::kNumFeatures);
}

TEST(Tailoring, HardwareCostReflectsQuantization) {
  auto config = standard_config();
  const auto quantized = tailor_detector(matrix().samples, matrix().labels, config);
  config.quant.reset();
  const auto floating = tailor_detector(matrix().samples, matrix().labels, config);
  const auto cq = quantized.hardware_cost();
  const auto cf = floating.hardware_cost();
  EXPECT_LT(cq.energy.total_nj, cf.energy.total_nj);
  EXPECT_LT(cq.area.total_mm2, cf.area.total_mm2);
  EXPECT_EQ(cq.config.feature_bits, 9);
  EXPECT_EQ(cf.config.feature_bits, 64);
}

TEST(Tailoring, PostGainsValidated) {
  auto config = standard_config();
  config.post_gains = {1.0, 2.0};  // Wrong size (selection keeps 30).
  EXPECT_THROW(tailor_detector(matrix().samples, matrix().labels, config),
               std::invalid_argument);
}

TEST(Tailoring, InputValidation) {
  TailoringConfig config;
  std::vector<std::vector<double>> empty;
  std::vector<int> no_labels;
  EXPECT_THROW(tailor_detector(empty, no_labels, config), std::invalid_argument);
  config.num_features = 999;
  EXPECT_THROW(tailor_detector(matrix().samples, matrix().labels, config),
               std::invalid_argument);
}

TEST(Tailoring, ClassifyRejectsShortVectors) {
  auto config = standard_config();
  const auto detector = tailor_detector(matrix().samples, matrix().labels, config);
  std::vector<double> too_short(5, 0.0);
  EXPECT_THROW(detector.classify(too_short), std::invalid_argument);
}

TEST(Experiment, EnvHelpers) {
  EXPECT_EQ(env_u64("SVT_DOES_NOT_EXIST_XYZ", 17), 17u);
  EXPECT_DOUBLE_EQ(env_double("SVT_DOES_NOT_EXIST_XYZ", 1.5), 1.5);
  EXPECT_EQ(env_string("SVT_DOES_NOT_EXIST_XYZ", "abc"), "abc");
}

TEST(Experiment, PreparedDataShape) {
  ExperimentConfig config;
  config.dataset.windows_per_session = 4;
  const auto data = prepare_data(config);
  EXPECT_EQ(data.matrix.size(), data.dataset.num_windows());
  EXPECT_EQ(data.groups().size(), data.matrix.size());
}

}  // namespace
}  // namespace svt::core
