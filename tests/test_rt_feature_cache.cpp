// SegmentFeatureCache and the incremental (segment-cached) feature
// pipeline: bit-exact parity with the memoization-disabled reference —
// which runs the identical chunked code but rebuilds every product per
// window — across strides, overlaps, chunkings, eviction (deadline stride
// widening) and migration; plus hand-computed chunk semantics and the
// sharded engine at 1/2/4 workers against the single-threaded oracle.
//
// EXPECT_EQ on doubles throughout: the cache must change WHERE values are
// computed, never the values.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <random>
#include <span>
#include <vector>

#include "core/tailoring.hpp"
#include "dsp/spectral.hpp"
#include "ecg/dataset.hpp"
#include "ecg/ecg_synth.hpp"
#include "ecg/streaming_qrs.hpp"
#include "features/extractor.hpp"
#include "features/segment_cache.hpp"
#include "rt/sharded_classifier.hpp"
#include "rt/stream_classifier.hpp"
#include "rt/window_extractor.hpp"

namespace svt {
namespace {

using features::SegmentFeatureCache;

ecg::EcgWaveform synth_ecg(double duration_s, std::uint64_t seed) {
  ecg::PatientProfile patient;
  ecg::SessionEvents events;
  ecg::SessionSignalParams sp;
  sp.duration_s = duration_s;
  std::mt19937_64 rng(seed);
  const auto rr = ecg::generate_rr_series(patient, events, sp, rng);
  const auto resp = ecg::generate_respiration(patient, events, sp, rng);
  return ecg::synthesize_ecg(rr, resp, ecg::EcgSynthParams{}, rng);
}

/// Run one patient through an extractor in fixed-size chunks, ending the
/// stream so held-back tail windows emit too.
std::vector<rt::ExtractedWindow> run_stream(const rt::StreamConfig& config,
                                            const ecg::EcgWaveform& wf, std::size_t chunk) {
  rt::WindowExtractor extractor(config);
  std::vector<rt::ExtractedWindow> windows;
  const auto sink = [&windows](rt::ExtractedWindow&& w) { windows.push_back(w); };
  std::span<const double> rest(wf.samples_mv);
  while (!rest.empty()) {
    const std::size_t n = std::min(chunk, rest.size());
    extractor.push_samples(1, rest.first(n), sink);
    rest = rest.subspan(n);
  }
  extractor.end_patient(1, sink);
  return windows;
}

void expect_windows_equal(const std::vector<rt::ExtractedWindow>& got,
                          const std::vector<rt::ExtractedWindow>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t w = 0; w < want.size(); ++w) {
    EXPECT_EQ(got[w].start_s, want[w].start_s) << what << " window " << w;
    EXPECT_EQ(got[w].num_beats, want[w].num_beats) << what << " window " << w;
    for (std::size_t j = 0; j < want[w].raw_features.size(); ++j)
      EXPECT_EQ(got[w].raw_features[j], want[w].raw_features[j])
          << what << " window " << w << " feature " << j;
  }
}

// --- Layout planning ---------------------------------------------------------

TEST(SegmentCacheLayout, PaperConfigGeometry) {
  // 180 s window / 30 s stride at 250 Hz, 4 Hz EDR: 6 chunks of 120 grid
  // points, Welch segments of 2 chunks (240 <= welch_psd's 256 default),
  // 5 segments per window.
  const auto layout = SegmentFeatureCache::plan(250.0, 4.0, 7500, 45000);
  ASSERT_TRUE(layout.has_value());
  EXPECT_EQ(layout->chunk_len, 120);
  EXPECT_EQ(layout->chunks_per_window, 6);
  EXPECT_EQ(layout->seg_chunks, 2);
  EXPECT_EQ(layout->num_segments, 5);
  EXPECT_EQ(layout->window_edr_len(), 720);
  EXPECT_EQ(layout->welch_segment_len(), 240);
}

TEST(SegmentCacheLayout, RejectsNonAlignedConfigurations) {
  // Fractional EDR points per stride (2525 * 4 / 250 = 40.4).
  EXPECT_FALSE(SegmentFeatureCache::plan(250.0, 4.0, 2525, 5000).has_value());
  // Window not an integral number of strides.
  EXPECT_FALSE(SegmentFeatureCache::plan(250.0, 4.0, 7500, 46000).has_value());
  // Degenerate inputs.
  EXPECT_FALSE(SegmentFeatureCache::plan(0.0, 4.0, 7500, 45000).has_value());
  EXPECT_FALSE(SegmentFeatureCache::plan(250.0, 4.0, 0, 45000).has_value());
}

// --- Hand-computed chunk semantics -------------------------------------------

TEST(SegmentFeatureCache, ChunkProductsMatchHandComputation) {
  // fs 10 Hz, EDR 1 Hz, stride 20 samples (2 s), window 60 samples: chunks
  // of 2 grid points at local times 0 s and 1 s.
  const auto layout = SegmentFeatureCache::plan(10.0, 1.0, 20, 60);
  ASSERT_TRUE(layout.has_value());
  ASSERT_EQ(layout->chunk_len, 2);
  SegmentFeatureCache cache(*layout, /*memoize=*/true);

  ecg::BeatRing ring;
  ring.push_back({5, 1.0});   // Chunk 0, local t = 0.5 s.
  ring.push_back({12, 2.0});  // Chunk 0, local t = 1.2 s.
  ring.push_back({25, 4.0});  // Chunk 1, local t = 0.5 s.
  ring.push_back({48, 8.0});  // Chunk 2, local t = 0.8 s.

  const auto& c0 = cache.chunk(ring, 0);
  EXPECT_FALSE(c0.empty);
  EXPECT_EQ(c0.beats, 2u);
  // Grid t=0 clamps to the first beat (t_front 0.5); t=1 interpolates
  // between the beats at 0.5 s and 1.2 s.
  ASSERT_EQ(c0.edr.size(), 2u);
  EXPECT_EQ(c0.edr[0], 1.0);
  {
    const double frac = (1.0 - 0.5) / (1.2 - 0.5);
    EXPECT_EQ(c0.edr[1], 1.0 * (1.0 - frac) + 2.0 * frac);
  }
  // One interval: it ends at beat 12 (in-chunk); beat 5 opens no interval.
  ASSERT_EQ(c0.rr.size(), 1u);
  EXPECT_EQ(c0.rr[0], static_cast<double>(12 - 5) / 10.0);
  EXPECT_EQ(c0.rr_from[0], 5);

  const auto& c1 = cache.chunk(ring, 1);
  EXPECT_EQ(c1.beats, 1u);
  // Context beats at local -1.5 s and -0.8 s, in-chunk beat at 0.5 s:
  // t=0 interpolates across the chunk boundary, t=1 holds the last beat.
  {
    const double frac = (0.0 - (-0.8)) / (0.5 - (-0.8));
    EXPECT_EQ(c1.edr[0], 2.0 * (1.0 - frac) + 4.0 * frac);
  }
  EXPECT_EQ(c1.edr[1], 4.0);  // Causal tail hold: the next beat is unseen.
  ASSERT_EQ(c1.rr.size(), 1u);
  EXPECT_EQ(c1.rr[0], static_cast<double>(25 - 12) / 10.0);

  const auto& c2 = cache.chunk(ring, 2);
  EXPECT_EQ(c2.beats, 1u);
  {
    const double frac = (0.0 - (-1.5)) / (0.8 - (-1.5));
    EXPECT_EQ(c2.edr[0], 4.0 * (1.0 - frac) + 8.0 * frac);
  }
  EXPECT_EQ(c2.edr[1], 8.0);

  // Window assembly concatenates the chunk RR slices (all openers are
  // inside the window here) and counts in-window beats.
  const auto view = cache.assemble_window(0);
  EXPECT_EQ(view.beats, 4u);
  ASSERT_EQ(view.rr.size(), 3u);
  EXPECT_EQ(view.rr[0], 0.7);
  EXPECT_EQ(view.rr[1], 1.3);
  EXPECT_EQ(view.rr[2], 2.3);
  ASSERT_EQ(view.edr.size(), 6u);
  EXPECT_EQ(view.edr[0], c0.edr[0]);
  EXPECT_EQ(view.edr[5], c2.edr[1]);

  // Second access is a pure hit.
  const auto before = cache.stats();
  cache.chunk(ring, 1);
  EXPECT_EQ(cache.stats().hits, before.hits + 1);
  EXPECT_EQ(cache.stats().misses, before.misses);
}

TEST(SegmentFeatureCache, EmptyChunkIsHeldFromPrecedingChunk) {
  const auto layout = SegmentFeatureCache::plan(10.0, 1.0, 20, 60);
  ASSERT_TRUE(layout.has_value());
  SegmentFeatureCache cache(*layout, /*memoize=*/true);

  ecg::BeatRing ring;
  ring.push_back({5, 1.0});
  ring.push_back({12, 2.0});
  // No beat anywhere in chunk 2's horizon [20, 60).
  cache.chunk(ring, 0);
  const auto& c1 = cache.chunk(ring, 1);
  const auto& c2 = cache.chunk(ring, 2);
  // Chunk 1 sees only context beats (local -1.5 s, -0.8 s): both grid
  // points are past the last beat, so the whole chunk holds its amplitude.
  EXPECT_FALSE(c1.empty);
  EXPECT_EQ(c1.beats, 0u);
  EXPECT_EQ(c1.edr[0], 2.0);
  EXPECT_EQ(c1.edr[1], 2.0);
  EXPECT_TRUE(c2.empty);
  EXPECT_EQ(c2.beats, 0u);

  // Assembly fills the empty chunk by holding chunk 1's tail.
  const auto view = cache.assemble_window(0);
  ASSERT_EQ(view.edr.size(), 6u);
  EXPECT_EQ(view.edr[4], 2.0);
  EXPECT_EQ(view.edr[5], 2.0);
}

// --- Extractor-level parity: cached vs memoization-off -----------------------

struct ParityConfig {
  const char* name;
  rt::StreamConfig stream;
  double duration_s;
  std::size_t chunk_a, chunk_b;  ///< Different chunkings for the two runs.
};

std::vector<ParityConfig> parity_configs() {
  std::vector<ParityConfig> configs;
  {  // Paper configuration: 6x overlap, 2-chunk Welch segments.
    rt::StreamConfig c;
    c.window_s = 180.0;
    c.stride_s = 30.0;
    configs.push_back({"paper 180/30", c, 480.0, 3001, 997});
  }
  {  // 6x overlap with 3-chunk Welch segments (EDR at 8 Hz).
    rt::StreamConfig c;
    c.window_s = 60.0;
    c.stride_s = 10.0;
    c.edr_fs_hz = 8.0;
    configs.push_back({"60/10 edr8", c, 150.0, 1250, 777});
  }
  {  // 2x overlap, single Welch segment per window.
    rt::StreamConfig c;
    c.window_s = 20.0;
    c.stride_s = 10.0;
    configs.push_back({"20/10", c, 95.0, 555, 2500});
  }
  return configs;
}

TEST(IncrementalPipeline, CachedBitIdenticalToMemoizeOffAcrossConfigs) {
  for (const auto& pc : parity_configs()) {
    const auto wf = synth_ecg(pc.duration_s, 71);
    auto cached_config = pc.stream;
    cached_config.fs_hz = wf.fs_hz;
    cached_config.incremental = true;
    auto off_config = cached_config;
    off_config.incremental = false;
    ASSERT_TRUE(rt::WindowExtractor(cached_config).incremental_active()) << pc.name;

    const auto want = run_stream(off_config, wf, pc.chunk_b);
    const auto got = run_stream(cached_config, wf, pc.chunk_a);
    ASSERT_GT(want.size(), 3u) << pc.name;
    expect_windows_equal(got, want, pc.name);
  }
}

TEST(IncrementalPipeline, ChunkingDoesNotChangeCachedWindows) {
  const auto wf = synth_ecg(150.0, 83);
  rt::StreamConfig config;
  config.fs_hz = wf.fs_hz;
  config.window_s = 60.0;
  config.stride_s = 10.0;
  const auto whole = run_stream(config, wf, wf.samples_mv.size());
  for (const std::size_t chunk : {std::size_t{250}, std::size_t{997}, std::size_t{10000}}) {
    const auto chunked = run_stream(config, wf, chunk);
    expect_windows_equal(chunked, whole, "chunking");
  }
}

TEST(IncrementalPipeline, CacheStatsReflectOverlapReuse) {
  const auto wf = synth_ecg(480.0, 29);
  rt::StreamConfig config;
  config.fs_hz = wf.fs_hz;
  config.window_s = 180.0;
  config.stride_s = 30.0;
  rt::WindowExtractor extractor(config);
  std::size_t windows = 0;
  std::span<const double> rest(wf.samples_mv);
  while (!rest.empty()) {
    const std::size_t n = std::min<std::size_t>(2500, rest.size());
    extractor.push_samples(1, rest.first(n), [&windows](rt::ExtractedWindow&&) { ++windows; });
    rest = rest.subspan(n);
  }
  ASSERT_GT(windows, 8u);
  const auto stats = extractor.cache_stats();
  // Steady state: 5 of 6 chunks and 4 of 5 Welch segments hit per window.
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.evictions, 0u);  // Entries age out as the stride advances.
  EXPECT_GT(stats.hit_rate(), 0.7);

  // Retired stats survive the patient: erase and check the accumulator.
  ASSERT_TRUE(extractor.erase_patient(1));
  EXPECT_EQ(extractor.cache_stats().hits, stats.hits);
  EXPECT_EQ(extractor.cache_stats().misses, stats.misses);
}

TEST(IncrementalPipeline, DeadlineStrideWideningStaysBitIdentical) {
  // Stride widening (deadline degradation) skips chunks and forces
  // evictions/rebuilds; the cached and memoize-off paths must still agree.
  const auto wf = synth_ecg(300.0, 57);
  rt::StreamConfig base;
  base.fs_hz = wf.fs_hz;
  base.window_s = 60.0;
  base.stride_s = 10.0;

  const auto run = [&wf](const rt::StreamConfig& config) {
    rt::WindowExtractor extractor(config);
    std::vector<rt::ExtractedWindow> windows;
    const auto sink = [&windows](rt::ExtractedWindow&& w) { windows.push_back(w); };
    std::span<const double> rest(wf.samples_mv);
    std::size_t pushed = 0;
    while (!rest.empty()) {
      const std::size_t n = std::min<std::size_t>(1999, rest.size());
      extractor.push_samples(1, rest.first(n), sink);
      rest = rest.subspan(n);
      pushed += n;
      // Same degradation schedule for both runs, keyed on stream position.
      if (pushed >= 30000 && pushed < 45000) {
        extractor.set_stride_factor(3);
      } else {
        extractor.set_stride_factor(1);
      }
    }
    extractor.end_patient(1, sink);
    return std::make_pair(windows, extractor.cache_stats());
  };

  auto cached_config = base;
  auto off_config = base;
  off_config.incremental = false;
  const auto [got, got_stats] = run(cached_config);
  const auto [want, want_stats] = run(off_config);
  ASSERT_GT(want.size(), 5u);
  expect_windows_equal(got, want, "stride widening");
  EXPECT_GT(got_stats.hits, 0u);
  EXPECT_EQ(want_stats.hits, 0u);  // Memoize-off counts every build as a miss.
}

// --- Migration ---------------------------------------------------------------

TEST(IncrementalPipeline, DetachCarriesCacheAndStaysBitIdentical) {
  const auto wf = synth_ecg(240.0, 91);
  rt::StreamConfig config;
  config.fs_hz = wf.fs_hz;
  config.window_s = 60.0;
  config.stride_s = 10.0;
  const auto want = run_stream(config, wf, 1777);

  rt::WindowExtractor src(config), dst(config);
  std::vector<rt::ExtractedWindow> windows;
  const auto sink = [&windows](rt::ExtractedWindow&& w) { windows.push_back(w); };
  // Mid-window split point (not a stride multiple): 100.3 s of 240 s.
  const std::size_t split = 25075;
  std::span<const double> rest(wf.samples_mv);
  std::size_t pushed = 0;
  rt::WindowExtractor* owner = &src;
  while (!rest.empty()) {
    const std::size_t n = std::min<std::size_t>(1777, rest.size());
    owner->push_samples(1, rest.first(n), sink);
    rest = rest.subspan(n);
    pushed += n;
    if (owner == &src && pushed >= split) {
      auto detached = src.detach_patient(1);
      ASSERT_TRUE(detached.has_value());
      EXPECT_NE(detached->cache, nullptr);  // The cache migrates with the stream.
      const auto carried = detached->cache->stats();
      EXPECT_GT(carried.hits, 0u);
      dst.attach_patient(1, std::move(*detached));
      owner = &dst;
      // Counters continue on the destination.
      EXPECT_EQ(dst.cache_stats().hits, carried.hits);
    }
  }
  dst.end_patient(1, sink);
  EXPECT_EQ(src.num_patients(), 0u);
  expect_windows_equal(windows, want, "migration");
}

// --- Sharded engine at 1/2/4 workers -----------------------------------------

const core::TailoredDetector& shared_detector() {
  static const core::TailoredDetector d = [] {
    ecg::DatasetParams params;
    params.windows_per_session = 10;
    const auto ds = ecg::generate_dataset(params);
    const auto matrix = features::extract_feature_matrix(ds);
    core::TailoringConfig config;
    config.num_features = 30;
    config.sv_budget = 60;
    return core::tailor_detector(matrix.samples, matrix.labels, config);
  }();
  return d;
}

std::map<int, std::vector<rt::WindowResult>> by_patient(
    const std::vector<rt::WindowResult>& results) {
  std::map<int, std::vector<rt::WindowResult>> split;
  for (const auto& r : results) split[r.patient_id].push_back(r);
  return split;
}

TEST(IncrementalPipeline, ShardedEngineMatchesOracleAcrossWorkerCounts) {
  rt::StreamConfig config;
  config.window_s = 20.0;
  config.stride_s = 10.0;  // Stride-aligned: the cached pipeline engages.
  std::map<int, ecg::EcgWaveform> ward;
  int seed = 60;
  for (int pid : {1, 2, 3, 7, 11})
    ward[pid] = synth_ecg(55.0, static_cast<std::uint64_t>(seed++));

  rt::StreamClassifier reference(shared_detector(), config);
  for (const auto& [pid, wf] : ward) reference.push_samples(pid, wf.samples_mv);
  const auto want = by_patient(reference.flush());
  ASSERT_FALSE(want.empty());
  EXPECT_GT(reference.cache_stats().hit_rate(), 0.0);

  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    rt::EngineOptions options;
    options.num_workers = workers;
    rt::ShardedStreamClassifier sharded(shared_detector(), config, std::move(options));
    std::map<int, std::size_t> offsets;
    bool any_left = true;
    while (any_left) {  // Interleaved chunks across the ward.
      any_left = false;
      for (const auto& [pid, wf] : ward) {
        std::size_t& off = offsets[pid];
        if (off >= wf.samples_mv.size()) continue;
        const std::size_t n = std::min<std::size_t>(1250, wf.samples_mv.size() - off);
        sharded.push_samples(pid, std::span(wf.samples_mv).subspan(off, n));
        off += n;
        if (off < wf.samples_mv.size()) any_left = true;
      }
    }
    const auto got = by_patient(sharded.flush());
    offsets.clear();
    ASSERT_EQ(got.size(), want.size()) << workers << " workers";
    for (const auto& [pid, mine] : got) {
      const auto& theirs = want.at(pid);
      ASSERT_EQ(mine.size(), theirs.size()) << workers << " workers, patient " << pid;
      for (std::size_t w = 0; w < mine.size(); ++w) {
        EXPECT_EQ(mine[w].start_s, theirs[w].start_s);
        EXPECT_EQ(mine[w].decision_value, theirs[w].decision_value);
        EXPECT_EQ(mine[w].label, theirs[w].label);
      }
    }
    // Quiescent after flush(): the fence orders the workers' counters.
    const auto stats = sharded.cache_stats();
    EXPECT_GT(stats.hits + stats.misses, 0u) << workers << " workers";
    EXPECT_GT(stats.hit_rate(), 0.0) << workers << " workers";
  }
}

}  // namespace
}  // namespace svt
