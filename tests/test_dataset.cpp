#include "ecg/dataset.hpp"

#include <gtest/gtest.h>

#include <set>

namespace svt::ecg {
namespace {

DatasetParams small_params() {
  DatasetParams p;
  p.windows_per_session = 8;
  return p;
}

TEST(Dataset, PaperShapedStructure) {
  const auto ds = generate_dataset(small_params());
  EXPECT_EQ(ds.sessions.size(), 24u);
  EXPECT_EQ(ds.patients.size(), 7u);
  EXPECT_EQ(ds.num_windows(), 24u * 8u);
  std::size_t seizures = 0;
  for (const auto& s : ds.sessions) seizures += s.seizures.size();
  EXPECT_EQ(seizures, 34u);
  EXPECT_GT(ds.num_seizure_windows(), 0u);
  EXPECT_LT(ds.num_seizure_windows(), ds.num_windows() / 4);
}

TEST(Dataset, EverySessionHasAtLeastOneSeizure) {
  const auto ds = generate_dataset(small_params());
  for (const auto& s : ds.sessions) EXPECT_GE(s.seizures.size(), 1u);
}

TEST(Dataset, SessionsCycleThroughCohort) {
  const auto ds = generate_dataset(small_params());
  std::set<int> patients;
  for (const auto& s : ds.sessions) patients.insert(s.patient_id);
  EXPECT_EQ(patients.size(), 7u);
}

TEST(Dataset, WindowsCarrySignals) {
  const auto ds = generate_dataset(small_params());
  for (const auto& s : ds.sessions) {
    ASSERT_EQ(s.windows.size(), 8u);
    for (const auto& w : s.windows) {
      EXPECT_GT(w.rr.size(), 100u);   // ~3 minutes of beats.
      EXPECT_GT(w.edr.values.size(), 500u);  // 180 s at 4 Hz.
      EXPECT_TRUE(w.label == 1 || w.label == -1);
    }
  }
}

TEST(Dataset, IctalWindowsOverlapSeizures) {
  const auto ds = generate_dataset(small_params());
  for (const auto& s : ds.sessions) {
    for (const auto& w : s.windows) {
      bool overlaps = false;
      for (const auto& sz : s.seizures) {
        if (sz.overlaps(w.start_s, w.start_s + 180.0)) overlaps = true;
      }
      if (w.label == 1) EXPECT_TRUE(overlaps);
    }
  }
}

TEST(Dataset, DeterministicInSeed) {
  const auto a = generate_dataset(small_params());
  const auto b = generate_dataset(small_params());
  ASSERT_EQ(a.num_windows(), b.num_windows());
  const auto wa = a.all_windows();
  const auto wb = b.all_windows();
  for (std::size_t i = 0; i < wa.size(); ++i) {
    ASSERT_EQ(wa[i]->rr.size(), wb[i]->rr.size());
    EXPECT_EQ(wa[i]->label, wb[i]->label);
    if (!wa[i]->rr.rr_s.empty()) EXPECT_DOUBLE_EQ(wa[i]->rr.rr_s[0], wb[i]->rr.rr_s[0]);
  }
}

TEST(Dataset, DifferentSeedsDiffer) {
  auto p1 = small_params();
  auto p2 = small_params();
  p2.seed = 43;
  const auto a = generate_dataset(p1);
  const auto b = generate_dataset(p2);
  bool any_diff = false;
  const auto wa = a.all_windows();
  const auto wb = b.all_windows();
  for (std::size_t i = 0; i < wa.size() && !any_diff; ++i) {
    if (wa[i]->rr.size() != wb[i]->rr.size()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Dataset, Validation) {
  DatasetParams bad = small_params();
  bad.num_sessions = 0;
  EXPECT_THROW(generate_dataset(bad), std::invalid_argument);
  bad = small_params();
  bad.windows_per_session = 0;
  EXPECT_THROW(generate_dataset(bad), std::invalid_argument);
  bad = small_params();
  bad.window_s = -1.0;
  EXPECT_THROW(generate_dataset(bad), std::invalid_argument);
}

TEST(Folds, LeaveOneSessionOutPartition) {
  const auto ds = generate_dataset(small_params());
  const auto folds = make_session_folds(ds);
  ASSERT_EQ(folds.size(), 24u);
  const std::size_t total = ds.num_windows();
  for (const auto& f : folds) {
    EXPECT_EQ(f.train_indices.size() + f.test_indices.size(), total);
    // Disjointness.
    std::set<std::size_t> train(f.train_indices.begin(), f.train_indices.end());
    for (std::size_t t : f.test_indices) EXPECT_EQ(train.count(t), 0u);
    EXPECT_EQ(f.test_indices.size(), 8u);  // One session per fold.
  }
  // Every window is a test sample exactly once.
  std::vector<int> seen(total, 0);
  for (const auto& f : folds) {
    for (std::size_t t : f.test_indices) seen[t] += 1;
  }
  for (int c : seen) EXPECT_EQ(c, 1);
}

}  // namespace
}  // namespace svt::ecg
