// Cohort replay driver: replaying a writer-generated WFDB cohort through
// rt::CohortReplayer must yield per-patient results bit-identical to feeding
// the same (decoded) samples directly to the single-threaded
// StreamClassifier — under 1/2/4 workers — with end_stream() flushing the
// trailing windows a live stream would hold back, per-record stats that add
// up, real-time pacing that actually paces, and loud failures on mismatched
// or ambiguous cohorts.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/tailoring.hpp"
#include "ecg/dataset.hpp"
#include "features/extractor.hpp"
#include "io/cohort_fixture.hpp"
#include "io/wfdb.hpp"
#include "rt/cohort_replayer.hpp"
#include "rt/stream_classifier.hpp"

namespace svt {
namespace {

const core::TailoredDetector& detector() {
  static const core::TailoredDetector d = [] {
    ecg::DatasetParams params;
    params.windows_per_session = 10;
    const auto ds = ecg::generate_dataset(params);
    const auto matrix = features::extract_feature_matrix(ds);
    core::TailoringConfig config;
    config.num_features = 30;
    config.sv_budget = 60;
    return core::tailor_detector(matrix.samples, matrix.labels, config);
  }();
  return d;
}

rt::StreamConfig short_window_config() {
  rt::StreamConfig config;
  config.fs_hz = 250.0;
  config.window_s = 20.0;
  config.stride_s = 10.0;
  return config;
}

rt::EngineOptions engine_opts(std::size_t num_workers, rt::ResultSink sink = {}) {
  rt::EngineOptions options;
  options.num_workers = num_workers;
  if (sink) options.sink = std::move(sink);
  return options;
}

/// A fixture cohort whose records end exactly on a window boundary, so the
/// trailing window is only recoverable through the end-of-record path.
std::string fixture_dir(const std::string& tag, std::size_t patients = 4,
                        double duration_s = 50.0) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("svt_replay_" + tag + "_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  io::CohortFixtureParams params;
  params.num_patients = patients;
  params.duration_s = duration_s;
  io::write_synthetic_cohort(dir.string(), params);
  return dir.string();
}

/// Decode every record the way the replayer does (ECG channel, ADC -> mV).
std::map<int, std::vector<double>> decoded_cohort(const std::string& dir) {
  std::map<int, std::vector<double>> samples;
  for (const auto& name : io::read_records_index(dir)) {
    const auto record = io::read_record(dir, name);
    samples[rt::CohortReplayer::patient_id_of(name)] =
        record.signal_mv(io::ecg_channel(record.header));
  }
  return samples;
}

/// Reference: the same samples pushed directly into the single-threaded
/// engine, with the same end-of-record semantics.
std::map<int, std::vector<rt::WindowResult>> direct_results(
    const std::map<int, std::vector<double>>& cohort, bool end_streams = true) {
  rt::StreamClassifier reference(detector(), short_window_config());
  for (const auto& [pid, samples] : cohort) {
    reference.push_samples(pid, samples);
    if (end_streams) reference.end_stream(pid);
  }
  std::map<int, std::vector<rt::WindowResult>> split;
  for (const auto& r : reference.flush()) split[r.patient_id].push_back(r);
  return split;
}

struct Collector {
  std::mutex mutex;
  std::map<int, std::vector<rt::WindowResult>> per_patient;

  rt::ResultSink sink() {
    return [this](std::span<const rt::WindowResult> batch) {
      const std::lock_guard<std::mutex> lock(mutex);
      for (const auto& r : batch) per_patient[r.patient_id].push_back(r);
    };
  }
};

TEST(CohortReplay, BitIdenticalToDirectStreamingUnder124Workers) {
  const auto dir = fixture_dir("parity");
  const auto cohort = decoded_cohort(dir);
  const auto want = direct_results(cohort);
  ASSERT_FALSE(want.empty());

  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    Collector collector;
    auto registry =
        std::make_shared<rt::ModelRegistry>(rt::ServableModel::from_detector(detector()));
    rt::CohortReplayer replayer(registry, short_window_config(),
                                engine_opts(workers, collector.sink()));
    const auto report = replayer.replay_directory(dir);

    ASSERT_EQ(collector.per_patient.size(), want.size()) << workers << " workers";
    std::size_t total = 0;
    for (const auto& [pid, mine] : collector.per_patient) {
      ASSERT_TRUE(want.count(pid)) << "patient " << pid;
      const auto& theirs = want.at(pid);
      ASSERT_EQ(mine.size(), theirs.size()) << workers << " workers, patient " << pid;
      for (std::size_t w = 0; w < mine.size(); ++w) {
        EXPECT_DOUBLE_EQ(mine[w].start_s, theirs[w].start_s) << "patient " << pid;
        EXPECT_EQ(mine[w].decision_value, theirs[w].decision_value)
            << workers << " workers, patient " << pid << " window " << w;
        EXPECT_EQ(mine[w].label, theirs[w].label) << "patient " << pid;
        EXPECT_EQ(mine[w].num_beats, theirs[w].num_beats) << "patient " << pid;
      }
      total += mine.size();
    }

    // The report's accounting matches what actually arrived.
    EXPECT_EQ(report.windows, total);
    EXPECT_EQ(report.records.size(), cohort.size());
    EXPECT_EQ(report.dropped_chunks, 0u);
    for (const auto& stats : report.records) {
      EXPECT_EQ(stats.windows, collector.per_patient.at(stats.patient_id).size());
      EXPECT_GT(stats.samples, 0u);
      EXPECT_GT(stats.x_realtime, 0.0);
    }
    EXPECT_GT(report.x_realtime, 0.0);
  }
}

TEST(CohortReplay, EndStreamRecoversTrailingWindows) {
  // The fixtures end on a window boundary: a live stream would hold the last
  // window back (emission lag), so a replay WITHOUT end-of-record semantics
  // delivers strictly fewer windows than the replayer does.
  const auto dir = fixture_dir("tail", 2);
  const auto cohort = decoded_cohort(dir);
  const auto with_end = direct_results(cohort, true);
  const auto without_end = direct_results(cohort, false);
  std::size_t n_with = 0, n_without = 0;
  for (const auto& [pid, r] : with_end) n_with += r.size();
  for (const auto& [pid, r] : without_end) n_without += r.size();
  ASSERT_GT(n_with, n_without);

  Collector collector;
  auto registry =
      std::make_shared<rt::ModelRegistry>(rt::ServableModel::from_detector(detector()));
  rt::CohortReplayer replayer(registry, short_window_config(),
                              engine_opts(2, collector.sink()));
  const auto report = replayer.replay_directory(dir);
  EXPECT_EQ(report.windows, n_with);  // The replayer wires end_stream per record.
}

TEST(CohortReplay, PacedReplayHonoursTheSpeedMultiple) {
  const auto dir = fixture_dir("paced", 1, 12.0);
  auto registry =
      std::make_shared<rt::ModelRegistry>(rt::ServableModel::from_detector(detector()));
  rt::CohortReplayer replayer(registry, short_window_config(), engine_opts(1));
  rt::ReplayOptions options;
  options.speed = 60.0;
  options.chunk_s = 2.0;
  const auto report = replayer.replay_directory(dir, options);
  ASSERT_EQ(report.records.size(), 1u);
  // The final chunk is admitted no earlier than its stream time / speed.
  const double min_wall = (report.records[0].duration_s - options.chunk_s) / options.speed;
  EXPECT_GE(report.records[0].wall_s, 0.9 * min_wall);
}

TEST(CohortReplay, MismatchedSamplingRateSkipsTheRecordNotTheCohort) {
  const auto dir = fixture_dir("fs", 2, 50.0);
  const auto names = io::read_records_index(dir);
  ASSERT_EQ(names.size(), 2u);
  // Re-record the second monitor at the wrong rate: it must be skipped with
  // a per-record reason while the rest of the ward replays normally.
  auto bad = io::read_record(dir, names[1]);
  bad.header.fs_hz = 360.0;
  io::write_record(dir, bad.header, bad.adc);

  const int good_pid = rt::CohortReplayer::patient_id_of(names[0]);
  const auto good = io::read_record(dir, names[0]);
  std::map<int, std::vector<double>> good_cohort;
  good_cohort[good_pid] = good.signal_mv(io::ecg_channel(good.header));
  const auto want = direct_results(good_cohort);

  auto registry =
      std::make_shared<rt::ModelRegistry>(rt::ServableModel::from_detector(detector()));
  Collector collector;
  rt::CohortReplayer replayer(registry, short_window_config(),
                              engine_opts(2, collector.sink()));
  const auto report = replayer.replay_directory(dir);

  EXPECT_EQ(report.skipped_records, 1u);
  ASSERT_EQ(report.records.size(), 2u);
  const auto& skipped = report.records[1];
  EXPECT_TRUE(skipped.skipped);
  EXPECT_NE(skipped.skip_reason.find("360"), std::string::npos) << skipped.skip_reason;
  EXPECT_EQ(skipped.windows, 0u);
  EXPECT_FALSE(report.records[0].skipped);
  EXPECT_TRUE(report.records[0].skip_reason.empty());

  // The surviving record's stream is untouched by the skip: bit-identical
  // to direct streaming, and nothing was delivered for the skipped patient.
  ASSERT_EQ(collector.per_patient.size(), 1u);
  ASSERT_EQ(collector.per_patient.count(good_pid), 1u);
  const auto& got = collector.per_patient.at(good_pid);
  const auto& expected = want.at(good_pid);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t w = 0; w < expected.size(); ++w) {
    EXPECT_EQ(got[w].start_s, expected[w].start_s);
    EXPECT_EQ(got[w].decision_value, expected[w].decision_value);
    EXPECT_EQ(got[w].label, expected[w].label);
  }
}

TEST(CohortReplay, DuplicatePatientIdsThrow) {
  const auto dir = fixture_dir("dup", 1, 10.0);
  auto registry =
      std::make_shared<rt::ModelRegistry>(rt::ServableModel::from_detector(detector()));
  rt::CohortReplayer replayer(registry, short_window_config(), engine_opts(1));
  EXPECT_THROW(replayer.replay_records(dir, {"p001", "p001"}, {}), std::invalid_argument);
}

TEST(CohortReplay, PatientIdParsing) {
  EXPECT_EQ(rt::CohortReplayer::patient_id_of("p007"), 7);
  EXPECT_EQ(rt::CohortReplayer::patient_id_of("100"), 100);
  EXPECT_EQ(rt::CohortReplayer::patient_id_of("chb01_46"), 46);
  EXPECT_THROW(rt::CohortReplayer::patient_id_of("norecordnumber"), std::invalid_argument);
  // A timestamp-sized record number cannot be a patient id: still the
  // documented exception type, not a stray std::out_of_range.
  EXPECT_THROW(rt::CohortReplayer::patient_id_of("s20260731054201"), std::invalid_argument);
}

TEST(CohortReplay, SyntheticModelIsDeterministic) {
  // The golden-file gate depends on the fixture model being seed-stable.
  const auto a = rt::synthetic_full_feature_model(21);
  const auto b = rt::synthetic_full_feature_model(21);
  ASSERT_EQ(a.model().support_vectors.size(), b.model().support_vectors.size());
  EXPECT_EQ(a.model().support_vectors, b.model().support_vectors);
  EXPECT_EQ(a.model().alpha_y, b.model().alpha_y);
  EXPECT_EQ(a.selected_features().size(), features::kNumFeatures);
  ASSERT_TRUE(a.quantized().has_value());
}

}  // namespace
}  // namespace svt
