#include "dsp/resample.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace svt::dsp {
namespace {

TEST(Interpolate, ExactOnLinearFunction) {
  std::vector<double> t{0.0, 1.0, 3.0, 7.0};
  std::vector<double> v{0.0, 2.0, 6.0, 14.0};  // v = 2t.
  for (double q : {0.5, 1.7, 2.9, 5.0, 6.99}) {
    EXPECT_NEAR(interpolate_at(t, v, q), 2.0 * q, 1e-12);
  }
}

TEST(Interpolate, ClampsOutsideRange) {
  std::vector<double> t{1.0, 2.0};
  std::vector<double> v{10.0, 20.0};
  EXPECT_DOUBLE_EQ(interpolate_at(t, v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(interpolate_at(t, v, 5.0), 20.0);
}

TEST(Interpolate, Validation) {
  std::vector<double> t{1.0, 1.0};
  std::vector<double> v{1.0, 2.0};
  EXPECT_THROW(interpolate_at(t, v, 1.0), std::invalid_argument);  // Non-increasing.
  std::vector<double> t2{1.0};
  std::vector<double> v2{1.0};
  EXPECT_THROW(interpolate_at(t2, v2, 1.0), std::invalid_argument);  // Too short.
  std::vector<double> v3{1.0, 2.0, 3.0};
  std::vector<double> t3{1.0, 2.0};
  EXPECT_THROW(interpolate_at(t3, v3, 1.0), std::invalid_argument);  // Size mismatch.
}

TEST(Resample, UniformGridProperties) {
  std::vector<double> t{0.0, 0.8, 1.7, 2.4, 4.0};
  std::vector<double> v{0.0, 0.8, 1.7, 2.4, 4.0};  // Identity: v = t.
  const auto u = resample_linear(t, v, 4.0);
  EXPECT_DOUBLE_EQ(u.fs_hz, 4.0);
  EXPECT_DOUBLE_EQ(u.start_time_s, 0.0);
  EXPECT_EQ(u.values.size(), 17u);  // floor(4s * 4Hz) + 1.
  for (std::size_t i = 0; i < u.values.size(); ++i) {
    EXPECT_NEAR(u.values[i], static_cast<double>(i) / 4.0, 1e-12);
  }
  EXPECT_NEAR(u.duration_s(), 4.25, 1e-12);
}

TEST(Resample, RejectsBadRate) {
  std::vector<double> t{0.0, 1.0};
  std::vector<double> v{0.0, 1.0};
  EXPECT_THROW(resample_linear(t, v, 0.0), std::invalid_argument);
}

class ResampleSineProperty : public ::testing::TestWithParam<double> {};

TEST_P(ResampleSineProperty, PreservesSlowSine) {
  // Unevenly sampled slow sine resampled to 4 Hz stays close to the truth.
  const double f = GetParam();
  std::vector<double> t, v;
  double time = 0.0;
  std::size_t i = 0;
  while (time < 30.0) {
    t.push_back(time);
    v.push_back(std::sin(2.0 * std::numbers::pi * f * time));
    time += 0.7 + 0.3 * std::sin(static_cast<double>(i++));  // Uneven spacing.
  }
  const auto u = resample_linear(t, v, 4.0);
  for (std::size_t k = 0; k < u.values.size(); ++k) {
    const double tk = u.start_time_s + static_cast<double>(k) / u.fs_hz;
    EXPECT_NEAR(u.values[k], std::sin(2.0 * std::numbers::pi * f * tk), 0.15);
  }
}

INSTANTIATE_TEST_SUITE_P(Frequencies, ResampleSineProperty, ::testing::Values(0.05, 0.1));

}  // namespace
}  // namespace svt::dsp
