// StreamClassifier: window boundaries under the incremental extractor
// (partial windows, overlap, emission lag, end-of-stream), chunk-size
// invariance, multi-patient isolation, and agreement with the underlying
// tailored detector.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <span>
#include <vector>

#include "core/tailoring.hpp"
#include "ecg/dataset.hpp"
#include "ecg/ecg_synth.hpp"
#include "ecg/rr_model.hpp"
#include "features/extractor.hpp"
#include "rt/stream_classifier.hpp"

namespace svt {
namespace {

/// Shared tailored detector trained on a small synthetic cohort.
const core::TailoredDetector& detector() {
  static const core::TailoredDetector d = [] {
    ecg::DatasetParams params;
    params.windows_per_session = 10;
    const auto ds = ecg::generate_dataset(params);
    const auto matrix = features::extract_feature_matrix(ds);
    core::TailoringConfig config;
    config.num_features = 30;
    config.sv_budget = 60;
    return core::tailor_detector(matrix.samples, matrix.labels, config);
  }();
  return d;
}

/// Synthesise `duration_s` of single-lead ECG for one simulated patient.
ecg::EcgWaveform synth_ecg(double duration_s, std::uint64_t seed) {
  ecg::PatientProfile patient;
  ecg::SessionEvents events;
  ecg::SessionSignalParams sp;
  sp.duration_s = duration_s;
  std::mt19937_64 rng(seed);
  const auto rr = ecg::generate_rr_series(patient, events, sp, rng);
  const auto resp = ecg::generate_respiration(patient, events, sp, rng);
  return ecg::synthesize_ecg(rr, resp, ecg::EcgSynthParams{}, rng);
}

rt::StreamConfig short_window_config() {
  rt::StreamConfig config;
  config.fs_hz = 250.0;
  config.window_s = 20.0;
  config.stride_s = 10.0;
  return config;
}

TEST(StreamClassifier, RejectsBadConfig) {
  auto config = short_window_config();
  config.stride_s = 25.0;  // > window_s.
  EXPECT_THROW(rt::StreamClassifier(detector(), config), std::invalid_argument);
  config = short_window_config();
  config.fs_hz = 0.0;
  EXPECT_THROW(rt::StreamClassifier(detector(), config), std::invalid_argument);
}

TEST(StreamClassifier, WindowBoundariesWithOverlap) {
  const auto config = short_window_config();
  rt::StreamClassifier sc(detector(), config);
  const auto wf = synth_ecg(65.0, 1);
  const std::size_t n = wf.samples_mv.size();
  ASSERT_GT(n, sc.window_samples());

  sc.push_samples(1, wf.samples_mv);
  // Every full window was either queued or rejected; the remainder (less
  // than one stride past the last emitted window) stays buffered.
  const std::size_t expected =
      (n - sc.window_samples()) / sc.stride_samples() + 1;
  EXPECT_EQ(sc.pending_windows() + sc.rejected_windows(), expected);
  EXPECT_EQ(sc.buffered_samples(1), n - expected * sc.stride_samples());
  // A healthy synthetic ECG yields beats in every window: nothing rejected.
  EXPECT_EQ(sc.rejected_windows(), 0u);

  const auto results = sc.flush();
  ASSERT_EQ(results.size(), expected);
  EXPECT_EQ(sc.pending_windows(), 0u);
  for (std::size_t w = 0; w < results.size(); ++w) {
    EXPECT_EQ(results[w].patient_id, 1);
    EXPECT_DOUBLE_EQ(results[w].start_s, 10.0 * static_cast<double>(w));
    EXPECT_TRUE(results[w].label == 1 || results[w].label == -1);
    EXPECT_GE(results[w].num_beats, sc.config().min_beats);
  }
}

TEST(StreamClassifier, PartialWindowEmitsNothing) {
  rt::StreamClassifier sc(detector(), short_window_config());
  const auto wf = synth_ecg(30.0, 2);
  // A window classifies once the incremental detector's finality frontier
  // passes its end: window_samples + emission_lag_samples pushed samples.
  const std::size_t due = sc.window_samples() + sc.emission_lag_samples();
  std::span<const double> samples(wf.samples_mv);
  ASSERT_GT(samples.size(), due);
  // One sample short: nothing may be emitted yet.
  sc.push_samples(7, samples.first(due - 1));
  EXPECT_EQ(sc.pending_windows() + sc.rejected_windows(), 0u);
  EXPECT_EQ(sc.buffered_samples(7), due - 1);
  // The missing sample completes the window.
  sc.push_samples(7, samples.subspan(due - 1, 1));
  EXPECT_EQ(sc.pending_windows() + sc.rejected_windows(), 1u);
}

TEST(StreamClassifier, ChunkSizeDoesNotChangeResults) {
  const auto wf = synth_ecg(65.0, 3);
  rt::StreamClassifier whole(detector(), short_window_config());
  whole.push_samples(1, wf.samples_mv);
  const auto expected = whole.flush();

  rt::StreamClassifier chunked(detector(), short_window_config());
  std::span<const double> rest(wf.samples_mv);
  while (!rest.empty()) {
    const std::size_t n = std::min<std::size_t>(997, rest.size());
    chunked.push_samples(1, rest.first(n));
    rest = rest.subspan(n);
  }
  const auto got = chunked.flush();

  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t w = 0; w < got.size(); ++w) {
    EXPECT_DOUBLE_EQ(got[w].start_s, expected[w].start_s);
    EXPECT_DOUBLE_EQ(got[w].decision_value, expected[w].decision_value);
    EXPECT_EQ(got[w].label, expected[w].label);
    EXPECT_EQ(got[w].num_beats, expected[w].num_beats);
  }
}

TEST(StreamClassifier, EndStreamClassifiesHeldBackTailWindows) {
  rt::StreamClassifier sc(detector(), short_window_config());
  const auto wf = synth_ecg(65.0, 9);
  // Trim so the final window ends exactly at the last sample.
  const std::size_t total = sc.window_samples() + 4 * sc.stride_samples();
  ASSERT_LE(total, wf.samples_mv.size());
  sc.push_samples(5, std::span(wf.samples_mv).first(total));
  const std::size_t live = sc.pending_windows() + sc.rejected_windows();
  EXPECT_LT(live, 5u);  // The trailing window is held back by the lag.
  ASSERT_TRUE(sc.end_stream(5));
  EXPECT_FALSE(sc.end_stream(5));  // Stream state is gone.
  EXPECT_EQ(sc.num_patients(), 0u);
  // Every full window of the finite record is now accounted for.
  EXPECT_EQ(sc.pending_windows() + sc.rejected_windows(), 5u);
  const auto results = sc.flush();
  EXPECT_EQ(results.size() + sc.rejected_windows(), 5u);
  for (const auto& r : results) EXPECT_EQ(r.label, r.decision_value >= 0.0 ? 1 : -1);
}

TEST(StreamClassifier, MultiPatientStreamsAreIsolated) {
  const auto wf_a = synth_ecg(65.0, 4);
  const auto wf_b = synth_ecg(65.0, 5);

  // Reference: each patient classified through its own dedicated stream.
  std::vector<std::vector<rt::WindowResult>> solo;
  for (const auto* wf : {&wf_a, &wf_b}) {
    rt::StreamClassifier sc(detector(), short_window_config());
    sc.push_samples(0, wf->samples_mv);
    solo.push_back(sc.flush());
  }

  // Interleave both patients through one classifier in small chunks.
  rt::StreamClassifier shared(detector(), short_window_config());
  std::span<const double> rest_a(wf_a.samples_mv), rest_b(wf_b.samples_mv);
  while (!rest_a.empty() || !rest_b.empty()) {
    if (!rest_a.empty()) {
      const std::size_t n = std::min<std::size_t>(1250, rest_a.size());
      shared.push_samples(1, rest_a.first(n));
      rest_a = rest_a.subspan(n);
    }
    if (!rest_b.empty()) {
      const std::size_t n = std::min<std::size_t>(730, rest_b.size());
      shared.push_samples(2, rest_b.first(n));
      rest_b = rest_b.subspan(n);
    }
  }
  EXPECT_EQ(shared.num_patients(), 2u);
  const auto mixed = shared.flush();

  for (int pid : {1, 2}) {
    std::vector<rt::WindowResult> mine;
    for (const auto& r : mixed)
      if (r.patient_id == pid) mine.push_back(r);
    const auto& want = solo[static_cast<std::size_t>(pid - 1)];
    ASSERT_EQ(mine.size(), want.size()) << "patient " << pid;
    for (std::size_t w = 0; w < mine.size(); ++w) {
      EXPECT_DOUBLE_EQ(mine[w].start_s, want[w].start_s);
      // Bit-exact: batch composition must not leak across patients.
      EXPECT_EQ(mine[w].decision_value, want[w].decision_value);
      EXPECT_EQ(mine[w].label, want[w].label);
    }
  }
}

TEST(StreamClassifier, AgreesWithDetectorPerWindow) {
  // The streamed fixed-point labels must equal what TailoredDetector
  // produces on the same extracted windows (same front half, batched back
  // half bit-exact vs the per-window engine).
  const auto wf = synth_ecg(45.0, 6);
  rt::StreamClassifier sc(detector(), short_window_config());
  sc.push_samples(1, wf.samples_mv);
  const auto results = sc.flush();
  ASSERT_FALSE(results.empty());
  ASSERT_TRUE(detector().quantized().has_value());
  for (const auto& r : results) {
    EXPECT_TRUE(r.label == 1 || r.label == -1);
    EXPECT_EQ(r.label, r.decision_value >= 0.0 ? 1 : -1);
  }
}

TEST(StreamClassifier, FloatDetectorPath) {
  // A float-only detector (no quantised engine) routes through PackedModel.
  static const core::TailoredDetector float_detector = [] {
    ecg::DatasetParams params;
    params.windows_per_session = 10;
    const auto ds = ecg::generate_dataset(params);
    const auto matrix = features::extract_feature_matrix(ds);
    core::TailoringConfig config;
    config.num_features = 30;
    config.sv_budget = 60;
    config.quant.reset();
    return core::tailor_detector(matrix.samples, matrix.labels, config);
  }();
  const auto wf = synth_ecg(45.0, 8);
  rt::StreamClassifier sc(float_detector, short_window_config());
  sc.push_samples(3, wf.samples_mv);
  const auto results = sc.flush();
  ASSERT_FALSE(results.empty());
  for (const auto& r : results) EXPECT_EQ(r.label, r.decision_value >= 0.0 ? 1 : -1);
}

}  // namespace
}  // namespace svt
