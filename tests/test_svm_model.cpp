#include "svm/model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "svm/kernel.hpp"

namespace svt::svm {
namespace {

SvmModel toy_model() {
  SvmModel m;
  m.kernel = quadratic_kernel();
  m.support_vectors = {{1.0, 0.0}, {0.0, 2.0}, {-1.0, -1.0}};
  m.alpha_y = {0.5, -0.25, 0.125};
  m.bias = -0.75;
  return m;
}

TEST(Kernel, LinearIsDotProduct) {
  const auto k = linear_kernel();
  std::vector<double> a{1.0, 2.0, 3.0};
  std::vector<double> b{4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(k(a, b), 32.0);
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  std::vector<double> short_vec{1.0};
  EXPECT_THROW(k(a, short_vec), std::invalid_argument);
}

TEST(Kernel, PolynomialForms) {
  std::vector<double> a{1.0, 1.0};
  std::vector<double> b{2.0, 3.0};
  EXPECT_DOUBLE_EQ(quadratic_kernel()(a, b), 36.0);  // (5+1)^2.
  EXPECT_DOUBLE_EQ(cubic_kernel()(a, b), 216.0);     // (5+1)^3.
}

TEST(Kernel, RbfProperties) {
  const auto k = gaussian_kernel(0.5);
  std::vector<double> a{1.0, 2.0};
  EXPECT_DOUBLE_EQ(k(a, a), 1.0);
  std::vector<double> b{3.0, 2.0};
  EXPECT_NEAR(k(a, b), std::exp(-0.5 * 4.0), 1e-12);
  EXPECT_GT(k(a, b), 0.0);
}

TEST(Kernel, Names) {
  EXPECT_EQ(linear_kernel().name(), "linear");
  EXPECT_EQ(quadratic_kernel().name(), "quadratic");
  EXPECT_EQ(cubic_kernel().name(), "cubic");
  EXPECT_EQ(gaussian_kernel(1.0).name(), "gaussian");
  Kernel quartic{KernelType::kPolynomial, 4, 1.0, 0.0};
  EXPECT_EQ(quartic.name(), "poly-4");
}

TEST(Model, DecisionValueMatchesManualSum) {
  const auto m = toy_model();
  std::vector<double> x{0.5, 0.5};
  double expected = m.bias;
  for (std::size_t i = 0; i < m.support_vectors.size(); ++i)
    expected += m.alpha_y[i] * m.kernel(x, m.support_vectors[i]);
  EXPECT_DOUBLE_EQ(m.decision_value(x), expected);
  EXPECT_EQ(m.predict(x), expected >= 0.0 ? 1 : -1);
}

TEST(Model, SvNormsMatchEquation5) {
  const auto m = toy_model();
  const auto norms = m.sv_norms();
  ASSERT_EQ(norms.size(), 3u);
  for (std::size_t i = 0; i < norms.size(); ++i) {
    const double expected =
        m.alpha_y[i] * m.alpha_y[i] * m.kernel(m.support_vectors[i], m.support_vectors[i]);
    EXPECT_DOUBLE_EQ(norms[i], expected);
  }
}

TEST(Model, SaveLoadRoundTrip) {
  const auto m = toy_model();
  std::stringstream ss;
  m.save(ss);
  const auto loaded = SvmModel::load(ss);
  EXPECT_EQ(loaded.kernel, m.kernel);
  EXPECT_DOUBLE_EQ(loaded.bias, m.bias);
  ASSERT_EQ(loaded.num_support_vectors(), m.num_support_vectors());
  ASSERT_EQ(loaded.num_features(), m.num_features());
  for (std::size_t i = 0; i < m.num_support_vectors(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.alpha_y[i], m.alpha_y[i]);
    EXPECT_EQ(loaded.support_vectors[i], m.support_vectors[i]);
  }
  // Decisions are bit-identical after the round trip.
  std::vector<double> x{0.3, -0.7};
  EXPECT_DOUBLE_EQ(loaded.decision_value(x), m.decision_value(x));
}

TEST(Model, LoadRejectsGarbage) {
  std::stringstream bad("not-a-model v9");
  EXPECT_THROW(SvmModel::load(bad), std::invalid_argument);
  std::stringstream truncated("svmtailor-model v1\nkernel 1 2 1 0\nbias 0\nnsv 5\nnfeat 2\n1.0");
  EXPECT_THROW(SvmModel::load(truncated), std::invalid_argument);
}

TEST(Model, EmptyModelPredictsBiasSign) {
  SvmModel m;
  m.bias = -1.0;
  std::vector<double> x{};
  EXPECT_EQ(m.predict(x), -1);
  m.bias = 0.0;
  EXPECT_EQ(m.predict(x), 1);  // sign(0) maps to +1 per paper Eq. 1.
}

}  // namespace
}  // namespace svt::svm
