// Signal-quality gate: the per-sample detector must be chunk-boundary
// independent (the property that keeps 1-worker and sharded engines in
// exact agreement), a burst must collapse into ONE rejected span via the
// refractory hold, RR outlier screening is window-local counting, and at
// the engine level: annotate policy leaves every decision bit-identical to
// a gate-less run (only the flags differ), suppress policy withholds
// exactly the flagged window positions, and the single-threaded and
// sharded engines agree on results AND gate counters at any worker count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <map>
#include <random>
#include <span>
#include <vector>

#include "core/tailoring.hpp"
#include "ecg/dataset.hpp"
#include "ecg/ecg_synth.hpp"
#include "ecg/quality.hpp"
#include "ecg/rr_model.hpp"
#include "features/extractor.hpp"
#include "rt/sharded_classifier.hpp"
#include "rt/stream_classifier.hpp"

namespace svt {
namespace {

// ---------------------------------------------------------------------------
// Gate unit behaviour.

ecg::QualityConfig gate_config() {
  ecg::QualityConfig config;
  config.enable = true;
  config.amp_threshold_mv = 4.0;
  config.slew_threshold_mv = 1.5;
  config.refractory_s = 1.0;
  return config;
}

TEST(SignalQualityGate, RejectsBadConstruction) {
  EXPECT_THROW(ecg::SignalQualityGate(gate_config(), 0.0), std::invalid_argument);
  EXPECT_THROW(ecg::SignalQualityGate(gate_config(), -250.0), std::invalid_argument);
  auto inverted = gate_config();
  inverted.rr_ratio_low = 2.0;
  inverted.rr_ratio_high = 0.5;
  EXPECT_THROW(ecg::SignalQualityGate(inverted, 250.0), std::invalid_argument);
}

TEST(SignalQualityGate, BurstBecomesOneSpanUnderRefractoryHold) {
  const double fs = 100.0;
  ecg::SignalQualityGate gate(gate_config(), fs);
  // 5 s of clean baseline, then a 0.5 s rail-hitting burst: every burst
  // sample exceeds the amplitude threshold, but the 1 s refractory hold
  // must merge them into a single span.
  std::vector<double> signal(static_cast<std::size_t>(5.0 * fs), 0.0);
  for (int i = 0; i < 50; ++i) signal.push_back(8.0);
  signal.resize(signal.size() + 300, 0.0);
  gate.scan(signal, 0);
  EXPECT_EQ(gate.stats().artifact_spans, 1u);
  EXPECT_EQ(gate.stats().artifact_hits, 1u);  // Later burst samples are held.
  // The span covers the hit plus the refractory window.
  EXPECT_TRUE(gate.overlaps_artifact(500, 501));
  EXPECT_TRUE(gate.overlaps_artifact(595, 596));
  EXPECT_FALSE(gate.overlaps_artifact(0, 500));
  EXPECT_FALSE(gate.overlaps_artifact(602, 700));
}

TEST(SignalQualityGate, SlewCheckCatchesStepsWithinThreshold) {
  ecg::SignalQualityGate gate(gate_config(), 250.0);
  // In-range amplitudes, but a 2 mV single-sample step: slew artifact.
  const std::vector<double> signal = {0.0, 0.1, 0.2, 2.2, 2.3};
  gate.scan(signal, 0);
  EXPECT_EQ(gate.stats().artifact_hits, 1u);
  EXPECT_TRUE(gate.overlaps_artifact(3, 4));
  EXPECT_FALSE(gate.overlaps_artifact(0, 3));
}

TEST(SignalQualityGate, ChunkBoundariesDoNotChangeSpans) {
  const double fs = 250.0;
  std::mt19937_64 rng(31);
  std::normal_distribution<double> noise(0.0, 0.4);
  std::vector<double> signal(static_cast<std::size_t>(20.0 * fs));
  for (auto& v : signal) v = noise(rng);
  // Sprinkle artifacts: amplitude pops and slew steps at known offsets.
  for (const std::size_t at : {std::size_t{400}, std::size_t{1900}, std::size_t{3050}})
    signal[at] = 9.0;

  ecg::SignalQualityGate whole(gate_config(), fs);
  whole.scan(signal, 0);

  // The same stream fed one sample at a time (the most adversarial split)
  // and in odd-sized chunks must produce identical spans and counters.
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{97}, std::size_t{1024}}) {
    ecg::SignalQualityGate split(gate_config(), fs);
    for (std::size_t off = 0; off < signal.size(); off += chunk) {
      const std::size_t n = std::min(chunk, signal.size() - off);
      split.scan(std::span(signal).subspan(off, n), static_cast<std::int64_t>(off));
    }
    EXPECT_EQ(split.stats().artifact_hits, whole.stats().artifact_hits) << "chunk " << chunk;
    EXPECT_EQ(split.stats().artifact_spans, whole.stats().artifact_spans) << "chunk " << chunk;
    EXPECT_EQ(split.stats().rejected_samples, whole.stats().rejected_samples)
        << "chunk " << chunk;
    for (std::int64_t begin = 0; begin < static_cast<std::int64_t>(signal.size());
         begin += 250) {
      EXPECT_EQ(split.overlaps_artifact(begin, begin + 250),
                whole.overlaps_artifact(begin, begin + 250))
          << "chunk " << chunk << " begin " << begin;
    }
  }
}

TEST(SignalQualityGate, DropSpansBeforeKeepsLiveSpans) {
  ecg::SignalQualityGate gate(gate_config(), 100.0);
  std::vector<double> signal(1000, 0.0);
  signal[100] = 9.0;  // Span [100, 201).
  signal[700] = 9.0;  // Span [700, 801).
  gate.scan(signal, 0);
  ASSERT_EQ(gate.live_spans(), 2u);
  gate.drop_spans_before(300);
  EXPECT_EQ(gate.live_spans(), 1u);
  EXPECT_FALSE(gate.overlaps_artifact(100, 200));  // Dropped span forgotten.
  EXPECT_TRUE(gate.overlaps_artifact(750, 760));
  // Dropping never truncates a still-live span.
  gate.drop_spans_before(750);
  EXPECT_EQ(gate.live_spans(), 1u);
  gate.drop_spans_before(801);
  EXPECT_EQ(gate.live_spans(), 0u);
}

TEST(RrOutliers, CountsIsolatedSpikesOnly) {
  ecg::QualityConfig config = gate_config();
  config.min_rr_intervals = 5;

  // A clean sinus tachogram has no ratio-band outliers.
  EXPECT_EQ(ecg::count_rr_outliers(std::vector<double>(10, 0.8), config), 0u);

  // One isolated short interval (an ectopic beat): outside the band against
  // BOTH neighbours.
  EXPECT_EQ(ecg::count_rr_outliers(std::vector<double>{0.8, 0.8, 0.4, 0.8, 0.8}, config), 1u);

  // A sustained rate change disagrees with one neighbour only: not an
  // outlier (that is rhythm, not artifact).
  EXPECT_EQ(ecg::count_rr_outliers(std::vector<double>{0.8, 0.8, 0.5, 0.5, 0.5}, config), 0u);

  // Series shorter than min_rr_intervals are not screened.
  EXPECT_EQ(ecg::count_rr_outliers(std::vector<double>{0.8, 0.4, 0.8, 0.8}, config), 0u);

  // A non-positive neighbour is skipped, not divided by (0.9/0.0 would
  // otherwise read as an infinite-ratio outlier).
  EXPECT_EQ(ecg::count_rr_outliers(std::vector<double>{0.0, 0.9, 0.8, 0.8, 0.8}, config), 0u);
}

// ---------------------------------------------------------------------------
// Engine-level parity.

core::TailoredDetector make_detector() {
  ecg::DatasetParams params;
  params.windows_per_session = 10;
  const auto ds = ecg::generate_dataset(params);
  const auto matrix = features::extract_feature_matrix(ds);
  core::TailoringConfig config;
  config.num_features = 30;
  config.sv_budget = 60;
  return core::tailor_detector(matrix.samples, matrix.labels, config);
}

const core::TailoredDetector& detector() {
  static const core::TailoredDetector d = make_detector();
  return d;
}

ecg::EcgWaveform synth_ecg(double duration_s, std::uint64_t seed) {
  ecg::PatientProfile patient;
  ecg::SessionEvents events;
  ecg::SessionSignalParams sp;
  sp.duration_s = duration_s;
  std::mt19937_64 rng(seed);
  const auto rr = ecg::generate_rr_series(patient, events, sp, rng);
  const auto resp = ecg::generate_respiration(patient, events, sp, rng);
  return ecg::synthesize_ecg(rr, resp, ecg::EcgSynthParams{}, rng);
}

rt::StreamConfig quality_stream_config(ecg::QualityPolicy policy) {
  rt::StreamConfig config;
  config.fs_hz = 250.0;
  config.window_s = 20.0;
  config.stride_s = 10.0;
  config.quality = gate_config();
  config.quality.policy = policy;
  return config;
}

/// A ward where patients 2 and 3 carry injected electrode-pop bursts (rail
/// amplitude for ~0.2 s) at known times; patients 1 and 5 stay clean.
std::map<int, ecg::EcgWaveform> make_dirty_ward() {
  std::map<int, ecg::EcgWaveform> ward;
  int seed = 60;
  for (int pid : {1, 2, 3, 5}) ward[pid] = synth_ecg(55.0, static_cast<std::uint64_t>(seed++));
  for (const int pid : {2, 3}) {
    auto& samples = ward[pid].samples_mv;
    for (const double at_s : {12.0, 31.5}) {
      const auto at = static_cast<std::size_t>(at_s * 250.0);
      for (std::size_t i = 0; i < 50 && at + i < samples.size(); ++i) samples[at + i] = 8.5;
    }
  }
  return ward;
}

template <typename Classifier>
void push_interleaved(Classifier& classifier, const std::map<int, ecg::EcgWaveform>& ward,
                      std::size_t chunk) {
  std::map<int, std::size_t> offsets;
  bool any_left = true;
  while (any_left) {
    any_left = false;
    for (const auto& [pid, wf] : ward) {
      std::size_t& off = offsets[pid];
      if (off >= wf.samples_mv.size()) continue;
      const std::size_t n = std::min(chunk, wf.samples_mv.size() - off);
      classifier.push_samples(pid, std::span(wf.samples_mv).subspan(off, n));
      off += n;
      if (off < wf.samples_mv.size()) any_left = true;
    }
  }
}

void expect_same_results(const std::vector<rt::WindowResult>& got,
                         const std::vector<rt::WindowResult>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].patient_id, want[i].patient_id) << what << " window " << i;
    EXPECT_EQ(got[i].start_s, want[i].start_s) << what << " window " << i;
    EXPECT_EQ(got[i].decision_value, want[i].decision_value) << what << " window " << i;
    EXPECT_EQ(got[i].label, want[i].label) << what << " window " << i;
    EXPECT_EQ(got[i].quality, want[i].quality) << what << " window " << i;
  }
}

TEST(QualityGateEngine, AnnotatePolicyFlagsDirtyWindowsWithoutChangingDecisions) {
  const auto ward = make_dirty_ward();

  // Gate off: the baseline decisions.
  rt::StreamConfig off_config = quality_stream_config(ecg::QualityPolicy::kAnnotate);
  off_config.quality.enable = false;
  rt::StreamClassifier baseline(detector(), off_config);
  for (const auto& [pid, wf] : ward) baseline.push_samples(pid, wf.samples_mv);
  const auto plain = baseline.flush();
  ASSERT_FALSE(plain.empty());

  // Gate on, annotate: same windows, same decisions, only flags differ.
  rt::StreamClassifier gated(detector(), quality_stream_config(ecg::QualityPolicy::kAnnotate));
  for (const auto& [pid, wf] : ward) gated.push_samples(pid, wf.samples_mv);
  const auto flagged = gated.flush();
  ASSERT_EQ(flagged.size(), plain.size());
  std::size_t artifact_windows = 0;
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(flagged[i].patient_id, plain[i].patient_id);
    EXPECT_EQ(flagged[i].start_s, plain[i].start_s);
    EXPECT_EQ(flagged[i].decision_value, plain[i].decision_value) << "window " << i;
    EXPECT_EQ(flagged[i].label, plain[i].label);
    EXPECT_EQ(plain[i].quality, 0u);  // Gate off: never flagged.
    if ((flagged[i].quality & ecg::quality_flags::kArtifact) != 0) {
      ++artifact_windows;
      // Only the dirty patients carry artifact flags.
      EXPECT_TRUE(flagged[i].patient_id == 2 || flagged[i].patient_id == 3)
          << "patient " << flagged[i].patient_id;
    }
  }
  EXPECT_GT(artifact_windows, 0u);
  const auto stats = gated.stats();
  EXPECT_EQ(stats.windows_annotated, gated.quality_stats().windows_annotated);
  EXPECT_GT(stats.windows_annotated, 0u);
  EXPECT_EQ(stats.windows_suppressed, 0u);
  EXPECT_GE(gated.quality_stats().artifact_spans, 4u);  // 2 bursts x 2 patients.
}

TEST(QualityGateEngine, SuppressPolicyWithholdsExactlyTheFlaggedPositions) {
  const auto ward = make_dirty_ward();

  rt::StreamClassifier annotate(detector(), quality_stream_config(ecg::QualityPolicy::kAnnotate));
  for (const auto& [pid, wf] : ward) annotate.push_samples(pid, wf.samples_mv);
  const auto flagged = annotate.flush();

  rt::StreamClassifier suppress(detector(), quality_stream_config(ecg::QualityPolicy::kSuppress));
  for (const auto& [pid, wf] : ward) suppress.push_samples(pid, wf.samples_mv);
  const auto kept = suppress.flush();

  // Suppress emits exactly the annotate run's clean windows, bit-identically.
  std::vector<rt::WindowResult> clean;
  for (const auto& r : flagged)
    if (r.quality == 0) clean.push_back(r);
  expect_same_results(kept, clean, "suppress vs annotate-clean");
  EXPECT_EQ(suppress.stats().windows_suppressed,
            annotate.stats().windows_annotated);
  EXPECT_EQ(suppress.stats().windows_annotated, 0u);
}

TEST(QualityGateEngine, ShardedMatchesSingleThreadedGateExactly) {
  const auto ward = make_dirty_ward();
  for (const auto policy : {ecg::QualityPolicy::kAnnotate, ecg::QualityPolicy::kSuppress}) {
    rt::StreamClassifier reference(detector(), quality_stream_config(policy));
    for (const auto& [pid, wf] : ward) reference.push_samples(pid, wf.samples_mv);
    auto want = reference.flush();
    const auto want_stats = reference.quality_stats();
    ASSERT_GT(want_stats.artifact_spans, 0u);

    for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
      rt::EngineOptions options;
      options.num_workers = workers;
      rt::ShardedStreamClassifier sharded(detector(), quality_stream_config(policy), options);
      push_interleaved(sharded, ward, 733);
      auto got = sharded.flush();
      // flush() orders by (patient, start, workload); match the reference.
      std::sort(want.begin(), want.end(), [](const auto& a, const auto& b) {
        return a.patient_id != b.patient_id ? a.patient_id < b.patient_id
                                            : a.start_s < b.start_s;
      });
      expect_same_results(got, want, workers == 1 ? "1 worker" : "4 workers");

      const auto got_stats = sharded.quality_stats();
      EXPECT_EQ(got_stats.artifact_hits, want_stats.artifact_hits);
      EXPECT_EQ(got_stats.artifact_spans, want_stats.artifact_spans);
      EXPECT_EQ(got_stats.rejected_samples, want_stats.rejected_samples);
      EXPECT_EQ(got_stats.rr_outliers, want_stats.rr_outliers);
      EXPECT_EQ(got_stats.windows_annotated, want_stats.windows_annotated);
      EXPECT_EQ(got_stats.windows_suppressed, want_stats.windows_suppressed);
      EXPECT_EQ(sharded.stats().windows_annotated, reference.stats().windows_annotated);
      EXPECT_EQ(sharded.stats().windows_suppressed, reference.stats().windows_suppressed);
    }
  }
}

TEST(QualityGateEngine, CleanSignalIsNeverFlagged) {
  const auto wf = synth_ecg(55.0, 99);
  rt::StreamClassifier gated(detector(), quality_stream_config(ecg::QualityPolicy::kSuppress));
  gated.push_samples(1, wf.samples_mv);
  const auto results = gated.flush();
  ASSERT_FALSE(results.empty());
  for (const auto& r : results) EXPECT_EQ(r.quality, 0u);
  EXPECT_EQ(gated.stats().windows_annotated, 0u);
  EXPECT_EQ(gated.stats().windows_suppressed, 0u);
  EXPECT_EQ(gated.quality_stats().artifact_spans, 0u);
}

}  // namespace
}  // namespace svt
