// LaneQrsDetector: per-lane bit-exact parity with StreamingQrsDetector
// across dispatch tiers (scalar / SSE2 / AVX2, as available on the host),
// pack sizes 1..kMaxLanes, arbitrary ragged chunkings (including idle
// lanes mid-round), mid-stream evict/join, and end-of-record finish.
//
// Parity oracle: a dedicated scalar StreamingQrsDetector per lane fed the
// same samples. Every comparison is EXPECT_EQ on doubles — the lane engine
// promises bit-identity, not closeness.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "common/simd_dispatch.hpp"
#include "ecg/ecg_synth.hpp"
#include "ecg/lane_qrs.hpp"
#include "ecg/rr_model.hpp"
#include "ecg/streaming_qrs.hpp"
#include "rt/window_extractor.hpp"

namespace svt {
namespace {

ecg::EcgWaveform synth_ecg(double duration_s, std::uint64_t seed) {
  ecg::PatientProfile patient;
  ecg::SessionEvents events;
  ecg::SessionSignalParams sp;
  sp.duration_s = duration_s;
  std::mt19937_64 rng(seed);
  const auto rr = ecg::generate_rr_series(patient, events, sp, rng);
  const auto resp = ecg::generate_respiration(patient, events, sp, rng);
  return ecg::synthesize_ecg(rr, resp, ecg::EcgSynthParams{}, rng);
}

/// Tiers this host can actually execute (detected cpuid, ignoring any
/// SVT_LANE_ISA narrowing so the parity sweep always covers everything).
std::vector<common::SimdTier> available_tiers() {
  std::vector<common::SimdTier> tiers{common::SimdTier::kScalar};
  const auto detected = common::simd_tier_detected();
  if (detected >= common::SimdTier::kSse2) tiers.push_back(common::SimdTier::kSse2);
  if (detected >= common::SimdTier::kAvx2) tiers.push_back(common::SimdTier::kAvx2);
  return tiers;
}

/// Forces the dispatch tier for a scope; restores the previous tier after.
struct TierGuard {
  explicit TierGuard(common::SimdTier tier) : prev(common::simd_tier()) {
    common::set_simd_tier_override(tier);
  }
  ~TierGuard() { common::set_simd_tier_override(prev); }
  common::SimdTier prev;
};

void expect_lane_matches(const ecg::LaneQrsDetector& pack, std::size_t lane,
                         const ecg::StreamingQrsDetector& ref) {
  ASSERT_EQ(pack.samples_seen(lane), ref.samples_seen()) << "lane " << lane;
  EXPECT_EQ(pack.final_through(lane), ref.final_through()) << "lane " << lane;
  const auto& got = pack.beats(lane);
  const auto& want = ref.beats();
  ASSERT_EQ(got.size(), want.size()) << "lane " << lane;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].sample_index, want[i].sample_index) << "lane " << lane << " beat " << i;
    EXPECT_EQ(got[i].amplitude_mv, want[i].amplitude_mv) << "lane " << lane << " beat " << i;
  }
}

TEST(LaneQrs, EffectiveTierIsClampedToHost) {
  EXPECT_LE(ecg::lane_effective_tier(), common::simd_tier_detected());
  const char* name = ecg::lane_isa_name();
  ASSERT_NE(name, nullptr);
  EXPECT_TRUE(std::string_view(name) == "scalar" || std::string_view(name) == "sse2" ||
              std::string_view(name) == "avx2");
}

// Every tier x every pack size, ragged random chunking with idle rounds:
// each lane's beat stream must be bit-identical to its dedicated scalar
// detector, before and after finish().
TEST(LaneQrs, ParityAcrossTiersPackSizesAndChunkings) {
  std::vector<ecg::EcgWaveform> records;
  for (std::size_t p = 0; p < ecg::LaneQrsDetector::kMaxLanes; ++p)
    records.push_back(synth_ecg(30.0, 11000 + p));
  const double fs = records.front().fs_hz;

  for (const auto tier : available_tiers()) {
    TierGuard guard(tier);
    for (std::size_t size = 1; size <= ecg::LaneQrsDetector::kMaxLanes; ++size) {
      ecg::LaneQrsDetector pack(fs);
      ASSERT_EQ(pack.tier(), tier);
      std::vector<std::size_t> lane_of(size);
      std::vector<std::size_t> offset(size, 0);
      std::vector<ecg::StreamingQrsDetector> refs;
      for (std::size_t p = 0; p < size; ++p) {
        lane_of[p] = pack.add_lane();
        refs.emplace_back(fs);
        refs.back().push(records[p].samples_mv);
      }
      ASSERT_EQ(pack.active_lanes(), size);

      // Ragged rounds: each lane advances by 0..300 samples per round, so
      // packs mix lockstep blocks, scalar tails, and idle-lane rounds.
      std::mt19937_64 rng(77 * size + static_cast<std::uint64_t>(tier));
      std::uniform_int_distribution<std::size_t> len_dist(0, 300);
      bool any_left = true;
      while (any_left) {
        any_left = false;
        std::vector<ecg::LaneQrsDetector::LaneChunk> chunks;
        for (std::size_t p = 0; p < size; ++p) {
          const auto& samples = records[p].samples_mv;
          if (offset[p] >= samples.size()) continue;
          any_left = true;
          const std::size_t len = std::min(len_dist(rng), samples.size() - offset[p]);
          if (len == 0) continue;
          chunks.push_back({lane_of[p],
                            std::span<const double>(samples).subspan(offset[p], len)});
          offset[p] += len;
        }
        if (!chunks.empty()) pack.push(chunks);
      }
      EXPECT_EQ(pack.vector_samples() + pack.scalar_samples(),
                [&] {
                  std::uint64_t total = 0;
                  for (std::size_t p = 0; p < size; ++p) total += records[p].samples_mv.size();
                  return total;
                }());

      for (std::size_t p = 0; p < size; ++p) expect_lane_matches(pack, lane_of[p], refs[p]);
      for (std::size_t p = 0; p < size; ++p) {
        pack.finish(lane_of[p]);
        refs[p].finish();
        expect_lane_matches(pack, lane_of[p], refs[p]);
      }
    }
  }
}

// A lane evicted mid-stream must not perturb the other lanes, and a new
// stream joining the freed slot must start from fresh detector state.
TEST(LaneQrs, MidStreamEvictAndJoinLeaveOtherLanesBitExact) {
  std::vector<ecg::EcgWaveform> records;
  for (std::size_t p = 0; p < 5; ++p) records.push_back(synth_ecg(24.0, 500 + p));
  const double fs = records.front().fs_hz;

  for (const auto tier : available_tiers()) {
    TierGuard guard(tier);
    ecg::LaneQrsDetector pack(fs);
    std::vector<std::size_t> lane_of(4);
    std::vector<ecg::StreamingQrsDetector> refs;
    for (std::size_t p = 0; p < 4; ++p) {
      lane_of[p] = pack.add_lane();
      refs.emplace_back(fs);
      refs.back().push(records[p].samples_mv);
      refs.back().finish();
    }

    // First half in lockstep, then evict patient 1 mid-stream.
    const std::size_t half = records[0].samples_mv.size() / 2;
    std::vector<ecg::LaneQrsDetector::LaneChunk> chunks;
    for (std::size_t p = 0; p < 4; ++p)
      chunks.push_back({lane_of[p], std::span<const double>(records[p].samples_mv).first(half)});
    pack.push(chunks);
    pack.remove_lane(lane_of[1]);
    EXPECT_FALSE(pack.lane_active(lane_of[1]));
    EXPECT_EQ(pack.active_lanes(), 3u);

    // Patient 4 joins the freed slot and streams a fresh record while the
    // survivors finish theirs.
    const std::size_t joined = pack.add_lane();
    EXPECT_EQ(joined, lane_of[1]);  // Fixed slots: the freed slot is reused.
    EXPECT_EQ(pack.samples_seen(joined), 0);
    refs.emplace_back(fs);
    refs.back().push(records[4].samples_mv);
    refs.back().finish();

    chunks.clear();
    for (std::size_t p = 0; p < 4; ++p) {
      if (p == 1) continue;
      chunks.push_back(
          {lane_of[p], std::span<const double>(records[p].samples_mv).subspan(half)});
    }
    chunks.push_back({joined, std::span<const double>(records[4].samples_mv)});
    pack.push(chunks);

    for (std::size_t p = 0; p < 4; ++p) {
      if (p == 1) continue;
      pack.finish(lane_of[p]);
      expect_lane_matches(pack, lane_of[p], refs[p]);
    }
    pack.finish(joined);
    expect_lane_matches(pack, joined, refs[4]);
  }
}

// push_one in arbitrary chunkings is the same stream as one whole-record
// push (chunking invariance carries over from the scalar engine).
TEST(LaneQrs, PushOneChunkingInvariant) {
  const auto wf = synth_ecg(20.0, 42);
  for (const auto tier : available_tiers()) {
    TierGuard guard(tier);
    ecg::LaneQrsDetector whole(wf.fs_hz);
    const std::size_t wl = whole.add_lane();
    whole.push_one(wl, wf.samples_mv);
    whole.finish(wl);

    ecg::LaneQrsDetector chunked(wf.fs_hz);
    const std::size_t cl = chunked.add_lane();
    std::mt19937_64 rng(7);
    std::uniform_int_distribution<std::size_t> chunk_dist(1, 97);
    std::span<const double> rest(wf.samples_mv);
    while (!rest.empty()) {
      const std::size_t n = std::min(chunk_dist(rng), rest.size());
      chunked.push_one(cl, rest.first(n));
      rest = rest.subspan(n);
    }
    chunked.finish(cl);

    const auto& a = whole.beats(wl);
    const auto& b = chunked.beats(cl);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].sample_index, b[i].sample_index) << i;
      EXPECT_EQ(a[i].amplitude_mv, b[i].amplitude_mv) << i;
    }
  }
}

// Lockstep traffic on a vector tier actually takes the vector path, and a
// freed slot's ring storage stays pooled (resident footprint is bounded by
// the pack width, not by patient churn).
TEST(LaneQrs, VectorOccupancyAndPooledResidency) {
  const auto wf = synth_ecg(16.0, 99);
  ecg::LaneQrsDetector pack(wf.fs_hz);
  const std::size_t a = pack.add_lane();
  const std::size_t b = pack.add_lane();
  std::vector<ecg::LaneQrsDetector::LaneChunk> chunks{
      {a, std::span<const double>(wf.samples_mv)}, {b, std::span<const double>(wf.samples_mv)}};
  pack.push(chunks);
  if (pack.tier() >= common::SimdTier::kSse2) {
    EXPECT_GT(pack.vector_samples(), 0u);
  } else {
    EXPECT_EQ(pack.vector_samples(), 0u);
  }
  EXPECT_EQ(pack.vector_samples() + pack.scalar_samples(), 2 * wf.samples_mv.size());

  const std::size_t resident_full = pack.resident_bytes();
  EXPECT_GT(resident_full, 0u);
  // Churn the same two slots many times: the pooled rings are reused, so
  // residency never grows past the high-water mark of two occupied slots.
  for (int round = 0; round < 16; ++round) {
    pack.remove_lane(a);
    pack.remove_lane(b);
    EXPECT_EQ(pack.resident_bytes(), resident_full);
    ASSERT_EQ(pack.add_lane(), a);
    ASSERT_EQ(pack.add_lane(), b);
    pack.push_one(a, std::span<const double>(wf.samples_mv).first(256));
    EXPECT_EQ(pack.resident_bytes(), resident_full);
  }
}

// --- WindowExtractor on lane packs ---------------------------------------

rt::StreamConfig short_windows() {
  rt::StreamConfig config;
  config.window_s = 5.0;
  config.stride_s = 2.5;
  config.min_beats = 2;
  return config;
}

void expect_windows_equal(const std::vector<rt::ExtractedWindow>& got,
                          const std::vector<rt::ExtractedWindow>& want, int patient) {
  ASSERT_EQ(got.size(), want.size()) << "patient " << patient;
  for (std::size_t w = 0; w < got.size(); ++w) {
    EXPECT_EQ(got[w].start_s, want[w].start_s) << "patient " << patient << " window " << w;
    EXPECT_EQ(got[w].num_beats, want[w].num_beats) << "patient " << patient << " window " << w;
    for (std::size_t f = 0; f < features::kNumFeatures; ++f)
      EXPECT_EQ(got[w].raw_features[f], want[w].raw_features[f])
          << "patient " << patient << " window " << w << " feature " << f;
  }
}

// push_batch over lane packs emits byte-identical windows to the dedicated
// per-patient push_samples path — for every tier, and with 9 patients the
// population spills into a second pack.
TEST(LaneWindowExtractor, BatchWindowsBitIdenticalToPerPatientPath) {
  constexpr std::size_t kPatients = ecg::LaneQrsDetector::kMaxLanes + 1;
  std::vector<ecg::EcgWaveform> records;
  for (std::size_t p = 0; p < kPatients; ++p) records.push_back(synth_ecg(40.0, 2200 + p));
  const auto config = short_windows();

  // Reference: each patient alone through its own extractor, whole record.
  std::vector<std::vector<rt::ExtractedWindow>> want(kPatients);
  for (std::size_t p = 0; p < kPatients; ++p) {
    rt::WindowExtractor solo(config);
    auto sink = [&](rt::ExtractedWindow&& window) { want[p].push_back(std::move(window)); };
    solo.push_samples(static_cast<int>(p), records[p].samples_mv, sink);
    solo.end_patient(static_cast<int>(p), sink);
  }

  for (const auto tier : available_tiers()) {
    TierGuard guard(tier);
    rt::WindowExtractor batch(config);
    std::vector<std::vector<rt::ExtractedWindow>> got(kPatients);
    auto sink = [&](rt::ExtractedWindow&& window) {
      got[static_cast<std::size_t>(window.patient_id)].push_back(std::move(window));
    };

    std::mt19937_64 rng(31 + static_cast<std::uint64_t>(tier));
    std::uniform_int_distribution<std::size_t> len_dist(0, 800);
    std::vector<std::size_t> offset(kPatients, 0);
    bool any_left = true;
    while (any_left) {
      any_left = false;
      std::vector<rt::WindowExtractor::PatientChunk> chunks;
      for (std::size_t p = 0; p < kPatients; ++p) {
        const auto& samples = records[p].samples_mv;
        if (offset[p] >= samples.size()) continue;
        any_left = true;
        const std::size_t len = std::min(len_dist(rng), samples.size() - offset[p]);
        if (len == 0) continue;
        chunks.push_back({static_cast<int>(p),
                          std::span<const double>(samples).subspan(offset[p], len)});
        offset[p] += len;
      }
      if (!chunks.empty()) batch.push_batch(chunks, sink);
    }
    for (std::size_t p = 0; p < kPatients; ++p) batch.end_patient(static_cast<int>(p), sink);

    for (std::size_t p = 0; p < kPatients; ++p)
      expect_windows_equal(got[p], want[p], static_cast<int>(p));
    EXPECT_GT(want[0].size(), 2u);  // The comparison is not vacuous.
  }
}

// Evicting patients reclaims detector scratch: residency is bounded by the
// live population's high-water mark and returns to zero when the ward
// empties, no matter how many patients churned through.
TEST(LaneWindowExtractor, EvictionReclaimsDetectorScratch) {
  const auto wf = synth_ecg(10.0, 7);
  rt::WindowExtractor extractor(short_windows());
  auto sink = [](rt::ExtractedWindow&&) {};
  EXPECT_EQ(extractor.resident_detector_bytes(), 0u);

  for (int p = 0; p < 12; ++p)
    extractor.push_samples(p, std::span<const double>(wf.samples_mv).first(512), sink);
  const std::size_t high_water = extractor.resident_detector_bytes();
  EXPECT_GT(high_water, 0u);

  // Churn 100 patients through the same ward size: pooled lanes and
  // released packs keep residency at (or below) the high-water mark.
  for (int p = 12; p < 112; ++p) {
    extractor.erase_patient(p - 12);
    extractor.push_samples(p, std::span<const double>(wf.samples_mv).first(512), sink);
    EXPECT_LE(extractor.resident_detector_bytes(), high_water);
    EXPECT_EQ(extractor.num_patients(), 12u);
  }
  for (int p = 100; p < 112; ++p) extractor.erase_patient(p);
  EXPECT_EQ(extractor.num_patients(), 0u);
  EXPECT_EQ(extractor.resident_detector_bytes(), 0u);

  // end_patient reclaims the same way.
  extractor.push_samples(0, wf.samples_mv, sink);
  EXPECT_GT(extractor.resident_detector_bytes(), 0u);
  extractor.end_patient(0, sink);
  EXPECT_EQ(extractor.resident_detector_bytes(), 0u);
}

// The occupancy counters survive eviction (retired packs fold into the
// totals) and account for every sample pushed.
TEST(LaneWindowExtractor, OccupancyCountersSurviveChurn) {
  const auto wf = synth_ecg(10.0, 8);
  rt::WindowExtractor extractor(short_windows());
  auto sink = [](rt::ExtractedWindow&&) {};
  std::uint64_t pushed = 0;
  for (int p = 0; p < 6; ++p) {
    std::vector<rt::WindowExtractor::PatientChunk> chunks;
    for (int q = 0; q <= p; ++q)
      chunks.push_back({q, std::span<const double>(wf.samples_mv).first(512)});
    extractor.push_batch(chunks, sink);
    pushed += static_cast<std::uint64_t>(chunks.size()) * 512;
  }
  for (int p = 0; p < 6; ++p) extractor.erase_patient(p);
  EXPECT_EQ(extractor.lane_vector_samples() + extractor.lane_scalar_samples(), pushed);
  EXPECT_STREQ(extractor.lane_isa(), ecg::lane_isa_name());
}

}  // namespace
}  // namespace svt
